package sftree

import (
	"testing"
)

func TestAbileneNetworkSolves(t *testing.T) {
	net, names, err := AbileneNetwork(DefaultGenConfig(11, 2), 1)
	if err != nil {
		t.Fatal(err)
	}
	if net.NumNodes() != 11 || len(names) != 11 {
		t.Fatalf("shape: %d nodes, %d names", net.NumNodes(), len(names))
	}
	task := Task{Source: 0, Destinations: []int{9, 10}, Chain: SFC{0, 1}}
	res, err := SolveTwoStage(net, task, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Validate(res.Embedding); err != nil {
		t.Errorf("invalid: %v", err)
	}
}

func TestGeantNetworkSolves(t *testing.T) {
	net, names, err := GeantNetwork(DefaultGenConfig(24, 2), 4)
	if err != nil {
		t.Fatal(err)
	}
	if net.NumNodes() != 24 || names[0] != "London" {
		t.Fatalf("shape: %d nodes, names[0]=%q", net.NumNodes(), names[0])
	}
	task := Task{Source: 0, Destinations: []int{12, 17}, Chain: SFC{0, 1}}
	res, err := SolveTwoStage(net, task, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Validate(res.Embedding); err != nil {
		t.Errorf("invalid: %v", err)
	}
}

func TestWaxmanNetworkSolves(t *testing.T) {
	net, err := GenerateWaxmanNetwork(WaxmanConfig{Nodes: 40}, DefaultGenConfig(40, 2), 2)
	if err != nil {
		t.Fatal(err)
	}
	task, err := GenerateTask(net, 3, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SolveTwoStage(net, task, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Validate(res.Embedding); err != nil {
		t.Errorf("invalid: %v", err)
	}
}

func TestFatTreeNetworkSolves(t *testing.T) {
	net, err := FatTreeNetwork(4, DefaultGenConfig(0, 2), 3)
	if err != nil {
		t.Fatal(err)
	}
	edges := FatTreeEdgeSwitches(4)
	task := Task{Source: edges[0], Destinations: edges[2:6], Chain: SFC{0, 1}}
	res, err := SolveTwoStage(net, task, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Validate(res.Embedding); err != nil {
		t.Errorf("invalid: %v", err)
	}
	// Multicast sharing: the SFT must be cheaper than four independent
	// unicast embeddings of the same chain.
	var unicastTotal float64
	for _, d := range task.Destinations {
		one := Task{Source: task.Source, Destinations: []int{d}, Chain: task.Chain}
		r, err := SolveTwoStage(net, one, Options{})
		if err != nil {
			t.Fatal(err)
		}
		unicastTotal += r.FinalCost
	}
	if res.FinalCost >= unicastTotal {
		t.Errorf("multicast %v not cheaper than unicast sum %v", res.FinalCost, unicastTotal)
	}
}
