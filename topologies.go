package sftree

import (
	"math/rand"

	"sftree/internal/netgen"
	"sftree/internal/topology"
)

// WaxmanConfig parameterizes Waxman random topologies (ISP-like
// geographic graphs); see internal/netgen.
type WaxmanConfig = netgen.WaxmanConfig

// AbileneNetwork materializes the 11-node Internet2 Abilene backbone
// with the given generator settings; returns the network plus city
// names.
func AbileneNetwork(cfg GenConfig, seed int64) (*Network, []string, error) {
	g, coords, names := topology.Abilene()
	net, err := netgen.Materialize(g, coords, cfg, rand.New(rand.NewSource(seed)))
	if err != nil {
		return nil, nil, err
	}
	return net, names, nil
}

// GeantNetwork materializes the 24-node GEANT European backbone
// reconstruction with the given generator settings; returns the
// network plus city names.
func GeantNetwork(cfg GenConfig, seed int64) (*Network, []string, error) {
	g, coords, names := topology.Geant()
	net, err := netgen.Materialize(g, coords, cfg, rand.New(rand.NewSource(seed)))
	if err != nil {
		return nil, nil, err
	}
	return net, names, nil
}

// GenerateWaxmanNetwork samples a connected Waxman topology wrapped
// with cfg's NFV metadata, deterministically from the seed.
func GenerateWaxmanNetwork(wax WaxmanConfig, cfg GenConfig, seed int64) (*Network, error) {
	return netgen.GenerateWaxman(wax, cfg, rand.New(rand.NewSource(seed)))
}

// FatTreeNetwork builds a k-ary fat-tree fabric (unit link costs) with
// cfg's NFV metadata. Use FatTreeEdgeSwitches for the natural
// multicast endpoints.
func FatTreeNetwork(k int, cfg GenConfig, seed int64) (*Network, error) {
	return netgen.FatTree(k, cfg, rand.New(rand.NewSource(seed)))
}

// FatTreeEdgeSwitches returns the edge-layer node IDs of a k-ary
// fat-tree built by FatTreeNetwork.
func FatTreeEdgeSwitches(k int) []int { return netgen.FatTreeEdgeSwitches(k) }
