// Email security multicast: the paper's introductory example. An NFV
// provider fans an email feed out to several regional mail clusters;
// every copy must pass the chain virus-scanner -> spam-filter ->
// phishing-detector. The example generates a 100-node ISP-like random
// network with pre-deployed security VNFs, then compares the paper's
// two-stage algorithm (MSA) with the SCA and RSA baselines across
// several task sizes, reporting the cost savings claimed in §V.
package main

import (
	"fmt"
	"log"

	"sftree"
)

// Chain VNF IDs from the default catalog.
const (
	virusScanner     = 11
	spamFilter       = 12
	phishingDetector = 13
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	net, err := sftree.GenerateNetwork(sftree.DefaultGenConfig(100, 2), 2026)
	if err != nil {
		return err
	}
	catalog := sftree.DefaultCatalog()
	chain := sftree.SFC{virusScanner, spamFilter, phishingDetector}
	fmt.Printf("network: %d nodes, %d links; SFC: %s -> %s -> %s\n\n",
		net.NumNodes(), net.Graph().NumEdges(),
		catalog[chain[0]].Name, catalog[chain[1]].Name, catalog[chain[2]].Name)

	fmt.Printf("%10s %12s %12s %12s %14s %14s\n",
		"|D|", "MSA", "SCA", "RSA", "MSA vs RSA", "SFT moves")
	for _, nd := range []int{5, 10, 20, 30} {
		task, err := sftree.GenerateTask(net, int64(nd)*17, nd, len(chain))
		if err != nil {
			return err
		}
		task.Chain = chain

		msa, err := sftree.SolveTwoStage(net, task, sftree.Options{})
		if err != nil {
			return err
		}
		sca, err := sftree.SolveSCA(net, task, sftree.Options{})
		if err != nil {
			return err
		}
		rsa, err := sftree.SolveRSA(net, task, int64(nd), sftree.Options{})
		if err != nil {
			return err
		}
		// Sanity: all three embeddings must replay cleanly.
		for _, r := range []*sftree.Result{msa, sca, rsa} {
			if _, err := sftree.Replay(net, r.Embedding); err != nil {
				return err
			}
		}
		saving := 100 * (rsa.FinalCost - msa.FinalCost) / rsa.FinalCost
		fmt.Printf("%10d %12.1f %12.1f %12.1f %13.1f%% %14d\n",
			nd, msa.FinalCost, sca.FinalCost, rsa.FinalCost, saving, msa.MovesAccepted)
	}
	fmt.Println("\nMSA <= SCA <= RSA is the expected ordering; the last column counts")
	fmt.Println("stage-two instance additions that turned the SFC into a true SFT.")
	return nil
}
