// Video streaming over PalmettoNet: the paper's motivating CDN
// scenario (§I). A live video source in Columbia is multicast to
// viewer cities across South Carolina; every stream must traverse
// intrusion detection -> load balancing -> transcoding. The example
// shows how pre-deployed VNFs change the embedding, prints the
// resulting service function tree city by city, and compares against
// the best-known optimality reference.
package main

import (
	"fmt"
	"log"

	"sftree"
)

const (
	ids         = 2  // intrusion detection
	loadBalance = 5  // load balancer
	transcoder  = 15 // video transcoder
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	net, names, err := sftree.PalmettoNetwork(sftree.DefaultGenConfig(45, 2), 7)
	if err != nil {
		return err
	}
	catalog := sftree.DefaultCatalog()

	// Source: Columbia (node 0). Viewers: the coastal and upstate metros.
	source := 0
	viewers := []int{1, 3, 5, 12, 30} // Charleston, Greenville, Rock Hill, Myrtle Beach, Beaufort
	chain := sftree.SFC{ids, loadBalance, transcoder}
	task := sftree.Task{Source: source, Destinations: viewers, Chain: chain}

	fmt.Printf("source: %s; viewers:", names[source])
	for _, v := range viewers {
		fmt.Printf(" %s,", names[v])
	}
	fmt.Printf("\nSFC: %s -> %s -> %s\n\n", catalog[ids].Name, catalog[loadBalance].Name, catalog[transcoder].Name)

	res, err := sftree.SolveTwoStage(net, task, sftree.Options{})
	if err != nil {
		return err
	}
	bd := net.Cost(res.Embedding)
	fmt.Printf("two-stage SFT: cost %.1f km-units (setup %.1f + links %.1f), %d stage-two move(s)\n",
		bd.Total, bd.Setup, bd.Link, res.MovesAccepted)
	for _, inst := range res.Embedding.NewInstances {
		fmt.Printf("  new %s instance in %s (chain position %d)\n",
			catalog[inst.VNF].Name, names[inst.Node], inst.Level)
	}
	for i, v := range viewers {
		fmt.Printf("  %-17s served by", names[v]+":")
		for lvl := 1; lvl <= len(chain); lvl++ {
			fmt.Printf(" %s@%s", catalog[chain[lvl-1]].Name, names[res.Embedding.ServingNode(i, lvl)])
		}
		fmt.Println()
	}

	// How much does reusing the operator's pre-deployed VNFs matter?
	// Rebuild the same topology with no deployments at all.
	bare := sftree.DefaultGenConfig(45, 2)
	bare.DeployedInstances = 0
	bareNet, _, err := sftree.PalmettoNetwork(bare, 7)
	if err != nil {
		return err
	}
	bareRes, err := sftree.SolveTwoStage(bareNet, task, sftree.Options{})
	if err != nil {
		return err
	}
	fmt.Printf("\nwithout any pre-deployed VNFs the same task costs %.1f (+%.1f%%)\n",
		bareRes.FinalCost, 100*(bareRes.FinalCost-res.FinalCost)/res.FinalCost)

	// Reference solution (exact SFC x exact Steiner sweep + OPA).
	bks, err := sftree.SolveBestKnown(net, task)
	if err != nil {
		return err
	}
	fmt.Printf("best-known reference: %.1f; two-stage is within %.2fx\n",
		bks.FinalCost, res.FinalCost/bks.FinalCost)
	return nil
}
