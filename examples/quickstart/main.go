// Quickstart: a five-minute tour of the sftree public API on the
// hand-sized network from DESIGN.md. It builds a 6-node topology with
// pre-deployed VNFs, solves the multicast SFT embedding with the
// two-stage algorithm, prints the resulting tree, verifies it through
// the flow-level replay simulator, and compares against the exact ILP.
package main

import (
	"fmt"
	"log"

	"sftree"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Catalog: two functions, one capacity unit each.
	catalog := []sftree.VNF{
		{ID: 0, Name: "firewall", Demand: 1},
		{ID: 1, Name: "transcoder", Demand: 1},
	}

	// Topology (link costs on edges; A, B, C are servers):
	//
	//	source --1-- A --1-- B --1-- d1
	//	             |        \
	//	             2        2.5
	//	             |          \
	//	             C ----1---- d2
	//
	// firewall is already running on A; transcoders on B and C.
	net, err := sftree.NewNetworkBuilder(6, catalog).
		AddLink(0, 1, 1).   // source-A
		AddLink(1, 2, 1).   // A-B
		AddLink(2, 3, 1).   // B-d1
		AddLink(1, 4, 2).   // A-C
		AddLink(4, 5, 1).   // C-d2
		AddLink(2, 4, 2.5). // B-C
		SetServer(1, 5).SetServer(2, 5).SetServer(4, 5).
		SetSetupCost(0, 1, 1).SetSetupCost(0, 2, 1).SetSetupCost(0, 4, 1).
		SetSetupCost(1, 1, 5).SetSetupCost(1, 2, 5).SetSetupCost(1, 4, 5).
		Deploy(0, 1). // firewall @ A
		Deploy(1, 2). // transcoder @ B
		Deploy(1, 4). // transcoder @ C
		Build()
	if err != nil {
		return err
	}

	// Multicast task: deliver from node 0 to {d1=3, d2=5} through
	// firewall -> transcoder.
	task := sftree.Task{Source: 0, Destinations: []int{3, 5}, Chain: sftree.SFC{0, 1}}

	res, err := sftree.SolveTwoStage(net, task, sftree.Options{})
	if err != nil {
		return err
	}
	fmt.Println("=== two-stage service function tree ===")
	fmt.Print(res.Embedding)
	fmt.Printf("stage one (SFC + Steiner tree): %.2f\n", res.Stage1Cost)
	fmt.Printf("after stage two (%d move(s)):   %.2f\n", res.MovesAccepted, res.FinalCost)

	// Independent verification: replay the embedding flow by flow.
	rep, err := sftree.Replay(net, res.Embedding)
	if err != nil {
		return err
	}
	fmt.Printf("replay: delivered %d/%d destinations, cost %.2f, max edge load %d copies\n",
		rep.Delivered, len(task.Destinations), rep.TotalCost, rep.MaxEdgeLoad)

	// The instance is tiny, so the built-in ILP can prove optimality.
	ilpRes, err := sftree.SolveILP(net, task, sftree.ILPOptions{WarmStart: true})
	if err != nil {
		return err
	}
	fmt.Printf("exact ILP: objective %.2f (proven optimal: %v)\n", ilpRes.Objective, ilpRes.Proven)
	fmt.Printf("two-stage gap vs optimum: %.1f%%\n",
		100*(res.FinalCost-ilpRes.Objective)/ilpRes.Objective)
	return nil
}
