// Service overlay forest: three regional broadcasters (distinct
// sources) each multicast through their own SFC on one shared Abilene
// backbone — the multi-source setting the paper contrasts itself with
// (Kuo et al., ICDCS'17). The forest embedder shares VNF instances
// across the trees; the example quantifies what that sharing saves
// over solving each broadcast in isolation, and compares against the
// single-node pseudo-multicast baseline (Xu et al., ICDCS'17).
package main

import (
	"fmt"
	"log"

	"sftree"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cfg := sftree.DefaultGenConfig(11, 2)
	cfg.DeployedInstances = 4
	net, names, err := sftree.AbileneNetwork(cfg, 11)
	if err != nil {
		return err
	}
	catalog := sftree.DefaultCatalog()

	// Three broadcasts: west-coast, central, east-coast sources.
	tasks := []sftree.Task{
		{Source: 0, Destinations: []int{8, 9, 10}, Chain: sftree.SFC{0, 5, 15}}, // Seattle -> east
		{Source: 5, Destinations: []int{0, 1, 6}, Chain: sftree.SFC{0, 5, 15}},  // Houston -> west+north
		{Source: 10, Destinations: []int{2, 3, 5}, Chain: sftree.SFC{0, 5, 15}}, // New York -> south+west
	}
	fmt.Printf("backbone: Abilene (%d nodes); chain: %s -> %s -> %s\n\n",
		net.NumNodes(), catalog[0].Name, catalog[5].Name, catalog[15].Name)

	forest, err := sftree.SolveForest(net, tasks, sftree.Options{})
	if err != nil {
		return err
	}
	fmt.Println("=== shared forest ===")
	for i, tree := range forest.Trees {
		fmt.Printf("  broadcast from %-12s cost %8.1f (%d new instance(s))\n",
			names[tasks[i].Source]+":", tree.FinalCost, len(tree.Embedding.NewInstances))
	}
	fmt.Printf("  total %.1f, %d instance(s) shared between trees, admission order %v\n",
		forest.TotalCost, forest.SharedInstances, forest.Order)

	var isolated float64
	fmt.Println("\n=== isolated trees (no sharing) ===")
	for _, task := range tasks {
		res, err := sftree.SolveTwoStage(net, task, sftree.Options{})
		if err != nil {
			return err
		}
		isolated += res.FinalCost
		fmt.Printf("  broadcast from %-12s cost %8.1f\n", names[task.Source]+":", res.FinalCost)
	}
	fmt.Printf("  total %.1f\n", isolated)
	fmt.Printf("\nforest sharing saves %.1f%%\n", 100*(isolated-forest.TotalCost)/isolated)

	fmt.Println("\n=== pseudo-multicast baseline (whole chain on one node) ===")
	var collapsed float64
	feasible := true
	for _, task := range tasks {
		res, err := sftree.SolveOneNode(net, task, sftree.Options{})
		if err != nil {
			feasible = false
			break
		}
		collapsed += res.FinalCost
	}
	if feasible {
		fmt.Printf("  total %.1f (%.1f%% above the forest)\n",
			collapsed, 100*(collapsed-forest.TotalCost)/forest.TotalCost)
	} else {
		fmt.Println("  infeasible: no single node can host a whole chain")
	}
	return nil
}
