// What-if analysis: how the embedding cost reacts to operator knobs.
// On one fixed 80-node network and task, the example sweeps (a) the
// VNF setup-cost level mu and (b) the node capacity budget, printing
// how the two-stage algorithm trades link cost against setup cost and
// when capacity pressure forces relocations — the operational
// questions behind the paper's Figs. 10-11.
package main

import (
	"fmt"
	"log"

	"sftree"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("=== sweep 1: VNF setup cost level (mu x mean shortest path) ===")
	fmt.Printf("%6s %12s %12s %12s %10s\n", "mu", "total", "setup", "link", "instances")
	for _, mu := range []float64{0.5, 1, 2, 3, 5} {
		net, err := sftree.GenerateNetwork(sftree.DefaultGenConfig(80, mu), 99)
		if err != nil {
			return err
		}
		task, err := sftree.GenerateTask(net, 100, 12, 5)
		if err != nil {
			return err
		}
		res, err := sftree.SolveTwoStage(net, task, sftree.Options{})
		if err != nil {
			return err
		}
		bd := net.Cost(res.Embedding)
		fmt.Printf("%6.1f %12.1f %12.1f %12.1f %10d\n",
			mu, bd.Total, bd.Setup, bd.Link, len(res.Embedding.NewInstances))
	}
	fmt.Println("higher mu shifts the optimizer toward reusing deployed instances")
	fmt.Println("and fewer, more central new instances (setup grows, link follows).")

	fmt.Println("\n=== sweep 2: node capacity budget ===")
	fmt.Printf("%10s %12s %14s\n", "capacity", "total", "feasible")
	for _, capUnits := range []int{1, 2, 3, 5} {
		cfg := sftree.DefaultGenConfig(80, 2)
		cfg.CapacityMin, cfg.CapacityMax = capUnits, capUnits
		cfg.DeployedInstances = 0 // isolate the capacity effect
		net, err := sftree.GenerateNetwork(cfg, 99)
		if err != nil {
			return err
		}
		task, err := sftree.GenerateTask(net, 100, 12, 5)
		if err != nil {
			return err
		}
		res, err := sftree.SolveTwoStage(net, task, sftree.Options{})
		if err != nil {
			fmt.Printf("%10d %12s %14v\n", capUnits, "-", err)
			continue
		}
		fmt.Printf("%10d %12.1f %14v\n", capUnits, res.FinalCost, true)
	}
	fmt.Println("tight capacities force the repair step to scatter the chain, raising cost;")
	fmt.Println("with generous capacities the optimizer colocates freely.")
	return nil
}
