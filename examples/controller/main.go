// Controller: consume the solver over HTTP, the way an SDN controller
// would. The example starts an in-process sftserve instance backed by
// a PalmettoNet network, then drives it through the typed client:
// health check, a stateless solve with server-side validation, and a
// session admit/release cycle.
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"

	"sftree"
	"sftree/internal/core"
	"sftree/internal/server"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// In-process server (a real deployment runs cmd/sftserve).
	net, names, err := sftree.PalmettoNetwork(sftree.DefaultGenConfig(45, 2), 8)
	if err != nil {
		return err
	}
	ts := httptest.NewServer(server.New(net, core.Options{}))
	defer ts.Close()
	fmt.Printf("server up at %s (PalmettoNet, %d nodes)\n\n", ts.URL, net.NumNodes())

	client := server.NewClient(ts.URL, nil)
	ctx := context.Background()
	if err := client.Health(ctx); err != nil {
		return err
	}

	// Stateless solve: ship the whole instance, get the SFT back.
	task, err := sftree.GenerateTask(net, 9, 6, 4)
	if err != nil {
		return err
	}
	solved, err := client.Solve(ctx, server.SolveRequest{
		Instance: sftree.InstanceDoc{Network: net, Task: task},
	})
	if err != nil {
		return err
	}
	fmt.Printf("stateless solve: cost %.1f (%.1f setup + %.1f links), %d stage-two moves\n",
		solved.Cost.Total, solved.Cost.Setup, solved.Cost.Link, solved.Moves)

	// Round-trip the embedding through server-side validation.
	verdict, err := client.Validate(ctx, server.ValidateRequest{
		Instance:  sftree.InstanceDoc{Network: net, Task: task},
		Embedding: solved.Embedding,
	})
	if err != nil {
		return err
	}
	fmt.Printf("server validation: valid=%v, delivered=%d\n\n", verdict.Valid, verdict.Delivered)

	// Session lifecycle on the server's own network state.
	fmt.Println("admitting three sessions:")
	var ids []sftree.SessionID
	for i := int64(0); i < 3; i++ {
		sessTask, err := sftree.GenerateTask(net, 20+i, 4, 3)
		if err != nil {
			return err
		}
		admitted, err := client.Admit(ctx, sessTask)
		if err != nil {
			fmt.Printf("  session %d rejected: %v\n", i, err)
			continue
		}
		ids = append(ids, admitted.ID)
		fmt.Printf("  session %d admitted from %s at cost %.1f\n",
			admitted.ID, names[sessTask.Source], admitted.Cost)
	}
	stats, err := client.SessionStats(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("manager: %d active, cumulative cost %.1f\n", stats.Active, stats.AdmittedCost)

	for _, id := range ids {
		if err := client.Release(ctx, id); err != nil {
			return err
		}
	}
	stats, err = client.SessionStats(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("after release: %d active sessions\n", stats.Active)
	return nil
}
