// Dynamic sessions: an operator's day in fast-forward. Multicast
// sessions (webinars, live events, software rollouts) arrive on a
// shared 50-node network, each with its own SFC; the session manager
// embeds every arrival against the *current* deployment state, so hot
// VNF instances get shared across overlapping sessions and are torn
// down only when their last subscriber leaves. The example contrasts
// that with a naive mode where every session deploys privately.
package main

import (
	"fmt"
	"log"

	"sftree"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cfg := sftree.DefaultGenConfig(50, 2)
	cfg.DeployedInstances = 10 // a lightly pre-provisioned operator

	workload := sftree.DefaultTraceConfig()
	workload.Sessions = 60
	workload.ArrivalRate = 2 // bursty: sessions overlap heavily
	workload.MeanHold = 15

	// Mode 1: shared instances (the manager's default behaviour).
	shared, err := sftree.GenerateNetwork(cfg, 404)
	if err != nil {
		return err
	}
	events, err := sftree.GenerateTrace(shared, workload, 405)
	if err != nil {
		return err
	}
	sum := sftree.SummarizeTrace(events)
	fmt.Printf("workload: %d sessions, peak overlap %d, mean |D| %.1f\n\n",
		sum.Sessions, sum.PeakOverlap, sum.MeanDests)

	mgr := sftree.NewSessionManager(shared, sftree.Options{})
	stats, err := sftree.RunTrace(mgr, events)
	if err != nil {
		return err
	}
	fmt.Println("=== shared-instance mode (session manager) ===")
	fmt.Printf("acceptance %.1f%%, mean session cost %.1f, peak live instances %d\n",
		100*stats.AcceptanceRatio, stats.CostPerSession.Mean(), stats.PeakInstances)

	// Mode 2: every session solved against the pristine network (no
	// sharing): each arrival pays full setup for its whole chain.
	pristine, err := sftree.GenerateNetwork(cfg, 404)
	if err != nil {
		return err
	}
	var naiveCost float64
	naiveCount := 0
	for _, ev := range events {
		if ev.Kind != sftree.TraceArrival {
			continue
		}
		res, err := sftree.SolveTwoStage(pristine, ev.Task, sftree.Options{})
		if err != nil {
			continue
		}
		naiveCost += res.FinalCost
		naiveCount++
	}
	fmt.Println("\n=== isolated mode (no cross-session reuse) ===")
	fmt.Printf("solved %d sessions, mean cost %.1f\n", naiveCount, naiveCost/float64(naiveCount))

	if naiveCount > 0 && stats.Admitted > 0 {
		sharedMean := stats.CostPerSession.Mean()
		naiveMean := naiveCost / float64(naiveCount)
		fmt.Printf("\ncross-session reuse saves %.1f%% per session on this workload\n",
			100*(naiveMean-sharedMean)/naiveMean)
	}
	return nil
}
