// Command sfttrace generates a dynamic multicast workload (Poisson
// arrivals, exponential holds, Zipf destination popularity) and
// replays it through the session manager, reporting acceptance ratio,
// per-session cost, and peak instance footprint.
//
// Usage:
//
//	sfttrace -nodes 60 -sessions 200 -rate 2 -hold 8
//	sfttrace -palmetto -sessions 100
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"sftree"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sfttrace:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("sfttrace", flag.ContinueOnError)
	var (
		nodes    = fs.Int("nodes", 60, "network size (ignored with -palmetto)")
		palmetto = fs.Bool("palmetto", false, "use the PalmettoNet topology")
		sessions = fs.Int("sessions", 100, "number of session arrivals")
		rate     = fs.Float64("rate", 1, "Poisson arrival rate")
		hold     = fs.Float64("hold", 10, "mean session holding time")
		seed     = fs.Int64("seed", 1, "random seed")
		mu       = fs.Float64("mu", 2, "setup cost multiplier")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var (
		net *sftree.Network
		err error
	)
	if *palmetto {
		net, _, err = sftree.PalmettoNetwork(sftree.DefaultGenConfig(45, *mu), *seed)
	} else {
		net, err = sftree.GenerateNetwork(sftree.DefaultGenConfig(*nodes, *mu), *seed)
	}
	if err != nil {
		return err
	}
	cfg := sftree.DefaultTraceConfig()
	cfg.Sessions = *sessions
	cfg.ArrivalRate = *rate
	cfg.MeanHold = *hold
	events, err := sftree.GenerateTrace(net, cfg, *seed+1)
	if err != nil {
		return err
	}
	sum := sftree.SummarizeTrace(events)
	fmt.Fprintf(w, "workload: %d sessions over %.1f time units, peak overlap %d, mean |D| %.1f, mean SFC %.1f\n",
		sum.Sessions, sum.Span, sum.PeakOverlap, sum.MeanDests, sum.MeanChainLen)

	m := sftree.NewSessionManager(net, sftree.Options{})
	stats, err := sftree.RunTrace(m, events)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "admitted %d, rejected %d (acceptance %.1f%%)\n",
		stats.Admitted, stats.Rejected, 100*stats.AcceptanceRatio)
	fmt.Fprintf(w, "per-session cost: mean %.1f, min %.1f, max %.1f\n",
		stats.CostPerSession.Mean(), stats.CostPerSession.Min(), stats.CostPerSession.Max())
	fmt.Fprintf(w, "peak concurrent sessions %d, peak live dynamic instances %d\n",
		stats.PeakActive, stats.PeakInstances)
	final := m.Stats()
	fmt.Fprintf(w, "final state: %d active sessions, cumulative admitted cost %.1f\n",
		final.Active, final.AdmittedCost)
	return nil
}
