// Command sfttrace generates a dynamic multicast workload (Poisson
// arrivals, exponential holds, Zipf destination popularity) and
// replays it through the session manager, reporting acceptance ratio,
// per-session cost, and peak instance footprint.
//
// It is also the consumer side of the solver's telemetry streams:
// -parse summarizes a JSONL event stream (sftembed -trace output,
// including request-ID/warm/rung-stamped lines from scoped streams;
// older streams without those fields parse identically), and -traces
// pulls and summarizes a server's /debug/traces ring.
//
// Usage:
//
//	sfttrace -nodes 60 -sessions 200 -rate 2 -hold 8
//	sfttrace -palmetto -sessions 100
//	sfttrace -parse events.jsonl
//	sfttrace -traces http://localhost:8080
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"time"

	"sftree"
	"sftree/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sfttrace:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("sfttrace", flag.ContinueOnError)
	var (
		nodes    = fs.Int("nodes", 60, "network size (ignored with -palmetto)")
		palmetto = fs.Bool("palmetto", false, "use the PalmettoNet topology")
		sessions = fs.Int("sessions", 100, "number of session arrivals")
		rate     = fs.Float64("rate", 1, "Poisson arrival rate")
		hold     = fs.Float64("hold", 10, "mean session holding time")
		seed     = fs.Int64("seed", 1, "random seed")
		mu       = fs.Float64("mu", 2, "setup cost multiplier")
		parse    = fs.String("parse", "", "summarize a JSONL solver-event stream instead of running a workload")
		traces   = fs.String("traces", "", "pull and summarize /debug/traces from this server base URL")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *parse != "" {
		return parseJSONL(*parse, w)
	}
	if *traces != "" {
		return summarizeTraces(*traces, w)
	}
	var (
		net *sftree.Network
		err error
	)
	if *palmetto {
		net, _, err = sftree.PalmettoNetwork(sftree.DefaultGenConfig(45, *mu), *seed)
	} else {
		net, err = sftree.GenerateNetwork(sftree.DefaultGenConfig(*nodes, *mu), *seed)
	}
	if err != nil {
		return err
	}
	cfg := sftree.DefaultTraceConfig()
	cfg.Sessions = *sessions
	cfg.ArrivalRate = *rate
	cfg.MeanHold = *hold
	events, err := sftree.GenerateTrace(net, cfg, *seed+1)
	if err != nil {
		return err
	}
	sum := sftree.SummarizeTrace(events)
	fmt.Fprintf(w, "workload: %d sessions over %.1f time units, peak overlap %d, mean |D| %.1f, mean SFC %.1f\n",
		sum.Sessions, sum.Span, sum.PeakOverlap, sum.MeanDests, sum.MeanChainLen)

	m := sftree.NewSessionManager(net, sftree.Options{})
	stats, err := sftree.RunTrace(m, events)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "admitted %d, rejected %d (acceptance %.1f%%)\n",
		stats.Admitted, stats.Rejected, 100*stats.AcceptanceRatio)
	fmt.Fprintf(w, "per-session cost: mean %.1f, min %.1f, max %.1f\n",
		stats.CostPerSession.Mean(), stats.CostPerSession.Min(), stats.CostPerSession.Max())
	fmt.Fprintf(w, "peak concurrent sessions %d, peak live dynamic instances %d\n",
		stats.PeakActive, stats.PeakInstances)
	final := m.Stats()
	fmt.Fprintf(w, "final state: %d active sessions, cumulative admitted cost %.1f\n",
		final.Active, final.AdmittedCost)
	return nil
}

// eventLine mirrors the JSONL wire schema of internal/obs. It lists
// the full current field set; streams written before the request_id /
// warm / rung additions simply decode those to their zero values, and
// unknown future fields are ignored — the stream stays parseable in
// both directions.
type eventLine struct {
	Kind       string `json:"kind"`
	Pass       int    `json:"pass"`
	Moves      int    `json:"moves"`
	DurationNs int64  `json:"duration_ns"`
	RequestID  string `json:"request_id"`
	Warm       bool   `json:"warm"`
	Rung       string `json:"rung"`
}

// parseJSONL summarizes a solver-event JSONL stream: per-kind counts,
// phase time totals, warm/cold solve split, and — when the stream was
// scoped — the distinct request IDs and repair rungs seen.
func parseJSONL(path string, w io.Writer) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()

	kinds := map[string]int{}
	durations := map[string]time.Duration{}
	requests := map[string]int{}
	rungs := map[string]int{}
	warmBuilds, coldBuilds, lines, badLines := 0, 0, 0, 0
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var ev eventLine
		if err := json.Unmarshal(line, &ev); err != nil || ev.Kind == "" {
			badLines++
			continue
		}
		lines++
		kinds[ev.Kind]++
		durations[ev.Kind] += time.Duration(ev.DurationNs)
		if ev.RequestID != "" {
			requests[ev.RequestID]++
		}
		if ev.Rung != "" {
			rungs[ev.Rung]++
		}
		if ev.Kind == "apsp_build" {
			if ev.Warm {
				warmBuilds++
			} else {
				coldBuilds++
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if lines == 0 {
		return fmt.Errorf("%s: no parseable events (%d bad lines)", path, badLines)
	}

	fmt.Fprintf(w, "%s: %d events", path, lines)
	if badLines > 0 {
		fmt.Fprintf(w, " (%d unparseable lines skipped)", badLines)
	}
	fmt.Fprintln(w)
	names := make([]string, 0, len(kinds))
	for k := range kinds {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		if d := durations[k]; d > 0 {
			fmt.Fprintf(w, "  %-14s %6d  total %s\n", k, kinds[k], d.Round(time.Microsecond))
		} else {
			fmt.Fprintf(w, "  %-14s %6d\n", k, kinds[k])
		}
	}
	fmt.Fprintf(w, "solves: %d (%d warm metric, %d cold)\n",
		kinds["stage2_end"], warmBuilds, coldBuilds)
	if len(requests) > 0 {
		fmt.Fprintf(w, "request-scoped events: %d distinct request IDs\n", len(requests))
	}
	if len(rungs) > 0 {
		rn := make([]string, 0, len(rungs))
		for r := range rungs {
			rn = append(rn, r)
		}
		sort.Strings(rn)
		for _, r := range rn {
			fmt.Fprintf(w, "repair rung %s: %d events\n", r, rungs[r])
		}
	}
	return nil
}

// summarizeTraces pulls a server's /debug/traces ring and reports the
// serving-path story it tells: ops, warm ratio, repair rungs, request
// ID coverage and the slowest runs.
func summarizeTraces(base string, w io.Writer) error {
	resp, err := http.Get(base + "/debug/traces")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("/debug/traces: %s", resp.Status)
	}
	var doc struct {
		Capacity int         `json:"capacity"`
		Added    int64       `json:"added"`
		Dropped  int64       `json:"dropped"`
		Traces   []obs.Trace `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return err
	}
	fmt.Fprintf(w, "trace ring: %d held (capacity %d, %d added, %d evicted)\n",
		len(doc.Traces), doc.Capacity, doc.Added, doc.Dropped)
	if len(doc.Traces) == 0 {
		return nil
	}
	ops := map[string]int{}
	rungs := map[string]int{}
	warm, withID, early, failed := 0, 0, 0, 0
	slowest := doc.Traces[0]
	for _, t := range doc.Traces {
		ops[t.Op]++
		if t.Rung != "" {
			rungs[t.Rung]++
		}
		if t.Warm {
			warm++
		}
		if t.RequestID != "" {
			withID++
		}
		if t.EarlyStop {
			early++
		}
		if t.Err != "" {
			failed++
		}
		if t.DurationNs > slowest.DurationNs {
			slowest = t
		}
	}
	names := make([]string, 0, len(ops))
	for k := range ops {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		fmt.Fprintf(w, "  op %-7s %5d\n", k, ops[k])
	}
	rn := make([]string, 0, len(rungs))
	for r := range rungs {
		rn = append(rn, r)
	}
	sort.Strings(rn)
	for _, r := range rn {
		fmt.Fprintf(w, "  repair rung %-8s %5d\n", r, rungs[r])
	}
	fmt.Fprintf(w, "warm-metric solves %d/%d, request-ID stamped %d/%d, early stops %d, failures %d\n",
		warm, len(doc.Traces), withID, len(doc.Traces), early, failed)
	fmt.Fprintf(w, "slowest: op=%s dur=%s warm=%v request_id=%s\n",
		slowest.Op, time.Duration(slowest.DurationNs).Round(time.Microsecond), slowest.Warm, slowest.RequestID)
	return nil
}
