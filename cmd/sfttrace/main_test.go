package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSmallTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-nodes", "25", "-sessions", "15", "-seed", "3"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"workload:", "admitted", "per-session cost", "final state: 0 active sessions"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output:\n%s", want, out)
		}
	}
}

func TestRunPalmettoTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-palmetto", "-sessions", "10"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "10 sessions") {
		t.Errorf("output:\n%s", buf.String())
	}
}

func TestRunBadFlags(t *testing.T) {
	if err := run([]string{"-sessions", "0"}, nil); err == nil {
		t.Error("zero sessions accepted")
	}
	if err := run([]string{"-nope"}, nil); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestRunDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	args := []string{"-nodes", "20", "-sessions", "8", "-seed", "5"}
	if err := run(args, &a); err != nil {
		t.Fatal(err)
	}
	if err := run(args, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("same seed produced different trace results")
	}
}
