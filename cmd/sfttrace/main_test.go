package main

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sftree/internal/obs"
)

func TestRunSmallTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-nodes", "25", "-sessions", "15", "-seed", "3"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"workload:", "admitted", "per-session cost", "final state: 0 active sessions"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output:\n%s", want, out)
		}
	}
}

func TestRunPalmettoTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-palmetto", "-sessions", "10"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "10 sessions") {
		t.Errorf("output:\n%s", buf.String())
	}
}

func TestRunBadFlags(t *testing.T) {
	if err := run([]string{"-sessions", "0"}, nil); err == nil {
		t.Error("zero sessions accepted")
	}
	if err := run([]string{"-nope"}, nil); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestRunDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	args := []string{"-nodes", "20", "-sessions", "8", "-seed", "5"}
	if err := run(args, &a); err != nil {
		t.Fatal(err)
	}
	if err := run(args, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("same seed produced different trace results")
	}
}

// TestParseJSONL feeds a mixed stream: PR 2-era lines (no request_id /
// warm / rung fields) and current scoped lines. Both must parse; the
// summary must surface the new attributes without choking on the old.
func TestParseJSONL(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "events.jsonl")
	lines := []string{
		// Old-schema lines: field set as emitted before the scoped stream.
		`{"kind":"apsp_build","duration_ns":1200000}`,
		`{"kind":"stage1_end","cost":42.5,"candidates":6,"duration_ns":800000}`,
		`{"kind":"stage2_end","cost":40.1,"moves":3,"duration_ns":500000}`,
		// Current-schema lines with the request/warm/rung additions.
		`{"kind":"apsp_build","warm":true,"request_id":"req-1"}`,
		`{"kind":"stage2_end","cost":39.0,"request_id":"req-1","duration_ns":300000}`,
		`{"kind":"stage2_end","cost":44.0,"request_id":"req-2","rung":"patch"}`,
		// Garbage must be skipped, not fatal.
		`not json`,
		``,
	}
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run([]string{"-parse", path}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"6 events",
		"1 unparseable lines skipped",
		"solves: 3 (1 warm metric, 1 cold)",
		"2 distinct request IDs",
		"repair rung patch: 1 events",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output:\n%s", want, out)
		}
	}
}

func TestParseJSONLEmpty(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "empty.jsonl")
	if err := os.WriteFile(path, []byte("garbage\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-parse", path}, io.Discard); err == nil {
		t.Error("stream with no parseable events accepted")
	}
}

// TestSummarizeTraces serves a real TraceBuffer over HTTP and checks
// the consumer reads ops, rungs, warm ratio and request IDs back out.
func TestSummarizeTraces(t *testing.T) {
	buf := obs.NewTraceBuffer(8)
	buf.Add(obs.Trace{Op: "admit", RequestID: "req-9", Warm: true, Session: -1, DurationNs: 2e6})
	buf.Add(obs.Trace{Op: "repair", Rung: "patch", Session: 3, DurationNs: 5e6})
	buf.Add(obs.Trace{Op: "solve", RequestID: "req-a", Err: "rejected", Session: -1, DurationNs: 1e6})
	ts := httptest.NewServer(http.StripPrefix("/debug/traces", buf.Handler()))
	defer ts.Close()

	var out bytes.Buffer
	if err := run([]string{"-traces", ts.URL}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"3 held (capacity 8, 3 added, 0 evicted)",
		"op admit",
		"repair rung patch",
		"warm-metric solves 1/3",
		"request-ID stamped 2/3",
		"failures 1",
		"slowest: op=repair",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("missing %q in output:\n%s", want, got)
		}
	}
}
