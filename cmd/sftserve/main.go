// Command sftserve runs the HTTP solving service: stateless /v1/solve,
// /v1/validate and /v1/render endpoints plus a stateful /v1/sessions
// API backed by the dynamic session manager — the shape in which an
// SDN controller would consume this library.
//
// Observability is built in: every request gets an X-Request-ID and a
// structured access log line, GET /metrics serves the JSON metrics
// snapshot (per-route latency histograms, solver phase timings,
// session lifecycle counters, cache hit rates and runtime-sampler
// gauges), GET /debug/traces the bounded ring of request-scoped
// solver traces keyed by request ID, GET /readyz the readiness
// probe, and -debug additionally mounts net/http/pprof under
// /debug/pprof/ and the expvar dump under /debug/vars. SIGINT/SIGTERM trigger a graceful
// http.Server.Shutdown so in-flight solves finish, then the final
// metrics snapshot is flushed to the log.
//
// Usage:
//
//	sftserve -listen :8080 -network inst.json    # sessions on a file-loaded network
//	sftserve -listen :8080 -nodes 50             # sessions on a generated network
//	sftserve -listen :8080 -stateless            # stateless endpoints only
//	sftserve -listen :8080 -debug                # + pprof and expvar endpoints
package main

import (
	"context"
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sftree"
	"sftree/internal/core"
	"sftree/internal/obs"
	"sftree/internal/server"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		slog.Error("sftserve failed", "err", err)
		os.Exit(1)
	}
}

// onReady, when set (tests), receives the bound listen address.
var onReady func(addr string)

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("sftserve", flag.ContinueOnError)
	var (
		listen    = fs.String("listen", ":8080", "listen address")
		netFile   = fs.String("network", "", "instance JSON whose network backs the session API")
		nodes     = fs.Int("nodes", 50, "generate a network of this size when -network is empty")
		seed      = fs.Int64("seed", 1, "seed for the generated network")
		stateless = fs.Bool("stateless", false, "serve only the stateless endpoints")
		debug     = fs.Bool("debug", false, "mount /debug/pprof/ and /debug/vars")
		drain     = fs.Duration("shutdown-timeout", 10*time.Second, "graceful shutdown drain budget")
		solveMax  = fs.Duration("solve-timeout", 0, "ceiling on any one solve/admission; the solver returns its best embedding so far at the deadline (0 = unbounded)")
		sample    = fs.Duration("sample-interval", 5*time.Second, "Go-runtime sampler period feeding /metrics (goroutines, heap, GC pauses); 0 disables")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var network *sftree.Network
	switch {
	case *stateless:
		// nil network: session endpoints answer 501.
	case *netFile != "":
		blob, err := os.ReadFile(*netFile)
		if err != nil {
			return err
		}
		var doc sftree.InstanceDoc
		if err := json.Unmarshal(blob, &doc); err != nil {
			return fmt.Errorf("parse %s: %w", *netFile, err)
		}
		network = doc.Network
	default:
		var err error
		network, err = sftree.GenerateNetwork(sftree.DefaultGenConfig(*nodes, 2), *seed)
		if err != nil {
			return err
		}
	}

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	reg := obs.NewRegistry()
	reg.PublishExpvar("sftree")
	srv := server.NewWith(network, core.Options{}, server.Config{
		Registry:     reg,
		Logger:       logger,
		SolveTimeout: *solveMax,
	})
	if *sample > 0 {
		stopSampler := obs.StartRuntimeSampler(ctx, reg, *sample)
		defer stopSampler()
	}

	mux := http.NewServeMux()
	mux.Handle("/", srv)
	if *debug {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/debug/vars", expvar.Handler())
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	hs := &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
	}
	logger.Info("sftserve listening",
		"addr", ln.Addr().String(), "sessions", network != nil, "debug", *debug)
	if onReady != nil {
		onReady(ln.Addr().String())
	}

	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}

	// Graceful drain: stop accepting, let in-flight solves finish.
	logger.Info("shutting down", "drain", drain.String())
	sctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	shutdownErr := hs.Shutdown(sctx)
	<-errCh // Serve has returned http.ErrServerClosed

	// Final metrics flush, so a terminated process leaves its counters
	// in the log.
	if blob, err := json.Marshal(reg.Snapshot()); err == nil {
		logger.Info("final metrics", "metrics", string(blob))
	}
	if shutdownErr != nil {
		return fmt.Errorf("shutdown: %w", shutdownErr)
	}
	logger.Info("sftserve stopped")
	return nil
}
