// Command sftserve runs the HTTP solving service: stateless /v1/solve,
// /v1/validate and /v1/render endpoints plus a stateful /v1/sessions
// API backed by the dynamic session manager — the shape in which an
// SDN controller would consume this library.
//
// Observability is built in: every request gets an X-Request-ID and a
// structured access log line, GET /metrics serves the JSON metrics
// snapshot (per-route latency histograms, solver phase timings,
// session lifecycle counters, cache hit rates and runtime-sampler
// gauges), GET /debug/traces the bounded ring of request-scoped
// solver traces keyed by request ID, GET /readyz the readiness
// probe, and -debug additionally mounts net/http/pprof under
// /debug/pprof/ and the expvar dump under /debug/vars. SIGINT/SIGTERM trigger a graceful
// http.Server.Shutdown so in-flight solves finish, then the final
// metrics snapshot is flushed to the log.
//
// Usage:
//
//	sftserve -listen :8080 -network inst.json    # sessions on a file-loaded network
//	sftserve -listen :8080 -nodes 50             # sessions on a generated network
//	sftserve -listen :8080 -stateless            # stateless endpoints only
//	sftserve -listen :8080 -debug                # + pprof and expvar endpoints
//	sftserve -listen :8080 -nodes 50 -wal-dir /var/lib/sft/wal
//
// With -wal-dir the session API is durable: every admission, release
// and repair outcome is written to a checksummed write-ahead log
// before it commits, a compacted snapshot is folded in every
// -snapshot-interval, and a restart replays the log — the process
// comes back with every committed session, its refcount ledger and
// its accounting intact, cross-checked against the conformance
// validator before serving. Recovery counters (replayed records,
// replay duration, torn-tail detection, unplaceable instances) are
// published in /metrics. On graceful shutdown the server drains
// in-flight admissions, writes a final snapshot and closes the log.
package main

import (
	"context"
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sftree"
	"sftree/internal/core"
	"sftree/internal/dynamic"
	"sftree/internal/obs"
	"sftree/internal/server"
	"sftree/internal/wal"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		slog.Error("sftserve failed", "err", err)
		os.Exit(1)
	}
}

// onReady, when set (tests), receives the bound listen address.
var onReady func(addr string)

// shutdownSteps names the ordered phases of a graceful stop. Any step
// may be nil (the feature is not enabled); runShutdown skips nils but
// never reorders: the HTTP listener drains first (no new enqueues),
// then the queue drains (accepted tickets resolve), then the manager
// waits out in-flight commits, then the final snapshot folds the WAL,
// and only then does the log close.
type shutdownSteps struct {
	httpShutdown func(context.Context) error
	queueDrain   func(context.Context) error
	mgrDrain     func(context.Context) error
	checkpoint   func() (uint64, error)
	closeWAL     func() error
}

// runShutdown executes the steps in order under one drain budget. The
// HTTP shutdown error is returned (it decides the exit status); later
// failures are logged and do not abort the remaining steps — a stuck
// queue must not keep the WAL from its final snapshot.
func runShutdown(ctx context.Context, steps shutdownSteps, logger *slog.Logger) error {
	var httpErr error
	if steps.httpShutdown != nil {
		httpErr = steps.httpShutdown(ctx)
	}
	if steps.queueDrain != nil {
		if err := steps.queueDrain(ctx); err != nil {
			logger.Error("drain admission queue", "err", err)
		}
	}
	if steps.mgrDrain != nil {
		if err := steps.mgrDrain(ctx); err != nil {
			logger.Error("drain in-flight admissions", "err", err)
		}
	}
	if steps.checkpoint != nil {
		if seq, err := steps.checkpoint(); err != nil {
			logger.Error("final snapshot failed", "err", err)
		} else {
			logger.Info("final snapshot written", "seq", seq)
		}
	}
	if steps.closeWAL != nil {
		if err := steps.closeWAL(); err != nil {
			logger.Error("close wal", "err", err)
		}
	}
	return httpErr
}

// publishRecovery exposes the restore outcome in /metrics, so a
// scraper can tell a clean boot from one that replayed a torn log or
// degraded sessions the topology no longer supports.
func publishRecovery(reg *obs.Registry, rep *dynamic.RecoverReport) {
	reg.Gauge("restore_snapshot_seq").Set(int64(rep.SnapshotSeq))
	reg.Gauge("restore_replayed_records").Set(int64(rep.ReplayedRecords))
	reg.Gauge("restore_sessions_recovered").Set(int64(rep.SessionsRecovered))
	reg.Gauge("restore_refs_deployed").Set(int64(rep.RefsDeployed))
	reg.Gauge("restore_refs_unplaceable").Set(int64(rep.RefsUnplaceable))
	reg.Gauge("restore_sessions_degraded").Set(int64(rep.SessionsDegraded))
	reg.Gauge("restore_replay_ms").Set(rep.ReplayDuration.Milliseconds())
	if rep.TornTail {
		reg.Gauge("restore_torn_tail").Set(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("sftserve", flag.ContinueOnError)
	var (
		listen    = fs.String("listen", ":8080", "listen address")
		netFile   = fs.String("network", "", "instance JSON whose network backs the session API")
		nodes     = fs.Int("nodes", 50, "generate a network of this size when -network is empty")
		seed      = fs.Int64("seed", 1, "seed for the generated network")
		stateless = fs.Bool("stateless", false, "serve only the stateless endpoints")
		debug     = fs.Bool("debug", false, "mount /debug/pprof/ and /debug/vars")
		drain     = fs.Duration("shutdown-timeout", 10*time.Second, "graceful shutdown drain budget")
		solveMax  = fs.Duration("solve-timeout", 0, "ceiling on any one solve/admission; the solver returns its best embedding so far at the deadline (0 = unbounded)")
		sample    = fs.Duration("sample-interval", 5*time.Second, "Go-runtime sampler period feeding /metrics (goroutines, heap, GC pauses); 0 disables")
		queueDep  = fs.Int("queue-depth", 256, "bounded admission queue depth for POST /v1/sessions; overflow answers 429 with Retry-After; 0 solves inline")
		batchWin  = fs.Duration("batch-window", 2*time.Millisecond, "how long the admission dispatcher lingers so a burst pools into one chain-signature batch")
		walDir    = fs.String("wal-dir", "", "write-ahead-log directory for durable admission state; empty disables durability")
		snapEvery = fs.Duration("snapshot-interval", time.Minute, "how often to fold the WAL into a compacted snapshot; 0 disables periodic snapshots")
		fsyncPol  = fs.String("fsync", "always", "WAL fsync policy: always (fsync per commit), interval (batched), none (OS-buffered)")
		fsyncIvl  = fs.Duration("fsync-interval", 100*time.Millisecond, "batching period for -fsync interval")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var network *sftree.Network
	switch {
	case *stateless:
		// nil network: session endpoints answer 501.
	case *netFile != "":
		blob, err := os.ReadFile(*netFile)
		if err != nil {
			return err
		}
		var doc sftree.InstanceDoc
		if err := json.Unmarshal(blob, &doc); err != nil {
			return fmt.Errorf("parse %s: %w", *netFile, err)
		}
		network = doc.Network
	default:
		var err error
		network, err = sftree.GenerateNetwork(sftree.DefaultGenConfig(*nodes, 2), *seed)
		if err != nil {
			return err
		}
	}

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	reg := obs.NewRegistry()
	reg.PublishExpvar("sftree")

	// With -wal-dir, recover durable admission state before serving:
	// any committed session from a previous incarnation is replayed,
	// re-deployed and conformance-checked, and the restored manager is
	// handed to the server instead of a fresh one.
	var (
		mgr    *dynamic.Manager
		walLog *wal.Log
	)
	if *walDir != "" && network != nil {
		policy, err := wal.ParseSyncPolicy(*fsyncPol)
		if err != nil {
			return err
		}
		l, rec, err := wal.Open(*walDir, wal.Config{Policy: policy, Interval: *fsyncIvl})
		if err != nil {
			return fmt.Errorf("open wal %s: %w", *walDir, err)
		}
		m, rrep, err := dynamic.Restore(network, l, rec, core.Options{})
		if err != nil {
			l.Close()
			return fmt.Errorf("restore from %s: %w", *walDir, err)
		}
		mgr, walLog = m, l
		publishRecovery(reg, rrep)
		logger.Info("admission state restored",
			"dir", *walDir,
			"snapshot_seq", rrep.SnapshotSeq,
			"replayed", rrep.ReplayedRecords,
			"sessions", rrep.SessionsRecovered,
			"torn_tail", rrep.TornTail,
			"unplaceable", rrep.RefsUnplaceable,
			"degraded", rrep.SessionsDegraded,
			"replay_ms", rrep.ReplayDuration.Milliseconds())
	}

	srv := server.NewWith(network, core.Options{}, server.Config{
		Registry:     reg,
		Logger:       logger,
		SolveTimeout: *solveMax,
		Manager:      mgr,
		QueueDepth:   *queueDep,
		BatchWindow:  *batchWin,
	})
	if *sample > 0 {
		stopSampler := obs.StartRuntimeSampler(ctx, reg, *sample)
		defer stopSampler()
	}

	// Periodic compaction: fold the WAL into a snapshot so restart
	// replay stays bounded by -snapshot-interval worth of records. A
	// swallowed repair/rebase append failure marks the manager
	// checkpoint-dirty; the fast poll folds a snapshot immediately so
	// durable history does not trail the live state for a full
	// interval (or forever, with periodic snapshots disabled).
	if walLog != nil {
		go func() {
			checkpoint := func(reason string) {
				if seq, err := srv.Manager().Checkpoint(); err != nil {
					logger.Error("snapshot failed", "reason", reason, "err", err)
				} else {
					logger.Info("snapshot written", "reason", reason, "seq", seq)
				}
			}
			dirty := time.NewTicker(time.Second)
			defer dirty.Stop()
			var interval <-chan time.Time
			if *snapEvery > 0 {
				tick := time.NewTicker(*snapEvery)
				defer tick.Stop()
				interval = tick.C
			}
			for {
				select {
				case <-ctx.Done():
					return
				case <-interval:
					checkpoint("interval")
				case <-dirty.C:
					if srv.Manager().NeedsCheckpoint() {
						checkpoint("wal divergence")
					}
				}
			}
		}()
	}

	mux := http.NewServeMux()
	mux.Handle("/", srv)
	if *debug {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/debug/vars", expvar.Handler())
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	hs := &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
	}
	logger.Info("sftserve listening",
		"addr", ln.Addr().String(), "sessions", network != nil, "debug", *debug)
	if onReady != nil {
		onReady(ln.Addr().String())
	}

	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}

	// Graceful drain: stop accepting, let in-flight solves finish,
	// then run the durability epilogue in its fixed order — queue
	// drain strictly after the HTTP drain (handlers blocked on tickets
	// have returned; accepted tickets still resolve), manager drain
	// after that (a commit raced against the deadline may still hold
	// the WAL), then the final snapshot so the next boot replays
	// nothing, and only then the log close.
	logger.Info("shutting down", "drain", drain.String())
	sctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	steps := shutdownSteps{
		httpShutdown: func(ctx context.Context) error {
			err := hs.Shutdown(ctx)
			<-errCh // Serve has returned http.ErrServerClosed
			return err
		},
	}
	if q := srv.Queue(); q != nil {
		steps.queueDrain = q.Close
	}
	if walLog != nil {
		m := srv.Manager()
		steps.mgrDrain = m.Drain
		steps.checkpoint = m.Checkpoint
		steps.closeWAL = walLog.Close
	}
	shutdownErr := runShutdown(sctx, steps, logger)

	// Final metrics flush, so a terminated process leaves its counters
	// in the log.
	if blob, err := json.Marshal(reg.Snapshot()); err == nil {
		logger.Info("final metrics", "metrics", string(blob))
	}
	if shutdownErr != nil {
		return fmt.Errorf("shutdown: %w", shutdownErr)
	}
	logger.Info("sftserve stopped")
	return nil
}
