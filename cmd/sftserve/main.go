// Command sftserve runs the HTTP solving service: stateless /v1/solve,
// /v1/validate and /v1/render endpoints plus a stateful /v1/sessions
// API backed by the dynamic session manager — the shape in which an
// SDN controller would consume this library.
//
// Usage:
//
//	sftserve -listen :8080 -network inst.json    # sessions on a file-loaded network
//	sftserve -listen :8080 -nodes 50             # sessions on a generated network
//	sftserve -listen :8080 -stateless            # stateless endpoints only
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"sftree"
	"sftree/internal/core"
	"sftree/internal/server"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		log.Fatal(err)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("sftserve", flag.ContinueOnError)
	var (
		listen    = fs.String("listen", ":8080", "listen address")
		netFile   = fs.String("network", "", "instance JSON whose network backs the session API")
		nodes     = fs.Int("nodes", 50, "generate a network of this size when -network is empty")
		seed      = fs.Int64("seed", 1, "seed for the generated network")
		stateless = fs.Bool("stateless", false, "serve only the stateless endpoints")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var net *sftree.Network
	switch {
	case *stateless:
		// nil network: session endpoints answer 501.
	case *netFile != "":
		blob, err := os.ReadFile(*netFile)
		if err != nil {
			return err
		}
		var doc sftree.InstanceDoc
		if err := json.Unmarshal(blob, &doc); err != nil {
			return fmt.Errorf("parse %s: %w", *netFile, err)
		}
		net = doc.Network
	default:
		var err error
		net, err = sftree.GenerateNetwork(sftree.DefaultGenConfig(*nodes, 2), *seed)
		if err != nil {
			return err
		}
	}

	srv := &http.Server{
		Addr:              *listen,
		Handler:           server.New(net, core.Options{}),
		ReadHeaderTimeout: 10 * time.Second,
	}
	log.Printf("sftserve listening on %s (session API: %v)", *listen, net != nil)
	return srv.ListenAndServe()
}
