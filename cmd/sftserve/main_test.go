package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-nope"}); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestRunRejectsMissingNetworkFile(t *testing.T) {
	if err := run([]string{"-network", "/does/not/exist.json", "-listen", "127.0.0.1:0"}); err == nil {
		t.Error("missing network file accepted")
	}
}

func TestRunRejectsGarbageNetworkFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-network", path, "-listen", "127.0.0.1:0"}); err == nil {
		t.Error("garbage network file accepted")
	}
}

func TestRunRejectsBadListenAddress(t *testing.T) {
	// An invalid address makes ListenAndServe fail immediately, which
	// exercises the full startup path (network generation included).
	if err := run([]string{"-listen", "not-an-address", "-nodes", "10"}); err == nil {
		t.Error("bad listen address accepted")
	}
}
