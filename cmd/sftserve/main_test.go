package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run(context.Background(), []string{"-nope"}); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestRunRejectsMissingNetworkFile(t *testing.T) {
	if err := run(context.Background(), []string{"-network", "/does/not/exist.json", "-listen", "127.0.0.1:0"}); err == nil {
		t.Error("missing network file accepted")
	}
}

func TestRunRejectsGarbageNetworkFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"-network", path, "-listen", "127.0.0.1:0"}); err == nil {
		t.Error("garbage network file accepted")
	}
}

func TestRunRejectsBadListenAddress(t *testing.T) {
	// An invalid address makes net.Listen fail immediately, which
	// exercises the full startup path (network generation included).
	if err := run(context.Background(), []string{"-listen", "not-an-address", "-nodes", "10"}); err == nil {
		t.Error("bad listen address accepted")
	}
}

// get asserts a 200 GET and returns the body.
func get(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d (%.120s)", url, resp.StatusCode, body)
	}
	return body
}

// boot starts run() with the given args and returns the base URL and
// the done channel; shutdown happens through the returned cancel.
func boot(t *testing.T, args []string) (string, context.CancelFunc, chan error) {
	t.Helper()
	addrCh := make(chan string, 1)
	onReady = func(a string) { addrCh <- a }
	t.Cleanup(func() { onReady = nil })

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- run(ctx, args) }()
	select {
	case addr := <-addrCh:
		return "http://" + addr, cancel, done
	case err := <-done:
		t.Fatalf("run exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}
	return "", cancel, done
}

func stopServer(t *testing.T, cancel context.CancelFunc, done chan error) {
	t.Helper()
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("shutdown did not complete")
	}
}

// TestShutdownOrdering is the regression test for the graceful-stop
// sequence: hs.Shutdown → queue drain → Manager.Drain → snapshot →
// WAL close. A reorder here can lose committed state (closing the log
// before the final snapshot) or strand queued tickets (draining the
// manager while the queue still dispatches into it).
func TestShutdownOrdering(t *testing.T) {
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))
	record := func(got *[]string, name string) func(context.Context) error {
		return func(context.Context) error {
			*got = append(*got, name)
			return nil
		}
	}

	var got []string
	steps := shutdownSteps{
		httpShutdown: record(&got, "http"),
		queueDrain:   record(&got, "queue"),
		mgrDrain:     record(&got, "mgr"),
		checkpoint: func() (uint64, error) {
			got = append(got, "snapshot")
			return 1, nil
		},
		closeWAL: func() error {
			got = append(got, "close")
			return nil
		},
	}
	if err := runShutdown(context.Background(), steps, logger); err != nil {
		t.Fatalf("runShutdown: %v", err)
	}
	want := []string{"http", "queue", "mgr", "snapshot", "close"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("shutdown order = %v, want %v", got, want)
	}

	// Nil steps (feature off) are skipped without reordering the rest.
	got = nil
	steps.queueDrain = nil
	steps.checkpoint = nil
	if err := runShutdown(context.Background(), steps, logger); err != nil {
		t.Fatalf("runShutdown with nil steps: %v", err)
	}
	if want := []string{"http", "mgr", "close"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("shutdown order with nil steps = %v, want %v", got, want)
	}

	// The HTTP shutdown error decides the exit status, but every later
	// step still runs — a stuck listener must not cost the final
	// snapshot.
	got = nil
	sentinel := errors.New("listener stuck")
	steps = shutdownSteps{
		httpShutdown: func(context.Context) error {
			got = append(got, "http")
			return sentinel
		},
		queueDrain: func(context.Context) error {
			got = append(got, "queue")
			return errors.New("queue stuck too")
		},
		closeWAL: func() error {
			got = append(got, "close")
			return nil
		},
	}
	if err := runShutdown(context.Background(), steps, logger); !errors.Is(err, sentinel) {
		t.Fatalf("runShutdown error = %v, want the http shutdown error", err)
	}
	if want := []string{"http", "queue", "close"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("shutdown order after errors = %v, want %v", got, want)
	}
}

// TestDurableRestartRecoversSessions: admissions made over HTTP to a
// -wal-dir server survive a full stop/start cycle. The restarted
// process must report the same live-session count and expose the
// recovery counters in /metrics.
func TestDurableRestartRecoversSessions(t *testing.T) {
	walDir := t.TempDir()
	args := []string{"-listen", "127.0.0.1:0", "-nodes", "12", "-seed", "5", "-wal-dir", walDir}

	base, cancel, done := boot(t, args)
	task := []byte(`{"source":0,"destinations":[3,7],"chain":[0]}`)
	var admitted int
	for i := 0; i < 3; i++ {
		resp, err := http.Post(base+"/v1/sessions", "application/json", bytes.NewReader(task))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusCreated || resp.StatusCode == http.StatusOK {
			admitted++
		}
	}
	if admitted == 0 {
		t.Fatal("no admission succeeded; fixture task is infeasible on the seed-5 network")
	}
	stopServer(t, cancel, done)

	// Same network seed, same WAL dir: the sessions must come back.
	base, cancel, done = boot(t, args)
	defer stopServer(t, cancel, done)

	var ready struct {
		Active int `json:"active_sessions"`
	}
	if err := json.Unmarshal(get(t, base+"/readyz"), &ready); err != nil {
		t.Fatal(err)
	}
	if ready.Active != admitted {
		t.Fatalf("restored active sessions = %d, want %d", ready.Active, admitted)
	}
	var snap struct {
		Gauges map[string]int64 `json:"gauges"`
	}
	if err := json.Unmarshal(get(t, base+"/metrics"), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Gauges["restore_sessions_recovered"] != int64(admitted) {
		t.Fatalf("restore_sessions_recovered = %d, want %d (gauges: %v)",
			snap.Gauges["restore_sessions_recovered"], admitted, snap.Gauges)
	}
}

// TestDebugEndpointsAndGracefulShutdown boots the real binary path
// with -debug, probes the observability surface, and then cancels the
// context to exercise the graceful http.Server.Shutdown.
func TestDebugEndpointsAndGracefulShutdown(t *testing.T) {
	addrCh := make(chan string, 1)
	onReady = func(a string) { addrCh <- a }
	defer func() { onReady = nil }()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-listen", "127.0.0.1:0", "-nodes", "12", "-debug"})
	}()

	var addr string
	select {
	case addr = <-addrCh:
	case err := <-done:
		t.Fatalf("run exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}
	base := "http://" + addr

	get(t, base+"/healthz")
	get(t, base+"/readyz")
	get(t, base+"/debug/vars")
	get(t, base+"/debug/pprof/")

	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal(get(t, base+"/metrics"), &snap); err != nil {
		t.Fatalf("metrics is not JSON: %v", err)
	}
	if snap.Counters["http_requests_total"] == 0 {
		t.Errorf("http_requests_total not incremented: %+v", snap.Counters)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("graceful shutdown returned error: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("shutdown did not complete")
	}
}
