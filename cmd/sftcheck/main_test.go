package main

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestRunProbesStatus(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/ok":
			w.Write([]byte("healthy"))
		default:
			http.Error(w, "down", http.StatusServiceUnavailable)
		}
	}))
	defer ts.Close()

	var out bytes.Buffer
	if err := run([]string{"-url", ts.URL + "/ok", "-print"}, &out); err != nil {
		t.Fatalf("2xx probe failed: %v", err)
	}
	if out.String() != "healthy" {
		t.Errorf("-print wrote %q", out.String())
	}

	if err := run([]string{"-url", ts.URL + "/down"}, &out); err == nil {
		t.Error("non-2xx probe did not fail")
	}
	if err := run(nil, &out); err == nil {
		t.Error("missing -url did not fail")
	}
}
