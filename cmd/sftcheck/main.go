// Command sftcheck is a minimal HTTP probe for smoke tests: it GETs
// one URL and exits 0 iff the response status is 2xx. tools.sh uses it
// against a freshly booted sftserve so the hygiene gate needs nothing
// beyond the Go toolchain (no curl/wget).
//
// Usage:
//
//	sftcheck -url http://127.0.0.1:8080/healthz
//	sftcheck -url http://127.0.0.1:8080/metrics -print
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sftcheck:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("sftcheck", flag.ContinueOnError)
	var (
		url     = fs.String("url", "", "URL to probe (required)")
		timeout = fs.Duration("timeout", 5*time.Second, "request timeout")
		print   = fs.Bool("print", false, "write the response body to stdout")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *url == "" {
		return fmt.Errorf("-url is required")
	}
	client := &http.Client{Timeout: *timeout}
	resp, err := client.Get(*url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return fmt.Errorf("GET %s: status %d: %.200s", *url, resp.StatusCode, body)
	}
	if *print {
		_, err = out.Write(body)
	}
	return err
}
