// Command sftgen emits a random SFT-embedding instance (network +
// multicast task) as JSON, consumable by cmd/sftembed.
//
// Usage:
//
//	sftgen -nodes 50 -dest 5 -chain 5 -mu 2 -seed 1 > instance.json
//	sftgen -palmetto -dest 10 -chain 10 > palmetto.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"sftree"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sftgen:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("sftgen", flag.ContinueOnError)
	var (
		nodes    = fs.Int("nodes", 50, "network size (ignored with -palmetto)")
		dest     = fs.Int("dest", 5, "number of destinations")
		chain    = fs.Int("chain", 5, "SFC length")
		mu       = fs.Float64("mu", 2, "setup cost multiplier of the mean shortest-path cost")
		seed     = fs.Int64("seed", 1, "random seed")
		palmetto = fs.Bool("palmetto", false, "use the 45-node PalmettoNet topology")
		out      = fs.String("o", "", "output file (default stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var (
		net *sftree.Network
		err error
	)
	if *palmetto {
		net, _, err = sftree.PalmettoNetwork(sftree.DefaultGenConfig(45, *mu), *seed)
	} else {
		net, err = sftree.GenerateNetwork(sftree.DefaultGenConfig(*nodes, *mu), *seed)
	}
	if err != nil {
		return err
	}
	task, err := sftree.GenerateTask(net, *seed+1, *dest, *chain)
	if err != nil {
		return err
	}
	blob, err := json.MarshalIndent(sftree.InstanceDoc{Network: net, Task: task}, "", " ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if *out != "" {
		return os.WriteFile(*out, blob, 0o644)
	}
	_, err = w.Write(blob)
	return err
}
