package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sftree"
)

func TestRunEmitsValidInstance(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-nodes", "15", "-dest", "3", "-chain", "2", "-seed", "4"}, &buf); err != nil {
		t.Fatal(err)
	}
	var doc sftree.InstanceDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not a valid instance: %v", err)
	}
	if doc.Network.NumNodes() != 15 || len(doc.Task.Destinations) != 3 || doc.Task.K() != 2 {
		t.Errorf("instance shape wrong: %d nodes, task %+v", doc.Network.NumNodes(), doc.Task)
	}
	if err := doc.Task.Validate(doc.Network); err != nil {
		t.Errorf("emitted task invalid: %v", err)
	}
}

func TestRunPalmetto(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-palmetto", "-dest", "5", "-chain", "3"}, &buf); err != nil {
		t.Fatal(err)
	}
	var doc sftree.InstanceDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Network.NumNodes() != 45 {
		t.Errorf("nodes = %d, want 45", doc.Network.NumNodes())
	}
}

func TestRunWritesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "inst.json")
	if err := run([]string{"-nodes", "10", "-dest", "2", "-chain", "1", "-o", path}, nil); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(blob), `"task"`) {
		t.Error("file does not look like an instance document")
	}
}

func TestRunRejectsBadParams(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-nodes", "5", "-dest", "50"}, &buf); err == nil {
		t.Error("too many destinations accepted")
	}
	if err := run([]string{"-badflag"}, &buf); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestRunDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := run([]string{"-nodes", "12", "-seed", "3", "-dest", "2", "-chain", "2"}, &a); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-nodes", "12", "-seed", "3", "-dest", "2", "-chain", "2"}, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("same seed produced different instances")
	}
}
