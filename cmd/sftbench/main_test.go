package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSingleFigureWithCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("figure run is slow")
	}
	dir := t.TempDir()
	// Capture nothing: run prints to stdout; we only check the CSV side
	// effect and the absence of errors at one trial.
	if err := run([]string{"-fig", "8", "-trials", "1", "-seed", "2", "-csv", dir}); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(filepath.Join(dir, "fig8.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(blob), "figure,x,algorithm") {
		t.Errorf("csv header wrong: %s", string(blob[:40]))
	}
	if got := strings.Count(string(blob), "\n"); got != 1+5*3 {
		t.Errorf("csv rows = %d, want 16", got)
	}
}

func TestRunUnknownFigure(t *testing.T) {
	if err := run([]string{"-fig", "99"}); err == nil {
		t.Error("unknown figure accepted")
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("unknown flag accepted")
	}
}
