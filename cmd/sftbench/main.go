// Command sftbench regenerates the paper's evaluation figures (and
// this repository's ablations) as text tables and optional CSV files.
//
// Usage:
//
//	sftbench -fig all                 # every paper figure, default trials
//	sftbench -fig 13 -trials 10 -ref  # Fig. 13 with the OPT* reference
//	sftbench -fig ablations           # design-choice ablations
//	sftbench -fig 8 -csv out/         # also write out/fig8.csv
//	sftbench -json BENCH_core.json    # hot-path micro-benchmarks as JSON
//	sftbench -gate BENCH_core.json    # fail on perf regressions vs baseline
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"sftree/internal/benchsuite"
	"sftree/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sftbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("sftbench", flag.ContinueOnError)
	var (
		figID    = fs.String("fig", "all", `figure to run: 8..14, "gap", "trace", "all", or "ablations"`)
		trials   = fs.Int("trials", 5, "trials per sweep point")
		seed     = fs.Int64("seed", 1, "root random seed")
		ref      = fs.Bool("ref", false, "include the OPT* best-known reference on Figs. 13/14 (slow)")
		csvDir   = fs.String("csv", "", "directory to also write per-figure CSV files into")
		parallel = fs.Int("parallel", 1, "concurrent trials per point (>1 makes timing columns noisy)")
		chart    = fs.Bool("chart", false, "also draw ASCII bar charts of the cost series")
		jsonOut  = fs.String("json", "", "run the hot-path micro-benchmark suite and write its JSON report to this file (skips figures)")
		gateIn   = fs.String("gate", "", "re-measure the gate benchmarks and fail on regressions against this baseline JSON report (skips figures)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *jsonOut != "" {
		return runBenchSuite(*jsonOut)
	}
	if *gateIn != "" {
		return runGate(*gateIn)
	}
	cfg := experiments.Config{Trials: *trials, Seed: *seed, WithReference: *ref, Parallel: *parallel}

	var figs []*experiments.Figure
	switch *figID {
	case "all":
		all, err := experiments.All(cfg)
		if err != nil {
			return err
		}
		figs = all
	case "ablations":
		abl, err := experiments.Ablations(cfg)
		if err != nil {
			return err
		}
		figs = abl
	default:
		runner, ok := experiments.ByID(*figID)
		if !ok {
			return fmt.Errorf("unknown figure %q (want 8..14, all, ablations)", *figID)
		}
		fig, err := runner(cfg)
		if err != nil {
			return err
		}
		figs = []*experiments.Figure{fig}
	}

	for _, fig := range figs {
		fmt.Println(fig.CostTable())
		fmt.Println(fig.TimeTable())
		if *chart {
			fmt.Println(fig.CostChart())
		}
		fmt.Println(fig.Summary())
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				return err
			}
			path := filepath.Join(*csvDir, fig.ID+".csv")
			if err := os.WriteFile(path, []byte(fig.CSV()), 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n\n", path)
		}
	}
	return nil
}

// runBenchSuite measures the hot-path micro-benchmarks (solver,
// stage-two pass, delta-cost evaluation, replay — each with its naive
// counterpart where one exists) and writes the benchstat-style JSON
// regression record.
func runBenchSuite(path string) error {
	report, err := benchsuite.NewReport()
	if err != nil {
		return err
	}
	for _, r := range report.Benchmarks {
		fmt.Printf("%-24s %12.0f ns/op %10d B/op %8d allocs/op (%d runs)\n",
			r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp, r.Runs)
	}
	if p := report.SolverPhases; p != nil {
		fmt.Printf("solver phases: apsp %.2fms  stage1 %.2fms  stage2 %.2fms  (%d passes, moves %d proposed / %d accepted / %d rejected)\n",
			float64(p.APSPBuildNs)/1e6, float64(p.Stage1Ns)/1e6, float64(p.Stage2Ns)/1e6,
			p.OPAPasses, p.MovesProposed, p.MovesAccepted, p.MovesRejected)
	}
	buf, err := benchsuite.MarshalReport(report)
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// runGate loads the checked-in baseline report and re-measures the
// gate benchmarks against it (best of three each), exiting non-zero
// on a >5% ns/op or >10% allocs/op regression.
func runGate(path string) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("gate baseline: %w", err)
	}
	var baseline benchsuite.Report
	if err := json.Unmarshal(buf, &baseline); err != nil {
		return fmt.Errorf("gate baseline %s: %w", path, err)
	}
	if err := benchsuite.Gate(&baseline); err != nil {
		return err
	}
	fmt.Printf("perf gate passed against %s (%v)\n", path, benchsuite.GateBenches)
	return nil
}
