package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunGateSucceeds(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-nodes", "30", "-sessions", "8", "-faults", "6", "-seed", "3"}, &out); err != nil {
		t.Fatalf("gate failed: %v\n%s", err, out.String())
	}
	var rep map[string]any
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("non-JSON report: %v", err)
	}
	if rep["events_applied"].(float64) != 6 {
		t.Fatalf("events_applied = %v", rep["events_applied"])
	}
}

func TestGenScheduleRoundTrips(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-nodes", "30", "-seed", "3", "-gen-schedule", "5"}, &out); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "sched.json")
	if err := os.WriteFile(path, out.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	var rep bytes.Buffer
	err := run([]string{"-nodes", "30", "-sessions", "8", "-seed", "3", "-schedule", path}, &rep)
	if err != nil {
		t.Fatalf("replaying generated schedule: %v\n%s", err, rep.String())
	}
	if !strings.Contains(rep.String(), `"events_applied": 5`) {
		t.Fatalf("report: %s", rep.String())
	}
}

func TestBadScheduleFileFails(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-schedule", "/nonexistent.json"}, &out); err == nil {
		t.Fatal("missing schedule file accepted")
	}
}
