// Command sftchaos runs the failure-injection acceptance gate: admit a
// population of multicast sessions, replay a seeded fault schedule
// through the dynamic manager's repair path, and re-verify every
// surviving session after every event with both the core validator and
// the flow-level replay.
//
// Usage:
//
//	sftchaos -nodes 40 -sessions 30 -faults 20 -seed 7
//	sftchaos -schedule scenario.json
//	sftchaos -gen-schedule 20 > scenario.json
//	sftchaos -crash 2 -ops 30 -seed 7
//
// The process exits non-zero when any non-degraded session fails
// validation after a fault, or when repairs never reuse a surviving
// instance despite repairs having happened — the two acceptance
// criteria of the resilience gate.
//
// -crash N switches to the durability gate: the same seeded script of
// admissions, releases and faults runs twice — once untouched (the
// oracle), once with N SIGKILL-equivalent crashes injected (the last
// one inside an admission's commit critical section, between WAL
// append and in-memory apply), each followed by a restore from the
// write-ahead log. The process exits non-zero when the restored run
// lost a committed session, diverged from the oracle in any session,
// refcount or accounting byte, or failed conformance validation.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"sftree/internal/faults"
	"sftree/internal/netgen"
	"sftree/internal/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sftchaos:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("sftchaos", flag.ContinueOnError)
	var (
		nodes    = fs.Int("nodes", 40, "network size")
		sessions = fs.Int("sessions", 30, "live sessions before faults")
		nfaults  = fs.Int("faults", 20, "generated fault-schedule length")
		seed     = fs.Int64("seed", 7, "seed for network, workload and schedule")
		schedule = fs.String("schedule", "", "replay this JSON scenario file instead of generating")
		genOnly  = fs.Int("gen-schedule", 0, "emit a seeded schedule of this length as JSON and exit")
		verbose  = fs.Bool("v", false, "include per-event breakdown in the report")
		crashes  = fs.Int("crash", 0, "run the crash-injection durability gate with this many crash points")
		ops      = fs.Int("ops", 30, "mixed operations after the initial population (crash gate)")
		walDir   = fs.String("wal-dir", "", "WAL directory for the crash gate (default: a temp dir)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *crashes > 0 {
		return runCrashGate(w, *nodes, *sessions, *ops, *nfaults, *crashes, *seed, *walDir)
	}

	if *genOnly > 0 {
		rng := rand.New(rand.NewSource(*seed))
		net, err := netgen.Generate(netgen.PaperConfig(*nodes, 2), rng)
		if err != nil {
			return err
		}
		sched, err := faults.Generate(net, faults.DefaultGenConfig(*genOnly), rng)
		if err != nil {
			return err
		}
		sched.Seed = *seed
		return sched.Save(w)
	}

	cfg := sim.ChaosConfig{Nodes: *nodes, Seed: *seed, Sessions: *sessions, Faults: *nfaults}
	if *schedule != "" {
		f, err := os.Open(*schedule)
		if err != nil {
			return err
		}
		sched, err := faults.Load(f)
		f.Close()
		if err != nil {
			return err
		}
		cfg.Schedule = sched
	}

	rep, err := sim.RunChaos(cfg)
	if err != nil {
		return err
	}
	if !*verbose {
		rep.Events = nil
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}

	if len(rep.ValidationErrors) > 0 {
		return fmt.Errorf("%d validation errors after faults", len(rep.ValidationErrors))
	}
	if repairs := rep.Patched + rep.Reembeds; repairs > 0 && rep.RepairsWithReuse == 0 {
		return errors.New("repairs happened but none reused a surviving instance")
	}
	return nil
}

// runCrashGate executes the oracle-vs-crash comparison. Crash points
// are spread evenly across the op script; odd-numbered ones tear the
// log (a partial frame at the active tail, the signature of a SIGKILL
// mid-append) so recovery's torn-tail path runs, and the final one
// fires inside the commit critical section (between WAL append and
// in-memory apply), the window a kill between operations can never
// hit. With two or more points, the first torn crash is immediately
// re-crashed on the next op — the double-crash window where a tear
// surviving the first recovery on disk would brick the log.
func runCrashGate(w io.Writer, nodes, sessions, ops, nfaults, crashes int, seed int64, walDir string) error {
	total := sessions + ops
	var points []sim.CrashPoint
	for i := 1; i <= crashes; i++ {
		points = append(points, sim.CrashPoint{Op: i * total / (crashes + 1), Torn: i%2 == 1})
	}
	if len(points) > 0 {
		points[len(points)-1].MidCommit = true
		// Every crash catches an admission queue holding undispatched
		// tasks: queued work is not durable, so restore must resurrect
		// none of it and every parked ticket must still terminate.
		for i := range points {
			points[i].EnqueuedTasks = 3
		}
	}
	if crashes >= 2 {
		recrash := sim.CrashPoint{Op: points[0].Op + 1}
		points = append(points[:1], append([]sim.CrashPoint{recrash}, points[1:]...)...)
	}
	rep, err := sim.RunCrash(sim.CrashConfig{
		Nodes:    nodes,
		Seed:     seed,
		Sessions: sessions,
		Ops:      ops,
		Faults:   nfaults,
		Crashes:  points,
		// One past the crash spacing, so a checkpoint never lands
		// between a torn crash and its immediate re-crash — the second
		// recovery must replay the truncated segment, not sidestep it
		// via a fresh snapshot.
		CheckpointEvery: total/3 + 1,
		Dir:             walDir,
	})
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	if !rep.Passed() {
		return fmt.Errorf("crash gate failed: %d lost sessions, %d mismatches, %d validation errors",
			len(rep.LostSessions), len(rep.Mismatches), len(rep.ValidationErrors))
	}
	return nil
}
