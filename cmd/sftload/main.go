// Command sftload is an open-loop, coordinated-omission-safe load
// generator for the sftserve session API. It pre-computes a seeded
// Poisson arrival schedule (fixed -seed => identical workload every
// run), fires each admission at its *scheduled* instant regardless of
// how slow the server is, and measures admission latency from that
// scheduled instant — so a stalled server inflates the tail instead of
// silently thinning the offered load (no coordinated omission).
//
// Each admitted session holds for an exponentially distributed time
// (-hold mean) and is then released, so the server reaches a steady
// state of live sessions proportional to rate×hold (Little's law).
// Tasks are sampled from a configurable chain-signature mix
// ("destsxchain:weight" terms), and -faults injects periodic link
// flap + Rebase cycles that exercise the repair ladder and the
// per-down-set APSP cache.
//
// By default sftload serves its own in-process sftserve (httptest) on
// a generated network; -url points it at a live server instead, in
// which case -nodes/-seed must match the server's so sampled tasks
// reference valid node IDs.
//
// Output: one table row per offered rate (sustained admissions/sec,
// p50/p95/p99/p999 scheduled-start latency, rejection rate, an
// explicit saturated verdict) plus a machine-readable BENCH_load.json
// via -out. The default rate ladder deliberately ends past the
// server's saturation point so the artifact charts the overload
// regime, not just the comfortable one. -check turns the run into a
// smoke gate: it fails unless admissions happened, nothing was
// dropped at an unsaturated point, /metrics shows warm metric-cache
// and APSP-cache hit rates, and /debug/traces carries a
// request-ID-stamped admission trace. -gate compares the run against
// a checked-in BENCH_load.json and fails if sustained adm/s at the
// baseline's top rate point dropped more than 10%.
//
// -restart turns the run into a durability drill: the in-process
// manager logs every commit to a write-ahead log, is killed
// (SIGKILL-equivalent: the log descriptor dies without a flush)
// -restart into the first rate point while admissions are in flight,
// and is recovered from disk and hot-swapped back into the server.
// The run fails unless every acked admission survives the recovery;
// the affected rate point records restarted/restore_ms/lost_committed
// in BENCH_load.json, and -check additionally bounds the p99 blip.
//
// -queue-depth serves the in-process server through the batched
// admission queue (sftserve's default serving path); admitted points
// then record the wait/solve latency split the queued AdmitResponse
// reports. A "!" mix marker ("6x4!") pins a term to one concrete
// chain, so all of its arrivals share a chain signature — the shape
// the queue's signature coalescing batches. -gate-speedup turns the
// baseline gate into the queue speedup check (best unsaturated adm/s
// ≥ factor × the baseline's top), and -queue-speedup is a
// self-contained A/B diagnostic that drives identical plans at an
// inline and a queued server.
//
// Usage:
//
//	sftload -rates 4,16,64 -duration 5s -out BENCH_load.json
//	sftload -url http://host:8080 -nodes 50 -seed 1 -rates 32
//	sftload -rates 24 -duration 5s -faults 2 -check
//	sftload -rates 512 -duration 5s -gate BENCH_load.json
//	sftload -rates 16 -duration 4s -restart 2s -check
//	sftload -queue-depth 1024 -mix '6x4!' -rates 768 -gate BENCH_load.json -gate-speedup 1.5
//	sftload -queue-speedup 0.9 -duration 4s
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"sftree"
	"sftree/internal/core"
	"sftree/internal/dynamic"
	"sftree/internal/faults"
	"sftree/internal/netgen"
	"sftree/internal/nfv"
	"sftree/internal/obs"
	"sftree/internal/server"
	"sftree/internal/wal"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sftload:", err)
		os.Exit(1)
	}
}

// sig is one term of the chain-signature mix: tasks with |D|=dests
// destinations and a chain of chainLen VNFs, drawn with the given
// weight. fixed pins the term to one concrete chain — every arrival
// drawn from it shares the exact chain signature, the workload shape
// the admission queue's signature coalescing is built for.
type sig struct {
	dests, chainLen int
	weight          float64
	fixed           bool
}

// parseMix parses "2x3:2,4x3:1,8x5:1" into signature terms. A "!"
// after the shape ("4x4!") makes the term fixed-chain: one chain is
// sampled per rate point and reused for all of the term's arrivals.
func parseMix(s string) ([]sig, error) {
	var out []sig
	for _, term := range strings.Split(s, ",") {
		term = strings.TrimSpace(term)
		if term == "" {
			continue
		}
		shape, w := term, 1.0
		if i := strings.IndexByte(term, ':'); i >= 0 {
			shape = term[:i]
			f, err := strconv.ParseFloat(term[i+1:], 64)
			if err != nil || f <= 0 {
				return nil, fmt.Errorf("mix term %q: bad weight", term)
			}
			w = f
		}
		fixed := strings.HasSuffix(shape, "!")
		shape = strings.TrimSuffix(shape, "!")
		d, c, ok := strings.Cut(shape, "x")
		if !ok {
			return nil, fmt.Errorf("mix term %q: want destsxchain[!][:weight]", term)
		}
		dn, err1 := strconv.Atoi(d)
		cn, err2 := strconv.Atoi(c)
		if err1 != nil || err2 != nil || dn < 1 || cn < 1 {
			return nil, fmt.Errorf("mix term %q: bad shape", term)
		}
		out = append(out, sig{dests: dn, chainLen: cn, weight: w, fixed: fixed})
	}
	if len(out) == 0 {
		return nil, errors.New("empty chain-signature mix")
	}
	return out, nil
}

// arrival is one pre-scheduled admission: its offset from the run
// start, the task it submits, and how long the session holds before
// release (0 = never released).
type arrival struct {
	at   time.Duration
	task nfv.Task
	hold time.Duration
	warm bool // fell inside the warmup window: excluded from stats
}

// makePlan pre-generates the full arrival schedule for one rate point
// from a private seeded rng, so the offered workload is a pure
// function of (seed, rate, windows, mix) — runtime jitter never feeds
// back into what is offered.
func makePlan(net *nfv.Network, rng *rand.Rand, rate float64, warmup, window time.Duration, mix []sig, holdMean time.Duration) ([]arrival, error) {
	var totalW float64
	for _, m := range mix {
		totalW += m.weight
	}
	var plan []arrival
	total := warmup + window
	// fixedChains caches the one chain each fixed ("!") mix term pins
	// for this plan: every arrival of the term reuses it, so they all
	// share a chain signature in the admission queue.
	fixedChains := make(map[int]nfv.SFC)
	for t := time.Duration(float64(time.Second) * rng.ExpFloat64() / rate); t < total; t += time.Duration(float64(time.Second) * rng.ExpFloat64() / rate) {
		pick := rng.Float64() * totalW
		mi := len(mix) - 1
		for ci, cand := range mix {
			if pick -= cand.weight; pick < 0 {
				mi = ci
				break
			}
		}
		m := mix[mi]
		task, err := netgen.GenerateTask(net, rng, m.dests, m.chainLen)
		if err != nil {
			return nil, fmt.Errorf("sample task %dx%d: %w", m.dests, m.chainLen, err)
		}
		if m.fixed {
			if chain, ok := fixedChains[mi]; ok {
				task.Chain = chain
			} else {
				fixedChains[mi] = task.Chain
			}
		}
		var hold time.Duration
		if holdMean > 0 {
			hold = time.Duration(float64(holdMean) * rng.ExpFloat64())
		}
		plan = append(plan, arrival{at: t, task: task, hold: hold, warm: t < warmup})
	}
	return plan, nil
}

// outcome classifies one completed admission attempt.
type outcome int

const (
	outAdmitted outcome = iota
	outRejected         // 409: the network could not host the session
	outError            // transport or unexpected server error
)

// sample is one completed admission measurement. waitMs/solveMs split
// the queued path's latency: time parked in the admission queue vs
// the task's own solve-and-commit slot (both zero on the inline path,
// which reports no split).
type sample struct {
	measured bool
	out      outcome
	latMs    float64
	waitMs   float64
	solveMs  float64
}

// collector gathers samples from concurrent admission goroutines; the
// mutex (not per-slot slices) keeps late stragglers race-free against
// the post-drain reader.
type collector struct {
	mu      sync.Mutex
	samples []sample
}

func (c *collector) add(s sample) {
	c.mu.Lock()
	c.samples = append(c.samples, s)
	c.mu.Unlock()
}

func (c *collector) snapshot() []sample {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]sample(nil), c.samples...)
}

// latencySummary reports exact percentiles over the measured samples.
type latencySummary struct {
	P50  float64 `json:"p50_ms"`
	P95  float64 `json:"p95_ms"`
	P99  float64 `json:"p99_ms"`
	P999 float64 `json:"p999_ms"`
	Mean float64 `json:"mean_ms"`
	Max  float64 `json:"max_ms"`
}

// exactQuantile returns the q-quantile of sorted (nearest-rank).
func exactQuantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

func summarize(lats []float64) latencySummary {
	if len(lats) == 0 {
		return latencySummary{}
	}
	sorted := append([]float64(nil), lats...)
	sort.Float64s(sorted)
	var sum float64
	for _, v := range sorted {
		sum += v
	}
	return latencySummary{
		P50:  exactQuantile(sorted, 0.50),
		P95:  exactQuantile(sorted, 0.95),
		P99:  exactQuantile(sorted, 0.99),
		P999: exactQuantile(sorted, 0.999),
		Mean: sum / float64(len(sorted)),
		Max:  sorted[len(sorted)-1],
	}
}

// Saturation verdict thresholds: an open-loop harness shows overload
// as unbounded queueing delay and unfinished work, not as reduced
// offered load, so a point is saturated when measurements were
// dropped, completions lagged the offered arrivals, or the
// scheduled-start p99 blew past the threshold.
const (
	saturationP99Ms          = 250.0
	saturationCompletionFrac = 0.9
)

// point is one offered-rate measurement: the row of the
// rejection-rate-vs-offered-load curve.
type point struct {
	OfferedRate   float64 `json:"offered_rate"`
	Offered       int     `json:"offered"`  // scheduled arrivals in the measured window
	Admitted      int     `json:"admitted"` // measured-window admissions
	Rejected      int     `json:"rejected"`
	Errors        int     `json:"errors"`
	Dropped       int     `json:"dropped"` // scheduled but unfinished at drain end
	AdmitsPerSec  float64 `json:"admits_per_sec"`
	RejectionRate float64 `json:"rejection_rate"`
	// Saturated marks a point offered faster than the server completed
	// it (see the saturation* thresholds). Saturated points chart the
	// overload regime; throughput gates and latency SLOs should anchor
	// on unsaturated ones.
	Saturated bool           `json:"saturated"`
	Latency   latencySummary `json:"latency"`
	// Wait and Solve split the queued path's admission latency: Wait is
	// the time tickets spent parked in the admission queue before their
	// solve slot, Solve the per-task solve-and-commit time. Present only
	// when the server runs the batched admission queue.
	Wait  *latencySummary `json:"wait,omitempty"`
	Solve *latencySummary `json:"solve,omitempty"`
	// Restarted marks the point during which -restart killed and
	// recovered the in-process manager; RestoreMs is the WAL replay
	// duration and LostCommitted the number of acked admissions the
	// recovered state failed to carry (the gate requires zero).
	Restarted     bool    `json:"restarted,omitempty"`
	RestoreMs     float64 `json:"restore_ms,omitempty"`
	LostCommitted int     `json:"lost_committed,omitempty"`
}

// loadDoc is the BENCH_load.json artifact.
type loadDoc struct {
	Schema    string    `json:"schema"`
	Generated time.Time `json:"generated"`
	Config    struct {
		URL         string  `json:"url,omitempty"` // empty: in-process server
		Nodes       int     `json:"nodes"`
		Seed        int64   `json:"seed"`
		Mix         string  `json:"mix"`
		Rates       string  `json:"rates"`
		DurationSec float64 `json:"duration_sec"`
		WarmupSec   float64 `json:"warmup_sec"`
		HoldSec     float64 `json:"hold_sec"`
		Faults      int     `json:"faults"`
		Parallelism int     `json:"parallelism"`
		// QueueDepth/BatchWindowMs record the in-process server's
		// admission-queue settings; zero depth means inline admission.
		QueueDepth    int     `json:"queue_depth,omitempty"`
		BatchWindowMs float64 `json:"batch_window_ms,omitempty"`
	} `json:"config"`
	Points []point `json:"points"`
	// Metrics excerpts the server's /metrics floats (cache hit rates,
	// pool reuse rates) and key counters after the run.
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// Trace is one request-ID-stamped admission trace pulled from
	// /debug/traces, proving end-to-end propagation.
	Trace *obs.Trace `json:"trace,omitempty"`
}

// world is the system under test: either a remote server (URL only)
// or an in-process one whose manager and fault state we can reach for
// link flapping.
type world struct {
	url    string
	client *server.Client
	// self-serve only:
	ts           *httptest.Server
	srv          *server.Server
	reg          *obs.Registry
	opts         core.Options
	mgr          *dynamic.Manager
	state        *faults.State
	flapU, flapV int
	canFlap      bool

	// Durable-restart harness (-restart): the manager writes a WAL and
	// is killed and recovered from it mid-run. restartMu serializes the
	// swap against the fault flapper; HTTP handlers are already safe
	// (they take one manager reference per request via srv.Manager()).
	restartMu sync.Mutex
	walDir    string
	log       *wal.Log

	// Committed-session audit: every acked admission and release is
	// recorded so the end of the run can prove the recovered state lost
	// nothing the client was told succeeded.
	tracking   bool
	trackMu    sync.Mutex
	ackedAdmit map[dynamic.SessionID]bool
	ackedRel   map[dynamic.SessionID]bool
}

func (w *world) close() {
	if w.srv != nil {
		if q := w.srv.Queue(); q != nil {
			// Drain queued admissions first so no handler is left blocked
			// on a ticket when the listener closes.
			ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
			_ = q.Close(ctx)
			cancel()
		}
	}
	if w.ts != nil {
		w.ts.Close()
	}
}

func (w *world) trackAdmit(id dynamic.SessionID) {
	if !w.tracking {
		return
	}
	w.trackMu.Lock()
	w.ackedAdmit[id] = true
	w.trackMu.Unlock()
}

func (w *world) trackRelease(id dynamic.SessionID) {
	if !w.tracking {
		return
	}
	w.trackMu.Lock()
	w.ackedRel[id] = true
	w.trackMu.Unlock()
}

// restart simulates a process kill and recovery under live traffic:
// the WAL loses its descriptor without a flush (in-flight commits race
// the crash exactly as they would a SIGKILL), the dead manager is
// unplugged from the server and drained, and a fresh manager restored
// from disk is swapped in. Admissions arriving during the blip fail
// fast; the audit at the end of the run proves every acked commit
// survived.
func (w *world) restart(ctx context.Context) (*dynamic.RecoverReport, error) {
	w.restartMu.Lock()
	defer w.restartMu.Unlock()
	old := w.mgr
	w.log.Crash()
	w.srv.SetManager(nil) // blip: new requests answer 501 until the swap
	dctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := old.Drain(dctx); err != nil {
		return nil, fmt.Errorf("drain dead manager: %w", err)
	}
	l, rec, err := wal.Open(w.walDir, wal.Config{Policy: wal.SyncAlways})
	if err != nil {
		return nil, fmt.Errorf("reopen wal: %w", err)
	}
	// The drained manager's network is exactly the committed state the
	// WAL describes (failed commits rolled their deployments back), so
	// the restore re-attaches to it rather than rebuilding from scratch.
	m, rep, err := dynamic.Restore(old.Network(), l, rec, w.opts)
	if err != nil {
		return nil, fmt.Errorf("restore: %w", err)
	}
	m = m.Instrument(w.reg).Trace(w.srv.Traces())
	w.mgr, w.log = m, l
	w.srv.SetManager(m)
	return rep, nil
}

// auditCommitted compares the acked-commit ledger against the live
// manager: an acked admission with no acked release must still be
// live, and nothing may be live that was never acked.
func (w *world) auditCommitted() (lost, phantom int) {
	w.restartMu.Lock()
	mgr := w.mgr
	w.restartMu.Unlock()
	live := make(map[dynamic.SessionID]bool)
	for _, s := range mgr.Sessions() {
		live[s.ID] = true
	}
	w.trackMu.Lock()
	defer w.trackMu.Unlock()
	for id := range w.ackedAdmit {
		if !w.ackedRel[id] && !live[id] {
			lost++
		}
	}
	for id := range live {
		if !w.ackedAdmit[id] {
			phantom++
		}
	}
	return lost, phantom
}

// flap applies one fault event and rebases the manager onto the
// re-materialized substrate, carrying live deployments over.
func (w *world) flap(ev faults.Event) {
	w.restartMu.Lock()
	defer w.restartMu.Unlock()
	if err := w.state.Apply(ev); err != nil {
		return
	}
	if deg, err := w.state.Materialize(w.mgr.Network()); err == nil {
		w.mgr.Rebase(deg)
	}
}

// pickFlapEdge finds the first link whose loss keeps a probe task
// solvable, so fault cycles degrade without making the whole run
// infeasible. The probe materialization also primes the per-down-set
// APSP cache: every in-run flap of this edge is then a cache hit.
func pickFlapEdge(net *nfv.Network, st *faults.State, probe nfv.Task) (u, v int, ok bool) {
	g := net.Graph()
	for id := 0; id < g.NumEdges(); id++ {
		e := g.Edge(id)
		if err := st.Apply(faults.Event{Kind: faults.LinkDown, U: e.U, V: e.V}); err != nil {
			continue
		}
		if deg, err := st.Materialize(net); err == nil {
			if _, err := core.Solve(deg, probe, core.Options{}); err == nil {
				_ = st.Apply(faults.Event{Kind: faults.LinkUp, U: e.U, V: e.V})
				return e.U, e.V, true
			}
		}
		_ = st.Apply(faults.Event{Kind: faults.LinkUp, U: e.U, V: e.V})
	}
	return 0, 0, false
}

func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("sftload", flag.ContinueOnError)
	var (
		url      = fs.String("url", "", "drive a running sftserve at this base URL (default: serve in-process)")
		nodes    = fs.Int("nodes", 50, "generated network size (must match the remote server's -nodes)")
		seed     = fs.Int64("seed", 1, "workload and network seed (must match the remote server's -seed)")
		rates    = fs.String("rates", "8,32,128,512,2048", "comma-separated offered admission rates (arrivals/sec), one curve point each; ends past saturation by default")
		duration = fs.Duration("duration", 5*time.Second, "measured window per rate point")
		warmup   = fs.Duration("warmup", 1*time.Second, "per-point warmup excluded from stats")
		hold     = fs.Duration("hold", 2*time.Second, "mean exponential session holding time before release (0 = never release)")
		mixStr   = fs.String("mix", "2x2:2,4x3:2,8x5:1", "chain-signature mix: destsxchain[:weight] terms")
		faultsN  = fs.Int("faults", 2, "link flap+Rebase cycles per rate point (in-process mode only)")
		par      = fs.Int("parallelism", 2, "solver stage-one parallelism for the in-process server")
		drain    = fs.Duration("drain", 10*time.Second, "post-window wait for in-flight admissions before counting them dropped")
		out      = fs.String("out", "", "write the BENCH_load.json artifact here")
		check    = fs.Bool("check", false, "smoke-gate mode: fail unless admissions, zero unsaturated drops, warm cache hit rates and a request-ID trace are observed")
		gate     = fs.String("gate", "", "regression-gate mode: fail if sustained adm/s at this baseline BENCH_load.json's top rate point dropped more than 10%")
		restart  = fs.Duration("restart", 0, "kill and WAL-restore the in-process manager this long into the first rate point (0 disables; in-process mode only)")
		qdepth   = fs.Int("queue-depth", 0, "run the in-process server's batched admission queue at this depth (0 = inline admission)")
		qwindow  = fs.Duration("batch-window", 2*time.Millisecond, "admission-queue batch window for the in-process server (with -queue-depth)")
		speedup  = fs.Float64("queue-speedup", 0, "dual-run diagnostic gate: queued server must sustain this multiple of the inline server's adm/s at an overloaded shared-signature point, with no regression at the mixed point (0 disables)")
		gateSpee = fs.Float64("gate-speedup", 0, "with -gate: require this run's best unsaturated adm/s to reach this multiple of the baseline's top unsaturated adm/s (0 = same-rate no-regression check)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	mix, err := parseMix(*mixStr)
	if err != nil {
		return err
	}
	var rateList []float64
	for _, r := range strings.Split(*rates, ",") {
		f, err := strconv.ParseFloat(strings.TrimSpace(r), 64)
		if err != nil || f <= 0 {
			return fmt.Errorf("bad rate %q", r)
		}
		rateList = append(rateList, f)
	}

	// The workload network: in-process mode serves it; remote mode only
	// samples tasks against it (so -nodes/-seed must match the server).
	network, err := sftree.GenerateNetwork(sftree.DefaultGenConfig(*nodes, 2), *seed)
	if err != nil {
		return err
	}

	if *speedup > 0 {
		if *url != "" {
			return errors.New("-queue-speedup needs the in-process servers; it cannot A/B a remote one")
		}
		return runQueueSpeedup(network, core.Options{Parallelism: *par}, *seed,
			*duration, *warmup, *drain, *hold, *qdepth, *qwindow, *speedup, stdout)
	}

	w := &world{url: *url, opts: core.Options{Parallelism: *par}}
	if *url == "" {
		reg := obs.NewRegistry()
		quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
		cfg := server.Config{
			Registry:    reg,
			Logger:      quiet,
			QueueDepth:  *qdepth,
			BatchWindow: *qwindow,
		}
		if *restart > 0 {
			// Durable-restart mode: the manager logs every commit to a
			// WAL (fsync per append, the crash-safe policy) so the
			// mid-run kill has something to recover from.
			w.walDir, err = os.MkdirTemp("", "sftload-wal-*")
			if err != nil {
				return err
			}
			defer os.RemoveAll(w.walDir)
			l, _, err := wal.Open(w.walDir, wal.Config{Policy: wal.SyncAlways})
			if err != nil {
				return err
			}
			defer func() { w.log.Close() }()
			w.log = l
			cfg.Manager = dynamic.NewManager(network, w.opts).AttachWAL(l)
			w.tracking = true
			w.ackedAdmit = make(map[dynamic.SessionID]bool)
			w.ackedRel = make(map[dynamic.SessionID]bool)
		}
		srv := server.NewWith(network, w.opts, cfg)
		w.ts = httptest.NewServer(srv)
		w.url = w.ts.URL
		w.srv = srv
		w.reg = reg
		w.mgr = srv.Manager()
		w.state = faults.NewState(network)
		if *faultsN > 0 {
			probeRng := rand.New(rand.NewSource(*seed + 101))
			probe, err := netgen.GenerateTask(network, probeRng, mix[0].dests, mix[0].chainLen)
			if err != nil {
				return err
			}
			w.flapU, w.flapV, w.canFlap = pickFlapEdge(network, w.state, probe)
			if !w.canFlap {
				fmt.Fprintln(stdout, "sftload: no single-link failure keeps the network solvable; fault flapping disabled")
			}
		}
		defer w.close()
	} else {
		if *restart > 0 {
			return errors.New("-restart needs the in-process server; it cannot kill a remote one")
		}
		if *faultsN > 0 {
			fmt.Fprintln(stdout, "sftload: -faults needs the in-process server; ignoring against -url")
		}
	}
	transport := &http.Transport{MaxIdleConns: 256, MaxIdleConnsPerHost: 256}
	defer transport.CloseIdleConnections()
	w.client = server.NewClient(w.url, &http.Client{Transport: transport, Timeout: 30 * time.Second})

	ctx := context.Background()
	if err := w.client.Health(ctx); err != nil {
		return fmt.Errorf("server not healthy at %s: %w", w.url, err)
	}

	// Release goroutines outlive their rate point (sessions hold across
	// point boundaries — that is the steady state); they all stop when
	// relCtx is cancelled at the end of the run.
	relCtx, relCancel := context.WithCancel(ctx)
	var relWG sync.WaitGroup
	defer func() {
		relCancel()
		relWG.Wait()
	}()

	doc := &loadDoc{Schema: "sftload/v1", Generated: time.Now().UTC()}
	doc.Config.URL = *url
	doc.Config.Nodes = *nodes
	doc.Config.Seed = *seed
	doc.Config.Mix = *mixStr
	doc.Config.Rates = *rates
	doc.Config.DurationSec = duration.Seconds()
	doc.Config.WarmupSec = warmup.Seconds()
	doc.Config.HoldSec = hold.Seconds()
	doc.Config.Faults = *faultsN
	doc.Config.Parallelism = *par
	doc.Config.QueueDepth = *qdepth
	if *qdepth > 0 {
		doc.Config.BatchWindowMs = float64(*qwindow) / float64(time.Millisecond)
	}

	fmt.Fprintf(stdout, "%10s %9s %9s %6s %5s %9s %8s %8s %8s %8s %7s %4s\n",
		"rate/s", "admitted", "rejected", "errs", "drop", "adm/s", "p50ms", "p95ms", "p99ms", "p999ms", "rej%", "sat")
	type restartResult struct {
		rep *dynamic.RecoverReport
		err error
	}
	for i, rate := range rateList {
		rng := rand.New(rand.NewSource(*seed + 1000003*int64(i)))
		plan, err := makePlan(network, rng, rate, *warmup, *duration, mix, *hold)
		if err != nil {
			return err
		}
		// The kill fires -restart into the first rate point, concurrent
		// with the offered load; runPoint's own drain absorbs the blip.
		var restartCh chan restartResult
		if i == 0 && *restart > 0 {
			restartCh = make(chan restartResult, 1)
			go func() {
				sleepCtx(ctx, *restart)
				rep, err := w.restart(ctx)
				restartCh <- restartResult{rep, err}
			}()
		}
		pt, err := runPoint(ctx, w, plan, rate, *warmup, *duration, *faultsN, *drain, relCtx, &relWG)
		if err != nil {
			return err
		}
		if restartCh != nil {
			res := <-restartCh
			if res.err != nil {
				return fmt.Errorf("restart harness: %w", res.err)
			}
			pt.Restarted = true
			pt.RestoreMs = float64(res.rep.ReplayDuration) / float64(time.Millisecond)
		}
		doc.Points = append(doc.Points, pt)
		sat := ""
		if pt.Saturated {
			sat = "yes"
		}
		fmt.Fprintf(stdout, "%10.1f %9d %9d %6d %5d %9.1f %8.2f %8.2f %8.2f %8.2f %6.1f%% %4s\n",
			pt.OfferedRate, pt.Admitted, pt.Rejected, pt.Errors, pt.Dropped, pt.AdmitsPerSec,
			pt.Latency.P50, pt.Latency.P95, pt.Latency.P99, pt.Latency.P999, 100*pt.RejectionRate, sat)
	}

	// Durable-restart audit: quiesce the release goroutines, then prove
	// the recovered manager still holds every session a client was told
	// was committed and nothing it was not. A straggler admission still
	// in flight past the drain budget can commit between the two ledger
	// reads, so a dirty verdict is re-checked once after a settle.
	var restartPt *point
	if *restart > 0 {
		relCancel()
		relWG.Wait()
		lost, phantom := w.auditCommitted()
		if lost > 0 || phantom > 0 {
			time.Sleep(500 * time.Millisecond)
			lost, phantom = w.auditCommitted()
		}
		for i := range doc.Points {
			if doc.Points[i].Restarted {
				doc.Points[i].LostCommitted = lost
				restartPt = &doc.Points[i]
			}
		}
		w.trackMu.Lock()
		acked, released := len(w.ackedAdmit), len(w.ackedRel)
		w.trackMu.Unlock()
		fmt.Fprintf(stdout, "restart audit: %d acked admissions, %d acked releases, %d lost, %d phantom\n",
			acked, released, lost, phantom)
		if restartPt == nil {
			return errors.New("-restart never fired: no rate point was running at the kill instant")
		}
		if lost > 0 {
			return fmt.Errorf("restart lost %d committed sessions", lost)
		}
		if phantom > 0 {
			return fmt.Errorf("restart resurrected %d sessions no client was acked for", phantom)
		}
	}

	// Scrape the server's telemetry: the floats section carries the
	// cache hit rates and pool reuse rates this PR added.
	snap, snapErr := scrapeMetrics(ctx, w.url)
	if snapErr == nil {
		doc.Metrics = excerptMetrics(snap)
	}
	trace, traceErr := sampleTrace(ctx, w.url)
	if traceErr == nil {
		doc.Trace = trace
	}

	if *out != "" {
		blob, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s\n", *out)
	}

	if *check {
		if err := checkGate(doc, snap, snapErr, trace, traceErr, *faultsN > 0 && w.canFlap, restartPt, stdout); err != nil {
			return err
		}
	}
	if *gate != "" {
		return gateThroughput(*gate, doc, *gateSpee, stdout)
	}
	return nil
}

// newSelfWorld boots one in-process server for the A/B speedup gate.
func newSelfWorld(network *nfv.Network, opts core.Options, qdepth int, qwindow time.Duration) *world {
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
	reg := obs.NewRegistry()
	srv := server.NewWith(network, opts, server.Config{
		Registry:    reg,
		Logger:      quiet,
		QueueDepth:  qdepth,
		BatchWindow: qwindow,
	})
	w := &world{opts: opts, srv: srv, reg: reg, mgr: srv.Manager()}
	w.ts = httptest.NewServer(srv)
	w.url = w.ts.URL
	transport := &http.Transport{MaxIdleConns: 256, MaxIdleConnsPerHost: 256}
	w.client = server.NewClient(w.url, &http.Client{Transport: transport, Timeout: 30 * time.Second})
	return w
}

// Speedup-gate workload shape: the shared-signature point offers one
// fixed chain far past saturation (where signature coalescing pays),
// the mixed point offers the default mixed-signature curve at a
// comfortably unsaturated rate (where the queue must not cost
// anything).
const (
	speedupSharedMix  = "6x4!"
	speedupSharedRate = 2048.0
	speedupMixedMix   = "2x2:2,4x3:2,8x5:1"
	speedupMixedRate  = 128.0
	// speedupMixedTolerance is the fraction of the inline server's
	// mixed-point adm/s the queued server must retain.
	speedupMixedTolerance = 0.90
)

// runQueueSpeedup is the A/B admission-queue gate: two in-process
// servers on clones of the same network — one admitting inline, one
// behind the batched queue — are driven with identical pre-generated
// plans. The queued server must sustain at least `factor` times the
// inline adm/s at the overloaded shared-signature point and at least
// speedupMixedTolerance of it at the unsaturated mixed point.
func runQueueSpeedup(network *nfv.Network, opts core.Options, seed int64, duration, warmup, drain, hold time.Duration, qdepth int, qwindow time.Duration, factor float64, stdout io.Writer) error {
	if qdepth <= 0 {
		qdepth = 1024
	}
	sharedMix, err := parseMix(speedupSharedMix)
	if err != nil {
		return err
	}
	mixedMix, err := parseMix(speedupMixedMix)
	if err != nil {
		return err
	}
	// Both variants replay the exact same arrival schedules.
	sharedPlan, err := makePlan(network, rand.New(rand.NewSource(seed+501)), speedupSharedRate, warmup, duration, sharedMix, hold)
	if err != nil {
		return err
	}
	mixedPlan, err := makePlan(network, rand.New(rand.NewSource(seed+502)), speedupMixedRate, warmup, duration, mixedMix, hold)
	if err != nil {
		return err
	}

	ctx := context.Background()
	type variant struct {
		name          string
		depth         int
		shared, mixed point
	}
	variants := []*variant{
		{name: "inline", depth: 0},
		{name: "queued", depth: qdepth},
	}
	fmt.Fprintf(stdout, "%8s %8s %10s %9s %9s %6s %5s %9s %8s %4s\n",
		"server", "point", "rate/s", "admitted", "rejected", "errs", "drop", "adm/s", "p99ms", "sat")
	for _, v := range variants {
		w := newSelfWorld(network.Clone(), opts, v.depth, qwindow)
		relCtx, relCancel := context.WithCancel(ctx)
		var relWG sync.WaitGroup
		run := func(plan []arrival, rate float64, label string) (point, error) {
			pt, err := runPoint(ctx, w, plan, rate, warmup, duration, 0, drain, relCtx, &relWG)
			if err != nil {
				return pt, err
			}
			sat := ""
			if pt.Saturated {
				sat = "yes"
			}
			fmt.Fprintf(stdout, "%8s %8s %10.1f %9d %9d %6d %5d %9.1f %8.2f %4s\n",
				v.name, label, pt.OfferedRate, pt.Admitted, pt.Rejected, pt.Errors, pt.Dropped,
				pt.AdmitsPerSec, pt.Latency.P99, sat)
			return pt, nil
		}
		v.shared, err = run(sharedPlan, speedupSharedRate, "shared")
		if err == nil {
			v.mixed, err = run(mixedPlan, speedupMixedRate, "mixed")
		}
		relCancel()
		relWG.Wait()
		w.close()
		if err != nil {
			return err
		}
	}

	inline, queued := variants[0], variants[1]
	if inline.shared.Admitted == 0 || inline.mixed.Admitted == 0 {
		return errors.New("queue speedup gate: inline baseline admitted nothing; comparison is vacuous")
	}
	ratio := queued.shared.AdmitsPerSec / inline.shared.AdmitsPerSec
	if ratio < factor {
		return fmt.Errorf("queue speedup gate failed: shared-signature point %.1f adm/s queued vs %.1f inline (%.2fx < %.2fx)",
			queued.shared.AdmitsPerSec, inline.shared.AdmitsPerSec, ratio, factor)
	}
	if queued.mixed.AdmitsPerSec < speedupMixedTolerance*inline.mixed.AdmitsPerSec {
		return fmt.Errorf("queue speedup gate failed: mixed point regressed to %.1f adm/s queued vs %.1f inline (floor %.0f%%)",
			queued.mixed.AdmitsPerSec, inline.mixed.AdmitsPerSec, 100*speedupMixedTolerance)
	}
	fmt.Fprintf(stdout, "queue speedup gate OK: %.2fx at the shared-signature point (%.1f vs %.1f adm/s), mixed point %.1f vs %.1f adm/s\n",
		ratio, queued.shared.AdmitsPerSec, inline.shared.AdmitsPerSec,
		queued.mixed.AdmitsPerSec, inline.mixed.AdmitsPerSec)
	return nil
}

// loadGateTolerance is the fraction of the baseline's sustained
// admission throughput this run must reach at the baseline's top
// offered rate for gateThroughput to pass.
const loadGateTolerance = 0.90

// gateThroughput compares this run against a checked-in baseline
// artifact. With speedupFactor zero it is a no-regression check: the
// point at the baseline's highest *unsaturated* offered rate
// (saturated points measure queueing through the drain, not
// sustainable throughput) must sustain at least loadGateTolerance of
// the baseline's adm/s, and the run must include a point at that
// exact offered rate (pass matching -rates) or the comparison is
// vacuous and fails loudly. With speedupFactor > 0 it is the
// admission-queue speedup gate instead: this run's best unsaturated
// point — typically a shared-signature mix the queue coalesces — must
// sustain at least that multiple of the baseline's top unsaturated
// adm/s.
func gateThroughput(path string, doc *loadDoc, speedupFactor float64, stdout io.Writer) error {
	blob, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("load throughput gate: %w", err)
	}
	var base loadDoc
	if err := json.Unmarshal(blob, &base); err != nil {
		return fmt.Errorf("load throughput gate: parse %s: %w", path, err)
	}
	var top *point
	for i := range base.Points {
		pt := &base.Points[i]
		if pt.Saturated {
			continue
		}
		if top == nil || pt.OfferedRate > top.OfferedRate {
			top = pt
		}
	}
	if top == nil {
		return fmt.Errorf("load throughput gate: %s has no unsaturated rate point", path)
	}
	if speedupFactor > 0 {
		var best *point
		for i := range doc.Points {
			pt := &doc.Points[i]
			if pt.Saturated {
				continue
			}
			if best == nil || pt.AdmitsPerSec > best.AdmitsPerSec {
				best = pt
			}
		}
		if best == nil {
			return errors.New("queue speedup gate: every point in this run saturated; offer a sustainable rate")
		}
		floor := speedupFactor * top.AdmitsPerSec
		if best.AdmitsPerSec < floor {
			return fmt.Errorf("queue speedup gate failed: %.1f adm/s at %.0f/s, below %.1f (%.2fx of baseline %.1f)",
				best.AdmitsPerSec, best.OfferedRate, floor, speedupFactor, top.AdmitsPerSec)
		}
		fmt.Fprintf(stdout, "queue speedup gate OK: %.1f adm/s sustained at %.0f/s, %.2fx the baseline's %.1f (floor %.1f)\n",
			best.AdmitsPerSec, best.OfferedRate, best.AdmitsPerSec/top.AdmitsPerSec, top.AdmitsPerSec, floor)
		return nil
	}
	var cur *point
	for i := range doc.Points {
		if doc.Points[i].OfferedRate == top.OfferedRate {
			cur = &doc.Points[i]
			break
		}
	}
	if cur == nil {
		return fmt.Errorf("load throughput gate: this run has no %.0f/s point to compare against %s", top.OfferedRate, path)
	}
	floor := loadGateTolerance * top.AdmitsPerSec
	if cur.AdmitsPerSec < floor {
		return fmt.Errorf("load throughput gate failed: %.1f adm/s at %.0f/s, below %.1f (%.0f%% of baseline %.1f)",
			cur.AdmitsPerSec, top.OfferedRate, floor, 100*loadGateTolerance, top.AdmitsPerSec)
	}
	fmt.Fprintf(stdout, "load throughput gate OK: %.1f adm/s at %.0f/s (baseline %.1f, floor %.1f)\n",
		cur.AdmitsPerSec, top.OfferedRate, top.AdmitsPerSec, floor)
	return nil
}

// runPoint drives one offered-rate window: every arrival fires at its
// scheduled instant on its own goroutine, latency is measured from
// that instant, and anything still in flight after the drain budget is
// counted dropped (never silently ignored).
func runPoint(ctx context.Context, w *world, plan []arrival, rate float64, warmup, window time.Duration, faultsN int, drain time.Duration, relCtx context.Context, relWG *sync.WaitGroup) (point, error) {
	col := &collector{}
	var wg sync.WaitGroup
	start := time.Now()

	// Fault flapper: evenly spaced down/up cycles across the window,
	// each Rebase carrying live sessions through the repair ladder.
	var flapWG sync.WaitGroup
	if faultsN > 0 && w.canFlap {
		flapWG.Add(1)
		go func() {
			defer flapWG.Done()
			period := (warmup + window) / time.Duration(faultsN)
			for i := 0; i < faultsN; i++ {
				if !sleepCtx(ctx, period/2) {
					return
				}
				w.flap(faults.Event{Kind: faults.LinkDown, U: w.flapU, V: w.flapV})
				if !sleepCtx(ctx, period-period/2) {
					return
				}
				w.flap(faults.Event{Kind: faults.LinkUp, U: w.flapU, V: w.flapV})
			}
		}()
	}

	offeredMeasured := 0
	for _, a := range plan {
		if !a.warm {
			offeredMeasured++
		}
		if !sleepCtx(ctx, time.Until(start.Add(a.at))) {
			return point{}, ctx.Err()
		}
		wg.Add(1)
		go func(a arrival) {
			defer wg.Done()
			sched := start.Add(a.at)
			resp, err := w.client.Admit(ctx, a.task)
			lat := time.Since(sched)
			s := sample{measured: !a.warm, latMs: float64(lat) / float64(time.Millisecond)}
			switch {
			case err == nil:
				s.out = outAdmitted
				s.waitMs, s.solveMs = resp.WaitMS, resp.SolveMS
				w.trackAdmit(resp.ID)
				if a.hold > 0 {
					relWG.Add(1)
					go func(id dynamic.SessionID, d time.Duration) {
						defer relWG.Done()
						if sleepCtx(relCtx, d) {
							if w.client.Release(relCtx, id) == nil {
								w.trackRelease(id)
							}
						}
					}(resp.ID, a.hold)
				}
			case isRejection(err):
				s.out = outRejected
			default:
				s.out = outError
			}
			col.add(s)
		}(a)
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(drain):
	}
	flapWG.Wait()

	pt := point{OfferedRate: rate, Offered: offeredMeasured}
	var lats, waits, solves []float64
	completedMeasured := 0
	for _, s := range col.snapshot() {
		if !s.measured {
			continue
		}
		completedMeasured++
		switch s.out {
		case outAdmitted:
			pt.Admitted++
			lats = append(lats, s.latMs)
			if s.solveMs > 0 {
				// The queued path reports the wait/solve split.
				waits = append(waits, s.waitMs)
				solves = append(solves, s.solveMs)
			}
		case outRejected:
			pt.Rejected++
		default:
			pt.Errors++
		}
	}
	pt.Dropped = offeredMeasured - completedMeasured
	pt.AdmitsPerSec = float64(pt.Admitted) / window.Seconds()
	if completedMeasured > 0 {
		pt.RejectionRate = float64(pt.Rejected) / float64(completedMeasured)
	}
	pt.Latency = summarize(lats)
	if len(solves) > 0 {
		ws, ss := summarize(waits), summarize(solves)
		pt.Wait, pt.Solve = &ws, &ss
	}
	pt.Saturated = pt.Dropped > 0 ||
		float64(completedMeasured) < saturationCompletionFrac*float64(offeredMeasured) ||
		pt.Latency.P99 > saturationP99Ms
	return pt, nil
}

// isRejection reports a 409 admission verdict: the network declined
// the session (a legitimate load-curve data point, not an error).
func isRejection(err error) bool {
	var apiErr *server.APIError
	return errors.As(err, &apiErr) && apiErr.Status == http.StatusConflict
}

// scrapeMetrics pulls the server's /metrics snapshot.
func scrapeMetrics(ctx context.Context, base string) (*obs.Snapshot, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/metrics: %s", resp.Status)
	}
	var snap obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil, err
	}
	return &snap, nil
}

// excerptMetrics keeps the artifact focused: all callback floats
// (cache hit rates, pool reuse) plus the headline solve percentiles.
func excerptMetrics(snap *obs.Snapshot) map[string]float64 {
	out := make(map[string]float64, len(snap.Floats)+4)
	for k, v := range snap.Floats {
		out[k] = v
	}
	if h, ok := snap.Histograms["session_solve_ms"]; ok {
		out["session_solve_ms_p50"] = h.P50
		out["session_solve_ms_p99"] = h.P99
		out["session_solve_ms_p999"] = h.P999
		out["session_solve_ms_count"] = float64(h.Count)
	}
	return out
}

// sampleTrace pulls /debug/traces and returns the newest admission
// trace stamped with a request ID — the end-to-end propagation proof.
func sampleTrace(ctx context.Context, base string) (*obs.Trace, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/debug/traces", nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/debug/traces: %s", resp.Status)
	}
	var doc struct {
		Traces []obs.Trace `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return nil, err
	}
	for i := len(doc.Traces) - 1; i >= 0; i-- {
		t := doc.Traces[i]
		if t.Op == "admit" && t.RequestID != "" && len(t.Spans) > 0 {
			return &t, nil
		}
	}
	return nil, errors.New("no request-ID-stamped admission trace in /debug/traces")
}

// checkGate enforces the smoke-gate assertions; any failure is an
// error the caller exits nonzero on.
func checkGate(doc *loadDoc, snap *obs.Snapshot, snapErr error, trace *obs.Trace, traceErr error, expectAPSP bool, restartPt *point, stdout io.Writer) error {
	var admitted, dropped int
	for _, pt := range doc.Points {
		admitted += pt.Admitted
		if !pt.Saturated {
			// Saturated points drop measurements by definition — that is
			// the signal, not a harness failure.
			dropped += pt.Dropped
		}
	}
	var fails []string
	if admitted == 0 {
		fails = append(fails, "no sessions admitted")
	}
	if dropped != 0 {
		fails = append(fails, fmt.Sprintf("%d measurements dropped (in flight past the drain budget) at unsaturated points", dropped))
	}
	switch {
	case snapErr != nil:
		fails = append(fails, fmt.Sprintf("scrape /metrics: %v", snapErr))
	default:
		if snap.Floats["metric_cache_hit_rate"] <= 0 {
			fails = append(fails, "metric_cache_hit_rate not > 0")
		}
		if expectAPSP && snap.Floats["apsp_cache_hit_rate"] <= 0 {
			fails = append(fails, "apsp_cache_hit_rate not > 0 despite fault flaps")
		}
		if h, ok := snap.Histograms["session_solve_ms"]; !ok || h.Count == 0 {
			fails = append(fails, "session_solve_ms histogram empty")
		}
	}
	if traceErr != nil {
		fails = append(fails, fmt.Sprintf("trace propagation: %v", traceErr))
	} else if trace.RequestID == "" {
		fails = append(fails, "sampled trace lacks a request ID")
	}
	if restartPt != nil {
		// The kill-and-recover blip must stay bounded: zero acked
		// commits lost (also enforced unconditionally) and a p99 that
		// never crosses the saturation threshold — recovery is a fast
		// replay, not an outage.
		if restartPt.LostCommitted != 0 {
			fails = append(fails, fmt.Sprintf("restart lost %d committed sessions", restartPt.LostCommitted))
		}
		if restartPt.Latency.P99 > saturationP99Ms {
			fails = append(fails, fmt.Sprintf("restart blip p99 %.1fms exceeds %.0fms", restartPt.Latency.P99, saturationP99Ms))
		}
	}
	if len(fails) > 0 {
		return fmt.Errorf("load gate failed:\n  - %s", strings.Join(fails, "\n  - "))
	}
	fmt.Fprintf(stdout, "load gate OK: %d admitted, 0 dropped, metric_cache_hit_rate=%.3f apsp_cache_hit_rate=%.3f, trace request_id=%s\n",
		admitted, snap.Floats["metric_cache_hit_rate"], snap.Floats["apsp_cache_hit_rate"], trace.RequestID)
	return nil
}
