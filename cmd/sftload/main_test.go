package main

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"sftree"
)

func TestParseMix(t *testing.T) {
	mix, err := parseMix("2x3:2, 8x5 ,4x1:0.5")
	if err != nil {
		t.Fatal(err)
	}
	want := []sig{{2, 3, 2, false}, {8, 5, 1, false}, {4, 1, 0.5, false}}
	if !reflect.DeepEqual(mix, want) {
		t.Errorf("mix = %+v, want %+v", mix, want)
	}
	fixed, err := parseMix("6x4!:3,2x2")
	if err != nil {
		t.Fatal(err)
	}
	if want := []sig{{6, 4, 3, true}, {2, 2, 1, false}}; !reflect.DeepEqual(fixed, want) {
		t.Errorf("fixed mix = %+v, want %+v", fixed, want)
	}
	for _, bad := range []string{"", "2y3", "0x3", "2x3:-1", "ax3"} {
		if _, err := parseMix(bad); err == nil {
			t.Errorf("mix %q accepted", bad)
		}
	}
}

// TestMakePlanFixedChain: every arrival of a "!" term shares one
// chain (one signature), while a non-fixed term keeps sampling.
func TestMakePlanFixedChain(t *testing.T) {
	net, err := sftree.GenerateNetwork(sftree.DefaultGenConfig(30, 2), 7)
	if err != nil {
		t.Fatal(err)
	}
	mix := []sig{{4, 4, 1, true}}
	plan, err := makePlan(net, rand.New(rand.NewSource(9)), 50, 0, time.Second, mix, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) < 10 {
		t.Fatalf("plan too small: %d", len(plan))
	}
	first := plan[0].task.Chain
	for i, a := range plan {
		if !reflect.DeepEqual(a.task.Chain, first) {
			t.Fatalf("arrival %d chain %v differs from %v despite fixed term", i, a.task.Chain, first)
		}
	}
}

func TestMakePlanDeterministic(t *testing.T) {
	net, err := sftree.GenerateNetwork(sftree.DefaultGenConfig(30, 2), 7)
	if err != nil {
		t.Fatal(err)
	}
	mix := []sig{{2, 2, 1, false}, {4, 3, 1, false}}
	plan1, err := makePlan(net, rand.New(rand.NewSource(42)), 50, 200*time.Millisecond, time.Second, mix, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	plan2, err := makePlan(net, rand.New(rand.NewSource(42)), 50, 200*time.Millisecond, time.Second, mix, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan1) == 0 {
		t.Fatal("empty plan")
	}
	if !reflect.DeepEqual(plan1, plan2) {
		t.Error("same seed produced different arrival plans")
	}
	// Sanity: ~rate*total arrivals, warmup flags set, times ordered.
	if n := len(plan1); n < 30 || n > 90 {
		t.Errorf("plan has %d arrivals for ~60 expected", n)
	}
	warm := 0
	for i, a := range plan1 {
		if i > 0 && a.at < plan1[i-1].at {
			t.Fatal("arrival times not monotone")
		}
		if a.warm {
			warm++
		}
		if a.warm != (a.at < 200*time.Millisecond) {
			t.Errorf("arrival %d warm flag wrong: at=%v", i, a.at)
		}
	}
	if warm == 0 {
		t.Error("no warmup arrivals flagged")
	}
}

func TestExactQuantiles(t *testing.T) {
	s := summarize([]float64{4, 1, 3, 2, 5})
	if s.P50 != 3 || s.Max != 5 || s.Mean != 3 {
		t.Errorf("summary = %+v", s)
	}
	if s.P999 != 5 {
		t.Errorf("p999 = %v, want the max of a small sample", s.P999)
	}
	if z := summarize(nil); z != (latencySummary{}) {
		t.Errorf("empty summary = %+v", z)
	}
}

// TestLoadRunEndToEnd runs the full harness against its in-process
// server with the -check gate on: a short fixed-seed window with one
// fault flap must admit sessions, drop nothing, surface both cache
// hit rates, emit the artifact, and capture a request-ID trace.
func TestLoadRunEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("load window too long for -short")
	}
	outPath := filepath.Join(t.TempDir(), "BENCH_load.json")
	var buf bytes.Buffer
	args := []string{
		"-nodes", "30", "-seed", "5",
		"-rates", "25", "-duration", "1200ms", "-warmup", "300ms",
		"-hold", "500ms", "-faults", "1",
		"-out", outPath, "-check",
	}
	if err := run(args, &buf); err != nil {
		t.Fatalf("%v\noutput:\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "load gate OK") {
		t.Errorf("gate verdict missing:\n%s", buf.String())
	}

	blob, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var doc loadDoc
	if err := json.Unmarshal(blob, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Schema != "sftload/v1" || len(doc.Points) != 1 {
		t.Fatalf("artifact = %+v", doc)
	}
	pt := doc.Points[0]
	if pt.Admitted == 0 || pt.Dropped != 0 {
		t.Errorf("point = %+v, want admissions and zero drops", pt)
	}
	if pt.Latency.P50 <= 0 || pt.Latency.P999 < pt.Latency.P50 {
		t.Errorf("latency summary malformed: %+v", pt.Latency)
	}
	if doc.Metrics["metric_cache_hit_rate"] <= 0 {
		t.Errorf("metric_cache_hit_rate = %v in artifact", doc.Metrics["metric_cache_hit_rate"])
	}
	if doc.Trace == nil || doc.Trace.RequestID == "" {
		t.Error("artifact lacks the request-ID trace sample")
	}
}

// TestLoadRunRestartDrill kills and WAL-restores the in-process
// manager mid-window and requires the audit to prove zero
// committed-session loss, with the restart fields in the artifact.
func TestLoadRunRestartDrill(t *testing.T) {
	if testing.Short() {
		t.Skip("load window too long for -short")
	}
	outPath := filepath.Join(t.TempDir(), "BENCH_load.json")
	var buf bytes.Buffer
	args := []string{
		"-nodes", "25", "-seed", "9",
		"-rates", "12", "-duration", "1500ms", "-warmup", "300ms",
		"-hold", "600ms", "-faults", "0",
		"-restart", "800ms",
		"-out", outPath, "-check",
	}
	if err := run(args, &buf); err != nil {
		t.Fatalf("%v\noutput:\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "restart audit:") || !strings.Contains(buf.String(), " 0 lost, 0 phantom") {
		t.Errorf("audit verdict missing or dirty:\n%s", buf.String())
	}

	blob, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var doc loadDoc
	if err := json.Unmarshal(blob, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Points) != 1 {
		t.Fatalf("artifact = %+v", doc)
	}
	pt := doc.Points[0]
	if !pt.Restarted || pt.LostCommitted != 0 {
		t.Errorf("restart point = %+v, want restarted with zero loss", pt)
	}
	if pt.RestoreMs < 0 {
		t.Errorf("restore duration %v", pt.RestoreMs)
	}
	if pt.Admitted == 0 {
		t.Error("no admissions measured across the restart")
	}
}

func TestLoadRunBadFlags(t *testing.T) {
	if err := run([]string{"-rates", "0"}, &bytes.Buffer{}); err == nil {
		t.Error("zero rate accepted")
	}
	if err := run([]string{"-mix", "bogus"}, &bytes.Buffer{}); err == nil {
		t.Error("bogus mix accepted")
	}
	if err := run([]string{"-nope"}, &bytes.Buffer{}); err == nil {
		t.Error("unknown flag accepted")
	}
	if err := run([]string{"-url", "http://127.0.0.1:1", "-restart", "1s"}, &bytes.Buffer{}); err == nil {
		t.Error("-restart against a remote server accepted")
	}
}
