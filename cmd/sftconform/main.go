// Command sftconform runs the differential conformance harness: it
// generates a seeded, stratified instance corpus, solves every case
// with the exact references (brute force, ILP), the two-stage
// algorithm, and the baselines, and cross-checks all of them through
// the shared invariant validator. It exits non-zero on any violation,
// which makes it the `tools.sh conformance` gate.
//
// Usage:
//
//	sftconform -n 200 -seed 1             # full differential run
//	sftconform -n 40 -seed 1 -faulted=0   # skip the fault-repair variant
//	sftconform -n 9 -seed 1 -emit internal/conformance/testdata/corpus
//	sftconform -corpus internal/conformance/testdata/corpus
//	sftconform -n 200 -json report.json   # machine-readable report
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"sftree/internal/conformance/harness"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sftconform:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("sftconform", flag.ContinueOnError)
	var (
		n        = fs.Int("n", 40, "corpus cases (round-robin over the stratum grid)")
		seed     = fs.Int64("seed", 1, "root random seed; the same seed reproduces the run byte for byte")
		faulted  = fs.Bool("faulted", true, "also replay a seeded fault schedule per case and validate every repair")
		events   = fs.Int("events", 6, "fault-schedule length for the faulted variant")
		ilpVars  = fs.Int("ilp-vars", 0, "max ILP model variables (0 = harness default)")
		ilpLimit = fs.Duration("ilp-time", 0, "per-case ILP time limit (0 = harness default)")
		emit     = fs.String("emit", "", "write the generated corpus as InstanceDoc JSON files into this directory")
		corpus   = fs.String("corpus", "", "run on a saved corpus directory instead of generating one")
		jsonOut  = fs.String("json", "", "write the full report as JSON to this file")
		quiet    = fs.Bool("q", false, "suppress per-case progress")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := harness.RunConfig{
		N: *n, Seed: *seed,
		Faulted: *faulted, FaultEvents: *events,
		MaxILPVars: *ilpVars, ILPTimeLimit: *ilpLimit,
	}
	if !*quiet {
		cfg.Progress = func(done, total int) {
			if done%10 == 0 || done == total {
				fmt.Fprintf(os.Stderr, "\rsftconform: %d/%d cases", done, total)
				if done == total {
					fmt.Fprintln(os.Stderr)
				}
			}
		}
	}

	start := time.Now()
	var rep *harness.Report
	var err error
	switch {
	case *corpus != "":
		var cases []*harness.Case
		if cases, err = harness.LoadCorpus(*corpus); err != nil {
			return err
		}
		rep, err = harness.RunCases(cfg, cases)
	case *emit != "":
		var cases []*harness.Case
		if cases, err = harness.GenerateCorpus(nil, *n, *seed); err != nil {
			return err
		}
		if err = harness.SaveCorpus(*emit, cases); err != nil {
			return err
		}
		fmt.Printf("wrote %d corpus files to %s\n", len(cases), *emit)
		rep, err = harness.RunCases(cfg, cases)
	default:
		rep, err = harness.Run(cfg)
	}
	if err != nil {
		return err
	}

	if *jsonOut != "" {
		blob, err := json.MarshalIndent(rep, "", " ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonOut, append(blob, '\n'), 0o644); err != nil {
			return err
		}
	}
	printReport(rep, time.Since(start))
	if len(rep.Violations) > 0 {
		return fmt.Errorf("%d cross-solver violations", len(rep.Violations))
	}
	return nil
}

func printReport(rep *harness.Report, elapsed time.Duration) {
	fmt.Printf("cases %d · solver runs %d · faulted replays %d · repair checks %d · %s\n\n",
		rep.Cases, rep.Solves, rep.FaultedRuns, rep.RepairChecks, elapsed.Round(time.Millisecond))
	fmt.Printf("%-16s %6s %10s %8s %12s %10s %10s\n",
		"stratum", "cases", "ilp-exact", "brute", "reference", "mean", "max")
	for _, sr := range rep.Strata {
		fmt.Printf("%-16s %6d %10d %8d %12s %10.4f %10.4f\n",
			sr.Stratum, sr.Cases, sr.ILPOptimal, sr.BruteForced, sr.Reference, sr.MeanRatio, sr.MaxRatio)
	}
	if len(rep.Violations) == 0 {
		fmt.Println("\nzero cross-solver violations")
		return
	}
	fmt.Printf("\n%d VIOLATIONS\n", len(rep.Violations))
	for _, v := range rep.Violations {
		fmt.Println("  " + v.String())
	}
}
