package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sftree"
)

// writeInstance creates a small instance file for CLI tests.
func writeInstance(t *testing.T) string {
	t.Helper()
	net, err := sftree.GenerateNetwork(sftree.DefaultGenConfig(15, 2), 21)
	if err != nil {
		t.Fatal(err)
	}
	task, err := sftree.GenerateTask(net, 22, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(sftree.InstanceDoc{Network: net, Task: task})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "inst.json")
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunAlgorithms(t *testing.T) {
	path := writeInstance(t)
	for _, algo := range []string{"msa", "msa1", "sca", "rsa", "bks"} {
		t.Run(algo, func(t *testing.T) {
			var buf bytes.Buffer
			if err := run([]string{"-in", path, "-algo", algo}, &buf); err != nil {
				t.Fatal(err)
			}
			out := buf.String()
			if !strings.Contains(out, "cost: total") {
				t.Errorf("missing cost line:\n%s", out)
			}
			if !strings.Contains(out, "replay: delivered 3/3") {
				t.Errorf("missing replay verification:\n%s", out)
			}
		})
	}
}

func TestRunTMFlag(t *testing.T) {
	path := writeInstance(t)
	var buf bytes.Buffer
	if err := run([]string{"-in", path, "-tm"}, &buf); err != nil {
		t.Fatal(err)
	}
}

func TestRunSVGOutput(t *testing.T) {
	path := writeInstance(t)
	svg := filepath.Join(t.TempDir(), "out.svg")
	var buf bytes.Buffer
	if err := run([]string{"-in", path, "-svg", svg}, &buf); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(svg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(blob), "<svg") {
		t.Errorf("svg output malformed: %s", blob[:20])
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{}, nil); err == nil {
		t.Error("missing -in accepted")
	}
	if err := run([]string{"-in", "/nonexistent.json"}, nil); err == nil {
		t.Error("missing file accepted")
	}
	path := writeInstance(t)
	if err := run([]string{"-in", path, "-algo", "bogus"}, nil); err == nil {
		t.Error("unknown algorithm accepted")
	}
	garbage := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(garbage, []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-in", garbage}, nil); err == nil {
		t.Error("garbage JSON accepted")
	}
}

func TestRunILPOnTinyInstance(t *testing.T) {
	// Build a deliberately tiny instance so the exact path finishes.
	catalog := []sftree.VNF{{ID: 0, Name: "f0", Demand: 1}}
	net, err := sftree.NewNetworkBuilder(4, catalog).
		AddLink(0, 1, 1).AddLink(1, 2, 1).AddLink(2, 3, 1).
		SetServer(1, 1).SetServer(2, 1).
		SetSetupCost(0, 1, 1).SetSetupCost(0, 2, 1).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	task := sftree.Task{Source: 0, Destinations: []int{3}, Chain: sftree.SFC{0}}
	blob, err := json.Marshal(sftree.InstanceDoc{Network: net, Task: task})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "tiny.json")
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run([]string{"-in", path, "-algo", "ilp"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "proven=true") {
		t.Errorf("tiny ILP not proven optimal:\n%s", buf.String())
	}
}
