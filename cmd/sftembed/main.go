// Command sftembed solves one SFT-embedding instance from JSON and
// prints the resulting embedding, its cost breakdown, and a
// flow-replay verification.
//
// Usage:
//
//	sftgen -nodes 40 > inst.json
//	sftembed -in inst.json                 # two-stage algorithm (default)
//	sftembed -in inst.json -algo sca       # baselines: sca, rsa
//	sftembed -in inst.json -algo bks       # best-known reference
//	sftembed -in inst.json -algo ilp       # exact ILP (small instances!)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"sftree"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sftembed:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("sftembed", flag.ContinueOnError)
	var (
		in      = fs.String("in", "", "instance JSON file (required)")
		algo    = fs.String("algo", "msa", "algorithm: msa, msa1 (stage one only), sca, rsa, bks, ilp")
		seed    = fs.Int64("seed", 1, "seed for the rsa baseline")
		tm      = fs.Bool("tm", false, "use Takahashi-Matsuyama instead of KMB for Steiner trees")
		timeout = fs.Duration("timeout", time.Minute, "wall-time budget for -algo ilp")
		svgOut  = fs.String("svg", "", "also render the embedding to this SVG file (needs coordinates)")
		dotOut  = fs.String("dot", "", "also emit the embedding as Graphviz DOT to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("-in is required")
	}
	blob, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	var doc sftree.InstanceDoc
	if err := json.Unmarshal(blob, &doc); err != nil {
		return fmt.Errorf("parse %s: %w", *in, err)
	}
	opts := sftree.Options{}
	if *tm {
		opts.Steiner = sftree.SteinerTM
	}

	var (
		emb  *sftree.Embedding
		note string
	)
	switch *algo {
	case "msa":
		res, err := sftree.SolveTwoStage(doc.Network, doc.Task, opts)
		if err != nil {
			return err
		}
		emb = res.Embedding
		note = fmt.Sprintf("stage-one cost %.3f, %d stage-two moves", res.Stage1Cost, res.MovesAccepted)
	case "msa1":
		res, err := sftree.SolveStageOne(doc.Network, doc.Task, opts)
		if err != nil {
			return err
		}
		emb = res.Embedding
	case "sca":
		res, err := sftree.SolveSCA(doc.Network, doc.Task, opts)
		if err != nil {
			return err
		}
		emb = res.Embedding
	case "rsa":
		res, err := sftree.SolveRSA(doc.Network, doc.Task, *seed, opts)
		if err != nil {
			return err
		}
		emb = res.Embedding
	case "bks":
		res, err := sftree.SolveBestKnown(doc.Network, doc.Task)
		if err != nil {
			return err
		}
		emb = res.Embedding
	case "ilp":
		res, err := sftree.SolveILP(doc.Network, doc.Task, sftree.ILPOptions{WarmStart: true, TimeLimit: *timeout})
		if err != nil {
			return err
		}
		if res.Embedding == nil {
			return fmt.Errorf("ILP found no integral solution within budget (bound %.3f)", res.Bound)
		}
		emb = res.Embedding
		note = fmt.Sprintf("proven=%v bound=%.3f nodes=%d", res.Proven, res.Bound, res.Nodes)
	default:
		return fmt.Errorf("unknown algorithm %q", *algo)
	}

	bd := doc.Network.Cost(emb)
	rep, err := sftree.Replay(doc.Network, emb)
	if err != nil {
		return fmt.Errorf("replay verification failed: %w", err)
	}
	fmt.Fprint(w, emb.String())
	fmt.Fprintf(w, "cost: total %.3f (setup %.3f + link %.3f)\n", bd.Total, bd.Setup, bd.Link)
	fmt.Fprintf(w, "replay: delivered %d/%d, max edge load %d copies, total %.3f\n",
		rep.Delivered, len(doc.Task.Destinations), rep.MaxEdgeLoad, rep.TotalCost)
	if note != "" {
		fmt.Fprintf(w, "note: %s\n", note)
	}
	if *svgOut != "" {
		blob, err := sftree.RenderSVG(doc.Network, emb, nil, "sftembed: "+*algo)
		if err != nil {
			return fmt.Errorf("render svg: %w", err)
		}
		if err := os.WriteFile(*svgOut, blob, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", *svgOut)
	}
	if *dotOut != "" {
		if err := os.WriteFile(*dotOut, sftree.RenderDOT(doc.Network, emb, nil, "sftembed: "+*algo), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", *dotOut)
	}
	return nil
}
