package sftree

import (
	"sftree/internal/baseline"
	"sftree/internal/forest"
)

// ForestResult is a multi-source service-overlay-forest embedding.
type ForestResult = forest.Result

// SolveOneNode runs the pseudo-multicast baseline of Xu et al.
// (ICDCS'17): the whole chain collapsed onto the single best node,
// followed by the shared stage-two optimization. Useful as a
// literature comparison point against SolveTwoStage.
func SolveOneNode(net *Network, task Task, opts Options) (*Result, error) {
	return baseline.OneNode(net, task, opts)
}

// SolveForest embeds several multicast tasks (typically with distinct
// sources) as a service overlay forest: one SFT per task with VNF
// instances shared across trees — the multi-source setting of Kuo et
// al. (ICDCS'17). The input network is not mutated.
func SolveForest(net *Network, tasks []Task, opts Options) (*ForestResult, error) {
	return forest.Embed(net, tasks, opts)
}
