package sftree

import (
	"strings"
	"testing"
)

// TestFacadeTraceWorkflow drives the workload-trace surface of the
// public API end to end.
func TestFacadeTraceWorkflow(t *testing.T) {
	net, err := GenerateNetwork(DefaultGenConfig(30, 2), 61)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultTraceConfig()
	cfg.Sessions = 12
	events, err := GenerateTrace(net, cfg, 62)
	if err != nil {
		t.Fatal(err)
	}
	sum := SummarizeTrace(events)
	if sum.Sessions != 12 || sum.PeakOverlap < 1 {
		t.Fatalf("summary = %+v", sum)
	}
	arrivals := 0
	for _, ev := range events {
		if ev.Kind == TraceArrival {
			arrivals++
		}
	}
	if arrivals != 12 {
		t.Fatalf("arrivals = %d", arrivals)
	}
	stats, err := RunTrace(NewSessionManager(net, Options{}), events)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Admitted+stats.Rejected != 12 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestFacadeDefaultCatalogAndCoords(t *testing.T) {
	cat := DefaultCatalog()
	if len(cat) != 30 {
		t.Fatalf("catalog = %d", len(cat))
	}
	net, err := NewNetworkBuilder(2, cat).
		AddLink(0, 1, 1).
		SetServer(1, 1).
		SetCoords([]Point{{X: 0, Y: 0}, {X: 3, Y: 4}}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	coords := net.Coords()
	if len(coords) != 2 || coords[1].X != 3 {
		t.Fatalf("coords = %v", coords)
	}
}

func TestFacadeRenderDOT(t *testing.T) {
	net, names, err := PalmettoNetwork(DefaultGenConfig(45, 2), 63)
	if err != nil {
		t.Fatal(err)
	}
	task, err := GenerateTask(net, 64, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SolveTwoStage(net, task, Options{})
	if err != nil {
		t.Fatal(err)
	}
	dot := string(RenderDOT(net, res.Embedding, names, "facade"))
	if !strings.HasPrefix(dot, "graph sft {") {
		t.Fatalf("not DOT: %.30s", dot)
	}
	if !strings.Contains(dot, "Columbia") || !strings.Contains(dot, `label="facade"`) {
		t.Error("labels missing from DOT output")
	}
}
