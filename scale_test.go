package sftree

import (
	"testing"
	"time"
)

// TestScale500Nodes exercises the full pipeline well beyond the
// paper's largest network (|V|=250): a 500-node ER instance with 50
// destinations and a 10-function chain must solve, validate, and
// replay within a sane wall-time budget. Mehlhorn's Steiner routine is
// also exercised at this scale, where its E log V advantage matters.
func TestScale500Nodes(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test is slow")
	}
	start := time.Now()
	net, err := GenerateNetwork(DefaultGenConfig(500, 2), 71)
	if err != nil {
		t.Fatal(err)
	}
	task, err := GenerateTask(net, 72, 50, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []struct {
		name string
		opts Options
	}{
		{"kmb", Options{}},
		{"mehlhorn", Options{Steiner: SteinerMehlhorn}},
	} {
		res, err := SolveTwoStage(net, task, algo.opts)
		if err != nil {
			t.Fatalf("%s: %v", algo.name, err)
		}
		if err := net.Validate(res.Embedding); err != nil {
			t.Fatalf("%s: invalid: %v", algo.name, err)
		}
		rep, err := Replay(net, res.Embedding)
		if err != nil {
			t.Fatalf("%s: replay: %v", algo.name, err)
		}
		if rep.Delivered != 50 {
			t.Fatalf("%s: delivered %d/50", algo.name, rep.Delivered)
		}
	}
	if elapsed := time.Since(start); elapsed > 2*time.Minute {
		t.Errorf("500-node pipeline took %v; expected well under two minutes", elapsed)
	}
}
