package sftree

import (
	"encoding/json"
	"math"
	"testing"
)

// buildExample constructs the DESIGN.md worked example through the
// public builder API.
func buildExample(t *testing.T) (*Network, Task) {
	t.Helper()
	catalog := []VNF{
		{ID: 0, Name: "f1", Demand: 1},
		{ID: 1, Name: "f2", Demand: 1},
	}
	net, err := NewNetworkBuilder(6, catalog).
		AddLink(0, 1, 1).
		AddLink(1, 2, 1).
		AddLink(2, 3, 1).
		AddLink(1, 4, 2).
		AddLink(4, 5, 1).
		AddLink(2, 4, 2.5).
		SetServer(1, 5).SetServer(2, 5).SetServer(4, 5).
		SetSetupCost(0, 1, 1).SetSetupCost(0, 2, 1).SetSetupCost(0, 4, 1).
		SetSetupCost(1, 1, 5).SetSetupCost(1, 2, 5).SetSetupCost(1, 4, 5).
		Deploy(0, 1).Deploy(1, 2).Deploy(1, 4).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return net, Task{Source: 0, Destinations: []int{3, 5}, Chain: SFC{0, 1}}
}

func TestPublicTwoStage(t *testing.T) {
	net, task := buildExample(t)
	res, err := SolveTwoStage(net, task, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.FinalCost-6.0) > 1e-9 {
		t.Errorf("final cost = %v, want 6.0", res.FinalCost)
	}
	rep, err := Replay(net, res.Embedding)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.TotalCost-res.FinalCost) > 1e-9 {
		t.Errorf("replay %v != solver %v", rep.TotalCost, res.FinalCost)
	}
}

func TestPublicBaselinesAndOrdering(t *testing.T) {
	net, err := GenerateNetwork(DefaultGenConfig(60, 2), 5)
	if err != nil {
		t.Fatal(err)
	}
	task, err := GenerateTask(net, 6, 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	msa, err := SolveTwoStage(net, task, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sca, err := SolveSCA(net, task, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rsa, err := SolveRSA(net, task, 7, Options{})
	if err != nil {
		t.Fatal(err)
	}
	bks, err := SolveBestKnown(net, task)
	if err != nil {
		t.Fatal(err)
	}
	if bks.FinalCost > msa.FinalCost+1e-9 {
		t.Errorf("best-known %v worse than MSA %v", bks.FinalCost, msa.FinalCost)
	}
	for name, res := range map[string]*Result{"msa": msa, "sca": sca, "rsa": rsa, "bks": bks} {
		if err := net.Validate(res.Embedding); err != nil {
			t.Errorf("%s: invalid embedding: %v", name, err)
		}
	}
}

func TestPublicILPOnTinyInstance(t *testing.T) {
	catalog := []VNF{{ID: 0, Name: "f0", Demand: 1}}
	net, err := NewNetworkBuilder(3, catalog).
		AddLink(0, 1, 1).
		AddLink(1, 2, 1).
		SetServer(1, 1).SetServer(2, 1).
		SetSetupCost(0, 1, 1).SetSetupCost(0, 2, 1).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	task := Task{Source: 0, Destinations: []int{2}, Chain: SFC{0}}
	res, err := SolveILP(net, task, ILPOptions{WarmStart: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Proven {
		t.Errorf("tiny instance not proven optimal")
	}
	if math.Abs(res.Objective-3) > 1e-6 {
		t.Errorf("objective = %v, want 3", res.Objective)
	}
	heur, err := SolveTwoStage(net, task, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if heur.FinalCost < res.Objective-1e-6 {
		t.Errorf("heuristic %v beat proven optimum %v", heur.FinalCost, res.Objective)
	}
}

func TestPublicPalmetto(t *testing.T) {
	net, names, err := PalmettoNetwork(DefaultGenConfig(45, 2), 3)
	if err != nil {
		t.Fatal(err)
	}
	if net.NumNodes() != 45 || len(names) != 45 {
		t.Fatalf("shape: %d nodes, %d names", net.NumNodes(), len(names))
	}
	task, err := GenerateTask(net, 4, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SolveTwoStage(net, task, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Validate(res.Embedding); err != nil {
		t.Errorf("invalid: %v", err)
	}
}

func TestBuilderErrorsSurfaceAtBuild(t *testing.T) {
	if _, err := NewNetworkBuilder(2, nil).AddLink(0, 9, 1).Build(); err == nil {
		t.Error("bad link accepted")
	}
	if _, err := NewNetworkBuilder(2, nil).SetServer(5, 1).Build(); err == nil {
		t.Error("bad server accepted")
	}
	if _, err := NewNetworkBuilder(2, nil).AddLink(0, 1, 1).Deploy(0, 1).Build(); err == nil {
		t.Error("deploy on switch accepted")
	}
}

func TestInstanceDocJSONThroughFacade(t *testing.T) {
	net, task := buildExample(t)
	blob, err := json.Marshal(InstanceDoc{Network: net, Task: task})
	if err != nil {
		t.Fatal(err)
	}
	var doc InstanceDoc
	if err := json.Unmarshal(blob, &doc); err != nil {
		t.Fatal(err)
	}
	res, err := SolveTwoStage(doc.Network, doc.Task, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.FinalCost-6.0) > 1e-9 {
		t.Errorf("round-tripped instance solves to %v, want 6.0", res.FinalCost)
	}
}
