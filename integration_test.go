package sftree

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// TestIntegrationFullPipeline drives the whole system end to end on
// one PalmettoNet instance: generate, serialize, deserialize, solve
// with every algorithm, cross-check all three cost oracles, render,
// and tear through the dynamic manager.
func TestIntegrationFullPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test is slow")
	}
	net, names, err := PalmettoNetwork(DefaultGenConfig(45, 2), 101)
	if err != nil {
		t.Fatal(err)
	}
	task, err := GenerateTask(net, 102, 8, 5)
	if err != nil {
		t.Fatal(err)
	}

	// JSON round trip first: everything below runs on the decoded copy.
	blob, err := json.Marshal(InstanceDoc{Network: net, Task: task})
	if err != nil {
		t.Fatal(err)
	}
	var doc InstanceDoc
	if err := json.Unmarshal(blob, &doc); err != nil {
		t.Fatal(err)
	}
	net, task = doc.Network, doc.Task

	type namedResult struct {
		name string
		res  *Result
	}
	var results []namedResult

	msa, err := SolveTwoStage(net, task, Options{})
	if err != nil {
		t.Fatal(err)
	}
	results = append(results, namedResult{"two-stage", msa})

	if r, err := SolveStageOne(net, task, Options{}); err == nil {
		results = append(results, namedResult{"stage-one", r})
		if msa.FinalCost > r.FinalCost+1e-9 {
			t.Errorf("stage two worsened stage one: %v > %v", msa.FinalCost, r.FinalCost)
		}
	}
	if r, err := SolveSCA(net, task, Options{}); err == nil {
		results = append(results, namedResult{"sca", r})
	}
	if r, err := SolveRSA(net, task, 7, Options{}); err == nil {
		results = append(results, namedResult{"rsa", r})
	}
	if r, err := SolveOneNode(net, task, Options{}); err == nil {
		results = append(results, namedResult{"one-node", r})
	}
	bks, err := SolveBestKnown(net, task)
	if err != nil {
		t.Fatal(err)
	}
	results = append(results, namedResult{"best-known", bks})

	for _, nr := range results {
		if err := net.Validate(nr.res.Embedding); err != nil {
			t.Fatalf("%s: invalid embedding: %v", nr.name, err)
		}
		bd := net.Cost(nr.res.Embedding)
		if math.Abs(bd.Total-nr.res.FinalCost) > 1e-6 {
			t.Fatalf("%s: oracle %v != reported %v", nr.name, bd.Total, nr.res.FinalCost)
		}
		rep, err := Replay(net, nr.res.Embedding)
		if err != nil {
			t.Fatalf("%s: replay: %v", nr.name, err)
		}
		if math.Abs(rep.TotalCost-bd.Total) > 1e-6 {
			t.Fatalf("%s: replay %v != oracle %v", nr.name, rep.TotalCost, bd.Total)
		}
		if nr.res.FinalCost < bks.FinalCost-1e-6 {
			t.Fatalf("%s (%v) beat the best-known reference (%v)",
				nr.name, nr.res.FinalCost, bks.FinalCost)
		}
	}

	// Rendering must produce well-formed SVG mentioning real cities.
	svg, err := RenderSVG(net, msa.Embedding, names, "integration")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(svg), "Columbia") {
		t.Error("svg lost the city labels")
	}

	// Dynamic manager: admit the same task twice, release both, and
	// verify the network state is untouched at the end.
	mgr := NewSessionManager(net.Clone(), Options{})
	s1, err := mgr.Admit(task)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := mgr.Admit(task)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Result.FinalCost > s1.Result.FinalCost+1e-9 {
		t.Errorf("second admission (%v) costlier than first (%v) despite reuse",
			s2.Result.FinalCost, s1.Result.FinalCost)
	}
	if err := mgr.Release(s1.ID); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Release(s2.ID); err != nil {
		t.Fatal(err)
	}
	if mgr.LiveInstances() != 0 {
		t.Errorf("%d instances leaked", mgr.LiveInstances())
	}
}

// TestIntegrationILPAgreesWithBestKnownOnTinyInstance pins the exact
// path against the reference path on an instance small enough for both.
func TestIntegrationILPAgreesWithBestKnownOnTinyInstance(t *testing.T) {
	catalog := []VNF{{ID: 0, Name: "a", Demand: 1}, {ID: 1, Name: "b", Demand: 1}}
	net, err := NewNetworkBuilder(5, catalog).
		AddLink(0, 1, 2).AddLink(1, 2, 1).AddLink(2, 3, 2).AddLink(1, 4, 3).AddLink(4, 3, 1).
		SetServer(1, 2).SetServer(2, 2).SetServer(4, 2).
		SetSetupCost(0, 1, 1).SetSetupCost(0, 2, 2).SetSetupCost(0, 4, 1).
		SetSetupCost(1, 1, 2).SetSetupCost(1, 2, 1).SetSetupCost(1, 4, 1).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	task := Task{Source: 0, Destinations: []int{3}, Chain: SFC{0, 1}}
	ilpRes, err := SolveILP(net, task, ILPOptions{WarmStart: true})
	if err != nil {
		t.Fatal(err)
	}
	if !ilpRes.Proven {
		t.Fatal("tiny instance not proven")
	}
	bks, err := SolveBestKnown(net, task)
	if err != nil {
		t.Fatal(err)
	}
	// Single destination + sufficient capacity: stage one is optimal
	// (Theorem 2) and the exact-Steiner reference must hit the ILP
	// optimum exactly.
	if math.Abs(bks.FinalCost-ilpRes.Objective) > 1e-6 {
		t.Errorf("best-known %v != ILP optimum %v", bks.FinalCost, ilpRes.Objective)
	}
}
