package sftree

import (
	"math/rand"

	"sftree/internal/dynamic"
	"sftree/internal/trace"
)

// Dynamic session management: admit and release many multicast tasks
// over one shared network, with cross-session instance reuse and
// reference-counted teardown (see internal/dynamic).
type (
	// SessionManager owns a network's dynamic deployment state.
	SessionManager = dynamic.Manager
	// Session is one live admitted task.
	Session = dynamic.Session
	// SessionID identifies an admitted session.
	SessionID = dynamic.SessionID
	// SessionStats snapshots a manager's counters.
	SessionStats = dynamic.Stats
	// TraceStats aggregates a workload-trace replay.
	TraceStats = dynamic.TraceStats

	// TraceConfig controls workload-trace generation.
	TraceConfig = trace.Config
	// TraceEvent is one arrival or departure.
	TraceEvent = trace.Event
	// TraceSummary describes a generated trace.
	TraceSummary = trace.Summary
)

// Trace event kinds.
const (
	TraceArrival   = trace.Arrival
	TraceDeparture = trace.Departure
)

// ErrRejected is returned by SessionManager.Admit when the network
// cannot host a task.
var ErrRejected = dynamic.ErrRejected

// NewSessionManager wraps a network for dynamic multicast session
// management. The manager owns the network's deployment state.
func NewSessionManager(net *Network, opts Options) *SessionManager {
	return dynamic.NewManager(net, opts)
}

// DefaultTraceConfig returns a CDN-flavoured workload configuration.
func DefaultTraceConfig() TraceConfig { return trace.DefaultConfig() }

// GenerateTrace samples a session arrival/departure timeline on the
// network, deterministically from the seed.
func GenerateTrace(net *Network, cfg TraceConfig, seed int64) ([]TraceEvent, error) {
	return trace.Generate(net, cfg, rand.New(rand.NewSource(seed)))
}

// SummarizeTrace computes workload statistics for a timeline.
func SummarizeTrace(events []TraceEvent) TraceSummary { return trace.Summarize(events) }

// RunTrace replays a timeline through the manager.
func RunTrace(m *SessionManager, events []TraceEvent) (*TraceStats, error) {
	return dynamic.RunTrace(m, events)
}
