#!/bin/sh
# tools.sh — repository hygiene gate.
#
# Runs the static checks, the race-enabled test suite, and the
# observability smoke test. CI and pre-commit should both call this;
# it exits non-zero on the first failure.
#
#   ./tools.sh          # vet + gofmt + race tests + chaos + recover + conformance + bench + obs + queue + load
#   ./tools.sh quick    # vet + gofmt only (skip the race run and smoke)
#   ./tools.sh queue    # admission-queue gate only: the bounded
#                       # fixed-seed equivalence battery under -race
#                       # (batched admissions bit-identical to
#                       # serialized same-order admits), plus the
#                       # queue stress test mixing enqueue, release,
#                       # Rebase and WAL checkpoints
#   ./tools.sh load     # load gate only: fixed-seed open-loop sftload
#                       # run against an in-process sftserve, asserting
#                       # non-zero admissions, zero dropped measurements
#                       # at unsaturated points, live cache hit-rate
#                       # floats on /metrics, a request-ID-stamped trace
#                       # on /debug/traces, and no >10% sustained-adm/s
#                       # regression at BENCH_load.json's top rate point
#   ./tools.sh obs      # obs smoke only: build cmds, boot sftserve,
#                       # assert /healthz /readyz /metrics respond
#   ./tools.sh chaos    # resilience gate only: replay a seeded fault
#                       # schedule, assert survivors re-validate
#   ./tools.sh recover  # durability gate only: a seeded op script runs
#                       # once untouched and once with SIGKILL-equivalent
#                       # crashes (one inside the commit critical
#                       # section), each followed by a WAL restore; fails
#                       # on any lost committed session, oracle
#                       # divergence or conformance violation. Also runs
#                       # the crash-harness tests under -race.
#   ./tools.sh conformance [seed]
#                       # differential gate only: bounded stratified
#                       # corpus under -race, cross-checking every
#                       # solver through the shared validator. The seed
#                       # (default 1) makes failures reproduce
#                       # byte-for-byte: rerun with the printed seed.
#   ./tools.sh bench    # perf gate only: re-measure the gate benchmarks
#                       # against the checked-in BENCH_core.json and
#                       # fail on >5% ns/op or >10% allocs/op
#                       # regressions. Regenerate the baseline after an
#                       # intentional perf change with
#                       #   go run ./cmd/sftbench -json BENCH_core.json

set -eu

cd "$(dirname "$0")"

# obs_smoke builds every command, boots sftserve on an ephemeral port
# with -debug, and asserts the health, readiness and metrics endpoints
# answer. Uses only the Go toolchain — no curl dependency.
obs_smoke() {
	echo "==> go build ./cmd/..."
	tmpdir=$(mktemp -d)
	trap 'rm -rf "$tmpdir"; [ -n "${srv_pid:-}" ] && kill "$srv_pid" 2>/dev/null || true' EXIT
	go build -o "$tmpdir" ./cmd/...

	echo "==> obs smoke: sftserve -debug on 127.0.0.1:0"
	"$tmpdir/sftserve" -listen 127.0.0.1:0 -nodes 12 -debug >"$tmpdir/out.log" 2>&1 &
	srv_pid=$!

	addr=""
	for _ in $(seq 1 50); do
		addr=$(sed -n 's/.*msg="sftserve listening" addr=\([0-9.:]*\).*/\1/p' "$tmpdir/out.log" | head -n1)
		[ -n "$addr" ] && break
		kill -0 "$srv_pid" 2>/dev/null || { echo "sftserve exited early:" >&2; cat "$tmpdir/out.log" >&2; exit 1; }
		sleep 0.1
	done
	if [ -z "$addr" ]; then
		echo "sftserve never reported a listen address:" >&2
		cat "$tmpdir/out.log" >&2
		exit 1
	fi

	for path in /healthz /readyz /metrics /debug/vars; do
		"$tmpdir/sftcheck" -url "http://$addr$path" || {
			echo "obs smoke: GET $path failed" >&2
			cat "$tmpdir/out.log" >&2
			exit 1
		}
		echo "    GET $path ok"
	done

	kill "$srv_pid"
	wait "$srv_pid" 2>/dev/null || true
	srv_pid=""
	echo "OK (obs smoke)"
}

# chaos_gate replays the seeded acceptance schedule (20 faults over 30
# live sessions) through the repair path. sftchaos exits non-zero when
# any non-degraded session fails validation after a fault, or when
# repairs never reuse a surviving instance.
chaos_gate() {
	echo "==> chaos gate: sftchaos -nodes 40 -sessions 30 -faults 20 -seed 7"
	go run ./cmd/sftchaos -nodes 40 -sessions 30 -faults 20 -seed 7
	echo "OK (chaos gate)"
}

# conformance_gate runs the differential harness on a bounded corpus
# under the race detector: every instance solved by brute force, ILP,
# the two-stage algorithm and the baselines, all cross-checked through
# internal/conformance. Deterministic: the same seed reproduces the
# same corpus, solver calls, and fault schedules.
conformance_gate() {
	seed="${1:-1}"
	echo "==> conformance gate: sftconform -n 45 -seed $seed (race)"
	go run -race ./cmd/sftconform -n 45 -seed "$seed" -q
	echo "OK (conformance gate, seed $seed)"
}

# recover_gate is the crash-injection durability gate: the same seeded
# script of admissions, releases and faults runs as a never-crashed
# oracle and as a crash run with restores from the write-ahead log —
# a torn crash (partial frame at the active tail) immediately
# re-crashed on the next op (the double-crash window: the tear must
# not survive the first recovery on disk), plus one mid-commit
# (between WAL append and in-memory apply). The restored run must
# keep every committed session, match the oracle bit-for-bit in
# sessions, refcounts and accounting, and pass CheckLive/Recount. The
# race-enabled harness tests cover the same paths with the in-tree
# assertions.
recover_gate() {
	echo "==> recover gate: sftchaos -crash 2 -nodes 30 -sessions 12 -ops 30 -faults 5 -seed 7"
	go run ./cmd/sftchaos -crash 2 -nodes 30 -sessions 12 -ops 30 -faults 5 -seed 7
	echo "==> recover gate: crash-harness tests (race)"
	go test -race -count=1 -run 'TestRunCrash' ./internal/sim
	echo "OK (recover gate)"
}

# queue_gate proves the batched admission queue keeps the serialized
# semantics: the equivalence battery replays fixed-seed arrival
# scripts through the queue and through serialized AdmitCtx calls in
# the queue's recorded dispatch order and requires bit-identical
# sessions, refcounts and accounting; the stress test races enqueues
# against releases, Rebase fault flaps and WAL checkpoints; the fuzz
# seeds pin the never-lose-a-task contract. All under -race.
queue_gate() {
	echo "==> queue gate: equivalence battery + stress + fuzz seeds (race)"
	go test -race -count=1 -run 'TestQueueEquivalenceBattery|TestQueueStress|FuzzQueueSchedule|TestAdmitBatch' ./internal/queue ./internal/dynamic
	echo "OK (queue gate)"
}

# load_gate drives the open-loop load harness for a short fixed-seed
# window with one fault flap and the -check assertions on: sessions
# must be admitted, no measurement may be dropped at an unsaturated
# point, /metrics must show non-zero metric-cache and APSP-cache hit
# rates, and /debug/traces must hold an admission trace stamped with
# its request ID. A second run re-measures the checked-in
# BENCH_load.json's top rate point (same network, seed and solver
# parallelism as the baseline) and fails if sustained adm/s dropped
# more than 10% — regenerate the baseline after an intentional change
# with:
#   go run ./cmd/sftload -parallelism 4 -out BENCH_load.json
# The third run is the admission-queue speedup gate: a queued server
# at a shared-signature mix (one fixed chain, the shape the queue's
# signature coalescing batches) must sustain ≥1.5x the baseline's top
# unsaturated adm/s without itself saturating.
load_gate() {
	echo "==> load gate: sftload -rates 25 -duration 3s -faults 2 -check (queued)"
	go run ./cmd/sftload -nodes 30 -seed 5 -rates 25 -duration 3s -warmup 1s -hold 1s -faults 2 -queue-depth 256 -check
	echo "==> load throughput gate: top BENCH_load.json rate point, -10% tolerance"
	go run ./cmd/sftload -nodes 50 -seed 1 -rates 512 -duration 5s -warmup 1s -hold 2s -faults 2 -parallelism 4 -queue-depth 256 -gate BENCH_load.json
	echo "==> queue speedup gate: shared-signature mix, 1.5x baseline floor"
	go run ./cmd/sftload -nodes 50 -seed 1 -mix '6x4!' -rates 768 -duration 4s -warmup 1s -hold 2s -queue-depth 1024 -gate BENCH_load.json -gate-speedup 1.5
	echo "OK (load gate)"
}

# bench_gate re-measures the gate benchmarks (best of three each)
# against the checked-in baseline snapshot and fails on a >5% ns/op or
# >10% allocs/op regression. Single-sample best-of-three is a smoke
# gate, not benchstat — see EXPERIMENTS.md for the careful protocol.
bench_gate() {
	echo "==> perf gate: sftbench -gate BENCH_core.json"
	go run ./cmd/sftbench -gate BENCH_core.json
	echo "OK (perf gate)"
}

if [ "${1:-}" = "conformance" ]; then
	conformance_gate "${2:-1}"
	exit 0
fi

if [ "${1:-}" = "bench" ]; then
	bench_gate
	exit 0
fi

if [ "${1:-}" = "load" ]; then
	load_gate
	exit 0
fi

if [ "${1:-}" = "queue" ]; then
	queue_gate
	exit 0
fi

if [ "${1:-}" = "obs" ]; then
	obs_smoke
	exit 0
fi

if [ "${1:-}" = "chaos" ]; then
	chaos_gate
	exit 0
fi

if [ "${1:-}" = "recover" ]; then
	recover_gate
	exit 0
fi

echo "==> go vet ./..."
go vet ./...

echo "==> gofmt -l ."
fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
	echo "gofmt: files need formatting:" >&2
	echo "$fmt" >&2
	exit 1
fi

if [ "${1:-}" = "quick" ]; then
	echo "OK (quick)"
	exit 0
fi

echo "==> go test -race -timeout 10m ./..."
go test -race -timeout 10m ./...

chaos_gate

recover_gate

conformance_gate "${CONFORM_SEED:-1}"

bench_gate

obs_smoke

queue_gate

load_gate

echo "OK"
