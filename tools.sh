#!/bin/sh
# tools.sh — repository hygiene gate.
#
# Runs the static checks, the race-enabled test suite, and the
# observability smoke test. CI and pre-commit should both call this;
# it exits non-zero on the first failure.
#
#   ./tools.sh          # vet + gofmt + race tests + obs smoke
#   ./tools.sh quick    # vet + gofmt only (skip the race run and smoke)
#   ./tools.sh obs      # obs smoke only: build cmds, boot sftserve,
#                       # assert /healthz /readyz /metrics respond

set -eu

cd "$(dirname "$0")"

# obs_smoke builds every command, boots sftserve on an ephemeral port
# with -debug, and asserts the health, readiness and metrics endpoints
# answer. Uses only the Go toolchain — no curl dependency.
obs_smoke() {
	echo "==> go build ./cmd/..."
	tmpdir=$(mktemp -d)
	trap 'rm -rf "$tmpdir"; [ -n "${srv_pid:-}" ] && kill "$srv_pid" 2>/dev/null || true' EXIT
	go build -o "$tmpdir" ./cmd/...

	echo "==> obs smoke: sftserve -debug on 127.0.0.1:0"
	"$tmpdir/sftserve" -listen 127.0.0.1:0 -nodes 12 -debug >"$tmpdir/out.log" 2>&1 &
	srv_pid=$!

	addr=""
	for _ in $(seq 1 50); do
		addr=$(sed -n 's/.*msg="sftserve listening" addr=\([0-9.:]*\).*/\1/p' "$tmpdir/out.log" | head -n1)
		[ -n "$addr" ] && break
		kill -0 "$srv_pid" 2>/dev/null || { echo "sftserve exited early:" >&2; cat "$tmpdir/out.log" >&2; exit 1; }
		sleep 0.1
	done
	if [ -z "$addr" ]; then
		echo "sftserve never reported a listen address:" >&2
		cat "$tmpdir/out.log" >&2
		exit 1
	fi

	for path in /healthz /readyz /metrics /debug/vars; do
		"$tmpdir/sftcheck" -url "http://$addr$path" || {
			echo "obs smoke: GET $path failed" >&2
			cat "$tmpdir/out.log" >&2
			exit 1
		}
		echo "    GET $path ok"
	done

	kill "$srv_pid"
	wait "$srv_pid" 2>/dev/null || true
	srv_pid=""
	echo "OK (obs smoke)"
}

if [ "${1:-}" = "obs" ]; then
	obs_smoke
	exit 0
fi

echo "==> go vet ./..."
go vet ./...

echo "==> gofmt -l ."
fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
	echo "gofmt: files need formatting:" >&2
	echo "$fmt" >&2
	exit 1
fi

if [ "${1:-}" = "quick" ]; then
	echo "OK (quick)"
	exit 0
fi

echo "==> go test -race ./..."
go test -race ./...

obs_smoke

echo "OK"
