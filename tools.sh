#!/bin/sh
# tools.sh — repository hygiene gate.
#
# Runs the static checks and the race-enabled test suite. CI and
# pre-commit should both call this; it exits non-zero on the first
# failure.
#
#   ./tools.sh          # vet + gofmt + race tests
#   ./tools.sh quick    # vet + gofmt only (skip the race run)

set -eu

cd "$(dirname "$0")"

echo "==> go vet ./..."
go vet ./...

echo "==> gofmt -l ."
fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
	echo "gofmt: files need formatting:" >&2
	echo "$fmt" >&2
	exit 1
fi

if [ "${1:-}" = "quick" ]; then
	echo "OK (quick)"
	exit 0
fi

echo "==> go test -race ./..."
go test -race ./...

echo "OK"
