package sftree

import (
	"testing"
)

func TestSolveOneNodeComparesToTwoStage(t *testing.T) {
	net, err := GenerateNetwork(DefaultGenConfig(50, 2), 31)
	if err != nil {
		t.Fatal(err)
	}
	task, err := GenerateTask(net, 32, 6, 4)
	if err != nil {
		t.Fatal(err)
	}
	msa, err := SolveTwoStage(net, task, Options{})
	if err != nil {
		t.Fatal(err)
	}
	one, err := SolveOneNode(net, task, Options{})
	if err != nil {
		t.Skip("no single node can host this chain")
	}
	if err := net.Validate(one.Embedding); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	// MSA searches a superset of placements including collapsed ones,
	// so stage-one MSA <= stage-one OneNode; after the shared stage two
	// the relation typically persists but is not guaranteed — assert
	// the stage-one relation.
	if msa.Stage1Cost > one.Stage1Cost+1e-6 {
		t.Errorf("MSA stage one %v worse than collapsed placement %v",
			msa.Stage1Cost, one.Stage1Cost)
	}
}

func TestSolveForestThroughFacade(t *testing.T) {
	net, err := GenerateNetwork(DefaultGenConfig(40, 2), 33)
	if err != nil {
		t.Fatal(err)
	}
	var tasks []Task
	for i := int64(0); i < 3; i++ {
		task, err := GenerateTask(net, 40+i, 3, 3)
		if err != nil {
			t.Fatal(err)
		}
		tasks = append(tasks, task)
	}
	res, err := SolveForest(net, tasks, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trees) != 3 || res.TotalCost <= 0 {
		t.Fatalf("forest = %+v", res)
	}
	var isolated float64
	for _, task := range tasks {
		r, err := SolveTwoStage(net, task, Options{})
		if err != nil {
			t.Fatal(err)
		}
		isolated += r.FinalCost
	}
	if res.TotalCost > isolated+1e-6 {
		t.Errorf("forest %v more expensive than isolated %v", res.TotalCost, isolated)
	}
}

func TestCapacityAwareThroughFacade(t *testing.T) {
	catalog := []VNF{{ID: 0, Name: "f0", Demand: 1}, {ID: 1, Name: "f1", Demand: 1}}
	net, err := NewNetworkBuilder(5, catalog).
		AddLink(0, 1, 1).AddLink(1, 2, 1).AddLink(1, 3, 2).AddLink(3, 2, 2).AddLink(2, 4, 1).
		SetServer(1, 2).SetServer(2, 2).SetServer(3, 2).
		SetSetupCost(0, 1, 50).SetSetupCost(0, 2, 50).SetSetupCost(0, 3, 50).
		SetSetupCost(1, 1, 50).SetSetupCost(1, 2, 50).SetSetupCost(1, 3, 50).
		Deploy(0, 2).Deploy(1, 1).
		SetLinkCapacity(1, 2, 1).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	task := Task{Source: 0, Destinations: []int{4}, Chain: SFC{0, 1}}
	res, err := SolveCapacityAware(net, task, Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v := net.LinkViolations(res.Embedding); len(v) != 0 {
		t.Errorf("violations remain: %v", v)
	}
}
