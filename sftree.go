// Package sftree is a from-scratch Go implementation of "Optimal
// Service Function Tree Embedding for NFV Enabled Multicast"
// (Ren, Guo, Tang, Lin, Qin — IEEE ICDCS 2018).
//
// Given a target network with VNF-capable server nodes, link costs,
// per-node capacities and optional pre-deployed VNF instances, plus a
// multicast task (source, destinations, service function chain), the
// package embeds a service function tree (SFT) that delivers the flow
// to every destination through the chain in order while minimizing the
// total traffic delivery cost (VNF setup cost + per-stage link cost
// with multicast deduplication).
//
// The primary entry point is the paper's two-stage approximation
// algorithm:
//
//	net, _ := sftree.GenerateNetwork(sftree.DefaultGenConfig(50, 2), 1)
//	task, _ := sftree.GenerateTask(net, 1, 5, 3)
//	res, _ := sftree.SolveTwoStage(net, task, sftree.Options{})
//	fmt.Println(res.FinalCost)
//
// Baselines (SolveSCA, SolveRSA), an exact ILP path backed by a
// built-in simplex/branch-and-bound stack (SolveILP), and a
// best-known-solution reference (SolveBestKnown) are provided for
// benchmarking, together with a per-figure experiment harness under
// cmd/sftbench.
package sftree

import (
	"fmt"
	"math/rand"
	"time"

	"sftree/internal/baseline"
	"sftree/internal/core"
	"sftree/internal/exact"
	"sftree/internal/graph"
	"sftree/internal/ilp"
	"sftree/internal/netgen"
	"sftree/internal/nfv"
	"sftree/internal/sftilp"
	"sftree/internal/sim"
	"sftree/internal/topology"
	"sftree/internal/viz"
)

// Core domain types, re-exported from the internal model so that all
// solvers and the public API share one representation.
type (
	// Network is the NFV-enabled target network.
	Network = nfv.Network
	// Task is a multicast task (source, destinations, chain).
	Task = nfv.Task
	// SFC is a service function chain: VNF IDs in order.
	SFC = nfv.SFC
	// VNF is a catalog entry.
	VNF = nfv.VNF
	// Point is a 2-D node coordinate.
	Point = nfv.Point
	// Embedding is a solver result: instances plus per-destination walks.
	Embedding = nfv.Embedding
	// Instance is one placed VNF instance.
	Instance = nfv.Instance
	// Segment is one stage of a walk.
	Segment = nfv.Segment
	// Walk is a destination's full route.
	Walk = nfv.Walk
	// CostBreakdown splits a cost into setup and link parts.
	CostBreakdown = nfv.CostBreakdown
	// InstanceDoc is the JSON wire form of (network, task).
	InstanceDoc = nfv.InstanceDoc

	// Options tunes the two-stage algorithm and the baselines' shared
	// stage two.
	Options = core.Options
	// Result is a heuristic solver outcome.
	Result = core.Result

	// GenConfig controls random instance generation (paper Table I).
	GenConfig = netgen.Config

	// SimReport is the flow-level replay outcome.
	SimReport = sim.Report
)

// Steiner routine selectors for Options.Steiner.
const (
	SteinerKMB      = core.SteinerKMB
	SteinerTM       = core.SteinerTM
	SteinerMehlhorn = core.SteinerMehlhorn
)

// DefaultCatalog returns the built-in 30-entry VNF catalog.
func DefaultCatalog() []VNF { return nfv.DefaultCatalog() }

// DefaultGenConfig returns the paper's Table I generator settings for
// a network of the given size and setup-cost multiplier mu.
func DefaultGenConfig(nodes int, mu float64) GenConfig {
	return netgen.PaperConfig(nodes, mu)
}

// GenerateNetwork samples a connected ER network with full NFV
// metadata, deterministically from the seed.
func GenerateNetwork(cfg GenConfig, seed int64) (*Network, error) {
	return netgen.Generate(cfg, rand.New(rand.NewSource(seed)))
}

// GenerateTask samples a multicast task on the network.
func GenerateTask(net *Network, seed int64, numDest, chainLen int) (Task, error) {
	return netgen.GenerateTask(net, rand.New(rand.NewSource(seed)), numDest, chainLen)
}

// PalmettoNetwork materializes the reconstructed 45-node PalmettoNet
// backbone with the given generator settings (capacities, setup costs,
// deployments). Node coordinates and city names are included.
func PalmettoNetwork(cfg GenConfig, seed int64) (*Network, []string, error) {
	g, coords, names := topology.Palmetto()
	net, err := netgen.Materialize(g, coords, cfg, rand.New(rand.NewSource(seed)))
	if err != nil {
		return nil, nil, err
	}
	return net, names, nil
}

// SolveTwoStage runs the paper's two-stage algorithm (MSA + OPA). The
// returned embedding always passes Validate.
func SolveTwoStage(net *Network, task Task, opts Options) (*Result, error) {
	return core.Solve(net, task, opts)
}

// SolveStageOne runs only stage one (Algorithm 2), for ablations.
func SolveStageOne(net *Network, task Task, opts Options) (*Result, error) {
	return core.SolveStageOne(net, task, opts)
}

// SolveSCA runs the minimum-set-cover baseline with the shared stage
// two.
func SolveSCA(net *Network, task Task, opts Options) (*Result, error) {
	return baseline.SCA(net, task, opts)
}

// SolveRSA runs the random-selection baseline with the shared stage
// two, deterministically from the seed.
func SolveRSA(net *Network, task Task, seed int64, opts Options) (*Result, error) {
	return baseline.RSA(net, task, rand.New(rand.NewSource(seed)), opts)
}

// ILPOptions bounds the exact solver.
type ILPOptions struct {
	// MaxNodes caps branch-and-bound nodes (0: solver default).
	MaxNodes int
	// TimeLimit caps wall time (0: no limit). On expiry the solver
	// returns its best incumbent and bound instead of an optimum.
	TimeLimit time.Duration
	// WarmStart, when true, first runs the two-stage heuristic and uses
	// its cost as the initial incumbent.
	WarmStart bool
}

// ILPResult is the exact solver outcome.
type ILPResult struct {
	// Embedding is the best found integral solution (nil when none).
	Embedding *Embedding
	// Objective is its cost.
	Objective float64
	// Bound is the proven lower bound on the optimum.
	Bound float64
	// Proven reports whether Objective == optimum was proven.
	Proven bool
	// Nodes counts explored branch-and-bound nodes.
	Nodes int
}

// SolveILP solves the instance exactly with the built-in ILP stack
// (formulation 1a-1f over a two-phase simplex with branch and bound).
// Practical only for small instances; see DESIGN.md.
func SolveILP(net *Network, task Task, opts ILPOptions) (*ILPResult, error) {
	iopts := ilp.Options{MaxNodes: opts.MaxNodes, TimeLimit: opts.TimeLimit}
	if opts.WarmStart {
		if h, err := core.Solve(net, task, core.Options{}); err == nil {
			iopts.Incumbent = h.FinalCost + 1e-6
			iopts.HasIncumbent = true
		}
	}
	res, err := sftilp.SolveExact(net, task, iopts)
	if err != nil {
		return nil, err
	}
	out := &ILPResult{
		Objective: res.Objective,
		Bound:     res.Bound,
		Proven:    res.Status == ilp.Optimal,
		Nodes:     res.Nodes,
	}
	out.Embedding = res.Embedding
	if res.Status == ilp.Infeasible {
		return nil, fmt.Errorf("sftree: %w", core.ErrNoFeasible)
	}
	return out, nil
}

// SolveBestKnown computes the repository's strongest reference
// solution (exact SFC + exact Steiner sweep with stage-two refinement
// where tractable); see DESIGN.md for how it substitutes the paper's
// CPLEX optima.
func SolveBestKnown(net *Network, task Task) (*Result, error) {
	res, err := exact.BestKnown(net, task)
	if err != nil {
		return nil, err
	}
	return res.Result, nil
}

// LinkViolation reports one overloaded link (see SolveCapacityAware).
type LinkViolation = nfv.LinkViolation

// SolveCapacityAware extends the two-stage algorithm with per-link
// copy bounds (set via Network.SetLinkCapacity or the builder): it
// iterates a penalty method that reroutes around overloaded links.
// maxRounds of 0 uses the default budget.
func SolveCapacityAware(net *Network, task Task, opts Options, maxRounds int) (*Result, error) {
	return core.SolveCapacityAware(net, task, opts, maxRounds)
}

// Replay drives an embedding through the flow-level simulator,
// re-deriving its cost from observed transmissions and reporting
// per-edge load.
func Replay(net *Network, e *Embedding) (*SimReport, error) {
	return sim.Replay(net, e)
}

// RenderSVG draws the network (and, when emb is non-nil, its service
// function tree, stage by stage) as a standalone SVG document. The
// network must carry node coordinates. names, when non-nil, labels
// nodes; title is drawn when non-empty.
func RenderSVG(net *Network, emb *Embedding, names []string, title string) ([]byte, error) {
	return viz.RenderSVG(net, emb, viz.Options{Names: names, Title: title})
}

// RenderDOT emits the network (and optional embedding) as a Graphviz
// DOT document, for post-processing with the graphviz toolchain.
func RenderDOT(net *Network, emb *Embedding, names []string, title string) []byte {
	return viz.RenderDOT(net, emb, viz.Options{Names: names, Title: title})
}

// NetworkBuilder assembles a custom Network step by step; errors are
// accumulated and reported by Build so call sites stay linear.
type NetworkBuilder struct {
	nodes   int
	catalog []VNF
	coords  []Point
	links   []struct {
		u, v int
		cost float64
	}
	servers []struct {
		v   int
		cap float64
	}
	setups []struct {
		f, v int
		cost float64
	}
	deploys  []struct{ f, v int }
	linkCaps []struct{ u, v, copies int }
}

// NewNetworkBuilder starts a builder for a network with the given node
// count and VNF catalog (nil selects DefaultCatalog).
func NewNetworkBuilder(nodes int, catalog []VNF) *NetworkBuilder {
	if catalog == nil {
		catalog = nfv.DefaultCatalog()
	}
	return &NetworkBuilder{nodes: nodes, catalog: catalog}
}

// AddLink adds an undirected link with the given cost.
func (b *NetworkBuilder) AddLink(u, v int, cost float64) *NetworkBuilder {
	b.links = append(b.links, struct {
		u, v int
		cost float64
	}{u, v, cost})
	return b
}

// SetServer marks a node as VNF-capable with the given capacity.
func (b *NetworkBuilder) SetServer(v int, capacity float64) *NetworkBuilder {
	b.servers = append(b.servers, struct {
		v   int
		cap float64
	}{v, capacity})
	return b
}

// SetSetupCost sets the deployment cost of VNF f on node v.
func (b *NetworkBuilder) SetSetupCost(f, v int, cost float64) *NetworkBuilder {
	b.setups = append(b.setups, struct {
		f, v int
		cost float64
	}{f, v, cost})
	return b
}

// Deploy records a pre-deployed instance of VNF f on node v.
func (b *NetworkBuilder) Deploy(f, v int) *NetworkBuilder {
	b.deploys = append(b.deploys, struct{ f, v int }{f, v})
	return b
}

// SetLinkCapacity bounds the flow copies link {u,v} may carry
// (capacity-aware solving only; 0 means unlimited).
func (b *NetworkBuilder) SetLinkCapacity(u, v, copies int) *NetworkBuilder {
	b.linkCaps = append(b.linkCaps, struct{ u, v, copies int }{u, v, copies})
	return b
}

// SetCoords attaches node coordinates (optional, for reporting).
func (b *NetworkBuilder) SetCoords(coords []Point) *NetworkBuilder {
	b.coords = append([]Point(nil), coords...)
	return b
}

// Build materializes the network, returning the first error hit while
// applying the recorded operations.
func (b *NetworkBuilder) Build() (*Network, error) {
	g := graph.New(b.nodes)
	for _, l := range b.links {
		if _, err := g.AddEdge(l.u, l.v, l.cost); err != nil {
			return nil, fmt.Errorf("sftree: link %d-%d: %w", l.u, l.v, err)
		}
	}
	net := nfv.NewNetwork(g, b.catalog)
	if b.coords != nil {
		net.SetCoords(b.coords)
	}
	for _, s := range b.servers {
		if err := net.SetServer(s.v, s.cap); err != nil {
			return nil, fmt.Errorf("sftree: server %d: %w", s.v, err)
		}
	}
	for _, s := range b.setups {
		if err := net.SetSetupCost(s.f, s.v, s.cost); err != nil {
			return nil, fmt.Errorf("sftree: setup cost (%d,%d): %w", s.f, s.v, err)
		}
	}
	for _, d := range b.deploys {
		if err := net.Deploy(d.f, d.v); err != nil {
			return nil, fmt.Errorf("sftree: deploy (%d,%d): %w", d.f, d.v, err)
		}
	}
	for _, lc := range b.linkCaps {
		if err := net.SetLinkCapacity(lc.u, lc.v, lc.copies); err != nil {
			return nil, fmt.Errorf("sftree: link capacity %d-%d: %w", lc.u, lc.v, err)
		}
	}
	return net, nil
}
