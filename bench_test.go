package sftree

import (
	"fmt"
	"testing"

	"sftree/internal/experiments"
)

// Benchmarks: one per paper figure plus one per ablation, each running
// its full sweep at a reduced trial count so `go test -bench=.` stays
// tractable. `cmd/sftbench` runs the same code at paper scale.

func benchFigure(b *testing.B, run func(experiments.Config) (*experiments.Figure, error), withRef bool) {
	b.Helper()
	cfg := experiments.Config{Trials: 1, Seed: 1, WithReference: withRef}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fig, err := run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.StopTimer()
			// Surface the series so bench output documents the shape.
			fmt.Print(fig.CostTable())
			fmt.Print(fig.Summary())
			b.StartTimer()
		}
	}
}

func BenchmarkFig08NetworkSizeSparseDests(b *testing.B) { benchFigure(b, experiments.Fig8, false) }
func BenchmarkFig09NetworkSizeDenseDests(b *testing.B)  { benchFigure(b, experiments.Fig9, false) }
func BenchmarkFig10SetupCost1x(b *testing.B)            { benchFigure(b, experiments.Fig10, false) }
func BenchmarkFig11SetupCost3x(b *testing.B)            { benchFigure(b, experiments.Fig11, false) }
func BenchmarkFig12SFCLength(b *testing.B)              { benchFigure(b, experiments.Fig12, false) }
func BenchmarkFig13PalmettoDestinations(b *testing.B)   { benchFigure(b, experiments.Fig13, true) }
func BenchmarkFig14PalmettoSFCLength(b *testing.B)      { benchFigure(b, experiments.Fig14, true) }

func BenchmarkGapStudyProvenOptima(b *testing.B) { benchFigure(b, experiments.GapStudy, false) }
func BenchmarkTraceStudyDynamicLoad(b *testing.B) {
	benchFigure(b, experiments.TraceStudy, false)
}
func BenchmarkRatioStudyCapacity(b *testing.B) { benchFigure(b, experiments.RatioStudy, false) }
func BenchmarkBranchStudyWeakStarts(b *testing.B) {
	benchFigure(b, experiments.BranchStudy, false)
}

func BenchmarkAblationSteiner(b *testing.B)  { benchFigure(b, experiments.AblationSteiner, false) }
func BenchmarkAblationLastHost(b *testing.B) { benchFigure(b, experiments.AblationLastHost, false) }
func BenchmarkAblationOPAAcceptance(b *testing.B) {
	benchFigure(b, experiments.AblationOPA, false)
}
func BenchmarkAblationAPSP(b *testing.B) { benchFigure(b, experiments.AblationAPSP, false) }

// Micro-benchmarks on the primary entry points, one fixed mid-size
// instance each, reporting per-solve cost.

func benchInstance(b *testing.B, nodes, dests, chain int) (*Network, Task) {
	b.Helper()
	net, err := GenerateNetwork(DefaultGenConfig(nodes, 2), 11)
	if err != nil {
		b.Fatal(err)
	}
	task, err := GenerateTask(net, 12, dests, chain)
	if err != nil {
		b.Fatal(err)
	}
	net.Metric() // exclude one-time APSP from the loop
	return net, task
}

func BenchmarkSolveTwoStage100(b *testing.B) {
	net, task := benchInstance(b, 100, 10, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveTwoStage(net, task, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveSCA100(b *testing.B) {
	net, task := benchInstance(b, 100, 10, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveSCA(net, task, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveRSA100(b *testing.B) {
	net, task := benchInstance(b, 100, 10, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveRSA(net, task, int64(i), Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReplay100(b *testing.B) {
	net, task := benchInstance(b, 100, 10, 5)
	res, err := SolveTwoStage(net, task, Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Replay(net, res.Embedding); err != nil {
			b.Fatal(err)
		}
	}
}
