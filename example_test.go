package sftree_test

import (
	"fmt"
	"math"

	"sftree"
)

// ExampleSolveTwoStage embeds a two-function chain for a two-receiver
// multicast on a hand-built network and prints the optimized cost.
func ExampleSolveTwoStage() {
	catalog := []sftree.VNF{
		{ID: 0, Name: "firewall", Demand: 1},
		{ID: 1, Name: "transcoder", Demand: 1},
	}
	net, err := sftree.NewNetworkBuilder(6, catalog).
		AddLink(0, 1, 1).AddLink(1, 2, 1).AddLink(2, 3, 1).
		AddLink(1, 4, 2).AddLink(4, 5, 1).AddLink(2, 4, 2.5).
		SetServer(1, 5).SetServer(2, 5).SetServer(4, 5).
		SetSetupCost(0, 1, 1).SetSetupCost(0, 2, 1).SetSetupCost(0, 4, 1).
		SetSetupCost(1, 1, 5).SetSetupCost(1, 2, 5).SetSetupCost(1, 4, 5).
		Deploy(0, 1).Deploy(1, 2).Deploy(1, 4).
		Build()
	if err != nil {
		fmt.Println(err)
		return
	}
	task := sftree.Task{Source: 0, Destinations: []int{3, 5}, Chain: sftree.SFC{0, 1}}
	res, err := sftree.SolveTwoStage(net, task, sftree.Options{})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("stage one %.1f, final %.1f, moves %d\n",
		res.Stage1Cost, res.FinalCost, res.MovesAccepted)
	// Output: stage one 6.5, final 6.0, moves 1
}

// ExampleReplay verifies an embedding with the flow-level simulator.
func ExampleReplay() {
	net, err := sftree.GenerateNetwork(sftree.DefaultGenConfig(30, 2), 1)
	if err != nil {
		fmt.Println(err)
		return
	}
	task, err := sftree.GenerateTask(net, 2, 4, 3)
	if err != nil {
		fmt.Println(err)
		return
	}
	res, err := sftree.SolveTwoStage(net, task, sftree.Options{})
	if err != nil {
		fmt.Println(err)
		return
	}
	rep, err := sftree.Replay(net, res.Embedding)
	if err != nil {
		fmt.Println(err)
		return
	}
	agree := math.Abs(rep.TotalCost-net.Cost(res.Embedding).Total) < 1e-6
	fmt.Printf("delivered %d/%d, costs agree: %v\n",
		rep.Delivered, len(task.Destinations), agree)
	// Output: delivered 4/4, costs agree: true
}

// ExampleNewSessionManager shows cross-session instance reuse.
func ExampleNewSessionManager() {
	catalog := []sftree.VNF{{ID: 0, Name: "cache", Demand: 1}}
	net, err := sftree.NewNetworkBuilder(4, catalog).
		AddLink(0, 1, 1).AddLink(1, 2, 1).AddLink(2, 3, 1).
		SetServer(1, 1).SetServer(2, 1).
		SetSetupCost(0, 1, 1).SetSetupCost(0, 2, 1).
		Build()
	if err != nil {
		fmt.Println(err)
		return
	}
	m := sftree.NewSessionManager(net, sftree.Options{})
	task := sftree.Task{Source: 0, Destinations: []int{3}, Chain: sftree.SFC{0}}
	first, err := m.Admit(task)
	if err != nil {
		fmt.Println(err)
		return
	}
	second, err := m.Admit(task)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("first %.0f, second %.0f (instance reused)\n",
		first.Result.FinalCost, second.Result.FinalCost)
	// Output: first 4, second 3 (instance reused)
}
