package core

import (
	"fmt"
	"sort"
	"time"

	"sftree/internal/graph"
)

const costEps = 1e-9

// runOPA repeats runOPAPass up to Options.MaxOPAPasses times, stopping
// early once a pass accepts nothing. The boolean reports a deadline
// stop: the context on Options expired and the sweep ended with the
// state as-is (every prefix of accepted moves is a valid solution, so
// stopping between passes or levels loses nothing but optimization).
func runOPA(s *state, opts Options) (int, bool, error) {
	pass := runOPAPass
	if opts.NaiveRecost {
		pass = runOPAPassNaive
	}
	total := 0
	for i := 0; i < opts.opaPasses(); i++ {
		if opts.ctxErr() != nil {
			return total, true, nil
		}
		t0 := opts.now()
		opts.emit(Event{Kind: EventOPAPassStart, Pass: i + 1})
		moves, err := pass(s, opts, i+1)
		total += moves
		if opts.Observer != nil {
			opts.emit(Event{Kind: EventOPAPassEnd, Pass: i + 1, Moves: moves, Duration: time.Since(t0)})
		}
		if err != nil || moves == 0 {
			return total, err == nil && opts.ctxErr() != nil, err
		}
	}
	return total, opts.ctxErr() != nil, nil
}

// runOPAPass implements Algorithm 3: starting from the stage-one state,
// add new VNF instances in inverted chain order (Theorem 4) wherever a
// connection node can be re-homed more cheaply. Move candidates follow
// the paper's local rule c(x,E) + c(E,pred) + gamma < c(x,cur); moves
// are accepted only if the recomputed global cost strictly drops
// (unless Options.LocalAcceptance asks for the paper's raw rule).
// It returns the number of accepted moves. The pass number is only for
// the optional Observer's events.
//
// Cost evaluation is incremental: the state's ledger (see ledger.go)
// tracks the objective under each trial move, and a rejected move is
// reverted through its journal. runOPAPassNaive preserves the
// clone-and-recost evaluation with identical semantics.
func runOPAPass(s *state, opts Options, passNo int) (int, error) {
	k := s.task.K()
	metric := s.net.Metric()
	s.ensureLedger()
	curCost, err := s.totalCost()
	if err != nil {
		return 0, err
	}

	// Connection groups for the level-k round: per independent
	// root-to-leaf path of the stage-one Steiner tree, the destination
	// nearest the root, together with every destination downstream.
	aggressive := opts.AggressiveOPA && !opts.LocalAcceptance
	groups := s.initialConnectionGroups(aggressive)
	moves := 0
	if DebugOPA {
		fmt.Printf("  [opa] %d initial groups (of %d dests)\n", len(groups), len(s.task.Destinations))
	}

	for j := k; j >= 1; j-- {
		if opts.ctxErr() != nil {
			return moves, nil // deadline: the current state is valid as-is
		}
		f := s.task.Chain[j-1]
		if _, err := s.net.VNF(f); err != nil {
			return moves, err
		}
		var nextConn []int // nodes hosting the instances added at level j
		for _, grp := range groups {
			if len(grp.members) == 0 {
				continue
			}
			cur := s.serve[grp.members[0]][j]
			pred := s.serve[grp.members[0]][j-1]
			curScore := metric.Dist[grp.node][cur]
			if grp.node == cur {
				continue // already colocated; nothing to gain
			}

			// Find the best alternative host E by the local rule.
			bestE, bestScore := -1, graph.Inf
			for _, u := range s.net.ServerList() {
				if u == cur {
					continue
				}
				if metric.Dist[grp.node][u] == graph.Inf || metric.Dist[u][pred] == graph.Inf {
					continue
				}
				if !s.canHost(f, u) {
					continue
				}
				score := metric.Dist[grp.node][u] + metric.Dist[u][pred] + s.instanceSetupCost(f, u)
				if score < bestScore {
					bestE, bestScore = u, score
				}
			}
			if DebugOPA {
				fmt.Printf("  [opa] level %d conn %d (|grp|=%d): cur=%d curScore=%.1f bestE=%d bestScore=%.1f\n",
					j, grp.node, len(grp.members), cur, curScore, bestE, bestScore)
			}
			if bestE == -1 {
				continue
			}
			// The paper's local gate; aggressive mode defers entirely to
			// the global acceptance check below.
			if !aggressive && bestScore >= curScore-costEps {
				continue
			}

			if opts.Observer != nil {
				opts.emit(Event{Kind: EventMoveProposed, Pass: passNo, Level: j,
					Conn: grp.node, From: cur, To: bestE, Group: len(grp.members), CostBefore: curCost})
			}
			jr := s.applyMoveInc(j, grp, bestE, metric)
			if opts.LocalAcceptance {
				moves++
				nextConn = append(nextConn, bestE)
				c, err := s.totalCost()
				s.releaseJournal(jr)
				if err != nil {
					return moves, err
				}
				if opts.Observer != nil {
					opts.emit(Event{Kind: EventMoveAccepted, Pass: passNo, Level: j,
						Conn: grp.node, From: cur, To: bestE, Group: len(grp.members),
						CostBefore: curCost, CostAfter: c})
				}
				curCost = c
				continue
			}
			trialCost, err := s.totalCost()
			if err != nil || trialCost >= curCost-costEps {
				s.revert(jr)
				s.releaseJournal(jr)
				if opts.Observer != nil {
					opts.emit(Event{Kind: EventMoveRejected, Pass: passNo, Level: j,
						Conn: grp.node, From: cur, To: bestE, Group: len(grp.members),
						CostBefore: curCost, CostAfter: trialCost})
				}
				continue
			}
			if opts.Observer != nil {
				opts.emit(Event{Kind: EventMoveAccepted, Pass: passNo, Level: j,
					Conn: grp.node, From: cur, To: bestE, Group: len(grp.members),
					CostBefore: curCost, CostAfter: trialCost})
			}
			s.releaseJournal(jr)
			curCost = trialCost
			moves++
			nextConn = append(nextConn, bestE)
		}
		if len(nextConn) == 0 {
			break // Theorem 4: earlier levels cannot branch either
		}
		groups = s.groupsAt(j, nextConn)
	}
	return moves, nil
}

// runOPAPassNaive is the clone-and-recost evaluation of Algorithm 3:
// every candidate move is applied to a cloned state and priced by a
// full embedding reconstruction. Kept behind Options.NaiveRecost as
// the reference implementation the incremental engine is asserted
// against (see equivalence_test.go). It emits the same Observer events
// as runOPAPass, so traces are comparable across engines.
func runOPAPassNaive(s *state, opts Options, passNo int) (int, error) {
	k := s.task.K()
	metric := s.net.Metric()
	curCost, err := s.cost()
	if err != nil {
		return 0, err
	}

	aggressive := opts.AggressiveOPA && !opts.LocalAcceptance
	groups := s.initialConnectionGroups(aggressive)
	moves := 0

	for j := k; j >= 1; j-- {
		if opts.ctxErr() != nil {
			return moves, nil // deadline: the current state is valid as-is
		}
		f := s.task.Chain[j-1]
		if _, err := s.net.VNF(f); err != nil {
			return moves, err
		}
		var nextConn []int // nodes hosting the instances added at level j
		for _, grp := range groups {
			if len(grp.members) == 0 {
				continue
			}
			cur := s.serve[grp.members[0]][j]
			pred := s.serve[grp.members[0]][j-1]
			curScore := metric.Dist[grp.node][cur]
			if grp.node == cur {
				continue // already colocated; nothing to gain
			}

			bestE, bestScore := -1, graph.Inf
			for _, u := range s.net.ServerList() {
				if u == cur {
					continue
				}
				if metric.Dist[grp.node][u] == graph.Inf || metric.Dist[u][pred] == graph.Inf {
					continue
				}
				if !s.canHost(f, u) {
					continue
				}
				score := metric.Dist[grp.node][u] + metric.Dist[u][pred] + s.instanceSetupCost(f, u)
				if score < bestScore {
					bestE, bestScore = u, score
				}
			}
			if bestE == -1 {
				continue
			}
			if !aggressive && bestScore >= curScore-costEps {
				continue
			}

			if opts.Observer != nil {
				opts.emit(Event{Kind: EventMoveProposed, Pass: passNo, Level: j,
					Conn: grp.node, From: cur, To: bestE, Group: len(grp.members), CostBefore: curCost})
			}
			trial := s.clone()
			trial.applyMove(j, grp, bestE, metric)
			if opts.LocalAcceptance {
				*s = *trial
				moves++
				nextConn = append(nextConn, bestE)
				c, err := s.cost()
				if err != nil {
					return moves, err
				}
				if opts.Observer != nil {
					opts.emit(Event{Kind: EventMoveAccepted, Pass: passNo, Level: j,
						Conn: grp.node, From: cur, To: bestE, Group: len(grp.members),
						CostBefore: curCost, CostAfter: c})
				}
				curCost = c
				continue
			}
			trialCost, err := trial.cost()
			if err != nil || trialCost >= curCost-costEps {
				if opts.Observer != nil {
					opts.emit(Event{Kind: EventMoveRejected, Pass: passNo, Level: j,
						Conn: grp.node, From: cur, To: bestE, Group: len(grp.members),
						CostBefore: curCost, CostAfter: trialCost})
				}
				continue
			}
			if opts.Observer != nil {
				opts.emit(Event{Kind: EventMoveAccepted, Pass: passNo, Level: j,
					Conn: grp.node, From: cur, To: bestE, Group: len(grp.members),
					CostBefore: curCost, CostAfter: trialCost})
			}
			*s = *trial
			curCost = trialCost
			moves++
			nextConn = append(nextConn, bestE)
		}
		if len(nextConn) == 0 {
			break // Theorem 4: earlier levels cannot branch either
		}
		groups = s.groupsAt(j, nextConn)
	}
	return moves, nil
}

// connGroup is one re-homing opportunity: a connection node plus the
// destination indices that route through it.
type connGroup struct {
	node    int   // the connection node (a destination for level k, an instance node below)
	members []int // destination indices re-homed together
}

// initialConnectionGroups decomposes the stage-one Steiner tree into
// root-to-leaf paths, discards the dependent ones (those sharing a
// physical edge with the embedded SFC) unless aggressive mode keeps
// them, and returns one group per connection node: the destination
// nearest the root on a kept path, owning every destination whose
// tail passes through it.
func (s *state) initialConnectionGroups(aggressive bool) []connGroup {
	k := s.task.K()
	isDest := make(map[int]bool, len(s.task.Destinations))
	for _, d := range s.task.Destinations {
		isDest[d] = true
	}
	// Physical edges used by the SFC part of the walks (levels < k).
	metric := s.net.Metric()
	sfcEdges := make(map[[2]int]bool)
	for di := range s.serve {
		for j := 0; j < k; j++ {
			metric.EachHop(s.serve[di][j], s.serve[di][j+1], func(x, y int) {
				sfcEdges[edgeKey(x, y)] = true
			})
		}
	}

	// Leaves of the tail forest: destinations whose tail is not a
	// proper prefix of another tail. Simpler: a node is a leaf if no
	// other tail extends beyond it; we just treat every destination's
	// tail as a root-to-leaf candidate, which is equivalent for
	// connection-node discovery.
	seen := make(map[int]bool)
	var groups []connGroup
	for di := range s.tail {
		tail := s.tail[di]
		// Independence: the whole root-to-leaf path must avoid SFC edges.
		if !aggressive {
			dependent := false
			for i := 1; i < len(tail); i++ {
				if sfcEdges[edgeKey(tail[i-1], tail[i])] {
					dependent = true
					break
				}
			}
			if dependent {
				continue
			}
		}
		// Connection node: first destination on the tail after the root.
		conn := -1
		for _, v := range tail[1:] {
			if isDest[v] {
				conn = v
				break
			}
		}
		if conn == -1 || seen[conn] {
			continue
		}
		seen[conn] = true
		groups = append(groups, connGroup{node: conn, members: s.destsThrough(conn)})
	}
	sort.Slice(groups, func(a, b int) bool { return groups[a].node < groups[b].node })
	return groups
}

// destsThrough returns the indices of destinations whose tail passes
// through node x.
func (s *state) destsThrough(x int) []int {
	var out []int
	for di, tail := range s.tail {
		for _, v := range tail {
			if v == x {
				out = append(out, di)
				break
			}
		}
	}
	return out
}

// groupsAt returns the connection groups for level j: one group per
// distinct node in conn, containing the destinations it serves at
// level j+1.
func (s *state) groupsAt(j int, conn []int) []connGroup {
	sort.Ints(conn)
	var groups []connGroup
	seen := make(map[int]bool, len(conn))
	for _, e := range conn {
		if seen[e] {
			continue
		}
		seen[e] = true
		var members []int
		for di := range s.serve {
			if s.serve[di][j] == e {
				members = append(members, di)
			}
		}
		if len(members) > 0 {
			groups = append(groups, connGroup{node: e, members: members})
		}
	}
	return groups
}

// instanceSetupCost prices a new instance of f at u for the local
// rule: zero when deployed or already placed in the current state.
func (s *state) instanceSetupCost(f, u int) float64 {
	if s.net.IsDeployed(f, u) {
		return 0
	}
	if led := s.led; led != nil {
		if led.instRef[f*led.n+u] > 0 {
			return 0
		}
		return s.net.SetupCost(f, u)
	}
	for _, inst := range s.placedInstances() {
		if inst.VNF == f && inst.Node == u {
			return 0
		}
	}
	return s.net.SetupCost(f, u)
}

// applyMove re-homes the group's members onto a new level-j instance
// at node e. For the last level the explicit tails are rewritten (the
// new route runs e -> connection node -> old downstream suffix); for
// inner levels only the serving assignment changes, and the walk
// segments follow metric paths automatically.
func (s *state) applyMove(j int, grp connGroup, e int, metric *graph.Metric) {
	k := s.task.K()
	for _, di := range grp.members {
		s.serve[di][j] = e
	}
	if j != k {
		return
	}
	head := metric.Path(e, grp.node)
	for _, di := range grp.members {
		old := s.tail[di]
		idx := -1
		for i, v := range old {
			if v == grp.node {
				idx = i
				break
			}
		}
		if idx == -1 {
			// Member does not route through the connection node (should
			// not happen; keep a safe fallback route).
			s.tail[di] = metric.Path(e, s.task.Destinations[di])
			continue
		}
		nt := append([]int(nil), head...)
		nt = append(nt, old[idx+1:]...)
		s.tail[di] = nt
	}
}

func edgeKey(u, v int) [2]int {
	if u > v {
		u, v = v, u
	}
	return [2]int{u, v}
}

// DebugOPA, when set, prints stage-two group and candidate diagnostics
// to stdout. Test-and-tooling aid only.
var DebugOPA bool
