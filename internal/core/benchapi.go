package core

import (
	"fmt"

	"sftree/internal/graph"
	"sftree/internal/nfv"
)

// This file exports closure-based runners over the unexported stage-two
// machinery so that out-of-package benchmark harnesses (cmd/sftbench
// -json via internal/benchsuite) can measure the same operations the
// in-package micro-benchmarks in bench_test.go do.

// OPAPassRunner prepares the stage-one state for the instance and
// returns a closure that executes one full stage-two pass on a fresh
// copy of it. The preparation cost (MSA, APSP warm-up) is paid once,
// so the closure isolates the OPA pass itself.
func OPAPassRunner(net *nfv.Network, task nfv.Task, opts Options) (func() error, error) {
	net.Metric()
	st, _, err := runMSA(net, task, opts)
	if err != nil {
		return nil, err
	}
	pass := runOPAPass
	if opts.NaiveRecost {
		pass = runOPAPassNaive
	}
	return func() error {
		c := st.clone()
		_, err := pass(c, opts, 1)
		return err
	}, nil
}

// DeltaCostRunner prepares a stage-one state plus one feasible
// last-level re-homing move and returns a closure that prices it: with
// the incremental engine an apply/read/revert cycle against the
// ledger, with Options.NaiveRecost a clone-and-full-recost. It errors
// when the instance admits no such move.
func DeltaCostRunner(net *nfv.Network, task nfv.Task, opts Options) (func() error, error) {
	metric := net.Metric()
	st, _, err := runMSA(net, task, Options{})
	if err != nil {
		return nil, err
	}
	k := task.K()
	groups := st.initialConnectionGroups(false)
	if len(groups) == 0 {
		return nil, fmt.Errorf("core: instance has no independent connection groups")
	}
	grp := groups[0]
	cur := st.serve[grp.members[0]][k]
	e := -1
	for _, u := range net.ServerList() {
		if u != cur && st.canHost(task.Chain[k-1], u) && metric.Dist[grp.node][u] != graph.Inf {
			e = u
			break
		}
	}
	if e == -1 {
		return nil, fmt.Errorf("core: instance admits no alternative last-level host")
	}
	if opts.NaiveRecost {
		return func() error {
			trial := st.clone()
			trial.applyMove(k, grp, e, metric)
			_, err := trial.cost()
			return err
		}, nil
	}
	// Benchmark guard: this closure is what BENCH_core.json's
	// StateDeltaCost rows measure. The ledger variant must price a move
	// strictly faster than NaiveRecost — the map-backed ledger once
	// regressed behind the naive path here (11.5µs vs 10.8µs, map
	// hashing dominated the profile), which is why the ref-counts now
	// live in flat arrays and journals are pooled. tools.sh bench gates
	// SolveTwoStage100/OPAPass/SolveWarmMetric100 on the checked-in
	// baseline; if this pair inverts again, treat it as a regression.
	st.ensureLedger()
	return func() error {
		jr := st.applyMoveInc(k, grp, e, metric)
		_, err := st.totalCost()
		st.revert(jr)
		st.releaseJournal(jr)
		return err
	}, nil
}
