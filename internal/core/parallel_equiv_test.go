package core_test

// The parallel stage-one sweep must be a pure performance knob: for
// every instance and option set, Options.Parallelism may not change a
// single bit of the result. The sweep's determinism argument (pure
// candidate evaluation + index-ordered reduction, see msa.go) is
// checked here against the conformance corpus, including under -race
// via tools.sh. This file lives in package core_test because the
// corpus generator (conformance/harness) imports core.

import (
	"fmt"
	"reflect"
	"testing"

	"sftree/internal/conformance/harness"
	"sftree/internal/core"
)

// equivOptions are the option sets the equivalence tests sweep; each
// is re-run at every parallelism level.
var equivOptions = []struct {
	name string
	opts core.Options
}{
	{"default", core.Options{}},
	{"aggressive", core.Options{AggressiveOPA: true, MaxOPAPasses: 3}},
	{"mehlhorn", core.Options{Steiner: core.SteinerMehlhorn}},
}

// assertSameResult requires got to match want exactly: embedding
// deep-equal, costs bit-identical (== on float64, no tolerance), and
// every stage statistic equal. Timings are not part of Result, so the
// whole struct is comparable.
func assertSameResult(t *testing.T, label string, want, got *core.Result) {
	t.Helper()
	if !reflect.DeepEqual(want.Embedding, got.Embedding) {
		t.Errorf("%s: embedding differs\nwant %+v\ngot  %+v", label, want.Embedding, got.Embedding)
	}
	if want.Stage1Cost != got.Stage1Cost {
		t.Errorf("%s: stage1 cost %v != %v", label, got.Stage1Cost, want.Stage1Cost)
	}
	if want.FinalCost != got.FinalCost {
		t.Errorf("%s: final cost %v != %v", label, got.FinalCost, want.FinalCost)
	}
	if want.MovesAccepted != got.MovesAccepted {
		t.Errorf("%s: moves accepted %d != %d", label, got.MovesAccepted, want.MovesAccepted)
	}
	if want.CandidatesTried != got.CandidatesTried {
		t.Errorf("%s: candidates tried %d != %d", label, got.CandidatesTried, want.CandidatesTried)
	}
	if want.LastHost != got.LastHost {
		t.Errorf("%s: last host %d != %d", label, got.LastHost, want.LastHost)
	}
	if want.EarlyStop != got.EarlyStop {
		t.Errorf("%s: early stop %v != %v", label, got.EarlyStop, want.EarlyStop)
	}
}

func TestParallelSweepBitIdentical(t *testing.T) {
	cases, err := harness.GenerateCorpus(nil, 12, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cases {
		c := c
		t.Run(fmt.Sprintf("%s-s%d", c.Stratum.Name(), c.Seed), func(t *testing.T) {
			for _, ov := range equivOptions {
				seq := ov.opts
				seq.Parallelism = 1
				want, err := core.Solve(c.Net, c.Task, seq)
				if err != nil {
					t.Fatalf("%s sequential: %v", ov.name, err)
				}
				for _, p := range []int{2, 8} {
					par := ov.opts
					par.Parallelism = p
					got, err := core.Solve(c.Net, c.Task, par)
					if err != nil {
						t.Fatalf("%s parallelism %d: %v", ov.name, p, err)
					}
					assertSameResult(t, fmt.Sprintf("%s/p%d", ov.name, p), want, got)
				}
			}
		})
	}
}

// FuzzParallelSweepBitIdentical lets the fuzzer pick corpus strata and
// seeds; any input whose sequential and parallel solves disagree is a
// determinism bug in the sweep.
func FuzzParallelSweepBitIdentical(f *testing.F) {
	f.Add(0, int64(1))
	f.Add(3, int64(42))
	f.Add(7, int64(-5))
	grid := harness.DefaultGrid()
	f.Fuzz(func(t *testing.T, stratum int, seed int64) {
		s := grid[((stratum%len(grid))+len(grid))%len(grid)]
		c, err := harness.GenerateCase(s, seed)
		if err != nil {
			t.Skip() // no solvable task for this seed
		}
		want, err := core.Solve(c.Net, c.Task, core.Options{Parallelism: 1})
		if err != nil {
			t.Skip()
		}
		got, err := core.Solve(c.Net, c.Task, core.Options{Parallelism: 8})
		if err != nil {
			t.Fatalf("parallel solve failed where sequential succeeded: %v", err)
		}
		assertSameResult(t, "p8", want, got)
	})
}
