package core

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"sftree/internal/graph"
	"sftree/internal/mod"
	"sftree/internal/nfv"
	"sftree/internal/steiner"
)

// SteinerAlgo selects the Steiner-tree routine used by stage one.
type SteinerAlgo int

const (
	// SteinerKMB is the Kou-Markowsky-Berman 2-approximation (default).
	SteinerKMB SteinerAlgo = iota + 1
	// SteinerTM is the Takahashi-Matsuyama path-growing heuristic.
	SteinerTM
	// SteinerMehlhorn is Mehlhorn's Voronoi-region 2-approximation,
	// cheaper per call than KMB on large sparse networks.
	SteinerMehlhorn
)

// Options tunes the two-stage algorithm. The zero value picks the
// paper's configuration: KMB trees, every server considered as the
// last-VNF host, and global-recompute move acceptance in stage two.
type Options struct {
	// Steiner selects the stage-one Steiner routine (default KMB).
	Steiner SteinerAlgo
	// MaxCandidateHosts, when positive, restricts stage one to the
	// cheapest-chain candidates instead of all servers (ablation).
	MaxCandidateHosts int
	// LocalAcceptance makes stage two accept moves on the paper's
	// local rule alone instead of verifying the recomputed global
	// cost (ablation). Capacity feasibility is still enforced.
	LocalAcceptance bool
	// MaxOPAPasses repeats the whole stage-two sweep (levels k..1)
	// until a pass accepts no move or the budget is exhausted,
	// implementing the paper's "repeat the above procedures until one
	// VNF cannot be deployed on multiple nodes". Zero means one pass.
	MaxOPAPasses int
	// NaiveRecost makes stage two price every candidate move by
	// cloning the state and reconstructing the full embedding, the
	// pre-ledger reference implementation, instead of the incremental
	// cost engine (ledger.go). Semantically identical and much slower;
	// kept for debugging and the engine-equivalence tests.
	NaiveRecost bool
	// AggressiveOPA is an extension beyond the paper: stage two also
	// considers dependent root-to-leaf paths (the paper discards them)
	// and probes the best candidate host even when the local rule is
	// not strictly satisfied. Every move is still gated on the
	// recomputed global cost, so the result can only improve; the
	// trade-off is more trial evaluations. Incompatible with
	// LocalAcceptance (which has no global gate) — ignored there.
	AggressiveOPA bool
	// Parallelism bounds the worker goroutines evaluating stage-one
	// candidate last-hosts concurrently. 0 or 1 runs the sweep
	// sequentially; >1 uses that many workers (capped at the candidate
	// count); <0 uses GOMAXPROCS. The result is bit-identical across
	// every setting: candidate evaluation is pure (no shared mutable
	// state), and the winners are reduced in candidate-index order with
	// the same strict-< rule the sequential loop applies.
	Parallelism int
	// Scaffolds, when non-nil, memoizes the stage-one MOD overlay keyed
	// by (source, chain signature, graph generation, deployment epoch):
	// same-signature solves against the same network version skip the
	// overlay construction entirely. Because the key pins the exact
	// version, results are bit-identical to building fresh. The dynamic
	// manager shares one cache across concurrent admissions.
	Scaffolds *mod.Cache
	// Observer, when non-nil, receives structured phase events from
	// every stage of the solve (see observe.go). Nil costs one pointer
	// check per emission site and nothing else.
	Observer Observer
	// Ctx, when non-nil, bounds the solve: the algorithm polls it at
	// the APSP build, at stage boundaries, between stage-one candidate
	// hosts and at every stage-two pass and level boundary. On expiry
	// the solve stops where it is and returns the best feasible
	// embedding found so far (anytime semantics), with
	// Result.EarlyStop set; only when no feasible solution exists yet
	// does it fail, wrapping the context error. Nil means unbounded.
	Ctx context.Context
}

// ctxErr polls the deadline context without blocking; nil when the
// solve may continue.
func (o Options) ctxErr() error {
	if o.Ctx == nil {
		return nil
	}
	select {
	case <-o.Ctx.Done():
		return o.Ctx.Err()
	default:
		return nil
	}
}

func (o Options) opaPasses() int {
	if o.MaxOPAPasses <= 0 {
		return 1
	}
	return o.MaxOPAPasses
}

func (o Options) steiner() SteinerAlgo {
	if o.Steiner == 0 {
		return SteinerKMB
	}
	return o.Steiner
}

// workers resolves Parallelism against the candidate count.
func (o Options) workers(n int) int {
	p := o.Parallelism
	if p < 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p > n {
		p = n
	}
	if p < 2 {
		return 1
	}
	return p
}

// StageStats reports how stage one reached its feasible solution.
type StageStats struct {
	CandidatesTried int
	Stage1Cost      float64
	LastHost        int
	// EarlyStop reports that the deadline context expired and the
	// candidate sweep stopped at the best feasible solution found.
	EarlyStop bool
}

// runMSA implements Algorithm 2: embed the SFC via the expanded MOD
// network, repair capacity violations, and connect the last VNF host
// to all destinations with a Steiner tree, trying every candidate
// host and keeping the cheapest feasible combination.
func runMSA(net *nfv.Network, task nfv.Task, opts Options) (*state, *StageStats, error) {
	if err := task.Validate(net); err != nil {
		return nil, nil, err
	}
	var overlay *mod.Network
	var err error
	if opts.Scaffolds != nil {
		overlay, err = opts.Scaffolds.Get(net, task.Source, task.Chain)
	} else {
		overlay, err = mod.Build(net, task.Source, task.Chain)
	}
	if err != nil {
		return nil, nil, fmt.Errorf("core: stage one: %w", err)
	}
	sol := overlay.SolveSFC()
	metric := net.Metric()

	candidates := net.Servers()
	sort.Slice(candidates, func(a, b int) bool {
		return sol.CostTo(candidates[a]) < sol.CostTo(candidates[b])
	})
	if opts.MaxCandidateHosts > 0 && len(candidates) > opts.MaxCandidateHosts {
		candidates = candidates[:opts.MaxCandidateHosts]
	}

	results := make([]candResult, len(candidates))
	if workers := opts.workers(len(candidates)); workers > 1 {
		// Candidate evaluation is pure — it reads only the (warm)
		// metric, the overlay's Dijkstra tree and the network — so the
		// sweep fans out over a bounded worker pool pulling indices
		// from an atomic cursor. A worker that sees an expired deadline
		// marks its remaining claims skipped instead of evaluating;
		// the ordered reduction below restores the anytime semantics.
		var cursor atomic.Int64
		var wg sync.WaitGroup
		for i := 0; i < workers; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					idx := int(cursor.Add(1)) - 1
					if idx >= len(candidates) {
						return
					}
					if opts.ctxErr() != nil {
						results[idx].skipped = true
						continue
					}
					results[idx] = evalCandidate(net, task, overlay, sol, metric, opts.steiner(), candidates[idx])
				}
			}()
		}
		wg.Wait()
	} else {
		for i, w := range candidates {
			results[i] = evalCandidate(net, task, overlay, sol, metric, opts.steiner(), w)
			// Anytime semantics: once a plausibly feasible solution is in
			// hand, an expired deadline stops the sweep; the reduction
			// below decides what that means exactly (and resumes inline
			// if the candidates in hand all turn out infeasible).
			if results[i].ok && opts.ctxErr() != nil {
				for j := i + 1; j < len(results); j++ {
					results[j].skipped = true
				}
				break
			}
		}
	}

	// Index-ordered reduction, identical to the historical sequential
	// loop: candidates are considered in sorted order, a strict < on
	// total cost picks the winner, and stateFromSolution runs only for
	// improving candidates (its failure skips the candidate without
	// touching the running best).
	var (
		bestState *state
		bestCost  = graph.Inf
		stats     StageStats
	)
	for i := range results {
		r := &results[i]
		if r.skipped {
			// The deadline expired before this candidate ran. Mirror the
			// sequential anytime rule: with a feasible solution in hand
			// the sweep ends early; without one, keep evaluating inline
			// so the solve fails only when no candidate is feasible.
			if bestState != nil {
				stats.EarlyStop = true
				break
			}
			*r = evalCandidate(net, task, overlay, sol, metric, opts.steiner(), candidates[i])
		}
		if r.tried {
			stats.CandidatesTried++
		}
		if !r.ok || r.total >= bestCost {
			continue
		}
		st, err := stateFromSolution(net, task, r.hosts, r.tree)
		if err != nil {
			continue
		}
		bestCost = r.total
		bestState = st
		stats.LastHost = r.hosts[len(r.hosts)-1]
	}
	if bestState == nil {
		return nil, nil, fmt.Errorf("%w: no candidate last host admits a feasible solution", ErrNoFeasible)
	}
	stats.Stage1Cost = bestCost
	return bestState, &stats, nil
}

// candResult is one candidate last-host's evaluation, computed
// without reference to the running best so candidates can run in any
// order (or concurrently) and reduce deterministically by index.
type candResult struct {
	tried   bool // counted by StageStats.CandidatesTried
	ok      bool // chain repaired and Steiner tree built
	skipped bool // deadline expired before evaluation (parallel sweep)
	hosts   []int
	tree    steiner.Tree
	total   float64
}

// evalCandidate prices candidate last-host w: decode the overlay's
// optimal chain ending at w, repair capacity, and connect w to every
// destination with a Steiner tree. It only reads shared state, so it
// is safe to call concurrently once the metric is warm.
func evalCandidate(net *nfv.Network, task nfv.Task, overlay *mod.Network, sol *mod.SFCSolution, metric *graph.Metric, algo SteinerAlgo, w int) candResult {
	var r candResult
	if sol.CostTo(w) == graph.Inf {
		return r
	}
	hosts := sol.HostsTo(w)
	if hosts == nil {
		return r
	}
	r.tried = true
	hosts, ok := repairCapacity(net, task, hosts)
	if !ok {
		return r
	}
	chainCost := overlay.ChainCost(hosts)
	last := hosts[len(hosts)-1]
	tree, err := buildSteiner(net, metric, last, task.Destinations, algo)
	if err != nil {
		return r // some destination unreachable from this host
	}
	r.ok = true
	r.hosts = hosts
	r.tree = tree
	r.total = chainCost + tree.Cost
	return r
}

// BuildTails connects root to all destinations with the selected
// Steiner routine and returns the per-destination tree paths, the form
// OptimizeEmbedding consumes. Baseline strategies use it to finish
// their stage-one solutions the same way MSA does.
func BuildTails(net *nfv.Network, root int, dests []int, algo SteinerAlgo) ([][]int, float64, error) {
	tree, err := buildSteiner(net, net.Metric(), root, dests, algo)
	if err != nil {
		return nil, 0, err
	}
	paths, err := treePaths(net.Graph(), tree, root, dests)
	if err != nil {
		return nil, 0, err
	}
	return paths, tree.Cost, nil
}

// buildSteiner connects root to all destinations with the selected
// Steiner routine.
func buildSteiner(net *nfv.Network, metric *graph.Metric, root int, dests []int, algo SteinerAlgo) (steiner.Tree, error) {
	terminals := append([]int{root}, dests...)
	switch algo {
	case SteinerTM:
		return steiner.TakahashiMatsuyama(net.Graph(), metric, root, dests)
	case SteinerMehlhorn:
		return steiner.Mehlhorn(net.Graph(), terminals)
	default:
		return steiner.KMB(net.Graph(), metric, terminals)
	}
}

// RepairChainHosts exposes the stage-one capacity-repair rule so that
// external reference solvers sweep candidate hosts under the same
// feasibility policy. It returns the repaired host sequence and
// whether a feasible placement exists.
func RepairChainHosts(net *nfv.Network, task nfv.Task, hosts []int) ([]int, bool) {
	return repairCapacity(net, task, hosts)
}

// TailsFromEdges converts an explicit tree edge set into the
// per-destination root paths OptimizeEmbedding consumes.
func TailsFromEdges(net *nfv.Network, root int, dests []int, edges []int) ([][]int, error) {
	return treePaths(net.Graph(), steiner.Tree{Edges: edges}, root, dests)
}

// repairCapacity walks the chain hosts in order, reserving capacity
// for each new instance, and relocates any VNF whose host is full to
// the feasible node minimizing connection-plus-setup cost (the paper's
// adjustment rule). It reports failure when some VNF fits nowhere.
func repairCapacity(net *nfv.Network, task nfv.Task, hosts []int) ([]int, bool) {
	k := len(hosts)
	out := append([]int(nil), hosts...)
	metric := net.Metric()
	sc := capPool.Get().(*capScratch)
	defer capPool.Put(sc)
	if n := net.NumNodes(); cap(sc.free) < n {
		sc.free = make([]float64, n)
	}
	free := sc.free[:net.NumNodes()]
	servers := net.ServerList()
	for _, v := range servers {
		free[v] = net.FreeCapacity(v)
	}
	for j := 0; j < k; j++ {
		f := task.Chain[j]
		h := out[j]
		vnf, err := net.VNF(f)
		if err != nil {
			return nil, false
		}
		if net.IsDeployed(f, h) {
			continue // reuse, no capacity consumed
		}
		// The scratch array is refreshed only at server indices; a
		// non-server host (possible via RepairChainHosts) has no
		// capacity and always relocates, as with the old map's zero.
		if net.IsServer(h) && free[h]+1e-9 >= vnf.Demand {
			free[h] -= vnf.Demand
			continue
		}
		// Relocate: choose the node minimizing link cost to both chain
		// neighbours plus setup cost, among nodes that can host f.
		prev := task.Source
		if j > 0 {
			prev = out[j-1]
		}
		best, bestCost := -1, graph.Inf
		for _, u := range servers {
			reuse := net.IsDeployed(f, u)
			if !reuse && free[u]+1e-9 < vnf.Demand {
				continue
			}
			c := metric.Dist[prev][u] + net.SetupCost(f, u)
			if j+1 < k {
				c += metric.Dist[u][out[j+1]]
			}
			if c < bestCost {
				best, bestCost = u, c
			}
		}
		if best == -1 {
			return nil, false
		}
		out[j] = best
		if !net.IsDeployed(f, best) {
			free[best] -= vnf.Demand
		}
	}
	return out, true
}

// capScratch is the pooled free-capacity array behind repairCapacity;
// only server-indexed entries are meaningful (refreshed per call).
type capScratch struct{ free []float64 }

var capPool = sync.Pool{New: func() any { return new(capScratch) }}

// stateFromSolution assembles the stage-one state: every destination
// is served by the single chain host sequence, and tails follow the
// Steiner tree from the last host.
func stateFromSolution(net *nfv.Network, task nfv.Task, hosts []int, tree steiner.Tree) (*state, error) {
	s := newState(net, task)
	k := task.K()
	last := hosts[k-1]
	paths, err := treePaths(net.Graph(), tree, last, task.Destinations)
	if err != nil {
		return nil, err
	}
	for di := range task.Destinations {
		for j := 1; j <= k; j++ {
			s.serve[di][j] = hosts[j-1]
		}
		s.tail[di] = paths[di]
	}
	return s, nil
}

// treePaths returns, for each destination, the unique path from root
// to it along the tree's edges.
func treePaths(g *graph.Graph, tree steiner.Tree, root int, dests []int) ([][]int, error) {
	parent := make(map[int]int)
	adj := make(map[int][]int)
	for _, id := range tree.Edges {
		e := g.Edge(id)
		adj[e.U] = append(adj[e.U], e.V)
		adj[e.V] = append(adj[e.V], e.U)
	}
	parent[root] = -1
	stack := []int{root}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range adj[u] {
			if _, seen := parent[v]; !seen {
				parent[v] = u
				stack = append(stack, v)
			}
		}
	}
	out := make([][]int, len(dests))
	for i, d := range dests {
		if d == root {
			out[i] = []int{root}
			continue
		}
		if _, ok := parent[d]; !ok {
			return nil, fmt.Errorf("%w: destination %d not in the Steiner tree", ErrNoFeasible, d)
		}
		var rev []int
		for x := d; x != -1; x = parent[x] {
			rev = append(rev, x)
		}
		for a, b := 0, len(rev)-1; a < b; a, b = a+1, b-1 {
			rev[a], rev[b] = rev[b], rev[a]
		}
		out[i] = rev
	}
	return out, nil
}
