package core

import (
	"context"
	"fmt"
	"sort"

	"sftree/internal/graph"
	"sftree/internal/mod"
	"sftree/internal/nfv"
	"sftree/internal/steiner"
)

// SteinerAlgo selects the Steiner-tree routine used by stage one.
type SteinerAlgo int

const (
	// SteinerKMB is the Kou-Markowsky-Berman 2-approximation (default).
	SteinerKMB SteinerAlgo = iota + 1
	// SteinerTM is the Takahashi-Matsuyama path-growing heuristic.
	SteinerTM
	// SteinerMehlhorn is Mehlhorn's Voronoi-region 2-approximation,
	// cheaper per call than KMB on large sparse networks.
	SteinerMehlhorn
)

// Options tunes the two-stage algorithm. The zero value picks the
// paper's configuration: KMB trees, every server considered as the
// last-VNF host, and global-recompute move acceptance in stage two.
type Options struct {
	// Steiner selects the stage-one Steiner routine (default KMB).
	Steiner SteinerAlgo
	// MaxCandidateHosts, when positive, restricts stage one to the
	// cheapest-chain candidates instead of all servers (ablation).
	MaxCandidateHosts int
	// LocalAcceptance makes stage two accept moves on the paper's
	// local rule alone instead of verifying the recomputed global
	// cost (ablation). Capacity feasibility is still enforced.
	LocalAcceptance bool
	// MaxOPAPasses repeats the whole stage-two sweep (levels k..1)
	// until a pass accepts no move or the budget is exhausted,
	// implementing the paper's "repeat the above procedures until one
	// VNF cannot be deployed on multiple nodes". Zero means one pass.
	MaxOPAPasses int
	// NaiveRecost makes stage two price every candidate move by
	// cloning the state and reconstructing the full embedding, the
	// pre-ledger reference implementation, instead of the incremental
	// cost engine (ledger.go). Semantically identical and much slower;
	// kept for debugging and the engine-equivalence tests.
	NaiveRecost bool
	// AggressiveOPA is an extension beyond the paper: stage two also
	// considers dependent root-to-leaf paths (the paper discards them)
	// and probes the best candidate host even when the local rule is
	// not strictly satisfied. Every move is still gated on the
	// recomputed global cost, so the result can only improve; the
	// trade-off is more trial evaluations. Incompatible with
	// LocalAcceptance (which has no global gate) — ignored there.
	AggressiveOPA bool
	// Observer, when non-nil, receives structured phase events from
	// every stage of the solve (see observe.go). Nil costs one pointer
	// check per emission site and nothing else.
	Observer Observer
	// Ctx, when non-nil, bounds the solve: the algorithm polls it at
	// the APSP build, at stage boundaries, between stage-one candidate
	// hosts and at every stage-two pass and level boundary. On expiry
	// the solve stops where it is and returns the best feasible
	// embedding found so far (anytime semantics), with
	// Result.EarlyStop set; only when no feasible solution exists yet
	// does it fail, wrapping the context error. Nil means unbounded.
	Ctx context.Context
}

// ctxErr polls the deadline context without blocking; nil when the
// solve may continue.
func (o Options) ctxErr() error {
	if o.Ctx == nil {
		return nil
	}
	select {
	case <-o.Ctx.Done():
		return o.Ctx.Err()
	default:
		return nil
	}
}

func (o Options) opaPasses() int {
	if o.MaxOPAPasses <= 0 {
		return 1
	}
	return o.MaxOPAPasses
}

func (o Options) steiner() SteinerAlgo {
	if o.Steiner == 0 {
		return SteinerKMB
	}
	return o.Steiner
}

// StageStats reports how stage one reached its feasible solution.
type StageStats struct {
	CandidatesTried int
	Stage1Cost      float64
	LastHost        int
	// EarlyStop reports that the deadline context expired and the
	// candidate sweep stopped at the best feasible solution found.
	EarlyStop bool
}

// runMSA implements Algorithm 2: embed the SFC via the expanded MOD
// network, repair capacity violations, and connect the last VNF host
// to all destinations with a Steiner tree, trying every candidate
// host and keeping the cheapest feasible combination.
func runMSA(net *nfv.Network, task nfv.Task, opts Options) (*state, *StageStats, error) {
	if err := task.Validate(net); err != nil {
		return nil, nil, err
	}
	overlay, err := mod.Build(net, task.Source, task.Chain)
	if err != nil {
		return nil, nil, fmt.Errorf("core: stage one: %w", err)
	}
	sol := overlay.SolveSFC()
	metric := net.Metric()

	candidates := net.Servers()
	sort.Slice(candidates, func(a, b int) bool {
		return sol.CostTo(candidates[a]) < sol.CostTo(candidates[b])
	})
	if opts.MaxCandidateHosts > 0 && len(candidates) > opts.MaxCandidateHosts {
		candidates = candidates[:opts.MaxCandidateHosts]
	}

	var (
		bestState *state
		bestCost  = graph.Inf
		stats     StageStats
	)
	for _, w := range candidates {
		// Anytime semantics: once one feasible solution is in hand, an
		// expired deadline ends the sweep instead of trying every host.
		if bestState != nil && opts.ctxErr() != nil {
			stats.EarlyStop = true
			break
		}
		if sol.CostTo(w) == graph.Inf {
			continue
		}
		hosts := sol.HostsTo(w)
		if hosts == nil {
			continue
		}
		stats.CandidatesTried++
		hosts, ok := repairCapacity(net, task, hosts)
		if !ok {
			continue
		}
		chainCost := overlay.ChainCost(hosts)
		last := hosts[len(hosts)-1]

		tree, err := buildSteiner(net, metric, last, task.Destinations, opts.steiner())
		if err != nil {
			continue // some destination unreachable from this host
		}
		total := chainCost + tree.Cost
		if total >= bestCost {
			continue
		}
		st, err := stateFromSolution(net, task, hosts, tree)
		if err != nil {
			continue
		}
		bestCost = total
		bestState = st
		stats.LastHost = last
	}
	if bestState == nil {
		return nil, nil, fmt.Errorf("%w: no candidate last host admits a feasible solution", ErrNoFeasible)
	}
	stats.Stage1Cost = bestCost
	return bestState, &stats, nil
}

// BuildTails connects root to all destinations with the selected
// Steiner routine and returns the per-destination tree paths, the form
// OptimizeEmbedding consumes. Baseline strategies use it to finish
// their stage-one solutions the same way MSA does.
func BuildTails(net *nfv.Network, root int, dests []int, algo SteinerAlgo) ([][]int, float64, error) {
	tree, err := buildSteiner(net, net.Metric(), root, dests, algo)
	if err != nil {
		return nil, 0, err
	}
	paths, err := treePaths(net.Graph(), tree, root, dests)
	if err != nil {
		return nil, 0, err
	}
	return paths, tree.Cost, nil
}

// buildSteiner connects root to all destinations with the selected
// Steiner routine.
func buildSteiner(net *nfv.Network, metric *graph.Metric, root int, dests []int, algo SteinerAlgo) (steiner.Tree, error) {
	terminals := append([]int{root}, dests...)
	switch algo {
	case SteinerTM:
		return steiner.TakahashiMatsuyama(net.Graph(), metric, root, dests)
	case SteinerMehlhorn:
		return steiner.Mehlhorn(net.Graph(), terminals)
	default:
		return steiner.KMB(net.Graph(), metric, terminals)
	}
}

// RepairChainHosts exposes the stage-one capacity-repair rule so that
// external reference solvers sweep candidate hosts under the same
// feasibility policy. It returns the repaired host sequence and
// whether a feasible placement exists.
func RepairChainHosts(net *nfv.Network, task nfv.Task, hosts []int) ([]int, bool) {
	return repairCapacity(net, task, hosts)
}

// TailsFromEdges converts an explicit tree edge set into the
// per-destination root paths OptimizeEmbedding consumes.
func TailsFromEdges(net *nfv.Network, root int, dests []int, edges []int) ([][]int, error) {
	return treePaths(net.Graph(), steiner.Tree{Edges: edges}, root, dests)
}

// repairCapacity walks the chain hosts in order, reserving capacity
// for each new instance, and relocates any VNF whose host is full to
// the feasible node minimizing connection-plus-setup cost (the paper's
// adjustment rule). It reports failure when some VNF fits nowhere.
func repairCapacity(net *nfv.Network, task nfv.Task, hosts []int) ([]int, bool) {
	k := len(hosts)
	out := append([]int(nil), hosts...)
	metric := net.Metric()
	free := make(map[int]float64)
	for _, v := range net.Servers() {
		free[v] = net.FreeCapacity(v)
	}
	for j := 0; j < k; j++ {
		f := task.Chain[j]
		h := out[j]
		vnf, err := net.VNF(f)
		if err != nil {
			return nil, false
		}
		if net.IsDeployed(f, h) {
			continue // reuse, no capacity consumed
		}
		if free[h]+1e-9 >= vnf.Demand {
			free[h] -= vnf.Demand
			continue
		}
		// Relocate: choose the node minimizing link cost to both chain
		// neighbours plus setup cost, among nodes that can host f.
		prev := task.Source
		if j > 0 {
			prev = out[j-1]
		}
		best, bestCost := -1, graph.Inf
		for _, u := range net.Servers() {
			reuse := net.IsDeployed(f, u)
			if !reuse && free[u]+1e-9 < vnf.Demand {
				continue
			}
			c := metric.Dist[prev][u] + net.SetupCost(f, u)
			if j+1 < k {
				c += metric.Dist[u][out[j+1]]
			}
			if c < bestCost {
				best, bestCost = u, c
			}
		}
		if best == -1 {
			return nil, false
		}
		out[j] = best
		if !net.IsDeployed(f, best) {
			free[best] -= vnf.Demand
		}
	}
	return out, true
}

// stateFromSolution assembles the stage-one state: every destination
// is served by the single chain host sequence, and tails follow the
// Steiner tree from the last host.
func stateFromSolution(net *nfv.Network, task nfv.Task, hosts []int, tree steiner.Tree) (*state, error) {
	s := newState(net, task)
	k := task.K()
	last := hosts[k-1]
	paths, err := treePaths(net.Graph(), tree, last, task.Destinations)
	if err != nil {
		return nil, err
	}
	for di := range task.Destinations {
		for j := 1; j <= k; j++ {
			s.serve[di][j] = hosts[j-1]
		}
		s.tail[di] = paths[di]
	}
	return s, nil
}

// treePaths returns, for each destination, the unique path from root
// to it along the tree's edges.
func treePaths(g *graph.Graph, tree steiner.Tree, root int, dests []int) ([][]int, error) {
	parent := make(map[int]int)
	adj := make(map[int][]int)
	for _, id := range tree.Edges {
		e := g.Edge(id)
		adj[e.U] = append(adj[e.U], e.V)
		adj[e.V] = append(adj[e.V], e.U)
	}
	parent[root] = -1
	stack := []int{root}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range adj[u] {
			if _, seen := parent[v]; !seen {
				parent[v] = u
				stack = append(stack, v)
			}
		}
	}
	out := make([][]int, len(dests))
	for i, d := range dests {
		if d == root {
			out[i] = []int{root}
			continue
		}
		if _, ok := parent[d]; !ok {
			return nil, fmt.Errorf("%w: destination %d not in the Steiner tree", ErrNoFeasible, d)
		}
		var rev []int
		for x := d; x != -1; x = parent[x] {
			rev = append(rev, x)
		}
		for a, b := 0, len(rev)-1; a < b; a, b = a+1, b-1 {
			rev[a], rev[b] = rev[b], rev[a]
		}
		out[i] = rev
	}
	return out, nil
}
