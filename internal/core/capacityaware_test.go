package core

import (
	"errors"
	"testing"

	"sftree/internal/graph"
	"sftree/internal/nfv"
)

// bottleneckNet: the cheap plan traverses link A-C twice (once per
// stage, opposite directions) because f0 lives on C and f1 on A, while
// a pricier bypass C-B-A exists:
//
//	S=0 --1-- A=1 --1-- C=2 --1-- d=4
//	           \        /
//	            2------B=3
//
// Chain (f0 -> f1): stage 0 runs S-A-C (f0@C), stage 1 runs C-A (f1@A,
// cheapest) or C-B-A (bypass, cost 3), stage 2 runs A-C-d or A-B-C-d.
func bottleneckNet(t *testing.T) (*nfv.Network, nfv.Task) {
	t.Helper()
	g := graph.New(5)
	g.MustAddEdge(0, 1, 1) // S-A
	g.MustAddEdge(1, 2, 1) // A-C  (the link to bound)
	g.MustAddEdge(1, 3, 2) // A-B
	g.MustAddEdge(3, 2, 2) // B-C
	g.MustAddEdge(2, 4, 1) // C-d
	catalog := []nfv.VNF{{ID: 0, Name: "f0", Demand: 1}, {ID: 1, Name: "f1", Demand: 1}}
	net := nfv.NewNetwork(g, catalog)
	for _, v := range []int{1, 2, 3} {
		if err := net.SetServer(v, 2); err != nil {
			t.Fatal(err)
		}
		for f := 0; f < 2; f++ {
			if err := net.SetSetupCost(f, v, 50); err != nil { // discourage new instances
				t.Fatal(err)
			}
		}
	}
	if err := net.Deploy(0, 2); err != nil { // f0 on C
		t.Fatal(err)
	}
	if err := net.Deploy(1, 1); err != nil { // f1 on A
		t.Fatal(err)
	}
	task := nfv.Task{Source: 0, Destinations: []int{4}, Chain: nfv.SFC{0, 1}}
	return net, task
}

func TestCapacityAwareNoBoundsMatchesPlainSolve(t *testing.T) {
	net, task := bottleneckNet(t)
	plain, err := Solve(net, task, Options{})
	if err != nil {
		t.Fatal(err)
	}
	aware, err := SolveCapacityAware(net, task, Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if aware.FinalCost != plain.FinalCost {
		t.Errorf("without bounds: aware %v != plain %v", aware.FinalCost, plain.FinalCost)
	}
}

func TestCapacityAwareReroutesAroundBottleneck(t *testing.T) {
	net, task := bottleneckNet(t)
	base, err := Solve(net, task, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Unconstrained, the cheap plan crosses A-C at up to three stages
	// (stage 0 A->C, stage 1 C->A, stage 2 A->C). Bound it to 1 copy.
	if err := net.SetLinkCapacity(1, 2, 1); err != nil {
		t.Fatal(err)
	}
	if got := len(net.LinkViolations(base.Embedding)); got == 0 {
		t.Fatal("test premise broken: unconstrained plan should overload A-C")
	}
	aware, err := SolveCapacityAware(net, task, Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v := net.LinkViolations(aware.Embedding); len(v) != 0 {
		t.Fatalf("capacity-aware result still violates: %v", v)
	}
	if err := net.Validate(aware.Embedding); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	if aware.FinalCost < base.FinalCost-1e-9 {
		t.Errorf("constrained cost %v below unconstrained %v", aware.FinalCost, base.FinalCost)
	}
}

func TestCapacityAwareImpossibleBound(t *testing.T) {
	// A dead-end spur that must carry two copies (out to the instance
	// and back) with no alternative route: unsatisfiable.
	g := graph.New(3)
	g.MustAddEdge(0, 1, 1) // S - A
	g.MustAddEdge(1, 2, 1) // A - spur
	catalog := []nfv.VNF{{ID: 0, Name: "f0", Demand: 1}}
	net := nfv.NewNetwork(g, catalog)
	if err := net.SetServer(2, 1); err != nil {
		t.Fatal(err)
	}
	if err := net.Deploy(0, 2); err != nil {
		t.Fatal(err)
	}
	task := nfv.Task{Source: 0, Destinations: []int{0}, Chain: nfv.SFC{0}}
	if err := net.SetLinkCapacity(1, 2, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := SolveCapacityAware(net, task, Options{}, 3); !errors.Is(err, ErrLinkCapacity) {
		t.Errorf("got %v, want ErrLinkCapacity", err)
	}
}

func TestLinkCapacityAccessors(t *testing.T) {
	net, _ := bottleneckNet(t)
	if err := net.SetLinkCapacity(0, 9, 1); err == nil {
		t.Error("bounding a non-link accepted")
	}
	if err := net.SetLinkCapacity(1, 2, -1); err == nil {
		t.Error("negative bound accepted")
	}
	if err := net.SetLinkCapacity(2, 1, 3); err != nil { // reversed endpoints
		t.Fatal(err)
	}
	if got := net.LinkCapacity(1, 2); got != 3 {
		t.Errorf("capacity = %d, want 3", got)
	}
	if err := net.SetLinkCapacity(1, 2, 0); err != nil { // clear
		t.Fatal(err)
	}
	if got := net.LinkCapacity(2, 1); got != 0 {
		t.Errorf("cleared capacity = %d", got)
	}
}

func TestLinkCapacitySurvivesClone(t *testing.T) {
	net, _ := bottleneckNet(t)
	if err := net.SetLinkCapacity(1, 2, 2); err != nil {
		t.Fatal(err)
	}
	c := net.Clone()
	if got := c.LinkCapacity(1, 2); got != 2 {
		t.Errorf("clone capacity = %d, want 2", got)
	}
	if err := c.SetLinkCapacity(1, 2, 5); err != nil {
		t.Fatal(err)
	}
	if got := net.LinkCapacity(1, 2); got != 2 {
		t.Errorf("clone mutation leaked: %d", got)
	}
}
