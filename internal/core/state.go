// Package core implements the paper's two-stage approximation
// algorithm for optimal service function tree embedding: stage one
// (MSA, Algorithm 2) embeds the SFC over the expanded MOD network and
// connects the last VNF to all destinations with a Steiner tree; stage
// two (OPA, Algorithm 3) grows the SFC into an SFT by adding new VNF
// instances in inverted chain order wherever that lowers the global
// traffic delivery cost.
package core

import (
	"errors"
	"fmt"

	"sftree/internal/nfv"
)

var (
	// ErrNoFeasible reports that no feasible embedding exists (for
	// example, insufficient capacity anywhere for some chain VNF, or
	// destinations unreachable from every candidate host).
	ErrNoFeasible = errors.New("core: no feasible embedding")
)

// state is the mutable solution the two stages share: per destination,
// the node serving each chain level, plus the explicit last-stage
// route ("tail") from the level-k instance to the destination. Tails
// are kept as explicit paths because stage one routes them along a
// shared Steiner tree, which per-destination shortest paths would not
// reproduce.
type state struct {
	net  *nfv.Network
	task nfv.Task
	// serve[di][j] is the node serving chain level j for destination
	// di; serve[di][0] is always the source.
	serve [][]int
	// tail[di] is the node path from serve[di][k] to the destination,
	// inclusive of both endpoints.
	tail [][]int
	// led is the incremental cost engine (see ledger.go), attached
	// lazily by stage two. It always reflects serve/tail exactly; any
	// mutation outside applyMoveInc must drop or rebuild it.
	led *ledger
}

func newState(net *nfv.Network, task nfv.Task) *state {
	k := task.K()
	s := &state{
		net:   net,
		task:  task,
		serve: make([][]int, len(task.Destinations)),
		tail:  make([][]int, len(task.Destinations)),
	}
	for di := range task.Destinations {
		s.serve[di] = make([]int, k+1)
		s.serve[di][0] = task.Source
	}
	return s
}

func (s *state) clone() *state {
	// The ledger is not copied: a clone rebuilds it on first use.
	c := &state{net: s.net, task: s.task,
		serve: make([][]int, len(s.serve)),
		tail:  make([][]int, len(s.tail)),
	}
	for i := range s.serve {
		c.serve[i] = append([]int(nil), s.serve[i]...)
		c.tail[i] = append([]int(nil), s.tail[i]...)
	}
	return c
}

// placedInstances derives the set of in-use new instances from the
// serving assignment: one instance per distinct (vnf, node) pair that
// some destination is routed through and that is not pre-deployed.
// Orphaned instances (no subscribers) vanish automatically.
func (s *state) placedInstances() []nfv.Instance {
	k := s.task.K()
	seen := make(map[[2]int]bool)
	var out []nfv.Instance
	for di := range s.serve {
		for j := 1; j <= k; j++ {
			f := s.task.Chain[j-1]
			node := s.serve[di][j]
			key := [2]int{f, node}
			if seen[key] || s.net.IsDeployed(f, node) {
				continue
			}
			seen[key] = true
			out = append(out, nfv.Instance{VNF: f, Node: node, Level: j})
		}
	}
	return out
}

// usedCapacity returns per-node capacity consumed by the current new
// instances (pre-deployed demand is accounted by the Network itself).
func (s *state) usedCapacity() map[int]float64 {
	used := make(map[int]float64)
	for _, inst := range s.placedInstances() {
		vnf, err := s.net.VNF(inst.VNF)
		if err != nil {
			continue // unreachable: instances come from a validated task
		}
		used[inst.Node] += vnf.Demand
	}
	return used
}

// canHost reports whether chain VNF f can serve traffic from node v in
// the current state: it is pre-deployed, already placed new, or there
// is room to place it. With a ledger attached the answer comes from
// the ref-count and capacity accumulators in O(1); the naive fallback
// re-derives both from the serving assignment.
func (s *state) canHost(f, v int) bool {
	if !s.net.IsServer(v) {
		return false
	}
	if s.net.IsDeployed(f, v) {
		return true
	}
	if led := s.led; led != nil {
		if led.instRef[f*led.n+v] > 0 {
			return true
		}
		vnf, err := s.net.VNF(f)
		if err != nil {
			return false
		}
		return led.freeBase[v]-led.usedCap[v]+1e-9 >= vnf.Demand
	}
	for _, inst := range s.placedInstances() {
		if inst.VNF == f && inst.Node == v {
			return true
		}
	}
	vnf, err := s.net.VNF(f)
	if err != nil {
		return false
	}
	return s.net.FreeCapacity(v)-s.usedCapacity()[v]+1e-9 >= vnf.Demand
}

// embedding materializes the state into an nfv.Embedding: chain
// segments follow metric shortest paths, the last segment follows the
// stored tail.
func (s *state) embedding() (*nfv.Embedding, error) {
	k := s.task.K()
	metric := s.net.Metric()
	e := &nfv.Embedding{
		Task:         s.task.CloneTask(),
		NewInstances: s.placedInstances(),
		Walks:        make([]nfv.Walk, len(s.task.Destinations)),
	}
	for di := range s.task.Destinations {
		w := make(nfv.Walk, 0, k+1)
		for j := 0; j < k; j++ {
			p := metric.Path(s.serve[di][j], s.serve[di][j+1])
			if p == nil {
				return nil, fmt.Errorf("%w: no path %d->%d at level %d",
					ErrNoFeasible, s.serve[di][j], s.serve[di][j+1], j)
			}
			w = append(w, nfv.Segment{Level: j, Path: p})
		}
		if len(s.tail[di]) == 0 {
			return nil, fmt.Errorf("%w: missing tail for destination %d",
				ErrNoFeasible, s.task.Destinations[di])
		}
		w = append(w, nfv.Segment{Level: k, Path: append([]int(nil), s.tail[di]...)})
		e.Walks[di] = w
	}
	return e, nil
}

// cost evaluates the paper's objective for the current state.
func (s *state) cost() (float64, error) {
	e, err := s.embedding()
	if err != nil {
		return 0, err
	}
	return s.net.Cost(e).Total, nil
}
