package core

import "time"

// This file defines the solver's observability hook. An Observer set
// on Options receives structured phase events from the two-stage
// algorithm: stage-one tree construction, per-round OPA move
// proposals/acceptances/rejections with cost deltas, and the APSP
// (metric closure) build time. A nil Observer costs a single pointer
// check per emission site, so the hot path is unaffected when tracing
// is off; internal/obs provides ready-made consumers (span recorder,
// JSON-lines streamer, metrics-registry bridge).

// EventKind classifies solver-phase events.
type EventKind int

// Event kinds, in the order a fully observed Solve emits them.
const (
	// EventAPSPBuild reports the time to obtain the metric closure
	// (zero-ish when the network's APSP cache is already warm).
	EventAPSPBuild EventKind = iota + 1
	// EventStage1Start opens stage one (MSA, Algorithm 2).
	EventStage1Start
	// EventStage1End closes stage one; carries Cost, Candidates and
	// Duration.
	EventStage1End
	// EventStage2Start opens stage two (OPA, Algorithm 3); carries the
	// stage-one Cost.
	EventStage2Start
	// EventStage2End closes stage two; carries the final Cost, total
	// accepted Moves, the executed Pass count and Duration.
	EventStage2End
	// EventOPAPassStart opens one stage-two sweep (levels k..1).
	EventOPAPassStart
	// EventOPAPassEnd closes a sweep; carries its accepted Moves and
	// Duration.
	EventOPAPassEnd
	// EventMoveProposed reports a candidate re-homing move that passed
	// the local rule: level, connection node, current and candidate
	// hosts, group size and the global cost before the trial.
	EventMoveProposed
	// EventMoveAccepted reports a committed move; CostAfter < CostBefore
	// (except under LocalAcceptance, which skips the global gate).
	EventMoveAccepted
	// EventMoveRejected reports a reverted move; CostAfter is the trial
	// cost the global gate refused.
	EventMoveRejected
)

// String names the kind for logs and JSON streams.
func (k EventKind) String() string {
	switch k {
	case EventAPSPBuild:
		return "apsp_build"
	case EventStage1Start:
		return "stage1_start"
	case EventStage1End:
		return "stage1_end"
	case EventStage2Start:
		return "stage2_start"
	case EventStage2End:
		return "stage2_end"
	case EventOPAPassStart:
		return "opa_pass_start"
	case EventOPAPassEnd:
		return "opa_pass_end"
	case EventMoveProposed:
		return "move_proposed"
	case EventMoveAccepted:
		return "move_accepted"
	case EventMoveRejected:
		return "move_rejected"
	default:
		return "unknown"
	}
}

// Event is one structured solver-phase occurrence. Only the fields
// meaningful for the Kind are populated; the rest stay zero.
type Event struct {
	Kind EventKind
	// Pass is the 1-based stage-two sweep number (pass and move events).
	Pass int
	// Level is the chain level j being re-homed (move events).
	Level int
	// Conn is the connection node of the move's group (move events).
	Conn int
	// From and To are the current and candidate hosts (move events).
	From, To int
	// Group is the number of destinations re-homed together (move events).
	Group int
	// CostBefore and CostAfter bracket a move's global objective.
	CostBefore, CostAfter float64
	// Cost is the objective at a phase boundary (stage end/start events).
	Cost float64
	// Candidates is the number of last-host candidates stage one tried.
	Candidates int
	// Moves counts accepted moves (pass-end and stage-2-end events).
	Moves int
	// Duration is the wall time of the closed phase (end events).
	Duration time.Duration
	// Warm marks an EventAPSPBuild satisfied by the generation-valid
	// metric cache: no APSP ran and Duration is zero by construction.
	// The explicit flag lets consumers distinguish warm solves from a
	// cold build that merely measured fast.
	Warm bool
}

// Observer consumes solver-phase events. Implementations must be
// cheap — events fire inside the stage-two move loop — and safe for
// concurrent use when one Observer is shared across parallel solves.
type Observer interface {
	OnEvent(Event)
}

// emit sends e to the options' observer; the nil check is the entire
// disabled-tracing overhead.
func (o Options) emit(e Event) {
	if o.Observer != nil {
		o.Observer.OnEvent(e)
	}
}

// now returns the current time only when an observer will consume it,
// so untraced solves skip the clock reads entirely.
func (o Options) now() time.Time {
	if o.Observer == nil {
		return time.Time{}
	}
	return time.Now()
}
