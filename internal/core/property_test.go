package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: on random instances, the two-stage solver either reports
// infeasibility or returns a validated embedding whose recomputed cost
// matches, with stage two never above stage one.
func TestQuickTwoStageSoundness(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		net, task := randomInstance(rng, 8+rng.Intn(12), 1+rng.Intn(3), 1+rng.Intn(4))
		res, err := Solve(net, task, Options{})
		if errors.Is(err, ErrNoFeasible) {
			return true
		}
		if err != nil {
			return false
		}
		if net.Validate(res.Embedding) != nil {
			return false
		}
		if res.FinalCost > res.Stage1Cost+1e-9 {
			return false
		}
		return math.Abs(net.Cost(res.Embedding).Total-res.FinalCost) < 1e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: restricting the stage-one candidate host set never
// improves the final cost (the full sweep dominates truncations).
func TestQuickCandidateRestrictionMonotone(t *testing.T) {
	prop := func(seed int64, rawK uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		net, task := randomInstance(rng, 8+rng.Intn(10), 1+rng.Intn(2), 1+rng.Intn(3))
		full, err := Solve(net, task, Options{})
		if errors.Is(err, ErrNoFeasible) {
			return true
		}
		if err != nil {
			return false
		}
		limit := 1 + int(rawK)%4
		restricted, err := Solve(net, task, Options{MaxCandidateHosts: limit})
		if errors.Is(err, ErrNoFeasible) {
			return true // truncation can lose the only feasible host
		}
		if err != nil {
			return false
		}
		// Compare stage-one costs: the full sweep minimizes over a
		// superset of candidates. (Stage-two moves could in principle
		// cross over, so the guarantee is on stage one.)
		return full.Stage1Cost <= restricted.Stage1Cost+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property (Theorem 4): in the final SFT, the number of distinct
// instances serving chain level j never exceeds the number serving
// level j+1 — predecessor VNFs cannot out-branch their successors.
func TestQuickTheorem4LevelMonotonicity(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		net, task := randomInstance(rng, 10+rng.Intn(12), 2+rng.Intn(3), 2+rng.Intn(4))
		res, err := Solve(net, task, Options{})
		if errors.Is(err, ErrNoFeasible) {
			return true
		}
		if err != nil {
			return false
		}
		k := task.K()
		prev := 0
		for j := 1; j <= k; j++ {
			hosts := map[int]bool{}
			for di := range task.Destinations {
				hosts[res.Embedding.ServingNode(di, j)] = true
			}
			if j > 1 && len(hosts) < prev {
				return false
			}
			prev = len(hosts)
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: extra stage-two passes never increase the final cost
// (every accepted move strictly improves the global objective).
func TestQuickMultiPassOPAMonotone(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		net, task := randomInstance(rng, 10+rng.Intn(10), 2+rng.Intn(3), 2+rng.Intn(4))
		single, err := Solve(net, task, Options{})
		if errors.Is(err, ErrNoFeasible) {
			return true
		}
		if err != nil {
			return false
		}
		multi, err := Solve(net, task, Options{MaxOPAPasses: 4})
		if err != nil {
			return false
		}
		if net.Validate(multi.Embedding) != nil {
			return false
		}
		return multi.FinalCost <= single.FinalCost+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: the aggressive OPA extension never yields a worse (or
// invalid) result than the paper-faithful rule — every extra move it
// considers is gated on the recomputed global cost.
func TestQuickAggressiveOPANeverWorse(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		net, task := randomInstance(rng, 10+rng.Intn(10), 2+rng.Intn(3), 2+rng.Intn(4))
		paper, err := Solve(net, task, Options{})
		if errors.Is(err, ErrNoFeasible) {
			return true
		}
		if err != nil {
			return false
		}
		aggro, err := Solve(net, task, Options{AggressiveOPA: true})
		if err != nil {
			return false
		}
		if net.Validate(aggro.Embedding) != nil {
			return false
		}
		return aggro.FinalCost <= paper.FinalCost+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: solving the same instance twice is bit-for-bit
// deterministic.
func TestQuickDeterminism(t *testing.T) {
	prop := func(seed int64) bool {
		rng1 := rand.New(rand.NewSource(seed))
		net1, task1 := randomInstance(rng1, 10, 2, 3)
		rng2 := rand.New(rand.NewSource(seed))
		net2, task2 := randomInstance(rng2, 10, 2, 3)
		r1, err1 := Solve(net1, task1, Options{})
		r2, err2 := Solve(net2, task2, Options{})
		if (err1 == nil) != (err2 == nil) {
			return false
		}
		if err1 != nil {
			return true
		}
		return r1.FinalCost == r2.FinalCost && r1.MovesAccepted == r2.MovesAccepted
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
