package core

import (
	"fmt"
	"time"

	"sftree/internal/nfv"
)

// Result is the outcome of the two-stage algorithm.
type Result struct {
	// Embedding is the final, validated service function tree embedding.
	Embedding *nfv.Embedding
	// Stage1Cost is the traffic delivery cost after stage one (MSA).
	Stage1Cost float64
	// FinalCost is the traffic delivery cost after stage two (OPA);
	// always <= Stage1Cost.
	FinalCost float64
	// MovesAccepted counts the stage-two instance additions.
	MovesAccepted int
	// CandidatesTried counts the stage-one last-host candidates examined.
	CandidatesTried int
	// LastHost is the stage-one host of the final chain VNF.
	LastHost int
	// EarlyStop reports that Options.Ctx expired before the algorithm
	// ran to completion: the embedding is the best feasible solution
	// found by then (anytime semantics), valid but possibly short of
	// the unbounded result.
	EarlyStop bool
}

// Solve runs the full two-stage algorithm (MSA then OPA) and returns
// the resulting embedding, which is guaranteed to pass
// Network.Validate. The network is treated as read-only.
func Solve(net *nfv.Network, task nfv.Task, opts Options) (*Result, error) {
	if opts.Observer != nil {
		// A warm metric reports zero build time: the closure is cached
		// (and generation-valid), so this solve pays nothing for APSP.
		if net.MetricCached() {
			opts.emit(Event{Kind: EventAPSPBuild, Duration: 0, Warm: true})
		} else {
			t0 := time.Now()
			net.Metric()
			opts.emit(Event{Kind: EventAPSPBuild, Duration: time.Since(t0)})
		}
	}
	t1 := opts.now()
	opts.emit(Event{Kind: EventStage1Start})
	st, stats, err := runMSA(net, task, opts)
	if err != nil {
		return nil, err
	}
	stage1, err := st.cost()
	if err != nil {
		return nil, err
	}
	if opts.Observer != nil {
		opts.emit(Event{Kind: EventStage1End, Cost: stage1,
			Candidates: stats.CandidatesTried, Duration: time.Since(t1)})
	}
	t2 := opts.now()
	opts.emit(Event{Kind: EventStage2Start, Cost: stage1})
	moves, stopped, err := runOPA(st, opts)
	if err != nil {
		return nil, err
	}
	final, err := st.cost()
	if err != nil {
		return nil, err
	}
	if opts.Observer != nil {
		opts.emit(Event{Kind: EventStage2End, Cost: final, Moves: moves, Duration: time.Since(t2)})
	}
	emb, err := st.embedding()
	if err != nil {
		return nil, err
	}
	if err := net.Validate(emb); err != nil {
		return nil, fmt.Errorf("core: produced invalid embedding (bug): %w", err)
	}
	return &Result{
		Embedding:       emb,
		Stage1Cost:      stage1,
		FinalCost:       final,
		MovesAccepted:   moves,
		CandidatesTried: stats.CandidatesTried,
		LastHost:        stats.LastHost,
		EarlyStop:       stats.EarlyStop || stopped,
	}, nil
}

// SolveStageOne runs only MSA (Algorithm 2), for ablations and as the
// starting point that baseline strategies replace.
func SolveStageOne(net *nfv.Network, task nfv.Task, opts Options) (*Result, error) {
	t1 := opts.now()
	opts.emit(Event{Kind: EventStage1Start})
	st, stats, err := runMSA(net, task, opts)
	if err != nil {
		return nil, err
	}
	cost, err := st.cost()
	if err != nil {
		return nil, err
	}
	if opts.Observer != nil {
		opts.emit(Event{Kind: EventStage1End, Cost: cost,
			Candidates: stats.CandidatesTried, Duration: time.Since(t1)})
	}
	emb, err := st.embedding()
	if err != nil {
		return nil, err
	}
	if err := net.Validate(emb); err != nil {
		return nil, fmt.Errorf("core: produced invalid embedding (bug): %w", err)
	}
	return &Result{
		Embedding:       emb,
		Stage1Cost:      cost,
		FinalCost:       cost,
		CandidatesTried: stats.CandidatesTried,
		LastHost:        stats.LastHost,
		EarlyStop:       stats.EarlyStop,
	}, nil
}

// OptimizeEmbedding runs stage two (OPA) on an externally produced
// feasible solution expressed as chain hosts plus per-destination
// tails. Baseline strategies (SCA, RSA) share this optimization phase,
// matching the paper's "the optimization procedure at the second stage
// is the same" setup.
func OptimizeEmbedding(net *nfv.Network, task nfv.Task, hosts []int, tails [][]int, opts Options) (*Result, error) {
	if err := task.Validate(net); err != nil {
		return nil, err
	}
	if len(hosts) != task.K() {
		return nil, fmt.Errorf("%w: %d hosts for chain of length %d", ErrNoFeasible, len(hosts), task.K())
	}
	if len(tails) != len(task.Destinations) {
		return nil, fmt.Errorf("%w: %d tails for %d destinations", ErrNoFeasible, len(tails), len(task.Destinations))
	}
	st := newState(net, task)
	for di := range task.Destinations {
		for j := 1; j <= task.K(); j++ {
			st.serve[di][j] = hosts[j-1]
		}
		st.tail[di] = append([]int(nil), tails[di]...)
	}
	stage1, err := st.cost()
	if err != nil {
		return nil, err
	}
	t2 := opts.now()
	opts.emit(Event{Kind: EventStage2Start, Cost: stage1})
	moves, stopped, err := runOPA(st, opts)
	if err != nil {
		return nil, err
	}
	final, err := st.cost()
	if err != nil {
		return nil, err
	}
	if opts.Observer != nil {
		opts.emit(Event{Kind: EventStage2End, Cost: final, Moves: moves, Duration: time.Since(t2)})
	}
	emb, err := st.embedding()
	if err != nil {
		return nil, err
	}
	if err := net.Validate(emb); err != nil {
		return nil, fmt.Errorf("core: optimized embedding invalid: %w", err)
	}
	return &Result{
		Embedding:     emb,
		Stage1Cost:    stage1,
		FinalCost:     final,
		MovesAccepted: moves,
		LastHost:      hosts[len(hosts)-1],
		EarlyStop:     stopped,
	}, nil
}
