package core

import (
	"math"
	"testing"

	"sftree/internal/graph"
	"sftree/internal/nfv"
)

// TestOPASkipsDependentPaths pins the paper's dependent/independent
// classification: a branch that shares a physical edge with the
// embedded SFC is not re-homed even when a tempting instance exists.
//
//	S=0 -1- A=1 -1- B=2
//	                 |1
//	                d=3
//
// Chain (f0@A, f1@B): the SFC runs S-A-B; the only tail B-d1... make
// the tail overlap: destination at A itself (tail B->A uses the SFC
// edge A-B). An alternative f1 on C=4 (deployed, adjacent to A and d)
// would be cheaper locally, but the dependent rule must skip the move.
func TestOPASkipsDependentPaths(t *testing.T) {
	g := graph.New(5)
	g.MustAddEdge(0, 1, 1) // S-A
	g.MustAddEdge(1, 2, 1) // A-B
	g.MustAddEdge(2, 3, 5) // B-d (expensive leaf)
	g.MustAddEdge(1, 4, 1) // A-C
	g.MustAddEdge(4, 3, 1) // C-d
	catalog := []nfv.VNF{{ID: 0, Name: "f0", Demand: 1}, {ID: 1, Name: "f1", Demand: 1}}
	net := nfv.NewNetwork(g, catalog)
	for _, v := range []int{1, 2, 4} {
		if err := net.SetServer(v, 2); err != nil {
			t.Fatal(err)
		}
		for f := 0; f < 2; f++ {
			if err := net.SetSetupCost(f, v, 100); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, d := range []struct{ f, v int }{{0, 1}, {1, 2}, {1, 4}} {
		if err := net.Deploy(d.f, d.v); err != nil {
			t.Fatal(err)
		}
	}
	// Destination 3 only; the best stage-one plan routes via C already
	// (f1@C: chain cost 1+1, tail C-d 1 = 3) vs f1@B (1+1 chain, tail 5
	// = 7). So stage one picks C and there is nothing dependent. Force
	// the interesting case by removing C from stage-one consideration:
	// cap C to zero free capacity for *new* instances does not matter
	// (f1 deployed)... instead make A-C expensive so stage one prefers
	// B, then check OPA's classification on the B solution.
	task := nfv.Task{Source: 0, Destinations: []int{3}, Chain: nfv.SFC{0, 1}}
	res, err := Solve(net, task, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Whatever the winner, the result must validate and stage two must
	// not have increased cost; with a single destination the walk has a
	// single root-to-leaf path, and if it is dependent no move happens.
	if err := net.Validate(res.Embedding); err != nil {
		t.Fatal(err)
	}
	if res.FinalCost > res.Stage1Cost+1e-9 {
		t.Fatalf("stage two increased cost")
	}
	// Optimal here: f0@A, f1@C, route S-A-C-d = 3.
	if math.Abs(res.FinalCost-3) > 1e-9 {
		t.Errorf("final = %v, want 3", res.FinalCost)
	}
}

// TestClusterServedByOneInstance verifies that a destination cluster
// behind one junction ends up on a single shared instance with a
// shared distribution tree (Fig. 6's DS-set behaviour). Note a
// provable fact about the two-stage design: when *all* destinations
// form one group, any OPA improvement would already have been found by
// the stage-one host sweep (the move condition plus the sweep
// optimality contradict), so the shared placement here must come out
// of stage one directly — which is what the final assertion pins.
// Partial-group moves are exercised by TestWorkedExampleTwoStage.
func TestClusterServedByOneInstance(t *testing.T) {
	// S=0 - A=1 (f0) - B=2 (f1) ; leaf cluster behind x=3: d1=4, d2=5.
	// Bypass C=6 (f1 deployed) adjacent to A and x.
	g := graph.New(7)
	g.MustAddEdge(0, 1, 1)  // S-A
	g.MustAddEdge(1, 2, 1)  // A-B
	g.MustAddEdge(2, 3, 10) // B-x (expensive)
	g.MustAddEdge(3, 4, 1)  // x-d1
	g.MustAddEdge(3, 5, 1)  // x-d2
	g.MustAddEdge(1, 6, 1)  // A-C
	g.MustAddEdge(6, 3, 1)  // C-x
	catalog := []nfv.VNF{{ID: 0, Name: "f0", Demand: 1}, {ID: 1, Name: "f1", Demand: 1}}
	net := nfv.NewNetwork(g, catalog)
	for _, v := range []int{1, 2, 6} {
		if err := net.SetServer(v, 2); err != nil {
			t.Fatal(err)
		}
		for f := 0; f < 2; f++ {
			if err := net.SetSetupCost(f, v, 100); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, d := range []struct{ f, v int }{{0, 1}, {1, 2}, {1, 6}} {
		if err := net.Deploy(d.f, d.v); err != nil {
			t.Fatal(err)
		}
	}
	task := nfv.Task{Source: 0, Destinations: []int{4, 5}, Chain: nfv.SFC{0, 1}}
	res, err := Solve(net, task, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Optimal: f0@A, f1@C, shared tree C-x then x-d1, x-d2:
	// links 1 (S-A) + 1 (A-C) + 1 (C-x) + 1 + 1 = 5.
	if math.Abs(res.FinalCost-5) > 1e-9 {
		t.Fatalf("final = %v, want 5", res.FinalCost)
	}
	// Both destinations must be served by the same f1 instance at C(6).
	if res.Embedding.ServingNode(0, 2) != 6 || res.Embedding.ServingNode(1, 2) != 6 {
		t.Errorf("group did not move together: %d, %d",
			res.Embedding.ServingNode(0, 2), res.Embedding.ServingNode(1, 2))
	}
}
