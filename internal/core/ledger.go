package core

import (
	"fmt"
	"math"
	"sync/atomic"

	"sftree/internal/graph"
)

// journalGets counts move journals handed out by snapshot and
// journalNews the subset allocated fresh (per-ledger free list empty);
// gets-news journals were recycled. Process-global so the telemetry
// layer can report steady-state pool churn across every solve.
var journalGets, journalNews atomic.Int64

// JournalPoolStats reports the move-journal free-list traffic: total
// acquisitions and how many of them allocated a new journal.
func JournalPoolStats() (gets, news int64) {
	return journalGets.Load(), journalNews.Load()
}

// This file implements the incremental cost engine behind stage two.
//
// The naive evaluation path (state.cost) materializes a full
// nfv.Embedding — every metric path for every destination and level —
// and re-derives the placed-instance set per candidate move. The
// ledger instead mirrors the two components of objective (1a)
// incrementally:
//
//   - an instance ref-count per (vnf, node) pair, feeding a running
//     setup-cost sum and a per-node used-capacity array (so canHost
//     and instanceSetupCost are O(1));
//   - a ref-count per (stage, directed edge) pair, feeding a running
//     link-cost sum with exactly the multicast deduplication the cost
//     oracle applies.
//
// Both ref-count families live in flat arrays, not maps: instance
// slots are indexed vnf*n+node, edge slots level*arcs+arc where arc
// is the canonical CSR arc for the directed hop. Map hashing was the
// single largest line item in the move-evaluation profile; the flat
// layout removes it and lets a revert run as plain stores.
//
// A move touches only its group's segments, so applying it updates
// O(|group| * path length) counters instead of recosting the world.
// Every mutation is recorded in a journal; rejecting a move reverts
// the journal, restoring the running sums bit-for-bit from snapshots.
// Journals are pooled on the ledger (releaseJournal) so steady-state
// move evaluation allocates nothing. The naive path is preserved
// (Options.NaiveRecost, state.cost) and the two are asserted
// equivalent in equivalence_test.go.

// stageEdge identifies a (stage, directed edge) traversal that does
// not correspond to a graph edge; such walks are priced +Inf and kept
// in the ledger's overflow map, which is empty in normal operation.
type stageEdge struct {
	level int
	u, v  int
}

// ledger is the incremental mirror of objective (1a) for one state.
type ledger struct {
	metric *graph.Metric
	// csr is the substrate graph in CSR form; arc positions double as
	// canonical directed-edge ids, and csr.Cost prices traversals (the
	// cheapest parallel arc is chosen as canonical, so pricing matches
	// the cost oracle's cheapest-parallel-edge rule).
	csr  *graph.CSR
	arcs int
	n    int
	// edgeRef counts walk traversals per (stage, directed edge):
	// index level*arcs + arc, levels 0..k (k is the tail level).
	edgeRef []int32
	// badRef is the overflow for traversals with no underlying edge.
	badRef map[stageEdge]int
	// instRef counts (destination, level) subscriptions per new
	// instance, indexed vnf*n + node; pre-deployed instances are never
	// entered.
	instRef []int32
	// usedCap and freeBase cache per-node capacity state: freeBase is
	// the network's free capacity (constant while solving), usedCap
	// the demand consumed by current new instances.
	usedCap  []float64
	freeBase []float64
	setupSum float64
	linkSum  float64
	// brokenSegs counts segments with no usable route (missing metric
	// path or empty tail): the cost is undefined while any exist.
	brokenSegs int
	// infEdges counts referenced (stage, edge) pairs that are not
	// graph edges; the oracle prices such walks at +Inf.
	infEdges int
	// jrFree recycles journals across moves; see releaseJournal.
	jrFree []*journal
}

// journal records every ledger and state mutation of one move so it
// can be reverted exactly. Sums are restored from snapshots, so a
// revert is bit-for-bit, not arithmetically approximate.
type journal struct {
	serve    []journalServe
	tails    []journalTail
	edges    []journalRef
	insts    []journalRef
	bad      []journalBad
	caps     []journalCap
	setupSum float64
	linkSum  float64
	broken   int
	infEdges int
}

type journalServe struct{ di, j, old int }

type journalTail struct {
	di  int
	old []int
}

// journalRef restores one flat ref-count slot (edgeRef or instRef).
type journalRef struct{ idx, old int32 }

type journalBad struct {
	key stageEdge
	old int
}

type journalCap struct {
	node int
	old  float64
}

// reset truncates the journal for reuse, dropping tail references so
// pooled journals do not pin dead tail slices.
func (jr *journal) reset() {
	jr.serve = jr.serve[:0]
	for i := range jr.tails {
		jr.tails[i].old = nil
	}
	jr.tails = jr.tails[:0]
	jr.edges = jr.edges[:0]
	jr.insts = jr.insts[:0]
	jr.bad = jr.bad[:0]
	jr.caps = jr.caps[:0]
}

// ensureLedger builds the ledger from the current assignment if the
// state does not carry one yet.
func (s *state) ensureLedger() {
	if s.led != nil {
		return
	}
	metric := s.net.Metric()
	csr := s.net.Graph().CSR()
	n := s.net.NumNodes()
	k := s.task.K()
	led := &ledger{
		metric:   metric,
		csr:      csr,
		arcs:     csr.NumArcs(),
		n:        n,
		edgeRef:  make([]int32, (k+1)*csr.NumArcs()),
		badRef:   make(map[stageEdge]int),
		instRef:  make([]int32, s.net.CatalogSize()*n),
		usedCap:  make([]float64, n),
		freeBase: make([]float64, n),
	}
	for _, v := range s.net.ServerList() {
		led.freeBase[v] = s.net.FreeCapacity(v)
	}
	s.led = led
	for di := range s.serve {
		for j := 1; j <= k; j++ {
			s.ledgerAddInstance(s.task.Chain[j-1], s.serve[di][j], nil)
		}
		for j := 0; j < k; j++ {
			s.ledgerAddChainSeg(j, s.serve[di][j], s.serve[di][j+1], nil)
		}
		s.ledgerAddTail(di, nil)
	}
}

// dropLedger discards the incremental state; the next ensureLedger
// rebuilds it from scratch. Used after bulk rewrites (state cloning).
func (s *state) dropLedger() { s.led = nil }

// totalCost returns the ledger's view of objective (1a), mirroring
// state.cost: an error when some segment has no route at all, +Inf
// when a walk crosses a non-edge, the running sum otherwise.
func (s *state) totalCost() (float64, error) {
	s.ensureLedger()
	if s.led.brokenSegs > 0 {
		return 0, fmt.Errorf("%w: %d unroutable segments", ErrNoFeasible, s.led.brokenSegs)
	}
	if s.led.infEdges > 0 {
		return math.Inf(1), nil
	}
	return s.led.setupSum + s.led.linkSum, nil
}

// snapshot starts a journal for one move, reusing a pooled one when
// available. Callers that are done with a journal — after revert, or
// once an accepted move is final — should hand it back with
// releaseJournal so steady-state move evaluation allocates nothing.
func (s *state) snapshot() *journal {
	led := s.led
	var jr *journal
	journalGets.Add(1)
	if n := len(led.jrFree); n > 0 {
		jr = led.jrFree[n-1]
		led.jrFree = led.jrFree[:n-1]
		jr.reset()
	} else {
		journalNews.Add(1)
		jr = new(journal)
	}
	jr.setupSum = led.setupSum
	jr.linkSum = led.linkSum
	jr.broken = led.brokenSegs
	jr.infEdges = led.infEdges
	return jr
}

// releaseJournal returns jr to the ledger's free list. The journal
// must not be used (in particular, reverted) afterwards.
func (s *state) releaseJournal(jr *journal) {
	if s.led != nil {
		s.led.jrFree = append(s.led.jrFree, jr)
	}
}

// revert undoes every mutation recorded in jr, newest first, and
// restores the running sums from the snapshots.
func (s *state) revert(jr *journal) {
	led := s.led
	for i := len(jr.edges) - 1; i >= 0; i-- {
		led.edgeRef[jr.edges[i].idx] = jr.edges[i].old
	}
	for i := len(jr.insts) - 1; i >= 0; i-- {
		led.instRef[jr.insts[i].idx] = jr.insts[i].old
	}
	for i := len(jr.bad) - 1; i >= 0; i-- {
		e := jr.bad[i]
		if e.old == 0 {
			delete(led.badRef, e.key)
		} else {
			led.badRef[e.key] = e.old
		}
	}
	for i := len(jr.caps) - 1; i >= 0; i-- {
		led.usedCap[jr.caps[i].node] = jr.caps[i].old
	}
	for i := len(jr.serve) - 1; i >= 0; i-- {
		e := jr.serve[i]
		s.serve[e.di][e.j] = e.old
	}
	for i := len(jr.tails) - 1; i >= 0; i-- {
		s.tail[jr.tails[i].di] = jr.tails[i].old
	}
	led.setupSum = jr.setupSum
	led.linkSum = jr.linkSum
	led.brokenSegs = jr.broken
	led.infEdges = jr.infEdges
}

// findArc returns the canonical CSR arc for the directed hop u -> v —
// the cheapest parallel arc, earliest position winning ties — or -1
// when u-v is not a graph edge.
func (led *ledger) findArc(u, v int) int32 {
	c := led.csr
	best := int32(-1)
	bestCost := graph.Inf
	for p, end := c.Start[u], c.Start[u+1]; p < end; p++ {
		if int(c.To[p]) == v && c.Cost[p] < bestCost {
			best, bestCost = p, c.Cost[p]
		}
	}
	return best
}

// ledgerAddInstance subscribes one (destination, level) to the
// instance of f at node; the 0->1 transition prices its setup cost
// and reserves capacity. Pre-deployed instances cost nothing and are
// not tracked.
func (s *state) ledgerAddInstance(f, node int, jr *journal) {
	if s.net.IsDeployed(f, node) {
		return
	}
	led := s.led
	idx := int32(f*led.n + node)
	old := led.instRef[idx]
	if jr != nil {
		jr.insts = append(jr.insts, journalRef{idx, old})
	}
	led.instRef[idx] = old + 1
	if old == 0 {
		led.setupSum += s.net.SetupCost(f, node)
		if vnf, err := s.net.VNF(f); err == nil {
			if jr != nil {
				jr.caps = append(jr.caps, journalCap{node, led.usedCap[node]})
			}
			led.usedCap[node] += vnf.Demand
		}
	}
}

// ledgerRemoveInstance drops one subscription; the 1->0 transition
// releases the setup cost and the reserved capacity.
func (s *state) ledgerRemoveInstance(f, node int, jr *journal) {
	if s.net.IsDeployed(f, node) {
		return
	}
	led := s.led
	idx := int32(f*led.n + node)
	old := led.instRef[idx]
	if jr != nil {
		jr.insts = append(jr.insts, journalRef{idx, old})
	}
	led.instRef[idx] = old - 1
	if old == 1 {
		led.setupSum -= s.net.SetupCost(f, node)
		if vnf, err := s.net.VNF(f); err == nil {
			if jr != nil {
				jr.caps = append(jr.caps, journalCap{node, led.usedCap[node]})
			}
			led.usedCap[node] -= vnf.Demand
		}
	}
}

// ledgerAddEdge references one (stage, directed edge) traversal; the
// 0->1 transition adds its link cost (or marks an infinite walk).
func (s *state) ledgerAddEdge(level, u, v int, jr *journal) {
	led := s.led
	arc := led.findArc(u, v)
	if arc < 0 {
		key := stageEdge{level: level, u: u, v: v}
		old := led.badRef[key]
		if jr != nil {
			jr.bad = append(jr.bad, journalBad{key, old})
		}
		led.badRef[key] = old + 1
		if old == 0 {
			led.infEdges++
		}
		return
	}
	idx := int32(level)*int32(led.arcs) + arc
	old := led.edgeRef[idx]
	if jr != nil {
		jr.edges = append(jr.edges, journalRef{idx, old})
	}
	led.edgeRef[idx] = old + 1
	if old == 0 {
		led.linkSum += led.csr.Cost[arc]
	}
}

// ledgerRemoveEdge drops one traversal; the 1->0 transition releases
// its link cost.
func (s *state) ledgerRemoveEdge(level, u, v int, jr *journal) {
	led := s.led
	arc := led.findArc(u, v)
	if arc < 0 {
		key := stageEdge{level: level, u: u, v: v}
		old := led.badRef[key]
		if jr != nil {
			jr.bad = append(jr.bad, journalBad{key, old})
		}
		if old == 1 {
			delete(led.badRef, key)
			led.infEdges--
		} else {
			led.badRef[key] = old - 1
		}
		return
	}
	idx := int32(level)*int32(led.arcs) + arc
	old := led.edgeRef[idx]
	if jr != nil {
		jr.edges = append(jr.edges, journalRef{idx, old})
	}
	led.edgeRef[idx] = old - 1
	if old == 1 {
		led.linkSum -= led.csr.Cost[arc]
	}
}

// ledgerAddChainSeg references the metric shortest path from -> to at
// the given level; an unreachable pair marks the segment broken.
func (s *state) ledgerAddChainSeg(level, from, to int, jr *journal) {
	ok := s.led.metric.EachHop(from, to, func(x, y int) {
		s.ledgerAddEdge(level, x, y, jr)
	})
	if !ok {
		s.led.brokenSegs++
	}
}

// ledgerRemoveChainSeg releases the segment added by
// ledgerAddChainSeg for the same endpoints.
func (s *state) ledgerRemoveChainSeg(level, from, to int, jr *journal) {
	ok := s.led.metric.EachHop(from, to, func(x, y int) {
		s.ledgerRemoveEdge(level, x, y, jr)
	})
	if !ok {
		s.led.brokenSegs--
	}
}

// ledgerAddTail references destination di's current explicit tail at
// level k; an empty tail marks the segment broken.
func (s *state) ledgerAddTail(di int, jr *journal) {
	tail := s.tail[di]
	if len(tail) == 0 {
		s.led.brokenSegs++
		return
	}
	k := s.task.K()
	for i := 1; i < len(tail); i++ {
		s.ledgerAddEdge(k, tail[i-1], tail[i], jr)
	}
}

// ledgerRemoveTail releases destination di's current tail.
func (s *state) ledgerRemoveTail(di int, jr *journal) {
	tail := s.tail[di]
	if len(tail) == 0 {
		s.led.brokenSegs--
		return
	}
	k := s.task.K()
	for i := 1; i < len(tail); i++ {
		s.ledgerRemoveEdge(k, tail[i-1], tail[i], jr)
	}
}

// applyMoveInc performs applyMove against the live ledger and returns
// the journal that undoes it. Semantics match applyMove followed by a
// full recost: only the group's own segments change.
func (s *state) applyMoveInc(j int, grp connGroup, e int, metric *graph.Metric) *journal {
	s.ensureLedger()
	jr := s.snapshot()
	k := s.task.K()
	f := s.task.Chain[j-1]
	for _, di := range grp.members {
		old := s.serve[di][j]
		s.ledgerRemoveInstance(f, old, jr)
		s.ledgerRemoveChainSeg(j-1, s.serve[di][j-1], old, jr)
		if j < k {
			s.ledgerRemoveChainSeg(j, old, s.serve[di][j+1], jr)
		} else {
			s.ledgerRemoveTail(di, jr)
		}
		jr.serve = append(jr.serve, journalServe{di, j, old})
		s.serve[di][j] = e
		s.ledgerAddInstance(f, e, jr)
		s.ledgerAddChainSeg(j-1, s.serve[di][j-1], e, jr)
		if j < k {
			s.ledgerAddChainSeg(j, e, s.serve[di][j+1], jr)
		}
	}
	if j != k {
		return jr
	}
	// Last level: rewrite the explicit tails exactly as applyMove does
	// (new route e -> connection node -> old downstream suffix).
	head := metric.Path(e, grp.node)
	for _, di := range grp.members {
		old := s.tail[di]
		jr.tails = append(jr.tails, journalTail{di, old})
		idx := -1
		for i, v := range old {
			if v == grp.node {
				idx = i
				break
			}
		}
		if idx == -1 {
			s.tail[di] = metric.Path(e, s.task.Destinations[di])
		} else {
			nt := make([]int, 0, len(head)+len(old)-idx-1)
			nt = append(nt, head...)
			nt = append(nt, old[idx+1:]...)
			s.tail[di] = nt
		}
		s.ledgerAddTail(di, jr)
	}
	return jr
}
