package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: the incremental ledger and the naive full recomputation
// price the same states identically, across randomized topologies,
// chains, and arbitrary (even non-improving, non-OPA) move sequences.
// Reverting a move must restore the ledger's totals bit-for-bit.
func TestQuickIncrementalMatchesNaive(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		net, task := randomInstance(rng, 8+rng.Intn(15), 1+rng.Intn(4), 1+rng.Intn(5))
		st, _, err := runMSA(net, task, Options{})
		if err != nil {
			return errors.Is(err, ErrNoFeasible)
		}
		st.ensureLedger()
		metric := net.Metric()
		k := task.K()
		servers := net.Servers()
		for step := 0; step < 12; step++ {
			// canHost and instanceSetupCost must agree with the naive
			// derivation at every intermediate state.
			f := task.Chain[rng.Intn(k)]
			v := rng.Intn(net.NumNodes())
			led := st.led
			fastHost, fastSetup := st.canHost(f, v), st.instanceSetupCost(f, v)
			st.led = nil
			slowHost, slowSetup := st.canHost(f, v), st.instanceSetupCost(f, v)
			st.led = led
			if fastHost != slowHost || fastSetup != slowSetup {
				return false
			}

			// A random (not necessarily improving or even sensible)
			// group move: the engines must agree regardless.
			j := 1 + rng.Intn(k)
			var members []int
			for di := range task.Destinations {
				if rng.Intn(2) == 0 {
					members = append(members, di)
				}
			}
			if len(members) == 0 {
				members = []int{rng.Intn(len(task.Destinations))}
			}
			grp := connGroup{node: rng.Intn(net.NumNodes()), members: members}
			e := servers[rng.Intn(len(servers))]

			before, errBefore := st.totalCost()
			jr := st.applyMoveInc(j, grp, e, metric)
			incCost, incErr := st.totalCost()
			naiveCost, naiveErr := st.cost()
			if (incErr == nil) != (naiveErr == nil) {
				return false
			}
			if incErr == nil {
				if math.IsInf(naiveCost, 1) != math.IsInf(incCost, 1) {
					return false
				}
				if !math.IsInf(incCost, 1) && math.Abs(incCost-naiveCost) > 1e-6 {
					return false
				}
			}
			if rng.Intn(2) == 0 {
				st.revert(jr)
				after, errAfter := st.totalCost()
				if (errAfter == nil) != (errBefore == nil) {
					return false
				}
				if errAfter == nil && after != before {
					return false // revert must be exact, not approximate
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: the full two-stage solve is observationally identical under
// the incremental engine and the naive clone-and-recost reference, for
// every stage-two configuration.
func TestQuickSolveNaiveRecostEquivalence(t *testing.T) {
	prop := func(seed int64, mode uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		net, task := randomInstance(rng, 8+rng.Intn(14), 1+rng.Intn(3), 1+rng.Intn(4))
		opts := Options{}
		switch mode % 4 {
		case 1:
			opts.AggressiveOPA = true
		case 2:
			opts.MaxOPAPasses = 3
		case 3:
			opts.LocalAcceptance = true
		}
		naive := opts
		naive.NaiveRecost = true
		fast, errFast := Solve(net, task, opts)
		slow, errSlow := Solve(net, task, naive)
		if (errFast == nil) != (errSlow == nil) {
			return false
		}
		if errFast != nil {
			return errors.Is(errFast, ErrNoFeasible) && errors.Is(errSlow, ErrNoFeasible)
		}
		if fast.MovesAccepted != slow.MovesAccepted {
			return false
		}
		return math.Abs(fast.FinalCost-slow.FinalCost) < 1e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
