package core

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"sftree/internal/netgen"
)

// TestExpiredContextReturnsPromptly is the acceptance check for
// anytime solving: a context that is already expired at Solve time
// must still yield a valid embedding (the first feasible stage-one
// candidate) with the early-stop flag set, instead of running the full
// candidate sweep and stage two.
func TestExpiredContextReturnsPromptly(t *testing.T) {
	net, task := workedExample(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Solve(net, task, Options{Ctx: ctx, MaxOPAPasses: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !res.EarlyStop {
		t.Fatal("expired context did not set EarlyStop")
	}
	if res.CandidatesTried != 1 {
		t.Errorf("candidates tried = %d, want 1 (stop after the first feasible)", res.CandidatesTried)
	}
	if res.MovesAccepted != 0 {
		t.Errorf("moves accepted = %d, want 0 (stage two skipped)", res.MovesAccepted)
	}
	if err := net.Validate(res.Embedding); err != nil {
		t.Errorf("early-stopped embedding invalid: %v", err)
	}
}

// TestNilContextMatchesUnbounded asserts the zero options are
// untouched by the deadline machinery.
func TestNilContextMatchesUnbounded(t *testing.T) {
	net, task := workedExample(t)
	bounded, err := Solve(net, task, Options{Ctx: context.Background()})
	if err != nil {
		t.Fatal(err)
	}
	free, err := Solve(net, task, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if bounded.EarlyStop || free.EarlyStop {
		t.Fatal("unexpired contexts flagged EarlyStop")
	}
	if bounded.FinalCost != free.FinalCost || bounded.MovesAccepted != free.MovesAccepted {
		t.Fatalf("live context changed the result: %+v vs %+v", bounded, free)
	}
}

// TestDeadlineAnytimeOnGeneratedInstance runs a larger instance under
// a deadline that expires mid-solve and asserts the result is always a
// validated embedding no worse than stage one.
func TestDeadlineAnytimeOnGeneratedInstance(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	net, err := netgen.Generate(netgen.PaperConfig(60, 2), rng)
	if err != nil {
		t.Fatal(err)
	}
	task, err := netgen.GenerateTask(net, rng, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, timeout := range []time.Duration{time.Nanosecond, 500 * time.Microsecond, time.Second} {
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		res, err := Solve(net, task, Options{Ctx: ctx, MaxOPAPasses: 8})
		cancel()
		if err != nil {
			t.Fatalf("timeout %v: %v", timeout, err)
		}
		if err := net.Validate(res.Embedding); err != nil {
			t.Fatalf("timeout %v: invalid embedding: %v", timeout, err)
		}
		if res.FinalCost > res.Stage1Cost+1e-9 {
			t.Fatalf("timeout %v: final %v worse than stage one %v", timeout, res.FinalCost, res.Stage1Cost)
		}
	}
}

// TestStageOneEarlyStopFlag covers the SolveStageOne path.
func TestStageOneEarlyStopFlag(t *testing.T) {
	net, task := workedExample(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := SolveStageOne(net, task, Options{Ctx: ctx})
	if err != nil {
		t.Fatal(err)
	}
	if !res.EarlyStop {
		t.Fatal("expired context did not set EarlyStop on stage one")
	}
	if err := net.Validate(res.Embedding); err != nil {
		t.Errorf("embedding invalid: %v", err)
	}
}
