package core

import (
	"errors"
	"fmt"

	"sftree/internal/nfv"
)

// ErrLinkCapacity reports that no embedding satisfying the configured
// link copy bounds was found within the penalty-iteration budget.
var ErrLinkCapacity = errors.New("core: link capacities unsatisfiable within budget")

// DefaultCapacityRounds bounds the penalty iterations of
// SolveCapacityAware when the caller passes 0.
const DefaultCapacityRounds = 12

// SolveCapacityAware extends the two-stage algorithm with link copy
// bounds (an extension beyond the paper's model; see nfv.LinkViolations).
// It iterates a penalty method: solve, find overloaded links, multiply
// their costs on a reweighted shadow network, and re-solve until the
// embedding — re-priced and re-validated on the *original* network —
// carries no overload. Costs in the returned Result always refer to
// the original network.
func SolveCapacityAware(net *nfv.Network, task nfv.Task, opts Options, maxRounds int) (*Result, error) {
	if maxRounds <= 0 {
		maxRounds = DefaultCapacityRounds
	}
	penalty := make(map[[2]int]float64) // canonical pair -> multiplier
	shadow := net
	for round := 0; round < maxRounds; round++ {
		res, err := Solve(shadow, task, opts)
		if err != nil {
			return nil, err
		}
		// Re-price and re-check on the original network.
		if err := net.Validate(res.Embedding); err != nil {
			return nil, fmt.Errorf("core: capacity-aware revalidation: %w", err)
		}
		violations := net.LinkViolations(res.Embedding)
		if len(violations) == 0 {
			bd := net.Cost(res.Embedding)
			stage1 := bd.Total // stage-one split is meaningless across reweights
			return &Result{
				Embedding:       res.Embedding,
				Stage1Cost:      stage1,
				FinalCost:       bd.Total,
				MovesAccepted:   res.MovesAccepted,
				CandidatesTried: res.CandidatesTried,
				LastHost:        res.LastHost,
			}, nil
		}
		// Escalate penalties on the overloaded links.
		for _, v := range violations {
			key := [2]int{v.U, v.V}
			if key[0] > key[1] {
				key[0], key[1] = key[1], key[0]
			}
			if penalty[key] == 0 {
				penalty[key] = 2
			} else {
				penalty[key] *= 2
			}
		}
		shadow, err = net.ReweightedCopy(func(u, v int) float64 {
			key := [2]int{u, v}
			if key[0] > key[1] {
				key[0], key[1] = key[1], key[0]
			}
			if f, ok := penalty[key]; ok {
				return f
			}
			return 1
		})
		if err != nil {
			return nil, err
		}
	}
	return nil, fmt.Errorf("%w: after %d rounds", ErrLinkCapacity, maxRounds)
}
