package core

import (
	"math/rand"
	"testing"

	"sftree/internal/graph"
	"sftree/internal/mod"
	"sftree/internal/nfv"
)

func benchInstance(b *testing.B, n, k, nd int) (*nfv.Network, nfv.Task) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	net, task := randomInstance(rng, n, k, nd)
	net.Metric() // exclude APSP warm-up from every loop
	return net, task
}

func BenchmarkMSAStageOne100(b *testing.B) {
	net, task := benchInstance(b, 100, 5, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveStageOne(net, task, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTwoStage100(b *testing.B) {
	net, task := benchInstance(b, 100, 5, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(net, task, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTwoStage250LongChain(b *testing.B) {
	net, task := benchInstance(b, 250, 5, 25)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(net, task, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// opaBenchState builds a stage-one state on a mid-size instance so the
// stage-two benchmarks measure only the OPA machinery.
func opaBenchState(b *testing.B, n, k, nd int) (*nfv.Network, nfv.Task, *state) {
	b.Helper()
	net, task := benchInstance(b, n, k, nd)
	st, _, err := runMSA(net, task, Options{})
	if err != nil {
		b.Fatal(err)
	}
	return net, task, st
}

func BenchmarkOPAPass(b *testing.B) {
	_, _, st := opaBenchState(b, 100, 5, 10)
	opts := Options{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := st.clone()
		if _, err := runOPAPass(c, opts, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOPAPassNaive is the pre-ledger baseline: the same pass with
// clone-and-recost move evaluation. The OPAPass/OPAPassNaive ratio is
// the speedup the incremental engine buys.
func BenchmarkOPAPassNaive(b *testing.B) {
	_, _, st := opaBenchState(b, 100, 5, 10)
	opts := Options{NaiveRecost: true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := st.clone()
		if _, err := runOPAPassNaive(c, opts, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// deltaBenchMove picks one feasible last-level re-homing move on the
// benchmark instance so both delta-cost benchmarks price the same move.
func deltaBenchMove(b *testing.B, net *nfv.Network, task nfv.Task, st *state) (connGroup, int) {
	b.Helper()
	metric := net.Metric()
	k := task.K()
	groups := st.initialConnectionGroups(false)
	if len(groups) == 0 {
		b.Skip("no independent connection groups on this instance")
	}
	grp := groups[0]
	cur := st.serve[grp.members[0]][k]
	for _, u := range net.Servers() {
		if u != cur && st.canHost(task.Chain[k-1], u) && metric.Dist[grp.node][u] != graph.Inf {
			return grp, u
		}
	}
	b.Skip("no feasible alternative host")
	return connGroup{}, -1
}

// BenchmarkStateDeltaCost measures one incremental move evaluation:
// apply against the ledger, read the new total, revert.
func BenchmarkStateDeltaCost(b *testing.B) {
	net, task, st := opaBenchState(b, 100, 5, 10)
	st.ensureLedger()
	grp, e := deltaBenchMove(b, net, task, st)
	metric := net.Metric()
	k := task.K()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		jr := st.applyMoveInc(k, grp, e, metric)
		if _, err := st.totalCost(); err != nil {
			b.Fatal(err)
		}
		st.revert(jr)
	}
}

// BenchmarkStateDeltaCostNaive prices the same move the pre-ledger
// way: clone the state, apply, reconstruct the full embedding.
func BenchmarkStateDeltaCostNaive(b *testing.B) {
	net, task, st := opaBenchState(b, 100, 5, 10)
	grp, e := deltaBenchMove(b, net, task, st)
	metric := net.Metric()
	k := task.K()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		trial := st.clone()
		trial.applyMove(k, grp, e, metric)
		if _, err := trial.cost(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMODBuildAndSolve200(b *testing.B) {
	net, task := benchInstance(b, 200, 5, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		overlay, err := mod.Build(net, task.Source, task.Chain)
		if err != nil {
			b.Fatal(err)
		}
		overlay.SolveSFC()
	}
}
