package core

import (
	"math/rand"
	"testing"

	"sftree/internal/mod"
	"sftree/internal/nfv"
)

func benchInstance(b *testing.B, n, k, nd int) (*nfv.Network, nfv.Task) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	net, task := randomInstance(rng, n, k, nd)
	net.Metric() // exclude APSP warm-up from every loop
	return net, task
}

func BenchmarkMSAStageOne100(b *testing.B) {
	net, task := benchInstance(b, 100, 5, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveStageOne(net, task, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTwoStage100(b *testing.B) {
	net, task := benchInstance(b, 100, 5, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(net, task, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTwoStage250LongChain(b *testing.B) {
	net, task := benchInstance(b, 250, 5, 25)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(net, task, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMODBuildAndSolve200(b *testing.B) {
	net, task := benchInstance(b, 200, 5, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		overlay, err := mod.Build(net, task.Source, task.Chain)
		if err != nil {
			b.Fatal(err)
		}
		overlay.SolveSFC()
	}
}
