package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"sftree/internal/graph"
	"sftree/internal/nfv"
)

// workedExample builds the hand-verified SFT scenario used throughout
// this file:
//
//	S=0 --1-- A=1 --1-- B=2 --1-- d1=3
//	           |          \
//	           2           2.5
//	           |             \
//	          C=4 ----1---- d2=5
//
// Servers A, B, C (capacity 5). Chain (f1 -> f2). f1 deployed on A,
// f2 deployed on B and C; new setups cost 1 (f1) and 5 (f2).
//
// Stage one optimum: f1@A, f2@B, Steiner tree {B-d1, B-C, C-d2},
// total 6.5. Stage two re-homes d2 onto the pre-deployed f2@C
// (connection via A-C), dropping the B-C link: total 6.0.
func workedExample(t *testing.T) (*nfv.Network, nfv.Task) {
	t.Helper()
	g := graph.New(6)
	g.MustAddEdge(0, 1, 1)   // S-A
	g.MustAddEdge(1, 2, 1)   // A-B
	g.MustAddEdge(2, 3, 1)   // B-d1
	g.MustAddEdge(1, 4, 2)   // A-C
	g.MustAddEdge(4, 5, 1)   // C-d2
	g.MustAddEdge(2, 4, 2.5) // B-C
	catalog := []nfv.VNF{
		{ID: 0, Name: "f1", Demand: 1},
		{ID: 1, Name: "f2", Demand: 1},
	}
	net := nfv.NewNetwork(g, catalog)
	for _, v := range []int{1, 2, 4} {
		if err := net.SetServer(v, 5); err != nil {
			t.Fatal(err)
		}
		if err := net.SetSetupCost(0, v, 1); err != nil {
			t.Fatal(err)
		}
		if err := net.SetSetupCost(1, v, 5); err != nil {
			t.Fatal(err)
		}
	}
	for _, d := range []struct{ f, v int }{{0, 1}, {1, 2}, {1, 4}} {
		if err := net.Deploy(d.f, d.v); err != nil {
			t.Fatal(err)
		}
	}
	task := nfv.Task{Source: 0, Destinations: []int{3, 5}, Chain: nfv.SFC{0, 1}}
	return net, task
}

func TestWorkedExampleStageOne(t *testing.T) {
	net, task := workedExample(t)
	res, err := SolveStageOne(net, task, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Stage1Cost-6.5) > 1e-9 {
		t.Errorf("stage-one cost = %v, want 6.5", res.Stage1Cost)
	}
	if res.LastHost != 2 {
		t.Errorf("last host = %d, want 2 (B)", res.LastHost)
	}
	if err := net.Validate(res.Embedding); err != nil {
		t.Errorf("stage-one embedding invalid: %v", err)
	}
}

func TestWorkedExampleTwoStage(t *testing.T) {
	net, task := workedExample(t)
	res, err := Solve(net, task, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Stage1Cost-6.5) > 1e-9 {
		t.Errorf("stage-one cost = %v, want 6.5", res.Stage1Cost)
	}
	if math.Abs(res.FinalCost-6.0) > 1e-9 {
		t.Errorf("final cost = %v, want 6.0 (OPA re-homes d2 to f2@C)", res.FinalCost)
	}
	if res.MovesAccepted != 1 {
		t.Errorf("moves = %d, want 1", res.MovesAccepted)
	}
	if err := net.Validate(res.Embedding); err != nil {
		t.Errorf("final embedding invalid: %v", err)
	}
	if got := net.Cost(res.Embedding).Total; math.Abs(got-res.FinalCost) > 1e-9 {
		t.Errorf("reported cost %v != recomputed %v", res.FinalCost, got)
	}
	// d2 must now be served by the pre-deployed f2 on C (node 4).
	if got := res.Embedding.ServingNode(1, 2); got != 4 {
		t.Errorf("d2 level-2 host = %d, want 4 (C)", got)
	}
	// No new instances: everything was reused.
	if len(res.Embedding.NewInstances) != 0 {
		t.Errorf("new instances = %v, want none (all reused)", res.Embedding.NewInstances)
	}
}

// randomInstance builds a random connected network and task for
// property-style checks. All nodes are servers; capacities, setup
// costs and deployments are randomized.
func randomInstance(rng *rand.Rand, n, k, nd int) (*nfv.Network, nfv.Task) {
	g := graph.New(n)
	for v := 1; v < n; v++ {
		g.MustAddEdge(rng.Intn(v), v, 1+rng.Float64()*9)
	}
	for i := 0; i < n; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.MustAddEdge(u, v, 1+rng.Float64()*9)
		}
	}
	catalogSize := k + 2
	catalog := make([]nfv.VNF, catalogSize)
	for f := range catalog {
		catalog[f] = nfv.VNF{ID: f, Name: "f", Demand: 1}
	}
	net := nfv.NewNetwork(g, catalog)
	for v := 0; v < n; v++ {
		if err := net.SetServer(v, float64(1+rng.Intn(5))); err != nil {
			panic(err)
		}
		for f := range catalog {
			if err := net.SetSetupCost(f, v, rng.Float64()*8); err != nil {
				panic(err)
			}
		}
	}
	// Random pre-deployments respecting capacity.
	for i := 0; i < n; i++ {
		f, v := rng.Intn(catalogSize), rng.Intn(n)
		if !net.IsDeployed(f, v) && net.FreeCapacity(v) >= 1 {
			if err := net.Deploy(f, v); err != nil {
				panic(err)
			}
		}
	}
	perm := rng.Perm(n)
	task := nfv.Task{
		Source:       perm[0],
		Destinations: perm[1 : 1+nd],
		Chain:        make(nfv.SFC, k),
	}
	for j := range task.Chain {
		task.Chain[j] = j
	}
	return net, task
}

func TestSolveRandomInstancesInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 40; trial++ {
		n := 8 + rng.Intn(17) // 8..24 nodes
		k := 1 + rng.Intn(4)
		nd := 1 + rng.Intn(5)
		net, task := randomInstance(rng, n, k, nd)
		res, err := Solve(net, task, Options{})
		if errors.Is(err, ErrNoFeasible) {
			continue // tight random capacities can make instances infeasible
		}
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := net.Validate(res.Embedding); err != nil {
			t.Fatalf("trial %d: invalid embedding: %v", trial, err)
		}
		if res.FinalCost > res.Stage1Cost+1e-9 {
			t.Fatalf("trial %d: OPA increased cost %v -> %v", trial, res.Stage1Cost, res.FinalCost)
		}
		if got := net.Cost(res.Embedding).Total; math.Abs(got-res.FinalCost) > 1e-6 {
			t.Fatalf("trial %d: reported %v != recomputed %v", trial, res.FinalCost, got)
		}
	}
}

func TestSolveStageOneMatchesCostOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 20; trial++ {
		net, task := randomInstance(rng, 10+rng.Intn(10), 1+rng.Intn(3), 1+rng.Intn(4))
		res, err := SolveStageOne(net, task, Options{})
		if errors.Is(err, ErrNoFeasible) {
			continue
		}
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got := net.Cost(res.Embedding).Total; math.Abs(got-res.Stage1Cost) > 1e-6 {
			t.Fatalf("trial %d: stage-one cost %v != oracle %v", trial, res.Stage1Cost, got)
		}
	}
}

func TestSolveWithTakahashiMatsuyama(t *testing.T) {
	net, task := workedExample(t)
	res, err := Solve(net, task, Options{Steiner: SteinerTM})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Validate(res.Embedding); err != nil {
		t.Errorf("TM embedding invalid: %v", err)
	}
	// On this small instance TM and KMB agree.
	if math.Abs(res.FinalCost-6.0) > 1e-9 {
		t.Errorf("final cost with TM = %v, want 6.0", res.FinalCost)
	}
}

func TestSolveLocalAcceptanceStillValid(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 15; trial++ {
		net, task := randomInstance(rng, 10+rng.Intn(8), 1+rng.Intn(3), 1+rng.Intn(4))
		res, err := Solve(net, task, Options{LocalAcceptance: true})
		if errors.Is(err, ErrNoFeasible) {
			continue
		}
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := net.Validate(res.Embedding); err != nil {
			t.Fatalf("trial %d: invalid embedding under local acceptance: %v", trial, err)
		}
	}
}

func TestSolveCandidateHostLimit(t *testing.T) {
	net, task := workedExample(t)
	res, err := Solve(net, task, Options{MaxCandidateHosts: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.CandidatesTried != 1 {
		t.Errorf("candidates tried = %d, want 1", res.CandidatesTried)
	}
	if err := net.Validate(res.Embedding); err != nil {
		t.Errorf("invalid: %v", err)
	}
	full, err := Solve(net, task, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalCost < full.FinalCost-1e-9 {
		t.Errorf("restricted search beat full search: %v < %v", res.FinalCost, full.FinalCost)
	}
}

func TestSolveTightCapacityForcesRelocation(t *testing.T) {
	// Line S=0 - A=1 - B=2 - d=3; chain (f1,f2); A can host only one
	// instance and f1's setup is far cheaper on A. The repair step must
	// move one of the two VNFs elsewhere and the result must validate.
	g := graph.New(4)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(2, 3, 1)
	catalog := []nfv.VNF{{ID: 0, Name: "f1", Demand: 1}, {ID: 1, Name: "f2", Demand: 1}}
	net := nfv.NewNetwork(g, catalog)
	if err := net.SetServer(1, 1); err != nil {
		t.Fatal(err)
	}
	if err := net.SetServer(2, 1); err != nil {
		t.Fatal(err)
	}
	for _, v := range []int{1, 2} {
		if err := net.SetSetupCost(0, v, 1); err != nil {
			t.Fatal(err)
		}
		if err := net.SetSetupCost(1, v, 1); err != nil {
			t.Fatal(err)
		}
	}
	task := nfv.Task{Source: 0, Destinations: []int{3}, Chain: nfv.SFC{0, 1}}
	res, err := Solve(net, task, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Validate(res.Embedding); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	// Both instances cannot share a node: exactly one on A, one on B.
	if len(res.Embedding.NewInstances) != 2 {
		t.Fatalf("instances = %v", res.Embedding.NewInstances)
	}
	nodes := map[int]bool{}
	for _, inst := range res.Embedding.NewInstances {
		nodes[inst.Node] = true
	}
	if len(nodes) != 2 {
		t.Errorf("capacity violated: both instances on one node: %v", res.Embedding.NewInstances)
	}
}

func TestSolveInfeasibleCapacity(t *testing.T) {
	// Single server with capacity 1 but a 2-VNF chain: infeasible.
	g := graph.New(3)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	catalog := []nfv.VNF{{ID: 0, Name: "f1", Demand: 1}, {ID: 1, Name: "f2", Demand: 1}}
	net := nfv.NewNetwork(g, catalog)
	if err := net.SetServer(1, 1); err != nil {
		t.Fatal(err)
	}
	task := nfv.Task{Source: 0, Destinations: []int{2}, Chain: nfv.SFC{0, 1}}
	if _, err := Solve(net, task, Options{}); !errors.Is(err, ErrNoFeasible) {
		t.Errorf("got %v, want ErrNoFeasible", err)
	}
}

func TestSolveDisconnectedDestination(t *testing.T) {
	g := graph.New(4)
	g.MustAddEdge(0, 1, 1)
	// node 2,3 in a separate component
	g.MustAddEdge(2, 3, 1)
	net := nfv.NewNetwork(g, nfv.DefaultCatalog())
	if err := net.SetServer(1, 5); err != nil {
		t.Fatal(err)
	}
	task := nfv.Task{Source: 0, Destinations: []int{3}, Chain: nfv.SFC{0}}
	if _, err := Solve(net, task, Options{}); !errors.Is(err, ErrNoFeasible) {
		t.Errorf("got %v, want ErrNoFeasible", err)
	}
}

func TestSolveInvalidTask(t *testing.T) {
	net, _ := workedExample(t)
	bad := nfv.Task{Source: 0, Destinations: nil, Chain: nfv.SFC{0}}
	if _, err := Solve(net, bad, Options{}); !errors.Is(err, nfv.ErrInvalidTask) {
		t.Errorf("got %v, want ErrInvalidTask", err)
	}
}

func TestSolveDestinationEqualsSource(t *testing.T) {
	// The source may also be a destination; the walk loops out to the
	// chain and back.
	net, _ := workedExample(t)
	task := nfv.Task{Source: 0, Destinations: []int{0, 3}, Chain: nfv.SFC{0, 1}}
	res, err := Solve(net, task, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Validate(res.Embedding); err != nil {
		t.Errorf("invalid: %v", err)
	}
}

func TestSolveSingleDestinationReducesToSFC(t *testing.T) {
	// With one destination the SFT degenerates to an SFC; stage two
	// has no independent paths to optimize (destination is the only
	// leaf), so costs should match stage one.
	net, _ := workedExample(t)
	task := nfv.Task{Source: 0, Destinations: []int{3}, Chain: nfv.SFC{0, 1}}
	res, err := Solve(net, task, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Chain f1@A, f2@B then B-d1: cost 1+1+1 = 3 (all setups reused).
	if math.Abs(res.FinalCost-3) > 1e-9 {
		t.Errorf("final = %v, want 3", res.FinalCost)
	}
}

func TestOptimizeEmbeddingFromExternalSolution(t *testing.T) {
	net, task := workedExample(t)
	// Deliberately poor stage-one solution: f1@A, f2@B but route both
	// destinations through per-destination tails from B.
	metric := net.Metric()
	hosts := []int{1, 2}
	tails := [][]int{
		metric.Path(2, 3),
		metric.Path(2, 5),
	}
	res, err := OptimizeEmbedding(net, task, hosts, tails, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Validate(res.Embedding); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	if res.FinalCost > res.Stage1Cost+1e-9 {
		t.Errorf("OPA increased cost: %v -> %v", res.Stage1Cost, res.FinalCost)
	}
	if math.Abs(res.FinalCost-6.0) > 1e-9 {
		t.Errorf("final = %v, want 6.0", res.FinalCost)
	}
}

func TestOptimizeEmbeddingValidation(t *testing.T) {
	net, task := workedExample(t)
	if _, err := OptimizeEmbedding(net, task, []int{1}, [][]int{{2, 3}, {4, 5}}, Options{}); !errors.Is(err, ErrNoFeasible) {
		t.Errorf("short hosts: got %v", err)
	}
	if _, err := OptimizeEmbedding(net, task, []int{1, 2}, [][]int{{2, 3}}, Options{}); !errors.Is(err, ErrNoFeasible) {
		t.Errorf("short tails: got %v", err)
	}
}
