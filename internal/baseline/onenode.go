package baseline

import (
	"fmt"

	"sftree/internal/core"
	"sftree/internal/graph"
	"sftree/internal/nfv"
)

// OneNode implements the pseudo-multicast strategy of Xu et al.
// (ICDCS'17, the paper's reference [16]): the entire SFC is collapsed
// onto a single server node, sidestepping the ordering constraint.
// For every candidate node with enough free capacity for all
// not-yet-deployed chain VNFs, the cost is the source path plus setup
// plus a Steiner tree to the destinations; the cheapest candidate
// wins. The shared stage-two optimization then runs, so comparisons
// against MSA isolate the placement policy. The paper argues this
// collapsing assumption is impractical under multi-cloud chaining;
// quantitatively it also loses to true SFT embedding whenever no
// single node is both cheap to reach and cheap to deploy on.
func OneNode(net *nfv.Network, task nfv.Task, opts core.Options) (*core.Result, error) {
	if err := task.Validate(net); err != nil {
		return nil, err
	}
	metric := net.Metric()
	bestNode := -1
	bestCost := graph.Inf
	for _, v := range net.Servers() {
		if metric.Dist[task.Source][v] == graph.Inf {
			continue
		}
		var setup, demand float64
		for _, f := range task.Chain {
			vnf, err := net.VNF(f)
			if err != nil {
				return nil, err
			}
			if !net.IsDeployed(f, v) {
				setup += net.SetupCost(f, v)
				demand += vnf.Demand
			}
		}
		if demand > net.FreeCapacity(v)+1e-9 {
			continue
		}
		_, treeCost, err := core.BuildTails(net, v, task.Destinations, opts.Steiner)
		if err != nil {
			continue
		}
		cost := metric.Dist[task.Source][v] + setup + treeCost
		if cost < bestCost {
			bestNode, bestCost = v, cost
		}
	}
	if bestNode == -1 {
		return nil, fmt.Errorf("%w: no node can host the whole chain", ErrNoPlacement)
	}
	hosts := make([]int, task.K())
	for j := range hosts {
		hosts[j] = bestNode
	}
	return finish(net, task, hosts, opts)
}
