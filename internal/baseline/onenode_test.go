package baseline

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"sftree/internal/core"
	"sftree/internal/graph"
	"sftree/internal/nfv"
)

func TestOneNodeCollapsesChain(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	net, task := testNetwork(rng, 15, 3, 3)
	res, err := OneNode(net, task, core.Options{})
	if errors.Is(err, ErrNoPlacement) {
		t.Skip("no node can host the whole chain on this instance")
	}
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Validate(res.Embedding); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	// Before stage two, all chain levels share one host: check via the
	// first destination's serving nodes in the *stage-one* cost... the
	// final embedding may have been re-branched by OPA, so instead we
	// assert every new instance of the stage-one placement is colocated:
	// at minimum the level-1 host must serve level k too for some
	// destination when no moves were accepted.
	if res.MovesAccepted == 0 {
		h := res.Embedding.ServingNode(0, 1)
		for lvl := 2; lvl <= task.K(); lvl++ {
			if res.Embedding.ServingNode(0, lvl) != h {
				t.Errorf("level %d host %d != %d despite zero moves",
					lvl, res.Embedding.ServingNode(0, lvl), h)
			}
		}
	}
}

func TestOneNodeNeverBeatsMSAOnChainFriendlyInstance(t *testing.T) {
	// A line where the chain wants to spread along the path: collapsing
	// it onto one node forces either a detour or expensive setup.
	//
	//	S=0 -1- A=1 -1- B=2 -1- d=3; f0 deployed at A, f1 deployed at B.
	g := graph.New(4)
	for v := 1; v < 4; v++ {
		g.MustAddEdge(v-1, v, 1)
	}
	catalog := []nfv.VNF{{ID: 0, Name: "a", Demand: 1}, {ID: 1, Name: "b", Demand: 1}}
	net := nfv.NewNetwork(g, catalog)
	for _, v := range []int{1, 2} {
		if err := net.SetServer(v, 2); err != nil {
			t.Fatal(err)
		}
		for f := 0; f < 2; f++ {
			if err := net.SetSetupCost(f, v, 10); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := net.Deploy(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := net.Deploy(1, 2); err != nil {
		t.Fatal(err)
	}
	task := nfv.Task{Source: 0, Destinations: []int{3}, Chain: nfv.SFC{0, 1}}

	msa, err := core.Solve(net, task, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// MSA reuses both deployed instances along the path: cost 3.
	if math.Abs(msa.FinalCost-3) > 1e-9 {
		t.Fatalf("MSA = %v, want 3", msa.FinalCost)
	}
	one, err := OneNode(net, task, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Collapsing pays a 10-cost setup wherever it lands: strictly worse.
	if one.FinalCost <= msa.FinalCost {
		t.Errorf("OneNode %v unexpectedly beats spreading MSA %v", one.FinalCost, msa.FinalCost)
	}
}

func TestOneNodeCapacityInfeasible(t *testing.T) {
	g := graph.New(3)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	catalog := []nfv.VNF{{ID: 0, Name: "a", Demand: 1}, {ID: 1, Name: "b", Demand: 1}}
	net := nfv.NewNetwork(g, catalog)
	if err := net.SetServer(1, 1); err != nil { // fits one VNF, chain needs two
		t.Fatal(err)
	}
	task := nfv.Task{Source: 0, Destinations: []int{2}, Chain: nfv.SFC{0, 1}}
	if _, err := OneNode(net, task, core.Options{}); !errors.Is(err, ErrNoPlacement) {
		t.Errorf("got %v, want ErrNoPlacement", err)
	}
}

func TestOneNodeValidOnRandomInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for trial := 0; trial < 20; trial++ {
		net, task := testNetwork(rng, 12+rng.Intn(8), 1+rng.Intn(3), 1+rng.Intn(4))
		res, err := OneNode(net, task, core.Options{})
		if errors.Is(err, ErrNoPlacement) || errors.Is(err, core.ErrNoFeasible) {
			continue
		}
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := net.Validate(res.Embedding); err != nil {
			t.Fatalf("trial %d: invalid: %v", trial, err)
		}
	}
}
