// Package baseline implements the two benchmark strategies the paper
// compares MSA against (§V-A): SCA, a greedy minimum-set-cover
// placement that reuses as few nodes as possible, and RSA, a random
// placement. Both produce a stage-one feasible solution and then share
// the paper's stage-two optimization (OPA) via core.OptimizeEmbedding.
package baseline

import (
	"errors"
	"fmt"
	"math/rand"

	"sftree/internal/core"
	"sftree/internal/graph"
	"sftree/internal/nfv"
)

// ErrNoPlacement reports that a baseline could not place some chain
// VNF anywhere (no deployed instance and no free capacity).
var ErrNoPlacement = errors.New("baseline: no feasible placement")

// RSA implements the randomly-selecting algorithm: for every chain
// VNF, pick a random node among those with a deployed instance; if
// none exists, pick a random server with enough free capacity and
// deploy there. Chain hosts are then connected in order with shortest
// paths and the last host reaches all destinations through a Steiner
// tree, after which the shared stage-two optimization runs.
func RSA(net *nfv.Network, task nfv.Task, rng *rand.Rand, opts core.Options) (*core.Result, error) {
	if err := task.Validate(net); err != nil {
		return nil, err
	}
	free := freeCapacities(net)
	hosts := make([]int, task.K())
	for j, f := range task.Chain {
		vnf, err := net.VNF(f)
		if err != nil {
			return nil, err
		}
		if deployedNodes := nodesWithDeployed(net, f); len(deployedNodes) > 0 {
			hosts[j] = deployedNodes[rng.Intn(len(deployedNodes))]
			continue
		}
		candidates := serversWithCapacity(net, free, vnf.Demand)
		if len(candidates) == 0 {
			return nil, fmt.Errorf("%w: VNF %d", ErrNoPlacement, f)
		}
		pick := candidates[rng.Intn(len(candidates))]
		hosts[j] = pick
		free[pick] -= vnf.Demand
	}
	return finish(net, task, hosts, opts)
}

// SCA implements the minimum-set-cover algorithm: greedily choose the
// node whose deployed instances cover the most not-yet-covered chain
// VNFs until no node adds coverage; any chain VNF still uncovered is
// deployed on the feasible node nearest its predecessor's host.
func SCA(net *nfv.Network, task nfv.Task, opts core.Options) (*core.Result, error) {
	if err := task.Validate(net); err != nil {
		return nil, err
	}
	k := task.K()
	hosts := make([]int, k)
	for j := range hosts {
		hosts[j] = -1
	}
	uncovered := make(map[int]int, k) // vnf -> chain position
	for j, f := range task.Chain {
		uncovered[f] = j
	}

	// Greedy set cover over nodes' deployed chain VNFs.
	for len(uncovered) > 0 {
		bestNode, bestGain := -1, 0
		for _, v := range net.Servers() {
			gain := 0
			for f := range uncovered {
				if net.IsDeployed(f, v) {
					gain++
				}
			}
			if gain > bestGain || (gain == bestGain && gain > 0 && v < bestNode) {
				bestNode, bestGain = v, gain
			}
		}
		if bestGain == 0 {
			break
		}
		for f, j := range uncovered {
			if net.IsDeployed(f, bestNode) {
				hosts[j] = bestNode
				delete(uncovered, f)
			}
		}
	}

	// Deploy the rest: nearest feasible node to the predecessor.
	free := freeCapacities(net)
	metric := net.Metric()
	for j, f := range task.Chain {
		if hosts[j] != -1 {
			continue
		}
		vnf, err := net.VNF(f)
		if err != nil {
			return nil, err
		}
		prev := task.Source
		if j > 0 && hosts[j-1] != -1 {
			prev = hosts[j-1]
		}
		best, bestDist := -1, graph.Inf
		for _, v := range serversWithCapacity(net, free, vnf.Demand) {
			if d := metric.Dist[prev][v]; d < bestDist {
				best, bestDist = v, d
			}
		}
		if best == -1 {
			return nil, fmt.Errorf("%w: VNF %d", ErrNoPlacement, f)
		}
		hosts[j] = best
		free[best] -= vnf.Demand
	}
	return finish(net, task, hosts, opts)
}

// finish routes the last chain host to every destination and runs the
// shared stage-two optimization.
func finish(net *nfv.Network, task nfv.Task, hosts []int, opts core.Options) (*core.Result, error) {
	tails, _, err := core.BuildTails(net, hosts[len(hosts)-1], task.Destinations, opts.Steiner)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	return core.OptimizeEmbedding(net, task, hosts, tails, opts)
}

func freeCapacities(net *nfv.Network) map[int]float64 {
	free := make(map[int]float64)
	for _, v := range net.Servers() {
		free[v] = net.FreeCapacity(v)
	}
	return free
}

func nodesWithDeployed(net *nfv.Network, f int) []int {
	var out []int
	for _, v := range net.Servers() {
		if net.IsDeployed(f, v) {
			out = append(out, v)
		}
	}
	return out
}

func serversWithCapacity(net *nfv.Network, free map[int]float64, demand float64) []int {
	var out []int
	for _, v := range net.Servers() {
		if free[v]+1e-9 >= demand {
			out = append(out, v)
		}
	}
	return out
}
