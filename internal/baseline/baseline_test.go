package baseline

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"sftree/internal/core"
	"sftree/internal/graph"
	"sftree/internal/nfv"
)

// testNetwork builds a random connected instance with deployments.
func testNetwork(rng *rand.Rand, n, k, nd int) (*nfv.Network, nfv.Task) {
	g := graph.New(n)
	for v := 1; v < n; v++ {
		g.MustAddEdge(rng.Intn(v), v, 1+rng.Float64()*9)
	}
	for i := 0; i < n; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.MustAddEdge(u, v, 1+rng.Float64()*9)
		}
	}
	catalog := make([]nfv.VNF, k+3)
	for f := range catalog {
		catalog[f] = nfv.VNF{ID: f, Name: "f", Demand: 1}
	}
	net := nfv.NewNetwork(g, catalog)
	for v := 0; v < n; v++ {
		if err := net.SetServer(v, float64(2+rng.Intn(4))); err != nil {
			panic(err)
		}
		for f := range catalog {
			if err := net.SetSetupCost(f, v, 1+rng.Float64()*6); err != nil {
				panic(err)
			}
		}
	}
	for i := 0; i < n/2; i++ {
		f, v := rng.Intn(len(catalog)), rng.Intn(n)
		if !net.IsDeployed(f, v) && net.FreeCapacity(v) >= 1 {
			if err := net.Deploy(f, v); err != nil {
				panic(err)
			}
		}
	}
	perm := rng.Perm(n)
	task := nfv.Task{Source: perm[0], Destinations: perm[1 : 1+nd], Chain: make(nfv.SFC, k)}
	for j := range task.Chain {
		task.Chain[j] = j
	}
	return net, task
}

func TestRSAProducesValidEmbeddings(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 30; trial++ {
		net, task := testNetwork(rng, 10+rng.Intn(10), 1+rng.Intn(4), 1+rng.Intn(4))
		res, err := RSA(net, task, rng, core.Options{})
		if errors.Is(err, ErrNoPlacement) || errors.Is(err, core.ErrNoFeasible) {
			continue
		}
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := net.Validate(res.Embedding); err != nil {
			t.Fatalf("trial %d: invalid: %v", trial, err)
		}
		if res.FinalCost > res.Stage1Cost+1e-9 {
			t.Fatalf("trial %d: OPA increased cost", trial)
		}
	}
}

func TestSCAProducesValidEmbeddings(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 30; trial++ {
		net, task := testNetwork(rng, 10+rng.Intn(10), 1+rng.Intn(4), 1+rng.Intn(4))
		res, err := SCA(net, task, core.Options{})
		if errors.Is(err, ErrNoPlacement) || errors.Is(err, core.ErrNoFeasible) {
			continue
		}
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := net.Validate(res.Embedding); err != nil {
			t.Fatalf("trial %d: invalid: %v", trial, err)
		}
	}
}

func TestSCAReusesDeployedInstances(t *testing.T) {
	// Chain (f0, f1); both deployed on node 2. SCA must host the whole
	// chain there (maximum coverage, minimum nodes) with zero setup.
	g := graph.New(4)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(2, 3, 1)
	catalog := []nfv.VNF{{ID: 0, Name: "a", Demand: 1}, {ID: 1, Name: "b", Demand: 1}}
	net := nfv.NewNetwork(g, catalog)
	for _, v := range []int{1, 2} {
		if err := net.SetServer(v, 3); err != nil {
			t.Fatal(err)
		}
		for f := 0; f < 2; f++ {
			if err := net.SetSetupCost(f, v, 10); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := net.Deploy(0, 2); err != nil {
		t.Fatal(err)
	}
	if err := net.Deploy(1, 2); err != nil {
		t.Fatal(err)
	}
	task := nfv.Task{Source: 0, Destinations: []int{3}, Chain: nfv.SFC{0, 1}}
	res, err := SCA(net, task, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Embedding.NewInstances) != 0 {
		t.Errorf("SCA deployed new instances %v despite full coverage on node 2",
			res.Embedding.NewInstances)
	}
	// Cost: S->2 (2 hops) at level 0..1 plus 2->3: chain 0-1-2 at level
	// 0, nothing at level 1 (colocated), 2-3 at level 2 = 3.
	if math.Abs(res.FinalCost-3) > 1e-9 {
		t.Errorf("cost = %v, want 3", res.FinalCost)
	}
}

func TestSCADeploysNearPredecessor(t *testing.T) {
	// Nothing deployed: SCA deploys each VNF on the feasible node
	// nearest its predecessor, here the source-adjacent server.
	g := graph.New(4)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 5)
	g.MustAddEdge(2, 3, 1)
	catalog := []nfv.VNF{{ID: 0, Name: "a", Demand: 1}}
	net := nfv.NewNetwork(g, catalog)
	for _, v := range []int{1, 2} {
		if err := net.SetServer(v, 3); err != nil {
			t.Fatal(err)
		}
		if err := net.SetSetupCost(0, v, 1); err != nil {
			t.Fatal(err)
		}
	}
	task := nfv.Task{Source: 0, Destinations: []int{3}, Chain: nfv.SFC{0}}
	res, err := SCA(net, task, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Embedding.NewInstances) != 1 || res.Embedding.NewInstances[0].Node != 1 {
		t.Errorf("instances = %v, want one on node 1", res.Embedding.NewInstances)
	}
}

func TestRSADeterministicWithSeed(t *testing.T) {
	rngA := rand.New(rand.NewSource(99))
	netA, taskA := testNetwork(rngA, 15, 3, 3)
	resA, errA := RSA(netA, taskA, rngA, core.Options{})

	rngB := rand.New(rand.NewSource(99))
	netB, taskB := testNetwork(rngB, 15, 3, 3)
	resB, errB := RSA(netB, taskB, rngB, core.Options{})

	if (errA == nil) != (errB == nil) {
		t.Fatalf("determinism: errA=%v errB=%v", errA, errB)
	}
	if errA == nil && math.Abs(resA.FinalCost-resB.FinalCost) > 1e-12 {
		t.Errorf("same seed, different cost: %v vs %v", resA.FinalCost, resB.FinalCost)
	}
}

func TestRSANoCapacityAnywhere(t *testing.T) {
	g := graph.New(2)
	g.MustAddEdge(0, 1, 1)
	net := nfv.NewNetwork(g, nfv.DefaultCatalog())
	if err := net.SetServer(1, 0); err != nil { // zero capacity
		t.Fatal(err)
	}
	task := nfv.Task{Source: 0, Destinations: []int{1}, Chain: nfv.SFC{0}}
	if _, err := RSA(net, task, rand.New(rand.NewSource(1)), core.Options{}); !errors.Is(err, ErrNoPlacement) {
		t.Errorf("got %v, want ErrNoPlacement", err)
	}
	if _, err := SCA(net, task, core.Options{}); !errors.Is(err, ErrNoPlacement) {
		t.Errorf("SCA: got %v, want ErrNoPlacement", err)
	}
}

func TestBaselinesNeverBeatTheirOwnStageOne(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 20; trial++ {
		net, task := testNetwork(rng, 12, 2, 3)
		res, err := SCA(net, task, core.Options{})
		if err != nil {
			continue
		}
		if res.FinalCost > res.Stage1Cost+1e-9 {
			t.Fatalf("trial %d: SCA stage two increased cost %v -> %v",
				trial, res.Stage1Cost, res.FinalCost)
		}
	}
}
