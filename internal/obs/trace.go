package obs

import (
	"encoding/json"
	"net/http"
	"sync"
	"time"

	"sftree/internal/core"
)

// Trace is one completed, request-scoped solver run: the span tree the
// SpanRecorder rebuilt, stamped with the originating request ID and
// the run-level attributes the serving path cares about. It is the
// unit /debug/traces serves and cmd/sfttrace consumes.
type Trace struct {
	// RequestID is the X-Request-ID of the originating HTTP request
	// (empty for runs outside a request, e.g. fault repairs driven by
	// the chaos harness).
	RequestID string `json:"request_id,omitempty"`
	// Op names the serving-path operation: "solve" (stateless),
	// "admit" (session admission), "repair" (fault-repair re-solve).
	Op string `json:"op"`
	// Rung is the repair-ladder rung for Op=="repair" ("patch",
	// "reembed"); empty otherwise.
	Rung string `json:"rung,omitempty"`
	// Session is the affected session ID for repair traces; -1 when
	// not applicable (stateless solves, failed admissions).
	Session int `json:"session"`
	// Warm reports the solve ran on a cached metric closure (no APSP
	// build); EarlyStop that the deadline expired mid-solve.
	Warm      bool `json:"warm"`
	EarlyStop bool `json:"early_stop,omitempty"`
	// Parallelism is the stage-one worker setting the solve ran with.
	Parallelism int `json:"parallelism"`
	// Retries counts solve reruns forced by commit conflicts: for
	// admissions, how many times a concurrent commit invalidated the
	// optimistic solve before this trace's spans were committed (0 on
	// the uncontended path).
	Retries int `json:"retries,omitempty"`
	// Start and DurationNs bracket the run's wall time.
	Start      time.Time `json:"start"`
	DurationNs int64     `json:"duration_ns"`
	// Err carries the solver error for failed runs (rejections).
	Err string `json:"error,omitempty"`
	// Spans is the solver phase tree (stage1/stage2/opa passes/moves),
	// every node of which belongs to this request.
	Spans []*Span `json:"spans,omitempty"`
}

// TraceBuffer is a bounded ring of recent traces: writers never block
// and never grow memory past the capacity — when full, the oldest
// trace is dropped and counted. Safe for concurrent use.
type TraceBuffer struct {
	mu      sync.Mutex
	buf     []Trace
	next    int // ring write cursor
	full    bool
	added   int64
	dropped int64
}

// DefaultTraceCap is the ring capacity NewTraceBuffer(0) uses.
const DefaultTraceCap = 256

// NewTraceBuffer returns a ring holding the most recent capacity
// traces (0 means DefaultTraceCap).
func NewTraceBuffer(capacity int) *TraceBuffer {
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	return &TraceBuffer{buf: make([]Trace, capacity)}
}

// Add appends one trace, evicting the oldest when the ring is full.
func (b *TraceBuffer) Add(t Trace) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.full {
		b.dropped++
	}
	b.buf[b.next] = t
	b.next = (b.next + 1) % len(b.buf)
	if b.next == 0 && !b.full {
		b.full = true
	}
	b.added++
}

// Len reports how many traces the ring currently holds.
func (b *TraceBuffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.full {
		return len(b.buf)
	}
	return b.next
}

// Stats reports lifetime totals: traces added and traces evicted to
// make room.
func (b *TraceBuffer) Stats() (added, dropped int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.added, b.dropped
}

// Snapshot returns the buffered traces oldest-first.
func (b *TraceBuffer) Snapshot() []Trace {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.full {
		return append([]Trace(nil), b.buf[:b.next]...)
	}
	out := make([]Trace, 0, len(b.buf))
	out = append(out, b.buf[b.next:]...)
	out = append(out, b.buf[:b.next]...)
	return out
}

// traceDoc is the JSON document GET /debug/traces serves.
type traceDoc struct {
	Capacity int     `json:"capacity"`
	Added    int64   `json:"added"`
	Dropped  int64   `json:"dropped"`
	Traces   []Trace `json:"traces"`
}

// Handler serves the ring's contents as indented JSON, oldest trace
// first (GET/HEAD only).
func (b *TraceBuffer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, `{"error":"method not allowed"}`, http.StatusMethodNotAllowed)
			return
		}
		added, dropped := b.Stats()
		doc := traceDoc{Capacity: cap(b.buf), Added: added, Dropped: dropped, Traces: b.Snapshot()}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(doc)
	})
}

// StartTrace begins one request-scoped solver run: it returns a fresh
// SpanRecorder to tee into core.Options.Observer and a finish function
// that folds the recorded events plus the outcome into a Trace and
// adds it to the buffer. A nil *TraceBuffer yields a nil recorder and
// a no-op finish, so call sites stay unconditional:
//
//	rec, finish := buf.StartTrace("solve", requestID)
//	opts.Observer = obs.Tee(opts.Observer, rec)
//	res, err := core.Solve(...)
//	finish(opts.Parallelism, res, err)
func (b *TraceBuffer) StartTrace(op, requestID string) (*SpanRecorder, func(parallelism int, res *core.Result, err error)) {
	if b == nil {
		return nil, func(int, *core.Result, error) {}
	}
	rec := &SpanRecorder{}
	start := time.Now()
	return rec, func(parallelism int, res *core.Result, err error) {
		t := Trace{
			Op:          op,
			RequestID:   requestID,
			Session:     -1,
			Parallelism: parallelism,
			Start:       start,
			DurationNs:  time.Since(start).Nanoseconds(),
			Warm:        rec.Breakdown().Warm,
			Spans:       rec.Spans(),
		}
		if res != nil {
			t.EarlyStop = res.EarlyStop
		}
		if err != nil {
			t.Err = err.Error()
		}
		b.Add(t)
	}
}
