package obs

import (
	"fmt"
	"sync"
	"testing"

	"sftree/internal/core"
)

// TestConcurrentObserverFanout hammers the shared metrics bridge and a
// shared trace ring from many concurrent solves (run under -race in
// the obs gate). Every solve tees the one registry-backed observer
// with its own SpanRecorder; afterwards the registry totals must equal
// the sum of the per-solve recordings exactly — any span loss or
// double-count in the fan-out shows up as a mismatch.
func TestConcurrentObserverFanout(t *testing.T) {
	for _, par := range []int{2, 8} {
		t.Run(fmt.Sprintf("parallelism=%d", par), func(t *testing.T) {
			net, task := obsInstance(t)
			// The lazy metric cache is not goroutine-safe; warm it before
			// sharing the network across solvers (see Network.Metric docs).
			net.Metric()

			reg := NewRegistry()
			bridge := NewMetricsObserver(reg)
			ring := NewTraceBuffer(0)

			const solves = 24
			recs := make([]*SpanRecorder, solves)
			var wg sync.WaitGroup
			for i := 0; i < solves; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					rec, finish := ring.StartTrace("solve", fmt.Sprintf("req-%d", i))
					res, err := core.Solve(net, task, core.Options{
						Observer:    Tee(bridge, rec),
						Parallelism: par,
					})
					finish(par, res, err)
					if err != nil {
						t.Error(err)
					}
					recs[i] = rec
				}(i)
			}
			wg.Wait()

			snap := reg.Snapshot()
			if got := snap.Counters["solver_solves_total"]; got != solves {
				t.Errorf("solver_solves_total = %d, want %d", got, solves)
			}
			for _, h := range []string{"solver_apsp_ms", "solver_stage1_ms", "solver_stage2_ms"} {
				if got := snap.Histograms[h].Count; got != solves {
					t.Errorf("%s count = %d, want %d", h, got, solves)
				}
			}
			proposed := snap.Counters["solver_moves_proposed_total"]
			accepted := snap.Counters["solver_moves_accepted_total"]
			rejected := snap.Counters["solver_moves_rejected_total"]
			if proposed != accepted+rejected {
				t.Errorf("move funnel leaks: proposed %d != accepted %d + rejected %d",
					proposed, accepted, rejected)
			}

			// The bridge's totals must be exactly the sum of what each
			// solve's private recorder saw: nothing lost, nothing counted
			// twice across the Tee.
			var sumProposed, sumAccepted, sumRejected, sumPasses int64
			for i, rec := range recs {
				b := rec.Breakdown()
				sumProposed += int64(b.MovesProposed)
				sumAccepted += int64(b.MovesAccepted)
				sumRejected += int64(b.MovesRejected)
				sumPasses += int64(b.OPAPasses)
				ends := 0
				for _, e := range rec.Events() {
					if e.Kind == core.EventStage2End {
						ends++
					}
				}
				if ends != 1 {
					t.Errorf("recorder %d saw %d stage2_end events, want 1", i, ends)
				}
			}
			if sumProposed != proposed || sumAccepted != accepted || sumRejected != rejected {
				t.Errorf("per-solve sums (%d/%d/%d) != bridge counters (%d/%d/%d)",
					sumProposed, sumAccepted, sumRejected, proposed, accepted, rejected)
			}
			if got := snap.Counters["solver_opa_passes_total"]; got != sumPasses {
				t.Errorf("solver_opa_passes_total = %d, want %d", got, sumPasses)
			}

			// Every solve's trace landed in the ring, each stamped and
			// carrying its span tree.
			added, dropped := ring.Stats()
			if added != solves || dropped != 0 {
				t.Errorf("trace ring added=%d dropped=%d, want %d/0", added, dropped, solves)
			}
			ids := make(map[string]bool)
			for _, tr := range ring.Snapshot() {
				if tr.RequestID == "" || len(tr.Spans) == 0 {
					t.Errorf("trace missing request ID or spans: %+v", tr)
				}
				if ids[tr.RequestID] {
					t.Errorf("request ID %s recorded twice", tr.RequestID)
				}
				ids[tr.RequestID] = true
			}
		})
	}
}
