package obs

import (
	"context"
	"runtime"
	"time"

	"sftree/internal/core"
	"sftree/internal/faults"
	"sftree/internal/graph"
	"sftree/internal/mod"
	"sftree/internal/nfv"
)

// RegisterCacheStats wires the process-global cache and pool counters
// into the registry as callback gauges, evaluated at every /metrics
// scrape:
//
//	metric_cache_hits / metric_cache_misses / metric_cache_hit_rate
//	    nfv.Network.Metric generation cache (APSP closure reuse)
//	apsp_cache_hits / apsp_cache_misses / apsp_cache_hit_rate
//	    faults.State per-down-set APSP cache
//	scaffold_cache_hits / scaffold_cache_misses / scaffold_cache_hit_rate
//	    mod.Cache signature-keyed MOD-overlay scaffolds (stage-one
//	    construction skipped on same-signature, same-version solves)
//	sp_pool_gets / sp_pool_news / sp_pool_reuse_rate
//	    graph shortest-path scratch arenas (sync.Pool)
//	journal_pool_gets / journal_pool_news / journal_pool_reuse_rate
//	    core move-journal free lists
//
// Hit and reuse rates are fractions in [0,1]; they read 0 until the
// first lookup.
func RegisterCacheStats(reg *Registry) {
	ratio := func(hit, total int64) float64 {
		if total == 0 {
			return 0
		}
		return float64(hit) / float64(total)
	}
	reg.GaugeFunc("metric_cache_hits", func() float64 { h, _ := nfv.MetricCacheStats(); return float64(h) })
	reg.GaugeFunc("metric_cache_misses", func() float64 { _, m := nfv.MetricCacheStats(); return float64(m) })
	reg.GaugeFunc("metric_cache_hit_rate", func() float64 {
		h, m := nfv.MetricCacheStats()
		return ratio(h, h+m)
	})
	reg.GaugeFunc("apsp_cache_hits", func() float64 { h, _ := faults.CacheStats(); return float64(h) })
	reg.GaugeFunc("apsp_cache_misses", func() float64 { _, m := faults.CacheStats(); return float64(m) })
	reg.GaugeFunc("apsp_cache_hit_rate", func() float64 {
		h, m := faults.CacheStats()
		return ratio(h, h+m)
	})
	reg.GaugeFunc("scaffold_cache_hits", func() float64 { h, _ := mod.CacheStats(); return float64(h) })
	reg.GaugeFunc("scaffold_cache_misses", func() float64 { _, m := mod.CacheStats(); return float64(m) })
	reg.GaugeFunc("scaffold_cache_hit_rate", func() float64 {
		h, m := mod.CacheStats()
		return ratio(h, h+m)
	})
	reg.GaugeFunc("sp_pool_gets", func() float64 { g, _ := graph.PoolStats(); return float64(g) })
	reg.GaugeFunc("sp_pool_news", func() float64 { _, n := graph.PoolStats(); return float64(n) })
	reg.GaugeFunc("sp_pool_reuse_rate", func() float64 {
		g, n := graph.PoolStats()
		return ratio(g-n, g)
	})
	reg.GaugeFunc("journal_pool_gets", func() float64 { g, _ := core.JournalPoolStats(); return float64(g) })
	reg.GaugeFunc("journal_pool_news", func() float64 { _, n := core.JournalPoolStats(); return float64(n) })
	reg.GaugeFunc("journal_pool_reuse_rate", func() float64 {
		g, n := core.JournalPoolStats()
		return ratio(g-n, g)
	})
}

// StartRuntimeSampler launches the periodic Go-runtime sampler:
// every interval (0 means 5s) it refreshes the runtime_goroutines,
// runtime_heap_alloc_bytes, runtime_heap_objects and runtime_gc_total
// gauges and folds every GC pause completed since the previous sample
// into the runtime_gc_pause_ms histogram. The sampler stops when ctx
// is cancelled or when the returned function is called; stop blocks
// until the sampler goroutine has exited and is safe to call more
// than once.
func StartRuntimeSampler(ctx context.Context, reg *Registry, interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = 5 * time.Second
	}
	ctx, cancel := context.WithCancel(ctx)
	var (
		goroutines = reg.Gauge("runtime_goroutines")
		heapAlloc  = reg.Gauge("runtime_heap_alloc_bytes")
		heapObjs   = reg.Gauge("runtime_heap_objects")
		gcTotal    = reg.Gauge("runtime_gc_total")
		gcPause    = reg.Histogram("runtime_gc_pause_ms", LatencyBuckets)
	)
	done := make(chan struct{})
	sample := func(lastGC uint32) uint32 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		goroutines.Set(int64(runtime.NumGoroutine()))
		heapAlloc.Set(int64(ms.HeapAlloc))
		heapObjs.Set(int64(ms.HeapObjects))
		gcTotal.Set(int64(ms.NumGC))
		// PauseNs is a 256-entry ring indexed by GC number; fold in only
		// the pauses that completed since the previous sample.
		fresh := ms.NumGC - lastGC
		if fresh > uint32(len(ms.PauseNs)) {
			fresh = uint32(len(ms.PauseNs))
		}
		for i := uint32(0); i < fresh; i++ {
			gcPause.Observe(float64(ms.PauseNs[(ms.NumGC-i+255)%256]) / 1e6)
		}
		return ms.NumGC
	}
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		// Seed with the current GC count so pre-existing pauses are not
		// replayed into the histogram, then publish the initial levels.
		var seed runtime.MemStats
		runtime.ReadMemStats(&seed)
		lastGC := sample(seed.NumGC)
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				lastGC = sample(lastGC)
			}
		}
	}()
	return func() { cancel(); <-done }
}
