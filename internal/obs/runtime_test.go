package obs

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"time"

	"sftree/internal/core"
	"sftree/internal/faults"
	"sftree/internal/netgen"
)

func TestGaugeFunc(t *testing.T) {
	reg := NewRegistry()
	v := 0.25
	reg.GaugeFunc("cache_hit_rate", func() float64 { return v })
	if got := reg.Snapshot().Floats["cache_hit_rate"]; got != 0.25 {
		t.Errorf("float = %v, want 0.25", got)
	}
	v = 0.75
	if got := reg.Snapshot().Floats["cache_hit_rate"]; got != 0.75 {
		t.Errorf("float after update = %v, want 0.75", got)
	}
	// Re-registering replaces the callback.
	reg.GaugeFunc("cache_hit_rate", func() float64 { return 1 })
	if got := reg.Snapshot().Floats["cache_hit_rate"]; got != 1 {
		t.Errorf("float after re-register = %v, want 1", got)
	}
	// Non-finite values are clamped so the JSON snapshot stays valid.
	reg.GaugeFunc("bad", func() float64 { return math.NaN() })
	reg.GaugeFunc("worse", func() float64 { return math.Inf(1) })
	snap := reg.Snapshot()
	if snap.Floats["bad"] != 0 || snap.Floats["worse"] != 0 {
		t.Errorf("non-finite floats not clamped: %v", snap.Floats)
	}
}

func TestHistogramP999(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat", LatencyBuckets)
	for i := 0; i < 990; i++ {
		h.Observe(1.0) // bulk in the ~1ms band
	}
	for i := 0; i < 10; i++ {
		h.Observe(400) // slow outliers past the p99 rank
	}
	snap := reg.Snapshot().Histograms["lat"]
	if snap.P50 > 2 {
		t.Errorf("p50 = %v, want <= 2", snap.P50)
	}
	if snap.P999 < 100 {
		t.Errorf("p999 = %v, want to land in the outlier band", snap.P999)
	}
	if snap.P999 < snap.P99 || snap.P99 < snap.P50 {
		t.Errorf("quantiles not monotone: p50=%v p99=%v p999=%v", snap.P50, snap.P99, snap.P999)
	}
}

// TestRegisterCacheStats drives real cache traffic (a cold+warm Metric
// lookup, a fault materialization cycle) and checks the bridged floats
// move.
func TestRegisterCacheStats(t *testing.T) {
	reg := NewRegistry()
	RegisterCacheStats(reg)
	snap := reg.Snapshot()
	for _, name := range []string{
		"metric_cache_hits", "metric_cache_misses", "metric_cache_hit_rate",
		"apsp_cache_hits", "apsp_cache_misses", "apsp_cache_hit_rate",
		"sp_pool_gets", "sp_pool_news", "sp_pool_reuse_rate",
		"journal_pool_gets", "journal_pool_news", "journal_pool_reuse_rate",
	} {
		if _, ok := snap.Floats[name]; !ok {
			t.Errorf("float %s not registered", name)
		}
	}

	net, err := netgen.Generate(netgen.PaperConfig(30, 2), rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	before := reg.Snapshot().Floats
	net.Metric() // build (or reuse the generator's) closure
	net.Metric() // generation-valid: a guaranteed hit
	after := reg.Snapshot().Floats
	if after["metric_cache_hits"] <= before["metric_cache_hits"] {
		t.Error("metric cache hit not counted")
	}

	// One pristine materialization cycle: the materialized network is a
	// fresh object, so its first Metric call is a metric-cache miss
	// served by the passthrough supplier — an APSP-cache hit.
	st := faults.NewState(net)
	deg, err := st.Materialize(net)
	if err != nil {
		t.Fatal(err)
	}
	deg.Metric()
	final := reg.Snapshot().Floats
	if final["metric_cache_misses"] <= before["metric_cache_misses"] {
		t.Error("metric cache miss not counted for the fresh materialization")
	}
	if final["apsp_cache_hits"] <= before["apsp_cache_hits"] {
		t.Error("apsp cache hit not counted for pristine passthrough")
	}
}

func TestRuntimeSampler(t *testing.T) {
	reg := NewRegistry()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	stop := StartRuntimeSampler(ctx, reg, 5*time.Millisecond)
	time.Sleep(30 * time.Millisecond)
	stop()
	snap := reg.Snapshot()
	if g := snap.Gauges["runtime_goroutines"]; g <= 0 {
		t.Errorf("runtime_goroutines = %d, want > 0", g)
	}
	if g := snap.Gauges["runtime_heap_alloc_bytes"]; g <= 0 {
		t.Errorf("runtime_heap_alloc_bytes = %d, want > 0", g)
	}
	if _, ok := snap.Histograms["runtime_gc_pause_ms"]; !ok {
		t.Error("runtime_gc_pause_ms histogram not registered")
	}
	// stop must be idempotent-safe against a cancelled context too.
	cancel()
}

// TestSolverHistogramsSubMillisecond asserts the solver-phase
// histograms use the sub-millisecond bucket ladder: a ~1.3ms warm
// solve must not collapse into one giant catch-all bucket.
func TestSolverHistogramsSubMillisecond(t *testing.T) {
	if LatencyBuckets[0] >= 0.1 {
		t.Fatalf("LatencyBuckets[0] = %v, want sub-0.1ms resolution", LatencyBuckets[0])
	}
	reg := NewRegistry()
	obsv := NewMetricsObserver(reg)
	net, err := netgen.Generate(netgen.PaperConfig(40, 2), rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	task, err := netgen.GenerateTask(net, rand.New(rand.NewSource(8)), 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.Solve(net, task, core.Options{Observer: obsv}); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot().Histograms["solver_stage1_ms"]
	if snap.Count != 1 {
		t.Fatalf("stage1 count = %d", snap.Count)
	}
	if len(snap.Buckets) < 10 {
		t.Errorf("stage1 histogram has %d buckets, want the fine-grained ladder", len(snap.Buckets))
	}
}
