package obs

import (
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestRecoverTurnsPanicIntoJSON500(t *testing.T) {
	reg := NewRegistry()
	var logs strings.Builder
	logger := slog.New(slog.NewJSONHandler(&logs, nil))
	h := Middleware(reg, nil, Recover(reg, logger, http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("kaboom")
	})))

	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/boom", nil))

	if rr.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", rr.Code)
	}
	var body struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &body); err != nil {
		t.Fatalf("non-JSON body %q: %v", rr.Body.String(), err)
	}
	if body.Error != "internal server error" {
		t.Fatalf("error envelope %q", body.Error)
	}
	if got := reg.Counter("panics_total").Value(); got != 1 {
		t.Fatalf("panics_total = %d", got)
	}
	// The log line carries the panic value and a stack trace.
	if !strings.Contains(logs.String(), "kaboom") || !strings.Contains(logs.String(), "recover_test.go") {
		t.Fatalf("log missing panic or stack: %s", logs.String())
	}
}

func TestRecoverAfterHeadersLeavesResponseAlone(t *testing.T) {
	reg := NewRegistry()
	h := Recover(reg, nil, http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusAccepted)
		_, _ = io.WriteString(w, "partial")
		panic("late")
	}))
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/late", nil))
	if rr.Code != http.StatusAccepted || rr.Body.String() != "partial" {
		t.Fatalf("late panic rewrote response: %d %q", rr.Code, rr.Body.String())
	}
	if got := reg.Counter("panics_total").Value(); got != 1 {
		t.Fatalf("panics_total = %d", got)
	}
}

func TestRecoverPropagatesAbortHandler(t *testing.T) {
	h := Recover(nil, nil, http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic(http.ErrAbortHandler)
	}))
	defer func() {
		if recover() != http.ErrAbortHandler {
			t.Fatal("ErrAbortHandler swallowed")
		}
	}()
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/abort", nil))
	t.Fatal("unreachable")
}
