package obs

import (
	"fmt"
	"log/slog"
	"net/http"
	"runtime/debug"
)

// Recover wraps next so a handler panic becomes a JSON 500 instead of
// a torn connection: the panic value and stack are logged through
// logger, panics_total is incremented in reg, and — if the handler had
// not started writing — the client receives the standard error
// envelope. http.ErrAbortHandler is re-raised untouched, preserving
// net/http's deliberate-abort idiom. Place it *inside* Middleware so
// the access log and status counters record the 500.
func Recover(reg *Registry, logger *slog.Logger, next http.Handler) http.Handler {
	var panics *Counter
	if reg != nil {
		panics = reg.Counter("panics_total")
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw, tracked := w.(*statusWriter)
		if !tracked {
			sw = &statusWriter{ResponseWriter: w}
			w = sw
		}
		defer func() {
			rec := recover()
			if rec == nil {
				return
			}
			if rec == http.ErrAbortHandler {
				panic(rec)
			}
			if panics != nil {
				panics.Inc()
			}
			if logger != nil {
				logger.LogAttrs(r.Context(), slog.LevelError, "panic recovered",
					slog.String("id", RequestID(r.Context())),
					slog.String("method", r.Method),
					slog.String("path", r.URL.Path),
					slog.String("panic", fmt.Sprint(rec)),
					slog.String("stack", string(debug.Stack())),
				)
			}
			if sw.status == 0 { // headers unsent: we can still answer
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusInternalServerError)
				_, _ = fmt.Fprintln(w, `{"error":"internal server error"}`)
			}
		}()
		next.ServeHTTP(w, r)
	})
}
