package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"log/slog"
	"net/http"
	"time"
)

// RequestIDHeader carries the request ID: honored when the client
// sends one, generated otherwise, always echoed on the response.
const RequestIDHeader = "X-Request-ID"

type requestIDKey struct{}

// RequestID returns the request ID the middleware stored in ctx, or ""
// outside a middleware-wrapped handler.
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// WithRequestID returns a context carrying id, exactly as the HTTP
// middleware stores it. Non-HTTP callers (batch harnesses, chaos
// drivers) use it to stamp their solver traces with an origin.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey{}, id)
}

// newRequestID draws a 16-hex-char random ID.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "unknown"
	}
	return hex.EncodeToString(b[:])
}

// statusWriter captures the status code and body size a handler wrote.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// Flush forwards to the wrapped writer when it supports streaming.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Middleware wraps next with the request-scoped observability stack:
// request-ID propagation (context + response header), one structured
// slog access line per request, an in-flight gauge, and per-route
// latency histograms and status-class counters in reg. Route names use
// the ServeMux pattern that matched (http_request_ms|POST /v1/solve),
// falling back to the method plus raw path for unmatched requests. A
// nil logger disables access logging; a nil registry disables metrics.
func Middleware(reg *Registry, logger *slog.Logger, next http.Handler) http.Handler {
	var inflight *Gauge
	var total *Counter
	if reg != nil {
		inflight = reg.Gauge("http_in_flight")
		total = reg.Counter("http_requests_total")
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(RequestIDHeader)
		if id == "" {
			id = newRequestID()
		}
		w.Header().Set(RequestIDHeader, id)
		r = r.WithContext(context.WithValue(r.Context(), requestIDKey{}, id))

		if reg != nil {
			total.Inc()
			inflight.Add(1)
			defer inflight.Add(-1)
		}
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sw, r)
		elapsed := time.Since(start)
		if sw.status == 0 { // handler wrote nothing: net/http sends 200
			sw.status = http.StatusOK
		}

		// The mux sets Pattern on the request in place, so after next
		// returns it names the route that matched.
		route := r.Pattern
		if route == "" {
			route = r.Method + " " + r.URL.Path
		}
		if reg != nil {
			reg.Histogram("http_request_ms|"+route, nil).ObserveDuration(elapsed)
			reg.Counter(fmt.Sprintf("http_responses_total|%s|%dxx", route, sw.status/100)).Inc()
		}
		if logger != nil {
			logger.LogAttrs(r.Context(), slog.LevelInfo, "http request",
				slog.String("id", id),
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.String("route", route),
				slog.Int("status", sw.status),
				slog.Int64("bytes", sw.bytes),
				slog.Float64("dur_ms", float64(elapsed)/float64(time.Millisecond)),
			)
		}
	})
}
