package obs

import (
	"bytes"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// newMux builds a patterned mux so the middleware can attribute
// requests to routes via http.Request.Pattern.
func newMux(t *testing.T, idCh chan<- string) *http.ServeMux {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /ok", func(w http.ResponseWriter, r *http.Request) {
		if idCh != nil {
			idCh <- RequestID(r.Context())
		}
		w.Write([]byte("fine"))
	})
	mux.HandleFunc("GET /boom", func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusTeapot)
	})
	return mux
}

func TestMiddlewareGeneratesRequestID(t *testing.T) {
	idCh := make(chan string, 1)
	h := Middleware(nil, nil, newMux(t, idCh))

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/ok", nil))

	header := rec.Header().Get(RequestIDHeader)
	if len(header) != 16 {
		t.Errorf("generated request ID %q, want 16 hex chars", header)
	}
	if got := <-idCh; got != header {
		t.Errorf("context ID %q != response header %q", got, header)
	}
}

func TestMiddlewareHonorsIncomingRequestID(t *testing.T) {
	idCh := make(chan string, 1)
	h := Middleware(nil, nil, newMux(t, idCh))

	req := httptest.NewRequest("GET", "/ok", nil)
	req.Header.Set(RequestIDHeader, "caller-chosen-id")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)

	if got := rec.Header().Get(RequestIDHeader); got != "caller-chosen-id" {
		t.Errorf("response header = %q, want caller's ID echoed", got)
	}
	if got := <-idCh; got != "caller-chosen-id" {
		t.Errorf("context ID = %q", got)
	}
}

func TestRequestIDOutsideMiddleware(t *testing.T) {
	if got := RequestID(httptest.NewRequest("GET", "/", nil).Context()); got != "" {
		t.Errorf("RequestID on bare context = %q, want empty", got)
	}
}

func TestMiddlewareRouteMetricsAndStatusCapture(t *testing.T) {
	reg := NewRegistry()
	h := Middleware(reg, nil, newMux(t, nil))

	for i := 0; i < 3; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/ok", nil))
		if rec.Code != 200 {
			t.Fatalf("status = %d", rec.Code)
		}
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/boom", nil))
	if rec.Code != http.StatusTeapot {
		t.Fatalf("boom status = %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/missing", nil))
	if rec.Code != 404 {
		t.Fatalf("missing status = %d", rec.Code)
	}

	snap := reg.Snapshot()
	if got := snap.Counters["http_requests_total"]; got != 5 {
		t.Errorf("http_requests_total = %d, want 5", got)
	}
	if got := snap.Histograms["http_request_ms|GET /ok"].Count; got != 3 {
		t.Errorf("route histogram count = %d, want 3", got)
	}
	if got := snap.Counters["http_responses_total|GET /ok|2xx"]; got != 3 {
		t.Errorf("2xx counter = %d, want 3", got)
	}
	if got := snap.Counters["http_responses_total|GET /boom|4xx"]; got != 1 {
		t.Errorf("teapot 4xx counter = %d, want 1", got)
	}
	// Unmatched requests fall back to method+path routes.
	if got := snap.Counters["http_responses_total|GET /missing|4xx"]; got != 1 {
		t.Errorf("fallback-route 404 counter = %d, want 1", got)
	}
	if got := snap.Gauges["http_in_flight"]; got != 0 {
		t.Errorf("http_in_flight after completion = %d, want 0", got)
	}
}

func TestMiddlewareAccessLog(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, nil))
	h := Middleware(nil, logger, newMux(t, nil))

	req := httptest.NewRequest("GET", "/ok", nil)
	req.Header.Set(RequestIDHeader, "log-test-id")
	h.ServeHTTP(httptest.NewRecorder(), req)

	line := buf.String()
	for _, want := range []string{"log-test-id", "GET", "/ok", "status=200"} {
		if !strings.Contains(line, want) {
			t.Errorf("access log missing %q: %s", want, line)
		}
	}
}

func TestStatusWriterDefaultsTo200(t *testing.T) {
	reg := NewRegistry()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /implicit", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("x")) // no explicit WriteHeader
	})
	Middleware(reg, nil, mux).ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/implicit", nil))
	if got := reg.Snapshot().Counters["http_responses_total|GET /implicit|2xx"]; got != 1 {
		t.Errorf("implicit 200 not counted as 2xx: %d", got)
	}
}
