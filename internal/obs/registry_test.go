package obs

import (
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("reqs")
	c.Inc()
	c.Add(4)
	c.Add(-7) // ignored: counters are monotone
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if reg.Counter("reqs") != c {
		t.Error("second lookup returned a different counter")
	}

	g := reg.Gauge("inflight")
	g.Set(3)
	g.Add(-1)
	if got := g.Value(); got != 2 {
		t.Errorf("gauge = %d, want 2", got)
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 0.7, 5, 50, 5000} { // last lands in +Inf bucket
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() != 0.5+0.7+5+50+5000 {
		t.Errorf("sum = %v", h.Sum())
	}
	if q := h.Quantile(0.5); q <= 0 || q > 10 {
		t.Errorf("p50 = %v, want in (0, 10]", q)
	}
	// Overflow observations clamp to the largest finite bound.
	if q := h.Quantile(1); q != 100 {
		t.Errorf("p100 = %v, want 100", q)
	}

	empty := reg.Histogram("empty", nil)
	if q := empty.Quantile(0.99); q != 0 {
		t.Errorf("empty quantile = %v, want 0", q)
	}
	empty.Observe(7) // single observation: no NaN, no panic
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if v := empty.Quantile(q); v != v { // NaN check
			t.Errorf("quantile(%v) is NaN", q)
		}
	}

	h.ObserveDuration(3 * time.Millisecond)
	if h.Count() != 6 {
		t.Errorf("ObserveDuration not recorded")
	}
}

func TestSnapshotAndHandler(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a").Add(2)
	reg.Gauge("b").Set(-3)
	reg.Histogram("c", []float64{1, 2}).Observe(1.5)

	snap := reg.Snapshot()
	if snap.Counters["a"] != 2 || snap.Gauges["b"] != -3 {
		t.Errorf("snapshot = %+v", snap)
	}
	hs := snap.Histograms["c"]
	if hs.Count != 1 || len(hs.Buckets) != 3 || hs.Buckets[2].LE != "+Inf" {
		t.Errorf("histogram snapshot = %+v", hs)
	}
	// Buckets are cumulative: the +Inf bucket carries the total count.
	if hs.Buckets[2].Count != 1 {
		t.Errorf("cumulative +Inf bucket = %d", hs.Buckets[2].Count)
	}

	rec := httptest.NewRecorder()
	reg.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("handler status = %d", rec.Code)
	}
	var decoded Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &decoded); err != nil {
		t.Fatalf("handler body is not JSON: %v", err)
	}
	if decoded.Counters["a"] != 2 {
		t.Errorf("decoded = %+v", decoded)
	}

	rec = httptest.NewRecorder()
	reg.Handler().ServeHTTP(rec, httptest.NewRequest("POST", "/metrics", nil))
	if rec.Code != 405 {
		t.Errorf("POST status = %d, want 405", rec.Code)
	}
}

func TestPublishExpvarRepointsWithoutPanic(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Counter("x").Inc()
	b.Counter("x").Add(10)
	a.PublishExpvar("obs_test_reg")
	a.PublishExpvar("obs_test_reg") // same registry again: no panic
	b.PublishExpvar("obs_test_reg") // repoint: reads must see b
	expvarMu.Lock()
	got := expvarRegs["obs_test_reg"]
	expvarMu.Unlock()
	if got != b {
		t.Error("expvar export did not repoint to the latest registry")
	}
}

// TestRegistryConcurrency hammers every registry entry point from many
// goroutines; run with -race (tools.sh does) to assert thread safety.
func TestRegistryConcurrency(t *testing.T) {
	reg := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				reg.Counter("shared").Inc()
				reg.Gauge("level").Add(1)
				reg.Histogram("lat", nil).Observe(float64(i % 7))
				if i%50 == 0 {
					reg.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	if got := reg.Counter("shared").Value(); got != 8*500 {
		t.Errorf("shared counter = %d, want %d", got, 8*500)
	}
	if got := reg.Histogram("lat", nil).Count(); got != 8*500 {
		t.Errorf("histogram count = %d, want %d", got, 8*500)
	}
}
