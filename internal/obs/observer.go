package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"sftree/internal/core"
)

// SpanRecorder is a core.Observer that keeps every event in arrival
// order, for tests, traces and post-hoc aggregation. Safe for
// concurrent use, though interleaved events from parallel solves make
// the span tree ambiguous — use one recorder per solve for trees.
//
// A nil *SpanRecorder is a valid no-op observer: every method tolerates
// a nil receiver, so TraceBuffer.StartTrace on a nil ring can hand back
// nil and call sites stay unconditional even when teed (Tee keeps
// typed-nil observers, which would otherwise panic on first event).
type SpanRecorder struct {
	mu     sync.Mutex
	events []core.Event
}

// OnEvent implements core.Observer.
func (r *SpanRecorder) OnEvent(e core.Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.events = append(r.events, e)
	r.mu.Unlock()
}

// Events returns a copy of the recorded events in arrival order.
func (r *SpanRecorder) Events() []core.Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]core.Event(nil), r.events...)
}

// Reset discards everything recorded so far.
func (r *SpanRecorder) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.events = nil
	r.mu.Unlock()
}

// Breakdown aggregates one solve's events into the phase timing
// summary embedded in BENCH_core.json: where stage-2 time goes and
// what the move funnel looked like.
type Breakdown struct {
	APSPBuildNs   int64   `json:"apsp_build_ns"`
	Stage1Ns      int64   `json:"stage1_ns"`
	Stage2Ns      int64   `json:"stage2_ns"`
	OPAPasses     int     `json:"opa_passes"`
	MovesProposed int     `json:"moves_proposed"`
	MovesAccepted int     `json:"moves_accepted"`
	MovesRejected int     `json:"moves_rejected"`
	Stage1Cost    float64 `json:"stage1_cost"`
	FinalCost     float64 `json:"final_cost"`
	// Warm reports that the solve's metric lookup was served by the
	// generation-valid cache (core.Event.Warm on the APSP event) — the
	// explicit warm/cold label, rather than the apsp_build_ns==0
	// convention. With several solves folded in, true means at least
	// one was warm.
	Warm bool `json:"warm"`
}

// Breakdown folds the recorded events into per-phase totals. With
// several solves recorded, durations and move counts accumulate and
// the costs reflect the last solve.
func (r *SpanRecorder) Breakdown() Breakdown {
	if r == nil {
		return Breakdown{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var b Breakdown
	for _, e := range r.events {
		switch e.Kind {
		case core.EventAPSPBuild:
			b.APSPBuildNs += e.Duration.Nanoseconds()
			if e.Warm {
				b.Warm = true
			}
		case core.EventStage1End:
			b.Stage1Ns += e.Duration.Nanoseconds()
			b.Stage1Cost = e.Cost
		case core.EventStage2End:
			b.Stage2Ns += e.Duration.Nanoseconds()
			b.FinalCost = e.Cost
		case core.EventOPAPassEnd:
			b.OPAPasses++
		case core.EventMoveProposed:
			b.MovesProposed++
		case core.EventMoveAccepted:
			b.MovesAccepted++
		case core.EventMoveRejected:
			b.MovesRejected++
		}
	}
	return b
}

// Span is one node of the in-memory phase tree: a named phase with its
// wall time, numeric attributes and nested children.
type Span struct {
	Name       string             `json:"name"`
	DurationNs int64              `json:"duration_ns"`
	Attrs      map[string]float64 `json:"attrs,omitempty"`
	Children   []*Span            `json:"children,omitempty"`
}

// Spans rebuilds the span tree of the recorded solve: stage spans at
// the top, one span per OPA pass under stage 2, move events as leaf
// spans under their pass.
func (r *SpanRecorder) Spans() []*Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var roots []*Span
	var stage2, pass *Span
	add := func(s *Span) {
		switch {
		case pass != nil:
			pass.Children = append(pass.Children, s)
		case stage2 != nil:
			stage2.Children = append(stage2.Children, s)
		default:
			roots = append(roots, s)
		}
	}
	for _, e := range r.events {
		switch e.Kind {
		case core.EventAPSPBuild:
			warm := 0.0
			if e.Warm {
				warm = 1
			}
			roots = append(roots, &Span{Name: "apsp_build", DurationNs: e.Duration.Nanoseconds(),
				Attrs: map[string]float64{"warm": warm}})
		case core.EventStage1End:
			roots = append(roots, &Span{Name: "stage1", DurationNs: e.Duration.Nanoseconds(),
				Attrs: map[string]float64{"cost": e.Cost, "candidates": float64(e.Candidates)}})
		case core.EventStage2Start:
			stage2 = &Span{Name: "stage2"}
			roots = append(roots, stage2)
		case core.EventStage2End:
			if stage2 != nil {
				stage2.DurationNs = e.Duration.Nanoseconds()
				stage2.Attrs = map[string]float64{"cost": e.Cost, "moves": float64(e.Moves)}
			}
			stage2, pass = nil, nil
		case core.EventOPAPassStart:
			pass = &Span{Name: fmt.Sprintf("opa_pass_%d", e.Pass)}
			if stage2 != nil {
				stage2.Children = append(stage2.Children, pass)
			} else {
				roots = append(roots, pass)
			}
		case core.EventOPAPassEnd:
			if pass != nil {
				pass.DurationNs = e.Duration.Nanoseconds()
				pass.Attrs = map[string]float64{"moves": float64(e.Moves)}
			}
			pass = nil
		case core.EventMoveProposed, core.EventMoveAccepted, core.EventMoveRejected:
			add(&Span{Name: e.Kind.String(), Attrs: map[string]float64{
				"level": float64(e.Level), "conn": float64(e.Conn),
				"from": float64(e.From), "to": float64(e.To),
				"cost_before": e.CostBefore, "cost_after": e.CostAfter,
			}})
		}
	}
	return roots
}

// lineEvent is the JSON-lines wire form of a solver event. The
// request_id, warm and rung fields are additions over the original
// (PR 2) schema; they are omitted when empty, so old consumers keep
// parsing new streams and new consumers treat their absence as the
// zero value when reading old streams.
type lineEvent struct {
	Kind       string  `json:"kind"`
	Pass       int     `json:"pass,omitempty"`
	Level      int     `json:"level,omitempty"`
	Conn       int     `json:"conn,omitempty"`
	From       int     `json:"from,omitempty"`
	To         int     `json:"to,omitempty"`
	Group      int     `json:"group,omitempty"`
	CostBefore float64 `json:"cost_before,omitempty"`
	CostAfter  float64 `json:"cost_after,omitempty"`
	Cost       float64 `json:"cost,omitempty"`
	Candidates int     `json:"candidates,omitempty"`
	Moves      int     `json:"moves,omitempty"`
	DurationNs int64   `json:"duration_ns,omitempty"`
	// RequestID scopes the event to the originating HTTP request
	// (scoped streams only — see JSONLObserver.WithScope).
	RequestID string `json:"request_id,omitempty"`
	// Warm marks an apsp_build event served from the metric cache.
	Warm bool `json:"warm,omitempty"`
	// Rung names the repair-ladder rung a repair-scoped solve ran under
	// ("patch", "reembed").
	Rung string `json:"rung,omitempty"`
}

// JSONLObserver streams every solver event as one JSON object per
// line, the standard shape for log shippers. Writes serialize on an
// internal mutex, so one observer may serve concurrent solves.
type JSONLObserver struct {
	mu  sync.Mutex
	enc *json.Encoder
}

// NewJSONLObserver streams events to w.
func NewJSONLObserver(w io.Writer) *JSONLObserver {
	return &JSONLObserver{enc: json.NewEncoder(w)}
}

// OnEvent implements core.Observer.
func (o *JSONLObserver) OnEvent(e core.Event) {
	o.emit(e, "", "")
}

func (o *JSONLObserver) emit(e core.Event, requestID, rung string) {
	o.mu.Lock()
	defer o.mu.Unlock()
	_ = o.enc.Encode(lineEvent{
		Kind: e.Kind.String(), Pass: e.Pass, Level: e.Level,
		Conn: e.Conn, From: e.From, To: e.To, Group: e.Group,
		CostBefore: e.CostBefore, CostAfter: e.CostAfter, Cost: e.Cost,
		Candidates: e.Candidates, Moves: e.Moves,
		DurationNs: e.Duration.Nanoseconds(),
		RequestID:  requestID, Warm: e.Warm, Rung: rung,
	})
}

// WithScope returns an observer emitting onto the same stream with
// every line stamped with the originating request ID and (for repair
// solves) the repair-ladder rung. Scoped views share the underlying
// encoder mutex, so scoped and unscoped writers may interleave safely.
func (o *JSONLObserver) WithScope(requestID, rung string) core.Observer {
	return &scopedJSONL{o: o, requestID: requestID, rung: rung}
}

type scopedJSONL struct {
	o               *JSONLObserver
	requestID, rung string
}

// OnEvent implements core.Observer.
func (s *scopedJSONL) OnEvent(e core.Event) { s.o.emit(e, s.requestID, s.rung) }

// metricsObserver bridges solver events into registry metrics, the
// wiring behind the server's /metrics solver section.
type metricsObserver struct {
	apsp, stage1, stage2         *Histogram
	proposed, accepted, rejected *Counter
	passes, solves               *Counter
}

// NewMetricsObserver returns a core.Observer that folds phase events
// into the registry: solver_stage1_ms / solver_stage2_ms /
// solver_apsp_ms histograms, the move-funnel counters and pass/solve
// totals. The handles are captured once, so the per-event cost is a
// few atomic adds.
func NewMetricsObserver(reg *Registry) core.Observer {
	return &metricsObserver{
		apsp:     reg.Histogram("solver_apsp_ms", LatencyBuckets),
		stage1:   reg.Histogram("solver_stage1_ms", LatencyBuckets),
		stage2:   reg.Histogram("solver_stage2_ms", LatencyBuckets),
		proposed: reg.Counter("solver_moves_proposed_total"),
		accepted: reg.Counter("solver_moves_accepted_total"),
		rejected: reg.Counter("solver_moves_rejected_total"),
		passes:   reg.Counter("solver_opa_passes_total"),
		solves:   reg.Counter("solver_solves_total"),
	}
}

// OnEvent implements core.Observer.
func (m *metricsObserver) OnEvent(e core.Event) {
	switch e.Kind {
	case core.EventAPSPBuild:
		m.apsp.ObserveDuration(e.Duration)
	case core.EventStage1End:
		m.stage1.ObserveDuration(e.Duration)
	case core.EventStage2End:
		m.stage2.ObserveDuration(e.Duration)
		m.solves.Inc()
	case core.EventOPAPassEnd:
		m.passes.Inc()
	case core.EventMoveProposed:
		m.proposed.Inc()
	case core.EventMoveAccepted:
		m.accepted.Inc()
	case core.EventMoveRejected:
		m.rejected.Inc()
	}
}

// tee fans one event out to several observers.
type tee []core.Observer

// OnEvent implements core.Observer.
func (t tee) OnEvent(e core.Event) {
	for _, o := range t {
		o.OnEvent(e)
	}
}

// Tee combines observers into one; nils are dropped. It returns nil
// when nothing remains (keeping the solver's fast path) and the single
// observer unwrapped when only one does.
func Tee(obs ...core.Observer) core.Observer {
	var live tee
	for _, o := range obs {
		if o != nil {
			live = append(live, o)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return live
}
