package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"sftree/internal/core"
)

func TestTraceBufferRing(t *testing.T) {
	b := NewTraceBuffer(3)
	if b.Len() != 0 {
		t.Fatalf("fresh ring Len = %d", b.Len())
	}
	for i := 0; i < 5; i++ {
		b.Add(Trace{Op: "solve", RequestID: fmt.Sprintf("r%d", i)})
	}
	if b.Len() != 3 {
		t.Errorf("Len = %d, want capacity 3", b.Len())
	}
	added, dropped := b.Stats()
	if added != 5 || dropped != 2 {
		t.Errorf("Stats = (%d, %d), want (5, 2)", added, dropped)
	}
	snap := b.Snapshot()
	want := []string{"r2", "r3", "r4"} // oldest-first after eviction
	if len(snap) != len(want) {
		t.Fatalf("snapshot has %d traces, want %d", len(snap), len(want))
	}
	for i, id := range want {
		if snap[i].RequestID != id {
			t.Errorf("snapshot[%d].RequestID = %s, want %s", i, snap[i].RequestID, id)
		}
	}
}

func TestTraceBufferDefaultCap(t *testing.T) {
	b := NewTraceBuffer(0)
	for i := 0; i < DefaultTraceCap+10; i++ {
		b.Add(Trace{Op: "solve"})
	}
	if b.Len() != DefaultTraceCap {
		t.Errorf("Len = %d, want %d", b.Len(), DefaultTraceCap)
	}
}

func TestTraceBufferHandler(t *testing.T) {
	b := NewTraceBuffer(4)
	b.Add(Trace{Op: "admit", RequestID: "abc", Session: -1, Warm: true})
	srv := httptest.NewServer(b.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		Capacity int     `json:"capacity"`
		Added    int64   `json:"added"`
		Traces   []Trace `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Capacity != 4 || doc.Added != 1 || len(doc.Traces) != 1 {
		t.Fatalf("doc = %+v", doc)
	}
	tr := doc.Traces[0]
	if tr.Op != "admit" || tr.RequestID != "abc" || !tr.Warm || tr.Session != -1 {
		t.Errorf("round-tripped trace = %+v", tr)
	}

	post, err := http.Post(srv.URL, "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST status = %d, want 405", post.StatusCode)
	}
}

// TestStartTraceNilBuffer: a nil ring must hand back a nil recorder
// and a callable no-op finish, so call sites stay unconditional. The
// typed-nil recorder survives Tee's interface-nil filter, so it must
// absorb events and queries without panicking.
func TestStartTraceNilBuffer(t *testing.T) {
	var b *TraceBuffer
	rec, finish := b.StartTrace("solve", "req")
	if rec != nil {
		t.Error("nil buffer returned a live recorder")
	}
	teed := Tee(nil, rec)
	teed.OnEvent(core.Event{Kind: core.EventStage1End}) // must not panic
	if got := rec.Events(); got != nil {
		t.Errorf("nil recorder recorded %v", got)
	}
	if b := rec.Breakdown(); b != (Breakdown{}) {
		t.Errorf("nil recorder breakdown = %+v", b)
	}
	if s := rec.Spans(); s != nil {
		t.Errorf("nil recorder spans = %v", s)
	}
	finish(2, nil, nil) // must not panic
}

func TestStartTraceRecordsOutcome(t *testing.T) {
	b := NewTraceBuffer(2)
	rec, finish := b.StartTrace("solve", "req-1")
	rec.OnEvent(core.Event{Kind: core.EventAPSPBuild, Warm: true})
	rec.OnEvent(core.Event{Kind: core.EventStage1End, Cost: 5})
	finish(8, &core.Result{EarlyStop: true}, nil)

	_, finish = b.StartTrace("admit", "req-2")
	finish(1, nil, fmt.Errorf("no capacity"))

	snap := b.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("ring holds %d traces, want 2", len(snap))
	}
	ok, bad := snap[0], snap[1]
	if !ok.Warm || !ok.EarlyStop || ok.Parallelism != 8 || len(ok.Spans) == 0 || ok.RequestID != "req-1" {
		t.Errorf("success trace = %+v", ok)
	}
	if bad.Err != "no capacity" || bad.Op != "admit" {
		t.Errorf("failure trace = %+v", bad)
	}
}
