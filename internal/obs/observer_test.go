package obs

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"sftree/internal/core"
	"sftree/internal/netgen"
	"sftree/internal/nfv"
)

// obsInstance builds the fixed-seed mid-size instance every observer
// test solves, large enough that stage two accepts moves.
func obsInstance(t testing.TB) (*nfv.Network, nfv.Task) {
	t.Helper()
	net, err := netgen.Generate(netgen.PaperConfig(60, 2), rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	task, err := netgen.GenerateTask(net, rand.New(rand.NewSource(12)), 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	return net, task
}

// TestEventOrdering asserts the structural invariants of one observed
// fixed-seed solve: phases open before they close, passes nest inside
// stage two, move events nest inside passes, and accepted moves carry
// strictly improving global costs.
func TestEventOrdering(t *testing.T) {
	net, task := obsInstance(t)
	rec := &SpanRecorder{}
	res, err := core.Solve(net, task, core.Options{Observer: rec, MaxOPAPasses: 4})
	if err != nil {
		t.Fatal(err)
	}
	events := rec.Events()
	if len(events) == 0 {
		t.Fatal("no events recorded")
	}

	seen := make(map[core.EventKind]int)
	var inStage1, inStage2, inPass bool
	accepted := 0
	for i, e := range events {
		seen[e.Kind]++
		switch e.Kind {
		case core.EventAPSPBuild:
			if i != 0 {
				t.Errorf("event %d: apsp_build not first", i)
			}
		case core.EventStage1Start:
			inStage1 = true
		case core.EventStage1End:
			if !inStage1 {
				t.Errorf("event %d: stage1_end before stage1_start", i)
			}
			inStage1 = false
			if e.Candidates <= 0 || e.Cost <= 0 {
				t.Errorf("stage1_end missing stats: %+v", e)
			}
		case core.EventStage2Start:
			if inStage1 {
				t.Errorf("event %d: stage2_start inside stage 1", i)
			}
			inStage2 = true
		case core.EventStage2End:
			if !inStage2 || inPass {
				t.Errorf("event %d: stage2_end out of order", i)
			}
			inStage2 = false
			if e.Moves != res.MovesAccepted {
				t.Errorf("stage2_end moves = %d, want %d", e.Moves, res.MovesAccepted)
			}
		case core.EventOPAPassStart:
			if !inStage2 || inPass {
				t.Errorf("event %d: pass_start out of order", i)
			}
			inPass = true
		case core.EventOPAPassEnd:
			if !inPass {
				t.Errorf("event %d: pass_end without pass_start", i)
			}
			inPass = false
		case core.EventMoveProposed, core.EventMoveAccepted, core.EventMoveRejected:
			if !inPass {
				t.Errorf("event %d: move event outside a pass", i)
			}
			if e.Kind == core.EventMoveAccepted {
				accepted++
				if e.CostAfter >= e.CostBefore {
					t.Errorf("accepted move did not improve: %+v", e)
				}
			}
		}
	}
	if inStage1 || inStage2 || inPass {
		t.Error("unbalanced phase events")
	}
	for _, k := range []core.EventKind{core.EventAPSPBuild, core.EventStage1Start,
		core.EventStage1End, core.EventStage2Start, core.EventStage2End,
		core.EventOPAPassStart, core.EventOPAPassEnd} {
		if seen[k] == 0 {
			t.Errorf("no %v event", k)
		}
	}
	if accepted != res.MovesAccepted {
		t.Errorf("accepted events = %d, result moves = %d", accepted, res.MovesAccepted)
	}
	// Proposals are a superset of outcomes.
	if seen[core.EventMoveProposed] != seen[core.EventMoveAccepted]+seen[core.EventMoveRejected] {
		t.Errorf("move funnel mismatch: %d proposed, %d accepted, %d rejected",
			seen[core.EventMoveProposed], seen[core.EventMoveAccepted], seen[core.EventMoveRejected])
	}
}

// TestEngineEventParity: the incremental and naive stage-two engines
// must emit the same move sequence on the same instance.
func TestEngineEventParity(t *testing.T) {
	net, task := obsInstance(t)
	runs := make([][]core.Event, 2)
	for i, naive := range []bool{false, true} {
		rec := &SpanRecorder{}
		if _, err := core.Solve(net, task, core.Options{Observer: rec, NaiveRecost: naive}); err != nil {
			t.Fatal(err)
		}
		for _, e := range rec.Events() {
			switch e.Kind {
			case core.EventMoveProposed, core.EventMoveAccepted, core.EventMoveRejected:
				e.Duration = 0
				runs[i] = append(runs[i], e)
			}
		}
	}
	if len(runs[0]) != len(runs[1]) {
		t.Fatalf("move event counts differ: %d vs %d", len(runs[0]), len(runs[1]))
	}
	for i := range runs[0] {
		a, b := runs[0][i], runs[1][i]
		if a.Kind != b.Kind || a.Level != b.Level || a.From != b.From || a.To != b.To {
			t.Errorf("move %d differs: %+v vs %+v", i, a, b)
		}
	}
}

func TestBreakdownAndSpans(t *testing.T) {
	net, task := obsInstance(t)
	rec := &SpanRecorder{}
	res, err := core.Solve(net, task, core.Options{Observer: rec})
	if err != nil {
		t.Fatal(err)
	}
	b := rec.Breakdown()
	if b.Stage1Ns <= 0 || b.Stage2Ns <= 0 || b.OPAPasses < 1 {
		t.Errorf("breakdown = %+v", b)
	}
	if b.Stage1Cost != res.Stage1Cost || b.FinalCost != res.FinalCost {
		t.Errorf("breakdown costs %v/%v, result %v/%v", b.Stage1Cost, b.FinalCost, res.Stage1Cost, res.FinalCost)
	}
	if b.MovesAccepted != res.MovesAccepted {
		t.Errorf("breakdown moves = %d, want %d", b.MovesAccepted, res.MovesAccepted)
	}

	spans := rec.Spans()
	var stage2 *Span
	for _, s := range spans {
		if s.Name == "stage2" {
			stage2 = s
		}
	}
	if stage2 == nil {
		t.Fatalf("no stage2 span in %d roots", len(spans))
	}
	if len(stage2.Children) == 0 || !strings.HasPrefix(stage2.Children[0].Name, "opa_pass_") {
		t.Errorf("stage2 children = %+v", stage2.Children)
	}
	if stage2.DurationNs <= 0 {
		t.Errorf("stage2 span has no duration")
	}
}

func TestJSONLObserver(t *testing.T) {
	net, task := obsInstance(t)
	var buf bytes.Buffer
	if _, err := core.Solve(net, task, core.Options{Observer: NewJSONLObserver(&buf)}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) < 5 {
		t.Fatalf("only %d lines", len(lines))
	}
	kinds := make(map[string]bool)
	for i, ln := range lines {
		var ev struct {
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal([]byte(ln), &ev); err != nil {
			t.Fatalf("line %d is not JSON: %v (%q)", i, err, ln)
		}
		kinds[ev.Kind] = true
	}
	for _, want := range []string{"apsp_build", "stage1_end", "stage2_end"} {
		if !kinds[want] {
			t.Errorf("no %q line in stream", want)
		}
	}
}

func TestTee(t *testing.T) {
	if Tee(nil, nil) != nil {
		t.Error("Tee of nils should be nil")
	}
	a := &SpanRecorder{}
	if got := Tee(nil, a); got != core.Observer(a) {
		t.Error("single observer should be returned unwrapped")
	}
	b := &SpanRecorder{}
	Tee(a, b).OnEvent(core.Event{Kind: core.EventStage1Start})
	if len(a.Events()) != 1 || len(b.Events()) != 1 {
		t.Error("tee did not fan out")
	}
}

// TestConcurrentSolvesIntoSharedRegistry hammers one registry-backed
// observer from parallel solves; meaningful under -race (tools.sh).
func TestConcurrentSolvesIntoSharedRegistry(t *testing.T) {
	net, task := obsInstance(t)
	net.Metric() // warm the shared APSP cache up front
	reg := NewRegistry()
	observer := Tee(NewMetricsObserver(reg), &SpanRecorder{})
	var wg sync.WaitGroup
	const workers, solves = 6, 4
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < solves; i++ {
				if _, err := core.Solve(net, task, core.Options{Observer: observer}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	done := make(chan struct{})
	go func() { // concurrent readers
		for {
			select {
			case <-done:
				return
			default:
				reg.Snapshot()
			}
		}
	}()
	wg.Wait()
	close(done)
	if got := reg.Counter("solver_solves_total").Value(); got != workers*solves {
		t.Errorf("solver_solves_total = %d, want %d", got, workers*solves)
	}
	if got := reg.Histogram("solver_stage1_ms", nil).Count(); got != workers*solves {
		t.Errorf("stage1 histogram count = %d, want %d", got, workers*solves)
	}
}
