// Package obs is the observability layer for the serving stack: a
// stdlib-only registry of named counters, gauges and fixed-bucket
// latency histograms (atomic hot path, JSON and expvar export),
// consumers for the solver's structured phase events (span recorder,
// JSON-lines streamer, metrics bridge), and HTTP middleware adding
// request IDs, structured access logs and per-route metrics.
package obs

import (
	"encoding/json"
	"expvar"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. The zero value is
// ready to use; all methods are safe for concurrent use.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative n is ignored to keep the counter monotone).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous level (in-flight requests, live sessions).
// The zero value is ready to use.
type Gauge struct{ v atomic.Int64 }

// Set overwrites the level.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the level by n (n may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefBuckets is the default latency bucket layout, in milliseconds:
// quarter-millisecond resolution at the fast end, ten seconds at the
// slow end, one implicit +Inf overflow bucket.
var DefBuckets = []float64{0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}

// LatencyBuckets is the fine-grained layout for solver and admission
// latencies, whose warm-solve mode sits near one millisecond
// (BENCH_core.json records ~1.3 ms for SolveTwoStage100): 25 µs
// resolution below a millisecond so sub-millisecond percentiles
// interpolate inside narrow buckets instead of collapsing onto the
// 0.25 ms DefBuckets floor, then the standard decades up to 10 s.
var LatencyBuckets = []float64{
	0.025, 0.05, 0.1, 0.25, 0.5, 0.75, 1, 1.5, 2, 3, 5, 7.5, 10,
	25, 50, 100, 250, 500, 1000, 2500, 5000, 10000,
}

// Histogram is a fixed-bucket distribution with an atomic hot path:
// Observe is one binary search plus three atomic adds, no locks.
type Histogram struct {
	bounds  []float64 // ascending upper bounds; +Inf is implicit
	buckets []atomic.Int64
	count   atomic.Int64
	sum     atomicFloat
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, buckets: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value (for latency histograms, milliseconds).
func (h *Histogram) Observe(x float64) {
	if math.IsNaN(x) {
		return
	}
	i := sort.SearchFloat64s(h.bounds, x) // first bound >= x, len(bounds) = overflow
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(x)
}

// ObserveDuration records a duration in milliseconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(float64(d) / float64(time.Millisecond))
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.Load() }

// Quantile estimates the q-quantile (q in [0,1]) by linear
// interpolation inside the owning bucket, the standard fixed-bucket
// estimate. It returns 0 with no observations and the largest finite
// bound for observations in the overflow bucket.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 || math.IsNaN(q) {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	cum := int64(0)
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		if float64(cum) >= rank {
			if i >= len(h.bounds) { // overflow bucket: clamp to last bound
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			inBucket := h.buckets[i].Load()
			if inBucket == 0 {
				return hi
			}
			frac := (rank - float64(cum-inBucket)) / float64(inBucket)
			return lo + (hi-lo)*frac
		}
	}
	return h.bounds[len(h.bounds)-1]
}

// atomicFloat is a float64 accumulated with a CAS loop.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) Add(x float64) {
	for {
		old := f.bits.Load()
		if f.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+x)) {
			return
		}
	}
}

func (f *atomicFloat) Load() float64 { return math.Float64frombits(f.bits.Load()) }

// Registry holds named metrics. Lookups take a read lock only on the
// first use of a name; the returned handles are lock-free, so callers
// on hot paths should capture them once. The zero value is not usable;
// create registries with NewRegistry.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	floats   map[string]func() float64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		floats:   make(map[string]func() float64),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds (nil means DefBuckets) on first use. An existing
// histogram keeps its original buckets.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	h = newHistogram(bounds)
	r.hists[name] = h
	return h
}

// GaugeFunc registers a callback gauge: fn is evaluated at every
// Snapshot (and therefore every /metrics scrape), so derived values —
// cache hit rates, pool reuse fractions, runtime levels — stay current
// without a sampling loop. Re-registering a name replaces the
// callback. fn must be safe for concurrent use; NaN and ±Inf results
// are clamped to 0 to keep the JSON document valid.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.floats[name] = fn
}

// BucketCount is one cumulative histogram bucket in a snapshot; LE is
// the inclusive upper bound rendered as a string ("+Inf" for the
// overflow bucket) so the JSON stays valid.
type BucketCount struct {
	LE    string `json:"le"`
	Count int64  `json:"count"`
}

// HistogramSnapshot is the JSON form of one histogram.
type HistogramSnapshot struct {
	Count   int64         `json:"count"`
	Sum     float64       `json:"sum"`
	P50     float64       `json:"p50"`
	P95     float64       `json:"p95"`
	P99     float64       `json:"p99"`
	P999    float64       `json:"p999"`
	Buckets []BucketCount `json:"buckets"`
}

// Snapshot is a point-in-time copy of every metric in the registry,
// the document GET /metrics serves. Floats carries the callback gauges
// (GaugeFunc), evaluated at snapshot time.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Floats     map[string]float64           `json:"floats,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures the current value of every metric. Callback
// gauges are evaluated after the registry lock is released, so a
// callback may itself read registry handles.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	var fns map[string]func() float64
	if len(r.floats) > 0 {
		fns = make(map[string]func() float64, len(r.floats))
		for name, fn := range r.floats {
			fns[name] = fn
		}
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		hs := HistogramSnapshot{
			Count: h.Count(),
			Sum:   h.Sum(),
			P50:   h.Quantile(0.50),
			P95:   h.Quantile(0.95),
			P99:   h.Quantile(0.99),
			P999:  h.Quantile(0.999),
		}
		cum := int64(0)
		for i := range h.buckets {
			cum += h.buckets[i].Load()
			le := "+Inf"
			if i < len(h.bounds) {
				le = strconv.FormatFloat(h.bounds[i], 'g', -1, 64)
			}
			hs.Buckets = append(hs.Buckets, BucketCount{LE: le, Count: cum})
		}
		s.Histograms[name] = hs
	}
	r.mu.RUnlock()
	if fns != nil {
		s.Floats = make(map[string]float64, len(fns))
		for name, fn := range fns {
			v := fn()
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			s.Floats[name] = v
		}
	}
	return s
}

// Handler serves the registry snapshot as indented JSON (GET only).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, `{"error":"method not allowed"}`, http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Snapshot())
	})
}

// expvarRegs tracks which names have been exported via expvar and
// which registry currently backs each one. expvar.Publish panics on a
// duplicate name, so PublishExpvar publishes a name once and repoints
// later registrations (servers restarted in-process, tests).
var (
	expvarMu   sync.Mutex
	expvarRegs = map[string]*Registry{}
)

// PublishExpvar exports the registry's snapshot under the given expvar
// name (readable at /debug/vars). Calling it again — with the same or
// another registry — repoints the existing export instead of
// panicking like raw expvar.Publish would.
func (r *Registry) PublishExpvar(name string) {
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if _, ok := expvarRegs[name]; !ok {
		expvar.Publish(name, expvar.Func(func() any {
			expvarMu.Lock()
			reg := expvarRegs[name]
			expvarMu.Unlock()
			return reg.Snapshot()
		}))
	}
	expvarRegs[name] = r
}
