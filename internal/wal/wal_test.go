package wal

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"sftree/internal/nfv"
)

// testRecord builds a small admit record with a non-trivial embedding
// so round-trips exercise the nested encoding.
func testRecord(sess int64) *Record {
	return &Record{
		Type:    RecAdmit,
		Session: sess,
		Embedding: &nfv.Embedding{
			Task: nfv.Task{Source: 0, Destinations: []int{2, 3}, Chain: nfv.SFC{1}},
			Walks: []nfv.Walk{
				{{Level: 1, Path: []int{0, 1}}, {Level: 1, Path: []int{1, 2}}},
				{{Level: 1, Path: []int{0, 1}}, {Level: 1, Path: []int{1, 3}}},
			},
			NewInstances: []nfv.Instance{{VNF: 1, Node: 1, Level: 1}},
		},
		FinalCost: 4.5,
		Uses:      [][2]int{{1, 1}},
	}
}

func openFresh(t *testing.T, dir string, cfg Config) (*Log, *Recovery) {
	t.Helper()
	l, rec, err := Open(dir, cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l, rec
}

func TestAppendRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, rec := openFresh(t, dir, Config{})
	if !rec.Empty() {
		t.Fatalf("fresh dir: recovery not empty: %+v", rec)
	}
	for i := int64(0); i < 5; i++ {
		seq, err := l.Append(testRecord(i))
		if err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		if want := uint64(i + 1); seq != want {
			t.Fatalf("Append %d: seq %d, want %d (numbering starts at 1)", i, seq, want)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2, rec2 := openFresh(t, dir, Config{})
	defer l2.Close()
	if rec2.Snapshot != nil {
		t.Fatalf("unexpected snapshot: %+v", rec2.Snapshot)
	}
	if len(rec2.Records) != 5 {
		t.Fatalf("recovered %d records, want 5", len(rec2.Records))
	}
	if rec2.TornTail {
		t.Fatal("clean log reported a torn tail")
	}
	for i, r := range rec2.Records {
		if r.Seq != uint64(i+1) || r.Session != int64(i) || r.Type != RecAdmit {
			t.Fatalf("record %d mismatch: %+v", i, r)
		}
		if r.Embedding == nil || len(r.Embedding.Walks) != 2 {
			t.Fatalf("record %d lost its embedding: %+v", i, r)
		}
	}
	// New appends continue the sequence.
	seq, err := l2.Append(testRecord(99))
	if err != nil {
		t.Fatalf("Append after recovery: %v", err)
	}
	if seq != 6 {
		t.Fatalf("post-recovery seq %d, want 6", seq)
	}
}

func TestTornTailTolerated(t *testing.T) {
	dir := t.TempDir()
	l, _ := openFresh(t, dir, Config{})
	for i := int64(0); i < 3; i++ {
		if _, err := l.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	segs, _, err := scanDir(dir)
	if err != nil || len(segs) != 1 {
		t.Fatalf("scanDir: segs=%v err=%v", segs, err)
	}
	path := filepath.Join(dir, segs[0].name)
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Chop the final record mid-frame: a crash mid-append.
	if err := os.WriteFile(path, blob[:len(blob)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	l2, rec := openFresh(t, dir, Config{})
	defer l2.Close()
	if !rec.TornTail {
		t.Fatal("torn tail not reported")
	}
	if len(rec.Records) != 2 {
		t.Fatalf("recovered %d records, want 2 (torn third discarded)", len(rec.Records))
	}
	// The next append must reuse the discarded sequence number.
	seq, err := l2.Append(testRecord(9))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 3 {
		t.Fatalf("append after torn tail got seq %d, want 3", seq)
	}
}

func TestCorruptionMidSegmentIsTyped(t *testing.T) {
	dir := t.TempDir()
	l, _ := openFresh(t, dir, Config{})
	for i := int64(0); i < 3; i++ {
		if _, err := l.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	segs, _, _ := scanDir(dir)
	path := filepath.Join(dir, segs[0].name)
	blob, _ := os.ReadFile(path)
	// Flip one payload byte of the FIRST record: checksum fails, and a
	// valid record follows, so this cannot be a torn tail... except the
	// scanner cannot resync after a bad frame, so it treats everything
	// from the flip as the tail. For the last segment that is a
	// tolerated tear; the clean prefix (zero records here is wrong —
	// record 1's payload was hit, so the prefix is empty) must replay.
	blob[frameHeaderSize+2] ^= 0xFF
	os.WriteFile(path, blob, 0o644)

	l2, rec := openFresh(t, dir, Config{})
	defer l2.Close()
	if !rec.TornTail {
		t.Fatal("expected the damaged tail to be reported")
	}
	if len(rec.Records) != 0 {
		t.Fatalf("recovered %d records from a log damaged at record 1, want 0", len(rec.Records))
	}
}

func TestSnapshotRecoveryAndPrune(t *testing.T) {
	dir := t.TempDir()
	l, _ := openFresh(t, dir, Config{})
	for i := int64(0); i < 4; i++ {
		if _, err := l.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	snap := &Snapshot{
		NextID:   4,
		Sessions: []SessionState{{ID: 0, Embedding: testRecord(0).Embedding, FinalCost: 4.5}},
		Refs:     []RefCount{{VNF: 1, Node: 1, Count: 1}},
		Counters: Counters{Admitted: 4, AdmittedCost: 18},
	}
	if err := l.WriteSnapshot(snap); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	if snap.Seq != 4 {
		t.Fatalf("snapshot folded seq %d, want 4", snap.Seq)
	}
	// Two more records after the rotation.
	for i := int64(4); i < 6; i++ {
		if _, err := l.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	l2, rec := openFresh(t, dir, Config{})
	defer l2.Close()
	if rec.Snapshot == nil {
		t.Fatal("snapshot not recovered")
	}
	if rec.Snapshot.Seq != 4 || rec.Snapshot.NextID != 4 || rec.Snapshot.Counters.Admitted != 4 {
		t.Fatalf("snapshot mismatch: %+v", rec.Snapshot)
	}
	if len(rec.Records) != 2 {
		t.Fatalf("replayed %d tail records, want 2", len(rec.Records))
	}
	if rec.Records[0].Seq != 5 || rec.Records[1].Seq != 6 {
		t.Fatalf("tail seqs %d,%d want 5,6", rec.Records[0].Seq, rec.Records[1].Seq)
	}
}

func TestSnapshotFallbackWhenNewestCorrupt(t *testing.T) {
	dir := t.TempDir()
	l, _ := openFresh(t, dir, Config{})
	l.Append(testRecord(0))
	if err := l.WriteSnapshot(&Snapshot{NextID: 1, Counters: Counters{Admitted: 1}}); err != nil {
		t.Fatal(err)
	}
	l.Append(testRecord(1))
	if err := l.WriteSnapshot(&Snapshot{NextID: 2, Counters: Counters{Admitted: 2}}); err != nil {
		t.Fatal(err)
	}
	l.Close()

	_, snaps, _ := scanDir(dir)
	if len(snaps) != 2 {
		t.Fatalf("want 2 retained snapshots, have %v", snaps)
	}
	// Corrupt the newest snapshot; recovery must fall back to the
	// previous one and replay the records after IT.
	newest := filepath.Join(dir, snaps[1].name)
	blob, _ := os.ReadFile(newest)
	blob[frameHeaderSize] ^= 0xFF
	os.WriteFile(newest, blob, 0o644)

	l2, rec := openFresh(t, dir, Config{})
	defer l2.Close()
	if rec.Snapshot == nil || rec.Snapshot.Counters.Admitted != 1 {
		t.Fatalf("fallback snapshot not used: %+v", rec.Snapshot)
	}
	if len(rec.Records) != 1 || rec.Records[0].Session != 1 {
		t.Fatalf("tail after fallback: %+v", rec.Records)
	}
}

func TestEmptySnapshotNeverMasksRecords(t *testing.T) {
	dir := t.TempDir()
	l, _ := openFresh(t, dir, Config{})
	// Snapshot before any record: folds nothing (Seq 0).
	if err := l.WriteSnapshot(&Snapshot{}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(testRecord(0)); err != nil {
		t.Fatal(err)
	}
	l.Close()

	l2, rec := openFresh(t, dir, Config{})
	defer l2.Close()
	if len(rec.Records) != 1 {
		t.Fatalf("record after empty snapshot lost: %+v", rec)
	}
}

func TestCrashLosesNothingUnderSyncAlways(t *testing.T) {
	dir := t.TempDir()
	l, _ := openFresh(t, dir, Config{Policy: SyncAlways})
	for i := int64(0); i < 3; i++ {
		if _, err := l.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	l.Crash()
	if _, err := l.Append(testRecord(9)); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after crash: err=%v, want ErrClosed", err)
	}

	l2, rec := openFresh(t, dir, Config{})
	defer l2.Close()
	if len(rec.Records) != 3 {
		t.Fatalf("crash lost records: recovered %d, want 3", len(rec.Records))
	}
}

func TestTornTailTruncatedBeforeSecondCrash(t *testing.T) {
	// The double-crash scenario: crash mid-append (partial frame at the
	// tail), restart (tolerated tear), append one record, crash again,
	// restart. Recovery must truncate the tear from disk during the
	// first restart — otherwise the partial frame sits in a non-final
	// segment by the second restart and replay refuses to start,
	// stranding every committed record.
	dir := t.TempDir()
	l, _ := openFresh(t, dir, Config{})
	for i := int64(0); i < 3; i++ {
		if _, err := l.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	l.CrashTorn()

	l2, rec := openFresh(t, dir, Config{})
	if !rec.TornTail {
		t.Fatal("first restart did not report the torn tail")
	}
	if len(rec.Records) != 3 {
		t.Fatalf("first restart recovered %d records, want 3", len(rec.Records))
	}
	if _, err := l2.Append(testRecord(3)); err != nil {
		t.Fatalf("append after torn restart: %v", err)
	}
	l2.Crash()

	l3, rec3 := openFresh(t, dir, Config{})
	defer l3.Close()
	if rec3.TornTail {
		t.Fatal("truncated tear resurfaced on the second restart")
	}
	if len(rec3.Records) != 4 {
		t.Fatalf("second restart recovered %d records, want 4", len(rec3.Records))
	}
}

func TestRepeatedTornCrashCycles(t *testing.T) {
	// Every cycle appends one durable record and tears the tail; each
	// recovery must replay everything committed so far, every time.
	dir := t.TempDir()
	for cycle := 0; cycle < 4; cycle++ {
		l, rec := openFresh(t, dir, Config{})
		if len(rec.Records) != cycle {
			t.Fatalf("cycle %d: recovered %d records, want %d", cycle, len(rec.Records), cycle)
		}
		if cycle > 0 && !rec.TornTail {
			t.Fatalf("cycle %d: torn tail not reported", cycle)
		}
		if _, err := l.Append(testRecord(int64(cycle))); err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
		l.CrashTorn()
	}
}

func TestAppendErrorPoisonsLog(t *testing.T) {
	dir := t.TempDir()
	l, _ := openFresh(t, dir, Config{})
	if _, err := l.Append(testRecord(0)); err != nil {
		t.Fatal(err)
	}
	// Sabotage the descriptor so the next write fails the way a full
	// or dying disk would.
	l.mu.Lock()
	l.f.Close()
	l.mu.Unlock()
	if _, err := l.Append(testRecord(1)); err == nil || errors.Is(err, ErrClosed) {
		t.Fatalf("append on a dead descriptor: err=%v, want a write error", err)
	}
	// The log must now be poisoned: a partial frame may sit at the
	// tail, and stacking acked records behind it would let replay
	// silently discard them.
	if _, err := l.Append(testRecord(2)); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after write error: err=%v, want ErrClosed", err)
	}
	if err := l.Sync(); !errors.Is(err, ErrClosed) {
		t.Fatalf("sync after write error: err=%v, want ErrClosed", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close after poison: %v", err)
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for s, want := range map[string]SyncPolicy{"always": SyncAlways, "interval": SyncInterval, "none": SyncNone} {
		got, err := ParseSyncPolicy(s)
		if err != nil || got != want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("bogus policy accepted")
	}
}

func TestOversizedFrameLengthIsCorrupt(t *testing.T) {
	// A frame claiming more than MaxRecordBytes must be typed
	// corruption in a non-final segment, tolerated at the active tail.
	b := make([]byte, frameHeaderSize)
	b[3] = 0xFF // length 0xFF000000 > 16MiB
	_, err := ReplayBytes(b, false, func(*Record) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("non-final oversized length: err=%v, want ErrCorrupt", err)
	}
	torn, err := ReplayBytes(b, true, func(*Record) error { return nil })
	if err != nil || !torn {
		t.Fatalf("final oversized length: torn=%v err=%v, want torn tear", torn, err)
	}
}
