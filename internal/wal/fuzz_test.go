package wal

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"
)

// validLog builds a small well-formed segment image: three framed
// admit/release records with consecutive sequence numbers.
func validLog() []byte {
	var b []byte
	recs := []*Record{
		{Seq: 1, Type: RecAdmit, Session: 0, FinalCost: 2.5, Uses: [][2]int{{0, 1}}},
		{Seq: 2, Type: RecAdmit, Session: 1, FinalCost: 3.5, Uses: [][2]int{{0, 1}, {1, 2}}},
		{Seq: 3, Type: RecRelease, Session: 0},
	}
	for _, r := range recs {
		payload, err := json.Marshal(r)
		if err != nil {
			panic(err)
		}
		b = frame(b, payload)
	}
	return b
}

// FuzzWALReplay feeds arbitrary byte mutations of a valid log through
// the replayer. The contract under fuzzing: never panic, never report
// success past invalid data — every outcome is either a clean replay
// of a valid prefix, a tolerated torn tail, or a typed ErrCorrupt.
func FuzzWALReplay(f *testing.F) {
	f.Add(validLog(), true)
	f.Add(validLog(), false)
	f.Add([]byte{}, true)
	// A truncated tail: torn when final, corrupt otherwise.
	v := validLog()
	f.Add(v[:len(v)-5], true)
	f.Add(v[:len(v)-5], false)
	// A single corrupt header claiming an enormous payload.
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0}, false)

	f.Fuzz(func(t *testing.T, data []byte, lastSegment bool) {
		var replayed []Record
		torn, err := ReplayBytes(data, lastSegment, func(r *Record) error {
			replayed = append(replayed, *r)
			return nil
		})
		if err != nil {
			// The only legal failure is typed corruption.
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("untyped replay error: %v", err)
			}
			return
		}
		if torn && !lastSegment {
			t.Fatal("torn tail tolerated outside the final segment")
		}
		// Whatever replayed must be internally consistent: strictly
		// consecutive sequence numbers, each re-encodable.
		for i := 1; i < len(replayed); i++ {
			if replayed[i].Seq != replayed[i-1].Seq+1 {
				t.Fatalf("silent sequence gap: %d after %d",
					replayed[i].Seq, replayed[i-1].Seq)
			}
		}
		// A clean replay of the full untampered log must see all 3.
		if bytes.Equal(data, validLog()) && len(replayed) != 3 {
			t.Fatalf("valid log replayed %d records, want 3", len(replayed))
		}
	})
}
