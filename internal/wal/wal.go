// Package wal makes the dynamic admission pipeline durable: an
// append-only, length-prefixed, CRC32C-checksummed log of admission
// lifecycle records (admit, release, rebase purge, repair outcome)
// plus periodic compacted snapshots of the full controller state
// (sessions, dynamic-instance refcounts, counters, network version).
//
// Layout on disk, inside one directory:
//
//	wal-<firstseq>.log   append-only record segments, rotated at
//	                     every snapshot
//	snap-<seq>.json      framed snapshot documents; <seq> is the last
//	                     record folded into the snapshot
//
// Every frame — log record and snapshot alike — is
//
//	[4B little-endian payload length][4B CRC32C(payload)][payload]
//
// with the payload a JSON document. Recovery loads the newest valid
// snapshot, then replays every record with a higher sequence number
// from the segments, in order. A torn final record (the crash left a
// partial frame at the tail of the active segment) is tolerated,
// reported, and truncated from disk — so the tear cannot sit in a
// non-final segment after the next rotation, where replay would have
// to treat it as corruption. Corruption anywhere else is a typed
// ErrCorrupt — never a panic, never silently wrong state.
//
// Sync discipline is configurable: SyncAlways fsyncs after every
// append (a committed admission survives SIGKILL the moment the
// client is acked), SyncInterval batches fsyncs on a timer, SyncNone
// leaves durability to the OS page cache. Snapshots are always
// written to a temp file, fsynced, atomically renamed, and the
// directory fsynced, regardless of policy.
package wal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"sftree/internal/nfv"
)

var (
	// ErrCorrupt reports a frame whose length, checksum, payload or
	// sequence numbering is invalid in a position where a torn write
	// cannot explain it. Replay stops at the corruption; everything
	// before it is a clean prefix.
	ErrCorrupt = errors.New("wal: corrupt record")
	// ErrClosed reports an append or sync on a closed (or crashed) log.
	ErrClosed = errors.New("wal: log closed")
)

// MaxRecordBytes bounds one frame's payload so a corrupt length prefix
// cannot trigger an unbounded allocation during replay.
const MaxRecordBytes = 16 << 20

// frameHeaderSize is the fixed per-frame overhead: 4 bytes payload
// length + 4 bytes CRC32C.
const frameHeaderSize = 8

// castagnoli is the CRC32C table (the polynomial used by iSCSI, ext4
// and most storage WALs; hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// SyncPolicy selects when appended records are fsynced.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append: a record is durable before
	// Append returns.
	SyncAlways SyncPolicy = iota
	// SyncInterval flushes on every append and fsyncs on a background
	// timer (Config.Interval); a crash can lose the records of the
	// last interval.
	SyncInterval
	// SyncNone flushes to the OS on every append but never fsyncs
	// explicitly; a process kill loses nothing, an OS crash may.
	SyncNone
)

// ParseSyncPolicy maps the flag spellings to a policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "none":
		return SyncNone, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want always, interval or none)", s)
}

// RecordType tags one lifecycle record.
type RecordType string

// The admission lifecycle record types.
const (
	// RecAdmit commits one session: the validated embedding, its cost
	// of record and the full (vnf, node) usage list.
	RecAdmit RecordType = "admit"
	// RecRelease tears one session down; the replayer re-derives the
	// refcount decrements from the session's recorded usage list.
	RecRelease RecordType = "release"
	// RecRebase marks a substrate swap: the purged (dead) instance
	// references and the new network version.
	RecRebase RecordType = "rebase"
	// RecRepair captures one session's post-repair state: outcome
	// rung, replacement embedding, new cost, degraded/lost markers and
	// the re-derived usage list.
	RecRepair RecordType = "repair"
)

// Record is one admission lifecycle entry. Which fields are meaningful
// depends on Type; unused ones stay at their zero values and are
// omitted from the JSON payload.
type Record struct {
	Seq  uint64     `json:"seq"`
	Type RecordType `json:"type"`
	// Session identifies the affected session (admit, release, repair).
	Session int64 `json:"session,omitempty"`
	// Embedding is the session's full embedding after the operation
	// (admit, repair); it carries the task, walks and new instances.
	Embedding *nfv.Embedding `json:"embedding,omitempty"`
	// FinalCost is the session's cost of record after the operation.
	FinalCost float64 `json:"final_cost,omitempty"`
	// Uses is the session's full dynamic-instance usage list after the
	// operation: the refcount state machine replays from it.
	Uses [][2]int `json:"uses,omitempty"`
	// Degraded and Lost carry the partial-service markers (repair).
	Degraded bool  `json:"degraded,omitempty"`
	Lost     []int `json:"lost,omitempty"`
	// Outcome is the repair-ladder rung ("patched", "reembedded",
	// "degraded") for repair records.
	Outcome string `json:"outcome,omitempty"`
	// Purged lists the instance references a rebase dropped because
	// the fault killed them (rebase).
	Purged [][2]int `json:"purged,omitempty"`
	// Gen and Epoch stamp the network version after a rebase.
	Gen   uint64 `json:"gen,omitempty"`
	Epoch uint64 `json:"epoch,omitempty"`
}

// SessionState is one live session inside a snapshot.
type SessionState struct {
	ID        int64          `json:"id"`
	Embedding *nfv.Embedding `json:"embedding"`
	FinalCost float64        `json:"final_cost"`
	Degraded  bool           `json:"degraded,omitempty"`
	Lost      []int          `json:"lost,omitempty"`
	Uses      [][2]int       `json:"uses,omitempty"`
}

// RefCount is one dynamic-instance refcount ledger entry.
type RefCount struct {
	VNF   int `json:"vnf"`
	Node  int `json:"node"`
	Count int `json:"count"`
}

// Counters are the manager's monotonic accounting, folded into
// snapshots so a restore resumes the history, not just the state.
type Counters struct {
	Admitted            int     `json:"admitted"`
	Rejected            int     `json:"rejected"`
	AdmittedCost        float64 `json:"admitted_cost"`
	CommitConflicts     int     `json:"commit_conflicts"`
	AdmitRetries        int     `json:"admit_retries"`
	SerializedFallbacks int     `json:"serialized_fallbacks"`
}

// Snapshot is one compacted controller state: everything a restore
// needs without replaying history before Seq.
type Snapshot struct {
	Schema   string         `json:"schema"`
	Seq      uint64         `json:"seq"` // last record folded in
	NextID   int64          `json:"next_id"`
	Sessions []SessionState `json:"sessions"`
	Refs     []RefCount     `json:"refs"`
	Counters Counters       `json:"counters"`
	// Gen, Epoch and Incarnation version the network the snapshot was
	// taken against; a restore onto a different topology is detected
	// by conformance checks, not by these, but they make drift visible.
	Gen         uint64    `json:"gen"`
	Epoch       uint64    `json:"epoch"`
	Incarnation uint64    `json:"incarnation"`
	WrittenAt   time.Time `json:"written_at"`
}

// snapshotSchema versions the snapshot document.
const snapshotSchema = "sftwal/v1"

// Config parameterizes an opened log.
type Config struct {
	// Policy selects the fsync discipline; the zero value is
	// SyncAlways (the safe default).
	Policy SyncPolicy
	// Interval is the background fsync period for SyncInterval
	// (default 100ms).
	Interval time.Duration
	// KeepSnapshots bounds retained snapshot files (default 2; the
	// newest is the restore source, the previous one the fallback if
	// the newest turns out corrupt).
	KeepSnapshots int
}

// Recovery is what Open found on disk: the newest valid snapshot (nil
// on a fresh directory) and every record appended after it, in order.
type Recovery struct {
	Snapshot *Snapshot
	Records  []Record
	// TornTail reports that the active segment ended in a partial or
	// checksum-failing frame — the signature of a crash mid-append.
	// The torn record was discarded; everything before it replayed.
	TornTail bool
	// Segments is the number of segment files scanned.
	Segments int
}

// Empty reports a fresh directory: nothing to restore.
func (r *Recovery) Empty() bool {
	return r == nil || (r.Snapshot == nil && len(r.Records) == 0)
}

// LogStats counts a log's activity since Open.
type LogStats struct {
	Appended  uint64 `json:"appended"`
	Syncs     uint64 `json:"syncs"`
	Snapshots uint64 `json:"snapshots"`
}

// Log is an open write-ahead log. Append and WriteSnapshot must be
// externally serialized (the dynamic manager calls both under its
// commit mutex); Close and Crash may race with them safely.
type Log struct {
	dir string
	cfg Config

	mu      sync.Mutex
	f       *os.File
	buf     []byte // frame staging buffer, reused across appends
	nextSeq uint64
	closed  bool
	dirty   bool // bytes written since the last fsync
	stats   LogStats

	stopSync chan struct{} // interval-sync goroutine shutdown
	syncDone chan struct{}
	stopOnce sync.Once
}

// Open opens (creating if necessary) the log directory, recovers the
// state on disk, and starts a fresh active segment after it. The
// returned Recovery holds the newest valid snapshot plus the replay
// tail; pass it to dynamic.Restore to rehydrate a manager.
func Open(dir string, cfg Config) (*Log, *Recovery, error) {
	if cfg.Interval <= 0 {
		cfg.Interval = 100 * time.Millisecond
	}
	if cfg.KeepSnapshots <= 0 {
		cfg.KeepSnapshots = 2
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: open: %w", err)
	}
	rec, nextSeq, err := recoverDir(dir)
	if err != nil {
		return nil, nil, err
	}
	l := &Log{dir: dir, cfg: cfg, nextSeq: nextSeq}
	if err := l.openSegmentLocked(nextSeq); err != nil {
		return nil, nil, err
	}
	if cfg.Policy == SyncInterval {
		l.stopSync = make(chan struct{})
		l.syncDone = make(chan struct{})
		go l.syncLoop()
	}
	return l, rec, nil
}

// syncLoop drives the background fsync for SyncInterval.
func (l *Log) syncLoop() {
	defer close(l.syncDone)
	t := time.NewTicker(l.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-l.stopSync:
			return
		case <-t.C:
			l.mu.Lock()
			if !l.closed && l.dirty {
				if err := l.f.Sync(); err != nil {
					l.poisonLocked()
				} else {
					l.dirty = false
					l.stats.Syncs++
				}
			}
			l.mu.Unlock()
		}
	}
}

// segmentName returns the file name of the segment whose first record
// carries seq.
func segmentName(seq uint64) string { return fmt.Sprintf("wal-%020d.log", seq) }

// snapshotName returns the file name of the snapshot folding records
// up to and including seq.
func snapshotName(seq uint64) string { return fmt.Sprintf("snap-%020d.json", seq) }

// parseSeq extracts the sequence number from a segment or snapshot
// file name; ok is false for foreign files.
func parseSeq(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	mid := strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix)
	n, err := strconv.ParseUint(mid, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// openSegmentLocked creates the active segment starting at seq.
func (l *Log) openSegmentLocked(seq uint64) error {
	f, err := os.OpenFile(filepath.Join(l.dir, segmentName(seq)),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: open segment: %w", err)
	}
	l.f = f
	l.dirty = false
	return syncDir(l.dir)
}

// frame appends one framed payload to dst and returns the result.
func frame(dst, payload []byte) []byte {
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// Append assigns the record its sequence number, frames it, writes it
// to the active segment and applies the sync policy. It returns the
// assigned sequence number. The record is durable on return under
// SyncAlways.
func (l *Log) Append(rec *Record) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	rec.Seq = l.nextSeq
	payload, err := json.Marshal(rec)
	if err != nil {
		return 0, fmt.Errorf("wal: encode record: %w", err)
	}
	if len(payload) > MaxRecordBytes {
		return 0, fmt.Errorf("wal: record of %d bytes exceeds cap %d", len(payload), MaxRecordBytes)
	}
	l.buf = frame(l.buf[:0], payload)
	if _, err := l.f.Write(l.buf); err != nil {
		// A short write (ENOSPC, dead disk) may have left a partial
		// frame in the active segment. Accepting further appends would
		// stack acked records behind the tear, and replay — which stops
		// at the first torn frame — would silently discard them all.
		l.poisonLocked()
		return 0, fmt.Errorf("wal: append: %w (log poisoned)", err)
	}
	l.dirty = true
	if l.cfg.Policy == SyncAlways {
		if err := l.f.Sync(); err != nil {
			l.poisonLocked()
			return 0, fmt.Errorf("wal: fsync: %w (log poisoned)", err)
		}
		l.dirty = false
		l.stats.Syncs++
	}
	l.nextSeq++
	l.stats.Appended++
	return rec.Seq, nil
}

// Sync forces an fsync of the active segment.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if err := l.f.Sync(); err != nil {
		l.poisonLocked()
		return err
	}
	l.dirty = false
	l.stats.Syncs++
	return nil
}

// poisonLocked marks the log permanently failed after a write or
// fsync error of unknown extent: the on-disk tail may hold a partial
// frame, and after a failed fsync the kernel may have dropped dirty
// pages while clearing the error, so a later "successful" fsync would
// lie. Every subsequent Append/Sync fails with ErrClosed — disk and
// memory part ways loudly, never silently. Callers hold l.mu; an
// interval-sync goroutine, if any, is reaped by the next Close/Crash.
func (l *Log) poisonLocked() {
	l.closed = true
	l.f.Close()
}

// LastSeq returns the sequence number of the most recently appended
// record, or the snapshot seq if nothing was appended yet; zero on a
// fresh log.
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.nextSeq == 0 {
		return 0
	}
	return l.nextSeq - 1
}

// Stats returns the log's activity counters.
func (l *Log) Stats() LogStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// Dir returns the log directory.
func (l *Log) Dir() string { return l.dir }

// WriteSnapshot persists a compacted state document folding every
// record appended so far, rotates the active segment, and prunes
// segments and snapshots made obsolete. The snapshot write is atomic:
// temp file, fsync, rename, directory fsync. Callers serialize it
// with Append (the manager holds its mutex across both).
func (l *Log) WriteSnapshot(s *Snapshot) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	s.Schema = snapshotSchema
	if l.nextSeq > 0 {
		s.Seq = l.nextSeq - 1
	}
	s.WrittenAt = time.Now().UTC()
	payload, err := json.Marshal(s)
	if err != nil {
		return fmt.Errorf("wal: encode snapshot: %w", err)
	}

	// 1. Make the active segment durable: the snapshot claims to fold
	// every record up to Seq, so those records must not be lost to a
	// crash that survives the rename below.
	if err := l.f.Sync(); err != nil {
		l.poisonLocked()
		return fmt.Errorf("wal: fsync before snapshot: %w (log poisoned)", err)
	}
	l.dirty = false
	l.stats.Syncs++

	// 2. Atomic snapshot write.
	final := filepath.Join(l.dir, snapshotName(s.Seq))
	tmp := final + ".tmp"
	tf, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: snapshot temp: %w", err)
	}
	if _, err := tf.Write(frame(nil, payload)); err != nil {
		tf.Close()
		os.Remove(tmp)
		return fmt.Errorf("wal: snapshot write: %w", err)
	}
	if err := tf.Sync(); err != nil {
		tf.Close()
		os.Remove(tmp)
		return fmt.Errorf("wal: snapshot fsync: %w", err)
	}
	if err := tf.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: snapshot close: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: snapshot rename: %w", err)
	}
	if err := syncDir(l.dir); err != nil {
		return err
	}

	// 3. Rotate: further appends go to a fresh segment starting past
	// the snapshot, so the old one becomes prunable.
	old := l.f
	if err := l.openSegmentLocked(l.nextSeq); err != nil {
		l.f = old // keep appending to the old segment; never lose the log
		return err
	}
	old.Close()
	l.stats.Snapshots++

	// 4. Prune. Best-effort: leftover files only cost replay time.
	l.pruneLocked(s.Seq)
	return nil
}

// pruneLocked removes snapshots beyond the retention count, then
// segments fully folded into the *oldest retained* snapshot — not the
// newest: if the newest snapshot turns out corrupt, recovery falls
// back to the previous one and must still find the records between
// the two on disk.
func (l *Log) pruneLocked(snapSeq uint64) {
	segs, snaps, _ := scanDir(l.dir)
	if extra := len(snaps) - l.cfg.KeepSnapshots; extra > 0 {
		for _, sn := range snaps[:extra] {
			os.Remove(filepath.Join(l.dir, sn.name))
		}
		snaps = snaps[extra:]
	}
	horizon := snapSeq
	if len(snaps) > 0 && snaps[0].seq < horizon {
		horizon = snaps[0].seq
	}
	// A segment is prunable when its successor starts at or before
	// horizon+1: every record it can contain is then <= horizon, i.e.
	// folded into even the oldest snapshot recovery could fall back to.
	for i := 0; i+1 < len(segs); i++ {
		if segs[i+1].seq <= horizon+1 {
			os.Remove(filepath.Join(l.dir, segs[i].name))
		}
	}
}

// stopSyncLoop reaps the interval-sync goroutine, exactly once, even
// when the log was already closed by a poison or an earlier
// Close/Crash. Callers must not hold l.mu (the loop takes it).
func (l *Log) stopSyncLoop() {
	if l.stopSync == nil {
		return
	}
	l.stopOnce.Do(func() {
		close(l.stopSync)
		<-l.syncDone
	})
}

// Close flushes, fsyncs and closes the log.
func (l *Log) Close() error {
	l.mu.Lock()
	var err error
	if !l.closed {
		l.closed = true
		err = l.f.Sync()
		if cerr := l.f.Close(); err == nil {
			err = cerr
		}
	}
	l.mu.Unlock()
	l.stopSyncLoop()
	return err
}

// Crash simulates a SIGKILL for tests: the file descriptor is closed
// without flushing or fsyncing, so anything the OS did not already
// accept is lost, and every later Append fails with ErrClosed. It
// never writes.
func (l *Log) Crash() {
	l.mu.Lock()
	if !l.closed {
		l.closed = true
		l.f.Close()
	}
	l.mu.Unlock()
	l.stopSyncLoop()
}

// CrashTorn simulates a SIGKILL that caught an append mid-write: a
// partial frame — a header promising more payload bytes than actually
// follow — is left at the tail of the active segment, then the
// descriptor is closed without fsync and every later Append fails
// with ErrClosed. The torn record was never acked to any caller, so
// recovery must discard the tear (and truncate it from disk) without
// losing anything committed before it. The crash-injection harness
// uses it to exercise torn-write recovery end-to-end, including
// repeated crash/restart cycles.
func (l *Log) CrashTorn() {
	l.mu.Lock()
	if !l.closed {
		l.closed = true
		payload, _ := json.Marshal(&Record{Seq: l.nextSeq, Type: "torn-by-crash-injection"})
		l.buf = frame(l.buf[:0], payload)
		l.f.Write(l.buf[:len(l.buf)-len(payload)/2]) // best-effort: the fd dies either way
		l.f.Close()
	}
	l.mu.Unlock()
	l.stopSyncLoop()
}

// syncDir fsyncs a directory so renames and creates within it are
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: open dir for sync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: sync dir: %w", err)
	}
	return nil
}

// dirEntry pairs a wal file name with its parsed sequence number.
type dirEntry struct {
	name string
	seq  uint64
}

// scanDir lists segments and snapshots in ascending seq order.
func scanDir(dir string) (segs, snaps []dirEntry, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: scan: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if seq, ok := parseSeq(e.Name(), "wal-", ".log"); ok {
			segs = append(segs, dirEntry{e.Name(), seq})
		}
		if seq, ok := parseSeq(e.Name(), "snap-", ".json"); ok {
			snaps = append(snaps, dirEntry{e.Name(), seq})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].seq < segs[j].seq })
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].seq < snaps[j].seq })
	return segs, snaps, nil
}

// recoverDir loads the newest valid snapshot and replays the record
// tail. It returns the recovery plus the next sequence number to
// assign.
func recoverDir(dir string) (*Recovery, uint64, error) {
	segs, snaps, err := scanDir(dir)
	if err != nil {
		return nil, 0, err
	}
	rec := &Recovery{}

	// Newest valid snapshot wins; a corrupt one falls back to the next.
	for i := len(snaps) - 1; i >= 0; i-- {
		snap, err := loadSnapshot(filepath.Join(dir, snaps[i].name))
		if err != nil {
			continue // fall back to the previous retained snapshot
		}
		rec.Snapshot = snap
		break
	}
	var snapSeq uint64
	var haveSnap bool
	if rec.Snapshot != nil {
		snapSeq, haveSnap = rec.Snapshot.Seq, true
	}

	// Sequence numbers start at 1, so a snapshot taken before any record
	// carries Seq 0 and can never mask a real record (none is <= 0).
	nextSeq := uint64(1)
	if haveSnap {
		nextSeq = snapSeq + 1
	}
	for i, seg := range segs {
		// Skip segments fully folded into the snapshot.
		if haveSnap && i+1 < len(segs) && segs[i+1].seq <= snapSeq+1 {
			continue
		}
		last := i == len(segs)-1
		path := filepath.Join(dir, seg.name)
		valid, torn, err := replaySegment(path, last, func(r *Record) error {
			if haveSnap && r.Seq <= snapSeq {
				return nil // already folded into the snapshot
			}
			if r.Seq != nextSeq {
				return fmt.Errorf("%w: sequence gap: got %d, want %d", ErrCorrupt, r.Seq, nextSeq)
			}
			rec.Records = append(rec.Records, *r)
			nextSeq = r.Seq + 1
			return nil
		})
		if err != nil {
			return nil, 0, fmt.Errorf("wal: segment %s: %w", seg.name, err)
		}
		rec.Segments++
		if torn {
			rec.TornTail = true
			// Remove the tolerated tear from disk, durably. Without this
			// the partial frame would sit in a non-final segment once
			// Open rotates to a fresh one, and the NEXT recovery (before
			// a snapshot folds this segment away) would have to treat it
			// as ErrCorrupt — refusing to start with all committed
			// records stranded behind it.
			if terr := truncateTail(path, int64(valid)); terr != nil {
				return nil, 0, fmt.Errorf("wal: truncate torn tail of %s: %w", seg.name, terr)
			}
		}
	}
	return rec, nextSeq, nil
}

// truncateTail cuts a segment back to its last valid frame boundary
// and makes the cut durable.
func truncateTail(path string, size int64) error {
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := f.Truncate(size); err != nil {
		return err
	}
	return f.Sync()
}

// loadSnapshot reads and validates one framed snapshot document.
func loadSnapshot(path string) (*Snapshot, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	payload, rest, err := readFrame(blob)
	if err != nil {
		return nil, fmt.Errorf("snapshot %s: %w", filepath.Base(path), err)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: snapshot %s: %d trailing bytes", ErrCorrupt, filepath.Base(path), len(rest))
	}
	var snap Snapshot
	if err := json.Unmarshal(payload, &snap); err != nil {
		return nil, fmt.Errorf("%w: snapshot %s: %v", ErrCorrupt, filepath.Base(path), err)
	}
	if snap.Schema != snapshotSchema {
		return nil, fmt.Errorf("%w: snapshot %s: schema %q", ErrCorrupt, filepath.Base(path), snap.Schema)
	}
	return &snap, nil
}

// errTorn marks an incomplete or checksum-failing frame; only
// tolerated at the very tail of the last segment.
var errTorn = errors.New("wal: torn frame")

// readFrame decodes one frame from b, returning the payload and the
// remaining bytes. It returns errTorn when b ends mid-frame or the
// checksum fails (indistinguishable from a torn write without more
// context), and ErrCorrupt for structurally impossible lengths.
func readFrame(b []byte) (payload, rest []byte, err error) {
	if len(b) < frameHeaderSize {
		return nil, nil, errTorn
	}
	length := binary.LittleEndian.Uint32(b[0:4])
	if length > MaxRecordBytes {
		return nil, nil, fmt.Errorf("%w: frame length %d exceeds cap %d", ErrCorrupt, length, MaxRecordBytes)
	}
	want := binary.LittleEndian.Uint32(b[4:8])
	body := b[frameHeaderSize:]
	if uint32(len(body)) < length {
		return nil, nil, errTorn
	}
	payload = body[:length]
	if crc32.Checksum(payload, castagnoli) != want {
		return nil, nil, errTorn
	}
	return payload, body[length:], nil
}

// ReplayBytes scans one segment image from memory, invoking fn per
// decoded record. It reports whether the scan ended in a tolerated
// torn tail (lastSegment true) and returns ErrCorrupt-wrapped errors
// for everything a torn write cannot explain. The fuzz target drives
// it directly.
func ReplayBytes(b []byte, lastSegment bool, fn func(*Record) error) (torn bool, err error) {
	_, torn, err = replayBytes(b, lastSegment, fn)
	return torn, err
}

// replayBytes is ReplayBytes plus the length of the valid prefix in
// bytes — the boundary recovery truncates a torn last segment back to.
func replayBytes(b []byte, lastSegment bool, fn func(*Record) error) (validLen int, torn bool, err error) {
	total := len(b)
	var prevSeq uint64
	var havePrev bool
	for len(b) > 0 {
		valid := total - len(b)
		payload, rest, err := readFrame(b)
		if err != nil {
			if errors.Is(err, errTorn) {
				if lastSegment {
					return valid, true, nil // crash mid-append: discard the tail
				}
				return valid, false, fmt.Errorf("%w: torn frame in non-final segment", ErrCorrupt)
			}
			if lastSegment && errors.Is(err, ErrCorrupt) {
				// A corrupt length at the tail of the active segment is a
				// torn write too (the length bytes never fully landed).
				return valid, true, nil
			}
			return valid, false, err
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			// The checksum matched but the payload is not a record: the
			// writer never produces this, so it is corruption, not a tear.
			return valid, false, fmt.Errorf("%w: undecodable payload: %v", ErrCorrupt, err)
		}
		if havePrev && rec.Seq != prevSeq+1 {
			return valid, false, fmt.Errorf("%w: sequence gap: %d after %d", ErrCorrupt, rec.Seq, prevSeq)
		}
		prevSeq, havePrev = rec.Seq, true
		if err := fn(&rec); err != nil {
			return valid, false, err
		}
		b = rest
	}
	return total, false, nil
}

// replaySegment streams one segment file through replayBytes.
func replaySegment(path string, lastSegment bool, fn func(*Record) error) (validLen int, torn bool, err error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		if errors.Is(err, io.EOF) {
			return 0, false, nil
		}
		return 0, false, err
	}
	return replayBytes(blob, lastSegment, fn)
}
