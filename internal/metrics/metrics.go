// Package metrics provides the small statistics toolkit the benchmark
// harness uses to aggregate per-trial measurements: online mean and
// standard deviation (Welford), min/max tracking, and percentage
// reduction helpers for the paper's "MSA saves X% over RSA" claims.
package metrics

import (
	"math"
	"sort"
	"time"
)

// Sample accumulates observations with Welford's online algorithm.
// The zero value is ready to use.
type Sample struct {
	n               int
	mean, m2        float64
	minV, maxV      float64
	hasObservations bool
}

// Add records one observation.
func (s *Sample) Add(x float64) {
	s.n++
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
	if !s.hasObservations || x < s.minV {
		s.minV = x
	}
	if !s.hasObservations || x > s.maxV {
		s.maxV = x
	}
	s.hasObservations = true
}

// AddDuration records a duration in milliseconds.
func (s *Sample) AddDuration(d time.Duration) {
	s.Add(float64(d) / float64(time.Millisecond))
}

// N returns the observation count.
func (s *Sample) N() int { return s.n }

// Mean returns the sample mean (0 with no observations).
func (s *Sample) Mean() float64 { return s.mean }

// StdDev returns the sample standard deviation (n-1 denominator). It
// is 0 for fewer than two observations, and floating-point cancellation
// in the Welford accumulator can never surface as NaN: a (tiny)
// negative second moment is clamped to zero.
func (s *Sample) StdDev() float64 {
	if s.n < 2 || s.m2 <= 0 {
		return 0
	}
	return math.Sqrt(s.m2 / float64(s.n-1))
}

// Min returns the smallest observation (0 with no observations).
func (s *Sample) Min() float64 { return s.minV }

// Max returns the largest observation (0 with no observations).
func (s *Sample) Max() float64 { return s.maxV }

// ReductionPct returns how much smaller `ours` is than `base`, as a
// percentage of base: 100*(base-ours)/base. Zero base yields zero.
func ReductionPct(base, ours float64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * (base - ours) / base
}

// Distribution stores observations for quantile queries (unlike
// Sample, which is streaming and constant-space).
type Distribution struct {
	vals   []float64
	sorted bool
}

// Add records one observation.
func (d *Distribution) Add(x float64) {
	d.vals = append(d.vals, x)
	d.sorted = false
}

// N returns the observation count.
func (d *Distribution) N() int { return len(d.vals) }

// Mean returns the arithmetic mean (0 when empty).
func (d *Distribution) Mean() float64 {
	if len(d.vals) == 0 {
		return 0
	}
	var sum float64
	for _, v := range d.vals {
		sum += v
	}
	return sum / float64(len(d.vals))
}

// Quantile returns the q-quantile (q in [0,1]) with linear
// interpolation between order statistics. Degenerate inputs are safe:
// an empty distribution yields 0, a single observation yields itself
// for every q, out-of-range q clamps to the extremes, and a NaN q is
// treated as 0 (never an index panic).
func (d *Distribution) Quantile(q float64) float64 {
	n := len(d.vals)
	if n == 0 {
		return 0
	}
	if !d.sorted {
		sort.Float64s(d.vals)
		d.sorted = true
	}
	switch {
	case q <= 0 || math.IsNaN(q):
		return d.vals[0]
	case q >= 1:
		return d.vals[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return d.vals[lo]
	}
	frac := pos - float64(lo)
	return d.vals[lo]*(1-frac) + d.vals[hi]*frac
}
