package metrics

import (
	"math"
	"testing"
	"time"
)

func TestSampleMoments(t *testing.T) {
	var s Sample
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Errorf("N = %d", s.N())
	}
	if math.Abs(s.Mean()-5) > 1e-12 {
		t.Errorf("mean = %v, want 5", s.Mean())
	}
	// Population stddev of this classic set is 2; sample stddev is
	// sqrt(32/7).
	if want := math.Sqrt(32.0 / 7.0); math.Abs(s.StdDev()-want) > 1e-12 {
		t.Errorf("stddev = %v, want %v", s.StdDev(), want)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("min/max = %v/%v", s.Min(), s.Max())
	}
}

func TestSampleEmptyAndSingle(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.StdDev() != 0 || s.N() != 0 {
		t.Error("empty sample not zero")
	}
	s.Add(3)
	if s.StdDev() != 0 {
		t.Errorf("single-observation stddev = %v", s.StdDev())
	}
	if s.Min() != 3 || s.Max() != 3 {
		t.Errorf("min/max = %v/%v", s.Min(), s.Max())
	}
}

func TestSampleNegativeValues(t *testing.T) {
	var s Sample
	s.Add(-5)
	s.Add(5)
	if s.Min() != -5 || s.Max() != 5 || s.Mean() != 0 {
		t.Errorf("min=%v max=%v mean=%v", s.Min(), s.Max(), s.Mean())
	}
}

func TestAddDuration(t *testing.T) {
	var s Sample
	s.AddDuration(1500 * time.Millisecond)
	if math.Abs(s.Mean()-1500) > 1e-9 {
		t.Errorf("mean ms = %v", s.Mean())
	}
}

func TestDistributionQuantiles(t *testing.T) {
	var d Distribution
	if d.Quantile(0.5) != 0 || d.Mean() != 0 || d.N() != 0 {
		t.Error("empty distribution not zero")
	}
	for _, v := range []float64{5, 1, 3, 2, 4} {
		d.Add(v)
	}
	if d.N() != 5 {
		t.Errorf("N = %d", d.N())
	}
	if got := d.Quantile(0); got != 1 {
		t.Errorf("q0 = %v", got)
	}
	if got := d.Quantile(1); got != 5 {
		t.Errorf("q1 = %v", got)
	}
	if got := d.Quantile(0.5); got != 3 {
		t.Errorf("median = %v", got)
	}
	// Interpolated quantile: q=0.25 over [1..5] -> 2.
	if got := d.Quantile(0.25); math.Abs(got-2) > 1e-12 {
		t.Errorf("q25 = %v", got)
	}
	if got := d.Quantile(0.9); math.Abs(got-4.6) > 1e-12 {
		t.Errorf("q90 = %v, want 4.6", got)
	}
	if got := d.Mean(); got != 3 {
		t.Errorf("mean = %v", got)
	}
	// Adding after a quantile query must re-sort.
	d.Add(0)
	if got := d.Quantile(0); got != 0 {
		t.Errorf("q0 after add = %v", got)
	}
}

// TestDegenerateInputsNeverNaN table-drives every accessor over the
// degenerate observation counts (0, 1, 2) plus pathological values, and
// asserts nothing surfaces as NaN, Inf, or a panic.
func TestDegenerateInputsNeverNaN(t *testing.T) {
	cases := []struct {
		name string
		obs  []float64
	}{
		{"empty", nil},
		{"single", []float64{7}},
		{"single_zero", []float64{0}},
		{"single_negative", []float64{-3.5}},
		{"pair", []float64{2, 2}},
		{"pair_distinct", []float64{1, 9}},
		{"identical_many", []float64{4, 4, 4, 4}},
		{"huge_cancellation", []float64{1e15, 1e15 + 1, 1e15 + 2}},
	}
	quantiles := []float64{math.NaN(), -1, 0, 0.5, 1, 2}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var s Sample
			var d Distribution
			for _, x := range tc.obs {
				s.Add(x)
				d.Add(x)
			}
			for name, v := range map[string]float64{
				"Sample.Mean": s.Mean(), "Sample.StdDev": s.StdDev(),
				"Sample.Min": s.Min(), "Sample.Max": s.Max(),
				"Distribution.Mean": d.Mean(),
			} {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Errorf("%s = %v", name, v)
				}
			}
			if s.StdDev() < 0 {
				t.Errorf("negative stddev %v", s.StdDev())
			}
			for _, q := range quantiles {
				v := d.Quantile(q)
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Errorf("Quantile(%v) = %v", q, v)
				}
				if len(tc.obs) == 1 && v != tc.obs[0] {
					t.Errorf("single-observation Quantile(%v) = %v, want %v", q, v, tc.obs[0])
				}
			}
		})
	}
}

func TestReductionPct(t *testing.T) {
	if got := ReductionPct(200, 150); math.Abs(got-25) > 1e-12 {
		t.Errorf("got %v, want 25", got)
	}
	if got := ReductionPct(0, 10); got != 0 {
		t.Errorf("zero base: %v", got)
	}
	if got := ReductionPct(100, 120); math.Abs(got+20) > 1e-12 {
		t.Errorf("negative reduction: %v", got)
	}
}
