// Package topology provides hand-coded real-world network topologies.
// PalmettoNet is the 45-node South Carolina research/education backbone
// the paper evaluates on (topology-zoo.org). Because the dataset is
// not redistributable here, the topology is a documented
// reconstruction: the 45 largest South Carolina cities with
// approximate geographic coordinates, wired along the state's
// interstate and US-highway corridors into the ring-and-spur structure
// of the published map. Every experiment only depends on the node
// count, the sparse geographic structure, and Euclidean link costs,
// all of which the reconstruction preserves (see DESIGN.md).
package topology

import (
	"math"

	"sftree/internal/graph"
	"sftree/internal/nfv"
)

// city is one PalmettoNet PoP.
type city struct {
	name     string
	lat, lon float64
}

// palmettoCities lists the 45 nodes. Indices are node IDs.
var palmettoCities = []city{
	{"Columbia", 34.00, -81.03},           // 0
	{"Charleston", 32.78, -79.93},         // 1
	{"North Charleston", 32.85, -79.97},   // 2
	{"Greenville", 34.85, -82.40},         // 3
	{"Spartanburg", 34.95, -81.93},        // 4
	{"Rock Hill", 34.92, -81.03},          // 5
	{"Mount Pleasant", 32.83, -79.82},     // 6
	{"Summerville", 33.02, -80.18},        // 7
	{"Sumter", 33.92, -80.34},             // 8
	{"Goose Creek", 32.98, -80.03},        // 9
	{"Hilton Head", 32.22, -80.75},        // 10
	{"Florence", 34.20, -79.77},           // 11
	{"Myrtle Beach", 33.69, -78.89},       // 12
	{"Aiken", 33.56, -81.72},              // 13
	{"Anderson", 34.50, -82.65},           // 14
	{"Greer", 34.94, -82.23},              // 15
	{"Mauldin", 34.78, -82.30},            // 16
	{"Greenwood", 34.19, -82.16},          // 17
	{"North Augusta", 33.50, -81.97},      // 18
	{"Easley", 34.83, -82.60},             // 19
	{"Simpsonville", 34.74, -82.25},       // 20
	{"Hanahan", 32.93, -80.02},            // 21
	{"Lexington", 33.98, -81.24},          // 22
	{"Conway", 33.84, -79.05},             // 23
	{"West Columbia", 33.99, -81.07},      // 24
	{"North Myrtle Beach", 33.82, -78.68}, // 25
	{"Clemson", 34.68, -82.84},            // 26
	{"Orangeburg", 33.49, -80.86},         // 27
	{"Cayce", 33.96, -81.07},              // 28
	{"Bluffton", 32.24, -80.86},           // 29
	{"Beaufort", 32.43, -80.67},           // 30
	{"Gaffney", 35.07, -81.65},            // 31
	{"Irmo", 34.09, -81.18},               // 32
	{"Fort Mill", 35.01, -80.95},          // 33
	{"Port Royal", 32.38, -80.69},         // 34
	{"Forest Acres", 34.02, -80.96},       // 35
	{"Newberry", 34.27, -81.62},           // 36
	{"Laurens", 34.50, -82.01},            // 37
	{"Camden", 34.25, -80.61},             // 38
	{"Lancaster", 34.72, -80.77},          // 39
	{"Georgetown", 33.38, -79.29},         // 40
	{"Clinton", 34.47, -81.88},            // 41
	{"Union", 34.72, -81.62},              // 42
	{"Seneca", 34.69, -82.95},             // 43
	{"Walterboro", 32.91, -80.67},         // 44
}

// palmettoEdges wires the cities along highway corridors.
var palmettoEdges = [][2]int{
	// I-26 corridor: Charleston - Summerville - Orangeburg - Columbia -
	// Newberry - Clinton - Spartanburg.
	{1, 2}, {2, 21}, {21, 9}, {9, 7}, {7, 27}, {27, 28}, {28, 24}, {24, 0},
	{0, 32}, {32, 36}, {36, 41}, {41, 4},
	// I-85 corridor: Gaffney - Spartanburg - Greer - Greenville -
	// Easley - Clemson - Seneca / Anderson.
	{31, 4}, {4, 15}, {15, 3}, {3, 19}, {19, 26}, {26, 43}, {26, 14}, {14, 19},
	// Greenville metro ring.
	{3, 16}, {16, 20}, {20, 15}, {16, 14},
	// I-385 / US-276: Greenville - Simpsonville - Laurens - Clinton.
	{20, 37}, {37, 41}, {37, 17},
	// US-25/SC-72: Greenwood - Clinton / Greenwood - Newberry / Anderson.
	{17, 41}, {17, 36}, {17, 14},
	// I-77: Columbia - Camden(spur) - Lancaster - Rock Hill - Fort Mill.
	{0, 35}, {35, 38}, {38, 39}, {39, 5}, {5, 33}, {33, 31},
	// US-321/SC-9: Rock Hill - Union - Spartanburg; Lancaster ring.
	{5, 42}, {42, 4}, {42, 36}, {39, 33},
	// I-20: Columbia - Lexington - Aiken - North Augusta.
	{24, 22}, {22, 13}, {13, 18}, {18, 13},
	// I-20 east: Columbia - Camden - Florence.
	{38, 11},
	// I-95/US-378 interior: Sumter - Columbia, Sumter - Florence.
	{0, 8}, {8, 11}, {8, 38}, {8, 27},
	// Pee Dee / Grand Strand: Florence - Conway - Myrtle Beach -
	// North Myrtle Beach; Georgetown links.
	{11, 23}, {23, 12}, {12, 25}, {23, 25}, {12, 40}, {40, 23},
	// US-17 coast: Mount Pleasant - Charleston - Georgetown.
	{6, 1}, {6, 40},
	// Lowcountry: Charleston - Walterboro - Beaufort - Port Royal -
	// Hilton Head - Bluffton; Walterboro - Orangeburg.
	{2, 44}, {44, 30}, {30, 34}, {34, 10}, {10, 29}, {29, 30}, {44, 27},
	// Savannah-side tie: Bluffton - Hilton Head already; Aiken -
	// Orangeburg interior link.
	{13, 27},
	// Greenwood - Aiken (US-25 south).
	{17, 13},
	// Irmo - Newberry local and Lexington - Cayce metro ring.
	{22, 28}, {24, 35},
}

// Palmetto returns the reconstructed PalmettoNet topology: the graph
// with Euclidean (approximate km) link costs, node coordinates, and
// city names. The graph has 45 nodes and is connected.
func Palmetto() (*graph.Graph, []nfv.Point, []string) {
	coords := make([]nfv.Point, len(palmettoCities))
	names := make([]string, len(palmettoCities))
	for i, c := range palmettoCities {
		// Equirectangular projection around 34N: 1 degree latitude is
		// ~111 km, longitude scaled by cos(34 degrees).
		coords[i] = nfv.Point{
			X: c.lon * 111 * math.Cos(34*math.Pi/180),
			Y: c.lat * 111,
		}
		names[i] = c.name
	}
	g := graph.New(len(palmettoCities))
	seen := make(map[[2]int]bool, len(palmettoEdges))
	for _, e := range palmettoEdges {
		u, v := e[0], e[1]
		if u > v {
			u, v = v, u
		}
		if u == v || seen[[2]int{u, v}] {
			continue // tolerate table typos without duplicating links
		}
		seen[[2]int{u, v}] = true
		dx := coords[e[0]].X - coords[e[1]].X
		dy := coords[e[0]].Y - coords[e[1]].Y
		g.MustAddEdge(e[0], e[1], math.Sqrt(dx*dx+dy*dy))
	}
	return g, coords, names
}
