package topology

import (
	"math"

	"sftree/internal/graph"
	"sftree/internal/nfv"
)

// abileneCities lists the 11 PoPs of the Internet2 Abilene backbone,
// the classic research topology (11 nodes, 14 links). Useful as a
// second real-world evaluation network besides PalmettoNet.
var abileneCities = []city{
	{"Seattle", 47.61, -122.33},      // 0
	{"Sunnyvale", 37.37, -122.04},    // 1
	{"Los Angeles", 34.05, -118.24},  // 2
	{"Denver", 39.74, -104.99},       // 3
	{"Kansas City", 39.10, -94.58},   // 4
	{"Houston", 29.76, -95.37},       // 5
	{"Chicago", 41.88, -87.63},       // 6
	{"Indianapolis", 39.77, -86.16},  // 7
	{"Atlanta", 33.75, -84.39},       // 8
	{"Washington DC", 38.91, -77.04}, // 9
	{"New York", 40.71, -74.01},      // 10
}

// abileneEdges is the published 14-link Abilene adjacency.
var abileneEdges = [][2]int{
	{0, 1}, {0, 3}, // Seattle - Sunnyvale, Denver
	{1, 2}, {1, 3}, // Sunnyvale - Los Angeles, Denver
	{2, 5},         // Los Angeles - Houston
	{3, 4},         // Denver - Kansas City
	{4, 5}, {4, 7}, // Kansas City - Houston, Indianapolis
	{5, 8},         // Houston - Atlanta
	{7, 6}, {7, 8}, // Indianapolis - Chicago, Atlanta
	{6, 10}, // Chicago - New York
	{8, 9},  // Atlanta - Washington
	{9, 10}, // Washington - New York
}

// Abilene returns the 11-node Internet2 Abilene backbone with
// Euclidean (approximate km) link costs, coordinates, and city names.
func Abilene() (*graph.Graph, []nfv.Point, []string) {
	coords := make([]nfv.Point, len(abileneCities))
	names := make([]string, len(abileneCities))
	for i, c := range abileneCities {
		coords[i] = nfv.Point{
			X: c.lon * 111 * math.Cos(39*math.Pi/180),
			Y: c.lat * 111,
		}
		names[i] = c.name
	}
	g := graph.New(len(abileneCities))
	for _, e := range abileneEdges {
		dx := coords[e[0]].X - coords[e[1]].X
		dy := coords[e[0]].Y - coords[e[1]].Y
		g.MustAddEdge(e[0], e[1], math.Sqrt(dx*dx+dy*dy))
	}
	return g, coords, names
}
