package topology

import (
	"math"
	"math/rand"
	"testing"

	"sftree/internal/core"
	"sftree/internal/netgen"
)

func TestPalmettoShape(t *testing.T) {
	g, coords, names := Palmetto()
	if g.NumNodes() != 45 {
		t.Fatalf("nodes = %d, want 45", g.NumNodes())
	}
	if len(coords) != 45 || len(names) != 45 {
		t.Fatalf("metadata sizes: %d coords, %d names", len(coords), len(names))
	}
	if !g.Connected() {
		t.Fatal("Palmetto reconstruction is not connected")
	}
	// Sparse geographic backbone: average degree well under 4.
	if avg := 2 * float64(g.NumEdges()) / float64(g.NumNodes()); avg > 4 {
		t.Errorf("average degree %v too dense for a backbone", avg)
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Errorf("duplicate city %q", n)
		}
		seen[n] = true
	}
}

func TestPalmettoEdgeCostsAreEuclidean(t *testing.T) {
	g, coords, _ := Palmetto()
	for _, e := range g.Edges() {
		dx := coords[e.U].X - coords[e.V].X
		dy := coords[e.U].Y - coords[e.V].Y
		want := math.Sqrt(dx*dx + dy*dy)
		if math.Abs(e.Cost-want) > 1e-9 {
			t.Fatalf("edge %d-%d cost %v, want %v", e.U, e.V, e.Cost, want)
		}
		if e.Cost <= 0 {
			t.Fatalf("edge %d-%d has non-positive cost", e.U, e.V)
		}
	}
}

func TestPalmettoNoDuplicateEdges(t *testing.T) {
	g, _, _ := Palmetto()
	seen := map[[2]int]bool{}
	for _, e := range g.Edges() {
		u, v := e.U, e.V
		if u > v {
			u, v = v, u
		}
		if seen[[2]int{u, v}] {
			t.Fatalf("duplicate edge %d-%d", u, v)
		}
		seen[[2]int{u, v}] = true
	}
}

func TestPalmettoDistancesPlausible(t *testing.T) {
	// Charleston (1) to Greenville (3) is roughly 300 km by road; the
	// shortest path over the reconstruction should land in a sane band.
	g, _, _ := Palmetto()
	d := g.Dijkstra(1).Dist[3]
	if d < 200 || d > 500 {
		t.Errorf("Charleston-Greenville distance %v km implausible", d)
	}
}

func TestPalmettoSolvesEndToEnd(t *testing.T) {
	g, coords, _ := Palmetto()
	rng := rand.New(rand.NewSource(13))
	cfg := netgen.PaperConfig(45, 2)
	net, err := netgen.Materialize(g, coords, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	task, err := netgen.GenerateTask(net, rng, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Solve(net, task, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Validate(res.Embedding); err != nil {
		t.Errorf("invalid: %v", err)
	}
	if res.FinalCost <= 0 {
		t.Errorf("cost = %v", res.FinalCost)
	}
}
