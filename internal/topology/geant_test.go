package topology

import (
	"math/rand"
	"testing"

	"sftree/internal/core"
	"sftree/internal/netgen"
	"sftree/internal/nfv"
)

func TestGeantShape(t *testing.T) {
	g, coords, names := Geant()
	if g.NumNodes() != 24 {
		t.Fatalf("nodes = %d, want 24", g.NumNodes())
	}
	if g.NumEdges() != 36 {
		t.Fatalf("edges = %d, want 36", g.NumEdges())
	}
	if len(coords) != 24 || len(names) != 24 {
		t.Fatal("metadata sizes wrong")
	}
	if !g.Connected() {
		t.Fatal("GEANT reconstruction not connected")
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate city %q", n)
		}
		seen[n] = true
	}
}

func TestGeantGeography(t *testing.T) {
	g, _, _ := Geant()
	// Lisbon (14) to Helsinki (18) spans the continent: expect a few
	// thousand km along the backbone.
	d := g.Dijkstra(14).Dist[18]
	if d < 3000 || d > 9000 {
		t.Errorf("Lisbon-Helsinki distance %v km implausible", d)
	}
}

func TestGeantSolvesEndToEnd(t *testing.T) {
	g, coords, _ := Geant()
	rng := rand.New(rand.NewSource(23))
	net, err := netgen.Materialize(g, coords, netgen.PaperConfig(24, 2), rng)
	if err != nil {
		t.Fatal(err)
	}
	// London multicasts to Athens, Helsinki, Lisbon through 4 functions.
	task := nfv.Task{Source: 0, Destinations: []int{21, 18, 14}, Chain: nfv.SFC{0, 1, 2, 3}}
	res, err := core.Solve(net, task, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Validate(res.Embedding); err != nil {
		t.Errorf("invalid: %v", err)
	}
}
