package topology

import (
	"math"
	"math/rand"
	"testing"

	"sftree/internal/core"
	"sftree/internal/netgen"
	"sftree/internal/nfv"
)

func TestAbileneShape(t *testing.T) {
	g, coords, names := Abilene()
	if g.NumNodes() != 11 {
		t.Fatalf("nodes = %d, want 11", g.NumNodes())
	}
	if g.NumEdges() != 14 {
		t.Fatalf("edges = %d, want 14 (published Abilene)", g.NumEdges())
	}
	if len(coords) != 11 || len(names) != 11 {
		t.Fatal("metadata sizes wrong")
	}
	if !g.Connected() {
		t.Fatal("Abilene not connected")
	}
}

func TestAbileneGeography(t *testing.T) {
	g, _, names := Abilene()
	// Seattle(0) to New York(10): roughly 4000 km across the continent.
	d := g.Dijkstra(0).Dist[10]
	if d < 3500 || d > 7000 {
		t.Errorf("Seattle-New York backbone distance %v km implausible", d)
	}
	if names[0] != "Seattle" || names[10] != "New York" {
		t.Errorf("names = %v", names)
	}
	for _, e := range g.Edges() {
		if e.Cost <= 0 || math.IsInf(e.Cost, 0) {
			t.Fatalf("edge %d-%d cost %v", e.U, e.V, e.Cost)
		}
	}
}

func TestAbileneSolvesEndToEnd(t *testing.T) {
	g, coords, _ := Abilene()
	rng := rand.New(rand.NewSource(17))
	net, err := netgen.Materialize(g, coords, netgen.PaperConfig(11, 2), rng)
	if err != nil {
		t.Fatal(err)
	}
	// Seattle streams to the east coast through a 3-function chain.
	task := nfv.Task{Source: 0, Destinations: []int{8, 9, 10}, Chain: nfv.SFC{0, 1, 2}}
	res, err := core.Solve(net, task, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Validate(res.Embedding); err != nil {
		t.Fatalf("invalid: %v", err)
	}
}
