package topology

import (
	"math"

	"sftree/internal/graph"
	"sftree/internal/nfv"
)

// geantCities lists a 24-node reconstruction of the GEANT European
// research backbone (circa the widely used 2004 snapshot): one PoP per
// country, wired along the published ring-and-chord structure. Like
// the PalmettoNet reconstruction, only the node count, sparsity, and
// Euclidean costs matter to the experiments.
var geantCities = []city{
	{"London", 51.51, -0.13},     // 0
	{"Paris", 48.86, 2.35},       // 1
	{"Brussels", 50.85, 4.35},    // 2
	{"Amsterdam", 52.37, 4.90},   // 3
	{"Frankfurt", 50.11, 8.68},   // 4
	{"Geneva", 46.20, 6.14},      // 5
	{"Milan", 45.46, 9.19},       // 6
	{"Vienna", 48.21, 16.37},     // 7
	{"Prague", 50.08, 14.44},     // 8
	{"Warsaw", 52.23, 21.01},     // 9
	{"Budapest", 47.50, 19.04},   // 10
	{"Zagreb", 45.81, 15.98},     // 11
	{"Rome", 41.90, 12.50},       // 12
	{"Madrid", 40.42, -3.70},     // 13
	{"Lisbon", 38.72, -9.14},     // 14
	{"Dublin", 53.35, -6.26},     // 15
	{"Copenhagen", 55.68, 12.57}, // 16
	{"Stockholm", 59.33, 18.06},  // 17
	{"Helsinki", 60.17, 24.94},   // 18
	{"Tallinn", 59.44, 24.75},    // 19
	{"Riga", 56.95, 24.11},       // 20
	{"Athens", 37.98, 23.73},     // 21
	{"Sofia", 42.70, 23.32},      // 22
	{"Bucharest", 44.43, 26.10},  // 23
}

// geantEdges wires the PoPs (36 links).
var geantEdges = [][2]int{
	// Western core mesh.
	{0, 1}, {0, 3}, {0, 15}, {1, 2}, {1, 5}, {1, 13},
	{2, 3}, {3, 4}, {3, 16}, {4, 5}, {4, 8}, {4, 16},
	{5, 6}, {6, 12}, {6, 7},
	// Iberia.
	{13, 14}, {0, 14},
	// Nordics and Baltics.
	{16, 17}, {17, 18}, {18, 19}, {19, 20}, {20, 9},
	// Central and eastern ring.
	{8, 9}, {8, 7}, {7, 10}, {10, 11}, {11, 6}, {10, 23},
	{23, 22}, {22, 21}, {21, 12},
	// Chords.
	{9, 10}, {4, 7}, {12, 5}, {17, 4}, {15, 1},
}

// Geant returns the 24-node GEANT backbone reconstruction with
// Euclidean (approximate km) link costs, coordinates, and city names.
func Geant() (*graph.Graph, []nfv.Point, []string) {
	coords := make([]nfv.Point, len(geantCities))
	names := make([]string, len(geantCities))
	for i, c := range geantCities {
		coords[i] = nfv.Point{
			X: c.lon * 111 * math.Cos(48*math.Pi/180),
			Y: c.lat * 111,
		}
		names[i] = c.name
	}
	g := graph.New(len(geantCities))
	for _, e := range geantEdges {
		dx := coords[e[0]].X - coords[e[1]].X
		dy := coords[e[0]].Y - coords[e[1]].Y
		g.MustAddEdge(e[0], e[1], math.Sqrt(dx*dx+dy*dy))
	}
	return g, coords, names
}
