package trace

import (
	"errors"
	"math/rand"
	"sort"
	"testing"

	"sftree/internal/netgen"
	"sftree/internal/nfv"
)

func testNet(t *testing.T) *nfv.Network {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	net, err := netgen.Generate(netgen.PaperConfig(30, 2), rng)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestGenerateStructure(t *testing.T) {
	net := testNet(t)
	cfg := DefaultConfig()
	cfg.Sessions = 50
	events, err := Generate(net, cfg, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 100 {
		t.Fatalf("events = %d, want 100", len(events))
	}
	if !sort.SliceIsSorted(events, func(a, b int) bool { return events[a].Time < events[b].Time }) {
		t.Fatal("events not time-sorted")
	}
	seenArrival := map[int]float64{}
	for _, ev := range events {
		switch ev.Kind {
		case Arrival:
			if _, dup := seenArrival[ev.Arrival]; dup {
				t.Fatalf("duplicate arrival %d", ev.Arrival)
			}
			seenArrival[ev.Arrival] = ev.Time
			if err := ev.Task.Validate(net); err != nil {
				t.Fatalf("arrival %d task invalid: %v", ev.Arrival, err)
			}
			if len(ev.Task.Destinations) < cfg.DestMin || len(ev.Task.Destinations) > cfg.DestMax {
				t.Fatalf("arrival %d has %d destinations", ev.Arrival, len(ev.Task.Destinations))
			}
			if ev.Task.K() < cfg.ChainMin || ev.Task.K() > cfg.ChainMax {
				t.Fatalf("arrival %d chain length %d", ev.Arrival, ev.Task.K())
			}
		case Departure:
			at, ok := seenArrival[ev.Arrival]
			if !ok {
				t.Fatalf("departure %d before its arrival", ev.Arrival)
			}
			if ev.Time < at {
				t.Fatalf("departure %d at %v before arrival at %v", ev.Arrival, ev.Time, at)
			}
		}
	}
	if len(seenArrival) != 50 {
		t.Fatalf("distinct arrivals = %d", len(seenArrival))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	net := testNet(t)
	cfg := DefaultConfig()
	cfg.Sessions = 20
	a, err := Generate(net, cfg, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(net, cfg, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Time != b[i].Time || a[i].Kind != b[i].Kind || a[i].Arrival != b[i].Arrival {
			t.Fatalf("event %d differs", i)
		}
	}
}

func TestZipfSkewConcentratesDestinations(t *testing.T) {
	net := testNet(t)
	cfg := DefaultConfig()
	cfg.Sessions = 300
	cfg.ZipfS = 2.5
	events, err := Generate(net, cfg, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	total := 0
	for _, ev := range events {
		if ev.Kind == Arrival {
			for _, d := range ev.Task.Destinations {
				counts[d]++
				total++
			}
		}
	}
	// With strong skew, the top 5 nodes should absorb a large share.
	var all []int
	for _, c := range counts {
		all = append(all, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(all)))
	top := 0
	for i := 0; i < 5 && i < len(all); i++ {
		top += all[i]
	}
	if float64(top) < 0.4*float64(total) {
		t.Errorf("top-5 share %.2f too flat for skew 2.5", float64(top)/float64(total))
	}
}

func TestConfigValidation(t *testing.T) {
	net := testNet(t)
	rng := rand.New(rand.NewSource(9))
	bad := []Config{
		{}, // zero everything
		{Sessions: 5, ArrivalRate: 1, MeanHold: 1, DestMin: 0, DestMax: 3, ChainMin: 1, ChainMax: 2, ZipfS: 1.2},
		{Sessions: 5, ArrivalRate: 1, MeanHold: 1, DestMin: 2, DestMax: 99, ChainMin: 1, ChainMax: 2, ZipfS: 1.2},
		{Sessions: 5, ArrivalRate: 1, MeanHold: 1, DestMin: 1, DestMax: 2, ChainMin: 0, ChainMax: 2, ZipfS: 1.2},
		{Sessions: 5, ArrivalRate: 1, MeanHold: 1, DestMin: 1, DestMax: 2, ChainMin: 1, ChainMax: 99, ZipfS: 1.2},
		{Sessions: 5, ArrivalRate: 1, MeanHold: 1, DestMin: 1, DestMax: 2, ChainMin: 1, ChainMax: 2, ZipfS: 0.9},
		{Sessions: 5, ArrivalRate: -1, MeanHold: 1, DestMin: 1, DestMax: 2, ChainMin: 1, ChainMax: 2, ZipfS: 1.2},
	}
	for i, cfg := range bad {
		if _, err := Generate(net, cfg, rng); !errors.Is(err, ErrBadConfig) {
			t.Errorf("config %d: got %v, want ErrBadConfig", i, err)
		}
	}
}

func TestSummarize(t *testing.T) {
	net := testNet(t)
	cfg := DefaultConfig()
	cfg.Sessions = 30
	events, err := Generate(net, cfg, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	s := Summarize(events)
	if s.Sessions != 30 {
		t.Errorf("sessions = %d", s.Sessions)
	}
	if s.MeanDests < float64(cfg.DestMin) || s.MeanDests > float64(cfg.DestMax) {
		t.Errorf("mean dests = %v", s.MeanDests)
	}
	if s.MeanChainLen < float64(cfg.ChainMin) || s.MeanChainLen > float64(cfg.ChainMax) {
		t.Errorf("mean chain = %v", s.MeanChainLen)
	}
	if s.PeakOverlap < 1 || s.Span <= 0 {
		t.Errorf("summary = %+v", s)
	}
}
