// Package trace generates multicast workload traces for the dynamic
// session manager: Poisson session arrivals, exponential holding
// times, Zipf-skewed destination popularity (a few popular edge sites
// receive most sessions, as in CDN workloads), and per-session SFC
// lengths drawn uniformly from a configured band.
package trace

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"sftree/internal/nfv"
)

// ErrBadConfig reports invalid trace parameters.
var ErrBadConfig = errors.New("trace: invalid config")

// EventKind distinguishes arrivals from departures.
type EventKind int

// Event kinds.
const (
	Arrival EventKind = iota + 1
	Departure
)

// Event is one timeline entry. Arrival events carry the task;
// departure events reference the arrival by index.
type Event struct {
	Time    float64
	Kind    EventKind
	Arrival int      // index of the matching arrival (both kinds)
	Task    nfv.Task // set on arrivals
}

// Config controls trace generation.
type Config struct {
	// Sessions is the number of arrivals.
	Sessions int
	// ArrivalRate is the Poisson rate (sessions per time unit).
	ArrivalRate float64
	// MeanHold is the mean exponential session duration.
	MeanHold float64
	// DestMin/DestMax bound the per-session destination count.
	DestMin, DestMax int
	// ChainMin/ChainMax bound the per-session SFC length.
	ChainMin, ChainMax int
	// ZipfS is the Zipf skew (> 1) of destination popularity; nodes
	// with a lower popularity rank attract more sessions.
	ZipfS float64
}

// DefaultConfig returns a CDN-flavoured workload: 100 sessions,
// one arrival per time unit, mean hold 10, 2-6 destinations, chains
// of 3-5 functions, skew 1.3.
func DefaultConfig() Config {
	return Config{
		Sessions:    100,
		ArrivalRate: 1,
		MeanHold:    10,
		DestMin:     2,
		DestMax:     6,
		ChainMin:    3,
		ChainMax:    5,
		ZipfS:       1.3,
	}
}

func (c Config) validate(net *nfv.Network) error {
	switch {
	case c.Sessions <= 0:
		return fmt.Errorf("%w: %d sessions", ErrBadConfig, c.Sessions)
	case c.ArrivalRate <= 0 || c.MeanHold <= 0:
		return fmt.Errorf("%w: rate %v, hold %v", ErrBadConfig, c.ArrivalRate, c.MeanHold)
	case c.DestMin < 1 || c.DestMax < c.DestMin || c.DestMax >= net.NumNodes():
		return fmt.Errorf("%w: destinations [%d,%d] on %d nodes", ErrBadConfig, c.DestMin, c.DestMax, net.NumNodes())
	case c.ChainMin < 1 || c.ChainMax < c.ChainMin || c.ChainMax > net.CatalogSize():
		return fmt.Errorf("%w: chain [%d,%d] with catalog %d", ErrBadConfig, c.ChainMin, c.ChainMax, net.CatalogSize())
	case c.ZipfS <= 1:
		return fmt.Errorf("%w: zipf skew %v must exceed 1", ErrBadConfig, c.ZipfS)
	}
	return nil
}

// Generate produces a time-sorted event list (each arrival followed
// eventually by its departure), deterministic in the rng.
func Generate(net *nfv.Network, cfg Config, rng *rand.Rand) ([]Event, error) {
	if err := cfg.validate(net); err != nil {
		return nil, err
	}
	n := net.NumNodes()
	// Popularity rank: a fixed random permutation of nodes; the Zipf
	// variate picks a rank, the permutation maps it to a node.
	rankToNode := rng.Perm(n)
	zipf := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(n-1))

	events := make([]Event, 0, 2*cfg.Sessions)
	now := 0.0
	for s := 0; s < cfg.Sessions; s++ {
		now += rng.ExpFloat64() / cfg.ArrivalRate
		task, err := sampleTask(net, cfg, rng, rankToNode, zipf)
		if err != nil {
			return nil, err
		}
		hold := rng.ExpFloat64() * cfg.MeanHold
		events = append(events,
			Event{Time: now, Kind: Arrival, Arrival: s, Task: task},
			Event{Time: now + hold, Kind: Departure, Arrival: s},
		)
	}
	sort.SliceStable(events, func(a, b int) bool { return events[a].Time < events[b].Time })
	return events, nil
}

// sampleTask draws one multicast task with Zipf-popular destinations.
func sampleTask(net *nfv.Network, cfg Config, rng *rand.Rand, rankToNode []int, zipf *rand.Zipf) (nfv.Task, error) {
	n := net.NumNodes()
	source := rng.Intn(n)
	nd := cfg.DestMin
	if cfg.DestMax > cfg.DestMin {
		nd += rng.Intn(cfg.DestMax - cfg.DestMin + 1)
	}
	destSet := make(map[int]bool, nd)
	for guard := 0; len(destSet) < nd && guard < 100*nd; guard++ {
		v := rankToNode[int(zipf.Uint64())%n]
		if v != source {
			destSet[v] = true
		}
	}
	if len(destSet) < nd {
		return nfv.Task{}, fmt.Errorf("%w: could not draw %d distinct destinations", ErrBadConfig, nd)
	}
	dests := make([]int, 0, nd)
	for v := range destSet {
		dests = append(dests, v)
	}
	sort.Ints(dests) // determinism: map iteration order must not leak

	k := cfg.ChainMin
	if cfg.ChainMax > cfg.ChainMin {
		k += rng.Intn(cfg.ChainMax - cfg.ChainMin + 1)
	}
	chain := make(nfv.SFC, k)
	copy(chain, rng.Perm(net.CatalogSize())[:k])
	return nfv.Task{Source: source, Destinations: dests, Chain: chain}, nil
}

// Summary describes a generated trace.
type Summary struct {
	Sessions     int
	Span         float64 // time of the last event
	MeanDests    float64
	MeanChainLen float64
	PeakOverlap  int // max sessions alive simultaneously
}

// Summarize computes trace statistics.
func Summarize(events []Event) Summary {
	var s Summary
	alive := 0
	var dests, chain int
	for _, ev := range events {
		if ev.Time > s.Span {
			s.Span = ev.Time
		}
		switch ev.Kind {
		case Arrival:
			s.Sessions++
			alive++
			if alive > s.PeakOverlap {
				s.PeakOverlap = alive
			}
			dests += len(ev.Task.Destinations)
			chain += ev.Task.K()
		case Departure:
			alive--
		}
	}
	if s.Sessions > 0 {
		s.MeanDests = float64(dests) / float64(s.Sessions)
		s.MeanChainLen = float64(chain) / float64(s.Sessions)
	}
	if math.IsNaN(s.Span) {
		s.Span = 0
	}
	return s
}
