package sftilp

import (
	"math"
	"math/rand"
	"testing"

	"sftree/internal/baseline"
	"sftree/internal/core"
	"sftree/internal/exact"
	"sftree/internal/graph"
	"sftree/internal/ilp"
	"sftree/internal/nfv"
)

// tinyInstance builds a small random connected instance suitable for
// exact solving: n nodes (all servers), chain length k, nd
// destinations, some pre-deployments.
func tinyInstance(rng *rand.Rand, n, k, nd int) (*nfv.Network, nfv.Task) {
	g := graph.New(n)
	for v := 1; v < n; v++ {
		g.MustAddEdge(rng.Intn(v), v, float64(1+rng.Intn(9)))
	}
	extra := rng.Intn(n)
	for i := 0; i < extra; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			if _, ok := g.HasEdge(u, v); !ok {
				g.MustAddEdge(u, v, float64(1+rng.Intn(9)))
			}
		}
	}
	catalog := make([]nfv.VNF, k+1)
	for f := range catalog {
		catalog[f] = nfv.VNF{ID: f, Name: "f", Demand: 1}
	}
	net := nfv.NewNetwork(g, catalog)
	for v := 0; v < n; v++ {
		if err := net.SetServer(v, float64(1+rng.Intn(3))); err != nil {
			panic(err)
		}
		for f := range catalog {
			if err := net.SetSetupCost(f, v, float64(rng.Intn(6))); err != nil {
				panic(err)
			}
		}
	}
	for i := 0; i < n/2; i++ {
		f, v := rng.Intn(len(catalog)), rng.Intn(n)
		if !net.IsDeployed(f, v) && net.FreeCapacity(v) >= 1 {
			if err := net.Deploy(f, v); err != nil {
				panic(err)
			}
		}
	}
	perm := rng.Perm(n)
	task := nfv.Task{Source: perm[0], Destinations: perm[1 : 1+nd], Chain: make(nfv.SFC, k)}
	for j := range task.Chain {
		task.Chain[j] = j
	}
	return net, task
}

func TestModelDimensions(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	net, task := tinyInstance(rng, 5, 2, 2)
	m, err := BuildModel(net, task)
	if err != nil {
		t.Fatal(err)
	}
	numArcs := 2 * net.Graph().NumEdges()
	k, nd, s := task.K(), len(task.Destinations), len(net.Servers())
	wantPhi := k * nd * s
	if len(m.phi) != wantPhi {
		t.Errorf("phi vars = %d, want %d", len(m.phi), wantPhi)
	}
	if len(m.tau) != nd*(k+1)*numArcs {
		t.Errorf("tau vars = %d, want %d", len(m.tau), nd*(k+1)*numArcs)
	}
	if len(m.psi) != (k+1)*numArcs {
		t.Errorf("psi vars = %d, want %d", len(m.psi), (k+1)*numArcs)
	}
	if m.NumVars() != len(m.phi)+len(m.tau)+len(m.psi)+len(m.omega) {
		t.Errorf("NumVars inconsistent")
	}
}

func TestExactOnWorkedLine(t *testing.T) {
	// S=0 - 1 - 2 = d, chain (f0): setup 1 on both servers; the optimum
	// hosts f0 on node 1 (on the way) for cost 1 + 2 = 3.
	g := graph.New(3)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	catalog := []nfv.VNF{{ID: 0, Name: "f0", Demand: 1}}
	net := nfv.NewNetwork(g, catalog)
	for _, v := range []int{1, 2} {
		if err := net.SetServer(v, 1); err != nil {
			t.Fatal(err)
		}
		if err := net.SetSetupCost(0, v, 1); err != nil {
			t.Fatal(err)
		}
	}
	task := nfv.Task{Source: 0, Destinations: []int{2}, Chain: nfv.SFC{0}}
	res, err := SolveExact(net, task, ilp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != ilp.Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	if math.Abs(res.Objective-3) > 1e-6 {
		t.Errorf("objective = %v, want 3", res.Objective)
	}
	if res.Embedding.ServingNode(0, 1) != 1 {
		t.Errorf("f0 hosted on %d, want 1", res.Embedding.ServingNode(0, 1))
	}
}

func TestExactPrefersDeployedInstance(t *testing.T) {
	// Two equal-length routes; f0 pre-deployed on node 2 makes the
	// lower route free of setup cost.
	//
	//	0 --1-- 1 --1-- 3
	//	 \--1-- 2 --1--/
	g := graph.New(4)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 3, 1)
	g.MustAddEdge(0, 2, 1)
	g.MustAddEdge(2, 3, 1)
	catalog := []nfv.VNF{{ID: 0, Name: "f0", Demand: 1}}
	net := nfv.NewNetwork(g, catalog)
	for _, v := range []int{1, 2} {
		if err := net.SetServer(v, 1); err != nil {
			t.Fatal(err)
		}
		if err := net.SetSetupCost(0, v, 5); err != nil {
			t.Fatal(err)
		}
	}
	if err := net.Deploy(0, 2); err != nil {
		t.Fatal(err)
	}
	task := nfv.Task{Source: 0, Destinations: []int{3}, Chain: nfv.SFC{0}}
	res, err := SolveExact(net, task, ilp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Objective-2) > 1e-6 {
		t.Errorf("objective = %v, want 2 (reuse f0@2)", res.Objective)
	}
	if res.Embedding.ServingNode(0, 1) != 2 {
		t.Errorf("served at %d, want 2", res.Embedding.ServingNode(0, 1))
	}
}

func TestExactMulticastSharesStageEdges(t *testing.T) {
	// Star: source 0 center, f0 on it (deployed), two leaves 1,2. The
	// shared stage is only the instance hop; each leaf edge is paid
	// once at stage 1; optimum = 1 + 1 = 2.
	g := graph.New(3)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(0, 2, 1)
	catalog := []nfv.VNF{{ID: 0, Name: "f0", Demand: 1}}
	net := nfv.NewNetwork(g, catalog)
	if err := net.SetServer(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := net.Deploy(0, 0); err != nil {
		t.Fatal(err)
	}
	task := nfv.Task{Source: 0, Destinations: []int{1, 2}, Chain: nfv.SFC{0}}
	res, err := SolveExact(net, task, ilp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Objective-2) > 1e-6 {
		t.Errorf("objective = %v, want 2", res.Objective)
	}
}

func TestExactAgainstBruteForceAndHeuristics(t *testing.T) {
	if testing.Short() {
		t.Skip("exact cross-check is slow")
	}
	rng := rand.New(rand.NewSource(83))
	checked := 0
	for trial := 0; trial < 60 && checked < 8; trial++ {
		n := 4 + rng.Intn(2)  // 4..5 nodes
		k := 1 + rng.Intn(2)  // 1..2 chain
		nd := 1 + rng.Intn(2) // 1..2 destinations
		net, task := tinyInstance(rng, n, k, nd)

		res, err := SolveExact(net, task, ilp.Options{MaxNodes: 4000})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.Status != ilp.Optimal {
			continue // budget exhausted on an awkward instance; skip
		}
		checked++

		// Brute force (shortest-path routing) upper-bounds the ILP optimum.
		_, bfCost, err := exact.BruteForce(net, task, 100000)
		if err != nil {
			t.Fatalf("trial %d: brute force: %v", trial, err)
		}
		if res.Objective > bfCost+1e-5 {
			t.Fatalf("trial %d: ILP optimum %v exceeds brute force %v", trial, res.Objective, bfCost)
		}

		// Every heuristic must be >= the ILP optimum.
		if h, err := core.Solve(net, task, core.Options{}); err == nil {
			if h.FinalCost < res.Objective-1e-5 {
				t.Fatalf("trial %d: two-stage %v beat ILP optimum %v", trial, h.FinalCost, res.Objective)
			}
		}
		if h, err := baseline.SCA(net, task, core.Options{}); err == nil {
			if h.FinalCost < res.Objective-1e-5 {
				t.Fatalf("trial %d: SCA %v beat ILP optimum %v", trial, h.FinalCost, res.Objective)
			}
		}
	}
	if checked < 3 {
		t.Fatalf("only %d instances solved to optimality; cross-check too weak", checked)
	}
}

func TestDecodeRejectsWrongLength(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net, task := tinyInstance(rng, 4, 1, 1)
	m, err := BuildModel(net, task)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Decode([]float64{1, 2}); err == nil {
		t.Error("short vector accepted")
	}
}
