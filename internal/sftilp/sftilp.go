// Package sftilp translates an SFT-embedding instance into the
// paper's integer linear program (formulation 1a-1f) for the
// internal/ilp solver, and decodes solver output back into a validated
// nfv.Embedding. One deviation from the printed formulation: the paper
// omits the linking constraint phi <= pi + omega (a flow may only be
// served where an instance exists), which is required for correctness
// and is included here.
package sftilp

import (
	"errors"
	"fmt"
	"math"

	"sftree/internal/ilp"
	"sftree/internal/lp"
	"sftree/internal/nfv"
)

var (
	// ErrDecode reports solver output that does not form walks.
	ErrDecode = errors.New("sftilp: cannot decode solution")
	// ErrModelTooLarge reports an instance beyond the dense simplex's
	// practical reach; callers wanting to try anyway can use BuildModel
	// plus ilp.Solve directly.
	ErrModelTooLarge = errors.New("sftilp: model too large for the built-in solver")
)

// MaxSolveVars caps the model size SolveExact will hand to the dense
// simplex; beyond it a single LP relaxation becomes impractically slow
// (the tableau is O(rows x cols) per pivot).
const MaxSolveVars = 1500

// Model is the ILP encoding of one instance plus the index maps needed
// to decode solutions.
type Model struct {
	Prob *ilp.Problem

	net     *nfv.Network
	task    nfv.Task
	servers []int

	// Directed arcs: arc 2e is edge e traversed U->V, arc 2e+1 is V->U.
	arcTail, arcHead []int
	arcCost          []float64

	omega map[[2]int]int // (level j, node) -> var (new instance), absent if deployed
	phi   map[[3]int]int // (level j, destIdx, node) -> var
	tau   map[[3]int]int // (destIdx, level j, arc) -> var
	psi   map[[2]int]int // (level j, arc) -> var
	nvars int
}

// BuildModel encodes the instance. Levels run 1..k for placements and
// 0..k for flow stages (stage j carries traffic between chain VNF j
// and j+1, with stage 0 leaving the source and stage k reaching the
// destination).
func BuildModel(net *nfv.Network, task nfv.Task) (*Model, error) {
	if err := task.Validate(net); err != nil {
		return nil, err
	}
	m := &Model{
		net:     net,
		task:    task,
		servers: net.Servers(),
		omega:   make(map[[2]int]int),
		phi:     make(map[[3]int]int),
		tau:     make(map[[3]int]int),
		psi:     make(map[[2]int]int),
	}
	g := net.Graph()
	for e := 0; e < g.NumEdges(); e++ {
		ed := g.Edge(e)
		m.arcTail = append(m.arcTail, ed.U, ed.V)
		m.arcHead = append(m.arcHead, ed.V, ed.U)
		m.arcCost = append(m.arcCost, ed.Cost, ed.Cost)
	}
	k := task.K()
	nd := len(task.Destinations)
	numArcs := len(m.arcCost)

	// Allocate variables.
	for j := 1; j <= k; j++ {
		f := task.Chain[j-1]
		for _, u := range m.servers {
			if !net.IsDeployed(f, u) {
				m.omega[[2]int{j, u}] = m.nvars
				m.nvars++
			}
			for d := 0; d < nd; d++ {
				m.phi[[3]int{j, d, u}] = m.nvars
				m.nvars++
			}
		}
	}
	for d := 0; d < nd; d++ {
		for j := 0; j <= k; j++ {
			for a := 0; a < numArcs; a++ {
				m.tau[[3]int{d, j, a}] = m.nvars
				m.nvars++
			}
		}
	}
	for j := 0; j <= k; j++ {
		for a := 0; a < numArcs; a++ {
			m.psi[[2]int{j, a}] = m.nvars
			m.nvars++
		}
	}

	// Objective (1a).
	obj := make([]float64, m.nvars)
	for key, v := range m.omega {
		obj[v] = net.SetupCost(task.Chain[key[0]-1], key[1])
	}
	for key, v := range m.psi {
		obj[v] = m.arcCost[key[1]]
	}
	prob := &ilp.Problem{
		LP:      lp.Problem{NumVars: m.nvars, Objective: obj},
		Integer: make([]bool, m.nvars),
	}
	for _, v := range m.omega {
		prob.Integer[v] = true
	}
	for _, v := range m.phi {
		prob.Integer[v] = true
	}
	for _, v := range m.tau {
		prob.Integer[v] = true
	}
	// psi stays continuous: with psi >= tau and a minimized non-negative
	// objective it lands on max_d tau in {0,1} automatically.

	// Binary upper bounds.
	for _, v := range m.omega {
		prob.LP.AddConstraint(map[int]float64{v: 1}, lp.LE, 1)
	}
	for _, v := range m.phi {
		prob.LP.AddConstraint(map[int]float64{v: 1}, lp.LE, 1)
	}
	for _, v := range m.tau {
		prob.LP.AddConstraint(map[int]float64{v: 1}, lp.LE, 1)
	}

	// (1b) every destination is served once per level.
	for j := 1; j <= k; j++ {
		for d := 0; d < nd; d++ {
			coeffs := make(map[int]float64, len(m.servers))
			for _, u := range m.servers {
				coeffs[m.phi[[3]int{j, d, u}]] = 1
			}
			prob.LP.AddConstraint(coeffs, lp.EQ, 1)
		}
	}

	// Linking: phi <= pi + omega.
	for j := 1; j <= k; j++ {
		f := task.Chain[j-1]
		for _, u := range m.servers {
			if net.IsDeployed(f, u) {
				continue // pi = 1, constraint trivially satisfied
			}
			ov := m.omega[[2]int{j, u}]
			for d := 0; d < nd; d++ {
				prob.LP.AddConstraint(map[int]float64{
					m.phi[[3]int{j, d, u}]: 1,
					ov:                     -1,
				}, lp.LE, 0)
			}
		}
	}

	// (1d) capacity: sum_j omega_{j,u} * mu_j <= free capacity.
	for _, u := range m.servers {
		coeffs := make(map[int]float64)
		for j := 1; j <= k; j++ {
			if v, ok := m.omega[[2]int{j, u}]; ok {
				vnf, err := net.VNF(task.Chain[j-1])
				if err != nil {
					return nil, err
				}
				coeffs[v] = vnf.Demand
			}
		}
		if len(coeffs) > 0 {
			prob.LP.AddConstraint(coeffs, lp.LE, net.FreeCapacity(u))
		}
	}

	// (1e) per-destination, per-stage flow conservation:
	// out(u) - in(u) >= phi_j(u) - phi_{j+1}(u), with phi_0 pinned to
	// the source and phi_{k+1} pinned to the destination.
	outArcs := make([][]int, net.NumNodes())
	inArcs := make([][]int, net.NumNodes())
	for a := 0; a < numArcs; a++ {
		outArcs[m.arcTail[a]] = append(outArcs[m.arcTail[a]], a)
		inArcs[m.arcHead[a]] = append(inArcs[m.arcHead[a]], a)
	}
	isServer := make(map[int]bool, len(m.servers))
	for _, u := range m.servers {
		isServer[u] = true
	}
	for d := 0; d < nd; d++ {
		dest := task.Destinations[d]
		for j := 0; j <= k; j++ {
			for u := 0; u < net.NumNodes(); u++ {
				coeffs := make(map[int]float64)
				for _, a := range outArcs[u] {
					coeffs[m.tau[[3]int{d, j, a}]] += 1
				}
				for _, a := range inArcs[u] {
					coeffs[m.tau[[3]int{d, j, a}]] -= 1
				}
				// RHS contribution from phi terms (moved left when they
				// are variables).
				rhs := 0.0
				if j == 0 {
					if u == task.Source {
						rhs += 1
					}
				} else if isServer[u] {
					coeffs[m.phi[[3]int{j, d, u}]] -= 1 // -phi_j(u) moved left
				}
				if j == k {
					if u == dest {
						rhs -= 1
					}
				} else if isServer[u] {
					coeffs[m.phi[[3]int{j + 1, d, u}]] += 1 // +phi_{j+1}(u) moved left
				}
				if len(coeffs) == 0 && rhs <= 0 {
					continue
				}
				prob.LP.AddConstraint(coeffs, lp.GE, rhs)
			}
		}
	}

	// (1f) psi dominates every destination's tau.
	for d := 0; d < nd; d++ {
		for j := 0; j <= k; j++ {
			for a := 0; a < numArcs; a++ {
				prob.LP.AddConstraint(map[int]float64{
					m.psi[[2]int{j, a}]:    1,
					m.tau[[3]int{d, j, a}]: -1,
				}, lp.GE, 0)
			}
		}
	}

	m.Prob = prob
	return m, nil
}

// NumVars returns the variable count of the model.
func (m *Model) NumVars() int { return m.nvars }

// Decode converts a solver solution vector into an embedding.
func (m *Model) Decode(x []float64) (*nfv.Embedding, error) {
	if len(x) != m.nvars {
		return nil, fmt.Errorf("%w: %d values for %d variables", ErrDecode, len(x), m.nvars)
	}
	task := m.task
	k := task.K()
	e := &nfv.Embedding{Task: task.CloneTask()}

	// New instances from omega.
	for key, v := range m.omega {
		if x[v] > 0.5 {
			e.NewInstances = append(e.NewInstances, nfv.Instance{
				VNF: task.Chain[key[0]-1], Node: key[1], Level: key[0],
			})
		}
	}

	// Walks: per destination, find serving nodes then trace arcs.
	for d := range task.Destinations {
		servingNode := make([]int, k+2)
		servingNode[0] = task.Source
		servingNode[k+1] = task.Destinations[d]
		for j := 1; j <= k; j++ {
			servingNode[j] = -1
			for _, u := range m.servers {
				if x[m.phi[[3]int{j, d, u}]] > 0.5 {
					servingNode[j] = u
					break
				}
			}
			if servingNode[j] == -1 {
				return nil, fmt.Errorf("%w: destination %d unserved at level %d", ErrDecode, task.Destinations[d], j)
			}
		}
		walk := make(nfv.Walk, 0, k+1)
		for j := 0; j <= k; j++ {
			path, err := m.tracePath(x, d, j, servingNode[j], servingNode[j+1])
			if err != nil {
				return nil, err
			}
			walk = append(walk, nfv.Segment{Level: j, Path: path})
		}
		e.Walks = append(e.Walks, walk)
	}
	return e, nil
}

// tracePath follows the stage-j tau arcs of destination d from node
// `from` to node `to`.
func (m *Model) tracePath(x []float64, d, j, from, to int) ([]int, error) {
	if from == to {
		return []int{from}, nil
	}
	numArcs := len(m.arcCost)
	used := make(map[int]bool)
	path := []int{from}
	cur := from
	for step := 0; step <= numArcs; step++ {
		next := -1
		for a := 0; a < numArcs; a++ {
			if used[a] || m.arcTail[a] != cur {
				continue
			}
			if x[m.tau[[3]int{d, j, a}]] > 0.5 {
				next = a
				break
			}
		}
		if next == -1 {
			return nil, fmt.Errorf("%w: stage %d of destination index %d stuck at node %d", ErrDecode, j, d, cur)
		}
		used[next] = true
		cur = m.arcHead[next]
		path = append(path, cur)
		if cur == to {
			return path, nil
		}
	}
	return nil, fmt.Errorf("%w: stage %d of destination index %d loops", ErrDecode, j, d)
}

// Result is the outcome of SolveExact.
type Result struct {
	Status    ilp.Status
	Embedding *nfv.Embedding // nil unless a feasible solution was found
	Objective float64
	Bound     float64
	Nodes     int
}

// SolveExact builds the model, runs branch and bound, and decodes the
// best solution. The returned embedding, when present, is validated
// and its recomputed cost matches the reported objective.
func SolveExact(net *nfv.Network, task nfv.Task, opts ilp.Options) (*Result, error) {
	model, err := BuildModel(net, task)
	if err != nil {
		return nil, err
	}
	if model.NumVars() > MaxSolveVars {
		return nil, fmt.Errorf("%w: %d variables > %d (shrink the network, chain, or destination set)",
			ErrModelTooLarge, model.NumVars(), MaxSolveVars)
	}
	res, err := ilp.Solve(model.Prob, opts)
	if err != nil {
		return nil, err
	}
	out := &Result{Status: res.Status, Bound: res.Bound, Nodes: res.Nodes}
	if res.X == nil {
		return out, nil
	}
	emb, err := model.Decode(res.X)
	if err != nil {
		return nil, err
	}
	if err := net.Validate(emb); err != nil {
		return nil, fmt.Errorf("sftilp: decoded embedding invalid: %w", err)
	}
	out.Embedding = emb
	out.Objective = res.Objective
	if recomputed := net.Cost(emb).Total; math.Abs(recomputed-res.Objective) > 1e-5 {
		return nil, fmt.Errorf("sftilp: objective %v != recomputed cost %v", res.Objective, recomputed)
	}
	return out, nil
}
