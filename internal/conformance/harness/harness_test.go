package harness

import (
	"path/filepath"
	"testing"
)

func TestDefaultGridCoversEveryFamily(t *testing.T) {
	want := map[string]bool{"er": false, "waxman": false, "fattree": false, "abilene": false, "geant": false}
	for _, s := range DefaultGrid() {
		if _, ok := want[s.Family]; !ok {
			t.Errorf("grid names unknown family %q", s.Family)
		}
		want[s.Family] = true
	}
	for fam, seen := range want {
		if !seen {
			t.Errorf("grid misses family %q", fam)
		}
	}
}

func TestGenerateCaseDeterministic(t *testing.T) {
	s := Stratum{Family: "er", Nodes: 12, ChainLen: 2, NumDest: 2}
	a, err := GenerateCase(s, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateCase(s, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.Task.Source != b.Task.Source || len(a.Task.Destinations) != len(b.Task.Destinations) {
		t.Fatalf("same seed, different tasks: %+v vs %+v", a.Task, b.Task)
	}
	if a.Net.Graph().NumEdges() != b.Net.Graph().NumEdges() {
		t.Fatalf("same seed, different networks: %d vs %d edges",
			a.Net.Graph().NumEdges(), b.Net.Graph().NumEdges())
	}
}

func TestCorpusSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cases, err := GenerateCorpus(nil, len(DefaultGrid()), 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := SaveCorpus(dir, cases); err != nil {
		t.Fatal(err)
	}
	back, err := LoadCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(cases) {
		t.Fatalf("loaded %d cases, saved %d", len(back), len(cases))
	}
	byName := make(map[string]*Case, len(cases))
	for _, c := range cases {
		byName[c.FileName()] = c
	}
	for _, c := range back {
		orig, ok := byName[c.FileName()]
		if !ok {
			t.Fatalf("loaded unexpected case %s", c.FileName())
		}
		if c.Stratum != orig.Stratum || c.Seed != orig.Seed {
			t.Errorf("%s: stratum/seed did not round-trip: %+v seed %d", c.FileName(), c.Stratum, c.Seed)
		}
		if c.Task.Source != orig.Task.Source || c.Net.NumNodes() != orig.Net.NumNodes() ||
			c.Net.Graph().NumEdges() != orig.Net.Graph().NumEdges() {
			t.Errorf("%s: instance did not round-trip", c.FileName())
		}
	}
}

func TestParseFileNameRejectsGarbage(t *testing.T) {
	for _, name := range []string{"x.json", "er-k2-d2-s1.json", "er8_k2.json", "README.md"} {
		if _, _, err := ParseFileName(name); err == nil {
			t.Errorf("ParseFileName(%q) accepted garbage", name)
		}
	}
}

// TestCheckedInCorpusRunsClean is the in-tree bounded gate: the
// checked-in fuzz-seed corpus must pass the full differential contract
// (exact references, cost recounts, Theorem 4, fault repair).
func TestCheckedInCorpusRunsClean(t *testing.T) {
	cases, err := LoadCorpus(filepath.Join("..", "testdata", "corpus"))
	if err != nil {
		t.Fatal(err)
	}
	if len(cases) < 8 {
		t.Fatalf("checked-in corpus holds %d cases, want >= 8", len(cases))
	}
	rep, err := RunCases(RunConfig{Seed: 1, Faulted: true}, cases)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cases != len(cases) || rep.Solves == 0 {
		t.Fatalf("report covered %d cases / %d solves", rep.Cases, rep.Solves)
	}
	for _, v := range rep.Violations {
		t.Errorf("violation: %s", v)
	}
	for _, sr := range rep.Strata {
		if sr.ratioN > 0 && sr.MeanRatio < 1-1e-6 {
			t.Errorf("%s: mean ratio %v below 1 — reference is not a lower bound", sr.Stratum, sr.MeanRatio)
		}
	}
}

func TestDifferentialRunSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("differential run in -short mode")
	}
	rep, err := Run(RunConfig{N: 6, Seed: 42, Faulted: true, FaultEvents: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Errorf("violation: %s", v)
	}
	if rep.FaultedRuns == 0 {
		t.Error("faulted variant never ran")
	}
}
