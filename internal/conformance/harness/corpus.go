// Package harness is the differential conformance harness: a seeded,
// stratified instance-corpus generator plus a runner that solves every
// instance with the exact references (brute force, ILP), the two-stage
// algorithm, and the baselines, then cross-checks all of them through
// the shared validator in the parent conformance package. It backs
// cmd/sftconform and the `tools.sh conformance` gate.
//
// It lives in a subpackage so the validator itself stays a leaf that
// internal/dynamic, internal/sim, and internal/server can import; the
// harness may depend on every solver without creating a cycle.
package harness

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"

	"sftree/internal/core"
	"sftree/internal/netgen"
	"sftree/internal/nfv"
	"sftree/internal/topology"
)

// Stratum identifies one cell of the corpus grid: a topology family
// crossed with a size, a chain length, and a destination-set size —
// the stratified-evaluation scheme of the paper's §VI (and of the
// service-overlay-forest comparisons it cites).
type Stratum struct {
	// Family is one of er, waxman, fattree, abilene, geant.
	Family string `json:"family"`
	// Nodes sizes the generated families (er, waxman). For fattree it
	// is the fat-tree arity k (n = 5k^2/4 switches); the fixed
	// topologies abilene (11) and geant (24) ignore it.
	Nodes int `json:"nodes"`
	// ChainLen is the SFC length k of sampled tasks.
	ChainLen int `json:"chain_len"`
	// NumDest is the multicast destination-set size |D|.
	NumDest int `json:"num_dest"`
}

// Name returns the stratum's stable identifier, e.g. "er16-k3-d3".
func (s Stratum) Name() string {
	return fmt.Sprintf("%s%d-k%d-d%d", s.Family, s.Nodes, s.ChainLen, s.NumDest)
}

// DefaultGrid is the standard corpus grid: every topology family, with
// at least one stratum small enough for the exact references (brute
// force and the dense ILP) and one at heuristic-only scale.
func DefaultGrid() []Stratum {
	return []Stratum{
		{Family: "er", Nodes: 8, ChainLen: 2, NumDest: 2},
		{Family: "er", Nodes: 16, ChainLen: 3, NumDest: 3},
		{Family: "er", Nodes: 26, ChainLen: 3, NumDest: 4},
		{Family: "waxman", Nodes: 10, ChainLen: 2, NumDest: 2},
		{Family: "waxman", Nodes: 20, ChainLen: 3, NumDest: 3},
		{Family: "fattree", Nodes: 2, ChainLen: 2, NumDest: 2},
		{Family: "fattree", Nodes: 4, ChainLen: 2, NumDest: 3},
		{Family: "abilene", Nodes: 11, ChainLen: 2, NumDest: 2},
		{Family: "geant", Nodes: 24, ChainLen: 3, NumDest: 3},
	}
}

// Case is one corpus instance: a network plus a task, tagged with the
// stratum and seed that reproduce it byte for byte.
type Case struct {
	Stratum Stratum
	Seed    int64
	Net     *nfv.Network
	Task    nfv.Task
}

// Doc wraps the case in the repository's instance interchange format
// (the same JSON cmd/sftgen emits and the HTTP server accepts).
func (c *Case) Doc() nfv.InstanceDoc {
	return nfv.InstanceDoc{Network: c.Net, Task: c.Task}
}

// FileName is the case's canonical corpus file name; the stratum and
// seed are recoverable from it (see ParseFileName).
func (c *Case) FileName() string {
	return fmt.Sprintf("%s-s%d.json", c.Stratum.Name(), c.Seed)
}

var corpusName = regexp.MustCompile(`^([a-z]+)(\d+)-k(\d+)-d(\d+)-s(-?\d+)$`)

// ParseFileName inverts FileName.
func ParseFileName(name string) (Stratum, int64, error) {
	var s Stratum
	base := filepath.Base(name)
	m := corpusName.FindStringSubmatch(base[:len(base)-len(filepath.Ext(base))])
	if m == nil {
		return s, 0, fmt.Errorf("harness: %q is not a corpus file name", name)
	}
	s.Family = m[1]
	s.Nodes, _ = strconv.Atoi(m[2])
	s.ChainLen, _ = strconv.Atoi(m[3])
	s.NumDest, _ = strconv.Atoi(m[4])
	seed, err := strconv.ParseInt(m[5], 10, 64)
	if err != nil {
		return s, 0, fmt.Errorf("harness: %q: seed: %v", name, err)
	}
	return s, seed, nil
}

// buildNetwork realizes the stratum's topology family and wraps it
// with the paper's Table I metadata (mu = 2, all nodes servers).
func buildNetwork(s Stratum, rng *rand.Rand) (*nfv.Network, error) {
	switch s.Family {
	case "er":
		return netgen.Generate(netgen.PaperConfig(s.Nodes, 2), rng)
	case "waxman":
		return netgen.GenerateWaxman(netgen.WaxmanConfig{Nodes: s.Nodes},
			netgen.PaperConfig(s.Nodes, 2), rng)
	case "fattree":
		return netgen.FatTree(s.Nodes, netgen.PaperConfig(0, 2), rng)
	case "abilene":
		g, coords, _ := topology.Abilene()
		return netgen.Materialize(g, coords, netgen.PaperConfig(g.NumNodes(), 2), rng)
	case "geant":
		g, coords, _ := topology.Geant()
		return netgen.Materialize(g, coords, netgen.PaperConfig(g.NumNodes(), 2), rng)
	default:
		return nil, fmt.Errorf("harness: unknown topology family %q", s.Family)
	}
}

// GenerateCase deterministically builds the case (stratum, seed). The
// sampled task is guaranteed solvable by the two-stage algorithm (the
// generator redraws the task, never the verdict, until one admits).
func GenerateCase(s Stratum, seed int64) (*Case, error) {
	rng := rand.New(rand.NewSource(seed))
	net, err := buildNetwork(s, rng)
	if err != nil {
		return nil, fmt.Errorf("harness: %s: %w", s.Name(), err)
	}
	for attempt := 0; attempt < 32; attempt++ {
		task, err := netgen.GenerateTask(net, rng, s.NumDest, s.ChainLen)
		if err != nil {
			return nil, fmt.Errorf("harness: %s seed %d: sample task: %w", s.Name(), seed, err)
		}
		if _, err := core.Solve(net, task, core.Options{}); err == nil {
			return &Case{Stratum: s, Seed: seed, Net: net, Task: task}, nil
		}
	}
	return nil, fmt.Errorf("harness: %s seed %d: no solvable task in 32 draws", s.Name(), seed)
}

// GenerateCorpus builds n cases round-robin across the grid. Case
// seeds are derived from the base seed so every case regenerates
// independently; the same (grid, n, seed) yields the same corpus.
func GenerateCorpus(grid []Stratum, n int, seed int64) ([]*Case, error) {
	if len(grid) == 0 {
		grid = DefaultGrid()
	}
	cases := make([]*Case, 0, n)
	for i := 0; i < n; i++ {
		s := grid[i%len(grid)]
		c, err := GenerateCase(s, seed+int64(i))
		if err != nil {
			return nil, err
		}
		cases = append(cases, c)
	}
	return cases, nil
}

// SaveCorpus writes each case as an InstanceDoc JSON file under dir,
// named so the stratum and seed round-trip through the file system.
func SaveCorpus(dir string, cases []*Case) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, c := range cases {
		blob, err := json.MarshalIndent(c.Doc(), "", " ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(dir, c.FileName()), append(blob, '\n'), 0o644); err != nil {
			return err
		}
	}
	return nil
}

// LoadCorpus reads every corpus file in dir back into cases, in
// deterministic (sorted) order.
func LoadCorpus(dir string) ([]*Case, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, ent := range entries {
		if !ent.IsDir() && filepath.Ext(ent.Name()) == ".json" {
			names = append(names, ent.Name())
		}
	}
	sort.Strings(names)
	cases := make([]*Case, 0, len(names))
	for _, name := range names {
		s, seed, err := ParseFileName(name)
		if err != nil {
			return nil, err
		}
		blob, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		var doc nfv.InstanceDoc
		if err := json.Unmarshal(blob, &doc); err != nil {
			return nil, fmt.Errorf("harness: decode %s: %w", name, err)
		}
		cases = append(cases, &Case{Stratum: s, Seed: seed, Net: doc.Network, Task: doc.Task})
	}
	return cases, nil
}
