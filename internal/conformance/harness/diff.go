package harness

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"sftree/internal/baseline"
	"sftree/internal/conformance"
	"sftree/internal/core"
	"sftree/internal/dynamic"
	"sftree/internal/exact"
	"sftree/internal/faults"
	"sftree/internal/ilp"
	"sftree/internal/nfv"
	"sftree/internal/sftilp"
)

// RunConfig parameterizes one differential run. Everything is seeded:
// the same config reproduces the same corpus, solver calls, and fault
// schedules byte for byte.
type RunConfig struct {
	// N is the number of corpus cases (round-robin over Grid).
	N int
	// Seed drives corpus generation and every stochastic solver.
	Seed int64
	// Grid overrides DefaultGrid when non-empty.
	Grid []Stratum
	// MaxILPVars caps the model size handed to the dense ILP; larger
	// models fall back to BestKnown as the stratum reference. Zero
	// means 700.
	MaxILPVars int
	// MaxBFAssignments caps the brute-force search space. Zero means
	// 50000.
	MaxBFAssignments int
	// ILPTimeLimit bounds each branch-and-bound run. Zero means 20s.
	ILPTimeLimit time.Duration
	// Faulted additionally replays a seeded fault schedule against
	// each admitted case through the dynamic manager and validates
	// every repair through the shared validator.
	Faulted bool
	// FaultEvents is the faulted-variant schedule length (default 6).
	FaultEvents int
	// Progress, when non-nil, receives one call per finished case.
	Progress func(done, total int)
}

func (c RunConfig) withDefaults() RunConfig {
	if c.N <= 0 {
		c.N = 40
	}
	if len(c.Grid) == 0 {
		c.Grid = DefaultGrid()
	}
	if c.MaxILPVars <= 0 {
		c.MaxILPVars = 700
	}
	if c.MaxILPVars > sftilp.MaxSolveVars {
		c.MaxILPVars = sftilp.MaxSolveVars
	}
	if c.MaxBFAssignments <= 0 {
		c.MaxBFAssignments = 50000
	}
	if c.ILPTimeLimit <= 0 {
		c.ILPTimeLimit = 20 * time.Second
	}
	if c.FaultEvents <= 0 {
		c.FaultEvents = 6
	}
	return c
}

// Violation is one failed cross-check. A clean run has none.
type Violation struct {
	Stratum string `json:"stratum"`
	Seed    int64  `json:"seed"`
	Solver  string `json:"solver"`
	Kind    string `json:"kind"`
	Detail  string `json:"detail"`
}

func (v Violation) String() string {
	return fmt.Sprintf("%s seed %d [%s/%s]: %s", v.Stratum, v.Seed, v.Solver, v.Kind, v.Detail)
}

// StratumReport aggregates one grid cell's outcomes.
type StratumReport struct {
	Stratum string `json:"stratum"`
	Cases   int    `json:"cases"`
	// ILPOptimal counts cases where branch and bound proved the true
	// optimum (directly, or by exhausting the search below the warm
	// incumbent, which certifies the heuristic cost as optimal).
	ILPOptimal int `json:"ilp_optimal"`
	// BruteForced counts cases the shortest-path-routed enumeration
	// reference covered.
	BruteForced int `json:"brute_forced"`
	// Reference names the ratio denominator: "ilp-optimal" when every
	// case in the stratum was proven, otherwise "best-known" (an upper
	// bound on the optimum, so ratios are conservative… from below).
	Reference string `json:"reference"`
	// MeanRatio / MaxRatio are the two-stage algorithm's approximation
	// ratios against the reference.
	MeanRatio float64 `json:"mean_ratio"`
	MaxRatio  float64 `json:"max_ratio"`

	ratioSum float64
	ratioN   int
}

// Report is a differential run's full outcome.
type Report struct {
	Cases  int `json:"cases"`
	Solves int `json:"solves"`
	// FaultedRuns / RepairChecks count the dynamic-repair variant:
	// schedules replayed and post-event session validations.
	FaultedRuns  int              `json:"faulted_runs,omitempty"`
	RepairChecks int              `json:"repair_checks,omitempty"`
	Violations   []Violation      `json:"violations,omitempty"`
	Strata       []*StratumReport `json:"strata"`
}

// solverRun is one solver's output on one case.
type solverRun struct {
	name string
	cost float64
	emb  *nfv.Embedding
	// monotone marks the two-stage family, whose outputs carry the
	// Theorem 4 stage-size structure by construction.
	monotone bool
}

// leq is the harness-wide tolerant a <= b.
func leq(a, b float64) bool {
	return a <= b+1e-6*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

// Run generates the corpus and differentially checks every case.
func Run(cfg RunConfig) (*Report, error) {
	cfg = cfg.withDefaults()
	cases, err := GenerateCorpus(cfg.Grid, cfg.N, cfg.Seed)
	if err != nil {
		return nil, err
	}
	return RunCases(cfg, cases)
}

// RunCases differentially checks pre-built cases (e.g. a corpus loaded
// from disk) under cfg's budgets.
func RunCases(cfg RunConfig, cases []*Case) (*Report, error) {
	cfg = cfg.withDefaults()
	rep := &Report{}
	strata := make(map[string]*StratumReport)
	for i, c := range cases {
		sr := strata[c.Stratum.Name()]
		if sr == nil {
			sr = &StratumReport{Stratum: c.Stratum.Name(), Reference: "ilp-optimal"}
			strata[c.Stratum.Name()] = sr
		}
		runCase(cfg, c, rep, sr)
		if cfg.Progress != nil {
			cfg.Progress(i+1, len(cases))
		}
	}
	for _, sr := range strata {
		if sr.ratioN > 0 {
			sr.MeanRatio = sr.ratioSum / float64(sr.ratioN)
		}
		rep.Strata = append(rep.Strata, sr)
	}
	sort.Slice(rep.Strata, func(a, b int) bool { return rep.Strata[a].Stratum < rep.Strata[b].Stratum })
	rep.Cases = len(cases)
	return rep, nil
}

func runCase(cfg RunConfig, c *Case, rep *Report, sr *StratumReport) {
	net, task := c.Net, c.Task
	sr.Cases++
	fail := func(solver, kind, format string, a ...any) {
		rep.Violations = append(rep.Violations, Violation{
			Stratum: c.Stratum.Name(), Seed: c.Seed, Solver: solver, Kind: kind,
			Detail: fmt.Sprintf(format, a...),
		})
	}

	// 1. The solver battery. Baselines may legitimately fail on
	// capacity-tight instances (their placements are restricted); the
	// two-stage solver must not — corpus cases are solvable by
	// construction.
	var runs []solverRun
	two, err := core.Solve(net, task, core.Options{})
	if err != nil {
		fail("msa", "solve-error", "two-stage solve failed on a corpus case: %v", err)
		return
	}
	runs = append(runs, solverRun{"msa", two.FinalCost, two.Embedding, true})
	if r, err := core.SolveStageOne(net, task, core.Options{}); err == nil {
		runs = append(runs, solverRun{"msa1", r.FinalCost, r.Embedding, true})
	} else {
		fail("msa1", "solve-error", "stage one failed where full solve succeeded: %v", err)
	}
	if r, err := core.Solve(net, task, core.Options{MaxOPAPasses: 4, AggressiveOPA: true}); err == nil {
		runs = append(runs, solverRun{"msa-deep", r.FinalCost, r.Embedding, true})
		if !leq(r.FinalCost, two.FinalCost) {
			fail("msa-deep", "ordering", "extra OPA passes worsened cost: %v > %v", r.FinalCost, two.FinalCost)
		}
	}
	if r, err := baseline.SCA(net, task, core.Options{}); err == nil {
		runs = append(runs, solverRun{"sca", r.FinalCost, r.Embedding, true})
	}
	rng := rand.New(rand.NewSource(c.Seed ^ 0x5eed))
	if r, err := baseline.RSA(net, task, rng, core.Options{}); err == nil {
		runs = append(runs, solverRun{"rsa", r.FinalCost, r.Embedding, true})
	}
	if r, err := baseline.OneNode(net, task, core.Options{}); err == nil {
		runs = append(runs, solverRun{"onenode", r.FinalCost, r.Embedding, true})
	}
	bks, err := exact.BestKnown(net, task)
	if err != nil {
		fail("bks", "solve-error", "best-known failed where two-stage succeeded: %v", err)
		return
	}
	runs = append(runs, solverRun{"bks", bks.FinalCost, bks.Embedding, true})
	if !leq(bks.FinalCost, two.FinalCost) {
		fail("bks", "ordering", "best-known %v above two-stage %v (it takes the min by construction)",
			bks.FinalCost, two.FinalCost)
	}

	// 2. Every embedding through the shared validator, every reported
	// cost re-derived by the independent re-accounting.
	for _, r := range runs {
		rep.Solves++
		if err := conformance.Check(net, r.emb); err != nil {
			fail(r.name, "invalid-embedding", "%v", err)
			continue
		}
		bd, err := conformance.Recount(net, r.emb)
		if err != nil {
			fail(r.name, "recount-error", "%v", err)
			continue
		}
		if !conformance.CostsAgree(bd.Total, r.cost) {
			fail(r.name, "cost-mismatch", "solver reports %v, independent recount %v", r.cost, bd.Total)
		}
		if r.monotone {
			if err := conformance.CheckStageMonotone(r.emb); err != nil {
				fail(r.name, "theorem4", "%v", err)
			}
		}
	}

	// 3. Exact references. The ILP is warm-started with the two-stage
	// cost; an exhausted search that never beat the incumbent comes
	// back Infeasible, which — the instance being feasible by
	// construction — certifies the incumbent as optimal.
	opt, haveOpt := math.Inf(1), false
	if model, err := sftilp.BuildModel(net, task); err == nil && model.NumVars() <= cfg.MaxILPVars {
		res, err := sftilp.SolveExact(net, task, ilp.Options{
			TimeLimit: cfg.ILPTimeLimit,
			Incumbent: two.FinalCost, HasIncumbent: true,
		})
		switch {
		case err != nil:
			fail("ilp", "solve-error", "%v", err)
		case res.Status == ilp.Optimal:
			opt, haveOpt = res.Objective, true
			if res.Embedding == nil {
				fail("ilp", "solve-error", "optimal status without an embedding")
			} else if err := conformance.Check(net, res.Embedding); err != nil {
				fail("ilp", "invalid-embedding", "%v", err)
			} else if bd, err := conformance.Recount(net, res.Embedding); err != nil || !conformance.CostsAgree(bd.Total, res.Objective) {
				fail("ilp", "cost-mismatch", "objective %v, recount %v (%v)", res.Objective, bd.Total, err)
			}
			rep.Solves++
		case res.Status == ilp.Infeasible:
			// Nothing below the warm incumbent: the heuristic is optimal.
			opt, haveOpt = two.FinalCost, true
		default:
			// Budget exhausted: only the dual bound is trustworthy.
			for _, r := range runs {
				if !leq(res.Bound, r.cost) {
					fail(r.name, "ordering", "ILP lower bound %v above %s cost %v", res.Bound, r.name, r.cost)
				}
			}
		}
		if haveOpt {
			sr.ILPOptimal++
			for _, r := range runs {
				if !leq(opt, r.cost) {
					fail(r.name, "ordering", "optimum %v above %s cost %v", opt, r.name, r.cost)
				}
			}
		}
	}

	// 4. Brute force: optimal over the shortest-path-routed class, so
	// an upper bound on the true optimum — and equal to it for a
	// single destination, where per-stage shortest paths lose nothing.
	space, servers, slots := 1.0, len(net.Servers()), task.K()*len(task.Destinations)
	for i := 0; i < slots && space <= float64(cfg.MaxBFAssignments); i++ {
		space *= float64(servers)
	}
	if space <= float64(cfg.MaxBFAssignments) {
		embBF, costBF, err := exact.BruteForce(net, task, cfg.MaxBFAssignments)
		if err != nil {
			fail("bf", "solve-error", "%v", err)
		} else {
			rep.Solves++
			sr.BruteForced++
			if err := conformance.Check(net, embBF); err != nil {
				fail("bf", "invalid-embedding", "%v", err)
			} else if bd, err := conformance.Recount(net, embBF); err != nil || !conformance.CostsAgree(bd.Total, costBF) {
				fail("bf", "cost-mismatch", "reported %v, recount %v (%v)", costBF, bd.Total, err)
			}
			if haveOpt && !leq(opt, costBF) {
				fail("bf", "ordering", "optimum %v above brute-force %v", opt, costBF)
			}
			if len(task.Destinations) == 1 {
				if haveOpt && !conformance.CostsAgree(costBF, opt) {
					fail("bf", "ordering", "single-destination brute force %v != optimum %v", costBF, opt)
				}
				for _, r := range runs {
					if !leq(costBF, r.cost) {
						fail(r.name, "ordering", "single-destination brute force %v above %s cost %v",
							costBF, r.name, r.cost)
					}
				}
			}
		}
	}

	// 5. The stratum's approximation ratio: two-stage over the proven
	// optimum where available, else over the best-known reference.
	ref := bks.FinalCost
	if haveOpt {
		ref = opt
	} else {
		sr.Reference = "best-known"
	}
	if ref > 0 {
		ratio := two.FinalCost / ref
		sr.ratioSum += ratio
		sr.ratioN++
		if ratio > sr.MaxRatio {
			sr.MaxRatio = ratio
		}
	}

	if cfg.Faulted {
		runFaulted(cfg, c, rep, fail)
	}
}

// runFaulted replays a seeded fault schedule against the admitted case
// through the dynamic manager, validating every surviving session
// through the shared validator after each event — the repair path of
// the differential contract.
func runFaulted(cfg RunConfig, c *Case, rep *Report, fail func(solver, kind, format string, a ...any)) {
	base := c.Net.Clone()
	mgr := dynamic.NewManager(base, core.Options{})
	if _, err := mgr.Admit(c.Task); err != nil {
		fail("repair", "solve-error", "admission failed on a solvable case: %v", err)
		return
	}
	rng := rand.New(rand.NewSource(c.Seed ^ 0xfa17))
	sched, err := faults.Generate(base, faults.DefaultGenConfig(cfg.FaultEvents), rng)
	if err != nil {
		fail("repair", "schedule-error", "%v", err)
		return
	}
	rep.FaultedRuns++
	replayer := faults.NewReplayer(base, sched)
	for !replayer.Done() {
		ev, degraded, err := replayer.Step(mgr.Network())
		if err != nil {
			fail("repair", "replay-error", "%v", err)
			return
		}
		mgr.Rebase(degraded)
		net := mgr.Network()
		for _, sess := range mgr.Sessions() {
			if sess.Degraded {
				continue
			}
			emb := sess.Result.Embedding
			rep.RepairChecks++
			if err := conformance.CheckLive(net, emb); err != nil {
				fail("repair", "invalid-embedding", "after %v: %v", ev, err)
				continue
			}
			for di := range emb.Walks {
				if conformance.WalkBroken(net, emb, di) {
					fail("repair", "still-broken", "after %v: walk %d traverses failed elements", ev, di)
				}
			}
		}
	}
}
