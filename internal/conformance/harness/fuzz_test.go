package harness

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"sftree/internal/baseline"
	"sftree/internal/conformance"
	"sftree/internal/core"
	"sftree/internal/exact"
	"sftree/internal/ilp"
	"sftree/internal/nfv"
	"sftree/internal/sftilp"
)

// FuzzDifferential feeds arbitrary InstanceDoc JSON to the solver
// battery: on any instance the decoder accepts and the two-stage
// algorithm solves, every solver's output must pass the shared
// validator, every reported cost must match the independent recount,
// and the ILP optimum (when the instance is small enough to prove one)
// must lower-bound every heuristic. Seeds are the checked-in corpus.
func FuzzDifferential(f *testing.F) {
	dir := filepath.Join("..", "testdata", "corpus")
	entries, err := os.ReadDir(dir)
	if err != nil {
		f.Fatalf("read corpus dir: %v", err)
	}
	seeds := 0
	for _, ent := range entries {
		if ent.IsDir() || filepath.Ext(ent.Name()) != ".json" {
			continue
		}
		blob, err := os.ReadFile(filepath.Join(dir, ent.Name()))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(blob)
		seeds++
	}
	if seeds < 8 {
		f.Fatalf("corpus holds only %d seeds, want >= 8", seeds)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		var doc nfv.InstanceDoc
		if err := json.Unmarshal(data, &doc); err != nil || doc.Network == nil {
			return
		}
		net, task := doc.Network, doc.Task
		// Bound the work per input: fuzzing explores decode and solver
		// edge cases, not scale.
		if net.NumNodes() > 30 || net.Graph().NumEdges() > 120 ||
			task.K() > 3 || len(task.Destinations) > 4 || net.CatalogSize() > 40 {
			return
		}
		two, err := core.Solve(net, task, core.Options{})
		if err != nil {
			return // unsolvable inputs are fine; panics are not
		}
		check := func(name string, cost float64, emb *nfv.Embedding) {
			if err := conformance.Check(net, emb); err != nil {
				t.Fatalf("%s produced an invalid embedding: %v", name, err)
			}
			bd, err := conformance.Recount(net, emb)
			if err != nil {
				t.Fatalf("%s: recount: %v", name, err)
			}
			if !conformance.CostsAgree(bd.Total, cost) {
				t.Fatalf("%s reports cost %v, independent recount %v", name, cost, bd.Total)
			}
		}
		check("msa", two.FinalCost, two.Embedding)
		if err := conformance.CheckStageMonotone(two.Embedding); err != nil {
			t.Fatalf("two-stage output breaks Theorem 4: %v", err)
		}
		if r, err := core.SolveStageOne(net, task, core.Options{}); err == nil {
			check("msa1", r.FinalCost, r.Embedding)
		}
		if r, err := baseline.SCA(net, task, core.Options{}); err == nil {
			check("sca", r.FinalCost, r.Embedding)
		}
		bks, err := exact.BestKnown(net, task)
		if err != nil {
			t.Fatalf("best-known failed where two-stage succeeded: %v", err)
		}
		check("bks", bks.FinalCost, bks.Embedding)
		if bks.FinalCost > two.FinalCost*(1+1e-9) {
			t.Fatalf("best-known %v above two-stage %v", bks.FinalCost, two.FinalCost)
		}
		if model, err := sftilp.BuildModel(net, task); err == nil && model.NumVars() <= 220 {
			res, err := sftilp.SolveExact(net, task, ilp.Options{
				MaxNodes: 20000, Incumbent: two.FinalCost, HasIncumbent: true,
			})
			if err == nil && res.Status == ilp.Optimal {
				check("ilp", res.Objective, res.Embedding)
				if res.Objective > bks.FinalCost*(1+1e-6)+1e-9 {
					t.Fatalf("ILP optimum %v above best-known %v", res.Objective, bks.FinalCost)
				}
			}
		}
	})
}
