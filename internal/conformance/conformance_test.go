package conformance

import (
	"math"
	"math/rand"
	"testing"

	"sftree/internal/baseline"
	"sftree/internal/core"
	"sftree/internal/graph"
	"sftree/internal/netgen"
	"sftree/internal/nfv"
)

// solvedInstance generates a random paper-style instance and solves it
// with the two-stage algorithm, returning a known-valid embedding.
func solvedInstance(t *testing.T, seed int64, nodes, k, nd int) (*nfv.Network, *nfv.Embedding) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	net, err := netgen.Generate(netgen.PaperConfig(nodes, 2), rng)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	task, err := netgen.GenerateTask(net, rng, nd, k)
	if err != nil {
		t.Fatalf("task: %v", err)
	}
	res, err := core.Solve(net, task, core.Options{})
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	return net, res.Embedding
}

func TestCheckAcceptsSolverOutput(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		net, emb := solvedInstance(t, seed, 16, 2, 3)
		if err := Check(net, emb); err != nil {
			t.Fatalf("seed %d: valid embedding rejected: %v", seed, err)
		}
	}
}

func TestRecountMatchesCostOracle(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		net, emb := solvedInstance(t, seed, 14, 2, 3)
		bd, err := Recount(net, emb)
		if err != nil {
			t.Fatalf("seed %d: recount: %v", seed, err)
		}
		oracle := net.Cost(emb)
		if !CostsAgree(bd.Total, oracle.Total) {
			t.Fatalf("seed %d: recount total %v != oracle %v", seed, bd.Total, oracle.Total)
		}
		if !CostsAgree(bd.Setup, oracle.Setup) || !CostsAgree(bd.Link, oracle.Link) {
			t.Fatalf("seed %d: breakdown (%v,%v) != oracle (%v,%v)",
				seed, bd.Setup, bd.Link, oracle.Setup, oracle.Link)
		}
	}
}

// mutation corrupts a valid embedding in one specific way; both the
// conformance validator and nfv.Validate must agree on the verdict for
// every one of them.
type mutation struct {
	name  string
	apply func(e *nfv.Embedding, net *nfv.Network) bool // false: not applicable
}

func mutations() []mutation {
	return []mutation{
		{"drop-walk", func(e *nfv.Embedding, _ *nfv.Network) bool {
			if len(e.Walks) == 0 {
				return false
			}
			e.Walks = e.Walks[:len(e.Walks)-1]
			return true
		}},
		{"wrong-start", func(e *nfv.Embedding, net *nfv.Network) bool {
			p := e.Walks[0][0].Path
			e.Walks[0][0].Path = append([]int{(e.Task.Source + 1) % net.NumNodes()}, p[1:]...)
			return true
		}},
		{"non-edge-hop", func(e *nfv.Embedding, net *nfv.Network) bool {
			// Splice an unreachable detour into the first segment.
			for u := 0; u < net.NumNodes(); u++ {
				if _, ok := net.Graph().HasEdge(e.Task.Source, u); !ok && u != e.Task.Source {
					seg := &e.Walks[0][0]
					seg.Path = append([]int{e.Task.Source, u}, seg.Path...)
					return true
				}
			}
			return false
		}},
		{"truncate-walk", func(e *nfv.Embedding, _ *nfv.Network) bool {
			if len(e.Walks[0]) < 2 {
				return false
			}
			e.Walks[0] = e.Walks[0][:len(e.Walks[0])-1]
			return true
		}},
		{"bad-level-label", func(e *nfv.Embedding, _ *nfv.Network) bool {
			e.Walks[0][0].Level = 99
			return true
		}},
		{"drop-instances", func(e *nfv.Embedding, _ *nfv.Network) bool {
			if len(e.NewInstances) == 0 {
				return false
			}
			e.NewInstances = nil
			return true
		}},
		{"duplicate-instance", func(e *nfv.Embedding, _ *nfv.Network) bool {
			if len(e.NewInstances) == 0 {
				return false
			}
			e.NewInstances = append(e.NewInstances, e.NewInstances[0])
			return true
		}},
		{"instance-on-switch", func(e *nfv.Embedding, net *nfv.Network) bool {
			for v := 0; v < net.NumNodes(); v++ {
				if !net.IsServer(v) {
					e.NewInstances = append(e.NewInstances, nfv.Instance{VNF: e.Task.Chain[0], Node: v, Level: 1})
					return true
				}
			}
			return false
		}},
		{"shadow-deployed", func(e *nfv.Embedding, net *nfv.Network) bool {
			for f := 0; f < net.CatalogSize(); f++ {
				for v := 0; v < net.NumNodes(); v++ {
					if net.IsDeployed(f, v) {
						e.NewInstances = append(e.NewInstances, nfv.Instance{VNF: f, Node: v, Level: 1})
						return true
					}
				}
			}
			return false
		}},
		{"unknown-vnf-instance", func(e *nfv.Embedding, net *nfv.Network) bool {
			e.NewInstances = append(e.NewInstances, nfv.Instance{VNF: net.CatalogSize() + 3, Node: 0, Level: 1})
			return true
		}},
		{"wrong-terminus", func(e *nfv.Embedding, net *nfv.Network) bool {
			w := e.Walks[0]
			last := &w[len(w)-1]
			end := last.Path[len(last.Path)-1]
			for v := 0; v < net.NumNodes(); v++ {
				if _, ok := net.Graph().HasEdge(end, v); ok && v != e.Task.Destinations[0] {
					last.Path = append(last.Path, v)
					return true
				}
			}
			return false
		}},
		{"empty-segment", func(e *nfv.Embedding, _ *nfv.Network) bool {
			e.Walks[0][0].Path = nil
			return true
		}},
	}
}

// TestCheckMatchesValidateOnMutations is the equivalence battery: the
// shared validator and nfv.Validate must return the same verdict on
// every corrupted variant of a valid embedding.
func TestCheckMatchesValidateOnMutations(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		net, emb := solvedInstance(t, seed, 14, 2, 3)
		for _, mut := range mutations() {
			c := emb.Clone()
			if !mut.apply(c, net) {
				continue
			}
			gotOracle := net.Validate(c) == nil
			gotShared := Check(net, c) == nil
			if gotOracle != gotShared {
				t.Errorf("seed %d mutation %q: nfv.Validate ok=%v, conformance.Check ok=%v",
					seed, mut.name, gotOracle, gotShared)
			}
		}
	}
}

func TestCheckRejectsCapacityOverflow(t *testing.T) {
	// Two-node line, one server with room for exactly one instance.
	g := graph.New(2)
	g.MustAddEdge(0, 1, 1)
	catalog := []nfv.VNF{{ID: 0, Name: "a", Demand: 1}, {ID: 1, Name: "b", Demand: 1}}
	net := nfv.NewNetwork(g, catalog)
	if err := net.SetServer(0, 1); err != nil {
		t.Fatal(err)
	}
	emb := &nfv.Embedding{
		Task: nfv.Task{Source: 0, Destinations: []int{1}, Chain: nfv.SFC{0, 1}},
		NewInstances: []nfv.Instance{
			{VNF: 0, Node: 0, Level: 1},
			{VNF: 1, Node: 0, Level: 2},
		},
		Walks: []nfv.Walk{{
			{Level: 0, Path: []int{0}},
			{Level: 1, Path: []int{0}},
			{Level: 2, Path: []int{0, 1}},
		}},
	}
	if err := Check(net, emb); err == nil {
		t.Fatal("capacity overflow accepted")
	}
	if err := net.Validate(emb); err == nil {
		t.Fatal("oracle disagrees: nfv.Validate accepted the overflow")
	}
}

// TestCheckLiveMatchesValidateDeployed pins the live-embedding variant
// to the nfv.ValidateDeployed behavior it replaces in the repair and
// chaos paths.
func TestCheckLiveMatchesValidateDeployed(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		net, emb := solvedInstance(t, seed, 14, 2, 3)
		// Install the solution, as the dynamic manager would.
		live := net.Clone()
		for _, inst := range emb.NewInstances {
			if err := live.Deploy(inst.VNF, inst.Node); err != nil {
				t.Fatalf("seed %d: deploy: %v", seed, err)
			}
		}
		if err := live.ValidateDeployed(emb); err != nil {
			t.Fatalf("seed %d: oracle rejects live embedding: %v", seed, err)
		}
		if err := CheckLive(live, emb); err != nil {
			t.Fatalf("seed %d: CheckLive rejects live embedding: %v", seed, err)
		}
		// Corrupt it: both must reject.
		bad := emb.Clone()
		if len(bad.Walks[0]) > 1 {
			bad.Walks[0] = bad.Walks[0][:1]
		}
		if (live.ValidateDeployed(bad) == nil) != (CheckLive(live, bad) == nil) {
			t.Fatalf("seed %d: verdicts diverge on corrupted live embedding", seed)
		}
	}
}

func TestWalkBrokenDetectsDamage(t *testing.T) {
	net, emb := solvedInstance(t, 3, 14, 2, 3)
	live := net.Clone()
	for _, inst := range emb.NewInstances {
		if err := live.Deploy(inst.VNF, inst.Node); err != nil {
			t.Fatal(err)
		}
	}
	for di := range emb.Walks {
		if WalkBroken(live, emb, di) {
			t.Fatalf("destination %d reported broken on healthy network", di)
		}
	}
	// Kill the instance serving destination 0 at level 1.
	host := emb.Walks[0][1].Path[0]
	f := emb.Task.Chain[0]
	if err := live.Undeploy(f, host); err != nil {
		t.Fatal(err)
	}
	if !WalkBroken(live, emb, 0) {
		t.Fatal("lost instance not detected as breakage")
	}
}

func TestStageMonotoneOnHeuristicFamily(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 6; trial++ {
		net, err := netgen.Generate(netgen.PaperConfig(18, 2), rng)
		if err != nil {
			t.Fatal(err)
		}
		task, err := netgen.GenerateTask(net, rng, 4, 3)
		if err != nil {
			t.Fatal(err)
		}
		if res, err := core.Solve(net, task, core.Options{MaxOPAPasses: 3}); err == nil {
			if err := CheckStageMonotone(res.Embedding); err != nil {
				t.Fatalf("trial %d: two-stage violates Theorem 4 structure: %v\ncounts=%v",
					trial, err, StageCounts(res.Embedding))
			}
		}
		if res, err := baseline.SCA(net, task, core.Options{}); err == nil {
			if err := CheckStageMonotone(res.Embedding); err != nil {
				t.Fatalf("trial %d: SCA violates Theorem 4 structure: %v", trial, err)
			}
		}
		if res, err := baseline.RSA(net, task, rand.New(rand.NewSource(int64(trial))), core.Options{}); err == nil {
			if err := CheckStageMonotone(res.Embedding); err != nil {
				t.Fatalf("trial %d: RSA violates Theorem 4 structure: %v", trial, err)
			}
		}
	}
}

func TestCheckStageMonotoneRejects(t *testing.T) {
	// Hand-built 2-level embedding with 2 instances at level 1 and a
	// single shared instance at level 2.
	g := graph.New(5)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(0, 2, 1)
	g.MustAddEdge(1, 3, 1)
	g.MustAddEdge(2, 3, 1)
	g.MustAddEdge(3, 4, 1)
	catalog := []nfv.VNF{{ID: 0, Name: "a", Demand: 1}, {ID: 1, Name: "b", Demand: 1}}
	net := nfv.NewNetwork(g, catalog)
	for _, v := range []int{1, 2, 3} {
		if err := net.SetServer(v, 4); err != nil {
			t.Fatal(err)
		}
	}
	emb := &nfv.Embedding{
		Task: nfv.Task{Source: 0, Destinations: []int{3, 4}, Chain: nfv.SFC{0, 1}},
		NewInstances: []nfv.Instance{
			{VNF: 0, Node: 1, Level: 1},
			{VNF: 0, Node: 2, Level: 1},
			{VNF: 1, Node: 3, Level: 2},
		},
		Walks: []nfv.Walk{
			{
				{Level: 0, Path: []int{0, 1}},
				{Level: 1, Path: []int{1, 3}},
				{Level: 2, Path: []int{3}},
			},
			{
				{Level: 0, Path: []int{0, 2}},
				{Level: 1, Path: []int{2, 3}},
				{Level: 2, Path: []int{3, 4}},
			},
		},
	}
	if err := Check(net, emb); err != nil {
		t.Fatalf("fixture invalid: %v", err)
	}
	counts := StageCounts(emb)
	if counts[0] != 2 || counts[1] != 1 {
		t.Fatalf("stage counts %v, want [2 1]", counts)
	}
	if err := CheckStageMonotone(emb); err == nil {
		t.Fatal("shrinking stage accepted")
	}
}

func TestCostsAgree(t *testing.T) {
	cases := []struct {
		a, b float64
		want bool
	}{
		{1, 1, true},
		{1, 1 + 1e-9, true},
		{1, 1.1, false},
		{1e9, 1e9 * (1 + 1e-8), true},
		{1e9, 1e9 * 1.01, false},
		{math.Inf(1), math.Inf(1), true},
		{math.Inf(1), 5, false},
	}
	for _, c := range cases {
		if got := CostsAgree(c.a, c.b); got != c.want {
			t.Errorf("CostsAgree(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestSortedInstanceKeysDedupes(t *testing.T) {
	e := &nfv.Embedding{NewInstances: []nfv.Instance{
		{VNF: 2, Node: 5}, {VNF: 1, Node: 9}, {VNF: 2, Node: 5}, {VNF: 1, Node: 3},
	}}
	keys := SortedInstanceKeys(e)
	want := [][2]int{{1, 3}, {1, 9}, {2, 5}}
	if len(keys) != len(want) {
		t.Fatalf("keys %v, want %v", keys, want)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("keys %v, want %v", keys, want)
		}
	}
}
