package conformance

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"sftree/internal/core"
	"sftree/internal/nfv"
)

// validatorFuzzDoc is the fuzz wire format: one instance plus one
// candidate embedding for it.
type validatorFuzzDoc struct {
	Instance  nfv.InstanceDoc `json:"instance"`
	Embedding *nfv.Embedding  `json:"embedding"`
}

// corpusSeeds returns the checked-in conformance corpus (see
// testdata/corpus/README note in EXPERIMENTS.md for regeneration).
func corpusSeeds(tb testing.TB) [][]byte {
	tb.Helper()
	dir := filepath.Join("testdata", "corpus")
	entries, err := os.ReadDir(dir)
	if err != nil {
		tb.Fatalf("read corpus dir: %v", err)
	}
	var out [][]byte
	for _, ent := range entries {
		if ent.IsDir() || filepath.Ext(ent.Name()) != ".json" {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, ent.Name()))
		if err != nil {
			tb.Fatalf("read corpus seed %s: %v", ent.Name(), err)
		}
		out = append(out, data)
	}
	if len(out) < 8 {
		tb.Fatalf("corpus holds only %d seeds, want >= 8", len(out))
	}
	return out
}

// FuzzValidator feeds arbitrary (instance, embedding) documents to the
// shared validator: it must never panic, must return the same verdict
// as nfv.Validate, and on acceptance its independent cost recount must
// match the nfv.Cost oracle.
func FuzzValidator(f *testing.F) {
	for _, raw := range corpusSeeds(f) {
		var doc nfv.InstanceDoc
		if err := json.Unmarshal(raw, &doc); err != nil {
			f.Fatalf("corpus seed does not decode: %v", err)
		}
		res, err := core.Solve(doc.Network, doc.Task, core.Options{})
		if err != nil {
			f.Fatalf("corpus seed does not solve: %v", err)
		}
		seed, err := json.Marshal(validatorFuzzDoc{Instance: doc, Embedding: res.Embedding})
		if err != nil {
			f.Fatal(err)
		}
		f.Add(seed)
		// A corrupted sibling: walk truncated to nothing.
		bad := res.Embedding.Clone()
		bad.Walks[0] = nil
		if seed, err = json.Marshal(validatorFuzzDoc{Instance: doc, Embedding: bad}); err == nil {
			f.Add(seed)
		}
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"instance":{"network":{"nodes":2,"edges":[{"u":0,"v":1,"cost":1}],"catalog":[{"id":0,"name":"a","demand":1}],"servers":[{"node":0,"capacity":2}]},"task":{"source":0,"destinations":[1],"chain":[0]}},"embedding":{"task":{"source":0,"destinations":[1],"chain":[0]},"new_instances":[{"vnf":0,"node":0,"level":1}],"walks":[[{"level":0,"path":[0]},{"level":1,"path":[0,1]}]]}}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		var doc validatorFuzzDoc
		if err := json.Unmarshal(data, &doc); err != nil {
			return
		}
		if doc.Instance.Network == nil || doc.Embedding == nil {
			return
		}
		net, emb := doc.Instance.Network, doc.Embedding
		oracleOK := net.Validate(emb) == nil
		sharedOK := Check(net, emb) == nil
		if oracleOK != sharedOK {
			t.Fatalf("verdicts diverge: nfv.Validate ok=%v, conformance.Check ok=%v", oracleOK, sharedOK)
		}
		if !sharedOK {
			return
		}
		bd, err := Recount(net, emb)
		if err != nil {
			t.Fatalf("accepted embedding failed recount: %v", err)
		}
		if oracle := net.Cost(emb); !CostsAgree(bd.Total, oracle.Total) {
			t.Fatalf("recount %v != cost oracle %v", bd.Total, oracle.Total)
		}
		// Stage counts must be well-defined on anything accepted.
		_ = StageCounts(emb)
	})
}
