// Package conformance is the repository's shared embedding-invariant
// validator and independent cost re-accountant. Every solver and every
// runtime path that holds an embedding — the HTTP server's validate
// endpoint, the dynamic manager's fault repair, the chaos simulation's
// post-event checks, and the differential harness in
// conformance/harness — validates through this one code path instead
// of keeping private copies of the constraint checks.
//
// The checks mirror the paper's feasibility constraints (1b)-(1f) and
// objective (1a), but the implementation is deliberately independent
// of nfv.Validate and nfv.Cost: it walks the embedding with its own
// bookkeeping, so agreement between the two is itself a conformance
// signal (asserted by the equivalence tests and the fuzz targets).
// On top of feasibility it exposes the structural property of the
// paper's Theorem 4 — instance counts per chain stage never shrink
// toward the destinations — which holds for every solution the
// two-stage optimizer family produces.
package conformance

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"sftree/internal/nfv"
)

var (
	// ErrViolation reports an embedding that breaks a problem
	// constraint; the message pinpoints which one.
	ErrViolation = errors.New("conformance: invariant violated")
	// ErrMonotonicity reports a Theorem 4 stage-size violation: some
	// chain stage holds more distinct instances than a later one.
	ErrMonotonicity = errors.New("conformance: stage sizes not monotone")
)

// Breakdown is the independently re-derived traffic delivery cost.
type Breakdown struct {
	Setup float64 `json:"setup"` // distinct new instances, deduplicated by (vnf, node)
	Link  float64 `json:"link"`  // distinct (stage, directed edge) transmissions
	Total float64 `json:"total"`
}

// Check validates an embedding against every problem constraint:
//
//   - walk order: each destination's walk runs S -> l1 -> ... -> lk -> d
//     as k+1 segments with consistent endpoints, labelled levels, and
//     edge-connected paths (constraints 1c, 1e, 1f);
//   - service: the node ending segment j hosts chain VNF j+1, either
//     pre-deployed or listed in NewInstances (constraint 1b);
//   - instances: listed on server nodes only, no duplicates, none
//     shadowing a deployed instance;
//   - capacity: per-node demand of new instances fits the free
//     capacity (constraint 1d).
//
// It accepts exactly the embeddings nfv.Validate accepts (asserted by
// the equivalence tests) but shares no code with it.
func Check(net *nfv.Network, e *nfv.Embedding) error {
	_, err := checkAndRecount(net, e)
	return err
}

// Recount re-derives the embedding's traffic delivery cost (objective
// 1a) with the validator's own deduplication bookkeeping: the setup
// cost of every distinct new instance plus the link cost of every
// distinct (stage, directed edge) transmission, exactly the
// instance-reuse accounting of the paper (§IV-D: reused instances and
// re-traversed stage edges are free). It fails rather than pricing an
// infeasible embedding.
func Recount(net *nfv.Network, e *nfv.Embedding) (Breakdown, error) {
	return checkAndRecount(net, e)
}

// checkAndRecount is the single traversal behind Check and Recount.
func checkAndRecount(net *nfv.Network, e *nfv.Embedding) (Breakdown, error) {
	var bd Breakdown
	task := e.Task
	if err := task.Validate(net); err != nil {
		return bd, err
	}
	k := task.K()
	if len(e.Walks) != len(task.Destinations) {
		return bd, fmt.Errorf("%w: %d walks for %d destinations",
			ErrViolation, len(e.Walks), len(task.Destinations))
	}

	// New instances: structural checks, capacity accounting, setup cost.
	hasNew := make(map[[2]int]bool, len(e.NewInstances))
	addedDemand := make(map[int]float64)
	for _, inst := range e.NewInstances {
		vnf, err := net.VNF(inst.VNF)
		if err != nil {
			return bd, fmt.Errorf("%w: new instance %+v: %v", ErrViolation, inst, err)
		}
		if !net.IsServer(inst.Node) {
			return bd, fmt.Errorf("%w: new instance of VNF %d on non-server node %d",
				ErrViolation, inst.VNF, inst.Node)
		}
		if net.IsDeployed(inst.VNF, inst.Node) {
			return bd, fmt.Errorf("%w: new instance of VNF %d on node %d shadows a deployed one",
				ErrViolation, inst.VNF, inst.Node)
		}
		key := [2]int{inst.VNF, inst.Node}
		if hasNew[key] {
			return bd, fmt.Errorf("%w: duplicate new instance of VNF %d on node %d",
				ErrViolation, inst.VNF, inst.Node)
		}
		hasNew[key] = true
		addedDemand[inst.Node] += vnf.Demand
		bd.Setup += net.SetupCost(inst.VNF, inst.Node)
	}
	for v, add := range addedDemand {
		if net.UsedCapacity(v)+add > net.Capacity(v)+capEps {
			return bd, fmt.Errorf("%w: node %d over capacity: deployed %v + new %v > %v",
				ErrViolation, v, net.UsedCapacity(v), add, net.Capacity(v))
		}
	}

	// Walks: order, connectivity, service, per-stage link dedup.
	type stageArc struct{ level, u, v int }
	paid := make(map[stageArc]bool)
	for di, d := range task.Destinations {
		w := e.Walks[di]
		if len(w) != k+1 {
			return bd, fmt.Errorf("%w: destination %d walk has %d segments, want %d",
				ErrViolation, d, len(w), k+1)
		}
		at := task.Source
		for j, seg := range w {
			if seg.Level != j {
				return bd, fmt.Errorf("%w: destination %d segment %d labelled level %d",
					ErrViolation, d, j, seg.Level)
			}
			if len(seg.Path) == 0 {
				return bd, fmt.Errorf("%w: destination %d segment %d is empty", ErrViolation, d, j)
			}
			if seg.Path[0] != at {
				return bd, fmt.Errorf("%w: destination %d segment %d starts at %d, want %d",
					ErrViolation, d, j, seg.Path[0], at)
			}
			for i := 1; i < len(seg.Path); i++ {
				u, v := seg.Path[i-1], seg.Path[i]
				cost, ok := net.Graph().HasEdge(u, v)
				if !ok {
					return bd, fmt.Errorf("%w: destination %d segment %d hops over non-edge %d-%d",
						ErrViolation, d, j, u, v)
				}
				arc := stageArc{level: j, u: u, v: v}
				if !paid[arc] {
					paid[arc] = true
					bd.Link += cost
				}
				at = v
			}
			if j < k {
				f := task.Chain[j]
				if !net.IsDeployed(f, at) && !hasNew[[2]int{f, at}] {
					return bd, fmt.Errorf("%w: destination %d needs VNF %d at node %d (level %d) but no instance is there",
						ErrViolation, d, f, at, j+1)
				}
			}
		}
		if at != d {
			return bd, fmt.Errorf("%w: walk for destination %d terminates at %d", ErrViolation, d, at)
		}
	}
	bd.Total = bd.Setup + bd.Link
	return bd, nil
}

// capEps matches the capacity slack used across the repository.
const capEps = 1e-9

// CheckLive validates a *live* embedding: one whose NewInstances were
// installed on the network after solving (the dynamic manager's
// post-admission state). Check would reject such an embedding as
// shadowing deployed instances and double-count its capacity, so this
// variant re-checks against a scratch copy with the embedding's own
// instances undeployed. It is the re-validation path the fault
// recovery ladder and the chaos gate share.
func CheckLive(net *nfv.Network, e *nfv.Embedding) error {
	scratch := net
	for _, inst := range e.NewInstances {
		if inst.VNF < 0 || inst.VNF >= net.CatalogSize() {
			break // Check reports the malformed instance itself
		}
		if net.IsDeployed(inst.VNF, inst.Node) {
			if scratch == net {
				scratch = net.Clone()
			}
			if err := scratch.Undeploy(inst.VNF, inst.Node); err != nil {
				return fmt.Errorf("%w: undeploy %+v for re-validation: %v", ErrViolation, inst, err)
			}
		}
	}
	return Check(scratch, e)
}

// WalkBroken reports whether destination index di's walk traverses a
// link absent from the network or a serving node that no longer hosts
// its chain VNF — the damage test fault repair runs after a substrate
// change. Unlike Check it inspects deployment state only (a live walk
// leans on installed instances), so it applies to live embeddings.
func WalkBroken(net *nfv.Network, e *nfv.Embedding, di int) bool {
	k := e.Task.K()
	for j, seg := range e.Walks[di] {
		for i := 1; i < len(seg.Path); i++ {
			if _, ok := net.Graph().HasEdge(seg.Path[i-1], seg.Path[i]); !ok {
				return true
			}
		}
		if j < k {
			host := seg.Path[len(seg.Path)-1]
			if !net.IsDeployed(e.Task.Chain[j], host) {
				return true
			}
		}
	}
	return false
}

// StageCounts returns, for each chain level 1..k, the number of
// distinct nodes serving that level across all destinations — the
// per-stage instance-set sizes of the paper's Theorem 4.
func StageCounts(e *nfv.Embedding) []int {
	k := e.Task.K()
	counts := make([]int, k)
	for j := 1; j <= k; j++ {
		distinct := make(map[int]bool)
		for di := range e.Walks {
			if j < len(e.Walks[di]) && len(e.Walks[di][j].Path) > 0 {
				distinct[e.Walks[di][j].Path[0]] = true
			}
		}
		counts[j-1] = len(distinct)
	}
	return counts
}

// CheckStageMonotone asserts the Theorem 4 structure: the number of
// distinct serving nodes per chain stage is non-decreasing toward the
// destinations (later stages may hold more instances, never fewer).
// Every solution produced by the two-stage optimizer family (MSA+OPA
// and the baselines sharing OPA) satisfies it by construction — stage
// two only ever re-homes a complete group of destinations served by a
// common later-stage instance, so the per-stage partitions refine
// toward level k. Exact solvers may legally return optima that break
// it (the theorem says *an* optimal SFT with the structure exists, not
// that all do), so the differential harness asserts it only for the
// heuristic family and records it elsewhere.
func CheckStageMonotone(e *nfv.Embedding) error {
	counts := StageCounts(e)
	for j := 1; j < len(counts); j++ {
		if counts[j-1] > counts[j] {
			return fmt.Errorf("%w: stage %d holds %d instances, stage %d only %d",
				ErrMonotonicity, j, counts[j-1], j+1, counts[j])
		}
	}
	return nil
}

// CostsAgree reports whether two cost totals agree within the
// harness-wide tolerance (absolute for small values, relative for
// large ones). Infinities agree only with themselves.
func CostsAgree(a, b float64) bool {
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return a == b
	}
	tol := 1e-6 * math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= tol
}

// SortedInstanceKeys returns the embedding's distinct (vnf, node) new
// instance pairs in deterministic order, a convenience for reports and
// diffing solver outputs.
func SortedInstanceKeys(e *nfv.Embedding) [][2]int {
	seen := make(map[[2]int]bool, len(e.NewInstances))
	var keys [][2]int
	for _, inst := range e.NewInstances {
		key := [2]int{inst.VNF, inst.Node}
		if !seen[key] {
			seen[key] = true
			keys = append(keys, key)
		}
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a][0] != keys[b][0] {
			return keys[a][0] < keys[b][0]
		}
		return keys[a][1] < keys[b][1]
	})
	return keys
}
