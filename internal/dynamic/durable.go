// Durable admission state: the manager's WAL integration. Every
// state-changing operation (admit commit, release, rebase purge,
// repair outcome) appends one lifecycle record to an attached
// write-ahead log *before* the in-memory commit, inside the same
// critical section, so the durable history and the live state can
// never disagree about what was committed. Restore rebuilds a manager
// from the newest snapshot plus the WAL tail, re-derives the
// refcount ledger and deployment state, and routes sessions the
// restored topology can no longer satisfy through the ordinary
// Rebase repair ladder instead of failing the restore.
package dynamic

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"sftree/internal/conformance"
	"sftree/internal/core"
	"sftree/internal/nfv"
	"sftree/internal/wal"
)

// ErrNoWAL reports a durability operation on a manager without an
// attached log.
var ErrNoWAL = errors.New("dynamic: no WAL attached")

// AttachWAL wires a write-ahead log into the manager: from now on
// every commit appends its lifecycle record before mutating state,
// and Checkpoint can persist compacted snapshots. Attach before the
// first admission; it returns the manager for chaining.
func (m *Manager) AttachWAL(w *wal.Log) *Manager {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.wal = w
	return m
}

// WAL returns the attached log (nil when the manager is not durable).
func (m *Manager) WAL() *wal.Log {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.wal
}

// SetCrashHook installs a test-only hook invoked at named crash
// points inside the commit critical sections — most importantly
// "admit:post-wal", between the WAL append and the in-memory commit.
// The crash-injection harness panics from it to simulate a SIGKILL at
// the worst possible instant.
func (m *Manager) SetCrashHook(fn func(point string)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.crashHook = fn
}

// crashPoint fires the injected crash hook; callers hold m.mu.
func (m *Manager) crashPoint(point string) {
	if m.crashHook != nil {
		m.crashHook(point)
	}
}

// appendRecord appends one lifecycle record, tracking the durability
// counters; callers hold m.mu. A nil WAL is a no-op.
func (m *Manager) appendRecord(rec *wal.Record) error {
	if m.wal == nil {
		return nil
	}
	if _, err := m.wal.Append(rec); err != nil {
		m.walAppendErrors++
		if m.met != nil {
			m.met.walAppendErrors.Inc()
		}
		return err
	}
	m.walRecords++
	if m.met != nil {
		m.met.walRecords.Inc()
	}
	return nil
}

// usesCopy clones a usage list for a WAL record, so the record never
// aliases the session's live slice.
func usesCopy(uses [][2]int) [][2]int {
	if len(uses) == 0 {
		return nil
	}
	return append([][2]int(nil), uses...)
}

// appendAdmitLocked logs one committed admission; callers hold m.mu.
func (m *Manager) appendAdmitLocked(sess *Session) error {
	return m.appendRecord(&wal.Record{
		Type:      wal.RecAdmit,
		Session:   int64(sess.ID),
		Embedding: sess.Result.Embedding,
		FinalCost: sess.Result.FinalCost,
		Uses:      usesCopy(sess.uses),
	})
}

// appendRepairLocked logs one session's post-repair state; callers
// hold m.mu. Append failures are counted but do not abort the repair:
// the in-memory state is already the source of truth mid-Rebase. They
// DO mark the manager checkpoint-dirty — until a snapshot re-captures
// the live state, a crash would restore stale pre-repair sessions, so
// the serving loop must fold one immediately, not on the interval.
func (m *Manager) appendRepairLocked(sess *Session, outcome RepairOutcome) {
	err := m.appendRecord(&wal.Record{
		Type:      wal.RecRepair,
		Session:   int64(sess.ID),
		Embedding: sess.Result.Embedding,
		FinalCost: sess.Result.FinalCost,
		Uses:      usesCopy(sess.uses),
		Degraded:  sess.Degraded,
		Lost:      append([]int(nil), sess.Lost...),
		Outcome:   string(outcome),
	})
	if err != nil {
		m.markCheckpointDirtyLocked()
	}
}

// appendRebaseLocked logs a substrate swap and its purged instance
// references; callers hold m.mu. Like repairs, a failed append leaves
// the durable history behind the live state and marks the manager
// checkpoint-dirty.
func (m *Manager) appendRebaseLocked(purged [][2]int) {
	sortKeys(purged)
	err := m.appendRecord(&wal.Record{
		Type:   wal.RecRebase,
		Purged: purged,
		Gen:    m.net.Graph().Generation(),
		Epoch:  m.net.DeployEpoch(),
	})
	if err != nil {
		m.markCheckpointDirtyLocked()
	}
}

// markCheckpointDirtyLocked records that durable history and live
// state have diverged (a repair/rebase record failed to append) and
// only a snapshot can resync them; callers hold m.mu.
func (m *Manager) markCheckpointDirtyLocked() {
	m.checkpointDirty = true
	if m.met != nil {
		m.met.walDirty.Set(1)
	}
}

// NeedsCheckpoint reports that a WAL append failure left the durable
// history behind the live state. The serving loop polls it and calls
// Checkpoint immediately instead of waiting out the snapshot
// interval, shrinking the window in which a crash restores stale
// pre-repair state.
func (m *Manager) NeedsCheckpoint() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.checkpointDirty
}

// sortKeys orders (vnf, node) pairs lexicographically, making records
// and snapshots byte-deterministic for a given state.
func sortKeys(keys [][2]int) {
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
}

// Drain blocks until every in-flight admission and release has
// finished committing (or the context expires). Graceful shutdown
// calls it between "stop accepting requests" and "write the final
// snapshot", so the snapshot can never miss a commit that was already
// past its WAL append.
func (m *Manager) Drain(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		m.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Checkpoint writes a compacted snapshot of the full manager state
// through the attached WAL (sessions, refcount ledger, counters,
// network version), rotating the log so replay after the next crash
// starts here. It returns the snapshot's folded sequence number.
func (m *Manager) Checkpoint() (uint64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.wal == nil {
		return 0, ErrNoWAL
	}
	snap := &wal.Snapshot{
		NextID: int64(m.nextID),
		Counters: wal.Counters{
			Admitted:            m.admitted,
			Rejected:            m.rejected,
			AdmittedCost:        m.admittedCost,
			CommitConflicts:     m.commitConflicts,
			AdmitRetries:        m.admitRetries,
			SerializedFallbacks: m.serializedFallbacks,
		},
		Gen:         m.net.Graph().Generation(),
		Epoch:       m.net.DeployEpoch(),
		Incarnation: m.net.IncarnationID(),
	}
	ids := make([]SessionID, 0, len(m.sessions))
	for id := range m.sessions {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		sess := m.sessions[id]
		snap.Sessions = append(snap.Sessions, wal.SessionState{
			ID:        int64(sess.ID),
			Embedding: sess.Result.Embedding,
			FinalCost: sess.Result.FinalCost,
			Degraded:  sess.Degraded,
			Lost:      append([]int(nil), sess.Lost...),
			Uses:      usesCopy(sess.uses),
		})
	}
	keys := make([][2]int, 0, len(m.refs))
	for k := range m.refs {
		keys = append(keys, k)
	}
	sortKeys(keys)
	for _, k := range keys {
		snap.Refs = append(snap.Refs, wal.RefCount{VNF: k[0], Node: k[1], Count: m.refs[k]})
	}
	if err := m.wal.WriteSnapshot(snap); err != nil {
		return 0, err
	}
	m.snapshots++
	m.lastSnapshotSeq = snap.Seq
	// The snapshot captured the live state, so any divergence from
	// earlier swallowed repair/rebase append failures is healed.
	m.checkpointDirty = false
	if m.met != nil {
		m.met.snapshots.Inc()
		m.met.walDirty.Set(0)
	}
	return snap.Seq, nil
}

// RecoverReport describes one Restore: what was loaded, what had to
// be repaired, and whether the restored state passed the conformance
// cross-checks.
type RecoverReport struct {
	SnapshotSeq     uint64 `json:"snapshot_seq"`
	ReplayedRecords int    `json:"replayed_records"`
	// TornTail reports that the log ended in a partial record from the
	// crash — tolerated and discarded.
	TornTail bool `json:"torn_tail,omitempty"`
	// SessionsRecovered counts live sessions rebuilt from disk (before
	// the repair pass).
	SessionsRecovered int `json:"sessions_recovered"`
	// RefsDeployed counts dynamic instances re-installed onto the
	// restored network; RefsUnplaceable ones the topology no longer
	// admits (dead node, shrunk capacity) — their sessions go through
	// the repair ladder.
	RefsDeployed    int `json:"refs_deployed"`
	RefsUnplaceable int `json:"refs_unplaceable,omitempty"`
	// Repair-ladder outcomes for sessions the restored topology could
	// not serve as recorded.
	SessionsPatched   int `json:"sessions_patched,omitempty"`
	SessionsReembeded int `json:"sessions_reembedded,omitempty"`
	SessionsDegraded  int `json:"sessions_degraded,omitempty"`
	PurgedInstances   int `json:"purged_instances,omitempty"`
	// Errors lists conformance cross-check failures of the final
	// restored state: CheckLive/Recount violations or a refcount
	// ledger that disagrees with the sessions' usage lists. Empty on a
	// healthy restore — the crash gate asserts exactly that.
	Errors []string `json:"errors,omitempty"`
	// ReplayDuration covers snapshot load application, record replay,
	// re-deployment and the repair pass.
	ReplayDuration time.Duration `json:"replay_duration_ns"`
}

// Restore rebuilds a manager from the recovery a wal.Open returned:
// it loads the snapshot state, replays the WAL tail through the same
// state machine the live commit path uses, re-installs every
// reference-counted instance onto net, runs the Rebase repair ladder
// for anything the restored topology no longer satisfies, and
// cross-checks the result with conformance.CheckLive/Recount plus an
// independent refcount re-derivation. The returned manager owns net
// and continues logging to w.
//
// Restore never fails because the topology changed — affected
// sessions are repaired or degraded, exactly as a live fault would be
// handled — but it does fail on an undecodable or inconsistent log,
// because silently dropping committed state is worse than refusing to
// start.
func Restore(net *nfv.Network, w *wal.Log, rec *wal.Recovery, opts core.Options) (*Manager, *RecoverReport, error) {
	start := time.Now()
	m := NewManager(net, opts)
	rep := &RecoverReport{TornTail: rec != nil && rec.TornTail}

	if rec != nil && rec.Snapshot != nil {
		rep.SnapshotSeq = rec.Snapshot.Seq
		if err := m.loadSnapshotState(rec.Snapshot); err != nil {
			return nil, nil, err
		}
	}
	if rec != nil {
		for i := range rec.Records {
			if err := m.applyRecord(&rec.Records[i]); err != nil {
				return nil, nil, fmt.Errorf("dynamic: restore: replay seq %d: %w", rec.Records[i].Seq, err)
			}
		}
		rep.ReplayedRecords = len(rec.Records)
	}

	// Re-derive the deployment state: the refcount ledger's keys are
	// exactly the dynamically deployed instances. Anything the restored
	// topology refuses (dead node, vanished server, shrunk capacity) is
	// treated like a fault kill: the reference is dropped here and the
	// repair pass below re-embeds or degrades the sessions leaning on it.
	keys := make([][2]int, 0, len(m.refs))
	for k := range m.refs {
		keys = append(keys, k)
	}
	sortKeys(keys)
	for _, k := range keys {
		if net.IsDeployed(k[0], k[1]) {
			continue
		}
		if err := net.Deploy(k[0], k[1]); err != nil {
			delete(m.refs, k)
			rep.RefsUnplaceable++
			continue
		}
		rep.RefsDeployed++
	}
	rep.SessionsRecovered = len(m.sessions)

	// Attach the log before the repair pass so recovery decisions are
	// themselves durable (a crash during recovery replays them).
	m.wal = w

	// Repair pass: the ordinary Rebase ladder against the restored
	// network. On an unchanged topology every session checks out intact
	// and this is a no-op beyond the version bump.
	rr := m.Rebase(net)
	rep.SessionsPatched = rr.Patched
	rep.SessionsReembeded = rr.Reembeds
	rep.SessionsDegraded = rr.Degraded
	rep.PurgedInstances = rr.PurgedInstances

	m.crossCheck(rep)
	rep.ReplayDuration = time.Since(start)
	return m, rep, nil
}

// loadSnapshotState applies a snapshot document to a fresh manager.
func (m *Manager) loadSnapshotState(snap *wal.Snapshot) error {
	for i := range snap.Sessions {
		ss := &snap.Sessions[i]
		if ss.Embedding == nil {
			return fmt.Errorf("dynamic: restore: snapshot session %d without embedding", ss.ID)
		}
		id := SessionID(ss.ID)
		if _, dup := m.sessions[id]; dup {
			return fmt.Errorf("dynamic: restore: duplicate snapshot session %d", ss.ID)
		}
		m.sessions[id] = &Session{
			ID:       id,
			Task:     ss.Embedding.Task.CloneTask(),
			Result:   &core.Result{Embedding: ss.Embedding, FinalCost: ss.FinalCost},
			Degraded: ss.Degraded,
			Lost:     ss.Lost,
			uses:     ss.Uses,
		}
	}
	for _, rc := range snap.Refs {
		if rc.Count <= 0 {
			return fmt.Errorf("dynamic: restore: non-positive refcount %d for vnf=%d node=%d",
				rc.Count, rc.VNF, rc.Node)
		}
		m.refs[[2]int{rc.VNF, rc.Node}] = rc.Count
	}
	m.nextID = SessionID(snap.NextID)
	m.admitted = snap.Counters.Admitted
	m.rejected = snap.Counters.Rejected
	m.admittedCost = snap.Counters.AdmittedCost
	m.commitConflicts = snap.Counters.CommitConflicts
	m.admitRetries = snap.Counters.AdmitRetries
	m.serializedFallbacks = snap.Counters.SerializedFallbacks
	return nil
}

// applyRecord replays one WAL record through the same state machine
// the live commit path runs, minus the network mutations (deployment
// state is re-derived from the final refcount ledger afterwards).
func (m *Manager) applyRecord(r *wal.Record) error {
	switch r.Type {
	case wal.RecAdmit:
		id := SessionID(r.Session)
		if _, dup := m.sessions[id]; dup {
			return fmt.Errorf("duplicate admit for session %d", id)
		}
		if r.Embedding == nil {
			return fmt.Errorf("admit record for session %d without embedding", id)
		}
		m.sessions[id] = &Session{
			ID:     id,
			Task:   r.Embedding.Task.CloneTask(),
			Result: &core.Result{Embedding: r.Embedding, FinalCost: r.FinalCost},
			uses:   r.Uses,
		}
		for _, k := range r.Uses {
			m.refs[k]++
		}
		if id >= m.nextID {
			m.nextID = id + 1
		}
		m.admitted++
		m.admittedCost += r.FinalCost

	case wal.RecRelease:
		sess, ok := m.sessions[SessionID(r.Session)]
		if !ok {
			return fmt.Errorf("release of unknown session %d", r.Session)
		}
		delete(m.sessions, sess.ID)
		for _, k := range sess.uses {
			if _, ok := m.refs[k]; !ok {
				continue // purged by an earlier rebase
			}
			if m.refs[k]--; m.refs[k] <= 0 {
				delete(m.refs, k)
			}
		}

	case wal.RecRebase:
		for _, k := range r.Purged {
			delete(m.refs, k)
		}
		for _, sess := range m.sessions {
			var kept [][2]int
			for _, k := range sess.uses {
				if _, ok := m.refs[k]; ok {
					kept = append(kept, k)
				}
			}
			sess.uses = kept
		}

	case wal.RecRepair:
		sess, ok := m.sessions[SessionID(r.Session)]
		if !ok {
			return fmt.Errorf("repair of unknown session %d", r.Session)
		}
		if r.Embedding == nil {
			return fmt.Errorf("repair record for session %d without embedding", r.Session)
		}
		// Refcount diff, mirroring reref: newly referenced keys gain,
		// dropped ones lose (unless already purged).
		oldSet := getKeySet()
		for _, k := range sess.uses {
			oldSet.add(k)
		}
		newSet := getKeySet()
		for _, k := range r.Uses {
			newSet.add(k)
		}
		for _, k := range r.Uses {
			if !oldSet.has(k) {
				m.refs[k]++
			}
		}
		for _, k := range sess.uses {
			if newSet.has(k) {
				continue
			}
			if _, ok := m.refs[k]; !ok {
				continue
			}
			if m.refs[k]--; m.refs[k] <= 0 {
				delete(m.refs, k)
			}
		}
		putKeySet(oldSet)
		putKeySet(newSet)
		sess.uses = r.Uses
		sess.Result.Embedding = r.Embedding
		sess.Result.FinalCost = r.FinalCost
		sess.Degraded = r.Degraded
		sess.Lost = r.Lost

	default:
		return fmt.Errorf("unknown record type %q", r.Type)
	}
	return nil
}

// crossCheck validates the restored state: every non-degraded session
// must hold a live-valid embedding whose cost the independent
// validator can re-derive, and the refcount ledger must equal the
// re-derivation from the sessions' own usage lists.
func (m *Manager) crossCheck(rep *RecoverReport) {
	m.mu.Lock()
	defer m.mu.Unlock()
	derived := make(map[[2]int]int, len(m.refs))
	ids := make([]SessionID, 0, len(m.sessions))
	for id := range m.sessions {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		sess := m.sessions[id]
		for _, k := range sess.uses {
			derived[k]++
		}
		if sess.Degraded {
			continue
		}
		if err := conformance.CheckLive(m.net, sess.Result.Embedding); err != nil {
			rep.Errors = append(rep.Errors, fmt.Sprintf("session %d: validate: %v", id, err))
			continue
		}
		if _, err := recountLive(m.net, sess.Result.Embedding); err != nil {
			rep.Errors = append(rep.Errors, fmt.Sprintf("session %d: recount: %v", id, err))
		}
	}
	if len(derived) != len(m.refs) {
		rep.Errors = append(rep.Errors, fmt.Sprintf(
			"refcount ledger has %d instances, sessions reference %d", len(m.refs), len(derived)))
	}
	for k, want := range derived {
		if got := m.refs[k]; got != want {
			rep.Errors = append(rep.Errors, fmt.Sprintf(
				"refcount mismatch for vnf=%d node=%d: ledger %d, derived %d", k[0], k[1], got, want))
		}
	}
}

// recountLive re-derives a live embedding's cost breakdown: like
// conformance.Recount, but against a scratch network with the
// embedding's own installed instances undeployed (the same trick
// CheckLive plays), so the recount prices them instead of rejecting
// them as shadowed.
func recountLive(net *nfv.Network, e *nfv.Embedding) (conformance.Breakdown, error) {
	scratch := net
	for _, inst := range e.NewInstances {
		if inst.VNF < 0 || inst.VNF >= net.CatalogSize() ||
			inst.Node < 0 || inst.Node >= net.NumNodes() {
			continue // out of range; Recount reports it as a typed error
		}
		if net.IsDeployed(inst.VNF, inst.Node) {
			if scratch == net {
				scratch = net.Clone()
			}
			if err := scratch.Undeploy(inst.VNF, inst.Node); err != nil {
				return conformance.Breakdown{}, err
			}
		}
	}
	return conformance.Recount(scratch, e)
}

// VerifyRefs re-derives the refcount ledger from the live sessions'
// usage lists and reports the first disagreement; nil means the
// ledger conserves references exactly. Harnesses call it after crash
// recovery and chaos runs.
func (m *Manager) VerifyRefs() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	derived := make(map[[2]int]int, len(m.refs))
	for _, sess := range m.sessions {
		for _, k := range sess.uses {
			derived[k]++
		}
	}
	if len(derived) != len(m.refs) {
		return fmt.Errorf("dynamic: refcount ledger has %d instances, sessions reference %d",
			len(m.refs), len(derived))
	}
	for k, want := range derived {
		if got := m.refs[k]; got != want {
			return fmt.Errorf("dynamic: refcount mismatch for vnf=%d node=%d: ledger %d, derived %d",
				k[0], k[1], got, want)
		}
	}
	return nil
}
