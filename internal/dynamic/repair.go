package dynamic

import (
	"fmt"
	"sort"
	"time"

	"sftree/internal/conformance"
	"sftree/internal/core"
	"sftree/internal/graph"
	"sftree/internal/nfv"
	"sftree/internal/obs"
)

// RepairOutcome classifies what Rebase did to one affected session.
type RepairOutcome string

const (
	// RepairIntact: no walk of the session touches a failed element.
	RepairIntact RepairOutcome = "intact"
	// RepairPatched: only the severed destinations were re-embedded;
	// intact subtrees and surviving instances were kept in place.
	RepairPatched RepairOutcome = "patched"
	// RepairReembedded: the incremental patch failed, so the whole
	// session was re-solved against the degraded network.
	RepairReembedded RepairOutcome = "reembedded"
	// RepairDegraded: no repair was feasible; the session keeps serving
	// only the destinations its surviving walks still reach.
	RepairDegraded RepairOutcome = "degraded"
)

// SessionRepair reports what happened to one affected session.
type SessionRepair struct {
	ID      SessionID     `json:"id"`
	Outcome RepairOutcome `json:"outcome"`
	// Severed lists the destination nodes whose walks a fault cut.
	Severed []int `json:"severed,omitempty"`
	// Lost lists destinations dropped from service by this repair.
	Lost []int `json:"lost,omitempty"`
	// ReusedInstances counts surviving instances the repaired walks
	// lean on (zero setup paid again); NewInstances counts instances
	// the repair had to install.
	ReusedInstances int `json:"reused_instances"`
	NewInstances    int `json:"new_instances"`
	// CostBefore is the session's cost on record; CostAfter re-prices
	// the repaired embedding (links plus setup of freshly installed
	// instances — surviving ones are free).
	CostBefore float64 `json:"cost_before"`
	CostAfter  float64 `json:"cost_after"`
	Err        string  `json:"error,omitempty"`
}

// RepairReport summarizes one Rebase pass over all live sessions.
type RepairReport struct {
	Checked  int `json:"checked"`
	Affected int `json:"affected"`
	Patched  int `json:"patched"`
	Reembeds int `json:"reembeds"`
	Degraded int `json:"degraded"`
	// PurgedInstances counts dynamic instances that died with the
	// fault (their references are dropped without undeploying).
	PurgedInstances int `json:"purged_instances"`
	// CostDelta sums CostAfter-CostBefore over affected sessions.
	CostDelta float64         `json:"cost_delta"`
	Sessions  []SessionRepair `json:"sessions,omitempty"`
}

// Rebase swaps the managed network for a degraded replacement (as
// materialized by faults.State after an event) and repairs every live
// session the fault touched. Repair is incremental where possible:
// intact subtrees and surviving instances stay in place and only the
// severed destinations are re-embedded; if that fails the session is
// fully re-solved; if that fails too it is marked degraded and keeps
// serving only the destinations its surviving walks reach. The new
// network must carry over the deployments of the old one (see
// faults.State.Materialize), minus whatever the fault killed.
func (m *Manager) Rebase(newNet *nfv.Network) *RepairReport {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.net = newNet
	// Advance the version and drop the scaffold cache: in-flight
	// optimistic solves still hold snapshots of the old incarnation and
	// must fail their commit checks, and overlays built against the old
	// network are dead weight (the incarnation-keyed cache would never
	// serve them again anyway).
	newNet.BumpDeployEpoch()
	m.scaffolds.Purge()
	// Warm the metric before repairing: every session repair below
	// prices against it, and a faults.State-materialized network may
	// satisfy this from its per-topology cache instead of a fresh APSP.
	newNet.Metric()
	rep := &RepairReport{Checked: len(m.sessions)}

	// Purge references to instances that died with the fault: they are
	// gone from the new network, so there is nothing to undeploy.
	var purged [][2]int
	for key := range m.refs {
		if !m.net.IsDeployed(key[0], key[1]) {
			delete(m.refs, key)
			purged = append(purged, key)
			rep.PurgedInstances++
		}
	}
	// Log the substrate swap before the repair records that depend on
	// it: replay purges exactly these references, then trims usage
	// lists the same way the live path below does.
	m.appendRebaseLocked(purged)
	ids := make([]SessionID, 0, len(m.sessions))
	for id, sess := range m.sessions {
		ids = append(ids, id)
		kept := make([][2]int, 0, len(sess.uses))
		for _, key := range sess.uses {
			if _, ok := m.refs[key]; ok {
				kept = append(kept, key)
			}
		}
		sess.uses = kept
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	for _, id := range ids {
		sr := m.repairSession(m.sessions[id])
		if sr.Outcome == RepairIntact {
			continue
		}
		// Durable record of the outcome: the session's post-repair
		// embedding, usage list and degraded/lost marks, so replay lands
		// on the repaired state without re-running the ladder.
		m.appendRepairLocked(m.sessions[id], sr.Outcome)
		rep.Affected++
		switch sr.Outcome {
		case RepairPatched:
			rep.Patched++
		case RepairReembedded:
			rep.Reembeds++
		case RepairDegraded:
			rep.Degraded++
		}
		rep.CostDelta += sr.CostAfter - sr.CostBefore
		rep.Sessions = append(rep.Sessions, sr)
		if m.met != nil {
			m.met.repairAttempts.Inc()
			if sr.Outcome == RepairDegraded {
				m.met.repairFailures.Inc()
			}
			m.met.repairCostDelta.Observe(sr.CostAfter - sr.CostBefore)
		}
	}
	if m.met != nil {
		m.observe()
	}
	return rep
}

// repairSession inspects one session against m.net and repairs it if a
// fault severed any of its walks. Callers hold m.mu.
func (m *Manager) repairSession(sess *Session) SessionRepair {
	sr := SessionRepair{ID: sess.ID, Outcome: RepairIntact}
	emb := sess.Result.Embedding
	if emb == nil || len(emb.Task.Destinations) == 0 {
		return sr // fully degraded earlier; nothing left to check
	}
	var severed, intact []int // indices into emb.Task.Destinations
	for di := range emb.Task.Destinations {
		if conformance.WalkBroken(m.net, emb, di) {
			severed = append(severed, di)
		} else {
			intact = append(intact, di)
		}
	}
	if len(severed) == 0 {
		return sr
	}
	for _, di := range severed {
		sr.Severed = append(sr.Severed, emb.Task.Destinations[di])
	}
	costBefore := sess.Result.FinalCost
	sr.CostBefore = costBefore

	// Split severed destinations into recoverable and lost: a
	// destination with no route from the source cannot be served at
	// any price.
	met := m.net.Metric()
	src := emb.Task.Source
	var recoverable, lost []int // indices
	for _, di := range severed {
		if met.Dist[src][emb.Task.Destinations[di]] == graph.Inf {
			lost = append(lost, di)
		} else {
			recoverable = append(recoverable, di)
		}
	}

	// Nothing to re-embed: every severed destination is physically
	// unreachable. Keep the intact walks and drop the lost ones —
	// re-solving could not serve them at any price.
	if len(recoverable) == 0 {
		m.degrade(sess, emb, intact, severed, &sr)
		return sr
	}
	// First rung: patch — re-embed only the severed destinations,
	// keeping intact walks and every surviving instance (reused at
	// zero setup cost by the solver).
	if done := m.tryPatch(sess, emb, intact, recoverable, lost, &sr); done {
		return sr
	}
	// Second rung: full re-embed of every still-reachable destination.
	reachable := make([]int, 0, len(intact)+len(recoverable))
	reachable = append(reachable, intact...)
	reachable = append(reachable, recoverable...)
	sort.Ints(reachable)
	if done := m.tryReembed(sess, emb, reachable, lost, &sr); done {
		return sr
	}
	// Last rung: degrade — keep only the intact walks.
	m.degrade(sess, emb, intact, severed, &sr)
	return sr
}

// repairSolve runs one repair-ladder solve, recording a trace tagged
// with the rung ("patch", "reembed") and the repaired session when the
// manager is tracing. Repairs run outside any HTTP request, so the
// trace carries no request ID. Callers hold m.mu.
func (m *Manager) repairSolve(rung string, id SessionID, task nfv.Task) (*core.Result, error) {
	opts := m.opts
	if m.trace == nil {
		return core.Solve(m.net, task, opts)
	}
	rec := &obs.SpanRecorder{}
	opts.Observer = obs.Tee(opts.Observer, rec)
	start := time.Now()
	res, err := core.Solve(m.net, task, opts)
	t := obs.Trace{
		Op:          "repair",
		Rung:        rung,
		Session:     int(id),
		Parallelism: opts.Parallelism,
		Start:       start,
		DurationNs:  time.Since(start).Nanoseconds(),
		Warm:        rec.Breakdown().Warm,
		Spans:       rec.Spans(),
	}
	if res != nil {
		t.EarlyStop = res.EarlyStop
	}
	if err != nil {
		t.Err = err.Error()
	}
	m.trace.Add(t)
	return res, err
}

// tryPatch attempts the incremental repair: solve a sub-task covering
// only the recoverable destinations, merge its walks with the intact
// ones, and install whatever new instances it needs. Returns true if
// the session was repaired (sr filled in).
func (m *Manager) tryPatch(sess *Session, emb *nfv.Embedding, intact, recoverable, lost []int, sr *SessionRepair) bool {
	sub := nfv.Task{
		Source:       emb.Task.Source,
		Destinations: destNodes(emb, recoverable),
		Chain:        append(nfv.SFC(nil), emb.Task.Chain...),
	}
	res, err := m.repairSolve("patch", sess.ID, sub)
	if err != nil {
		sr.Err = fmt.Sprintf("patch: %v", err)
		return false
	}
	patchWalk := make(map[int]nfv.Walk, len(recoverable))
	for i, d := range sub.Destinations {
		patchWalk[d] = res.Embedding.Walks[i]
	}
	merged := mergeEmbedding(emb, func(di int) (nfv.Walk, bool) {
		if w, ok := patchWalk[emb.Task.Destinations[di]]; ok {
			return w, true
		}
		return emb.Walks[di], containsInt(intact, di)
	})
	merged.NewInstances = m.keptInstances(merged, emb.NewInstances, res.Embedding.NewInstances)
	if !m.commitRepair(sess, merged, res.Embedding.NewInstances, sr) {
		return false
	}
	sr.Outcome = RepairPatched
	sr.Lost = destNodes(emb, lost)
	sr.ReusedInstances = m.countReused(merged, res.Embedding.NewInstances)
	m.finishRepair(sess, merged, lost, sr.CostAfter)
	return true
}

// tryReembed re-solves the whole session (reachable destinations only)
// against the degraded network. Returns true on success.
func (m *Manager) tryReembed(sess *Session, emb *nfv.Embedding, reachable, lost []int, sr *SessionRepair) bool {
	full := nfv.Task{
		Source:       emb.Task.Source,
		Destinations: destNodes(emb, reachable),
		Chain:        append(nfv.SFC(nil), emb.Task.Chain...),
	}
	res, err := m.repairSolve("reembed", sess.ID, full)
	if err != nil {
		if sr.Err != "" {
			sr.Err += "; "
		}
		sr.Err += fmt.Sprintf("reembed: %v", err)
		return false
	}
	merged := res.Embedding.Clone()
	merged.NewInstances = m.keptInstances(merged, nil, res.Embedding.NewInstances)
	if !m.commitRepair(sess, merged, res.Embedding.NewInstances, sr) {
		return false
	}
	sr.Outcome = RepairReembedded
	sr.Lost = destNodes(emb, lost)
	sr.ReusedInstances = m.countReused(merged, res.Embedding.NewInstances)
	m.finishRepair(sess, merged, lost, sr.CostAfter)
	return true
}

// degrade keeps only the intact walks: the session serves what it
// still can and records everything else as lost.
func (m *Manager) degrade(sess *Session, emb *nfv.Embedding, intact, severed []int, sr *SessionRepair) {
	kept := mergeEmbedding(emb, func(di int) (nfv.Walk, bool) {
		return emb.Walks[di], containsInt(intact, di)
	})
	kept.NewInstances = m.keptInstances(kept, emb.NewInstances, nil)
	sr.Outcome = RepairDegraded
	sr.Lost = destNodes(emb, severed)
	sr.CostAfter = m.net.Cost(kept).Total
	sr.NewInstances = 0
	m.finishRepair(sess, kept, severed, sr.CostAfter)
	sess.Degraded = true
}

// commitRepair prices and validates the candidate embedding, then
// installs its fresh instances. The candidate is priced *before*
// installation so new instances carry their setup cost while surviving
// ones stay free. On any failure the installs are rolled back and the
// caller falls through to the next repair rung.
func (m *Manager) commitRepair(sess *Session, merged *nfv.Embedding, fresh []nfv.Instance, sr *SessionRepair) bool {
	cost := m.net.Cost(merged).Total
	if err := conformance.CheckLive(m.net, merged); err != nil {
		sr.Err = fmt.Sprintf("validate: %v", err)
		return false
	}
	for i, inst := range fresh {
		if err := m.net.Deploy(inst.VNF, inst.Node); err != nil {
			for _, undo := range fresh[:i] {
				_ = m.net.Undeploy(undo.VNF, undo.Node)
			}
			sr.Err = fmt.Sprintf("install: %v", err)
			return false
		}
	}
	sr.CostAfter = cost
	sr.NewInstances = len(fresh)
	return true
}

// finishRepair swaps the session onto its new embedding, accumulates
// lost destinations, and re-diffs the reference counts. cost is the
// repaired embedding's price as computed before installation (fresh
// setup included, survivors free), which becomes the cost of record.
func (m *Manager) finishRepair(sess *Session, merged *nfv.Embedding, lostIdx []int, cost float64) {
	sess.Lost = append(sess.Lost, destNodes(sess.Result.Embedding, lostIdx)...)
	sort.Ints(sess.Lost)
	if len(lostIdx) > 0 {
		sess.Degraded = true
	}
	sess.Result.Embedding = merged
	sess.Result.FinalCost = cost
	m.reref(sess, merged)
}

// reref re-derives the session's dynamic-instance references from its
// current walks: newly traversed instances gain a reference, dropped
// ones lose theirs and are undeployed once orphaned. Callers hold m.mu.
func (m *Manager) reref(sess *Session, emb *nfv.Embedding) {
	oldSet := getKeySet()
	defer putKeySet(oldSet)
	for _, key := range sess.uses {
		oldSet.add(key)
	}
	newSet := getKeySet()
	defer putKeySet(newSet)
	k := emb.Task.K()
	for di := range emb.Task.Destinations {
		for lvl := 1; lvl <= k; lvl++ {
			key := [2]int{emb.Task.Chain[lvl-1], emb.ServingNode(di, lvl)}
			if newSet.has(key) {
				continue
			}
			// Only dynamic instances are reference-counted: ones already in
			// refs, or fresh installs this repair just deployed (in refs
			// under no session yet, i.e. absent — those are exactly the
			// embedding's NewInstances).
			if _, dyn := m.refs[key]; dyn || isNewInstance(emb, key) {
				newSet.add(key)
			}
		}
	}
	// sess.uses keeps the slice, so it must be owned, not pooled.
	keys := append([][2]int(nil), newSet.keys...)
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, key := range keys {
		if !oldSet.has(key) {
			m.refs[key]++
		}
	}
	for _, key := range sess.uses {
		if newSet.has(key) {
			continue
		}
		if _, ok := m.refs[key]; !ok {
			continue // died in the fault; already purged
		}
		m.refs[key]--
		if m.refs[key] <= 0 {
			delete(m.refs, key)
			_ = m.net.Undeploy(key[0], key[1])
		}
	}
	sess.uses = keys
}

// keptInstances filters the session's instance list down to instances
// its walks actually traverse: survivors from before the fault (still
// deployed) plus the repair's fresh installs.
func (m *Manager) keptInstances(emb *nfv.Embedding, old, fresh []nfv.Instance) []nfv.Instance {
	trav := traversedKeys(emb)
	var out []nfv.Instance
	seen := make(map[[2]int]bool)
	for _, inst := range old {
		key := [2]int{inst.VNF, inst.Node}
		if trav[key] && m.net.IsDeployed(inst.VNF, inst.Node) && !seen[key] {
			seen[key] = true
			out = append(out, inst)
		}
	}
	for _, inst := range fresh {
		key := [2]int{inst.VNF, inst.Node}
		if !seen[key] {
			seen[key] = true
			out = append(out, inst)
		}
	}
	return out
}

// countReused counts distinct serving instances of the embedding that
// the repair did not install — pre-existing survivors it leans on.
func (m *Manager) countReused(emb *nfv.Embedding, fresh []nfv.Instance) int {
	freshSet := make(map[[2]int]bool, len(fresh))
	for _, inst := range fresh {
		freshSet[[2]int{inst.VNF, inst.Node}] = true
	}
	n := 0
	for key := range traversedKeys(emb) {
		if !freshSet[key] {
			n++
		}
	}
	return n
}

// traversedKeys returns the distinct (vnf, node) serving pairs of the
// embedding's walks.
func traversedKeys(emb *nfv.Embedding) map[[2]int]bool {
	keys := make(map[[2]int]bool)
	k := emb.Task.K()
	for di := range emb.Task.Destinations {
		for lvl := 1; lvl <= k; lvl++ {
			keys[[2]int{emb.Task.Chain[lvl-1], emb.ServingNode(di, lvl)}] = true
		}
	}
	return keys
}

func isNewInstance(emb *nfv.Embedding, key [2]int) bool {
	for _, inst := range emb.NewInstances {
		if inst.VNF == key[0] && inst.Node == key[1] {
			return true
		}
	}
	return false
}

// mergeEmbedding rebuilds an embedding keeping the original destination
// order: pick returns the walk for index di and whether to keep it.
func mergeEmbedding(emb *nfv.Embedding, pick func(di int) (nfv.Walk, bool)) *nfv.Embedding {
	out := &nfv.Embedding{Task: nfv.Task{
		Source: emb.Task.Source,
		Chain:  append(nfv.SFC(nil), emb.Task.Chain...),
	}}
	for di, d := range emb.Task.Destinations {
		w, keep := pick(di)
		if !keep {
			continue
		}
		out.Task.Destinations = append(out.Task.Destinations, d)
		out.Walks = append(out.Walks, cloneWalk(w))
	}
	return out
}

func cloneWalk(w nfv.Walk) nfv.Walk {
	c := make(nfv.Walk, len(w))
	for i, s := range w {
		c[i] = nfv.Segment{Level: s.Level, Path: append([]int(nil), s.Path...)}
	}
	return c
}

func destNodes(emb *nfv.Embedding, idx []int) []int {
	out := make([]int, 0, len(idx))
	for _, di := range idx {
		out = append(out, emb.Task.Destinations[di])
	}
	return out
}

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
