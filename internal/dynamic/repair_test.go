package dynamic

import (
	"math/rand"
	"testing"

	"sftree/internal/core"
	"sftree/internal/faults"
	"sftree/internal/graph"
	"sftree/internal/netgen"
	"sftree/internal/nfv"
	"sftree/internal/obs"
)

// repairNet builds the 5-node repair fixture:
//
//	0 --1-- 1 --1-- 3
//	 \      |
//	  5     1
//	   \    |
//	    `-- 4
//
// Edges: 0-1 (1), 1-3 (1), 1-4 (1), 0-4 (5). The only server is node 1
// (capacity cap), single VNF with unit setup. A session S=0 -> {3,4}
// with chain {0} embeds an instance at 1 and fans out 1-3 and 1-4.
func repairNet(t *testing.T, cap float64) *nfv.Network {
	t.Helper()
	g := graph.New(5)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 3, 1)
	g.MustAddEdge(1, 4, 1)
	g.MustAddEdge(0, 4, 5)
	net := nfv.NewNetwork(g, []nfv.VNF{{ID: 0, Name: "f0", Demand: 1}})
	if err := net.SetServer(1, cap); err != nil {
		t.Fatal(err)
	}
	if err := net.SetSetupCost(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	return net
}

// rebaseAfter applies the events to a fresh fault state over base and
// rebases the manager onto the materialized degraded network.
func rebaseAfter(t *testing.T, m *Manager, base *nfv.Network, events ...faults.Event) *RepairReport {
	t.Helper()
	st := faults.NewState(base)
	for _, ev := range events {
		if err := st.Apply(ev); err != nil {
			t.Fatalf("apply %v: %v", ev, err)
		}
	}
	degraded, err := st.Materialize(m.Network())
	if err != nil {
		t.Fatal(err)
	}
	return m.Rebase(degraded)
}

func TestRepairPatchesSeveredDestinationReusingInstance(t *testing.T) {
	base := repairNet(t, 2)
	m := NewManager(base, core.Options{})
	sess, err := m.Admit(nfv.Task{Source: 0, Destinations: []int{3, 4}, Chain: nfv.SFC{0}})
	if err != nil {
		t.Fatal(err)
	}

	// Cut 1-4: destination 4 is severed but still reachable via 0-4;
	// destination 3 and the instance at node 1 survive.
	rep := rebaseAfter(t, m, base, faults.Event{Kind: faults.LinkDown, U: 1, V: 4})
	if rep.Checked != 1 || rep.Affected != 1 || rep.Patched != 1 {
		t.Fatalf("report %+v, want one patched session", rep)
	}
	sr := rep.Sessions[0]
	if sr.Outcome != RepairPatched {
		t.Fatalf("outcome %q (err %q), want patched", sr.Outcome, sr.Err)
	}
	if sr.ReusedInstances < 1 {
		t.Fatalf("patch reused %d instances, want >=1 (the survivor at node 1)", sr.ReusedInstances)
	}
	if len(sr.Lost) != 0 || sess.Degraded {
		t.Fatalf("nothing should be lost: %+v degraded=%v", sr, sess.Degraded)
	}
	// The repaired embedding must hold up under the core validator.
	if err := m.Network().ValidateDeployed(sess.Result.Embedding); err != nil {
		t.Fatalf("repaired embedding invalid: %v", err)
	}
	// Both destinations are still served.
	if got := sess.Result.Embedding.Task.Destinations; len(got) != 2 {
		t.Fatalf("serving %v, want both destinations", got)
	}
	// Refcounts survived the repair: releasing cleans up fully.
	if err := m.Release(sess.ID); err != nil {
		t.Fatal(err)
	}
	if m.LiveInstances() != 0 {
		t.Fatalf("instances leak after release: %d", m.LiveInstances())
	}
}

func TestRepairDegradesUnreachableDestination(t *testing.T) {
	base := repairNet(t, 2)
	m := NewManager(base, core.Options{})
	sess, err := m.Admit(nfv.Task{Source: 0, Destinations: []int{3, 4}, Chain: nfv.SFC{0}})
	if err != nil {
		t.Fatal(err)
	}

	// Cut both 1-4 and 0-4: destination 4 is unreachable, destination 3
	// keeps its intact walk.
	rep := rebaseAfter(t, m, base,
		faults.Event{Kind: faults.LinkDown, U: 1, V: 4},
		faults.Event{Kind: faults.LinkDown, U: 0, V: 4})
	if rep.Affected != 1 || rep.Degraded != 1 {
		t.Fatalf("report %+v, want one degraded session", rep)
	}
	if !sess.Degraded {
		t.Fatal("session not marked degraded")
	}
	if len(sess.Lost) != 1 || sess.Lost[0] != 4 {
		t.Fatalf("lost %v, want [4]", sess.Lost)
	}
	got := sess.Result.Embedding.Task.Destinations
	if len(got) != 1 || got[0] != 3 {
		t.Fatalf("serving %v, want [3]", got)
	}
	// The partial embedding it still serves must validate.
	if err := m.Network().ValidateDeployed(sess.Result.Embedding); err != nil {
		t.Fatalf("degraded embedding invalid: %v", err)
	}
}

func TestRepairFullyDegradedSessionFreesInstances(t *testing.T) {
	base := repairNet(t, 2)
	m := NewManager(base, core.Options{})
	sess, err := m.Admit(nfv.Task{Source: 0, Destinations: []int{3, 4}, Chain: nfv.SFC{0}})
	if err != nil {
		t.Fatal(err)
	}

	// Crash node 1 — the only server. Every walk and the instance die;
	// no repair is possible.
	rep := rebaseAfter(t, m, base, faults.Event{Kind: faults.NodeDown, Node: 1})
	if rep.Degraded != 1 || rep.PurgedInstances != 1 {
		t.Fatalf("report %+v, want one degraded session and one purged instance", rep)
	}
	if !sess.Degraded || len(sess.Result.Embedding.Task.Destinations) != 0 {
		t.Fatalf("session should serve nothing: degraded=%v serving=%v",
			sess.Degraded, sess.Result.Embedding.Task.Destinations)
	}
	if m.LiveInstances() != 0 {
		t.Fatalf("dead instances still referenced: %d", m.LiveInstances())
	}
	// A fully degraded session can still be released cleanly (the
	// release-after-fault ordering the refcount guard protects).
	if err := m.Release(sess.ID); err != nil {
		t.Fatalf("release after fault: %v", err)
	}
	if m.Active() != 0 {
		t.Fatalf("active=%d after release", m.Active())
	}
}

func TestRepairSurvivorsUnaffected(t *testing.T) {
	base := repairNet(t, 2)
	m := NewManager(base, core.Options{})
	// Session A serves only 3, session B serves only 4: the 1-4 cut
	// touches B alone.
	a, err := m.Admit(nfv.Task{Source: 0, Destinations: []int{3}, Chain: nfv.SFC{0}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Admit(nfv.Task{Source: 0, Destinations: []int{4}, Chain: nfv.SFC{0}})
	if err != nil {
		t.Fatal(err)
	}
	rep := rebaseAfter(t, m, base, faults.Event{Kind: faults.LinkDown, U: 1, V: 4})
	if rep.Checked != 2 || rep.Affected != 1 {
		t.Fatalf("report %+v, want 2 checked / 1 affected", rep)
	}
	if rep.Sessions[0].ID != b.ID {
		t.Fatalf("repaired session %d, want %d", rep.Sessions[0].ID, b.ID)
	}
	for _, sess := range []*Session{a, b} {
		if err := m.Network().ValidateDeployed(sess.Result.Embedding); err != nil {
			t.Fatalf("session %d invalid after rebase: %v", sess.ID, err)
		}
	}
	// The shared instance at node 1 is still referenced by both: the
	// first release keeps it, the second tears it down.
	if err := m.Release(a.ID); err != nil {
		t.Fatal(err)
	}
	if m.LiveInstances() != 1 {
		t.Fatalf("shared instance dropped early: %d live", m.LiveInstances())
	}
	if err := m.Release(b.ID); err != nil {
		t.Fatal(err)
	}
	if m.LiveInstances() != 0 {
		t.Fatalf("instances leak: %d", m.LiveInstances())
	}
}

func TestRepairInstanceKillRedeploys(t *testing.T) {
	base := repairNet(t, 2)
	m := NewManager(base, core.Options{})
	sess, err := m.Admit(nfv.Task{Source: 0, Destinations: []int{3, 4}, Chain: nfv.SFC{0}})
	if err != nil {
		t.Fatal(err)
	}
	// Kill the instance at node 1 without touching topology: the
	// repair must re-install there (the only server) and re-validate.
	rep := rebaseAfter(t, m, base, faults.Event{Kind: faults.InstanceDown, VNF: 0, Node: 1})
	if rep.Affected != 1 || rep.PurgedInstances != 1 {
		t.Fatalf("report %+v", rep)
	}
	sr := rep.Sessions[0]
	if sr.Outcome == RepairDegraded {
		t.Fatalf("repair failed: %+v", sr)
	}
	if sr.NewInstances != 1 {
		t.Fatalf("new instances %d, want 1 (re-install at node 1)", sr.NewInstances)
	}
	if !m.Network().IsDeployed(0, 1) {
		t.Fatal("instance not re-installed")
	}
	if err := m.Network().ValidateDeployed(sess.Result.Embedding); err != nil {
		t.Fatalf("repaired embedding invalid: %v", err)
	}
	if err := m.Release(sess.ID); err != nil {
		t.Fatal(err)
	}
	if m.LiveInstances() != 0 || m.Network().IsDeployed(0, 1) {
		t.Fatal("re-installed instance leaked after release")
	}
}

func TestRepairCostDeltaAndMetrics(t *testing.T) {
	base := repairNet(t, 2)
	reg := obs.NewRegistry()
	m := NewManager(base, core.Options{}).Instrument(reg)
	if _, err := m.Admit(nfv.Task{Source: 0, Destinations: []int{3, 4}, Chain: nfv.SFC{0}}); err != nil {
		t.Fatal(err)
	}
	rep := rebaseAfter(t, m, base, faults.Event{Kind: faults.LinkDown, U: 1, V: 4})
	// Rerouting 4 over the cost-5 edge is pricier than the lost unit
	// edge: the delta must be positive and mirrored in the histogram.
	if rep.CostDelta <= 0 {
		t.Fatalf("cost delta %v, want > 0 (detour via 0-4 costs more)", rep.CostDelta)
	}
	if got := reg.Counter("repair_attempts").Value(); got != 1 {
		t.Fatalf("repair_attempts = %d", got)
	}
	if got := reg.Counter("repair_failures").Value(); got != 0 {
		t.Fatalf("repair_failures = %d", got)
	}
	if got := reg.Histogram("repair_cost_delta", nil).Count(); got != 1 {
		t.Fatalf("repair_cost_delta count = %d", got)
	}
	if got := reg.Gauge("sessions_degraded").Value(); got != 0 {
		t.Fatalf("sessions_degraded = %d", got)
	}
}

func TestRepairManySessionsOnGeneratedNetwork(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	base, err := netgen.Generate(netgen.PaperConfig(40, 2), rng)
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager(base, core.Options{})
	admitted := 0
	for i := 0; admitted < 12 && i < 60; i++ {
		task, err := netgen.GenerateTask(base, rng, 3, 3)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Admit(task); err == nil {
			admitted++
		}
	}
	if admitted < 12 {
		t.Fatalf("only %d sessions admitted", admitted)
	}
	sched, err := faults.Generate(base, faults.DefaultGenConfig(10), rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	r := faults.NewReplayer(base, sched)
	for !r.Done() {
		_, degraded, err := r.Step(m.Network())
		if err != nil {
			t.Fatal(err)
		}
		m.Rebase(degraded)
		// Invariant after every event: all non-degraded sessions
		// validate on the current network.
		for _, sess := range m.Sessions() {
			if sess.Degraded {
				continue
			}
			if err := m.Network().ValidateDeployed(sess.Result.Embedding); err != nil {
				t.Fatalf("session %d invalid after rebase: %v", sess.ID, err)
			}
		}
	}
	// Teardown must stay clean after arbitrary fault churn.
	for _, sess := range m.Sessions() {
		if err := m.Release(sess.ID); err != nil {
			t.Fatalf("release %d: %v", sess.ID, err)
		}
	}
	if m.Active() != 0 || m.LiveInstances() != 0 {
		t.Fatalf("post-teardown active=%d instances=%d", m.Active(), m.LiveInstances())
	}
}
