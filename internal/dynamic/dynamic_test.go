package dynamic

import (
	"errors"
	"math/rand"
	"testing"

	"sftree/internal/core"
	"sftree/internal/graph"
	"sftree/internal/netgen"
	"sftree/internal/nfv"
	"sftree/internal/trace"
)

// lineNet builds S=0 -1- A=1 -1- B=2 -1- d=3 with one server of
// capacity `capacity` at A and B, unit setup costs.
func lineNet(t *testing.T, capacity float64) *nfv.Network {
	t.Helper()
	g := graph.New(4)
	for v := 1; v < 4; v++ {
		g.MustAddEdge(v-1, v, 1)
	}
	catalog := []nfv.VNF{
		{ID: 0, Name: "f0", Demand: 1},
		{ID: 1, Name: "f1", Demand: 1},
	}
	net := nfv.NewNetwork(g, catalog)
	for _, v := range []int{1, 2} {
		if err := net.SetServer(v, capacity); err != nil {
			t.Fatal(err)
		}
		for f := 0; f < 2; f++ {
			if err := net.SetSetupCost(f, v, 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	return net
}

func TestAdmitInstallsAndReleaseRemoves(t *testing.T) {
	net := lineNet(t, 2)
	m := NewManager(net, core.Options{})
	task := nfv.Task{Source: 0, Destinations: []int{3}, Chain: nfv.SFC{0}}
	sess, err := m.Admit(task)
	if err != nil {
		t.Fatal(err)
	}
	if m.Active() != 1 || m.LiveInstances() != 1 {
		t.Fatalf("active=%d instances=%d", m.Active(), m.LiveInstances())
	}
	inst := sess.Result.Embedding.NewInstances[0]
	if !net.IsDeployed(inst.VNF, inst.Node) {
		t.Fatal("instance not installed on network")
	}
	if err := m.Release(sess.ID); err != nil {
		t.Fatal(err)
	}
	if net.IsDeployed(inst.VNF, inst.Node) {
		t.Fatal("instance still deployed after release")
	}
	if m.Active() != 0 || m.LiveInstances() != 0 {
		t.Fatalf("post-release active=%d instances=%d", m.Active(), m.LiveInstances())
	}
}

func TestSecondSessionReusesInstanceForFree(t *testing.T) {
	net := lineNet(t, 2)
	m := NewManager(net, core.Options{})
	task := nfv.Task{Source: 0, Destinations: []int{3}, Chain: nfv.SFC{0}}
	s1, err := m.Admit(task)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := m.Admit(task)
	if err != nil {
		t.Fatal(err)
	}
	if len(s2.Result.Embedding.NewInstances) != 0 {
		t.Fatalf("second session deployed %v instead of reusing", s2.Result.Embedding.NewInstances)
	}
	if s2.Result.FinalCost >= s1.Result.FinalCost {
		t.Errorf("reuse not cheaper: %v vs %v", s2.Result.FinalCost, s1.Result.FinalCost)
	}
	// Releasing the owner must keep the instance alive for s2...
	if err := m.Release(s1.ID); err != nil {
		t.Fatal(err)
	}
	if m.LiveInstances() != 1 {
		t.Fatalf("shared instance dropped while still referenced")
	}
	// ...and releasing the last subscriber removes it.
	if err := m.Release(s2.ID); err != nil {
		t.Fatal(err)
	}
	if m.LiveInstances() != 0 {
		t.Fatal("instance leaked after last release")
	}
}

func TestCapacityPressureRejectsThenRecovers(t *testing.T) {
	net := lineNet(t, 1) // each server fits a single instance
	m := NewManager(net, core.Options{})
	// Two-function chains fill both servers.
	full := nfv.Task{Source: 0, Destinations: []int{3}, Chain: nfv.SFC{0, 1}}
	s1, err := m.Admit(full)
	if err != nil {
		t.Fatal(err)
	}
	// A session needing different placements of the same functions can
	// still reuse; but invert the chain order to force new placements:
	// chain (f1 -> f0) cannot reuse (f0 then f1) order-compatible
	// instances at the same nodes... order matters only via routing, so
	// reuse may still succeed. Use capacity-only check: a third distinct
	// function does not exist, so admit the same chain — reuse works.
	if _, err := m.Admit(full); err != nil {
		t.Fatalf("reuse admit failed: %v", err)
	}
	// Release everything; the network must be clean again.
	if err := m.Release(s1.ID); err != nil {
		t.Fatal(err)
	}
	stats := m.Stats()
	if stats.Admitted != 2 || stats.Rejected != 0 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestRejectionOnImpossibleTask(t *testing.T) {
	net := lineNet(t, 0) // zero capacity anywhere
	m := NewManager(net, core.Options{})
	task := nfv.Task{Source: 0, Destinations: []int{3}, Chain: nfv.SFC{0}}
	if _, err := m.Admit(task); !errors.Is(err, ErrRejected) {
		t.Fatalf("got %v, want ErrRejected", err)
	}
	if m.Stats().Rejected != 1 {
		t.Fatalf("stats = %+v", m.Stats())
	}
}

func TestReleaseUnknownSession(t *testing.T) {
	m := NewManager(lineNet(t, 1), core.Options{})
	if err := m.Release(99); !errors.Is(err, ErrUnknownSession) {
		t.Fatalf("got %v, want ErrUnknownSession", err)
	}
}

func TestManagerNetworkAccessor(t *testing.T) {
	net := lineNet(t, 1)
	m := NewManager(net, core.Options{})
	if m.Network() != net {
		t.Fatal("Network() does not expose the managed network")
	}
}

func TestRunTraceEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	net, err := netgen.Generate(netgen.PaperConfig(40, 2), rng)
	if err != nil {
		t.Fatal(err)
	}
	cfg := trace.DefaultConfig()
	cfg.Sessions = 40
	events, err := trace.Generate(net, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager(net, core.Options{})
	stats, err := RunTrace(m, events)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Admitted+stats.Rejected != 40 {
		t.Fatalf("admitted %d + rejected %d != 40", stats.Admitted, stats.Rejected)
	}
	if stats.Admitted == 0 {
		t.Fatal("nothing admitted on a 40-node paper-config network")
	}
	// Every departure processed: no sessions may remain live.
	if m.Active() != 0 {
		t.Fatalf("%d sessions leaked", m.Active())
	}
	if m.LiveInstances() != 0 {
		t.Fatalf("%d instances leaked", m.LiveInstances())
	}
	if stats.PeakActive < 1 || stats.CostPerSession.N() != stats.Admitted {
		t.Fatalf("stats inconsistent: %+v", stats)
	}
}

func TestTraceLeavesBaseDeploymentsIntact(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	net, err := netgen.Generate(netgen.PaperConfig(30, 2), rng)
	if err != nil {
		t.Fatal(err)
	}
	// Snapshot the pre-deployed set.
	type inst struct{ f, v int }
	base := map[inst]bool{}
	for f := 0; f < net.CatalogSize(); f++ {
		for v := 0; v < net.NumNodes(); v++ {
			if net.IsDeployed(f, v) {
				base[inst{f, v}] = true
			}
		}
	}
	cfg := trace.DefaultConfig()
	cfg.Sessions = 25
	events, err := trace.Generate(net, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunTrace(NewManager(net, core.Options{}), events); err != nil {
		t.Fatal(err)
	}
	for f := 0; f < net.CatalogSize(); f++ {
		for v := 0; v < net.NumNodes(); v++ {
			if net.IsDeployed(f, v) != base[inst{f, v}] {
				t.Fatalf("deployment state diverged at vnf %d node %d", f, v)
			}
		}
	}
}
