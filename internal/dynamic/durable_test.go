package dynamic

import (
	"context"
	"encoding/json"
	"testing"

	"sftree/internal/core"
	"sftree/internal/faults"
	"sftree/internal/nfv"
	"sftree/internal/wal"
)

// openWAL opens a log in a fresh temp dir with fsync-per-append (the
// crash-safe policy the durability tests rely on).
func openWAL(t *testing.T, dir string) (*wal.Log, *wal.Recovery) {
	t.Helper()
	l, rec, err := wal.Open(dir, wal.Config{Policy: wal.SyncAlways})
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	return l, rec
}

// mustRestore reopens dir and restores a manager onto net, failing the
// test on a replay error or any conformance cross-check finding.
func mustRestore(t *testing.T, dir string, net *nfv.Network) (*Manager, *RecoverReport) {
	t.Helper()
	l, rec := openWAL(t, dir)
	m, rep, err := Restore(net, l, rec, core.Options{})
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if len(rep.Errors) != 0 {
		t.Fatalf("restore cross-check errors: %v", rep.Errors)
	}
	if err := m.VerifyRefs(); err != nil {
		t.Fatalf("restored refcounts: %v", err)
	}
	return m, rep
}

// stateFingerprint captures everything two managers must agree on:
// per-session embedding bytes, cost, degradation marks and usage
// lists, plus the refcount ledger and admission accounting.
func stateFingerprint(t *testing.T, m *Manager) string {
	t.Helper()
	type sessState struct {
		ID       SessionID
		Emb      json.RawMessage
		Cost     float64
		Degraded bool
		Lost     []int
		Uses     [][2]int
	}
	var doc struct {
		Sessions     []sessState
		Refs         map[string]int
		Admitted     int
		AdmittedCost float64
	}
	for _, sess := range m.Sessions() {
		blob, err := json.Marshal(sess.Result.Embedding)
		if err != nil {
			t.Fatal(err)
		}
		doc.Sessions = append(doc.Sessions, sessState{
			ID: sess.ID, Emb: blob, Cost: sess.Result.FinalCost,
			Degraded: sess.Degraded, Lost: sess.Lost, Uses: sess.uses,
		})
	}
	doc.Refs = map[string]int{}
	for k, v := range m.Refs() {
		doc.Refs[string(rune(k[0]))+"/"+string(rune(k[1]))] = v
	}
	st := m.Stats()
	doc.Admitted, doc.AdmittedCost = st.Admitted, st.AdmittedCost
	blob, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	return string(blob)
}

func TestRestoreRoundTripFromRecordsOnly(t *testing.T) {
	dir := t.TempDir()
	l, _ := openWAL(t, dir)
	m := NewManager(lineNet(t, 2), core.Options{}).AttachWAL(l)
	task := nfv.Task{Source: 0, Destinations: []int{3}, Chain: nfv.SFC{0}}
	s1, err := m.Admit(task)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Admit(task); err != nil {
		t.Fatal(err)
	}
	if err := m.Release(s1.ID); err != nil {
		t.Fatal(err)
	}
	want := stateFingerprint(t, m)
	l.Crash() // SIGKILL: no graceful close, no snapshot

	m2, rep := mustRestore(t, dir, lineNet(t, 2))
	if rep.SessionsRecovered != 1 || rep.ReplayedRecords != 3 {
		t.Fatalf("report: %+v", rep)
	}
	if got := stateFingerprint(t, m2); got != want {
		t.Fatalf("restored state diverged:\n got %s\nwant %s", got, want)
	}
	// The restored network carries the surviving instance.
	if m2.LiveInstances() != 1 || rep.RefsDeployed != 1 {
		t.Fatalf("instances=%d deployed=%d", m2.LiveInstances(), rep.RefsDeployed)
	}
}

func TestRestoreFromSnapshotPlusTail(t *testing.T) {
	dir := t.TempDir()
	l, _ := openWAL(t, dir)
	m := NewManager(lineNet(t, 4), core.Options{}).AttachWAL(l)
	task := nfv.Task{Source: 0, Destinations: []int{3}, Chain: nfv.SFC{0}}
	for i := 0; i < 3; i++ {
		if _, err := m.Admit(task); err != nil {
			t.Fatal(err)
		}
	}
	seq, err := m.Checkpoint()
	if err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if seq != 3 {
		t.Fatalf("checkpoint folded seq %d, want 3", seq)
	}
	// Post-snapshot tail: one more admit, one release.
	s4, err := m.Admit(task)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Release(s4.ID); err != nil {
		t.Fatal(err)
	}
	want := stateFingerprint(t, m)
	st := m.Stats()
	if st.Snapshots != 1 || st.WALRecords != 5 || st.LastSnapshotSeq != 3 {
		t.Fatalf("durability stats: %+v", st)
	}
	l.Crash()

	m2, rep := mustRestore(t, dir, lineNet(t, 4))
	if rep.SnapshotSeq != 3 || rep.ReplayedRecords != 2 {
		t.Fatalf("report: %+v", rep)
	}
	if got := stateFingerprint(t, m2); got != want {
		t.Fatalf("restored state diverged:\n got %s\nwant %s", got, want)
	}
	// Accounting history survives compaction.
	if st2 := m2.Stats(); st2.Admitted != 4 || st2.AdmittedCost != st.AdmittedCost {
		t.Fatalf("restored stats: %+v want admitted=4 cost=%v", st2, st.AdmittedCost)
	}
}

func TestMidCommitCrashKeepsDurableSession(t *testing.T) {
	dir := t.TempDir()
	l, _ := openWAL(t, dir)
	m := NewManager(lineNet(t, 2), core.Options{}).AttachWAL(l)
	task := nfv.Task{Source: 0, Destinations: []int{3}, Chain: nfv.SFC{0}}

	type crashSentinel struct{}
	m.SetCrashHook(func(point string) {
		if point == "admit:post-wal" {
			l.Crash()
			panic(crashSentinel{})
		}
	})
	func() {
		defer func() {
			if r := recover(); r == nil {
				t.Fatal("crash hook never fired")
			} else if _, ok := r.(crashSentinel); !ok {
				panic(r)
			}
		}()
		m.Admit(task)
	}()

	// The record hit the fsynced log before the crash, so the session
	// is committed: restore must surface it even though the in-memory
	// manager never finished the commit.
	m2, rep := mustRestore(t, dir, lineNet(t, 2))
	if m2.Active() != 1 || rep.SessionsRecovered != 1 {
		t.Fatalf("durable session lost: active=%d report=%+v", m2.Active(), rep)
	}
	if st := m2.Stats(); st.Admitted != 1 {
		t.Fatalf("restored accounting: %+v", st)
	}
}

func TestPreWALCrashCommitsNothing(t *testing.T) {
	dir := t.TempDir()
	l, _ := openWAL(t, dir)
	m := NewManager(lineNet(t, 2), core.Options{}).AttachWAL(l)
	task := nfv.Task{Source: 0, Destinations: []int{3}, Chain: nfv.SFC{0}}
	// Crash the log before the admission: the WAL append fails, so the
	// commit must reject and leave no trace on either side.
	l.Crash()
	if _, err := m.Admit(task); err == nil {
		t.Fatal("admission succeeded without durability")
	}
	if m.Active() != 0 || m.LiveInstances() != 0 {
		t.Fatalf("rejected admission leaked state: active=%d instances=%d", m.Active(), m.LiveInstances())
	}
	m2, rep := mustRestore(t, dir, lineNet(t, 2))
	if m2.Active() != 0 || rep.SessionsRecovered != 0 {
		t.Fatalf("phantom session after pre-WAL crash: %+v", rep)
	}
}

func TestRestoreReplaysRepairHistory(t *testing.T) {
	dir := t.TempDir()
	l, _ := openWAL(t, dir)
	base := repairNet(t, 2)
	m := NewManager(base, core.Options{}).AttachWAL(l)
	task := nfv.Task{Source: 0, Destinations: []int{3, 4}, Chain: nfv.SFC{0}}
	if _, err := m.Admit(task); err != nil {
		t.Fatal(err)
	}
	// Cut 1-4: destination 4 reroutes over the expensive 0-4 edge via a
	// patch repair, logged as rebase + repair records.
	rep := rebaseAfter(t, m, base, faults.Event{Kind: faults.LinkDown, U: 1, V: 4})
	if rep.Affected != 1 {
		t.Fatalf("repair fixture: %+v", rep)
	}
	want := stateFingerprint(t, m)
	l.Crash()

	// Restore onto the same degraded topology, rebuilt fresh.
	st := faults.NewState(repairNet(t, 2))
	if err := st.Apply(faults.Event{Kind: faults.LinkDown, U: 1, V: 4}); err != nil {
		t.Fatal(err)
	}
	degraded, err := st.Materialize(repairNet(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	m2, rrep := mustRestore(t, dir, degraded)
	if got := stateFingerprint(t, m2); got != want {
		t.Fatalf("repaired state diverged:\n got %s\nwant %s", got, want)
	}
	// The restore's own repair pass found nothing left to fix.
	if rrep.SessionsPatched != 0 || rrep.SessionsReembeded != 0 || rrep.SessionsDegraded != 0 {
		t.Fatalf("restore re-repaired a clean state: %+v", rrep)
	}
}

func TestRestoreOntoShrunkenTopologyDegrades(t *testing.T) {
	dir := t.TempDir()
	l, _ := openWAL(t, dir)
	base := repairNet(t, 2)
	m := NewManager(base, core.Options{}).AttachWAL(l)
	task := nfv.Task{Source: 0, Destinations: []int{3, 4}, Chain: nfv.SFC{0}}
	if _, err := m.Admit(task); err != nil {
		t.Fatal(err)
	}
	l.Crash()

	// Node 1 — the only server, hosting the session's instance — is
	// gone in the restored topology. Restore must not fail: the
	// reference is unplaceable and the session degrades through the
	// ordinary ladder.
	st := faults.NewState(repairNet(t, 2))
	if err := st.Apply(faults.Event{Kind: faults.NodeDown, Node: 1}); err != nil {
		t.Fatal(err)
	}
	degraded, err := st.Materialize(repairNet(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	l2, rec := openWAL(t, dir)
	m2, rrep, err := Restore(degraded, l2, rec, core.Options{})
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if len(rrep.Errors) != 0 {
		t.Fatalf("cross-check errors on a degraded restore: %v", rrep.Errors)
	}
	if rrep.RefsUnplaceable != 1 || rrep.SessionsDegraded != 1 {
		t.Fatalf("report: %+v", rrep)
	}
	sessions := m2.Sessions()
	if len(sessions) != 1 || !sessions[0].Degraded {
		t.Fatalf("session not degraded: %+v", sessions)
	}
	if err := m2.VerifyRefs(); err != nil {
		t.Fatal(err)
	}
}

func TestDrainWaitsForInflight(t *testing.T) {
	m := NewManager(lineNet(t, 2), core.Options{})
	if err := m.Drain(context.Background()); err != nil {
		t.Fatalf("idle drain: %v", err)
	}
	// A blocked drain honors its deadline.
	m.inflight.Add(1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := m.Drain(ctx); err == nil {
		t.Fatal("drain ignored an expired context with inflight work")
	}
	m.inflight.Done()
	if err := m.Drain(context.Background()); err != nil {
		t.Fatalf("drain after quiesce: %v", err)
	}
}

func TestCheckpointWithoutWAL(t *testing.T) {
	m := NewManager(lineNet(t, 2), core.Options{})
	if _, err := m.Checkpoint(); err != ErrNoWAL {
		t.Fatalf("Checkpoint without WAL: %v", err)
	}
}
