package dynamic

import (
	"context"
	"encoding/json"
	"math"
	"math/rand"
	"testing"
	"time"

	"sftree/internal/core"
	"sftree/internal/netgen"
	"sftree/internal/nfv"
)

// embBytes canonicalizes a session's embedding for bit-level
// comparison.
func embBytes(t *testing.T, sess *Session) string {
	t.Helper()
	blob, err := json.Marshal(sess.Result.Embedding)
	if err != nil {
		t.Fatal(err)
	}
	return string(blob)
}

// TestAdmitBatchMatchesSerialized replays the same task order through
// AdmitBatch on one network and through serialized AdmitCtx calls on
// an identical clone: every per-task decision, session ID, embedding
// byte, cost bit and the final ref ledger must agree. This is the
// in-package half of the queue equivalence battery.
func TestAdmitBatchMatchesSerialized(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	netA, err := netgen.Generate(netgen.PaperConfig(30, 2), rng)
	if err != nil {
		t.Fatal(err)
	}
	netB := netA.Clone()
	tasks := make([]nfv.Task, 24)
	for i := range tasks {
		task, err := netgen.GenerateTask(netA, rng, 2+i%3, 2+i%2)
		if err != nil {
			t.Fatal(err)
		}
		tasks[i] = task
	}

	mA := NewManager(netA, core.Options{})
	mB := NewManager(netB, core.Options{})

	// Batch side: uneven chunk sizes so reuse crosses both mid-batch
	// and batch boundaries.
	var outs []BatchOutcome
	for lo := 0; lo < len(tasks); {
		hi := lo + 1 + lo%5
		if hi > len(tasks) {
			hi = len(tasks)
		}
		bts := make([]BatchTask, 0, hi-lo)
		for _, task := range tasks[lo:hi] {
			bts = append(bts, BatchTask{Task: task})
		}
		outs = append(outs, mA.AdmitBatch(context.Background(), bts)...)
		lo = hi
	}

	for i, task := range tasks {
		sessB, errB := mB.AdmitCtx(context.Background(), task)
		outA := outs[i]
		if (outA.Err == nil) != (errB == nil) {
			t.Fatalf("task %d: batch err %v, serial err %v", i, outA.Err, errB)
		}
		if errB != nil {
			continue
		}
		if outA.Sess.ID != sessB.ID {
			t.Fatalf("task %d: session ID %d vs %d", i, outA.Sess.ID, sessB.ID)
		}
		if a, b := embBytes(t, outA.Sess), embBytes(t, sessB); a != b {
			t.Fatalf("task %d: embeddings diverge:\n%s\n%s", i, a, b)
		}
		if a, b := outA.Sess.Result.FinalCost, sessB.Result.FinalCost; math.Float64bits(a) != math.Float64bits(b) {
			t.Fatalf("task %d: cost %v vs %v", i, a, b)
		}
	}

	sA, sB := mA.Stats(), mB.Stats()
	if sA.Admitted != sB.Admitted || sA.Rejected != sB.Rejected || sA.Active != sB.Active {
		t.Fatalf("stats diverge: batch %+v serial %+v", sA, sB)
	}
	if math.Float64bits(sA.AdmittedCost) != math.Float64bits(sB.AdmittedCost) {
		t.Fatalf("accounting diverges: %v vs %v", sA.AdmittedCost, sB.AdmittedCost)
	}
	refsA, refsB := mA.Refs(), mB.Refs()
	if len(refsA) != len(refsB) {
		t.Fatalf("ref ledgers diverge: %d vs %d instances", len(refsA), len(refsB))
	}
	for key, n := range refsA {
		if refsB[key] != n {
			t.Fatalf("refs[%v] = %d vs %d", key, n, refsB[key])
		}
	}
	checkIntegrity(t, mA)
}

// TestAdmitBatchCoalesces drives a batch of identical tasks: after the
// first deploys the chain's instances, the rest reuse them, so no
// commit bumps the deployment epoch and every follow-up solve runs off
// the inherited snapshot.
func TestAdmitBatchCoalesces(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	net, err := netgen.Generate(netgen.PaperConfig(30, 2), rng)
	if err != nil {
		t.Fatal(err)
	}
	task, err := netgen.GenerateTask(net, rng, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager(net, core.Options{})
	if _, err := m.Admit(task); err != nil {
		t.Fatalf("seed admit: %v", err)
	}

	bts := []BatchTask{{Task: task}, {Task: task}, {Task: task}}
	outs := m.AdmitBatch(context.Background(), bts)
	coalesced := 0
	for i, out := range outs {
		if out.Err != nil {
			t.Fatalf("batch task %d: %v", i, out.Err)
		}
		if out.Coalesced {
			coalesced++
		}
	}
	if coalesced == 0 {
		t.Fatal("no batch admission reused the shared snapshot")
	}
	if got := m.Stats().CoalescedSolves; got != coalesced {
		t.Fatalf("Stats().CoalescedSolves = %d, want %d", got, coalesced)
	}
}

// TestAdmitBatchDeadline pins per-task deadline plumbing: a deadline
// far in the future changes nothing, and outcomes keep AdmitCtx's
// anytime semantics (no spurious rejection from the bounded context).
func TestAdmitBatchDeadline(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	net, err := netgen.Generate(netgen.PaperConfig(20, 2), rng)
	if err != nil {
		t.Fatal(err)
	}
	task, err := netgen.GenerateTask(net, rng, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager(net, core.Options{})
	outs := m.AdmitBatch(context.Background(), []BatchTask{
		{Task: task, Deadline: time.Now().Add(time.Hour)},
	})
	if outs[0].Err != nil {
		t.Fatalf("deadline-bounded admit: %v", outs[0].Err)
	}
	if outs[0].Sess.Result.EarlyStop {
		t.Fatal("a generous deadline must not trigger an early stop")
	}
}
