package dynamic

import (
	"errors"
	"testing"

	"sftree/internal/core"
	"sftree/internal/faults"
	"sftree/internal/nfv"
)

// TestRollbackStopsAtFailedInstance drives the mid-admission rollback
// helper directly: when the i-th Deploy of an admission fails, every
// instance installed before it must be undeployed and the failed one
// (plus any after it) left untouched.
func TestRollbackStopsAtFailedInstance(t *testing.T) {
	insts := []nfv.Instance{
		{VNF: 0, Node: 1, Level: 1},
		{VNF: 1, Node: 1, Level: 2},
		{VNF: 0, Node: 2, Level: 1},
	}
	cases := []struct {
		name      string
		installed int // how many of insts got deployed before the failure
		failed    nfv.Instance
	}{
		{"first deploy fails", 0, insts[0]},
		{"middle deploy fails", 1, insts[1]},
		{"last deploy fails", 2, insts[2]},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			net := lineNet(t, 4)
			m := NewManager(net, core.Options{})
			for i := 0; i < tc.installed; i++ {
				if err := net.Deploy(insts[i].VNF, insts[i].Node); err != nil {
					t.Fatal(err)
				}
			}
			m.rollback(insts, tc.failed)
			for i, inst := range insts {
				if net.IsDeployed(inst.VNF, inst.Node) {
					t.Errorf("instance %d (%+v) still deployed after rollback", i, inst)
				}
			}
			if used := net.UsedCapacity(1) + net.UsedCapacity(2); used != 0 {
				t.Errorf("capacity leak after rollback: %v in use", used)
			}
		})
	}
}

// TestReleaseNeverRemovesForeignInstances: instances deployed outside
// the manager (pre-provisioned or by an operator) are reused for free
// at admission but are not the manager's to undeploy on release.
func TestReleaseNeverRemovesForeignInstances(t *testing.T) {
	net := lineNet(t, 1) // capacity 1: one instance per server
	m := NewManager(net, core.Options{})
	task := nfv.Task{Source: 0, Destinations: []int{3}, Chain: nfv.SFC{0, 1}}
	if err := net.Deploy(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := net.Deploy(1, 2); err != nil {
		t.Fatal(err)
	}
	sess, err := m.Admit(task)
	if err != nil {
		t.Fatalf("admission reusing externally deployed instances: %v", err)
	}
	if len(sess.Result.Embedding.NewInstances) != 0 {
		t.Fatalf("expected pure reuse, got new instances %v", sess.Result.Embedding.NewInstances)
	}
	if err := m.Release(sess.ID); err != nil {
		t.Fatal(err)
	}
	if !net.IsDeployed(0, 1) || !net.IsDeployed(1, 2) {
		t.Fatal("release removed instances the manager does not own")
	}
}

// TestReleaseEdgeCases table-drives the teardown paths: double release,
// release after a fault purged the session's instances, and release
// ordering of sessions sharing instances across a fault.
func TestReleaseEdgeCases(t *testing.T) {
	task := nfv.Task{Source: 0, Destinations: []int{3, 4}, Chain: nfv.SFC{0}}
	cases := []struct {
		name string
		run  func(t *testing.T, m *Manager, base *nfv.Network)
	}{
		{"double release", func(t *testing.T, m *Manager, base *nfv.Network) {
			sess, err := m.Admit(task)
			if err != nil {
				t.Fatal(err)
			}
			if err := m.Release(sess.ID); err != nil {
				t.Fatal(err)
			}
			if err := m.Release(sess.ID); !errors.Is(err, ErrUnknownSession) {
				t.Fatalf("second release = %v, want ErrUnknownSession", err)
			}
			if m.Active() != 0 || m.LiveInstances() != 0 {
				t.Fatalf("state damaged: active=%d instances=%d", m.Active(), m.LiveInstances())
			}
		}},
		{"release after fault purge", func(t *testing.T, m *Manager, base *nfv.Network) {
			sess, err := m.Admit(task)
			if err != nil {
				t.Fatal(err)
			}
			// Node 1 crashes: the session's only instance dies with it
			// and its references are purged. Release must not decrement
			// into a phantom negative count or attempt an undeploy.
			rebaseAfter(t, m, base, faults.Event{Kind: faults.NodeDown, Node: 1})
			if err := m.Release(sess.ID); err != nil {
				t.Fatalf("release after purge: %v", err)
			}
			if m.Active() != 0 || m.LiveInstances() != 0 {
				t.Fatalf("active=%d instances=%d", m.Active(), m.LiveInstances())
			}
		}},
		{"shared instance, fault, then both released", func(t *testing.T, m *Manager, base *nfv.Network) {
			s1, err := m.Admit(task)
			if err != nil {
				t.Fatal(err)
			}
			s2, err := m.Admit(task)
			if err != nil {
				t.Fatal(err)
			}
			rebaseAfter(t, m, base, faults.Event{Kind: faults.NodeDown, Node: 1})
			// Both sessions lost everything; releases in either order
			// must be clean no-ops on the instance table.
			for _, id := range []SessionID{s2.ID, s1.ID} {
				if err := m.Release(id); err != nil {
					t.Fatalf("release %d: %v", id, err)
				}
			}
			if m.LiveInstances() != 0 {
				t.Fatalf("instances leak: %d", m.LiveInstances())
			}
		}},
		{"fault then repair then release", func(t *testing.T, m *Manager, base *nfv.Network) {
			sess, err := m.Admit(task)
			if err != nil {
				t.Fatal(err)
			}
			// Link cut with a feasible detour: the session is patched,
			// its refcounts re-derived; release must still be exact.
			rep := rebaseAfter(t, m, base, faults.Event{Kind: faults.LinkDown, U: 1, V: 4})
			if rep.Affected != 1 {
				t.Fatalf("report %+v", rep)
			}
			if err := m.Release(sess.ID); err != nil {
				t.Fatal(err)
			}
			if m.LiveInstances() != 0 {
				t.Fatalf("instances leak after repaired release: %d", m.LiveInstances())
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			base := repairNet(t, 2)
			m := NewManager(base, core.Options{})
			tc.run(t, m, base)
		})
	}
}
