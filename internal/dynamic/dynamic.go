// Package dynamic manages the lifecycle of many multicast sessions
// over one shared network — the dynamic service-chaining setting the
// paper's related work (§II, [13][24]) points at. Every admitted
// session runs the two-stage SFT embedding against the network's
// *current* deployment state, so instances installed for earlier
// sessions are reused at zero setup cost; capacity consumed by live
// instances blocks later over-subscription; and departing sessions
// release their instances once the last subscriber leaves
// (reference-counted ownership).
//
// Admissions follow an optimistic two-phase protocol: the expensive
// solve runs lock-free against an immutable snapshot of the network,
// and only a short validate-and-commit step serializes on the
// manager's mutex. The commit re-checks exactly the deployment state
// the embedding touches, so concurrent admissions over disjoint
// instances commit without re-solving; genuinely conflicting ones
// retry a bounded number of times and then fall back to solving under
// the lock, which guarantees progress. A single client (no
// concurrency) always commits its first attempt against an unchanged
// snapshot, making results bit-identical to the fully serialized path.
package dynamic

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"sftree/internal/core"
	"sftree/internal/mod"
	"sftree/internal/nfv"
	"sftree/internal/obs"
	"sftree/internal/wal"
)

var (
	// ErrRejected reports an arrival the network could not host.
	ErrRejected = errors.New("dynamic: session rejected")
	// ErrUnknownSession reports a release for an unknown session ID.
	ErrUnknownSession = errors.New("dynamic: unknown session")
)

// maxAdmitRetries bounds how many times an admission re-solves after a
// commit conflict before falling back to solving under the lock. The
// fallback serializes with every other commit, so admission latency
// stays bounded even under pathological contention.
const maxAdmitRetries = 3

// SessionID identifies an admitted session.
type SessionID int

// Session is one live multicast task and its embedding.
type Session struct {
	ID   SessionID
	Task nfv.Task
	// Result is the solver outcome at admission time; after a fault
	// repair its Embedding and FinalCost reflect the repaired state.
	Result *core.Result
	// Degraded marks a session that a fault repair could not restore
	// in full: it serves only the destinations its embedding still
	// reaches (possibly none), and Lost lists the dropped ones.
	Degraded bool
	// Lost lists destination node IDs no longer served (unreachable or
	// unrepairable after a fault). Empty for healthy sessions.
	Lost []int
	// uses lists the (vnf, node) instances this session's flows
	// traverse, including ones inherited from earlier sessions.
	uses [][2]int
}

// Manager admits and releases sessions over a shared network. All
// methods are safe for concurrent use. Admissions solve against a
// read snapshot outside the lock and serialize only on a short
// validate-and-commit step; Release, Rebase and the query methods
// serialize on the same mutex.
type Manager struct {
	mu   sync.Mutex
	net  *nfv.Network
	opts core.Options

	// scaffolds memoizes stage-one MOD overlays across admissions with
	// the same (source, chain) at the same network version. Overlays
	// are only ever built against immutable snapshot clones (never the
	// live, mutating network), so a cached overlay can be shared by
	// every solver at that version.
	scaffolds *mod.Cache

	nextID   SessionID
	sessions map[SessionID]*Session
	// refs counts live sessions per dynamically deployed instance.
	// Instances pre-deployed at construction time are permanent and
	// never appear here.
	refs map[[2]int]int

	admitted, rejected int
	admittedCost       float64
	// Optimistic-concurrency history: commit attempts invalidated by a
	// concurrent commit, solve reruns those conflicts forced, and
	// admissions that exhausted their retries and ran serialized.
	commitConflicts     int
	admitRetries        int
	serializedFallbacks int
	// coalescedSolves counts batch admissions that committed off a
	// reused snapshot (see AdmitBatch).
	coalescedSolves int

	// met holds the optional registry handles (see Instrument).
	met *managerMetrics
	// trace, when set, receives one obs.Trace per admission and repair
	// solve (see Trace).
	trace *obs.TraceBuffer

	// wal, when attached, receives one lifecycle record per commit —
	// appended inside the critical section, before the in-memory state
	// mutates, so the durable history can never lag a committed
	// operation (see AttachWAL, Checkpoint, Restore in durable.go).
	wal *wal.Log
	// crashHook, when set, fires at named crash points inside the
	// commit critical sections (test-only; see SetCrashHook).
	crashHook func(point string)
	// inflight counts admissions and releases between entry and commit
	// completion, so Drain can wait for a quiescent state before the
	// shutdown snapshot.
	inflight sync.WaitGroup

	// Durability history: records appended, append failures, snapshots
	// written, and the sequence the newest snapshot folded.
	walRecords      int
	walAppendErrors int
	snapshots       int
	lastSnapshotSeq uint64
	// checkpointDirty marks a swallowed repair/rebase append failure:
	// the durable history trails the live state until the next
	// snapshot (see NeedsCheckpoint).
	checkpointDirty bool
}

// managerMetrics are the registry handles an instrumented manager
// updates: lifecycle counters, live-state gauges, the per-admission
// solve latency histogram and the commit-conflict counters of the
// optimistic admission path.
type managerMetrics struct {
	admitted, rejected, released   *obs.Counter
	repairAttempts, repairFailures *obs.Counter
	commitConflicts                *obs.Counter
	admitRetries                   *obs.Counter
	serializedFallbacks            *obs.Counter
	coalescedSolves                *obs.Counter
	live, liveInstances, degraded  *obs.Gauge
	solveMS, repairCostDelta       *obs.Histogram
	// Durability counters (see AttachWAL / Checkpoint).
	walRecords, walAppendErrors *obs.Counter
	snapshots                   *obs.Counter
	walDirty                    *obs.Gauge
}

// NewManager wraps a network for dynamic session management. The
// network is owned by the manager afterwards: its deployment state
// mutates as sessions come and go.
func NewManager(net *nfv.Network, opts core.Options) *Manager {
	// The manager owns its scaffold cache and guarantees it only ever
	// sees immutable snapshots; a caller-supplied cache could be fed
	// the live network elsewhere, so it is deliberately dropped.
	opts.Scaffolds = nil
	return &Manager{
		net:       net,
		opts:      opts,
		scaffolds: mod.NewCache(),
		sessions:  make(map[SessionID]*Session),
		refs:      make(map[[2]int]int),
	}
}

// Network exposes the managed network (read-only use expected).
func (m *Manager) Network() *nfv.Network { return m.net }

// Instrument wires the manager's lifecycle into the registry:
// sessions_{admitted,rejected,released}_total counters, the
// sessions_live and instances_live gauges, the session_solve_ms
// per-admission latency histogram, and the optimistic-admission
// counters admit_commit_conflicts_total, admit_retries_total and
// admit_serialized_fallbacks_total. It returns the manager for
// chaining; an uninstrumented manager pays nothing.
func (m *Manager) Instrument(reg *obs.Registry) *Manager {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.met = &managerMetrics{
		admitted:            reg.Counter("sessions_admitted_total"),
		rejected:            reg.Counter("sessions_rejected_total"),
		released:            reg.Counter("sessions_released_total"),
		repairAttempts:      reg.Counter("repair_attempts"),
		repairFailures:      reg.Counter("repair_failures"),
		commitConflicts:     reg.Counter("admit_commit_conflicts_total"),
		admitRetries:        reg.Counter("admit_retries_total"),
		serializedFallbacks: reg.Counter("admit_serialized_fallbacks_total"),
		coalescedSolves:     reg.Counter("admit_coalesced_solves_total"),
		live:                reg.Gauge("sessions_live"),
		liveInstances:       reg.Gauge("instances_live"),
		degraded:            reg.Gauge("sessions_degraded"),
		solveMS:             reg.Histogram("session_solve_ms", obs.LatencyBuckets),
		repairCostDelta:     reg.Histogram("repair_cost_delta", nil),
		walRecords:          reg.Counter("wal_records_total"),
		walAppendErrors:     reg.Counter("wal_append_errors_total"),
		snapshots:           reg.Counter("snapshots_written_total"),
		walDirty:            reg.Gauge("wal_checkpoint_dirty"),
	}
	return m
}

// Trace wires the manager's solver runs into a bounded trace ring:
// every admission and every fault-repair solve records a span tree
// stamped with the originating request ID (taken from the admission
// context's obs middleware value), the warm/cold metric label, the
// early-stop flag, the stage-one parallelism, the commit-conflict
// retry count and — for repairs — the repair-ladder rung. It returns
// the manager for chaining; an untraced manager pays nothing.
func (m *Manager) Trace(buf *obs.TraceBuffer) *Manager {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.trace = buf
	return m
}

// observe refreshes the live gauges; callers hold m.mu.
func (m *Manager) observe() {
	if m.met == nil {
		return
	}
	m.met.live.Set(int64(len(m.sessions)))
	m.met.liveInstances.Set(int64(len(m.refs)))
	var deg int64
	for _, sess := range m.sessions {
		if sess.Degraded {
			deg++
		}
	}
	m.met.degraded.Set(deg)
}

// snapshot is one admission's read view: an immutable clone of the
// network plus the version triple that decides whether the solve
// computed against it is still valid at commit time.
type snapshot struct {
	net    *nfv.Network // deep clone; never mutated after the copy
	parent *nfv.Network // the live network object the clone was taken from
	gen    uint64       // graph generation at snapshot time
	epoch  uint64       // deployment epoch at snapshot time
	opts   core.Options // solver options as configured at snapshot time
	trace  *obs.TraceBuffer
}

// takeSnapshot captures the network and manager configuration under
// the lock. The metric closure is warmed first so every clone (and
// the live network) share one APSP computation instead of each cold
// solve paying its own.
func (m *Manager) takeSnapshot() snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.net.Metric()
	return snapshot{
		net:    m.net.Clone(),
		parent: m.net,
		gen:    m.net.Graph().Generation(),
		epoch:  m.net.DeployEpoch(),
		opts:   m.opts,
		trace:  m.trace,
	}
}

// Admit solves the task against the current deployment state,
// installs its new instances, and reference-counts every dynamic
// instance its flows traverse. A solver failure (no capacity, no
// route) yields ErrRejected with the cause wrapped.
func (m *Manager) Admit(task nfv.Task) (*Session, error) {
	return m.AdmitCtx(context.Background(), task)
}

// AdmitCtx is Admit with a solve deadline: the context is threaded
// into core.Options.Ctx, so an expiring deadline yields the best
// feasible embedding found so far (anytime semantics) rather than an
// abort — admission still succeeds with Result.EarlyStop set.
//
// The solve runs outside the manager lock against a snapshot; the
// commit step re-acquires the lock, verifies the snapshot's version
// (or, when only the deployment epoch moved, re-validates exactly the
// instances and capacities the embedding touches) and installs the
// session. On conflict it re-solves against a fresh snapshot up to
// maxAdmitRetries times, then falls back to one serialized
// solve-and-commit under the lock.
func (m *Manager) AdmitCtx(ctx context.Context, task nfv.Task) (*Session, error) {
	m.inflight.Add(1)
	defer m.inflight.Done()
	start := time.Now()
	out := m.admitLoop(ctx, task, nil)
	m.finishAdmit(out.tracing, out.rec, ctx, out.par, out.retries, out.sess, out.res, out.err, start)
	if out.err != nil {
		return nil, out.err
	}
	return out.sess, nil
}

// admitOutcome bundles one admission's final result plus the telemetry
// finishAdmit reports and the snapshot-reuse state AdmitBatch threads
// from task to task.
type admitOutcome struct {
	sess    *Session
	res     *core.Result
	err     error
	rec     *obs.SpanRecorder
	par     int
	retries int
	tracing *obs.TraceBuffer
	// coalesced marks an admission whose committed attempt solved
	// against a snapshot inherited from an earlier batch task instead
	// of a fresh clone.
	coalesced bool
	// snap is the snapshot behind the final optimistic attempt;
	// snapValid marks it reusable (the attempt committed without
	// falling back to the serialized path). AdmitBatch hands it to the
	// next task when the network version has not moved since.
	snap      snapshot
	snapValid bool
}

// admitLoop runs the optimistic solve/commit protocol for one task:
// solve outside the lock against a snapshot, validate-and-commit under
// it, re-solve on conflict up to maxAdmitRetries times, then fall back
// to one serialized solve-and-commit. reuse, when non-nil, serves the
// first attempt instead of a fresh clone — the batch path passes the
// previous task's snapshot while the version triple proves it still
// equals the live state, so an epoch-stable run of admissions shares
// one clone and one scaffold warm-up.
func (m *Manager) admitLoop(ctx context.Context, task nfv.Task, reuse *snapshot) admitOutcome {
	var out admitOutcome
	for {
		var snap snapshot
		if reuse != nil {
			snap, out.coalesced = *reuse, true
			reuse = nil
		} else {
			out.coalesced = false
			snap = m.takeSnapshot()
		}
		out.tracing, out.par = snap.trace, snap.opts.Parallelism
		attempt := snap.opts
		attempt.Ctx = ctx
		attempt.Scaffolds = m.scaffolds
		out.rec = nil
		if out.tracing != nil {
			out.rec = &obs.SpanRecorder{}
			attempt.Observer = obs.Tee(attempt.Observer, out.rec)
		}
		out.res, out.err = core.Solve(snap.net, task, attempt)
		if out.err != nil {
			// Rejections need no commit: the network was not touched.
			// A conflicting commit cannot turn an infeasible task
			// feasible only by *adding* load, but a concurrent release
			// could, so a rejection computed against a stale snapshot
			// is re-checked once against the current version.
			if stale := m.noteRejectionLocked(snap); !stale {
				out.sess = nil
				out.err = fmt.Errorf("%w: %w", ErrRejected, out.err)
				// The stale check just proved the version unmoved, so
				// the snapshot still equals the live state: a batch
				// can reuse it for the next task.
				out.snap, out.snapValid = snap, true
				return out
			}
			out.retries++
			if out.retries > maxAdmitRetries {
				out.sess, out.res, out.err, out.rec = m.admitSerialized(ctx, task)
				return out
			}
			continue
		}
		var conflicted bool
		out.sess, out.err, conflicted = m.tryCommit(snap, task, out.res)
		if !conflicted {
			out.snap, out.snapValid = snap, true
			return out
		}
		out.retries++
		if out.retries > maxAdmitRetries {
			out.sess, out.res, out.err, out.rec = m.admitSerialized(ctx, task)
			return out
		}
	}
}

// finishAdmit records the admission's trace and latency once the
// outcome (success, rejection, or fallback result) is final. Exactly
// one trace is added per AdmitCtx call, carrying the spans of the
// attempt that produced the outcome.
func (m *Manager) finishAdmit(buf *obs.TraceBuffer, rec *obs.SpanRecorder, ctx context.Context, par, retries int, sess *Session, res *core.Result, err error, start time.Time) {
	if m.met != nil {
		m.met.solveMS.ObserveDuration(time.Since(start))
	}
	if buf == nil {
		return
	}
	t := obs.Trace{
		Op:          "admit",
		RequestID:   obs.RequestID(ctx),
		Session:     -1,
		Parallelism: par,
		Retries:     retries,
		Start:       start,
		DurationNs:  time.Since(start).Nanoseconds(),
	}
	if rec != nil {
		t.Warm = rec.Breakdown().Warm
		t.Spans = rec.Spans()
	}
	if sess != nil {
		t.Session = int(sess.ID)
	}
	if res != nil {
		t.EarlyStop = res.EarlyStop
	}
	if err != nil {
		t.Err = err.Error()
	}
	buf.Add(t)
}

// noteRejectionLocked accounts one solver rejection. It reports the
// rejection as stale — worth a retry instead of a final answer — when
// the deployment state changed since the snapshot was taken: capacity
// freed by a concurrent release could make the task feasible.
func (m *Manager) noteRejectionLocked(snap snapshot) (stale bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.net != snap.parent ||
		m.net.Graph().Generation() != snap.gen ||
		m.net.DeployEpoch() != snap.epoch {
		m.commitConflicts++
		m.admitRetries++
		if m.met != nil {
			m.met.commitConflicts.Inc()
			m.met.admitRetries.Inc()
		}
		return true
	}
	m.rejected++
	if m.met != nil {
		m.met.rejected.Inc()
	}
	return false
}

// tryCommit is the short serialized phase of an optimistic admission.
// It validates that the solve's snapshot still describes the live
// network — same network object, same graph generation, and either
// the same deployment epoch or, when only the epoch moved, unchanged
// state for exactly the instances and node capacities the embedding
// touches — and then installs the session. conflicted=true asks the
// caller to re-solve; a non-nil error is a terminal rejection.
func (m *Manager) tryCommit(snap snapshot, task nfv.Task, res *core.Result) (sess *Session, err error, conflicted bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.net != snap.parent || m.net.Graph().Generation() != snap.gen {
		// Rebase swapped the network (or the topology mutated):
		// everything the solve priced is suspect, so re-solve.
		m.noteConflictLocked()
		return nil, nil, true
	}
	if m.net.DeployEpoch() != snap.epoch && !m.revalidateLocked(task, res.Embedding) {
		m.noteConflictLocked()
		return nil, nil, true
	}
	sess, err = m.commitLocked(task, res)
	return sess, err, false
}

// noteConflictLocked counts one invalidated commit attempt and the
// retry it forces; callers hold m.mu.
func (m *Manager) noteConflictLocked() {
	m.commitConflicts++
	m.admitRetries++
	if m.met != nil {
		m.met.commitConflicts.Inc()
		m.met.admitRetries.Inc()
	}
}

// revalidateLocked re-checks an embedding solved against an older
// deployment epoch, touching only the state the embedding depends on:
//
//   - every fresh instance must still be uninstalled, and the summed
//     demand of fresh instances per node must still fit the node's
//     remaining capacity (constraint (1f));
//   - every pre-existing instance a walk is served by must still be
//     deployed, because the solver priced it at zero setup cost and
//     its walks route through it.
//
// Anything else a concurrent commit changed — instances on nodes this
// embedding avoids — cannot affect its feasibility or cost, so the
// common case of disjoint concurrent admissions commits without a
// re-solve. Callers hold m.mu.
func (m *Manager) revalidateLocked(task nfv.Task, emb *nfv.Embedding) bool {
	fresh := getKeySet()
	defer putKeySet(fresh)
	for _, inst := range emb.NewInstances {
		if m.net.IsDeployed(inst.VNF, inst.Node) {
			return false // someone installed the same instance meanwhile
		}
		fresh.add([2]int{inst.VNF, inst.Node})
	}
	// Per-node capacity: sum the demand this embedding adds to each
	// node and check it still fits. NewInstances lists are short, so
	// the quadratic grouping stays cheap and allocation-free.
	for i, inst := range emb.NewInstances {
		grouped := false
		for _, prev := range emb.NewInstances[:i] {
			if prev.Node == inst.Node {
				grouped = true
				break
			}
		}
		if grouped {
			continue // node already checked with its full addition
		}
		var add float64
		for _, other := range emb.NewInstances[i:] {
			if other.Node == inst.Node {
				if vnf, err := m.net.VNF(other.VNF); err == nil {
					add += vnf.Demand
				}
			}
		}
		if m.net.UsedCapacity(inst.Node)+add > m.net.Capacity(inst.Node)+1e-9 {
			return false
		}
	}
	// Reused serving instances must still exist.
	seen := getKeySet()
	defer putKeySet(seen)
	k := task.K()
	for di := range task.Destinations {
		for lvl := 1; lvl <= k; lvl++ {
			key := [2]int{task.Chain[lvl-1], emb.ServingNode(di, lvl)}
			if !seen.add(key) || fresh.has(key) {
				continue
			}
			if !m.net.IsDeployed(key[0], key[1]) {
				return false
			}
		}
	}
	return true
}

// admitSerialized is the bounded-retry fallback: one solve-and-commit
// entirely under the lock, exactly the pre-optimistic behavior. It
// cannot conflict, so admission latency under pathological contention
// degrades to the serialized path instead of livelocking. The scaffold
// cache is bypassed because the live network mutates between (and
// during) admissions, and cached overlays must only reference
// immutable snapshots.
func (m *Manager) admitSerialized(ctx context.Context, task nfv.Task) (*Session, *core.Result, error, *obs.SpanRecorder) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.serializedFallbacks++
	if m.met != nil {
		m.met.serializedFallbacks.Inc()
	}
	opts := m.opts
	opts.Ctx = ctx
	var rec *obs.SpanRecorder
	if m.trace != nil {
		rec = &obs.SpanRecorder{}
		opts.Observer = obs.Tee(opts.Observer, rec)
	}
	res, err := core.Solve(m.net, task, opts)
	if err != nil {
		m.rejected++
		if m.met != nil {
			m.met.rejected.Inc()
		}
		return nil, res, fmt.Errorf("%w: %w", ErrRejected, err), rec
	}
	sess, err := m.commitLocked(task, res)
	return sess, res, err, rec
}

// commitLocked installs a validated solver result: deploys the fresh
// instances (rolling back on the impossible install failure), builds
// the session, appends its admit record to the attached WAL, and only
// then reference-counts every dynamic instance its walks traverse.
// The WAL append sits between "the session is fully decided" and "the
// in-memory state changes", so a crash on either side is clean:
// before the append nothing was committed (the record is absent, the
// deploys die with the process), after it the record replays the
// exact state the commit was about to install. The critical section
// allocates only the session object itself — the dedup scratch comes
// from a pool. Callers hold m.mu.
func (m *Manager) commitLocked(task nfv.Task, res *core.Result) (*Session, error) {
	for _, inst := range res.Embedding.NewInstances {
		if err := m.net.Deploy(inst.VNF, inst.Node); err != nil {
			// Roll back what we already installed; this indicates a
			// solver bug (validated embeddings must fit capacity).
			m.rollback(res.Embedding.NewInstances, inst)
			m.rejected++
			if m.met != nil {
				m.met.rejected.Inc()
			}
			return nil, fmt.Errorf("%w: install: %w", ErrRejected, err)
		}
	}
	sess := &Session{ID: m.nextID, Task: task.CloneTask(), Result: res}

	// Collect every dynamic instance the session traverses — reused
	// ones already in the ledger plus its fresh installs — without
	// touching the counts yet: the usage list goes into the WAL record
	// first, and only a durable record may mutate state.
	seen := getKeySet()
	for di := range task.Destinations {
		for lvl := 1; lvl <= task.K(); lvl++ {
			key := [2]int{task.Chain[lvl-1], res.Embedding.ServingNode(di, lvl)}
			if !seen.add(key) {
				continue
			}
			if _, dynamicInst := m.refs[key]; dynamicInst {
				sess.uses = append(sess.uses, key)
			}
		}
	}
	putKeySet(seen)
	for _, inst := range res.Embedding.NewInstances {
		sess.uses = append(sess.uses, [2]int{inst.VNF, inst.Node})
	}

	if err := m.appendAdmitLocked(sess); err != nil {
		// Durability is part of the commit: an unloggable admission is
		// rejected and its installs undone, keeping disk and memory in
		// agreement (both without the session).
		for _, inst := range res.Embedding.NewInstances {
			_ = m.net.Undeploy(inst.VNF, inst.Node)
		}
		m.rejected++
		if m.met != nil {
			m.met.rejected.Inc()
		}
		return nil, fmt.Errorf("%w: wal append: %w", ErrRejected, err)
	}
	m.crashPoint("admit:post-wal")

	m.nextID++
	for _, key := range sess.uses {
		m.refs[key]++
	}
	m.sessions[sess.ID] = sess
	m.admitted++
	m.admittedCost += res.FinalCost
	if m.met != nil {
		m.met.admitted.Inc()
		m.observe()
	}
	return sess, nil
}

// rollback undoes deployments up to (excluding) the failing one.
func (m *Manager) rollback(insts []nfv.Instance, failed nfv.Instance) {
	for _, inst := range insts {
		if inst == failed {
			return
		}
		_ = m.net.Undeploy(inst.VNF, inst.Node)
	}
}

// Release tears a session down: every dynamic instance it referenced
// is decremented and undeployed once no live session uses it. Like
// admission, the release record hits the WAL before the in-memory
// state changes, so a crash either loses the whole release (the
// session survives restore) or none of it.
func (m *Manager) Release(id SessionID) error {
	m.inflight.Add(1)
	defer m.inflight.Done()
	m.mu.Lock()
	defer m.mu.Unlock()
	sess, ok := m.sessions[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownSession, id)
	}
	if err := m.appendRecord(&wal.Record{Type: wal.RecRelease, Session: int64(id)}); err != nil {
		return fmt.Errorf("dynamic: release %d: wal append: %w", id, err)
	}
	m.crashPoint("release:post-wal")
	delete(m.sessions, id)
	for _, key := range sess.uses {
		if _, ok := m.refs[key]; !ok {
			// The instance died in a fault after this session last
			// referenced it; decrementing would mint a phantom negative
			// entry and a later Undeploy would fail.
			continue
		}
		m.refs[key]--
		if m.refs[key] > 0 {
			continue
		}
		delete(m.refs, key)
		if err := m.net.Undeploy(key[0], key[1]); err != nil {
			return fmt.Errorf("dynamic: release %d: %w", id, err)
		}
	}
	if m.met != nil {
		m.met.released.Inc()
		m.observe()
	}
	return nil
}

// Sessions returns a snapshot of the live sessions ordered by ID.
// Callers must treat the sessions as read-only.
func (m *Manager) Sessions() []*Session {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Session, 0, len(m.sessions))
	for _, sess := range m.sessions {
		out = append(out, sess)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Active returns the number of live sessions.
func (m *Manager) Active() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.sessions)
}

// LiveInstances returns the number of dynamically deployed instances
// currently installed.
func (m *Manager) LiveInstances() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.refs)
}

// Refs returns a copy of the dynamic-instance reference counts:
// (vnf, node) → number of live sessions traversing that instance.
// Test harnesses use it to assert refcount conservation against the
// sessions' own usage lists.
func (m *Manager) Refs() map[[2]int]int {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[[2]int]int, len(m.refs))
	for k, v := range m.refs {
		out[k] = v
	}
	return out
}

// Stats summarizes the manager's history.
type Stats struct {
	Admitted     int     `json:"admitted"`
	Rejected     int     `json:"rejected"`
	Active       int     `json:"active"`
	AdmittedCost float64 `json:"admitted_cost"` // sum of admission-time costs
	// CommitConflicts counts optimistic commit attempts invalidated by
	// a concurrent commit; AdmitRetries the solve reruns they forced;
	// SerializedFallbacks admissions that exhausted their retries and
	// solved under the lock. All three stay zero without concurrency.
	CommitConflicts     int `json:"commit_conflicts"`
	AdmitRetries        int `json:"admit_retries"`
	SerializedFallbacks int `json:"serialized_fallbacks"`
	// CoalescedSolves counts batch admissions that committed off a
	// reused snapshot (see AdmitBatch).
	CoalescedSolves int `json:"coalesced_solves,omitempty"`
	// Durability history; all zero without an attached WAL.
	WALRecords      int    `json:"wal_records,omitempty"`
	WALAppendErrors int    `json:"wal_append_errors,omitempty"`
	Snapshots       int    `json:"snapshots,omitempty"`
	LastSnapshotSeq uint64 `json:"last_snapshot_seq,omitempty"`
	// CheckpointDirty reports a swallowed repair/rebase append failure
	// not yet healed by a snapshot (see NeedsCheckpoint).
	CheckpointDirty bool `json:"checkpoint_dirty,omitempty"`
}

// Stats returns a snapshot of the manager's counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Stats{
		Admitted:            m.admitted,
		Rejected:            m.rejected,
		Active:              len(m.sessions),
		AdmittedCost:        m.admittedCost,
		CommitConflicts:     m.commitConflicts,
		AdmitRetries:        m.admitRetries,
		SerializedFallbacks: m.serializedFallbacks,
		CoalescedSolves:     m.coalescedSolves,
		WALRecords:          m.walRecords,
		WALAppendErrors:     m.walAppendErrors,
		Snapshots:           m.snapshots,
		LastSnapshotSeq:     m.lastSnapshotSeq,
		CheckpointDirty:     m.checkpointDirty,
	}
}
