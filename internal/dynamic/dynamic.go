// Package dynamic manages the lifecycle of many multicast sessions
// over one shared network — the dynamic service-chaining setting the
// paper's related work (§II, [13][24]) points at. Every admitted
// session runs the two-stage SFT embedding against the network's
// *current* deployment state, so instances installed for earlier
// sessions are reused at zero setup cost; capacity consumed by live
// instances blocks later over-subscription; and departing sessions
// release their instances once the last subscriber leaves
// (reference-counted ownership).
package dynamic

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"sftree/internal/core"
	"sftree/internal/nfv"
	"sftree/internal/obs"
)

var (
	// ErrRejected reports an arrival the network could not host.
	ErrRejected = errors.New("dynamic: session rejected")
	// ErrUnknownSession reports a release for an unknown session ID.
	ErrUnknownSession = errors.New("dynamic: unknown session")
)

// SessionID identifies an admitted session.
type SessionID int

// Session is one live multicast task and its embedding.
type Session struct {
	ID   SessionID
	Task nfv.Task
	// Result is the solver outcome at admission time; after a fault
	// repair its Embedding and FinalCost reflect the repaired state.
	Result *core.Result
	// Degraded marks a session that a fault repair could not restore
	// in full: it serves only the destinations its embedding still
	// reaches (possibly none), and Lost lists the dropped ones.
	Degraded bool
	// Lost lists destination node IDs no longer served (unreachable or
	// unrepairable after a fault). Empty for healthy sessions.
	Lost []int
	// uses lists the (vnf, node) instances this session's flows
	// traverse, including ones inherited from earlier sessions.
	uses [][2]int
}

// Manager admits and releases sessions over a shared network. All
// methods are safe for concurrent use: admissions serialize on an
// internal mutex, since each one reads and mutates the shared
// deployment state.
type Manager struct {
	mu   sync.Mutex
	net  *nfv.Network
	opts core.Options

	nextID   SessionID
	sessions map[SessionID]*Session
	// refs counts live sessions per dynamically deployed instance.
	// Instances pre-deployed at construction time are permanent and
	// never appear here.
	refs map[[2]int]int

	admitted, rejected int
	admittedCost       float64

	// met holds the optional registry handles (see Instrument).
	met *managerMetrics
	// trace, when set, receives one obs.Trace per admission and repair
	// solve (see Trace).
	trace *obs.TraceBuffer
}

// managerMetrics are the registry handles an instrumented manager
// updates: lifecycle counters, live-state gauges and the per-admission
// solve latency histogram.
type managerMetrics struct {
	admitted, rejected, released   *obs.Counter
	repairAttempts, repairFailures *obs.Counter
	live, liveInstances, degraded  *obs.Gauge
	solveMS, repairCostDelta       *obs.Histogram
}

// NewManager wraps a network for dynamic session management. The
// network is owned by the manager afterwards: its deployment state
// mutates as sessions come and go.
func NewManager(net *nfv.Network, opts core.Options) *Manager {
	return &Manager{
		net:      net,
		opts:     opts,
		sessions: make(map[SessionID]*Session),
		refs:     make(map[[2]int]int),
	}
}

// Network exposes the managed network (read-only use expected).
func (m *Manager) Network() *nfv.Network { return m.net }

// Instrument wires the manager's lifecycle into the registry:
// sessions_{admitted,rejected,released}_total counters, the
// sessions_live and instances_live gauges, and the session_solve_ms
// per-admission latency histogram. It returns the manager for
// chaining; an uninstrumented manager pays nothing.
func (m *Manager) Instrument(reg *obs.Registry) *Manager {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.met = &managerMetrics{
		admitted:        reg.Counter("sessions_admitted_total"),
		rejected:        reg.Counter("sessions_rejected_total"),
		released:        reg.Counter("sessions_released_total"),
		repairAttempts:  reg.Counter("repair_attempts"),
		repairFailures:  reg.Counter("repair_failures"),
		live:            reg.Gauge("sessions_live"),
		liveInstances:   reg.Gauge("instances_live"),
		degraded:        reg.Gauge("sessions_degraded"),
		solveMS:         reg.Histogram("session_solve_ms", obs.LatencyBuckets),
		repairCostDelta: reg.Histogram("repair_cost_delta", nil),
	}
	return m
}

// Trace wires the manager's solver runs into a bounded trace ring:
// every admission and every fault-repair solve records a span tree
// stamped with the originating request ID (taken from the admission
// context's obs middleware value), the warm/cold metric label, the
// early-stop flag, the stage-one parallelism and — for repairs — the
// repair-ladder rung. It returns the manager for chaining; an
// untraced manager pays nothing.
func (m *Manager) Trace(buf *obs.TraceBuffer) *Manager {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.trace = buf
	return m
}

// observe refreshes the live gauges; callers hold m.mu.
func (m *Manager) observe() {
	if m.met == nil {
		return
	}
	m.met.live.Set(int64(len(m.sessions)))
	m.met.liveInstances.Set(int64(len(m.refs)))
	var deg int64
	for _, sess := range m.sessions {
		if sess.Degraded {
			deg++
		}
	}
	m.met.degraded.Set(deg)
}

// Admit solves the task against the current deployment state,
// installs its new instances, and reference-counts every dynamic
// instance its flows traverse. A solver failure (no capacity, no
// route) yields ErrRejected with the cause wrapped.
func (m *Manager) Admit(task nfv.Task) (*Session, error) {
	return m.AdmitCtx(context.Background(), task)
}

// AdmitCtx is Admit with a solve deadline: the context is threaded
// into core.Options.Ctx, so an expiring deadline yields the best
// feasible embedding found so far (anytime semantics) rather than an
// abort — admission still succeeds with Result.EarlyStop set.
func (m *Manager) AdmitCtx(ctx context.Context, task nfv.Task) (*Session, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	opts := m.opts
	opts.Ctx = ctx
	// Thread the originating request through the solver: the obs
	// middleware stored the X-Request-ID in ctx, and the recorder's
	// span tree lands in the trace ring stamped with it.
	var finish func(int, *core.Result, error)
	if m.trace != nil {
		var rec *obs.SpanRecorder
		rec, finish = m.trace.StartTrace("admit", obs.RequestID(ctx))
		opts.Observer = obs.Tee(opts.Observer, rec)
	}
	start := time.Now()
	res, err := core.Solve(m.net, task, opts)
	if finish != nil {
		finish(opts.Parallelism, res, err)
	}
	if m.met != nil {
		m.met.solveMS.ObserveDuration(time.Since(start))
	}
	if err != nil {
		m.rejected++
		if m.met != nil {
			m.met.rejected.Inc()
		}
		return nil, fmt.Errorf("%w: %w", ErrRejected, err)
	}
	// Install the brand-new instances.
	for _, inst := range res.Embedding.NewInstances {
		if err := m.net.Deploy(inst.VNF, inst.Node); err != nil {
			// Roll back what we already installed; this indicates a
			// solver bug (validated embeddings must fit capacity).
			m.rollback(res.Embedding.NewInstances, inst)
			m.rejected++
			if m.met != nil {
				m.met.rejected.Inc()
			}
			return nil, fmt.Errorf("%w: install: %w", ErrRejected, err)
		}
	}
	sess := &Session{ID: m.nextID, Task: task.CloneTask(), Result: res}
	m.nextID++

	// Reference every dynamic instance the session traverses: new ones
	// plus previously installed ones it reuses.
	seen := make(map[[2]int]bool)
	for di := range task.Destinations {
		for lvl := 1; lvl <= task.K(); lvl++ {
			key := [2]int{task.Chain[lvl-1], res.Embedding.ServingNode(di, lvl)}
			if seen[key] {
				continue
			}
			seen[key] = true
			if _, dynamicInst := m.refs[key]; dynamicInst {
				m.refs[key]++
				sess.uses = append(sess.uses, key)
			}
		}
	}
	for _, inst := range res.Embedding.NewInstances {
		key := [2]int{inst.VNF, inst.Node}
		m.refs[key]++ // first reference for a fresh instance
		sess.uses = append(sess.uses, key)
	}
	m.sessions[sess.ID] = sess
	m.admitted++
	m.admittedCost += res.FinalCost
	if m.met != nil {
		m.met.admitted.Inc()
		m.observe()
	}
	return sess, nil
}

// rollback undoes deployments up to (excluding) the failing one.
func (m *Manager) rollback(insts []nfv.Instance, failed nfv.Instance) {
	for _, inst := range insts {
		if inst == failed {
			return
		}
		_ = m.net.Undeploy(inst.VNF, inst.Node)
	}
}

// Release tears a session down: every dynamic instance it referenced
// is decremented and undeployed once no live session uses it.
func (m *Manager) Release(id SessionID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	sess, ok := m.sessions[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownSession, id)
	}
	delete(m.sessions, id)
	for _, key := range sess.uses {
		if _, ok := m.refs[key]; !ok {
			// The instance died in a fault after this session last
			// referenced it; decrementing would mint a phantom negative
			// entry and a later Undeploy would fail.
			continue
		}
		m.refs[key]--
		if m.refs[key] > 0 {
			continue
		}
		delete(m.refs, key)
		if err := m.net.Undeploy(key[0], key[1]); err != nil {
			return fmt.Errorf("dynamic: release %d: %w", id, err)
		}
	}
	if m.met != nil {
		m.met.released.Inc()
		m.observe()
	}
	return nil
}

// Sessions returns a snapshot of the live sessions ordered by ID.
// Callers must treat the sessions as read-only.
func (m *Manager) Sessions() []*Session {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Session, 0, len(m.sessions))
	for _, sess := range m.sessions {
		out = append(out, sess)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Active returns the number of live sessions.
func (m *Manager) Active() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.sessions)
}

// LiveInstances returns the number of dynamically deployed instances
// currently installed.
func (m *Manager) LiveInstances() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.refs)
}

// Stats summarizes the manager's history.
type Stats struct {
	Admitted     int     `json:"admitted"`
	Rejected     int     `json:"rejected"`
	Active       int     `json:"active"`
	AdmittedCost float64 `json:"admitted_cost"` // sum of admission-time costs
}

// Stats returns a snapshot of the manager's counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Stats{
		Admitted:     m.admitted,
		Rejected:     m.rejected,
		Active:       len(m.sessions),
		AdmittedCost: m.admittedCost,
	}
}
