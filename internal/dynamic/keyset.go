package dynamic

import "sync"

// keySet is a small set of (vnf, node) pairs backed by a slice with
// linear-scan membership. Sessions traverse a handful of distinct
// instances, so scanning beats hashing at these sizes — and unlike a
// map the backing array survives reset, so pooled keySets make the
// commit critical section allocation-free in steady state.
type keySet struct {
	keys [][2]int
}

// add inserts k and reports whether it was absent.
func (s *keySet) add(k [2]int) bool {
	if s.has(k) {
		return false
	}
	s.keys = append(s.keys, k)
	return true
}

// has reports membership.
func (s *keySet) has(k [2]int) bool {
	for _, have := range s.keys {
		if have == k {
			return true
		}
	}
	return false
}

// reset empties the set keeping the backing array.
func (s *keySet) reset() { s.keys = s.keys[:0] }

var keySetPool = sync.Pool{New: func() any { return new(keySet) }}

// getKeySet returns an empty pooled set; pair with putKeySet.
func getKeySet() *keySet { return keySetPool.Get().(*keySet) }

// putKeySet resets and recycles a set obtained from getKeySet.
func putKeySet(s *keySet) {
	s.reset()
	keySetPool.Put(s)
}
