package dynamic

import (
	"errors"
	"fmt"

	"sftree/internal/metrics"
	"sftree/internal/trace"
)

// TraceStats aggregates a trace replay.
type TraceStats struct {
	Admitted, Rejected int
	AcceptanceRatio    float64
	CostPerSession     metrics.Sample
	PeakActive         int
	PeakInstances      int
}

// RunTrace replays a generated workload trace through the manager:
// arrivals are admitted (rejections counted, not fatal), departures
// release their session if it was admitted.
func RunTrace(m *Manager, events []trace.Event) (*TraceStats, error) {
	stats := &TraceStats{}
	admittedID := make(map[int]SessionID)
	for _, ev := range events {
		switch ev.Kind {
		case trace.Arrival:
			sess, err := m.Admit(ev.Task)
			if err != nil {
				if errors.Is(err, ErrRejected) {
					stats.Rejected++
					continue
				}
				return nil, err
			}
			admittedID[ev.Arrival] = sess.ID
			stats.Admitted++
			stats.CostPerSession.Add(sess.Result.FinalCost)
			if a := m.Active(); a > stats.PeakActive {
				stats.PeakActive = a
			}
			if li := m.LiveInstances(); li > stats.PeakInstances {
				stats.PeakInstances = li
			}
		case trace.Departure:
			id, ok := admittedID[ev.Arrival]
			if !ok {
				continue // the arrival was rejected
			}
			delete(admittedID, ev.Arrival)
			if err := m.Release(id); err != nil {
				return nil, fmt.Errorf("dynamic: trace departure: %w", err)
			}
		default:
			return nil, fmt.Errorf("dynamic: unknown event kind %d", ev.Kind)
		}
	}
	if total := stats.Admitted + stats.Rejected; total > 0 {
		stats.AcceptanceRatio = float64(stats.Admitted) / float64(total)
	}
	return stats, nil
}
