package dynamic

import (
	"context"
	"time"

	"sftree/internal/nfv"
)

// BatchTask is one admission request inside an AdmitBatch call.
type BatchTask struct {
	Task nfv.Task
	// Deadline, when non-zero, bounds this task's solve: the solver
	// returns its best feasible embedding so far at the deadline
	// (anytime semantics, Result.EarlyStop set) exactly as a
	// context-bounded AdmitCtx would.
	Deadline time.Time
	// Ctx, when non-nil, is the per-task base context — it carries the
	// originating request ID into the admission trace and lets the
	// caller cancel an individual task. Defaults to the batch context.
	Ctx context.Context
}

// BatchOutcome is one task's admission result. Exactly one outcome is
// produced per BatchTask, in input order.
type BatchOutcome struct {
	Sess *Session
	Err  error
	// Coalesced marks an admission whose committed solve reused the
	// previous task's snapshot instead of paying a fresh clone and
	// metric warm-up.
	Coalesced bool
	// Retries is the number of conflict-forced re-solves (0 on the
	// contention-free path).
	Retries int
	// Duration is this task's own solve-and-commit time inside the
	// batch, so callers can split queue wait from solve time.
	Duration time.Duration
}

// AdmitBatch admits the tasks strictly in input order through the same
// optimistic two-phase protocol as AdmitCtx, threading one snapshot
// through the run: after a task commits without conflict, the next
// task reuses its snapshot as long as the network version (parent
// pointer, graph generation, deployment epoch) has not moved — which
// holds exactly when the committed embedding reused live instances
// without deploying or undeploying anything. A signature-grouped batch
// in the steady reuse-heavy state therefore pays one clone, one metric
// warm-up and one scaffold build for the whole group, while any
// version bump (fresh deploy, concurrent release, rebase) falls back
// to a fresh snapshot for the next task.
//
// Each outcome is bit-identical to what a serialized AdmitCtx sequence
// in the same order would produce: snapshot reuse is gated on the same
// version triple tryCommit validates, so a reused snapshot is
// indistinguishable from one taken fresh.
func (m *Manager) AdmitBatch(ctx context.Context, tasks []BatchTask) []BatchOutcome {
	m.inflight.Add(1)
	defer m.inflight.Done()
	outs := make([]BatchOutcome, len(tasks))
	var reuse *snapshot
	for i, bt := range tasks {
		base := bt.Ctx
		if base == nil {
			base = ctx
		}
		taskCtx, cancel := base, context.CancelFunc(nil)
		if !bt.Deadline.IsZero() {
			taskCtx, cancel = context.WithDeadline(base, bt.Deadline)
		}
		if reuse != nil && !m.snapshotCurrent(reuse) {
			reuse = nil
		}
		start := time.Now()
		out := m.admitLoop(taskCtx, bt.Task, reuse)
		m.finishAdmit(out.tracing, out.rec, taskCtx, out.par, out.retries, out.sess, out.res, out.err, start)
		if cancel != nil {
			cancel()
		}
		outs[i] = BatchOutcome{
			Sess:      out.sess,
			Err:       out.err,
			Coalesced: out.coalesced,
			Retries:   out.retries,
			Duration:  time.Since(start),
		}
		if out.coalesced && out.err == nil {
			m.noteCoalesced()
		}
		reuse = nil
		if out.snapValid {
			reuse = &out.snap
		}
	}
	return outs
}

// CloneNetwork takes a consistent deep clone of the managed network
// under the manager lock — the safe way for an external observer (a
// fault injector, the chaos harness) to read deployment state while
// admissions commit concurrently. Network() by contrast hands back the
// live object and is only safe when nothing is in flight.
func (m *Manager) CloneNetwork() *nfv.Network {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.net.Clone()
}

// snapshotCurrent reports whether the snapshot still describes the
// live network exactly — same network object, same graph generation,
// same deployment epoch. Under this predicate the clone's deployment
// state and metrics are bit-identical to the live network's, so a
// solve against it equals a solve against a fresh snapshot.
func (m *Manager) snapshotCurrent(snap *snapshot) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.net == snap.parent &&
		m.net.Graph().Generation() == snap.gen &&
		m.net.DeployEpoch() == snap.epoch
}

// noteCoalesced counts one admission that committed off a reused batch
// snapshot.
func (m *Manager) noteCoalesced() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.coalescedSolves++
	if m.met != nil {
		m.met.coalescedSolves.Inc()
	}
}
