package dynamic

import (
	"reflect"
	"sync"
	"testing"

	"math/rand"

	"sftree/internal/conformance"
	"sftree/internal/core"
	"sftree/internal/faults"
	"sftree/internal/netgen"
	"sftree/internal/nfv"
)

// checkIntegrity asserts the manager's reference counts are exactly
// the per-instance sums of the live sessions' usage lists, and that
// every counted instance is actually deployed. Call only when no
// operation is in flight.
func checkIntegrity(t *testing.T, m *Manager) {
	t.Helper()
	m.mu.Lock()
	defer m.mu.Unlock()
	want := make(map[[2]int]int)
	for _, sess := range m.sessions {
		for _, key := range sess.uses {
			want[key]++
		}
	}
	if !reflect.DeepEqual(want, m.refs) {
		t.Errorf("refcount conservation violated:\n  refs     = %v\n  from uses = %v", m.refs, want)
	}
	for key, n := range m.refs {
		if n <= 0 {
			t.Errorf("non-positive refcount %d for %v", n, key)
		}
		if !m.net.IsDeployed(key[0], key[1]) {
			t.Errorf("refs holds %v but the instance is not deployed", key)
		}
	}
}

// TestStressAdmitReleaseRebase hammers the optimistic admission path
// from many goroutines while a flapper concurrently fails and restores
// a link via Rebase — run with -race. Afterwards: no session may be
// lost, reference counts must be conserved, every live non-degraded
// session must re-validate on the final network, and releasing
// everything must leave the network clean.
func TestStressAdmitReleaseRebase(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	net, err := netgen.Generate(netgen.PaperConfig(40, 2), rng)
	if err != nil {
		t.Fatal(err)
	}
	// A narrow task mix repeats (source, chain) signatures across
	// goroutines, so the scaffold cache sees same-version concurrent
	// lookups, not just misses.
	const workers = 8
	const perWorker = 8
	tasks := make([][]nfv.Task, workers)
	for wi := range tasks {
		tasks[wi] = make([]nfv.Task, perWorker)
		for i := range tasks[wi] {
			task, err := netgen.GenerateTask(net, rng, 2+i%3, 2+i%2)
			if err != nil {
				t.Fatal(err)
			}
			tasks[wi][i] = task
		}
	}
	m := NewManager(net, core.Options{Parallelism: 2})
	st := faults.NewState(net)
	edge := net.Graph().Edge(0)

	stop := make(chan struct{})
	var flapWG sync.WaitGroup
	flapWG.Add(1)
	go func() {
		defer flapWG.Done()
		down := false
		for {
			select {
			case <-stop:
				if down {
					// Restore the link so the final validation runs against
					// the healed topology.
					_ = st.Apply(faults.Event{Kind: faults.LinkUp, U: edge.U, V: edge.V})
					if deg, err := st.Materialize(m.takeSnapshot().net); err == nil {
						m.Rebase(deg)
					}
				}
				return
			default:
			}
			kind := faults.LinkDown
			if down {
				kind = faults.LinkUp
			}
			if err := st.Apply(faults.Event{Kind: kind, U: edge.U, V: edge.V}); err != nil {
				continue
			}
			down = !down
			// Materialize from a consistent snapshot (the live network
			// mutates concurrently) and rebase the manager onto it.
			if deg, err := st.Materialize(m.takeSnapshot().net); err == nil {
				m.Rebase(deg)
			}
		}
	}()

	var wg sync.WaitGroup
	var mu sync.Mutex
	live := make(map[SessionID]bool)
	admitted, released := 0, 0
	errs := make(chan error, workers*perWorker)
	for wi := 0; wi < workers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			for i, task := range tasks[wi] {
				sess, err := m.Admit(task)
				if err != nil {
					continue // rejection under contention is legitimate
				}
				mu.Lock()
				admitted++
				mu.Unlock()
				if i%2 == 0 {
					if err := m.Release(sess.ID); err != nil {
						errs <- err
						continue
					}
					mu.Lock()
					released++
					mu.Unlock()
				} else {
					mu.Lock()
					live[sess.ID] = true
					mu.Unlock()
				}
			}
		}(wi)
	}
	wg.Wait()
	close(stop)
	flapWG.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("release: %v", err)
	}

	// Zero lost sessions: everything admitted is either released or
	// still live, and the manager agrees.
	if m.Active() != admitted-released {
		t.Errorf("active = %d, want admitted %d - released %d = %d",
			m.Active(), admitted, released, admitted-released)
	}
	for _, sess := range m.Sessions() {
		if !live[sess.ID] {
			t.Errorf("session %d live but never recorded as kept", sess.ID)
		}
	}
	checkIntegrity(t, m)

	// Every surviving non-degraded session must hold a deliverable
	// embedding on the final (healed) network.
	final := m.Network()
	for _, sess := range m.Sessions() {
		if sess.Degraded {
			continue
		}
		if err := conformance.CheckLive(final, sess.Result.Embedding); err != nil {
			t.Errorf("session %d: validate on final network: %v", sess.ID, err)
		}
	}

	// Drain and confirm the network ends clean.
	for _, sess := range m.Sessions() {
		if err := m.Release(sess.ID); err != nil {
			t.Errorf("final release %d: %v", sess.ID, err)
		}
	}
	if m.Active() != 0 {
		t.Errorf("%d sessions leaked", m.Active())
	}
	if m.LiveInstances() != 0 {
		t.Errorf("%d instances leaked", m.LiveInstances())
	}
	checkIntegrity(t, m)
}

// TestSingleClientMatchesSerialized proves the optimistic admission
// path is bit-identical to the fully serialized one when there is no
// concurrency: a shadow network driven by direct core.Solve calls (the
// pre-snapshot admission procedure) must produce the same embeddings,
// costs and rejections as the manager, and the manager must never
// conflict, retry or fall back.
func TestSingleClientMatchesSerialized(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	net, err := netgen.Generate(netgen.PaperConfig(30, 2), rng)
	if err != nil {
		t.Fatal(err)
	}
	shadow := net.Clone()
	m := NewManager(net, core.Options{})
	for i := 0; i < 12; i++ {
		task, err := netgen.GenerateTask(net, rng, 2+i%3, 2+i%2)
		if err != nil {
			t.Fatal(err)
		}
		want, wantErr := core.Solve(shadow, task, core.Options{})
		sess, gotErr := m.Admit(task)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("task %d: serialized err %v vs manager err %v", i, wantErr, gotErr)
		}
		if wantErr != nil {
			continue
		}
		if want.FinalCost != sess.Result.FinalCost {
			t.Errorf("task %d: cost %v != serialized %v", i, sess.Result.FinalCost, want.FinalCost)
		}
		if !reflect.DeepEqual(want.Embedding, sess.Result.Embedding) {
			t.Errorf("task %d: embedding differs from serialized solve", i)
		}
		for _, inst := range want.Embedding.NewInstances {
			if err := shadow.Deploy(inst.VNF, inst.Node); err != nil {
				t.Fatalf("task %d: shadow deploy: %v", i, err)
			}
		}
	}
	stats := m.Stats()
	if stats.CommitConflicts != 0 || stats.AdmitRetries != 0 || stats.SerializedFallbacks != 0 {
		t.Errorf("single client saw contention: %+v", stats)
	}
}
