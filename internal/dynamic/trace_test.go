package dynamic

import (
	"context"
	"testing"

	"sftree/internal/core"
	"sftree/internal/faults"
	"sftree/internal/nfv"
	"sftree/internal/obs"
)

// TestAdmitTraceCarriesRequestID: an admission through a traced
// manager must land in the ring as an "admit" trace stamped with the
// context's request ID and carrying the solver span tree — the
// end-to-end propagation path /debug/traces exposes.
func TestAdmitTraceCarriesRequestID(t *testing.T) {
	base := repairNet(t, 2)
	ring := obs.NewTraceBuffer(8)
	m := NewManager(base, core.Options{Parallelism: 2}).Trace(ring)

	ctx := obs.WithRequestID(context.Background(), "req-e2e-1")
	if _, err := m.AdmitCtx(ctx, nfv.Task{Source: 0, Destinations: []int{3, 4}, Chain: nfv.SFC{0}}); err != nil {
		t.Fatal(err)
	}
	traces := ring.Snapshot()
	if len(traces) != 1 {
		t.Fatalf("ring holds %d traces, want 1", len(traces))
	}
	tr := traces[0]
	if tr.Op != "admit" || tr.RequestID != "req-e2e-1" {
		t.Errorf("trace op=%q request_id=%q, want admit/req-e2e-1", tr.Op, tr.RequestID)
	}
	if tr.Parallelism != 2 {
		t.Errorf("trace parallelism = %d, want 2", tr.Parallelism)
	}
	if len(tr.Spans) == 0 || tr.Err != "" {
		t.Errorf("trace spans=%d err=%q, want a span tree and no error", len(tr.Spans), tr.Err)
	}

	// A rejected admission still traces, with the error attached.
	if _, err := m.AdmitCtx(ctx, nfv.Task{Source: 0, Destinations: []int{2}, Chain: nfv.SFC{0}}); err == nil {
		t.Fatal("admission to isolated node accepted")
	}
	traces = ring.Snapshot()
	if len(traces) != 2 || traces[1].Err == "" {
		t.Fatalf("rejection not traced: %+v", traces)
	}
}

// TestRepairTracesCarryRung: repair-ladder solves record one trace per
// rung attempt, stamped with the rung name and the session they were
// repairing (request ID empty — repairs originate from Rebase, not a
// request).
func TestRepairTracesCarryRung(t *testing.T) {
	base := repairNet(t, 2)
	ring := obs.NewTraceBuffer(8)
	m := NewManager(base, core.Options{}).Trace(ring)

	sess, err := m.Admit(nfv.Task{Source: 0, Destinations: []int{3, 4}, Chain: nfv.SFC{0}})
	if err != nil {
		t.Fatal(err)
	}
	// Cut 1-4: destination 4 re-routes over 0-4 — the patch rung.
	rep := rebaseAfter(t, m, base, faults.Event{Kind: faults.LinkDown, U: 1, V: 4})
	if rep.Patched != 1 {
		t.Fatalf("report %+v, want one patched session", rep)
	}

	var repairs []obs.Trace
	for _, tr := range ring.Snapshot() {
		if tr.Op == "repair" {
			repairs = append(repairs, tr)
		}
	}
	if len(repairs) == 0 {
		t.Fatal("no repair traces recorded")
	}
	found := false
	for _, tr := range repairs {
		if tr.Rung == "patch" && tr.Session == int(sess.ID) {
			found = true
			if tr.RequestID != "" {
				t.Errorf("repair trace carries request ID %q, want none", tr.RequestID)
			}
			if len(tr.Spans) == 0 {
				t.Error("repair trace has no spans")
			}
		}
	}
	if !found {
		t.Errorf("no patch-rung trace for session %d in %+v", sess.ID, repairs)
	}
}

// TestUntracedManagerPaysNothing: without Trace, the admission path
// must not install any observer (the solver's nil-observer fast path).
func TestUntracedManagerPaysNothing(t *testing.T) {
	base := repairNet(t, 2)
	m := NewManager(base, core.Options{})
	if _, err := m.Admit(nfv.Task{Source: 0, Destinations: []int{3}, Chain: nfv.SFC{0}}); err != nil {
		t.Fatal(err)
	}
	if m.opts.Observer != nil {
		t.Error("untraced manager mutated its base options observer")
	}
}
