package dynamic

import (
	"math/rand"
	"sync"
	"testing"

	"sftree/internal/core"
	"sftree/internal/netgen"
	"sftree/internal/nfv"
)

// TestConcurrentAdmitRelease hammers the manager from many goroutines;
// run with -race to catch synchronization bugs. Every admitted session
// is released, so the network must end clean.
func TestConcurrentAdmitRelease(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	net, err := netgen.Generate(netgen.PaperConfig(40, 2), rng)
	if err != nil {
		t.Fatal(err)
	}
	tasks := make([]nfv.Task, 16)
	for i := range tasks {
		task, err := netgen.GenerateTask(net, rng, 2+i%3, 2+i%2)
		if err != nil {
			t.Fatal(err)
		}
		tasks[i] = task
	}
	m := NewManager(net, core.Options{})

	var wg sync.WaitGroup
	errs := make(chan error, len(tasks))
	for _, task := range tasks {
		wg.Add(1)
		go func(task nfv.Task) {
			defer wg.Done()
			sess, err := m.Admit(task)
			if err != nil {
				return // rejection under races is acceptable
			}
			_ = m.Active() // concurrent reads
			if err := m.Release(sess.ID); err != nil {
				errs <- err
			}
		}(task)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("release: %v", err)
	}
	if m.Active() != 0 {
		t.Errorf("%d sessions leaked", m.Active())
	}
	if m.LiveInstances() != 0 {
		t.Errorf("%d instances leaked", m.LiveInstances())
	}
	stats := m.Stats()
	if stats.Admitted+stats.Rejected != len(tasks) {
		t.Errorf("stats = %+v, want %d total", stats, len(tasks))
	}
}
