package faults

import "sync/atomic"

// Per-down-set APSP cache traffic. A hit is a Materialize-d network
// whose metric lookup was served without running APSP for that
// degraded view: either the pristine-topology passthrough to the base
// network's closure or the per-signature cache. A miss built a fresh
// closure for a down-set seen for the first time (or evicted). The
// counters are process-global across all States, mirroring
// nfv.MetricCacheStats one layer down.
var apspHits, apspMisses atomic.Int64

// CacheStats reports the cumulative per-down-set APSP cache traffic
// across every faults.State in the process.
func CacheStats() (hits, misses int64) {
	return apspHits.Load(), apspMisses.Load()
}
