package faults

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"sftree/internal/graph"
	"sftree/internal/netgen"
	"sftree/internal/nfv"
)

// testNet builds a 4-node diamond: 0-1, 0-2, 1-3, 2-3, servers at 1
// and 2 (capacity 2), one VNF deployed at node 1.
func testNet(t *testing.T) *nfv.Network {
	t.Helper()
	g := graph.New(4)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(0, 2, 1)
	g.MustAddEdge(1, 3, 1)
	g.MustAddEdge(2, 3, 1)
	net := nfv.NewNetwork(g, []nfv.VNF{{ID: 0, Name: "f0", Demand: 1}})
	for _, v := range []int{1, 2} {
		if err := net.SetServer(v, 2); err != nil {
			t.Fatal(err)
		}
		if err := net.SetSetupCost(0, v, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := net.Deploy(0, 1); err != nil {
		t.Fatal(err)
	}
	return net
}

func TestLinkDownUpMaterialize(t *testing.T) {
	base := testNet(t)
	st := NewState(base)
	if err := st.Apply(Event{Kind: LinkDown, U: 1, V: 3}); err != nil {
		t.Fatal(err)
	}
	if !st.LinkIsDown(3, 1) {
		t.Fatal("canonical link-down query failed")
	}
	degraded, err := st.Materialize(base)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := degraded.Graph().HasEdge(1, 3); ok {
		t.Fatal("failed link survived materialization")
	}
	if _, ok := degraded.Graph().HasEdge(0, 1); !ok {
		t.Fatal("healthy link dropped")
	}
	if !degraded.IsDeployed(0, 1) {
		t.Fatal("deployment not carried over")
	}
	// Heal and re-materialize: full topology returns.
	if err := st.Apply(Event{Kind: LinkUp, U: 1, V: 3}); err != nil {
		t.Fatal(err)
	}
	healed, err := st.Materialize(degraded)
	if err != nil {
		t.Fatal(err)
	}
	if healed.Graph().NumEdges() != base.Graph().NumEdges() {
		t.Fatalf("healed network has %d edges, want %d", healed.Graph().NumEdges(), base.Graph().NumEdges())
	}
}

func TestNodeCrashKillsInstancesAndLinks(t *testing.T) {
	base := testNet(t)
	st := NewState(base)
	if err := st.Apply(Event{Kind: NodeDown, Node: 1}); err != nil {
		t.Fatal(err)
	}
	degraded, err := st.Materialize(base)
	if err != nil {
		t.Fatal(err)
	}
	if degraded.IsServer(1) {
		t.Fatal("crashed node still a server")
	}
	if degraded.IsDeployed(0, 1) {
		t.Fatal("instance survived its node's crash")
	}
	if _, ok := degraded.Graph().HasEdge(0, 1); ok {
		t.Fatal("crashed node kept an incident link")
	}
	// Recovery restores topology and capacity but NOT the lost instance.
	if err := st.Apply(Event{Kind: NodeUp, Node: 1}); err != nil {
		t.Fatal(err)
	}
	healed, err := st.Materialize(degraded)
	if err != nil {
		t.Fatal(err)
	}
	if !healed.IsServer(1) || healed.Capacity(1) != 2 {
		t.Fatal("recovered node lost its server role or capacity")
	}
	if healed.IsDeployed(0, 1) {
		t.Fatal("crashed instance resurrected on node recovery")
	}
}

func TestInstanceKillIsOneShot(t *testing.T) {
	base := testNet(t)
	st := NewState(base)
	if err := st.Apply(Event{Kind: InstanceDown, VNF: 0, Node: 1}); err != nil {
		t.Fatal(err)
	}
	degraded, err := st.Materialize(base)
	if err != nil {
		t.Fatal(err)
	}
	if degraded.IsDeployed(0, 1) {
		t.Fatal("killed instance survived")
	}
	// Re-deploy and re-materialize: the kill must not repeat.
	if err := degraded.Deploy(0, 1); err != nil {
		t.Fatal(err)
	}
	again, err := st.Materialize(degraded)
	if err != nil {
		t.Fatal(err)
	}
	if !again.IsDeployed(0, 1) {
		t.Fatal("one-shot kill repeated on the next materialization")
	}
}

func TestApplyRejectsBadEvents(t *testing.T) {
	st := NewState(testNet(t))
	for _, ev := range []Event{
		{Kind: LinkDown, U: 0, V: 3}, // not an edge
		{Kind: NodeDown, Node: 9},    // out of range
		{Kind: InstanceDown, VNF: 5}, // unknown VNF
		{Kind: Kind(99)},             // unknown kind
	} {
		if err := st.Apply(ev); !errors.Is(err, ErrBadEvent) {
			t.Errorf("Apply(%v) = %v, want ErrBadEvent", ev, err)
		}
	}
}

func TestScheduleRoundTrip(t *testing.T) {
	sched := &Schedule{Seed: 42, Events: []Event{
		{Kind: LinkDown, U: 1, V: 3},
		{Kind: InstanceDown, VNF: 0, Node: 1},
		{Kind: LinkUp, U: 1, V: 3},
	}}
	var buf bytes.Buffer
	if err := sched.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seed != 42 || len(got.Events) != 3 {
		t.Fatalf("round trip lost data: %+v", got)
	}
	for i := range sched.Events {
		if got.Events[i] != sched.Events[i] {
			t.Fatalf("event %d: %+v != %+v", i, got.Events[i], sched.Events[i])
		}
	}
	if _, err := Load(bytes.NewReader([]byte(`{"events":[{"kind":"meteor"}]}`))); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestGenerateIsSeededAndValid(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	net, err := netgen.Generate(netgen.PaperConfig(30, 2), rng)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Generate(net, DefaultGenConfig(40), rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(net, DefaultGenConfig(40), rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Events) != 40 || len(b.Events) != 40 {
		t.Fatalf("lengths %d, %d", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("same seed diverged at event %d: %+v vs %+v", i, a.Events[i], b.Events[i])
		}
	}
	// Every generated event must apply cleanly.
	st := NewState(net)
	for _, ev := range a.Events {
		if err := st.Apply(ev); err != nil {
			t.Fatalf("generated event %v invalid: %v", ev, err)
		}
	}
	if _, err := st.Materialize(net); err != nil {
		t.Fatal(err)
	}
}

func TestReplayerSteps(t *testing.T) {
	base := testNet(t)
	sched := &Schedule{Events: []Event{
		{Kind: LinkDown, U: 1, V: 3},
		{Kind: LinkDown, U: 2, V: 3},
		{Kind: LinkUp, U: 1, V: 3},
	}}
	r := NewReplayer(base, sched)
	cur := base
	steps := 0
	for !r.Done() {
		ev, net, err := r.Step(cur)
		if err != nil {
			t.Fatalf("step %d (%v): %v", steps, ev, err)
		}
		cur = net
		steps++
	}
	if steps != 3 || r.Remaining() != 0 {
		t.Fatalf("steps=%d remaining=%d", steps, r.Remaining())
	}
	if r.State().DownLinks() != 1 {
		t.Fatalf("down links = %d, want 1", r.State().DownLinks())
	}
	if _, _, err := r.Step(cur); err == nil {
		t.Fatal("stepping an exhausted replayer succeeded")
	}
}
