package faults

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"sftree/internal/netgen"
)

// TestReplayerEmptySchedule: a zero-event scenario is legal — the
// replayer is born done, and stepping it reports schedule exhaustion
// rather than panicking or fabricating events.
func TestReplayerEmptySchedule(t *testing.T) {
	base := testNet(t)
	r := NewReplayer(base, &Schedule{})
	if !r.Done() || r.Remaining() != 0 {
		t.Fatalf("empty schedule: done=%v remaining=%d", r.Done(), r.Remaining())
	}
	if _, _, err := r.Step(base); !errors.Is(err, ErrBadSchedule) {
		t.Fatalf("step on empty schedule: err=%v, want ErrBadSchedule", err)
	}
	if r.State().DownLinks() != 0 || r.State().DownNodes() != 0 {
		t.Fatal("empty schedule accumulated fault state")
	}
}

// TestReplayerDuplicateDownIsIdempotent: downing the same element
// twice must not double-count it — one recovery heals it fully.
func TestReplayerDuplicateDownIsIdempotent(t *testing.T) {
	base := testNet(t)
	sched := &Schedule{Events: []Event{
		{Kind: LinkDown, U: 1, V: 3},
		{Kind: LinkDown, U: 1, V: 3}, // duplicate
		{Kind: NodeDown, Node: 2},
		{Kind: NodeDown, Node: 2}, // duplicate
	}}
	r := NewReplayer(base, sched)
	cur := base
	for !r.Done() {
		var err error
		if _, cur, err = r.Step(cur); err != nil {
			t.Fatal(err)
		}
	}
	if got := r.State().DownLinks(); got != 1 {
		t.Fatalf("down links after duplicate downs = %d, want 1", got)
	}
	if got := r.State().DownNodes(); got != 1 {
		t.Fatalf("down nodes after duplicate downs = %d, want 1", got)
	}
	// One up each heals everything.
	for _, ev := range []Event{{Kind: LinkUp, U: 1, V: 3}, {Kind: NodeUp, Node: 2}} {
		if err := r.State().Apply(ev); err != nil {
			t.Fatal(err)
		}
	}
	if r.State().DownLinks() != 0 || r.State().DownNodes() != 0 {
		t.Fatalf("recovery after duplicate downs left %d links, %d nodes down",
			r.State().DownLinks(), r.State().DownNodes())
	}
	net, err := r.State().Materialize(base)
	if err != nil {
		t.Fatal(err)
	}
	if net.Graph().NumEdges() != base.Graph().NumEdges() {
		t.Fatalf("healed network has %d edges, base %d", net.Graph().NumEdges(), base.Graph().NumEdges())
	}
}

// TestReplayerUpBeforeDown: recovering an element that was never down
// applies cleanly (idempotent no-op) and leaves the substrate whole.
func TestReplayerUpBeforeDown(t *testing.T) {
	base := testNet(t)
	sched := &Schedule{Events: []Event{
		{Kind: LinkUp, U: 0, V: 1},
		{Kind: NodeUp, Node: 1},
		{Kind: LinkDown, U: 1, V: 3},
	}}
	r := NewReplayer(base, sched)
	cur := base
	steps := 0
	for !r.Done() {
		var err error
		if _, cur, err = r.Step(cur); err != nil {
			t.Fatalf("step %d: %v", steps, err)
		}
		steps++
	}
	if steps != 3 {
		t.Fatalf("applied %d events, want 3", steps)
	}
	if got := r.State().DownLinks(); got != 1 {
		t.Fatalf("down links = %d, want only the real fault", got)
	}
	// The spurious ups must not have resurrected or duplicated anything.
	if cur.Graph().NumEdges() != base.Graph().NumEdges()-1 {
		t.Fatalf("degraded network has %d edges, want %d", cur.Graph().NumEdges(), base.Graph().NumEdges()-1)
	}
	// An up for a link absent from the base network is still an error.
	if err := r.State().Apply(Event{Kind: LinkUp, U: 0, V: 3}); !errors.Is(err, ErrBadEvent) {
		t.Fatalf("up for a non-existent link: err=%v, want ErrBadEvent", err)
	}
}

// TestScheduleRoundTripThroughReplayer: a generated schedule survives
// Save/Load byte-for-byte, and replaying the loaded copy reproduces
// the original's fault state exactly.
func TestScheduleRoundTripThroughReplayer(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	net, err := netgen.Generate(netgen.PaperConfig(24, 2), rng)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := Generate(net, DefaultGenConfig(30), rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	sched.Seed = 3
	var buf bytes.Buffer
	if err := sched.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Seed != sched.Seed || len(loaded.Events) != len(sched.Events) {
		t.Fatalf("round trip lost data: %d events seed %d", len(loaded.Events), loaded.Seed)
	}
	for i := range sched.Events {
		if loaded.Events[i] != sched.Events[i] {
			t.Fatalf("event %d changed in round trip: %+v != %+v", i, loaded.Events[i], sched.Events[i])
		}
	}
	a, b := NewReplayer(net, sched), NewReplayer(net, loaded)
	curA, curB := net, net
	for !a.Done() {
		if _, curA, err = a.Step(curA); err != nil {
			t.Fatal(err)
		}
		if _, curB, err = b.Step(curB); err != nil {
			t.Fatal(err)
		}
	}
	if !b.Done() {
		t.Fatal("loaded replay finished early")
	}
	if a.State().DownLinks() != b.State().DownLinks() || a.State().DownNodes() != b.State().DownNodes() {
		t.Fatalf("replays diverged: %d/%d links, %d/%d nodes down",
			a.State().DownLinks(), b.State().DownLinks(), a.State().DownNodes(), b.State().DownNodes())
	}
	if curA.Graph().NumEdges() != curB.Graph().NumEdges() {
		t.Fatalf("materialized networks diverged: %d vs %d edges",
			curA.Graph().NumEdges(), curB.Graph().NumEdges())
	}
}
