package faults

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"

	"sftree/internal/nfv"
)

// ErrBadSchedule reports an unparsable or inconsistent scenario file.
var ErrBadSchedule = errors.New("faults: invalid schedule")

// Schedule is an ordered fault scenario. Scenario files are plain JSON
// ({"seed": ..., "events": [{"kind": "link_down", "u": 3, "v": 7},
// ...]}), so they can be written by hand, generated seeded, or
// captured from production and replayed.
type Schedule struct {
	// Seed records the generator seed for provenance (0 for
	// hand-written scenarios).
	Seed int64 `json:"seed,omitempty"`
	// Events apply in order.
	Events []Event `json:"events"`
}

// Save writes the schedule as indented JSON.
func (s *Schedule) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// Load parses a JSON scenario file.
func Load(r io.Reader) (*Schedule, error) {
	var s Schedule
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSchedule, err)
	}
	return &s, nil
}

// GenConfig tunes seeded schedule generation. Weights select the fault
// kind per event; a recovery event (link/node up) is drawn with
// RecoverProb whenever something is down, keeping long schedules from
// eroding the whole substrate.
type GenConfig struct {
	// Events is the schedule length.
	Events int
	// LinkWeight, NodeWeight and InstanceWeight are the relative
	// frequencies of the three fault classes (zero-sum falls back to
	// links only).
	LinkWeight, NodeWeight, InstanceWeight float64
	// RecoverProb is the chance an event heals an existing fault
	// instead of injecting a new one (when anything is down).
	RecoverProb float64
	// MaxDownLinks and MaxDownNodes cap concurrent damage; a new fault
	// drawn past the cap becomes a recovery instead. Zero means a
	// tenth of the element count (at least one).
	MaxDownLinks, MaxDownNodes int
}

// DefaultGenConfig returns a link-heavy mix: 70% link faults, 15% node
// crashes, 15% instance kills, 30% recovery pressure.
func DefaultGenConfig(events int) GenConfig {
	return GenConfig{
		Events:         events,
		LinkWeight:     0.7,
		NodeWeight:     0.15,
		InstanceWeight: 0.15,
		RecoverProb:    0.3,
	}
}

// Generate draws a seeded fault schedule valid for the network: link
// events name real links, node events name real nodes, instance kills
// prefer instances deployed in the base network. All randomness flows
// through rng, so schedules are reproducible from the seed.
func Generate(net *nfv.Network, cfg GenConfig, rng *rand.Rand) (*Schedule, error) {
	if cfg.Events <= 0 {
		return nil, fmt.Errorf("%w: %d events", ErrBadSchedule, cfg.Events)
	}
	edges := net.Graph().Edges()
	servers := net.Servers()
	if len(edges) == 0 || len(servers) == 0 {
		return nil, fmt.Errorf("%w: network has %d edges, %d servers", ErrBadSchedule, len(edges), len(servers))
	}
	maxLinks := cfg.MaxDownLinks
	if maxLinks <= 0 {
		maxLinks = max(1, len(edges)/10)
	}
	maxNodes := cfg.MaxDownNodes
	if maxNodes <= 0 {
		maxNodes = max(1, net.NumNodes()/10)
	}
	wl, wn, wi := cfg.LinkWeight, cfg.NodeWeight, cfg.InstanceWeight
	if wl+wn+wi <= 0 {
		wl = 1
	}

	var deployed [][2]int
	for f := 0; f < net.CatalogSize(); f++ {
		for v := 0; v < net.NumNodes(); v++ {
			if net.IsDeployed(f, v) {
				deployed = append(deployed, [2]int{f, v})
			}
		}
	}

	sched := &Schedule{Events: make([]Event, 0, cfg.Events)}
	// Down-sets are kept as slices (plus membership maps) so recovery
	// picks are deterministic under the injected rng; map iteration
	// order would break same-seed reproducibility.
	linkDown := make(map[[2]int]bool)
	nodeDown := make(map[int]bool)
	var downLinks [][2]int
	var downNodes []int

	for len(sched.Events) < cfg.Events {
		somethingDown := len(downLinks)+len(downNodes) > 0
		if somethingDown && rng.Float64() < cfg.RecoverProb {
			if len(downLinks) > 0 && (len(downNodes) == 0 || rng.Intn(2) == 0) {
				i := rng.Intn(len(downLinks))
				l := downLinks[i]
				downLinks[i] = downLinks[len(downLinks)-1]
				downLinks = downLinks[:len(downLinks)-1]
				delete(linkDown, l)
				sched.Events = append(sched.Events, Event{Kind: LinkUp, U: l[0], V: l[1]})
			} else {
				i := rng.Intn(len(downNodes))
				v := downNodes[i]
				downNodes[i] = downNodes[len(downNodes)-1]
				downNodes = downNodes[:len(downNodes)-1]
				delete(nodeDown, v)
				sched.Events = append(sched.Events, Event{Kind: NodeUp, Node: v})
			}
			continue
		}
		switch r := rng.Float64() * (wl + wn + wi); {
		case r < wl:
			if len(downLinks) >= maxLinks {
				continue
			}
			e := edges[rng.Intn(len(edges))]
			key := canonLink(e.U, e.V)
			if linkDown[key] {
				continue
			}
			linkDown[key] = true
			downLinks = append(downLinks, key)
			sched.Events = append(sched.Events, Event{Kind: LinkDown, U: key[0], V: key[1]})
		case r < wl+wn:
			if len(downNodes) >= maxNodes {
				continue
			}
			v := servers[rng.Intn(len(servers))]
			if nodeDown[v] {
				continue
			}
			nodeDown[v] = true
			downNodes = append(downNodes, v)
			sched.Events = append(sched.Events, Event{Kind: NodeDown, Node: v})
		default:
			if len(deployed) == 0 {
				continue
			}
			kv := deployed[rng.Intn(len(deployed))]
			sched.Events = append(sched.Events, Event{Kind: InstanceDown, VNF: kv[0], Node: kv[1]})
		}
	}
	return sched, nil
}

// Replayer steps a schedule through a State, materializing the
// degraded network after every event.
type Replayer struct {
	state  *State
	events []Event
	next   int
}

// NewReplayer prepares a replay of sched against the base network.
func NewReplayer(base *nfv.Network, sched *Schedule) *Replayer {
	return &Replayer{state: NewState(base), events: sched.Events}
}

// State exposes the accumulated fault state (for queries and reports).
func (r *Replayer) State() *State { return r.state }

// Done reports whether every event has been replayed.
func (r *Replayer) Done() bool { return r.next >= len(r.events) }

// Remaining returns the number of unapplied events.
func (r *Replayer) Remaining() int { return len(r.events) - r.next }

// Step applies the next event and materializes the degraded network,
// carrying deployments over from deployFrom (see State.Materialize).
func (r *Replayer) Step(deployFrom *nfv.Network) (Event, *nfv.Network, error) {
	if r.Done() {
		return Event{}, nil, fmt.Errorf("%w: schedule exhausted", ErrBadSchedule)
	}
	ev := r.events[r.next]
	r.next++
	if err := r.state.Apply(ev); err != nil {
		return ev, nil, err
	}
	net, err := r.state.Materialize(deployFrom)
	return ev, net, err
}
