// Package faults models substrate failures for the NFV network: links
// going down and coming back, server nodes crashing and recovering,
// and individual VNF instances dying. The paper embeds SFTs on a
// static substrate; the dynamic setting its related work points at
// (service overlay forests, re-embedding under substrate change) needs
// an explicit failure model to exercise recovery.
//
// The model is deterministic and replayable: a State accumulates fault
// events and materializes the *degraded* network they imply — a fresh
// nfv.Network over the surviving topology, carrying over the current
// deployment state minus whatever died. Schedules of events are
// seeded, serializable to JSON scenario files, and driven by a
// Replayer (see schedule.go), so a chaos run is reproducible bit for
// bit from its seed.
package faults

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"sftree/internal/graph"
	"sftree/internal/nfv"
)

var (
	// ErrBadEvent reports an event referencing elements outside the
	// base network.
	ErrBadEvent = errors.New("faults: invalid event")
)

// Kind classifies a fault event.
type Kind int

// Fault kinds. Down events are idempotent (downing a dead link is a
// no-op), as are their up counterparts.
const (
	// LinkDown removes the link {U,V} from the substrate.
	LinkDown Kind = iota + 1
	// LinkUp restores a previously failed link.
	LinkUp
	// NodeDown crashes node Node: all incident links vanish and, if it
	// is a server, every VNF instance on it dies with it.
	NodeDown
	// NodeUp restores a crashed node (its links return; instances lost
	// in the crash stay lost until re-deployed).
	NodeUp
	// InstanceDown kills the running instance of VNF on Node without
	// touching the topology. One-shot: the slot is immediately free
	// for re-deployment.
	InstanceDown
)

var kindNames = map[Kind]string{
	LinkDown:     "link_down",
	LinkUp:       "link_up",
	NodeDown:     "node_down",
	NodeUp:       "node_up",
	InstanceDown: "instance_down",
}

// String names the kind for logs and scenario files.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// MarshalJSON encodes the kind by name, keeping scenario files
// human-editable.
func (k Kind) MarshalJSON() ([]byte, error) { return json.Marshal(k.String()) }

// UnmarshalJSON decodes a kind name.
func (k *Kind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	for kk, name := range kindNames {
		if name == s {
			*k = kk
			return nil
		}
	}
	return fmt.Errorf("%w: unknown kind %q", ErrBadEvent, s)
}

// Event is one substrate change. Link events use U/V; node events use
// Node; instance events use VNF and Node.
type Event struct {
	Kind Kind `json:"kind"`
	U    int  `json:"u,omitempty"`
	V    int  `json:"v,omitempty"`
	Node int  `json:"node,omitempty"`
	VNF  int  `json:"vnf,omitempty"`
}

// String renders the event for logs.
func (e Event) String() string {
	switch e.Kind {
	case LinkDown, LinkUp:
		return fmt.Sprintf("%s %d-%d", e.Kind, e.U, e.V)
	case NodeDown, NodeUp:
		return fmt.Sprintf("%s %d", e.Kind, e.Node)
	case InstanceDown:
		return fmt.Sprintf("%s vnf=%d node=%d", e.Kind, e.VNF, e.Node)
	default:
		return e.Kind.String()
	}
}

// State accumulates applied fault events against a base network and
// materializes the degraded substrate they imply. The base network is
// the pristine topology reference and is never mutated.
type State struct {
	base      *nfv.Network
	downLinks map[[2]int]bool
	downNodes map[int]bool
	// kills holds instance crashes applied since the last Materialize;
	// they are one-shot (consumed by the next materialization).
	kills [][2]int // (vnf, node)
	// metricCache shares one APSP closure across materializations of
	// the same degraded topology, keyed by the canonical down-set.
	// Deployments and kills never change distances, so a fault-flap
	// sequence (down, up, down ...) re-solves on a warm metric instead
	// of paying an APSP rebuild per Materialize.
	metricMu    sync.Mutex
	metricCache map[string]*graph.Metric
}

// NewState tracks faults against the given pristine network.
func NewState(base *nfv.Network) *State {
	return &State{
		base:        base,
		downLinks:   make(map[[2]int]bool),
		downNodes:   make(map[int]bool),
		metricCache: make(map[string]*graph.Metric),
	}
}

// topoSignature canonically encodes the current down-set; states with
// equal signatures materialize identical graphs (same edges in the
// same order with the same costs), so their metrics are shareable.
func (s *State) topoSignature() string {
	nodes := make([]int, 0, len(s.downNodes))
	for v := range s.downNodes {
		nodes = append(nodes, v)
	}
	sort.Ints(nodes)
	links := make([][2]int, 0, len(s.downLinks))
	for l := range s.downLinks {
		links = append(links, l)
	}
	sort.Slice(links, func(i, j int) bool {
		if links[i][0] != links[j][0] {
			return links[i][0] < links[j][0]
		}
		return links[i][1] < links[j][1]
	})
	var b strings.Builder
	for _, v := range nodes {
		fmt.Fprintf(&b, "n%d;", v)
	}
	for _, l := range links {
		fmt.Fprintf(&b, "l%d-%d;", l[0], l[1])
	}
	return b.String()
}

func canonLink(u, v int) [2]int {
	if u > v {
		u, v = v, u
	}
	return [2]int{u, v}
}

// Apply records one fault event, validating it against the base
// topology. Down/up events are idempotent.
func (s *State) Apply(ev Event) error {
	n := s.base.NumNodes()
	switch ev.Kind {
	case LinkDown, LinkUp:
		if _, ok := s.base.Graph().HasEdge(ev.U, ev.V); !ok {
			return fmt.Errorf("%w: no link %d-%d in the base network", ErrBadEvent, ev.U, ev.V)
		}
		if ev.Kind == LinkDown {
			s.downLinks[canonLink(ev.U, ev.V)] = true
		} else {
			delete(s.downLinks, canonLink(ev.U, ev.V))
		}
	case NodeDown, NodeUp:
		if ev.Node < 0 || ev.Node >= n {
			return fmt.Errorf("%w: node %d out of range", ErrBadEvent, ev.Node)
		}
		if ev.Kind == NodeDown {
			s.downNodes[ev.Node] = true
		} else {
			delete(s.downNodes, ev.Node)
		}
	case InstanceDown:
		if ev.Node < 0 || ev.Node >= n {
			return fmt.Errorf("%w: node %d out of range", ErrBadEvent, ev.Node)
		}
		if _, err := s.base.VNF(ev.VNF); err != nil {
			return fmt.Errorf("%w: %v", ErrBadEvent, err)
		}
		s.kills = append(s.kills, [2]int{ev.VNF, ev.Node})
	default:
		return fmt.Errorf("%w: kind %d", ErrBadEvent, int(ev.Kind))
	}
	return nil
}

// LinkIsDown reports whether the link {u,v} is currently failed.
func (s *State) LinkIsDown(u, v int) bool { return s.downLinks[canonLink(u, v)] }

// NodeIsDown reports whether the node is currently crashed.
func (s *State) NodeIsDown(v int) bool { return s.downNodes[v] }

// DownLinks returns the number of currently failed links.
func (s *State) DownLinks() int { return len(s.downLinks) }

// DownNodes returns the number of currently crashed nodes.
func (s *State) DownNodes() int { return len(s.downNodes) }

// Materialize builds the degraded network: the base topology minus
// failed links and crashed nodes (with their incident links), carrying
// over every VNF deployment of deployFrom that survives — instances on
// crashed nodes and instances killed since the last materialization
// are dropped. deployFrom is typically the network currently managed
// by a dynamic.Manager, so sessions' installed instances persist
// across substrate changes; pass the base network for a cold start.
// Pending instance kills are consumed.
func (s *State) Materialize(deployFrom *nfv.Network) (*nfv.Network, error) {
	if deployFrom.NumNodes() != s.base.NumNodes() {
		return nil, fmt.Errorf("faults: deployment source has %d nodes, base %d",
			deployFrom.NumNodes(), s.base.NumNodes())
	}
	g := graph.New(s.base.NumNodes())
	type bound struct {
		u, v, copies int
	}
	var bounds []bound
	for _, e := range s.base.Graph().Edges() {
		if s.downLinks[canonLink(e.U, e.V)] || s.downNodes[e.U] || s.downNodes[e.V] {
			continue
		}
		if _, err := g.AddEdge(e.U, e.V, e.Cost); err != nil {
			return nil, fmt.Errorf("faults: rebuild: %w", err)
		}
		if c := s.base.LinkCapacity(e.U, e.V); c > 0 {
			bounds = append(bounds, bound{e.U, e.V, c})
		}
	}

	net := nfv.NewNetwork(g, s.base.Catalog())
	if coords := s.base.Coords(); coords != nil {
		net.SetCoords(coords)
	}
	for _, v := range s.base.Servers() {
		if s.downNodes[v] {
			continue
		}
		if err := net.SetServer(v, s.base.Capacity(v)); err != nil {
			return nil, err
		}
		for f := 0; f < s.base.CatalogSize(); f++ {
			if err := net.SetSetupCost(f, v, s.base.RawSetupCost(f, v)); err != nil {
				return nil, err
			}
		}
	}
	for _, b := range bounds {
		if err := net.SetLinkCapacity(b.u, b.v, b.copies); err != nil {
			return nil, err
		}
	}

	// Metric reuse: a pristine down-set reproduces the base topology
	// exactly, so the base network's own cached metric applies; any
	// other down-set is served from the per-signature cache, built on
	// first demand against this materialization's graph.
	if len(s.downLinks) == 0 && len(s.downNodes) == 0 {
		// A pristine down-set is served by the base network's own metric;
		// count it as a cache hit — no APSP runs for this materialization.
		net.SetMetricSupplier(func() *graph.Metric {
			apspHits.Add(1)
			return s.base.Metric()
		})
	} else {
		sig, gg := s.topoSignature(), g
		net.SetMetricSupplier(func() *graph.Metric {
			s.metricMu.Lock()
			defer s.metricMu.Unlock()
			if m, ok := s.metricCache[sig]; ok {
				apspHits.Add(1)
				return m
			}
			apspMisses.Add(1)
			// Bound the cache: a long chaos run can visit many distinct
			// down-sets, and each closure is O(n^2) memory.
			if len(s.metricCache) >= 64 {
				s.metricCache = make(map[string]*graph.Metric)
			}
			m := gg.APSPAuto()
			s.metricCache[sig] = m
			return m
		})
	}

	killed := make(map[[2]int]bool, len(s.kills))
	for _, kv := range s.kills {
		killed[kv] = true
	}
	s.kills = nil
	for f := 0; f < s.base.CatalogSize(); f++ {
		for v := 0; v < s.base.NumNodes(); v++ {
			if !deployFrom.IsDeployed(f, v) || s.downNodes[v] || killed[[2]int{f, v}] {
				continue
			}
			if err := net.Deploy(f, v); err != nil {
				return nil, fmt.Errorf("faults: carry deployment vnf=%d node=%d: %w", f, v, err)
			}
		}
	}
	return net, nil
}
