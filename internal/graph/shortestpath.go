package graph

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ShortestPathTree is the result of a single-source shortest-path
// computation: per-node distance from the source and the parent node on
// one shortest path (-1 for the source itself and unreachable nodes).
type ShortestPathTree struct {
	Src    int
	Dist   []float64
	Parent []int
}

// PathTo reconstructs the node sequence from the tree's source to v,
// inclusive of both endpoints. It returns nil if v is unreachable.
func (t *ShortestPathTree) PathTo(v int) []int {
	if v < 0 || v >= len(t.Dist) || t.Dist[v] == Inf {
		return nil
	}
	var rev []int
	for x := v; x != -1; x = t.Parent[x] {
		rev = append(rev, x)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// Dijkstra computes shortest paths from src to every node. The
// traversal runs over the cached CSR form with a pooled heap; arc
// order matches the adjacency lists, so tie-breaking is identical to
// the historical slice-of-slices implementation.
func (g *Graph) Dijkstra(src int) *ShortestPathTree {
	c := g.CSR()
	dist := make([]float64, c.N)
	parent := make([]int, c.N)
	sc := getScratch(0)
	csrDijkstra(c, src, dist, parent, &sc.heap)
	putScratch(sc)
	return &ShortestPathTree{Src: src, Dist: dist, Parent: parent}
}

// csrDijkstra is the shared Dijkstra core: it fills dist and parent
// (both length c.N) for the given source, reusing the caller's heap.
func csrDijkstra(c *CSR, src int, dist []float64, parent []int, h *NodeHeap) {
	for i := range dist {
		dist[i] = Inf
		parent[i] = -1
	}
	dist[src] = 0
	h.Reset(c.N)
	h.Push(src, 0)
	for h.Len() > 0 {
		u, du := h.Pop()
		if du > dist[u] {
			continue
		}
		for p, end := c.Start[u], c.Start[u+1]; p < end; p++ {
			v := int(c.To[p])
			if nd := du + c.Cost[p]; nd < dist[v] {
				dist[v] = nd
				parent[v] = u
				h.Push(v, nd)
			}
		}
	}
}

// Metric holds all-pairs shortest-path distances plus enough routing
// state to reconstruct one shortest path per pair.
type Metric struct {
	Dist [][]float64
	next [][]int32 // next[u][v] = first hop on a shortest u->v path, -1 if none
}

// metricSlabs allocates the n*n distance and first-hop matrices as
// two contiguous slabs sliced into rows: one allocation each instead
// of n, and row-major locality for the sweeps that walk them.
func metricSlabs(n int) ([][]float64, [][]int32) {
	distSlab := make([]float64, n*n)
	nextSlab := make([]int32, n*n)
	dist := make([][]float64, n)
	next := make([][]int32, n)
	for i := 0; i < n; i++ {
		dist[i] = distSlab[i*n : (i+1)*n : (i+1)*n]
		next[i] = nextSlab[i*n : (i+1)*n : (i+1)*n]
	}
	return dist, next
}

// FloydWarshall computes all-pairs shortest paths in O(V^3).
func (g *Graph) FloydWarshall() *Metric {
	n := len(g.adj)
	dist, next := metricSlabs(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			dist[i][j] = Inf
			next[i][j] = -1
		}
		dist[i][i] = 0
		next[i][i] = int32(i)
	}
	for _, e := range g.edges {
		if e.Cost < dist[e.U][e.V] {
			dist[e.U][e.V] = e.Cost
			dist[e.V][e.U] = e.Cost
			next[e.U][e.V] = int32(e.V)
			next[e.V][e.U] = int32(e.U)
		}
	}
	for k := 0; k < n; k++ {
		dk := dist[k]
		for i := 0; i < n; i++ {
			dik := dist[i][k]
			if dik == Inf {
				continue
			}
			di := dist[i]
			ni := next[i]
			nik := next[i][k]
			for j := 0; j < n; j++ {
				if nd := dik + dk[j]; nd < di[j] {
					di[j] = nd
					ni[j] = nik
				}
			}
		}
	}
	return &Metric{Dist: dist, next: next}
}

// AllDijkstra computes the same Metric as FloydWarshall using one
// Dijkstra run per node: O(V * (E log V)). Faster on sparse graphs;
// kept as an ablation alternative and as a cross-check in tests.
func (g *Graph) AllDijkstra() *Metric {
	c := g.CSR()
	n := c.N
	dist, next := metricSlabs(n)
	sc := getScratch(n)
	for s := 0; s < n; s++ {
		apspRow(c, s, dist[s], next[s], sc)
	}
	putScratch(sc)
	return &Metric{Dist: dist, next: next}
}

// apspRow computes one row of the all-pairs metric into dist and nx
// (both length c.N): distances from s plus the first hop towards
// every reachable node. First hops are filled in a single
// amortized-O(V) pass: a node inherits the first hop of its Dijkstra
// parent, so each parent chain is resolved once and memoized. The
// Dijkstra parents and chain storage live in the scratch arena.
func apspRow(c *CSR, s int, dist []float64, nx []int32, sc *spScratch) {
	n := c.N
	parent := sc.parent[:n]
	csrDijkstra(c, s, dist, parent, &sc.heap)
	for v := range nx {
		nx[v] = -1
	}
	nx[s] = int32(s)
	for v := 0; v < n; v++ {
		if v == s || dist[v] == Inf || nx[v] != -1 {
			continue
		}
		// Walk up the parent chain until a node with a known first hop
		// (or a direct child of s), then fill the chain with that hop.
		chain := sc.chain[:0]
		x := v
		for nx[x] == -1 {
			if parent[x] == s {
				nx[x] = int32(x)
				break
			}
			chain = append(chain, x)
			x = parent[x]
		}
		hop := nx[x]
		for _, y := range chain {
			nx[y] = hop
		}
		sc.chain = chain
	}
}

// AllDijkstraParallel computes the same Metric as AllDijkstra with one
// worker goroutine per available CPU, each pulling source rows from a
// shared counter. Every row is a pure function of its source, so the
// result is byte-identical to the serial AllDijkstra regardless of
// scheduling.
func (g *Graph) AllDijkstraParallel() *Metric {
	c := g.CSR()
	n := c.N
	dist, next := metricSlabs(n)
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			sc := getScratch(n)
			for {
				s := int(cursor.Add(1)) - 1
				if s >= n {
					break
				}
				apspRow(c, s, dist[s], next[s], sc)
			}
			putScratch(sc)
		}()
	}
	wg.Wait()
	return &Metric{Dist: dist, next: next}
}

// apspDenseCutoff is the density divisor above which APSPAuto prefers
// Floyd-Warshall: with m >= n^2/8 (average degree >= n/4) the n
// heap-based Dijkstra runs lose to the cache-friendly O(V^3) sweep.
const apspDenseCutoff = 8

// apspSmallCutoff is the node count below which APSPAuto always uses
// Floyd-Warshall: goroutine fan-out overhead dominates on tiny
// instances, and FW tie-breaking is the historical behaviour that
// small hand-built fixtures pin.
const apspSmallCutoff = 64

// APSPAuto computes all-pairs shortest paths with the routine that
// fits the topology: Floyd-Warshall for small or dense graphs,
// parallel Dijkstra for large sparse ones. Distances are identical
// either way; equal-cost ties may be broken differently.
func (g *Graph) APSPAuto() *Metric {
	n := len(g.adj)
	if n < apspSmallCutoff || len(g.edges)*apspDenseCutoff >= n*n {
		return g.FloydWarshall()
	}
	return g.AllDijkstraParallel()
}

// Path returns one shortest path from u to v as a node sequence
// including both endpoints, or nil if v is unreachable from u.
// Path(u, u) returns [u].
func (m *Metric) Path(u, v int) []int {
	if m.Dist[u][v] == Inf {
		return nil
	}
	path := []int{u}
	for u != v {
		u = int(m.next[u][v])
		path = append(path, u)
	}
	return path
}

// EachHop visits every consecutive hop on one shortest u->v path in
// order, without materializing the path. It reports whether v is
// reachable from u; Path(u, u) has no hops and reports true.
func (m *Metric) EachHop(u, v int, fn func(from, to int)) bool {
	if m.Dist[u][v] == Inf {
		return false
	}
	for u != v {
		w := int(m.next[u][v])
		fn(u, w)
		u = w
	}
	return true
}

// BFSHops returns the minimum number of hops (unweighted) from src to
// every node, with -1 for unreachable nodes.
func (g *Graph) BFSHops(src int) []int {
	n := len(g.adj)
	hops := make([]int, n)
	for i := range hops {
		hops[i] = -1
	}
	hops[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, a := range g.adj[u] {
			if hops[a.To] == -1 {
				hops[a.To] = hops[u] + 1
				queue = append(queue, a.To)
			}
		}
	}
	return hops
}

// PathCost sums the edge costs along a node sequence, using the
// cheapest parallel edge for every hop. It returns Inf if any
// consecutive pair is not adjacent.
func (g *Graph) PathCost(path []int) float64 {
	var sum float64
	for i := 1; i < len(path); i++ {
		c, ok := g.HasEdge(path[i-1], path[i])
		if !ok {
			return Inf
		}
		sum += c
	}
	return sum
}
