package graph

// This file holds the flat compressed-sparse-row (CSR) adjacency
// representations behind every shortest-path hot loop. The slice-of-
// slices adjacency in Graph stays the mutable build-time structure;
// CSR is derived from it once, cached, and shared read-only by any
// number of goroutines. Arc order within a row matches the insertion
// order of Graph.AddEdge, so CSR traversals break distance ties
// exactly like the historical adjacency-list traversals did — results
// stay bit-identical.

// CSR is the undirected graph in compressed-sparse-row form: the arcs
// leaving node u occupy positions Start[u]..Start[u+1] of the To /
// Cost / EdgeID arrays. Node ids and arc positions fit int32 (the
// repository's instances are dense integer graphs well under 2^31
// nodes); costs stay float64.
type CSR struct {
	N      int
	Start  []int32   // len N+1; row bounds into the arc arrays
	To     []int32   // arc head node
	Cost   []float64 // arc traversal cost
	EdgeID []int32   // index into Graph.Edges of the underlying edge
}

// NumArcs returns the number of directed arcs (twice the edge count).
func (c *CSR) NumArcs() int { return len(c.To) }

func buildCSR(g *Graph) *CSR {
	n := len(g.adj)
	m := 0
	for _, l := range g.adj {
		m += len(l)
	}
	c := &CSR{
		N:      n,
		Start:  make([]int32, n+1),
		To:     make([]int32, m),
		Cost:   make([]float64, m),
		EdgeID: make([]int32, m),
	}
	pos := 0
	for u, l := range g.adj {
		c.Start[u] = int32(pos)
		for _, a := range l {
			c.To[pos] = int32(a.To)
			c.Cost[pos] = a.Cost
			c.EdgeID[pos] = int32(a.Edge)
			pos++
		}
	}
	c.Start[n] = int32(pos)
	return c
}

// CSR returns the graph's compressed-sparse-row form, building and
// caching it on first use and rebuilding when the graph has mutated
// since (see Generation). The result is shared and strictly read-only;
// concurrent callers are safe.
func (g *Graph) CSR() *CSR {
	g.csrMu.Lock()
	defer g.csrMu.Unlock()
	if g.csr == nil || g.csrGen != g.gen {
		g.csr = buildCSR(g)
		g.csrGen = g.gen
	}
	return g.csr
}

// Generation returns a counter that increments on every topology
// mutation (AddEdge). Derived structures — the cached CSR here, the
// cached metric closure on nfv.Network — stamp the generation they
// were built at and revalidate against it, so a stale cache is
// rebuilt instead of silently served.
func (g *Graph) Generation() uint64 { return g.gen }

// DCSR is a directed graph in compressed-sparse-row form with
// arc-exact storage: callers declare every node's out-degree up
// front, then place exactly that many arcs. It backs the expanded MOD
// overlay, whose arc counts are known in closed form, so construction
// performs three large allocations total instead of per-node append
// growth.
type DCSR struct {
	Start []int32
	To    []int32
	Cost  []float64
	fill  []int32 // next free position per row while building
}

// NewDCSR returns a directed CSR graph with len(outDeg) nodes whose
// row u has room for exactly outDeg[u] arcs. Fill the rows with
// AddArc; arcs within a row keep insertion order.
func NewDCSR(outDeg []int32) *DCSR {
	n := len(outDeg)
	start := make([]int32, n+1)
	var total int32
	for u, d := range outDeg {
		start[u] = total
		total += d
	}
	start[n] = total
	d := &DCSR{
		Start: start,
		To:    make([]int32, total),
		Cost:  make([]float64, total),
		fill:  append([]int32(nil), start[:n]...),
	}
	return d
}

// NumNodes returns the node count.
func (d *DCSR) NumNodes() int { return len(d.Start) - 1 }

// NumArcs returns the number of directed arcs.
func (d *DCSR) NumArcs() int { return len(d.To) }

// AddArc places the next arc of row u. The caller must stay within
// the out-degree declared to NewDCSR; exceeding it panics (a
// programmer error in the count pass, caught immediately).
func (d *DCSR) AddArc(u, v int, cost float64) {
	p := d.fill[u]
	if p >= d.Start[u+1] {
		panic("graph: DCSR row over-filled")
	}
	d.To[p] = int32(v)
	d.Cost[p] = cost
	d.fill[u] = p + 1
}

// Dijkstra computes shortest paths from src over the directed arcs,
// using pooled heap scratch.
func (d *DCSR) Dijkstra(src int) *ShortestPathTree {
	n := d.NumNodes()
	dist := make([]float64, n)
	parent := make([]int, n)
	for i := range dist {
		dist[i] = Inf
		parent[i] = -1
	}
	dist[src] = 0
	sc := getScratch(0)
	h := &sc.heap
	h.Reset(n)
	h.Push(src, 0)
	for h.Len() > 0 {
		u, du := h.Pop()
		if du > dist[u] {
			continue
		}
		for p, end := d.Start[u], d.Start[u+1]; p < end; p++ {
			v := int(d.To[p])
			if nd := du + d.Cost[p]; nd < dist[v] {
				dist[v] = nd
				parent[v] = u
				h.Push(v, nd)
			}
		}
	}
	putScratch(sc)
	return &ShortestPathTree{Src: src, Dist: dist, Parent: parent}
}
