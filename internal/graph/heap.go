package graph

// NodeHeap is a binary min-heap of (node, priority) pairs with
// decrease-key support, specialized for Dijkstra-style algorithms.
// It avoids container/heap's interface indirection on the hot path.
type NodeHeap struct {
	items []heapItem
	pos   []int // node -> index in items, -1 when absent
}

type heapItem struct {
	node int
	prio float64
}

// NewNodeHeap returns a heap able to hold nodes in [0, n).
func NewNodeHeap(n int) *NodeHeap {
	h := &NodeHeap{items: make([]heapItem, 0, n)}
	h.Reset(n)
	return h
}

// Reset empties the heap and sizes it for nodes in [0, n), reusing
// the existing backing arrays when they are large enough. It makes a
// heap value recyclable through a scratch pool: Reset costs one O(n)
// fill, everything else is reused.
func (h *NodeHeap) Reset(n int) {
	if cap(h.pos) < n {
		h.pos = make([]int, n)
	}
	h.pos = h.pos[:n]
	for i := range h.pos {
		h.pos[i] = -1
	}
	h.items = h.items[:0]
}

func (h *NodeHeap) Len() int { return len(h.items) }

// Push inserts node with the given priority, or decreases its priority
// if it is already present with a larger one.
func (h *NodeHeap) Push(node int, prio float64) {
	if i := h.pos[node]; i >= 0 {
		if prio < h.items[i].prio {
			h.items[i].prio = prio
			h.up(i)
		}
		return
	}
	h.items = append(h.items, heapItem{node: node, prio: prio})
	h.pos[node] = len(h.items) - 1
	h.up(len(h.items) - 1)
}

// Pop removes and returns the minimum-priority node.
func (h *NodeHeap) Pop() (int, float64) {
	top := h.items[0]
	last := len(h.items) - 1
	h.swap(0, last)
	h.items = h.items[:last]
	h.pos[top.node] = -1
	if last > 0 {
		h.down(0)
	}
	return top.node, top.prio
}

func (h *NodeHeap) swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.pos[h.items[i].node] = i
	h.pos[h.items[j].node] = j
}

func (h *NodeHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if h.items[parent].prio <= h.items[i].prio {
			return
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *NodeHeap) down(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && h.items[l].prio < h.items[small].prio {
			small = l
		}
		if r < n && h.items[r].prio < h.items[small].prio {
			small = r
		}
		if small == i {
			return
		}
		h.swap(i, small)
		i = small
	}
}
