// Package graph provides the undirected and directed weighted graph
// primitives that every other package in this repository builds on:
// adjacency storage, single-source shortest paths (Dijkstra), all-pairs
// shortest paths (Floyd-Warshall), minimum spanning trees (Prim and
// Kruskal), connectivity queries, and a disjoint-set forest.
//
// All costs are non-negative float64 values; math.Inf(1) denotes
// "unreachable". Node identifiers are dense integers in [0, N).
package graph

import (
	"errors"
	"fmt"
	"math"
	"sync"
)

// Inf is the cost used to mark unreachable node pairs.
var Inf = math.Inf(1)

var (
	// ErrNodeOutOfRange reports a node identifier outside [0, N).
	ErrNodeOutOfRange = errors.New("graph: node out of range")
	// ErrNegativeCost reports an attempt to add an edge with negative cost.
	ErrNegativeCost = errors.New("graph: negative edge cost")
	// ErrSelfLoop reports an attempt to add a self-loop edge.
	ErrSelfLoop = errors.New("graph: self loop")
)

// Arc is one directed half of an edge in an adjacency list.
type Arc struct {
	To   int     // head node
	Cost float64 // traversal cost
	Edge int     // index into Graph.Edges of the underlying edge
}

// Edge is an undirected edge with a non-negative cost.
type Edge struct {
	U, V int
	Cost float64
}

// Other returns the endpoint of e that is not x.
func (e Edge) Other(x int) int {
	if e.U == x {
		return e.V
	}
	return e.U
}

// Graph is an undirected weighted graph with dense integer node IDs.
// The zero value is an empty graph with no nodes; use New to create a
// graph with a fixed node count.
type Graph struct {
	adj   [][]Arc
	edges []Edge
	// gen counts topology mutations; derived caches (CSR, metric
	// closures) stamp it to detect staleness. See Generation.
	gen uint64
	// csr caches the flat adjacency built at generation csrGen,
	// guarded by csrMu so read-only solvers can share one graph.
	csrMu  sync.Mutex
	csr    *CSR
	csrGen uint64
}

// New returns an empty undirected graph with n nodes and no edges.
func New(n int) *Graph {
	return &Graph{adj: make([][]Arc, n)}
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.adj) }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Edges returns the graph's edge list. The returned slice is a copy and
// may be modified freely by the caller.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, len(g.edges))
	copy(out, g.edges)
	return out
}

// Edge returns the edge with the given index.
func (g *Graph) Edge(i int) Edge { return g.edges[i] }

// AddEdge inserts an undirected edge {u,v} with the given cost and
// returns its edge index. Parallel edges are permitted (the cheapest one
// wins during shortest-path computations automatically).
func (g *Graph) AddEdge(u, v int, cost float64) (int, error) {
	if u < 0 || u >= len(g.adj) || v < 0 || v >= len(g.adj) {
		return 0, fmt.Errorf("%w: {%d,%d} with %d nodes", ErrNodeOutOfRange, u, v, len(g.adj))
	}
	if u == v {
		return 0, fmt.Errorf("%w: node %d", ErrSelfLoop, u)
	}
	if cost < 0 || math.IsNaN(cost) {
		return 0, fmt.Errorf("%w: {%d,%d} cost %v", ErrNegativeCost, u, v, cost)
	}
	id := len(g.edges)
	g.edges = append(g.edges, Edge{U: u, V: v, Cost: cost})
	g.adj[u] = append(g.adj[u], Arc{To: v, Cost: cost, Edge: id})
	g.adj[v] = append(g.adj[v], Arc{To: u, Cost: cost, Edge: id})
	g.gen++
	return id, nil
}

// MustAddEdge is AddEdge for statically known-good inputs (topology
// tables, tests). It panics on error, which per the style guide is
// acceptable only for programmer mistakes caught at startup.
func (g *Graph) MustAddEdge(u, v int, cost float64) int {
	id, err := g.AddEdge(u, v, cost)
	if err != nil {
		panic(err)
	}
	return id
}

// Neighbors returns the adjacency list of u. The returned slice is
// shared with the graph and must not be modified.
func (g *Graph) Neighbors(u int) []Arc { return g.adj[u] }

// Degree returns the number of incident edge endpoints at u.
func (g *Graph) Degree(u int) int { return len(g.adj[u]) }

// HasEdge reports whether an edge {u,v} exists, and the cheapest cost
// among parallel edges if so.
func (g *Graph) HasEdge(u, v int) (float64, bool) {
	if u < 0 || u >= len(g.adj) {
		return 0, false
	}
	best, found := Inf, false
	for _, a := range g.adj[u] {
		if a.To == v && a.Cost < best {
			best, found = a.Cost, true
		}
	}
	return best, found
}

// Clone returns a deep copy of the graph. The clone starts with a
// cold CSR cache but inherits the generation counter, so metric
// closures built against the original remain valid for it.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		adj:   make([][]Arc, len(g.adj)),
		edges: make([]Edge, len(g.edges)),
		gen:   g.gen,
	}
	copy(c.edges, g.edges)
	for i, l := range g.adj {
		c.adj[i] = make([]Arc, len(l))
		copy(c.adj[i], l)
	}
	return c
}

// TotalCost returns the sum of all edge costs.
func (g *Graph) TotalCost() float64 {
	var sum float64
	for _, e := range g.edges {
		sum += e.Cost
	}
	return sum
}

// Connected reports whether every node is reachable from node 0.
// The empty graph is considered connected.
func (g *Graph) Connected() bool {
	n := len(g.adj)
	if n == 0 {
		return true
	}
	seen := make([]bool, n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, a := range g.adj[u] {
			if !seen[a.To] {
				seen[a.To] = true
				count++
				stack = append(stack, a.To)
			}
		}
	}
	return count == n
}

// Components returns the connected components as node-ID slices.
func (g *Graph) Components() [][]int {
	n := len(g.adj)
	seen := make([]bool, n)
	var comps [][]int
	for s := 0; s < n; s++ {
		if seen[s] {
			continue
		}
		var comp []int
		stack := []int{s}
		seen[s] = true
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, u)
			for _, a := range g.adj[u] {
				if !seen[a.To] {
					seen[a.To] = true
					stack = append(stack, a.To)
				}
			}
		}
		comps = append(comps, comp)
	}
	return comps
}
