package graph

import "sort"

// MSTKruskal returns the edge indices of a minimum spanning forest
// (a spanning tree when the graph is connected) computed with
// Kruskal's algorithm, together with its total cost.
func (g *Graph) MSTKruskal() ([]int, float64) {
	order := make([]int, len(g.edges))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return g.edges[order[a]].Cost < g.edges[order[b]].Cost
	})
	uf := NewUnionFind(len(g.adj))
	var (
		picked []int
		total  float64
	)
	for _, id := range order {
		e := g.edges[id]
		if uf.Union(e.U, e.V) {
			picked = append(picked, id)
			total += e.Cost
		}
	}
	return picked, total
}

// MSTPrim returns the edge indices of a minimum spanning tree of the
// connected component containing root, computed with Prim's algorithm,
// together with its total cost.
func (g *Graph) MSTPrim(root int) ([]int, float64) {
	n := len(g.adj)
	inTree := make([]bool, n)
	bestCost := make([]float64, n)
	bestEdge := make([]int, n)
	for i := range bestCost {
		bestCost[i] = Inf
		bestEdge[i] = -1
	}
	bestCost[root] = 0
	h := NewNodeHeap(n)
	h.Push(root, 0)
	var (
		picked []int
		total  float64
	)
	for h.Len() > 0 {
		u, _ := h.Pop()
		if inTree[u] {
			continue
		}
		inTree[u] = true
		if bestEdge[u] >= 0 {
			picked = append(picked, bestEdge[u])
			total += g.edges[bestEdge[u]].Cost
		}
		for _, a := range g.adj[u] {
			if !inTree[a.To] && a.Cost < bestCost[a.To] {
				bestCost[a.To] = a.Cost
				bestEdge[a.To] = a.Edge
				h.Push(a.To, a.Cost)
			}
		}
	}
	return picked, total
}

// InducedSubgraph returns a new graph over the same node-ID space
// containing only the given edge indices.
func (g *Graph) InducedSubgraph(edgeIDs []int) *Graph {
	sub := New(len(g.adj))
	for _, id := range edgeIDs {
		e := g.edges[id]
		sub.MustAddEdge(e.U, e.V, e.Cost)
	}
	return sub
}

// IsTreeSpanning reports whether the edge set forms a tree (acyclic,
// connected over its endpoints) that touches every node in nodes.
func (g *Graph) IsTreeSpanning(edgeIDs []int, nodes []int) bool {
	uf := NewUnionFind(len(g.adj))
	touched := make(map[int]bool, 2*len(edgeIDs))
	for _, id := range edgeIDs {
		e := g.edges[id]
		if !uf.Union(e.U, e.V) {
			return false // cycle
		}
		touched[e.U] = true
		touched[e.V] = true
	}
	if len(nodes) == 0 {
		return true
	}
	root := uf.Find(nodes[0])
	for _, v := range nodes {
		if len(nodes) > 1 && !touched[v] {
			return false
		}
		if uf.Find(v) != root {
			return false
		}
	}
	return true
}
