package graph

import (
	"errors"
	"math"
	"testing"
)

func TestDigraphAddArcValidation(t *testing.T) {
	g := NewDigraph(2)
	if err := g.AddArc(0, 5, 1); !errors.Is(err, ErrNodeOutOfRange) {
		t.Errorf("out of range: got %v", err)
	}
	if err := g.AddArc(0, 1, -1); !errors.Is(err, ErrNegativeCost) {
		t.Errorf("negative: got %v", err)
	}
	if err := g.AddArc(0, 1, 2); err != nil {
		t.Errorf("valid arc: got %v", err)
	}
	if g.NumArcs() != 1 {
		t.Errorf("NumArcs = %d, want 1", g.NumArcs())
	}
}

func TestDigraphDijkstraRespectsDirection(t *testing.T) {
	g := NewDigraph(3)
	if err := g.AddArc(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddArc(1, 2, 1); err != nil {
		t.Fatal(err)
	}
	fwd := g.Dijkstra(0)
	if fwd.Dist[2] != 2 {
		t.Errorf("dist 0->2 = %v, want 2", fwd.Dist[2])
	}
	back := g.Dijkstra(2)
	if !math.IsInf(back.Dist[0], 1) {
		t.Errorf("dist 2->0 = %v, want Inf (arcs are directed)", back.Dist[0])
	}
}

func TestDigraphDijkstraPath(t *testing.T) {
	// Two routes 0->3: direct cost 10, via 1,2 cost 3.
	g := NewDigraph(4)
	for _, arc := range []struct {
		u, v int
		c    float64
	}{{0, 3, 10}, {0, 1, 1}, {1, 2, 1}, {2, 3, 1}} {
		if err := g.AddArc(arc.u, arc.v, arc.c); err != nil {
			t.Fatal(err)
		}
	}
	tr := g.Dijkstra(0)
	if tr.Dist[3] != 3 {
		t.Fatalf("dist = %v, want 3", tr.Dist[3])
	}
	p := tr.PathTo(3)
	want := []int{0, 1, 2, 3}
	if len(p) != len(want) {
		t.Fatalf("path = %v, want %v", p, want)
	}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("path = %v, want %v", p, want)
		}
	}
}

func TestNodeHeapDecreaseKey(t *testing.T) {
	h := NewNodeHeap(4)
	h.Push(0, 10)
	h.Push(1, 5)
	h.Push(2, 7)
	h.Push(0, 1)  // decrease
	h.Push(1, 99) // ignored: larger than current
	n, p := h.Pop()
	if n != 0 || p != 1 {
		t.Fatalf("Pop = (%d,%v), want (0,1)", n, p)
	}
	n, p = h.Pop()
	if n != 1 || p != 5 {
		t.Fatalf("Pop = (%d,%v), want (1,5)", n, p)
	}
	n, p = h.Pop()
	if n != 2 || p != 7 {
		t.Fatalf("Pop = (%d,%v), want (2,7)", n, p)
	}
	if h.Len() != 0 {
		t.Fatalf("Len = %d, want 0", h.Len())
	}
}
