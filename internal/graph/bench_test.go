package graph

import (
	"math/rand"
	"testing"
)

func benchGraph(n, extra int) *Graph {
	rng := rand.New(rand.NewSource(1))
	g := New(n)
	for v := 1; v < n; v++ {
		g.MustAddEdge(rng.Intn(v), v, 1+rng.Float64()*9)
	}
	for i := 0; i < extra; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.MustAddEdge(u, v, 1+rng.Float64()*9)
		}
	}
	return g
}

func BenchmarkDijkstra250(b *testing.B) {
	g := benchGraph(250, 500)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Dijkstra(i % 250)
	}
}

func BenchmarkFloydWarshall100(b *testing.B) {
	g := benchGraph(100, 200)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.FloydWarshall()
	}
}

func BenchmarkFloydWarshall250(b *testing.B) {
	g := benchGraph(250, 500)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.FloydWarshall()
	}
}

func BenchmarkAllDijkstra250(b *testing.B) {
	g := benchGraph(250, 500)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.AllDijkstra()
	}
}

func BenchmarkAllDijkstraParallel250(b *testing.B) {
	g := benchGraph(250, 500)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.AllDijkstraParallel()
	}
}

func BenchmarkMSTKruskal250(b *testing.B) {
	g := benchGraph(250, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.MSTKruskal()
	}
}

func BenchmarkMSTPrim250(b *testing.B) {
	g := benchGraph(250, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.MSTPrim(0)
	}
}
