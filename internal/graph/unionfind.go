package graph

// UnionFind is a disjoint-set forest with union by rank and path
// compression.
type UnionFind struct {
	parent []int
	rank   []int8
	sets   int
}

// NewUnionFind returns a forest of n singleton sets.
func NewUnionFind(n int) *UnionFind {
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	return &UnionFind{parent: parent, rank: make([]int8, n), sets: n}
}

// Find returns the representative of x's set.
func (u *UnionFind) Find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]] // path halving
		x = u.parent[x]
	}
	return x
}

// Union merges the sets containing x and y and reports whether they
// were previously distinct.
func (u *UnionFind) Union(x, y int) bool {
	rx, ry := u.Find(x), u.Find(y)
	if rx == ry {
		return false
	}
	if u.rank[rx] < u.rank[ry] {
		rx, ry = ry, rx
	}
	u.parent[ry] = rx
	if u.rank[rx] == u.rank[ry] {
		u.rank[rx]++
	}
	u.sets--
	return true
}

// Same reports whether x and y belong to the same set.
func (u *UnionFind) Same(x, y int) bool { return u.Find(x) == u.Find(y) }

// Sets returns the current number of disjoint sets.
func (u *UnionFind) Sets() int { return u.sets }

// Reset reinitializes the forest to n singleton sets, reusing the
// backing arrays when large enough. It lets a zero-value UnionFind be
// recycled through a scratch pool without reallocating per use.
func (u *UnionFind) Reset(n int) {
	if cap(u.parent) < n {
		u.parent = make([]int, n)
		u.rank = make([]int8, n)
	}
	u.parent = u.parent[:n]
	u.rank = u.rank[:n]
	for i := range u.parent {
		u.parent[i] = i
		u.rank[i] = 0
	}
	u.sets = n
}
