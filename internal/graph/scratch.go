package graph

import (
	"sync"
	"sync/atomic"
)

// spScratch is the reusable per-run arena of a shortest-path
// computation: the Dijkstra heap plus parent and chain buffers whose
// contents never outlive one call. Arenas are recycled through a
// sync.Pool, so steady-state solves stop allocating them; buffers are
// grown to fit and fully reinitialized by each user, never trusted to
// carry state between runs.
//
// Lifecycle rules (also documented in ALGORITHM.md):
//   - acquire with getScratch, release with putScratch, always on the
//     same goroutine call path (deferred or straight-line);
//   - nothing reachable from the scratch may escape: results are
//     copied into freshly allocated return values before release;
//   - the pool is process-global, so concurrent solvers each get
//     their own arena without coordination.
type spScratch struct {
	heap   NodeHeap
	parent []int
	chain  []int
}

var spPool = sync.Pool{New: func() any {
	spPoolNews.Add(1)
	return new(spScratch)
}}

// spPoolGets counts arena acquisitions and spPoolNews the subset that
// allocated a fresh arena (pool empty or GC-cleared); the difference
// is the reuse count. Process-global like the pool itself, exported
// through PoolStats for the telemetry layer.
var spPoolGets, spPoolNews atomic.Int64

// PoolStats reports the shortest-path scratch pool's traffic: total
// acquisitions and how many of them had to allocate a new arena.
// gets-news arenas were served from the pool (reuse).
func PoolStats() (gets, news int64) {
	return spPoolGets.Load(), spPoolNews.Load()
}

// getScratch returns an arena whose parent buffer holds at least n
// entries (n may be 0 when only the heap is needed). The buffer
// contents are undefined.
func getScratch(n int) *spScratch {
	spPoolGets.Add(1)
	sc := spPool.Get().(*spScratch)
	if cap(sc.parent) < n {
		sc.parent = make([]int, n)
	}
	sc.parent = sc.parent[:n]
	return sc
}

func putScratch(sc *spScratch) { spPool.Put(sc) }
