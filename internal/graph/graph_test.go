package graph

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// diamond returns the classic 4-node diamond used in several tests:
//
//	0 --1-- 1
//	|       |
//	4       1
//	|       |
//	2 --1-- 3
//
// shortest 0->3 is 0-1-3 with cost 2.
func diamond(t *testing.T) *Graph {
	t.Helper()
	g := New(4)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 3, 1)
	g.MustAddEdge(0, 2, 4)
	g.MustAddEdge(2, 3, 1)
	return g
}

func TestAddEdgeValidation(t *testing.T) {
	g := New(3)
	if _, err := g.AddEdge(0, 3, 1); !errors.Is(err, ErrNodeOutOfRange) {
		t.Errorf("out-of-range edge: got %v, want ErrNodeOutOfRange", err)
	}
	if _, err := g.AddEdge(-1, 0, 1); !errors.Is(err, ErrNodeOutOfRange) {
		t.Errorf("negative node: got %v, want ErrNodeOutOfRange", err)
	}
	if _, err := g.AddEdge(1, 1, 1); !errors.Is(err, ErrSelfLoop) {
		t.Errorf("self loop: got %v, want ErrSelfLoop", err)
	}
	if _, err := g.AddEdge(0, 1, -2); !errors.Is(err, ErrNegativeCost) {
		t.Errorf("negative cost: got %v, want ErrNegativeCost", err)
	}
	if _, err := g.AddEdge(0, 1, math.NaN()); !errors.Is(err, ErrNegativeCost) {
		t.Errorf("NaN cost: got %v, want ErrNegativeCost", err)
	}
	if g.NumEdges() != 0 {
		t.Errorf("invalid edges must not be stored, have %d", g.NumEdges())
	}
}

func TestHasEdgeAndParallelEdges(t *testing.T) {
	g := New(2)
	g.MustAddEdge(0, 1, 5)
	g.MustAddEdge(0, 1, 3) // parallel, cheaper
	c, ok := g.HasEdge(0, 1)
	if !ok || c != 3 {
		t.Errorf("HasEdge(0,1) = %v,%v; want 3,true", c, ok)
	}
	if _, ok := g.HasEdge(1, 1); ok {
		t.Error("HasEdge(1,1) should be false")
	}
	if _, ok := g.HasEdge(-1, 0); ok {
		t.Error("HasEdge(-1,0) should be false")
	}
}

func TestDijkstraDiamond(t *testing.T) {
	g := diamond(t)
	tree := g.Dijkstra(0)
	wantDist := []float64{0, 1, 3, 2}
	for v, want := range wantDist {
		if tree.Dist[v] != want {
			t.Errorf("dist[%d] = %v, want %v", v, tree.Dist[v], want)
		}
	}
	path := tree.PathTo(3)
	want := []int{0, 1, 3}
	if len(path) != len(want) {
		t.Fatalf("PathTo(3) = %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("PathTo(3) = %v, want %v", path, want)
		}
	}
}

func TestDijkstraUnreachable(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1, 1)
	tree := g.Dijkstra(0)
	if !math.IsInf(tree.Dist[2], 1) {
		t.Errorf("dist[2] = %v, want +Inf", tree.Dist[2])
	}
	if p := tree.PathTo(2); p != nil {
		t.Errorf("PathTo(2) = %v, want nil", p)
	}
}

func TestPathToSourceItself(t *testing.T) {
	g := diamond(t)
	tree := g.Dijkstra(2)
	p := tree.PathTo(2)
	if len(p) != 1 || p[0] != 2 {
		t.Errorf("PathTo(source) = %v, want [2]", p)
	}
}

func TestFloydWarshallMatchesDijkstra(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(30)
		g := New(n)
		// random connected-ish graph: random tree + extra edges
		for v := 1; v < n; v++ {
			g.MustAddEdge(rng.Intn(v), v, 1+rng.Float64()*9)
		}
		extra := rng.Intn(2 * n)
		for i := 0; i < extra; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.MustAddEdge(u, v, 1+rng.Float64()*9)
			}
		}
		m := g.FloydWarshall()
		for s := 0; s < n; s++ {
			tr := g.Dijkstra(s)
			for v := 0; v < n; v++ {
				if math.Abs(m.Dist[s][v]-tr.Dist[v]) > 1e-9 {
					t.Fatalf("trial %d: dist(%d,%d): FW %v vs Dijkstra %v",
						trial, s, v, m.Dist[s][v], tr.Dist[v])
				}
			}
		}
	}
}

func TestAllDijkstraMatchesFloydWarshall(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(25)
		g := New(n)
		for v := 1; v < n; v++ {
			g.MustAddEdge(rng.Intn(v), v, 1+rng.Float64()*5)
		}
		for i := 0; i < n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.MustAddEdge(u, v, 1+rng.Float64()*5)
			}
		}
		fw := g.FloydWarshall()
		ad := g.AllDijkstra()
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if math.Abs(fw.Dist[u][v]-ad.Dist[u][v]) > 1e-9 {
					t.Fatalf("dist(%d,%d): FW %v vs AllDijkstra %v", u, v, fw.Dist[u][v], ad.Dist[u][v])
				}
			}
		}
	}
}

// TestAllDijkstraParallelByteIdentical pins the contract that the
// worker-pool APSP is indistinguishable from the serial one — same
// distances AND same tie-breaks (next hops) — including on graphs with
// unreachable components, parallel edges, and zero-cost ties.
func TestAllDijkstraParallelByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(60)
		g := New(n)
		// Spanning tree over a prefix only, so some nodes stay
		// unreachable; sprinkle parallel and zero-cost edges.
		reach := 1 + rng.Intn(n)
		for v := 1; v < reach; v++ {
			g.MustAddEdge(rng.Intn(v), v, float64(rng.Intn(6)))
		}
		for i := 0; i < n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.MustAddEdge(u, v, float64(rng.Intn(6)))
			}
		}
		serial := g.AllDijkstra()
		par := g.AllDijkstraParallel()
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if serial.Dist[u][v] != par.Dist[u][v] {
					t.Fatalf("trial %d: dist(%d,%d): serial %v vs parallel %v",
						trial, u, v, serial.Dist[u][v], par.Dist[u][v])
				}
				if serial.next[u][v] != par.next[u][v] {
					t.Fatalf("trial %d: next(%d,%d): serial %v vs parallel %v",
						trial, u, v, serial.next[u][v], par.next[u][v])
				}
			}
		}
	}
}

// TestAPSPAutoMatchesFloydWarshall checks the auto-selected routine
// returns correct distances and valid paths on both sides of the
// density and size cutoffs.
func TestAPSPAutoMatchesFloydWarshall(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for _, tc := range []struct{ n, extra int }{
		{10, 20},                            // small: FW branch
		{apspSmallCutoff + 16, 100},         // large sparse: parallel Dijkstra branch
		{apspSmallCutoff + 16, 80 * 80 / 2}, // large dense: FW branch
	} {
		g := New(tc.n)
		for v := 1; v < tc.n; v++ {
			g.MustAddEdge(rng.Intn(v), v, 1+rng.Float64()*9)
		}
		for i := 0; i < tc.extra; i++ {
			u, v := rng.Intn(tc.n), rng.Intn(tc.n)
			if u != v {
				g.MustAddEdge(u, v, 1+rng.Float64()*9)
			}
		}
		fw := g.FloydWarshall()
		auto := g.APSPAuto()
		for u := 0; u < tc.n; u++ {
			for v := 0; v < tc.n; v++ {
				if math.Abs(fw.Dist[u][v]-auto.Dist[u][v]) > 1e-9 {
					t.Fatalf("n=%d extra=%d: dist(%d,%d): FW %v vs auto %v",
						tc.n, tc.extra, u, v, fw.Dist[u][v], auto.Dist[u][v])
				}
				// The auto path must exist and cost its own distance.
				p := auto.Path(u, v)
				if p == nil {
					continue
				}
				if got := g.PathCost(p); math.Abs(got-auto.Dist[u][v]) > 1e-9 {
					t.Fatalf("n=%d extra=%d: path(%d,%d) costs %v, dist %v",
						tc.n, tc.extra, u, v, got, auto.Dist[u][v])
				}
			}
		}
	}
}

// TestEachHopMatchesPath checks the alloc-free hop iterator visits
// exactly the hops of the materialized path.
func TestEachHopMatchesPath(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	n := 30
	g := New(n)
	for v := 1; v < n; v++ {
		g.MustAddEdge(rng.Intn(v), v, 1+rng.Float64()*9)
	}
	m := g.FloydWarshall()
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			var hops [][2]int
			ok := m.EachHop(u, v, func(x, y int) { hops = append(hops, [2]int{x, y}) })
			p := m.Path(u, v)
			if ok != (p != nil) {
				t.Fatalf("EachHop(%d,%d) ok=%v but Path=%v", u, v, ok, p)
			}
			if len(hops) != len(p)-1 && !(p == nil && len(hops) == 0) {
				t.Fatalf("EachHop(%d,%d) visited %d hops for path %v", u, v, len(hops), p)
			}
			for i, h := range hops {
				if h[0] != p[i] || h[1] != p[i+1] {
					t.Fatalf("EachHop(%d,%d) hop %d = %v, path %v", u, v, i, h, p)
				}
			}
		}
	}
}

func TestMetricPathReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	n := 20
	g := New(n)
	for v := 1; v < n; v++ {
		g.MustAddEdge(rng.Intn(v), v, 1+rng.Float64()*9)
	}
	for i := 0; i < 30; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.MustAddEdge(u, v, 1+rng.Float64()*9)
		}
	}
	m := g.FloydWarshall()
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			p := m.Path(u, v)
			if p == nil {
				t.Fatalf("Path(%d,%d) unexpectedly nil", u, v)
			}
			if p[0] != u || p[len(p)-1] != v {
				t.Fatalf("Path(%d,%d) endpoints wrong: %v", u, v, p)
			}
			if got := g.PathCost(p); math.Abs(got-m.Dist[u][v]) > 1e-9 {
				t.Fatalf("Path(%d,%d) cost %v != dist %v", u, v, got, m.Dist[u][v])
			}
		}
	}
}

func TestMetricTriangleInequality(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	n := 15
	g := New(n)
	for v := 1; v < n; v++ {
		g.MustAddEdge(rng.Intn(v), v, 1+rng.Float64()*4)
	}
	m := g.FloydWarshall()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				if m.Dist[i][j] > m.Dist[i][k]+m.Dist[k][j]+1e-9 {
					t.Fatalf("triangle violated: d(%d,%d)=%v > d(%d,%d)+d(%d,%d)=%v",
						i, j, m.Dist[i][j], i, k, k, j, m.Dist[i][k]+m.Dist[k][j])
				}
			}
		}
	}
}

func TestConnectedAndComponents(t *testing.T) {
	g := New(5)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(2, 3, 1)
	if g.Connected() {
		t.Error("graph with isolated node 4 reported connected")
	}
	comps := g.Components()
	if len(comps) != 3 {
		t.Errorf("components = %d, want 3", len(comps))
	}
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(3, 4, 1)
	if !g.Connected() {
		t.Error("fully joined graph reported disconnected")
	}
	if New(0).Connected() != true {
		t.Error("empty graph should be connected")
	}
}

func TestBFSHops(t *testing.T) {
	g := New(4)
	g.MustAddEdge(0, 1, 100)
	g.MustAddEdge(1, 2, 100)
	g.MustAddEdge(0, 3, 1)
	hops := g.BFSHops(0)
	want := []int{0, 1, 2, 1}
	for v := range want {
		if hops[v] != want[v] {
			t.Errorf("hops[%d] = %d, want %d", v, hops[v], want[v])
		}
	}
}

func TestMSTKruskalPrimAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(40)
		g := New(n)
		for v := 1; v < n; v++ {
			g.MustAddEdge(rng.Intn(v), v, rng.Float64()*10)
		}
		for i := 0; i < n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.MustAddEdge(u, v, rng.Float64()*10)
			}
		}
		ke, kc := g.MSTKruskal()
		pe, pc := g.MSTPrim(0)
		if math.Abs(kc-pc) > 1e-9 {
			t.Fatalf("trial %d: Kruskal %v vs Prim %v", trial, kc, pc)
		}
		if len(ke) != n-1 || len(pe) != n-1 {
			t.Fatalf("trial %d: MST edge counts %d,%d want %d", trial, len(ke), len(pe), n-1)
		}
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		if !g.IsTreeSpanning(ke, all) {
			t.Fatalf("trial %d: Kruskal result is not a spanning tree", trial)
		}
	}
}

func TestIsTreeSpanningRejectsCycle(t *testing.T) {
	g := New(3)
	a := g.MustAddEdge(0, 1, 1)
	b := g.MustAddEdge(1, 2, 1)
	c := g.MustAddEdge(2, 0, 1)
	if g.IsTreeSpanning([]int{a, b, c}, []int{0, 1, 2}) {
		t.Error("triangle accepted as tree")
	}
	if !g.IsTreeSpanning([]int{a, b}, []int{0, 1, 2}) {
		t.Error("path rejected as spanning tree")
	}
	if g.IsTreeSpanning([]int{a}, []int{0, 1, 2}) {
		t.Error("edge {0,1} cannot span node 2")
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := diamond(t)
	c := g.Clone()
	c.MustAddEdge(0, 3, 0.5)
	if g.NumEdges() == c.NumEdges() {
		t.Error("mutating clone changed original edge count")
	}
	if d := g.Dijkstra(0).Dist[3]; d != 2 {
		t.Errorf("original dist changed after clone mutation: %v", d)
	}
}

func TestTotalCost(t *testing.T) {
	g := diamond(t)
	if tc := g.TotalCost(); tc != 7 {
		t.Errorf("TotalCost = %v, want 7", tc)
	}
}

func TestEdgesReturnsCopy(t *testing.T) {
	g := diamond(t)
	edges := g.Edges()
	edges[0].Cost = 999
	if g.Edge(0).Cost == 999 {
		t.Error("Edges() exposed internal state")
	}
}

func TestEdgeOther(t *testing.T) {
	e := Edge{U: 3, V: 7, Cost: 1}
	if e.Other(3) != 7 || e.Other(7) != 3 {
		t.Errorf("Other: got %d,%d", e.Other(3), e.Other(7))
	}
}

func TestPathCostNonAdjacent(t *testing.T) {
	g := diamond(t)
	if c := g.PathCost([]int{0, 3}); !math.IsInf(c, 1) {
		t.Errorf("PathCost over non-edge = %v, want Inf", c)
	}
	if c := g.PathCost([]int{0}); c != 0 {
		t.Errorf("PathCost of single node = %v, want 0", c)
	}
	if c := g.PathCost(nil); c != 0 {
		t.Errorf("PathCost(nil) = %v, want 0", c)
	}
}

func TestDegreeAndNeighbors(t *testing.T) {
	g := diamond(t)
	if g.Degree(0) != 2 || g.Degree(3) != 2 {
		t.Errorf("degrees: %d,%d want 2,2", g.Degree(0), g.Degree(3))
	}
	seen := map[int]bool{}
	for _, a := range g.Neighbors(0) {
		seen[a.To] = true
	}
	if !seen[1] || !seen[2] {
		t.Errorf("Neighbors(0) = %v", seen)
	}
}
