package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// graphFromSeed deterministically builds a random connected graph.
func graphFromSeed(seed int64, maxNodes int) *Graph {
	rng := rand.New(rand.NewSource(seed))
	n := 2 + rng.Intn(maxNodes-1)
	g := New(n)
	for v := 1; v < n; v++ {
		g.MustAddEdge(rng.Intn(v), v, 0.1+rng.Float64()*9.9)
	}
	extra := rng.Intn(2 * n)
	for i := 0; i < extra; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.MustAddEdge(u, v, 0.1+rng.Float64()*9.9)
		}
	}
	return g
}

// Property: every Dijkstra distance is realized by the reconstructed
// path, and no single edge relaxation can improve any distance
// (optimality certificate).
func TestQuickDijkstraOptimalityCertificate(t *testing.T) {
	prop := func(seed int64) bool {
		g := graphFromSeed(seed, 24)
		src := int(uint(seed) % uint(g.NumNodes()))
		tree := g.Dijkstra(src)
		for v := 0; v < g.NumNodes(); v++ {
			p := tree.PathTo(v)
			if p == nil {
				return false // connected by construction
			}
			if math.Abs(g.PathCost(p)-tree.Dist[v]) > 1e-9 {
				return false
			}
		}
		for _, e := range g.Edges() {
			if tree.Dist[e.V] > tree.Dist[e.U]+e.Cost+1e-9 {
				return false
			}
			if tree.Dist[e.U] > tree.Dist[e.V]+e.Cost+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: the MST cost is invariant under the algorithm used and no
// non-tree edge can be swapped in to improve it (cycle property spot
// check via total cost equality of Prim and Kruskal).
func TestQuickMSTAlgorithmInvariance(t *testing.T) {
	prop := func(seed int64) bool {
		g := graphFromSeed(seed, 30)
		_, kc := g.MSTKruskal()
		_, pc := g.MSTPrim(0)
		return math.Abs(kc-pc) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: the all-pairs metric is symmetric and satisfies the
// triangle inequality on random triples.
func TestQuickMetricAxioms(t *testing.T) {
	prop := func(seed int64, a, b, c uint8) bool {
		g := graphFromSeed(seed, 18)
		m := g.FloydWarshall()
		n := g.NumNodes()
		i, j, k := int(a)%n, int(b)%n, int(c)%n
		if math.Abs(m.Dist[i][j]-m.Dist[j][i]) > 1e-9 {
			return false
		}
		return m.Dist[i][j] <= m.Dist[i][k]+m.Dist[k][j]+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: union-find set counts decrease by exactly one per
// successful union and Same() agrees with reachability over the unions
// performed.
func TestQuickUnionFindInvariants(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		uf := NewUnionFind(n)
		adj := make([][]bool, n)
		for i := range adj {
			adj[i] = make([]bool, n)
			adj[i][i] = true
		}
		sets := n
		for i := 0; i < n; i++ {
			x, y := rng.Intn(n), rng.Intn(n)
			merged := uf.Union(x, y)
			// Maintain reachability closure naively.
			if !adj[x][y] {
				if !merged {
					return false
				}
				sets--
				for a := 0; a < n; a++ {
					if adj[a][x] || adj[a][y] {
						for b := 0; b < n; b++ {
							if adj[b][x] || adj[b][y] {
								adj[a][b] = true
								adj[b][a] = true
							}
						}
					}
				}
			} else if merged {
				return false
			}
			if uf.Sets() != sets {
				return false
			}
		}
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				if uf.Same(a, b) != adj[a][b] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: BFS hop counts are a lower bound scaled by the minimum
// edge cost on weighted distances.
func TestQuickBFSLowerBoundsWeighted(t *testing.T) {
	prop := func(seed int64) bool {
		g := graphFromSeed(seed, 20)
		minCost := math.Inf(1)
		for _, e := range g.Edges() {
			if e.Cost < minCost {
				minCost = e.Cost
			}
		}
		hops := g.BFSHops(0)
		dist := g.Dijkstra(0).Dist
		for v := range dist {
			if hops[v] < 0 {
				return false
			}
			if dist[v]+1e-9 < float64(hops[v])*minCost {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
