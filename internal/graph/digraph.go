package graph

import (
	"fmt"
	"math"
)

// DiArc is one outgoing arc of a directed graph.
type DiArc struct {
	To   int
	Cost float64
}

// Digraph is a directed weighted graph with dense integer node IDs.
// It backs the multilevel overlay directed (MOD) network of the paper.
type Digraph struct {
	out  [][]DiArc
	arcs int
}

// NewDigraph returns an empty directed graph with n nodes.
func NewDigraph(n int) *Digraph {
	return &Digraph{out: make([][]DiArc, n)}
}

// NumNodes returns the number of nodes.
func (g *Digraph) NumNodes() int { return len(g.out) }

// NumArcs returns the number of directed arcs.
func (g *Digraph) NumArcs() int { return g.arcs }

// AddArc inserts a directed arc u->v with the given cost.
func (g *Digraph) AddArc(u, v int, cost float64) error {
	if u < 0 || u >= len(g.out) || v < 0 || v >= len(g.out) {
		return fmt.Errorf("%w: %d->%d with %d nodes", ErrNodeOutOfRange, u, v, len(g.out))
	}
	if cost < 0 || math.IsNaN(cost) {
		return fmt.Errorf("%w: %d->%d cost %v", ErrNegativeCost, u, v, cost)
	}
	g.out[u] = append(g.out[u], DiArc{To: v, Cost: cost})
	g.arcs++
	return nil
}

// Out returns the outgoing arcs of u. The slice is shared with the
// graph and must not be modified.
func (g *Digraph) Out(u int) []DiArc { return g.out[u] }

// Dijkstra computes shortest paths from src to every node over
// directed arcs.
func (g *Digraph) Dijkstra(src int) *ShortestPathTree {
	n := len(g.out)
	dist := make([]float64, n)
	parent := make([]int, n)
	for i := range dist {
		dist[i] = Inf
		parent[i] = -1
	}
	dist[src] = 0
	h := NewNodeHeap(n)
	h.Push(src, 0)
	for h.Len() > 0 {
		u, du := h.Pop()
		if du > dist[u] {
			continue
		}
		for _, a := range g.out[u] {
			if nd := du + a.Cost; nd < dist[a.To] {
				dist[a.To] = nd
				parent[a.To] = u
				h.Push(a.To, nd)
			}
		}
	}
	return &ShortestPathTree{Src: src, Dist: dist, Parent: parent}
}
