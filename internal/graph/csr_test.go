package graph

import (
	"math/rand"
	"testing"
)

// TestCSRMatchesAdjacency checks that the CSR view preserves the
// adjacency lists exactly — same neighbors, costs, and edge ids in the
// same order — since Dijkstra tie-breaking depends on arc order.
func TestCSRMatchesAdjacency(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := New(40)
	for i := 0; i < 120; i++ {
		u, v := rng.Intn(40), rng.Intn(40)
		if u == v {
			continue
		}
		if _, err := g.AddEdge(u, v, 1+rng.Float64()); err != nil {
			t.Fatal(err)
		}
	}
	c := g.CSR()
	if c.N != g.NumNodes() {
		t.Fatalf("CSR has %d nodes, graph %d", c.N, g.NumNodes())
	}
	for u := 0; u < g.NumNodes(); u++ {
		arcs := g.Neighbors(u)
		row := c.Start[u+1] - c.Start[u]
		if int(row) != len(arcs) {
			t.Fatalf("node %d: CSR row %d arcs, adjacency %d", u, row, len(arcs))
		}
		for i, a := range arcs {
			p := c.Start[u] + int32(i)
			if int(c.To[p]) != a.To || c.Cost[p] != a.Cost || int(c.EdgeID[p]) != a.Edge {
				t.Fatalf("node %d arc %d: CSR (%d,%v,%d) != adjacency (%d,%v,%d)",
					u, i, c.To[p], c.Cost[p], c.EdgeID[p], a.To, a.Cost, a.Edge)
			}
		}
	}
}

// TestCSRGenerationInvalidation checks that mutating the graph after a
// CSR build produces a fresh CSR, while repeated calls without
// mutation return the cached one.
func TestCSRGenerationInvalidation(t *testing.T) {
	g := New(4)
	if _, err := g.AddEdge(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	c1 := g.CSR()
	if c2 := g.CSR(); c2 != c1 {
		t.Fatal("unmutated graph rebuilt its CSR")
	}
	gen := g.Generation()
	if _, err := g.AddEdge(1, 2, 1); err != nil {
		t.Fatal(err)
	}
	if g.Generation() == gen {
		t.Fatal("AddEdge did not advance the generation")
	}
	c3 := g.CSR()
	if c3 == c1 {
		t.Fatal("mutated graph returned the stale CSR")
	}
	if c3.NumArcs() != c1.NumArcs()+2 {
		t.Fatalf("rebuilt CSR has %d arcs, want %d", c3.NumArcs(), c1.NumArcs()+2)
	}
}

// TestDCSRDijkstra checks the directed CSR builder end to end: exact
// arc counts, fill order, and a Dijkstra run against hand-computed
// distances on a small DAG.
func TestDCSRDijkstra(t *testing.T) {
	// 0 -> 1 (1), 0 -> 2 (4), 1 -> 2 (2), 2 -> 3 (1), 1 -> 3 (5)
	d := NewDCSR([]int32{2, 2, 1, 0})
	d.AddArc(0, 1, 1)
	d.AddArc(0, 2, 4)
	d.AddArc(1, 2, 2)
	d.AddArc(1, 3, 5)
	d.AddArc(2, 3, 1)
	if d.NumNodes() != 4 || d.NumArcs() != 5 {
		t.Fatalf("got %d nodes / %d arcs, want 4 / 5", d.NumNodes(), d.NumArcs())
	}
	tree := d.Dijkstra(0)
	want := []float64{0, 1, 3, 4}
	for v, dist := range want {
		if tree.Dist[v] != dist {
			t.Errorf("dist[%d] = %v, want %v", v, tree.Dist[v], dist)
		}
	}
	if path := tree.PathTo(3); len(path) != 4 || path[0] != 0 || path[1] != 1 || path[2] != 2 || path[3] != 3 {
		t.Errorf("PathTo(3) = %v, want [0 1 2 3]", path)
	}
}

// TestDCSROverfillPanics checks the arc-exact invariant: adding more
// arcs to a row than declared must panic instead of corrupting a
// neighboring row.
func TestDCSROverfillPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("over-filled DCSR row did not panic")
		}
	}()
	d := NewDCSR([]int32{1, 0})
	d.AddArc(0, 1, 1)
	d.AddArc(0, 1, 2) // one more than declared
}
