package nfv

import (
	"encoding/json"
	"fmt"

	"sftree/internal/graph"
)

// maxDecodedNodes bounds instance documents so hostile or corrupt
// input cannot trigger unbounded allocations in the decoder.
const maxDecodedNodes = 1_000_000

// edgeJSON serializes one undirected edge.
type edgeJSON struct {
	U    int     `json:"u"`
	V    int     `json:"v"`
	Cost float64 `json:"cost"`
}

// serverJSON serializes one server node's metadata.
type serverJSON struct {
	Node     int     `json:"node"`
	Capacity float64 `json:"capacity"`
}

// deployJSON serializes one pre-deployed instance.
type deployJSON struct {
	VNF  int `json:"vnf"`
	Node int `json:"node"`
}

// setupJSON serializes one (vnf, node) setup cost entry.
type setupJSON struct {
	VNF  int     `json:"vnf"`
	Node int     `json:"node"`
	Cost float64 `json:"cost"`
}

// networkJSON is the wire form of a Network.
type networkJSON struct {
	Nodes    int          `json:"nodes"`
	Edges    []edgeJSON   `json:"edges"`
	Coords   []Point      `json:"coords,omitempty"`
	Catalog  []VNF        `json:"catalog"`
	Servers  []serverJSON `json:"servers"`
	Deployed []deployJSON `json:"deployed,omitempty"`
	Setup    []setupJSON  `json:"setup_costs,omitempty"`
}

// Instance document: a Network plus a Task, the unit consumed by
// cmd/sftembed and produced by cmd/sftgen.
type InstanceDoc struct {
	Network *Network `json:"-"`
	Task    Task     `json:"task"`
}

type instanceDocJSON struct {
	Network networkJSON `json:"network"`
	Task    Task        `json:"task"`
}

// MarshalJSON implements json.Marshaler for InstanceDoc.
func (doc InstanceDoc) MarshalJSON() ([]byte, error) {
	net := doc.Network
	if net == nil {
		return nil, fmt.Errorf("nfv: marshal: nil network")
	}
	nj := networkJSON{
		Nodes:   net.NumNodes(),
		Catalog: net.Catalog(),
		Coords:  net.Coords(),
	}
	for _, e := range net.Graph().Edges() {
		nj.Edges = append(nj.Edges, edgeJSON{U: e.U, V: e.V, Cost: e.Cost})
	}
	for _, v := range net.Servers() {
		nj.Servers = append(nj.Servers, serverJSON{Node: v, Capacity: net.Capacity(v)})
	}
	for f := 0; f < net.CatalogSize(); f++ {
		for v := 0; v < net.NumNodes(); v++ {
			if net.IsDeployed(f, v) {
				nj.Deployed = append(nj.Deployed, deployJSON{VNF: f, Node: v})
			}
			if c := net.RawSetupCost(f, v); c != 0 {
				nj.Setup = append(nj.Setup, setupJSON{VNF: f, Node: v, Cost: c})
			}
		}
	}
	return json.Marshal(instanceDocJSON{Network: nj, Task: doc.Task})
}

// UnmarshalJSON implements json.Unmarshaler for InstanceDoc.
func (doc *InstanceDoc) UnmarshalJSON(data []byte) error {
	var raw instanceDocJSON
	if err := json.Unmarshal(data, &raw); err != nil {
		return fmt.Errorf("nfv: unmarshal instance: %w", err)
	}
	if raw.Network.Nodes < 0 || raw.Network.Nodes > maxDecodedNodes {
		return fmt.Errorf("nfv: unmarshal instance: node count %d outside [0, %d]",
			raw.Network.Nodes, maxDecodedNodes)
	}
	g := graph.New(raw.Network.Nodes)
	for _, e := range raw.Network.Edges {
		if _, err := g.AddEdge(e.U, e.V, e.Cost); err != nil {
			return fmt.Errorf("nfv: unmarshal edge: %w", err)
		}
	}
	net := NewNetwork(g, raw.Network.Catalog)
	if raw.Network.Coords != nil {
		net.SetCoords(raw.Network.Coords)
	}
	for _, s := range raw.Network.Servers {
		if err := net.SetServer(s.Node, s.Capacity); err != nil {
			return fmt.Errorf("nfv: unmarshal server: %w", err)
		}
	}
	for _, s := range raw.Network.Setup {
		if err := net.SetSetupCost(s.VNF, s.Node, s.Cost); err != nil {
			return fmt.Errorf("nfv: unmarshal setup cost: %w", err)
		}
	}
	for _, d := range raw.Network.Deployed {
		if err := net.Deploy(d.VNF, d.Node); err != nil {
			return fmt.Errorf("nfv: unmarshal deployment: %w", err)
		}
	}
	doc.Network = net
	doc.Task = raw.Task
	return nil
}
