package nfv

import (
	"fmt"
	"sort"
)

// Link capacities are an optional extension beyond the paper's model:
// a link may carry at most a fixed number of flow copies (distinct
// (stage, direction) transmissions). The base Validate/Cost pair
// ignores capacities — exactly the paper's formulation — while
// LinkViolations exposes the overloads so capacity-aware solvers
// (core.SolveCapacityAware) can reroute around them.

// LinkViolation reports one overloaded link.
type LinkViolation struct {
	U        int `json:"u"`
	V        int `json:"v"`
	Copies   int `json:"copies"`
	Capacity int `json:"capacity"`
}

// SetLinkCapacity bounds the number of flow copies the link {u,v} may
// carry (0 removes the bound). The bound applies to every parallel
// edge between the two nodes collectively.
func (net *Network) SetLinkCapacity(u, v, copies int) error {
	if _, ok := net.g.HasEdge(u, v); !ok {
		return fmt.Errorf("nfv: no link %d-%d to bound", u, v)
	}
	if copies < 0 {
		return fmt.Errorf("nfv: negative link capacity %d", copies)
	}
	if net.linkCap == nil {
		net.linkCap = make(map[[2]int]int)
	}
	key := canonPair(u, v)
	if copies == 0 {
		delete(net.linkCap, key)
		return nil
	}
	net.linkCap[key] = copies
	return nil
}

// LinkCapacity returns the copy bound of link {u,v}; 0 means unlimited.
func (net *Network) LinkCapacity(u, v int) int {
	return net.linkCap[canonPair(u, v)]
}

// LinkViolations returns every link whose configured copy bound the
// embedding exceeds, ordered by canonical endpoints. Copies are
// counted exactly like the cost oracle prices them: one per distinct
// (stage, direction) pair.
func (net *Network) LinkViolations(e *Embedding) []LinkViolation {
	if len(net.linkCap) == 0 {
		return nil
	}
	type stageArc struct{ level, u, v int }
	seen := make(map[stageArc]bool)
	copies := make(map[[2]int]int)
	for _, w := range e.Walks {
		for _, seg := range w {
			for i := 1; i < len(seg.Path); i++ {
				key := stageArc{level: seg.Level, u: seg.Path[i-1], v: seg.Path[i]}
				if seen[key] {
					continue
				}
				seen[key] = true
				copies[canonPair(key.u, key.v)]++
			}
		}
	}
	var out []LinkViolation
	for pair, bound := range net.linkCap {
		if c := copies[pair]; c > bound {
			out = append(out, LinkViolation{U: pair[0], V: pair[1], Copies: c, Capacity: bound})
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].U != out[b].U {
			return out[a].U < out[b].U
		}
		return out[a].V < out[b].V
	})
	return out
}

// ReweightedCopy returns a network over a fresh graph with the same
// topology but per-edge costs multiplied by factor(u, v); all NFV
// metadata (servers, capacities, setup costs, deployments, link
// bounds) is copied. Capacity-aware solving uses it to steer routes
// away from overloaded links, then re-prices results on the original.
func (net *Network) ReweightedCopy(factor func(u, v int) float64) (*Network, error) {
	g2 := newGraphLike(net.g)
	for _, e := range net.g.Edges() {
		f := factor(e.U, e.V)
		if f < 1 {
			f = 1
		}
		if _, err := g2.AddEdge(e.U, e.V, e.Cost*f); err != nil {
			return nil, fmt.Errorf("nfv: reweight: %w", err)
		}
	}
	c := net.Clone()
	c.g = g2
	c.metric = nil // distances changed
	c.metricFn = nil
	return c, nil
}

func canonPair(u, v int) [2]int {
	if u > v {
		u, v = v, u
	}
	return [2]int{u, v}
}
