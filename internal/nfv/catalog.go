package nfv

// DefaultCatalog returns the 30-entry VNF catalog used throughout the
// evaluation, standing in for the "thirty different VNFs" the paper
// samples from an NFV market survey. Names are common middlebox types;
// every instance consumes one capacity unit, matching the paper's
// node-capacity convention ("at most 1~5 VNFs can be deployed on the
// node").
func DefaultCatalog() []VNF {
	names := []string{
		"firewall", "nat", "ids", "ips", "dpi",
		"load-balancer", "wan-optimizer", "proxy", "cache", "vpn-gateway",
		"traffic-shaper", "virus-scanner", "spam-filter", "phishing-detector", "parental-control",
		"video-transcoder", "video-optimizer", "packet-marker", "qoe-monitor", "flow-sampler",
		"ddos-mitigator", "ssl-terminator", "http-header-enricher", "carrier-grade-nat", "bras",
		"epc-sgw", "epc-pgw", "mme", "ims-cscf", "cdn-edge",
	}
	catalog := make([]VNF, len(names))
	for i, name := range names {
		catalog[i] = VNF{ID: i, Name: name, Demand: 1}
	}
	return catalog
}
