package nfv

import (
	"math/rand"
	"testing"

	"sftree/internal/graph"
)

// benchEmbedding builds a sizeable valid embedding for oracle benches.
func benchEmbedding(b *testing.B) (*Network, *Embedding) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	n := 200
	g := graph.New(n)
	for v := 1; v < n; v++ {
		g.MustAddEdge(rng.Intn(v), v, 1+rng.Float64()*9)
	}
	for i := 0; i < 2*n; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.MustAddEdge(u, v, 1+rng.Float64()*9)
		}
	}
	k := 8
	catalog := make([]VNF, k)
	for f := range catalog {
		catalog[f] = VNF{ID: f, Name: "f", Demand: 1}
	}
	net := NewNetwork(g, catalog)
	for v := 0; v < n; v++ {
		if err := net.SetServer(v, float64(k)); err != nil {
			b.Fatal(err)
		}
	}
	metric := g.FloydWarshall()
	task := Task{Source: 0, Destinations: rng.Perm(n)[1:21], Chain: make(SFC, k)}
	for j := range task.Chain {
		task.Chain[j] = j
	}
	e := &Embedding{Task: task}
	placed := map[[2]int]bool{}
	for _, d := range task.Destinations {
		prev := task.Source
		w := make(Walk, 0, k+1)
		for j := 1; j <= k; j++ {
			host := rng.Intn(n)
			key := [2]int{task.Chain[j-1], host}
			if !placed[key] {
				placed[key] = true
				e.NewInstances = append(e.NewInstances, Instance{VNF: key[0], Node: host, Level: j})
			}
			w = append(w, Segment{Level: j - 1, Path: metric.Path(prev, host)})
			prev = host
		}
		w = append(w, Segment{Level: k, Path: metric.Path(prev, d)})
		e.Walks = append(e.Walks, w)
	}
	return net, e
}

func BenchmarkCostOracle(b *testing.B) {
	net, e := benchEmbedding(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Cost(e)
	}
}

func BenchmarkValidate(b *testing.B) {
	net, e := benchEmbedding(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := net.Validate(e); err != nil {
			b.Fatal(err)
		}
	}
}
