package nfv

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Instance is a VNF instance placed on a node at a chain level
// (Level in [1..k], matching Chain[Level-1]).
type Instance struct {
	VNF   int `json:"vnf"`
	Node  int `json:"node"`
	Level int `json:"level"`
}

// Segment is one stage of a destination's walk: the node path carrying
// the flow between the instance serving chain level `Level` and the
// next hop of the chain. Level j in [0..k] corresponds to the paper's
// psi_{l_j} stage: Level 0 runs from the source to the first VNF,
// Level j from VNF j to VNF j+1, and Level k from the last VNF to the
// destination. Path lists nodes inclusive of both endpoints and may be
// a single node when the two endpoints coincide.
type Segment struct {
	Level int   `json:"level"`
	Path  []int `json:"path"`
}

// Walk is one destination's end-to-end route: exactly k+1 segments.
type Walk []Segment

// Embedding is a solver's output: the new VNF instances it deploys and
// one walk per destination (parallel to Task.Destinations).
type Embedding struct {
	Task         Task       `json:"task"`
	NewInstances []Instance `json:"new_instances"`
	Walks        []Walk     `json:"walks"`
}

// ServingNode returns the node that serves destination index di at
// chain level lvl (lvl in [1..k]), derived from the walk structure.
func (e *Embedding) ServingNode(di, lvl int) int {
	return e.Walks[di][lvl].Path[0]
}

// Clone returns a deep copy of the embedding.
func (e *Embedding) Clone() *Embedding {
	c := &Embedding{
		Task:         e.Task.CloneTask(),
		NewInstances: append([]Instance(nil), e.NewInstances...),
		Walks:        make([]Walk, len(e.Walks)),
	}
	for i, w := range e.Walks {
		c.Walks[i] = make(Walk, len(w))
		for j, s := range w {
			c.Walks[i][j] = Segment{Level: s.Level, Path: append([]int(nil), s.Path...)}
		}
	}
	return c
}

// stageEdge is the deduplication key of objective (1a): an edge carries
// one flow copy per chain stage regardless of destination fan-out.
type stageEdge struct {
	level int
	u, v  int
}

// CostBreakdown decomposes the traffic delivery cost.
type CostBreakdown struct {
	Setup float64 `json:"setup"` // sum of new-instance setup costs
	Link  float64 `json:"link"`  // sum over distinct (stage, edge) pairs
	Total float64 `json:"total"`
}

// Cost evaluates objective (1a) for the embedding: the setup cost of
// every distinct new instance plus the link cost of every distinct
// (stage, directed edge) pair across all walks. It does not check
// feasibility; pair it with Validate.
func (net *Network) Cost(e *Embedding) CostBreakdown {
	var bd CostBreakdown
	seenInst := make(map[[2]int]bool, len(e.NewInstances))
	for _, inst := range e.NewInstances {
		key := [2]int{inst.VNF, inst.Node}
		if seenInst[key] {
			continue
		}
		seenInst[key] = true
		bd.Setup += net.SetupCost(inst.VNF, inst.Node)
	}
	seenEdge := make(map[stageEdge]bool)
	for _, w := range e.Walks {
		for _, seg := range w {
			for i := 1; i < len(seg.Path); i++ {
				key := stageEdge{level: seg.Level, u: seg.Path[i-1], v: seg.Path[i]}
				if seenEdge[key] {
					continue
				}
				seenEdge[key] = true
				c, ok := net.g.HasEdge(key.u, key.v)
				if !ok {
					// Mirror Validate's verdict by pricing non-edges at +Inf.
					bd.Link = math.Inf(1)
					bd.Total = math.Inf(1)
					return bd
				}
				bd.Link += c
			}
		}
	}
	bd.Total = bd.Setup + bd.Link
	return bd
}

// Validate checks the embedding against every problem constraint:
//
//	(1b) every destination is served by every chain VNF;
//	(1c) every destination's walk starts at the source;
//	(1d) node capacities are respected;
//	(1e) chain order: segment endpoints are consistent, every segment
//	     path is edge-connected, and level j is served before level j+1;
//	(1f) implicit in the walk representation.
//
// It also checks structural consistency of NewInstances (servers only,
// no duplicates, not already deployed) and that every serving node
// actually hosts the required VNF (pre-deployed or newly placed).
func (net *Network) Validate(e *Embedding) error {
	task := e.Task
	if err := task.Validate(net); err != nil {
		return err
	}
	k := task.K()
	if len(e.Walks) != len(task.Destinations) {
		return fmt.Errorf("%w: %d walks for %d destinations",
			ErrInfeasible, len(e.Walks), len(task.Destinations))
	}

	// New instances: structural checks + capacity accounting.
	newDemand := make(map[int]float64) // node -> added demand
	seenInst := make(map[[2]int]bool, len(e.NewInstances))
	hasNew := make(map[[2]int]bool, len(e.NewInstances)) // (vnf,node)
	for _, inst := range e.NewInstances {
		vnf, err := net.VNF(inst.VNF)
		if err != nil {
			return fmt.Errorf("%w: new instance %+v: %v", ErrInfeasible, inst, err)
		}
		if !net.IsServer(inst.Node) {
			return fmt.Errorf("%w: new instance of %q on switch node %d",
				ErrInfeasible, vnf.Name, inst.Node)
		}
		if net.IsDeployed(inst.VNF, inst.Node) {
			return fmt.Errorf("%w: instance of %q on node %d duplicates a deployed one",
				ErrInfeasible, vnf.Name, inst.Node)
		}
		key := [2]int{inst.VNF, inst.Node}
		if seenInst[key] {
			return fmt.Errorf("%w: duplicate new instance of %q on node %d",
				ErrInfeasible, vnf.Name, inst.Node)
		}
		seenInst[key] = true
		hasNew[key] = true
		newDemand[inst.Node] += vnf.Demand
	}
	for v, add := range newDemand {
		if net.UsedCapacity(v)+add > net.Capacity(v)+1e-9 {
			return fmt.Errorf("%w: constraint (1d): node %d capacity %v exceeded (used %v + new %v)",
				ErrInfeasible, v, net.Capacity(v), net.UsedCapacity(v), add)
		}
	}

	for di, d := range task.Destinations {
		w := e.Walks[di]
		if len(w) != k+1 {
			return fmt.Errorf("%w: destination %d walk has %d segments, want %d",
				ErrInfeasible, d, len(w), k+1)
		}
		prevEnd := task.Source
		for j := 0; j <= k; j++ {
			seg := w[j]
			if seg.Level != j {
				return fmt.Errorf("%w: destination %d segment %d labelled level %d",
					ErrInfeasible, d, j, seg.Level)
			}
			if len(seg.Path) == 0 {
				return fmt.Errorf("%w: destination %d segment %d empty", ErrInfeasible, d, j)
			}
			if seg.Path[0] != prevEnd {
				return fmt.Errorf("%w: constraint (1e): destination %d segment %d starts at %d, want %d",
					ErrInfeasible, d, j, seg.Path[0], prevEnd)
			}
			for i := 1; i < len(seg.Path); i++ {
				if _, ok := net.g.HasEdge(seg.Path[i-1], seg.Path[i]); !ok {
					return fmt.Errorf("%w: destination %d segment %d uses non-edge %d-%d",
						ErrInfeasible, d, j, seg.Path[i-1], seg.Path[i])
				}
			}
			prevEnd = seg.Path[len(seg.Path)-1]
			// Segment j (for j < k) ends at the node serving level j+1.
			if j < k {
				host := prevEnd
				f := task.Chain[j]
				if !net.IsDeployed(f, host) && !hasNew[[2]int{f, host}] {
					return fmt.Errorf("%w: constraint (1b): destination %d level %d needs VNF %d on node %d but none is placed there",
						ErrInfeasible, d, j+1, f, host)
				}
			}
		}
		if prevEnd != d {
			return fmt.Errorf("%w: destination %d walk ends at %d", ErrInfeasible, d, prevEnd)
		}
	}
	return nil
}

// ValidateDeployed checks a *live* embedding: one whose NewInstances
// were installed on the network after solving (the dynamic manager's
// post-admission state). Validate would reject such an embedding as
// duplicating deployed instances and double-count its capacity, so
// this variant re-runs the full constraint check against a scratch
// copy with the embedding's own instances undeployed. It is the
// re-validation the fault-recovery path and the chaos gate use.
func (net *Network) ValidateDeployed(e *Embedding) error {
	scratch := net
	for _, inst := range e.NewInstances {
		if inst.VNF < 0 || inst.VNF >= len(net.catalog) {
			break // Validate reports the malformed instance itself
		}
		if net.IsDeployed(inst.VNF, inst.Node) {
			if scratch == net {
				scratch = net.Clone()
			}
			if err := scratch.Undeploy(inst.VNF, inst.Node); err != nil {
				return fmt.Errorf("%w: undeploy %+v for re-validation: %v", ErrInfeasible, inst, err)
			}
		}
	}
	return scratch.Validate(e)
}

// String renders a human-readable embedding summary.
func (e *Embedding) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "embedding: source=%d k=%d destinations=%v\n",
		e.Task.Source, e.Task.K(), e.Task.Destinations)
	insts := append([]Instance(nil), e.NewInstances...)
	sort.Slice(insts, func(a, b int) bool {
		if insts[a].Level != insts[b].Level {
			return insts[a].Level < insts[b].Level
		}
		return insts[a].Node < insts[b].Node
	})
	for _, inst := range insts {
		fmt.Fprintf(&b, "  new instance: vnf=%d level=%d node=%d\n", inst.VNF, inst.Level, inst.Node)
	}
	for i, w := range e.Walks {
		fmt.Fprintf(&b, "  dest %d:", e.Task.Destinations[i])
		for _, seg := range w {
			fmt.Fprintf(&b, " [L%d %v]", seg.Level, seg.Path)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
