package nfv

import "sync/atomic"

// Metric-cache traffic counters. Every Network.Metric call is either a
// hit (the generation-stamped closure is still valid — no APSP build,
// no supplier call) or a miss (the closure is rebuilt, locally or via
// the installed supplier). The counters are process-global across all
// networks, matching how the telemetry layer reports them: what
// fraction of solver metric lookups the generation cache absorbs.
var metricHits, metricMisses atomic.Int64

// MetricCacheStats reports the cumulative generation-cache traffic of
// Network.Metric across every network in the process.
func MetricCacheStats() (hits, misses int64) {
	return metricHits.Load(), metricMisses.Load()
}
