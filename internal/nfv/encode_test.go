package nfv

import (
	"encoding/json"
	"testing"

	"sftree/internal/graph"
)

func TestInstanceDocRoundTrip(t *testing.T) {
	g := graph.New(4)
	g.MustAddEdge(0, 1, 1.5)
	g.MustAddEdge(1, 2, 2.5)
	g.MustAddEdge(2, 3, 3.5)
	net := NewNetwork(g, DefaultCatalog())
	net.SetCoords([]Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 1, Y: 1}, {X: 2, Y: 2}})
	for v := 1; v < 4; v++ {
		if err := net.SetServer(v, 3); err != nil {
			t.Fatal(err)
		}
	}
	if err := net.SetSetupCost(2, 1, 4.25); err != nil {
		t.Fatal(err)
	}
	if err := net.Deploy(5, 2); err != nil {
		t.Fatal(err)
	}
	task := Task{Source: 0, Destinations: []int{3}, Chain: SFC{2, 5}}

	data, err := json.Marshal(InstanceDoc{Network: net, Task: task})
	if err != nil {
		t.Fatal(err)
	}
	var back InstanceDoc
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}

	if back.Network.NumNodes() != 4 {
		t.Errorf("nodes = %d", back.Network.NumNodes())
	}
	if back.Network.Graph().NumEdges() != 3 {
		t.Errorf("edges = %d", back.Network.Graph().NumEdges())
	}
	if c, ok := back.Network.Graph().HasEdge(1, 2); !ok || c != 2.5 {
		t.Errorf("edge 1-2 = %v,%v", c, ok)
	}
	if !back.Network.IsServer(2) || back.Network.IsServer(0) {
		t.Error("server flags lost")
	}
	if back.Network.Capacity(3) != 3 {
		t.Errorf("capacity = %v", back.Network.Capacity(3))
	}
	if !back.Network.IsDeployed(5, 2) {
		t.Error("deployment lost")
	}
	if back.Network.RawSetupCost(2, 1) != 4.25 {
		t.Errorf("setup cost = %v", back.Network.RawSetupCost(2, 1))
	}
	if got := back.Network.Coords(); len(got) != 4 || got[3].X != 2 {
		t.Errorf("coords = %v", got)
	}
	if back.Task.Source != 0 || len(back.Task.Chain) != 2 || back.Task.Chain[1] != 5 {
		t.Errorf("task = %+v", back.Task)
	}
}

func TestInstanceDocMarshalNilNetwork(t *testing.T) {
	if _, err := json.Marshal(InstanceDoc{}); err == nil {
		t.Error("marshal of nil network succeeded")
	}
}

func TestInstanceDocUnmarshalBadEdge(t *testing.T) {
	blob := `{"network":{"nodes":2,"edges":[{"u":0,"v":5,"cost":1}],"catalog":[],"servers":[]},"task":{"source":0,"destinations":[1],"chain":[0]}}`
	var doc InstanceDoc
	if err := json.Unmarshal([]byte(blob), &doc); err == nil {
		t.Error("out-of-range edge accepted")
	}
}
