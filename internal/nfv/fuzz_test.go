package nfv

import (
	"encoding/json"
	"testing"

	"sftree/internal/graph"
)

// FuzzInstanceDocUnmarshal feeds arbitrary bytes into the instance
// decoder: it must never panic, and anything it accepts must survive a
// re-encode/re-decode round trip with the same shape.
func FuzzInstanceDocUnmarshal(f *testing.F) {
	// Seed with a real document.
	g := graph.New(3)
	g.MustAddEdge(0, 1, 1.5)
	g.MustAddEdge(1, 2, 2)
	net := NewNetwork(g, DefaultCatalog())
	if err := net.SetServer(1, 2); err != nil {
		f.Fatal(err)
	}
	if err := net.Deploy(0, 1); err != nil {
		f.Fatal(err)
	}
	seed, err := json.Marshal(InstanceDoc{
		Network: net,
		Task:    Task{Source: 0, Destinations: []int{2}, Chain: SFC{0}},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"network":{"nodes":-1},"task":{}}`))
	f.Add([]byte(`{"network":{"nodes":2,"edges":[{"u":0,"v":1,"cost":-3}],"catalog":[],"servers":[]},"task":{}}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		var doc InstanceDoc
		if err := json.Unmarshal(data, &doc); err != nil {
			return // rejection is fine; panics are not
		}
		if doc.Network == nil {
			return
		}
		out, err := json.Marshal(doc)
		if err != nil {
			t.Fatalf("accepted doc failed to re-marshal: %v", err)
		}
		var back InstanceDoc
		if err := json.Unmarshal(out, &back); err != nil {
			t.Fatalf("re-marshalled doc failed to parse: %v", err)
		}
		if back.Network.NumNodes() != doc.Network.NumNodes() {
			t.Fatalf("round trip changed node count %d -> %d",
				doc.Network.NumNodes(), back.Network.NumNodes())
		}
		if back.Network.Graph().NumEdges() != doc.Network.Graph().NumEdges() {
			t.Fatalf("round trip changed edge count")
		}
	})
}

// FuzzValidateNeverPanics throws structurally arbitrary embeddings at
// the validator and the cost oracle.
func FuzzValidateNeverPanics(f *testing.F) {
	f.Add(int64(1), uint8(3), uint8(1), uint8(2))
	f.Add(int64(99), uint8(0), uint8(0), uint8(0))
	f.Fuzz(func(t *testing.T, seed int64, rawNode, rawLevel, rawLen uint8) {
		g := graph.New(4)
		g.MustAddEdge(0, 1, 1)
		g.MustAddEdge(1, 2, 1)
		g.MustAddEdge(2, 3, 1)
		net := NewNetwork(g, []VNF{{ID: 0, Name: "f", Demand: 1}})
		if err := net.SetServer(1, 1); err != nil {
			t.Fatal(err)
		}
		// Deliberately malformed embedding pieces.
		node := int(rawNode)%6 - 1 // may be out of range
		e := &Embedding{
			Task:         Task{Source: 0, Destinations: []int{3}, Chain: SFC{0}},
			NewInstances: []Instance{{VNF: int(rawLen) % 3, Node: node, Level: int(rawLevel)}},
			Walks: []Walk{{
				{Level: int(rawLevel) % 3, Path: []int{0, int(rawNode) % 4}},
				{Level: 1, Path: []int{int(rawNode) % 4, 3}},
			}},
		}
		// Must not panic; error or success are both acceptable.
		if err := net.Validate(e); err == nil {
			_ = net.Cost(e)
		}
	})
}
