package nfv

import (
	"fmt"
)

// SFC is a service function chain: VNF catalog IDs in traversal order.
type SFC []int

// Task is a multicast task delta = (S, D, chain): deliver one flow from
// Source to every destination, where each flow must traverse the chain
// in order before arriving.
type Task struct {
	Source       int   `json:"source"`
	Destinations []int `json:"destinations"`
	Chain        SFC   `json:"chain"`
}

// Validate checks the task against the network: node ranges, VNF IDs,
// non-empty chain and destination set, and no repeated chain entries
// (an SFC lists distinct function types).
func (t Task) Validate(net *Network) error {
	n := net.NumNodes()
	if t.Source < 0 || t.Source >= n {
		return fmt.Errorf("%w: source %d out of range", ErrInvalidTask, t.Source)
	}
	if len(t.Destinations) == 0 {
		return fmt.Errorf("%w: no destinations", ErrInvalidTask)
	}
	seenDest := make(map[int]bool, len(t.Destinations))
	for _, d := range t.Destinations {
		if d < 0 || d >= n {
			return fmt.Errorf("%w: destination %d out of range", ErrInvalidTask, d)
		}
		if seenDest[d] {
			return fmt.Errorf("%w: duplicate destination %d", ErrInvalidTask, d)
		}
		seenDest[d] = true
	}
	if len(t.Chain) == 0 {
		return fmt.Errorf("%w: empty SFC", ErrInvalidTask)
	}
	seenVNF := make(map[int]bool, len(t.Chain))
	for _, f := range t.Chain {
		if f < 0 || f >= net.CatalogSize() {
			return fmt.Errorf("%w: %w id %d", ErrInvalidTask, ErrUnknownVNF, f)
		}
		if seenVNF[f] {
			return fmt.Errorf("%w: VNF %d repeated in chain", ErrInvalidTask, f)
		}
		seenVNF[f] = true
	}
	return nil
}

// K returns the chain length.
func (t Task) K() int { return len(t.Chain) }

// CloneTask returns a deep copy of the task.
func (t Task) CloneTask() Task {
	return Task{
		Source:       t.Source,
		Destinations: append([]int(nil), t.Destinations...),
		Chain:        append(SFC(nil), t.Chain...),
	}
}
