package nfv

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sftree/internal/graph"
)

// randomEmbedding builds a random feasible embedding on a random
// network: per destination, hosts are sampled per level and walks
// follow shortest paths.
func randomEmbedding(seed int64) (*Network, *Embedding) {
	rng := rand.New(rand.NewSource(seed))
	n := 5 + rng.Intn(10)
	g := graph.New(n)
	for v := 1; v < n; v++ {
		g.MustAddEdge(rng.Intn(v), v, 0.5+rng.Float64()*9)
	}
	for i := 0; i < n; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.MustAddEdge(u, v, 0.5+rng.Float64()*9)
		}
	}
	k := 1 + rng.Intn(3)
	catalog := make([]VNF, k)
	for f := range catalog {
		catalog[f] = VNF{ID: f, Name: "f", Demand: 1}
	}
	net := NewNetwork(g, catalog)
	for v := 0; v < n; v++ {
		if err := net.SetServer(v, float64(k)); err != nil {
			panic(err)
		}
		for f := range catalog {
			if err := net.SetSetupCost(f, v, rng.Float64()*5); err != nil {
				panic(err)
			}
		}
	}
	metric := g.FloydWarshall()
	nd := 1 + rng.Intn(3)
	perm := rng.Perm(n)
	task := Task{Source: perm[0], Destinations: perm[1 : 1+nd], Chain: make(SFC, k)}
	for j := range task.Chain {
		task.Chain[j] = j
	}
	e := &Embedding{Task: task}
	placed := map[[2]int]bool{}
	for _, d := range task.Destinations {
		prev := task.Source
		w := make(Walk, 0, k+1)
		for j := 1; j <= k; j++ {
			host := rng.Intn(n)
			f := task.Chain[j-1]
			if !placed[[2]int{f, host}] {
				placed[[2]int{f, host}] = true
				e.NewInstances = append(e.NewInstances, Instance{VNF: f, Node: host, Level: j})
			}
			w = append(w, Segment{Level: j - 1, Path: metric.Path(prev, host)})
			prev = host
		}
		w = append(w, Segment{Level: k, Path: metric.Path(prev, d)})
		e.Walks = append(e.Walks, w)
	}
	return net, e
}

// Property: random shortest-path embeddings built to spec always pass
// validation, and their cost decomposes additively.
func TestQuickRandomEmbeddingsValidate(t *testing.T) {
	prop := func(seed int64) bool {
		net, e := randomEmbedding(seed)
		if err := net.Validate(e); err != nil {
			return false
		}
		bd := net.Cost(e)
		return math.Abs(bd.Total-(bd.Setup+bd.Link)) < 1e-9 && bd.Link >= 0 && bd.Setup >= 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: cost is invariant under destination reordering (walks
// permuted consistently) — multicast dedup cannot depend on order.
func TestQuickCostPermutationInvariant(t *testing.T) {
	prop := func(seed int64) bool {
		net, e := randomEmbedding(seed)
		base := net.Cost(e).Total
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		perm := rng.Perm(len(e.Task.Destinations))
		shuffled := &Embedding{
			Task: Task{
				Source:       e.Task.Source,
				Destinations: make([]int, len(perm)),
				Chain:        e.Task.Chain,
			},
			NewInstances: e.NewInstances,
			Walks:        make([]Walk, len(perm)),
		}
		for i, p := range perm {
			shuffled.Task.Destinations[i] = e.Task.Destinations[p]
			shuffled.Walks[i] = e.Walks[p]
		}
		return math.Abs(net.Cost(shuffled).Total-base) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: duplicating a destination's walk (served identically)
// never increases cost — multicast stage-edge dedup absorbs it fully.
func TestQuickCostDedupIdempotent(t *testing.T) {
	prop := func(seed int64) bool {
		net, e := randomEmbedding(seed)
		base := net.Cost(e).Total
		dup := &Embedding{
			Task: Task{
				Source:       e.Task.Source,
				Destinations: append(append([]int{}, e.Task.Destinations...), e.Task.Destinations[0]),
				Chain:        e.Task.Chain,
			},
			NewInstances: e.NewInstances,
			Walks:        append(append([]Walk{}, e.Walks...), e.Walks[0]),
		}
		return math.Abs(net.Cost(dup).Total-base) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: deploying a chain VNF somewhere never increases the cost
// of an existing embedding (setup can only get cheaper), provided the
// instance list is adjusted to reuse it.
func TestQuickDeploymentNeverHurts(t *testing.T) {
	prop := func(seed int64) bool {
		net, e := randomEmbedding(seed)
		before := net.Cost(e).Total
		if len(e.NewInstances) == 0 {
			return true
		}
		rng := rand.New(rand.NewSource(seed ^ 0x7ea1))
		inst := e.NewInstances[rng.Intn(len(e.NewInstances))]
		net2 := net.Clone()
		if err := net2.Deploy(inst.VNF, inst.Node); err != nil {
			return true // capacity full; nothing to check
		}
		e2 := e.Clone()
		kept := e2.NewInstances[:0]
		for _, other := range e2.NewInstances {
			if other != inst {
				kept = append(kept, other)
			}
		}
		e2.NewInstances = kept
		if err := net2.Validate(e2); err != nil {
			return false
		}
		return net2.Cost(e2).Total <= before+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
