package nfv

import (
	"errors"
	"testing"

	"sftree/internal/graph"
)

// lineNetwork builds S=0 - 1 - 2 - 3=d with unit edges, all nodes
// servers with capacity 2, catalog of 3 VNFs, unit setup costs.
func lineNetwork(t *testing.T) *Network {
	t.Helper()
	g := graph.New(4)
	for v := 1; v < 4; v++ {
		g.MustAddEdge(v-1, v, 1)
	}
	catalog := []VNF{
		{ID: 0, Name: "f1", Demand: 1},
		{ID: 1, Name: "f2", Demand: 1},
		{ID: 2, Name: "f3", Demand: 1},
	}
	net := NewNetwork(g, catalog)
	for v := 0; v < 4; v++ {
		if err := net.SetServer(v, 2); err != nil {
			t.Fatal(err)
		}
		for f := 0; f < 3; f++ {
			if err := net.SetSetupCost(f, v, 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	return net
}

func TestSetServerValidation(t *testing.T) {
	net := lineNetwork(t)
	if err := net.SetServer(99, 1); !errors.Is(err, graph.ErrNodeOutOfRange) {
		t.Errorf("got %v", err)
	}
	if err := net.SetServer(0, -1); err == nil {
		t.Error("negative capacity accepted")
	}
}

func TestDeployAndSetupCost(t *testing.T) {
	net := lineNetwork(t)
	if got := net.SetupCost(0, 1); got != 1 {
		t.Errorf("setup before deploy = %v, want 1", got)
	}
	if err := net.Deploy(0, 1); err != nil {
		t.Fatal(err)
	}
	if got := net.SetupCost(0, 1); got != 0 {
		t.Errorf("setup after deploy = %v, want 0 (reuse is free)", got)
	}
	if got := net.RawSetupCost(0, 1); got != 1 {
		t.Errorf("raw setup = %v, want 1", got)
	}
	if err := net.Deploy(0, 1); !errors.Is(err, ErrAlreadyDeployed) {
		t.Errorf("double deploy: got %v", err)
	}
	if !net.IsDeployed(0, 1) || net.IsDeployed(1, 1) {
		t.Error("deployment state wrong")
	}
}

func TestDeployCapacity(t *testing.T) {
	net := lineNetwork(t) // capacity 2 each
	if err := net.Deploy(0, 2); err != nil {
		t.Fatal(err)
	}
	if err := net.Deploy(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := net.Deploy(2, 2); !errors.Is(err, ErrCapacityExceeded) {
		t.Errorf("over-capacity deploy: got %v", err)
	}
	if got := net.UsedCapacity(2); got != 2 {
		t.Errorf("UsedCapacity = %v, want 2", got)
	}
	if got := net.FreeCapacity(2); got != 0 {
		t.Errorf("FreeCapacity = %v, want 0", got)
	}
}

func TestUndeploy(t *testing.T) {
	net := lineNetwork(t)
	if err := net.Deploy(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := net.Undeploy(0, 1); err != nil {
		t.Fatal(err)
	}
	if net.IsDeployed(0, 1) {
		t.Error("still deployed after Undeploy")
	}
	if got := net.SetupCost(0, 1); got != 1 {
		t.Errorf("setup after undeploy = %v, want raw cost 1", got)
	}
	if got := net.FreeCapacity(1); got != 2 {
		t.Errorf("capacity not freed: %v", got)
	}
	if err := net.Undeploy(0, 1); err == nil {
		t.Error("double undeploy accepted")
	}
	if err := net.Undeploy(99, 1); !errors.Is(err, ErrUnknownVNF) {
		t.Errorf("unknown vnf: %v", err)
	}
	if err := net.Undeploy(0, -1); err == nil {
		t.Error("bad node accepted")
	}
}

func TestDeployOnSwitch(t *testing.T) {
	g := graph.New(2)
	g.MustAddEdge(0, 1, 1)
	net := NewNetwork(g, DefaultCatalog())
	if err := net.Deploy(0, 1); !errors.Is(err, ErrNotServer) {
		t.Errorf("deploy on switch: got %v", err)
	}
	if err := net.Deploy(77, 0); !errors.Is(err, ErrUnknownVNF) {
		t.Errorf("unknown vnf: got %v", err)
	}
}

func TestTaskValidate(t *testing.T) {
	net := lineNetwork(t)
	good := Task{Source: 0, Destinations: []int{3}, Chain: SFC{0, 1}}
	if err := good.Validate(net); err != nil {
		t.Errorf("valid task rejected: %v", err)
	}
	cases := []struct {
		name string
		task Task
	}{
		{"bad source", Task{Source: -1, Destinations: []int{3}, Chain: SFC{0}}},
		{"no destinations", Task{Source: 0, Chain: SFC{0}}},
		{"dup destination", Task{Source: 0, Destinations: []int{3, 3}, Chain: SFC{0}}},
		{"dest out of range", Task{Source: 0, Destinations: []int{9}, Chain: SFC{0}}},
		{"empty chain", Task{Source: 0, Destinations: []int{3}}},
		{"unknown vnf", Task{Source: 0, Destinations: []int{3}, Chain: SFC{9}}},
		{"repeated vnf", Task{Source: 0, Destinations: []int{3}, Chain: SFC{0, 0}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.task.Validate(net); !errors.Is(err, ErrInvalidTask) {
				t.Errorf("got %v, want ErrInvalidTask", err)
			}
		})
	}
}

// chainEmbedding builds a simple valid embedding on lineNetwork:
// f1 on node 1, f2 on node 2, destination 3.
func chainEmbedding() *Embedding {
	task := Task{Source: 0, Destinations: []int{3}, Chain: SFC{0, 1}}
	return &Embedding{
		Task: task,
		NewInstances: []Instance{
			{VNF: 0, Node: 1, Level: 1},
			{VNF: 1, Node: 2, Level: 2},
		},
		Walks: []Walk{{
			{Level: 0, Path: []int{0, 1}},
			{Level: 1, Path: []int{1, 2}},
			{Level: 2, Path: []int{2, 3}},
		}},
	}
}

func TestValidateAcceptsGoodEmbedding(t *testing.T) {
	net := lineNetwork(t)
	if err := net.Validate(chainEmbedding()); err != nil {
		t.Fatalf("valid embedding rejected: %v", err)
	}
}

func TestCostBasicChain(t *testing.T) {
	net := lineNetwork(t)
	bd := net.Cost(chainEmbedding())
	if bd.Setup != 2 {
		t.Errorf("setup = %v, want 2", bd.Setup)
	}
	if bd.Link != 3 {
		t.Errorf("link = %v, want 3", bd.Link)
	}
	if bd.Total != 5 {
		t.Errorf("total = %v, want 5", bd.Total)
	}
}

func TestCostDeduplicatesSharedStageEdges(t *testing.T) {
	// Two destinations sharing the whole chain: link cost counted once
	// per stage-edge, so adding a second destination served at node 3
	// through the same edges adds nothing for shared segments.
	g := graph.New(5)
	for v := 1; v < 5; v++ {
		g.MustAddEdge(v-1, v, 1)
	}
	net := NewNetwork(g, []VNF{{ID: 0, Name: "f1", Demand: 1}})
	for v := 0; v < 5; v++ {
		if err := net.SetServer(v, 5); err != nil {
			t.Fatal(err)
		}
		if err := net.SetSetupCost(0, v, 1); err != nil {
			t.Fatal(err)
		}
	}
	task := Task{Source: 0, Destinations: []int{3, 4}, Chain: SFC{0}}
	e := &Embedding{
		Task:         task,
		NewInstances: []Instance{{VNF: 0, Node: 1, Level: 1}},
		Walks: []Walk{
			{
				{Level: 0, Path: []int{0, 1}},
				{Level: 1, Path: []int{1, 2, 3}},
			},
			{
				{Level: 0, Path: []int{0, 1}},
				{Level: 1, Path: []int{1, 2, 3, 4}},
			},
		},
	}
	if err := net.Validate(e); err != nil {
		t.Fatal(err)
	}
	bd := net.Cost(e)
	// Stage 0: edge 0-1 once. Stage 1: edges 1-2,2-3,3-4 once each.
	if bd.Link != 4 {
		t.Errorf("link = %v, want 4 (dedup per stage)", bd.Link)
	}
	if bd.Setup != 1 {
		t.Errorf("setup = %v, want 1", bd.Setup)
	}
}

func TestCostCountsSameEdgeOncePerStage(t *testing.T) {
	// A walk that traverses the same edge at two different stages pays
	// twice (different flow content), matching the ILP's per-stage psi.
	g := graph.New(2)
	g.MustAddEdge(0, 1, 5)
	net := NewNetwork(g, []VNF{{ID: 0, Name: "f1", Demand: 1}})
	if err := net.SetServer(1, 1); err != nil {
		t.Fatal(err)
	}
	if err := net.SetSetupCost(0, 1, 3); err != nil {
		t.Fatal(err)
	}
	task := Task{Source: 0, Destinations: []int{0}, Chain: SFC{0}}
	e := &Embedding{
		Task:         task,
		NewInstances: []Instance{{VNF: 0, Node: 1, Level: 1}},
		Walks: []Walk{{
			{Level: 0, Path: []int{0, 1}},
			{Level: 1, Path: []int{1, 0}},
		}},
	}
	// Destination is the source itself; allowed? Task validation only
	// requires destinations in range and distinct; S can be a receiver.
	if err := net.Validate(e); err != nil {
		t.Fatalf("round-trip embedding rejected: %v", err)
	}
	bd := net.Cost(e)
	if bd.Link != 10 {
		t.Errorf("link = %v, want 10 (edge paid per stage)", bd.Link)
	}
	if bd.Total != 13 {
		t.Errorf("total = %v, want 13", bd.Total)
	}
}

func TestCostReusedInstanceIsFree(t *testing.T) {
	net := lineNetwork(t)
	if err := net.Deploy(0, 1); err != nil {
		t.Fatal(err)
	}
	e := chainEmbedding()
	// Drop the now-deployed f1 from NewInstances (it is reused).
	e.NewInstances = e.NewInstances[1:]
	if err := net.Validate(e); err != nil {
		t.Fatal(err)
	}
	bd := net.Cost(e)
	if bd.Setup != 1 {
		t.Errorf("setup = %v, want 1 (reused instance free)", bd.Setup)
	}
}

func TestValidateRejections(t *testing.T) {
	net := lineNetwork(t)
	mk := chainEmbedding

	t.Run("wrong walk count", func(t *testing.T) {
		e := mk()
		e.Walks = nil
		if err := net.Validate(e); !errors.Is(err, ErrInfeasible) {
			t.Errorf("got %v", err)
		}
	})
	t.Run("wrong segment count", func(t *testing.T) {
		e := mk()
		e.Walks[0] = e.Walks[0][:2]
		if err := net.Validate(e); !errors.Is(err, ErrInfeasible) {
			t.Errorf("got %v", err)
		}
	})
	t.Run("walk not starting at source", func(t *testing.T) {
		e := mk()
		e.Walks[0][0].Path = []int{1}
		if err := net.Validate(e); !errors.Is(err, ErrInfeasible) {
			t.Errorf("got %v", err)
		}
	})
	t.Run("disconnected segment endpoints", func(t *testing.T) {
		e := mk()
		e.Walks[0][1].Path = []int{2, 3} // level-1 must start where level-0 ended (1)
		if err := net.Validate(e); !errors.Is(err, ErrInfeasible) {
			t.Errorf("got %v", err)
		}
	})
	t.Run("non-edge hop", func(t *testing.T) {
		e := mk()
		e.Walks[0][0].Path = []int{0, 2} // 0-2 is not an edge
		if err := net.Validate(e); !errors.Is(err, ErrInfeasible) {
			t.Errorf("got %v", err)
		}
	})
	t.Run("missing VNF at serving node", func(t *testing.T) {
		e := mk()
		e.NewInstances = e.NewInstances[1:] // drop f1@1 without deploying
		if err := net.Validate(e); !errors.Is(err, ErrInfeasible) {
			t.Errorf("got %v", err)
		}
	})
	t.Run("walk ends at wrong node", func(t *testing.T) {
		e := mk()
		e.Walks[0][2].Path = []int{2}
		if err := net.Validate(e); !errors.Is(err, ErrInfeasible) {
			t.Errorf("got %v", err)
		}
	})
	t.Run("instance on switch", func(t *testing.T) {
		g := graph.New(4)
		for v := 1; v < 4; v++ {
			g.MustAddEdge(v-1, v, 1)
		}
		sw := NewNetwork(g, DefaultCatalog())
		// only node 2 is a server
		if err := sw.SetServer(2, 5); err != nil {
			t.Fatal(err)
		}
		e := &Embedding{
			Task:         Task{Source: 0, Destinations: []int{3}, Chain: SFC{0}},
			NewInstances: []Instance{{VNF: 0, Node: 1, Level: 1}},
			Walks: []Walk{{
				{Level: 0, Path: []int{0, 1}},
				{Level: 1, Path: []int{1, 2, 3}},
			}},
		}
		if err := sw.Validate(e); !errors.Is(err, ErrInfeasible) {
			t.Errorf("got %v", err)
		}
	})
	t.Run("capacity violation", func(t *testing.T) {
		e := mk()
		// Push both instances onto node 1 whose capacity is 2, then a
		// third synthetic one to overflow.
		net2 := lineNetwork(t)
		if err := net2.SetServer(1, 1); err != nil { // shrink capacity
			t.Fatal(err)
		}
		e.NewInstances = []Instance{
			{VNF: 0, Node: 1, Level: 1},
			{VNF: 1, Node: 1, Level: 2},
		}
		e.Walks[0] = Walk{
			{Level: 0, Path: []int{0, 1}},
			{Level: 1, Path: []int{1}},
			{Level: 2, Path: []int{1, 2, 3}},
		}
		if err := net2.Validate(e); !errors.Is(err, ErrInfeasible) {
			t.Errorf("got %v", err)
		}
	})
	t.Run("duplicate new instance", func(t *testing.T) {
		e := mk()
		e.NewInstances = append(e.NewInstances, e.NewInstances[0])
		if err := net.Validate(e); !errors.Is(err, ErrInfeasible) {
			t.Errorf("got %v", err)
		}
	})
}

func TestEmbeddingCloneIsDeep(t *testing.T) {
	e := chainEmbedding()
	c := e.Clone()
	c.Walks[0][0].Path[0] = 99
	c.NewInstances[0].Node = 99
	if e.Walks[0][0].Path[0] == 99 || e.NewInstances[0].Node == 99 {
		t.Error("Clone shares state with original")
	}
}

func TestServingNode(t *testing.T) {
	e := chainEmbedding()
	if got := e.ServingNode(0, 1); got != 1 {
		t.Errorf("ServingNode(0,1) = %d, want 1", got)
	}
	if got := e.ServingNode(0, 2); got != 2 {
		t.Errorf("ServingNode(0,2) = %d, want 2", got)
	}
}

func TestDefaultCatalog(t *testing.T) {
	cat := DefaultCatalog()
	if len(cat) != 30 {
		t.Fatalf("catalog size = %d, want 30", len(cat))
	}
	seen := map[string]bool{}
	for i, f := range cat {
		if f.ID != i {
			t.Errorf("catalog[%d].ID = %d", i, f.ID)
		}
		if f.Demand != 1 {
			t.Errorf("catalog[%d].Demand = %v, want 1", i, f.Demand)
		}
		if seen[f.Name] {
			t.Errorf("duplicate VNF name %q", f.Name)
		}
		seen[f.Name] = true
	}
}

func TestNetworkClone(t *testing.T) {
	net := lineNetwork(t)
	if err := net.Deploy(0, 1); err != nil {
		t.Fatal(err)
	}
	c := net.Clone()
	if err := c.Deploy(1, 1); err != nil {
		t.Fatal(err)
	}
	if net.IsDeployed(1, 1) {
		t.Error("clone deployment leaked into original")
	}
	if !c.IsDeployed(0, 1) {
		t.Error("clone lost original deployment")
	}
}

func TestMetricCached(t *testing.T) {
	net := lineNetwork(t)
	m1 := net.Metric()
	m2 := net.Metric()
	if m1 != m2 {
		t.Error("Metric not cached")
	}
	if m1.Dist[0][3] != 3 {
		t.Errorf("dist 0-3 = %v, want 3", m1.Dist[0][3])
	}
}
