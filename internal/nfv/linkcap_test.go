package nfv

import (
	"math"
	"strings"
	"testing"

	"sftree/internal/graph"
)

// capNet builds a 4-node line with servers on 1,2.
func capNet(t *testing.T) *Network {
	t.Helper()
	g := graph.New(4)
	for v := 1; v < 4; v++ {
		g.MustAddEdge(v-1, v, float64(v))
	}
	net := NewNetwork(g, []VNF{{ID: 0, Name: "f0", Demand: 1}})
	for _, v := range []int{1, 2} {
		if err := net.SetServer(v, 2); err != nil {
			t.Fatal(err)
		}
		if err := net.SetSetupCost(0, v, 1); err != nil {
			t.Fatal(err)
		}
	}
	return net
}

func TestSetLinkCapacityBasics(t *testing.T) {
	net := capNet(t)
	if err := net.SetLinkCapacity(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	if got := net.LinkCapacity(1, 0); got != 2 {
		t.Errorf("capacity = %d, want 2 (order-insensitive)", got)
	}
	if err := net.SetLinkCapacity(0, 3, 1); err == nil {
		t.Error("non-adjacent pair accepted")
	}
	if err := net.SetLinkCapacity(0, 1, -2); err == nil {
		t.Error("negative accepted")
	}
	if err := net.SetLinkCapacity(0, 1, 0); err != nil {
		t.Fatal(err)
	}
	if got := net.LinkCapacity(0, 1); got != 0 {
		t.Errorf("cleared = %d", got)
	}
}

// outAndBack builds an embedding whose flow crosses edge 1-2 twice
// (stage 0 out to the instance at 2, stage 1 back towards dest 1).
func outAndBack() *Embedding {
	return &Embedding{
		Task:         Task{Source: 0, Destinations: []int{1}, Chain: SFC{0}},
		NewInstances: []Instance{{VNF: 0, Node: 2, Level: 1}},
		Walks: []Walk{{
			{Level: 0, Path: []int{0, 1, 2}},
			{Level: 1, Path: []int{2, 1}},
		}},
	}
}

func TestLinkViolationsCountsPerStageAndDirection(t *testing.T) {
	net := capNet(t)
	e := outAndBack()
	if err := net.Validate(e); err != nil {
		t.Fatal(err)
	}
	// No bounds: no violations.
	if v := net.LinkViolations(e); v != nil {
		t.Fatalf("unexpected: %v", v)
	}
	if err := net.SetLinkCapacity(1, 2, 1); err != nil {
		t.Fatal(err)
	}
	v := net.LinkViolations(e)
	if len(v) != 1 {
		t.Fatalf("violations = %v, want one on 1-2", v)
	}
	if v[0].U != 1 || v[0].V != 2 || v[0].Copies != 2 || v[0].Capacity != 1 {
		t.Errorf("violation = %+v", v[0])
	}
	// Raising the bound clears it.
	if err := net.SetLinkCapacity(1, 2, 2); err != nil {
		t.Fatal(err)
	}
	if v := net.LinkViolations(e); v != nil {
		t.Fatalf("still violated: %v", v)
	}
}

func TestReweightedCopy(t *testing.T) {
	net := capNet(t)
	if err := net.Deploy(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := net.SetLinkCapacity(1, 2, 3); err != nil {
		t.Fatal(err)
	}
	shadow, err := net.ReweightedCopy(func(u, v int) float64 {
		if (u == 1 && v == 2) || (u == 2 && v == 1) {
			return 10
		}
		return 1
	})
	if err != nil {
		t.Fatal(err)
	}
	if c, _ := shadow.Graph().HasEdge(1, 2); c != 20 { // 2 * 10
		t.Errorf("reweighted 1-2 = %v, want 20", c)
	}
	if c, _ := shadow.Graph().HasEdge(0, 1); c != 1 {
		t.Errorf("untouched 0-1 = %v, want 1", c)
	}
	// Metadata carried over.
	if !shadow.IsDeployed(0, 1) || shadow.LinkCapacity(1, 2) != 3 {
		t.Error("metadata lost in reweighted copy")
	}
	// Original untouched.
	if c, _ := net.Graph().HasEdge(1, 2); c != 2 {
		t.Errorf("original mutated: %v", c)
	}
	// Factors below 1 are clamped (penalties only inflate).
	shadow2, err := net.ReweightedCopy(func(u, v int) float64 { return 0.1 })
	if err != nil {
		t.Fatal(err)
	}
	if c, _ := shadow2.Graph().HasEdge(0, 1); c != 1 {
		t.Errorf("deflating factor not clamped: %v", c)
	}
}

func TestEmbeddingString(t *testing.T) {
	e := outAndBack()
	s := e.String()
	for _, want := range []string{"source=0", "new instance: vnf=0 level=1 node=2", "dest 1:", "[L0 [0 1 2]]"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

func TestCostOnNonEdgeIsInfinite(t *testing.T) {
	net := capNet(t)
	e := outAndBack()
	e.Walks[0][0].Path = []int{0, 2} // not an edge
	if bd := net.Cost(e); !math.IsInf(bd.Total, 1) {
		t.Errorf("cost over non-edge = %v, want +Inf", bd.Total)
	}
}
