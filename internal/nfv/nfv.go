// Package nfv defines the domain model shared by every solver in this
// repository: the NFV-enabled target network (graph, server nodes,
// capacities, VNF catalog, deployment state, setup costs), the
// multicast task (source, destinations, service function chain), the
// embedding produced by a solver, the traffic-delivery cost oracle of
// the paper's objective (1a), and an independent feasibility validator
// for constraints (1b)-(1f).
package nfv

import (
	"errors"
	"fmt"
	"sync/atomic"

	"sftree/internal/graph"
)

var (
	// ErrNotServer reports a VNF operation on a switch node.
	ErrNotServer = errors.New("nfv: node is not a server")
	// ErrUnknownVNF reports a VNF id outside the catalog.
	ErrUnknownVNF = errors.New("nfv: unknown VNF")
	// ErrCapacityExceeded reports a deployment that overflows a node.
	ErrCapacityExceeded = errors.New("nfv: node capacity exceeded")
	// ErrAlreadyDeployed reports a duplicate deployment.
	ErrAlreadyDeployed = errors.New("nfv: VNF already deployed on node")
	// ErrInvalidTask reports a structurally invalid multicast task.
	ErrInvalidTask = errors.New("nfv: invalid task")
	// ErrInfeasible reports an embedding that violates the problem
	// constraints; the message pinpoints the violated constraint.
	ErrInfeasible = errors.New("nfv: infeasible embedding")
)

// VNF is one virtual network function type from the catalog.
type VNF struct {
	ID     int     `json:"id"`
	Name   string  `json:"name"`
	Demand float64 `json:"demand"` // resource units consumed per instance (mu)
}

// Point is a 2-D node coordinate used for Euclidean link costs.
type Point struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// Network is an NFV-enabled target network: an undirected weighted
// graph plus per-node server metadata and per-(VNF, node) deployment
// state. Build it, then treat it as immutable while solving; Metric()
// caches all-pairs shortest paths on first use.
type Network struct {
	g        *graph.Graph
	coords   []Point
	isServer []bool
	capacity []float64
	catalog  []VNF
	deployed [][]bool    // [vnf][node]
	setup    [][]float64 // [vnf][node]
	linkCap  map[[2]int]int
	// metric is the cached all-pairs closure, stamped with the graph
	// generation it was computed at so topology mutations invalidate
	// it instead of silently serving stale distances. metricFn, when
	// set, supplies the closure instead of a local APSP run — the hook
	// faults.State uses to share one closure across materializations
	// of the same degraded topology.
	metric    *graph.Metric
	metricGen uint64
	metricFn  func() *graph.Metric
	// servers caches ServerList; SetServer invalidates it.
	servers []int
	// epoch counts deployment-state changes (Deploy/Undeploy). Together
	// with the graph generation it versions the network for optimistic
	// concurrency: two networks with the same graph, the same epoch and
	// a common ancestry have identical deployment state, so a solver
	// result computed against one commits cleanly against the other.
	// Clone copies the epoch, so a snapshot stays comparable to its
	// parent. Not synchronized; callers serialize mutations themselves
	// (the dynamic manager mutates only under its commit lock).
	epoch uint64
	// id is a process-unique incarnation stamp assigned at
	// construction and shared by clones: (id, graph generation, epoch)
	// identifies a deployment state exactly, provided clones are not
	// mutated independently of their parent. Snapshot clones taken for
	// read-only solving satisfy this by construction; scratch clones
	// that mutate (e.g. ValidateDeployed's) must never feed
	// version-keyed caches.
	id uint64
}

// netIDs mints process-unique network incarnation IDs.
var netIDs atomic.Uint64

// newGraphLike returns an empty graph with the same node count.
func newGraphLike(g *graph.Graph) *graph.Graph { return graph.New(g.NumNodes()) }

// NewNetwork wraps a finished graph with NFV metadata. All nodes start
// as switches (non-servers); the catalog fixes the universe of VNF
// types. The graph must not be mutated afterwards.
func NewNetwork(g *graph.Graph, catalog []VNF) *Network {
	n := g.NumNodes()
	net := &Network{
		g:        g,
		isServer: make([]bool, n),
		capacity: make([]float64, n),
		catalog:  make([]VNF, len(catalog)),
		deployed: make([][]bool, len(catalog)),
		setup:    make([][]float64, len(catalog)),
		id:       netIDs.Add(1),
	}
	copy(net.catalog, catalog)
	for f := range catalog {
		net.deployed[f] = make([]bool, n)
		net.setup[f] = make([]float64, n)
	}
	return net
}

// Graph returns the underlying graph. Callers must not mutate it.
func (net *Network) Graph() *graph.Graph { return net.g }

// NumNodes returns the node count of the underlying graph.
func (net *Network) NumNodes() int { return net.g.NumNodes() }

// Catalog returns a copy of the VNF catalog.
func (net *Network) Catalog() []VNF {
	out := make([]VNF, len(net.catalog))
	copy(out, net.catalog)
	return out
}

// CatalogSize returns the number of VNF types.
func (net *Network) CatalogSize() int { return len(net.catalog) }

// VNF returns the catalog entry for id.
func (net *Network) VNF(id int) (VNF, error) {
	if id < 0 || id >= len(net.catalog) {
		return VNF{}, fmt.Errorf("%w: id %d", ErrUnknownVNF, id)
	}
	return net.catalog[id], nil
}

// SetCoords stores node coordinates (used only for reporting; costs
// are fixed at edge-creation time).
func (net *Network) SetCoords(coords []Point) {
	net.coords = make([]Point, len(coords))
	copy(net.coords, coords)
}

// Coords returns the node coordinates, or nil if unset.
func (net *Network) Coords() []Point {
	if net.coords == nil {
		return nil
	}
	out := make([]Point, len(net.coords))
	copy(out, net.coords)
	return out
}

// SetServer marks node v as a server with the given deployment capacity.
func (net *Network) SetServer(v int, capacity float64) error {
	if v < 0 || v >= net.g.NumNodes() {
		return fmt.Errorf("%w: node %d", graph.ErrNodeOutOfRange, v)
	}
	if capacity < 0 {
		return fmt.Errorf("nfv: negative capacity %v for node %d", capacity, v)
	}
	net.isServer[v] = true
	net.capacity[v] = capacity
	net.servers = nil // invalidate the cached server list
	return nil
}

// IsServer reports whether v can host VNF instances.
func (net *Network) IsServer(v int) bool {
	return v >= 0 && v < len(net.isServer) && net.isServer[v]
}

// Capacity returns node v's total deployment capacity.
func (net *Network) Capacity(v int) float64 { return net.capacity[v] }

// Servers returns the IDs of all server nodes. The returned slice is
// a copy and may be modified freely; hot loops that only iterate
// should prefer ServerList.
func (net *Network) Servers() []int {
	list := net.ServerList()
	if list == nil {
		return nil
	}
	return append([]int(nil), list...)
}

// ServerList returns the server node IDs in ascending order. The
// slice is cached and shared: callers must treat it as read-only (use
// Servers for a mutable copy). It is rebuilt after SetServer.
func (net *Network) ServerList() []int {
	if net.servers == nil {
		for v, ok := range net.isServer {
			if ok {
				net.servers = append(net.servers, v)
			}
		}
	}
	return net.servers
}

// SetSetupCost sets the cost gamma of deploying a new instance of VNF f
// on node v.
func (net *Network) SetSetupCost(f, v int, cost float64) error {
	if f < 0 || f >= len(net.catalog) {
		return fmt.Errorf("%w: id %d", ErrUnknownVNF, f)
	}
	if v < 0 || v >= net.g.NumNodes() {
		return fmt.Errorf("%w: node %d", graph.ErrNodeOutOfRange, v)
	}
	if cost < 0 {
		return fmt.Errorf("nfv: negative setup cost %v", cost)
	}
	net.setup[f][v] = cost
	return nil
}

// SetupCost returns the cost of deploying a new instance of f on v;
// zero when an instance is already deployed there (paper §IV-D).
func (net *Network) SetupCost(f, v int) float64 {
	if net.deployed[f][v] {
		return 0
	}
	return net.setup[f][v]
}

// RawSetupCost returns the configured setup cost ignoring deployment.
func (net *Network) RawSetupCost(f, v int) float64 { return net.setup[f][v] }

// Deploy records a pre-deployed instance of f on v, consuming capacity.
func (net *Network) Deploy(f, v int) error {
	if f < 0 || f >= len(net.catalog) {
		return fmt.Errorf("%w: id %d", ErrUnknownVNF, f)
	}
	if !net.IsServer(v) {
		return fmt.Errorf("%w: node %d", ErrNotServer, v)
	}
	if net.deployed[f][v] {
		return fmt.Errorf("%w: vnf %d node %d", ErrAlreadyDeployed, f, v)
	}
	if net.UsedCapacity(v)+net.catalog[f].Demand > net.capacity[v]+1e-9 {
		return fmt.Errorf("%w: node %d used %v + %v > cap %v",
			ErrCapacityExceeded, v, net.UsedCapacity(v), net.catalog[f].Demand, net.capacity[v])
	}
	net.deployed[f][v] = true
	net.epoch++
	return nil
}

// Undeploy removes a deployed instance of f from v, freeing its
// capacity. It is the teardown half of dynamic session management.
func (net *Network) Undeploy(f, v int) error {
	if f < 0 || f >= len(net.catalog) {
		return fmt.Errorf("%w: id %d", ErrUnknownVNF, f)
	}
	if v < 0 || v >= net.g.NumNodes() || !net.deployed[f][v] {
		return fmt.Errorf("nfv: no instance of VNF %d on node %d to undeploy", f, v)
	}
	net.deployed[f][v] = false
	net.epoch++
	return nil
}

// DeployEpoch returns the deployment-state version: a counter bumped
// by every successful Deploy and Undeploy (and by BumpDeployEpoch).
// Snapshot-based solvers stamp their read snapshot with it and commit
// only when the live network still carries the same epoch — or, when
// it moved, after re-validating exactly the state they touch.
func (net *Network) DeployEpoch() uint64 { return net.epoch }

// BumpDeployEpoch advances the deployment epoch without a deployment
// change. The dynamic manager calls it when it rebases onto a
// replacement network, so snapshots of the old incarnation can never
// alias an epoch of the new one.
func (net *Network) BumpDeployEpoch() { net.epoch++ }

// IncarnationID returns the process-unique stamp NewNetwork assigned
// to this network; Clone preserves it, so a snapshot and its parent
// share the id while independently constructed networks never do.
func (net *Network) IncarnationID() uint64 { return net.id }

// IsDeployed reports whether an instance of f already runs on v.
func (net *Network) IsDeployed(f, v int) bool { return net.deployed[f][v] }

// UsedCapacity returns the resource units consumed on v by
// pre-deployed instances.
func (net *Network) UsedCapacity(v int) float64 {
	var used float64
	for f := range net.catalog {
		if net.deployed[f][v] {
			used += net.catalog[f].Demand
		}
	}
	return used
}

// FreeCapacity returns the resource units still available on v for new
// instances.
func (net *Network) FreeCapacity(v int) float64 {
	return net.capacity[v] - net.UsedCapacity(v)
}

// Metric returns the cached all-pairs shortest-path metric, computing
// it on first use and recomputing when the graph has mutated since
// (the cache is stamped with graph.Generation). First use is not
// goroutine-safe; warm the cache before sharing the network across
// solvers. The APSP routine is auto-selected by size and edge density
// (Floyd-Warshall for small or dense networks, parallel Dijkstra for
// large sparse ones); see graph.APSPAuto.
func (net *Network) Metric() *graph.Metric {
	if net.metric != nil && net.metricGen == net.g.Generation() {
		metricHits.Add(1)
		return net.metric
	}
	metricMisses.Add(1)
	if net.metricFn != nil {
		net.metric = net.metricFn()
	} else {
		net.metric = net.g.APSPAuto()
	}
	net.metricGen = net.g.Generation()
	return net.metric
}

// MetricCached reports whether the next Metric call returns the
// cached closure without an APSP build. Solver instrumentation uses
// it to attribute zero APSP time to warm-metric solves.
func (net *Network) MetricCached() bool {
	return net.metric != nil && net.metricGen == net.g.Generation()
}

// SetMetricSupplier installs fn as the source of the metric closure:
// the next Metric call invokes it instead of running APSP locally.
// The supplier must return a closure valid for the network's current
// topology. faults.State uses this to hand repeated materializations
// of one degraded topology the same shared closure, eliminating the
// per-Rebase APSP rebuild.
func (net *Network) SetMetricSupplier(fn func() *graph.Metric) {
	net.metricFn = fn
	net.metric = nil
}

// Clone returns a deep copy of the network sharing nothing with the
// original except the immutable graph and metric.
func (net *Network) Clone() *Network {
	c := &Network{
		g:         net.g,
		isServer:  append([]bool(nil), net.isServer...),
		capacity:  append([]float64(nil), net.capacity...),
		catalog:   append([]VNF(nil), net.catalog...),
		deployed:  make([][]bool, len(net.deployed)),
		setup:     make([][]float64, len(net.setup)),
		metric:    net.metric,
		metricGen: net.metricGen,
		metricFn:  net.metricFn,
		servers:   net.servers, // shared read-only; SetServer replaces, never mutates
		epoch:     net.epoch,
		id:        net.id,
	}
	if net.coords != nil {
		c.coords = append([]Point(nil), net.coords...)
	}
	if net.linkCap != nil {
		c.linkCap = make(map[[2]int]int, len(net.linkCap))
		for k, v := range net.linkCap {
			c.linkCap[k] = v
		}
	}
	for f := range net.deployed {
		c.deployed[f] = append([]bool(nil), net.deployed[f]...)
		c.setup[f] = append([]float64(nil), net.setup[f]...)
	}
	return c
}
