package forest

import (
	"errors"
	"math/rand"
	"testing"

	"sftree/internal/core"
	"sftree/internal/netgen"
	"sftree/internal/nfv"
)

func forestInstance(t *testing.T, seed int64, numTasks int) (*nfv.Network, []nfv.Task) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	net, err := netgen.Generate(netgen.PaperConfig(40, 2), rng)
	if err != nil {
		t.Fatal(err)
	}
	tasks := make([]nfv.Task, numTasks)
	for i := range tasks {
		task, err := netgen.GenerateTask(net, rng, 3, 3)
		if err != nil {
			t.Fatal(err)
		}
		tasks[i] = task
	}
	return net, tasks
}

func TestEmbedForestBasics(t *testing.T) {
	net, tasks := forestInstance(t, 1, 4)
	res, err := Embed(net, tasks, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trees) != 4 {
		t.Fatalf("trees = %d", len(res.Trees))
	}
	for i, tree := range res.Trees {
		if tree == nil {
			t.Fatalf("tree %d missing", i)
		}
		if tree.Embedding.Task.Source != tasks[i].Source {
			t.Fatalf("tree %d mismatched to task (source %d vs %d)",
				i, tree.Embedding.Task.Source, tasks[i].Source)
		}
	}
	if len(res.Order) != 4 {
		t.Fatalf("order = %v", res.Order)
	}
	if res.TotalCost <= 0 {
		t.Fatalf("total = %v", res.TotalCost)
	}
	// The base network must be untouched (forest works on a clone).
	for f := 0; f < net.CatalogSize(); f++ {
		for v := 0; v < net.NumNodes(); v++ {
			_ = net.IsDeployed(f, v) // just exercising; state asserted below
		}
	}
}

func TestForestSharingNeverWorseThanIsolated(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		net, tasks := forestInstance(t, seed, 3)
		res, err := Embed(net, tasks, core.Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		var isolated float64
		for _, task := range tasks {
			r, err := core.Solve(net, task, core.Options{})
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			isolated += r.FinalCost
		}
		// Sequential sharing starts from the same state as isolated
		// solving for the first tree and only gets cheaper afterwards.
		if res.TotalCost > isolated+1e-6 {
			t.Errorf("seed %d: forest %v costs more than isolated %v",
				seed, res.TotalCost, isolated)
		}
	}
}

func TestForestSharesIdenticalChains(t *testing.T) {
	// Same chain from two different sources: the second tree must reuse
	// at least one of the first tree's instances somewhere... we assert
	// the aggregate SharedInstances counter on a crafted instance where
	// reuse is forced: a single server hosts the only possible chain.
	net, tasks := func() (*nfv.Network, []nfv.Task) {
		rng := rand.New(rand.NewSource(77))
		cfg := netgen.PaperConfig(10, 2)
		cfg.DeployedInstances = 0
		net, err := netgen.Generate(cfg, rng)
		if err != nil {
			t.Fatal(err)
		}
		chain := nfv.SFC{0}
		return net, []nfv.Task{
			{Source: 0, Destinations: []int{3, 4}, Chain: chain},
			{Source: 1, Destinations: []int{5, 6}, Chain: chain},
		}
	}()
	res, err := Embed(net, tasks, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Both trees use f0; whether they share depends on geometry, but
	// the setup cost must be paid at most once per distinct instance:
	// total <= isolated sum is asserted elsewhere; here check the
	// counter is consistent.
	if res.SharedInstances < 0 || res.SharedInstances > 2 {
		t.Errorf("shared = %d", res.SharedInstances)
	}
}

func TestForestValidation(t *testing.T) {
	net, tasks := forestInstance(t, 3, 2)
	if _, err := Embed(net, nil, core.Options{}); !errors.Is(err, ErrNoTasks) {
		t.Errorf("empty: %v", err)
	}
	bad := tasks
	bad[0].Chain = nil
	if _, err := Embed(net, bad, core.Options{}); !errors.Is(err, nfv.ErrInvalidTask) {
		t.Errorf("invalid task: %v", err)
	}
}

func TestForestLeavesNetworkUnchanged(t *testing.T) {
	net, tasks := forestInstance(t, 5, 3)
	before := net.Clone()
	if _, err := Embed(net, tasks, core.Options{}); err != nil {
		t.Fatal(err)
	}
	for f := 0; f < net.CatalogSize(); f++ {
		for v := 0; v < net.NumNodes(); v++ {
			if net.IsDeployed(f, v) != before.IsDeployed(f, v) {
				t.Fatalf("Embed mutated the input network at (%d,%d)", f, v)
			}
		}
	}
}
