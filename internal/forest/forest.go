// Package forest embeds a *service overlay forest*: several multicast
// tasks — typically with distinct sources, the setting of Kuo et al.
// (ICDCS'17, the paper's reference [26]) — served together on one
// network. Each task gets its own service function tree, but instance
// deployments are shared: the first tree to deploy a VNF on a node
// pays its setup cost, later trees reuse it for free, and node
// capacity is consumed exactly once. Sequential greedy embedding is
// order-sensitive, so Embed tries several admission orders and keeps
// the cheapest forest.
package forest

import (
	"errors"
	"fmt"
	"sort"

	"sftree/internal/core"
	"sftree/internal/nfv"
)

// ErrNoTasks reports an empty request.
var ErrNoTasks = errors.New("forest: no tasks")

// Result is one embedded forest.
type Result struct {
	// Trees holds one solver result per task, parallel to the input
	// task slice regardless of the admission order used internally.
	Trees []*core.Result
	// TotalCost is the forest objective: every instance's setup cost
	// once plus every tree's link cost.
	TotalCost float64
	// SharedInstances counts instances used by at least two trees.
	SharedInstances int
	// Order records the admission order that produced the result.
	Order []int
}

// Embed builds the forest. Admission orders tried: the given order,
// cheapest-first and costliest-first by a standalone cost probe, and
// most-destinations-first. The cheapest complete forest wins.
func Embed(net *nfv.Network, tasks []nfv.Task, opts core.Options) (*Result, error) {
	if len(tasks) == 0 {
		return nil, ErrNoTasks
	}
	for i, task := range tasks {
		if err := task.Validate(net); err != nil {
			return nil, fmt.Errorf("forest: task %d: %w", i, err)
		}
	}

	// Standalone probe per task for the cost-based orders.
	probe := make([]float64, len(tasks))
	for i, task := range tasks {
		res, err := core.Solve(net, task, opts)
		if err != nil {
			return nil, fmt.Errorf("forest: task %d infeasible even alone: %w", i, err)
		}
		probe[i] = res.FinalCost
	}

	orders := candidateOrders(tasks, probe)
	var best *Result
	for _, order := range orders {
		res, err := embedInOrder(net, tasks, order, opts)
		if err != nil {
			continue // this order ran out of capacity; try the next
		}
		if best == nil || res.TotalCost < best.TotalCost {
			best = res
		}
	}
	if best == nil {
		return nil, fmt.Errorf("forest: %w under every admission order", core.ErrNoFeasible)
	}
	return best, nil
}

// candidateOrders returns distinct admission orders to try.
func candidateOrders(tasks []nfv.Task, probe []float64) [][]int {
	identity := make([]int, len(tasks))
	for i := range identity {
		identity[i] = i
	}
	asc := append([]int(nil), identity...)
	sort.SliceStable(asc, func(a, b int) bool { return probe[asc[a]] < probe[asc[b]] })
	desc := append([]int(nil), identity...)
	sort.SliceStable(desc, func(a, b int) bool { return probe[desc[a]] > probe[desc[b]] })
	fanout := append([]int(nil), identity...)
	sort.SliceStable(fanout, func(a, b int) bool {
		return len(tasks[fanout[a]].Destinations) > len(tasks[fanout[b]].Destinations)
	})
	return dedupOrders([][]int{identity, asc, desc, fanout})
}

func dedupOrders(orders [][]int) [][]int {
	seen := map[string]bool{}
	var out [][]int
	for _, o := range orders {
		key := fmt.Sprint(o)
		if !seen[key] {
			seen[key] = true
			out = append(out, o)
		}
	}
	return out
}

// embedInOrder admits the tasks sequentially on a private clone,
// deploying each tree's instances so later trees reuse them.
func embedInOrder(net *nfv.Network, tasks []nfv.Task, order []int, opts core.Options) (*Result, error) {
	work := net.Clone()
	out := &Result{
		Trees: make([]*core.Result, len(tasks)),
		Order: append([]int(nil), order...),
	}
	useCount := make(map[[2]int]int)
	for _, ti := range order {
		task := tasks[ti]
		res, err := core.Solve(work, task, opts)
		if err != nil {
			return nil, err
		}
		for _, inst := range res.Embedding.NewInstances {
			if err := work.Deploy(inst.VNF, inst.Node); err != nil {
				return nil, fmt.Errorf("forest: install: %w", err)
			}
		}
		// Track per-instance usage (deployed-or-new) for sharing stats.
		seen := map[[2]int]bool{}
		for di := range task.Destinations {
			for lvl := 1; lvl <= task.K(); lvl++ {
				key := [2]int{task.Chain[lvl-1], res.Embedding.ServingNode(di, lvl)}
				if !seen[key] {
					seen[key] = true
					useCount[key]++
				}
			}
		}
		out.Trees[ti] = res
		out.TotalCost += res.FinalCost
	}
	for _, c := range useCount {
		if c > 1 {
			out.SharedInstances++
		}
	}
	return out, nil
}
