package steiner

import (
	"fmt"
	"sort"

	"sftree/internal/graph"
)

// Mehlhorn computes a Steiner tree with Mehlhorn's Voronoi-region
// algorithm: one multi-source Dijkstra from all terminals partitions
// the graph into Voronoi regions; every edge bridging two regions
// induces a candidate connection between their terminals; an MST over
// those candidates, expanded back into real paths and pruned, spans
// the terminals within the same 2(1-1/t) factor as KMB but in
// O(E log V) — no all-pairs metric required, which is why stage one
// offers it for very large networks.
//
// The Dijkstra sweep runs over the graph's CSR form with pooled
// buffers; candidate bridges live in flat t*t matrices instead of a
// map, and MST ties are broken by edge id so results are
// deterministic.
func Mehlhorn(g *graph.Graph, terminals []int) (Tree, error) {
	ws := getWS()
	defer putWS(ws)
	terminals = ws.dedup(terminals, g.NumNodes())
	switch len(terminals) {
	case 0:
		return Tree{}, ErrNoTerminals
	case 1:
		return Tree{}, nil
	}
	c := g.CSR()
	n := c.N
	if cap(ws.dist) < n {
		ws.dist = make([]float64, n)
		ws.parent = make([]int, n)
		ws.region = make([]int32, n)
	}
	dist := ws.dist[:n]
	parent := ws.parent[:n] // predecessor towards the region's terminal
	region := ws.region[:n] // index into terminals
	for v := 0; v < n; v++ {
		dist[v] = graph.Inf
		parent[v] = -1
		region[v] = -1
	}
	// Multi-source Dijkstra.
	h := &ws.heap
	h.Reset(n)
	for i, t := range terminals {
		dist[t] = 0
		region[t] = int32(i)
		h.Push(t, 0)
	}
	for h.Len() > 0 {
		u, du := h.Pop()
		if du > dist[u] {
			continue
		}
		for p, end := c.Start[u], c.Start[u+1]; p < end; p++ {
			v := int(c.To[p])
			if nd := du + c.Cost[p]; nd < dist[v] {
				dist[v] = nd
				parent[v] = u
				region[v] = region[u]
				h.Push(v, nd)
			}
		}
	}
	// (Disconnected terminals surface below: their regions never merge.)

	// Candidate bridging edges between regions: the cheapest per
	// terminal pair, kept in flat t*t matrices (upper triangle used).
	t := len(terminals)
	if cap(ws.bridgeW) < t*t {
		ws.bridgeW = make([]float64, t*t)
		ws.bridgeE = make([]int32, t*t)
	}
	bridgeW := ws.bridgeW[:t*t]
	bridgeE := ws.bridgeE[:t*t]
	for i := range bridgeW {
		bridgeW[i] = graph.Inf
		bridgeE[i] = -1
	}
	cands := ws.pairs[:0] // (ru, rv) pairs with a bridge, ru < rv
	for id := 0; id < g.NumEdges(); id++ {
		e := g.Edge(id)
		ru, rv := region[e.U], region[e.V]
		if ru == rv || ru == -1 || rv == -1 {
			continue
		}
		if ru > rv {
			ru, rv = rv, ru
		}
		w := dist[e.U] + e.Cost + dist[e.V]
		at := int(ru)*t + int(rv)
		if bridgeE[at] == -1 {
			cands = append(cands, [2]int32{ru, rv})
		}
		if w < bridgeW[at] {
			bridgeW[at] = w
			bridgeE[at] = int32(id)
		}
	}
	ws.pairs = cands
	if len(cands) == 0 {
		return Tree{}, fmt.Errorf("%w: terminals not mutually reachable", ErrUnreachable)
	}

	// MST over the terminal-region graph (Kruskal; ties by edge id for
	// a deterministic tree).
	sort.Slice(cands, func(a, b int) bool {
		wa := bridgeW[int(cands[a][0])*t+int(cands[a][1])]
		wb := bridgeW[int(cands[b][0])*t+int(cands[b][1])]
		if wa != wb {
			return wa < wb
		}
		return bridgeE[int(cands[a][0])*t+int(cands[a][1])] < bridgeE[int(cands[b][0])*t+int(cands[b][1])]
	})
	uf := &ws.uf
	uf.Reset(t)
	ws.bumpEdges(g.NumEdges())
	joined := 1
	badU, badV := -1, -1
	for _, cand := range cands {
		if !uf.Union(int(cand[0]), int(cand[1])) {
			continue
		}
		joined++
		// Expand: walk both endpoints back to their terminals.
		id := int(bridgeE[int(cand[0])*t+int(cand[1])])
		e := g.Edge(id)
		ws.markEdge(id)
		for _, start := range [2]int{e.U, e.V} {
			for x := start; parent[x] != -1; x = parent[x] {
				hop, ok := cheapestEdgeBetween(g, x, parent[x])
				if !ok {
					badU, badV = x, parent[x]
					break
				}
				ws.markEdge(hop)
			}
		}
	}
	if badU != -1 {
		return Tree{}, fmt.Errorf("steiner: voronoi path uses non-edge %d-%d", badU, badV)
	}
	if joined < t {
		return Tree{}, fmt.Errorf("%w: voronoi forest disconnected", ErrUnreachable)
	}
	return treeFromEdges(g, ws.prune(g, ws.mstOfCollected(g), terminals)), nil
}
