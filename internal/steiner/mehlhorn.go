package steiner

import (
	"fmt"
	"sort"

	"sftree/internal/graph"
)

// Mehlhorn computes a Steiner tree with Mehlhorn's Voronoi-region
// algorithm: one multi-source Dijkstra from all terminals partitions
// the graph into Voronoi regions; every edge bridging two regions
// induces a candidate connection between their terminals; an MST over
// those candidates, expanded back into real paths and pruned, spans
// the terminals within the same 2(1-1/t) factor as KMB but in
// O(E log V) — no all-pairs metric required, which is why stage one
// offers it for very large networks.
func Mehlhorn(g *graph.Graph, terminals []int) (Tree, error) {
	terminals = dedupTerminals(terminals)
	switch len(terminals) {
	case 0:
		return Tree{}, ErrNoTerminals
	case 1:
		return Tree{}, nil
	}
	n := g.NumNodes()
	dist := make([]float64, n)
	parent := make([]int, n) // predecessor towards the region's terminal
	region := make([]int, n) // index into terminals
	for v := 0; v < n; v++ {
		dist[v] = graph.Inf
		parent[v] = -1
		region[v] = -1
	}
	// Multi-source Dijkstra.
	h := graph.NewNodeHeap(n)
	for i, t := range terminals {
		dist[t] = 0
		region[t] = i
		h.Push(t, 0)
	}
	for h.Len() > 0 {
		u, du := h.Pop()
		if du > dist[u] {
			continue
		}
		for _, a := range g.Neighbors(u) {
			if nd := du + a.Cost; nd < dist[a.To] {
				dist[a.To] = nd
				parent[a.To] = u
				region[a.To] = region[u]
				h.Push(a.To, nd)
			}
		}
	}
	// (Disconnected terminals surface below: their regions never merge.)

	// Candidate bridging edges between regions: keep the cheapest per
	// terminal pair.
	type bridge struct {
		edge int // bridging edge id
		w    float64
	}
	best := make(map[[2]int]bridge)
	for id := 0; id < g.NumEdges(); id++ {
		e := g.Edge(id)
		ru, rv := region[e.U], region[e.V]
		if ru == rv || ru == -1 || rv == -1 {
			continue
		}
		key := [2]int{ru, rv}
		if key[0] > key[1] {
			key[0], key[1] = key[1], key[0]
		}
		w := dist[e.U] + e.Cost + dist[e.V]
		if b, ok := best[key]; !ok || w < b.w {
			best[key] = bridge{edge: id, w: w}
		}
	}
	if len(best) == 0 {
		return Tree{}, fmt.Errorf("%w: terminals not mutually reachable", ErrUnreachable)
	}

	// MST over the terminal-region graph (Kruskal).
	type candidate struct {
		key [2]int
		bridge
	}
	cands := make([]candidate, 0, len(best))
	for key, b := range best {
		cands = append(cands, candidate{key: key, bridge: b})
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].w < cands[b].w })
	uf := graph.NewUnionFind(len(terminals))
	edgeSet := make(map[int]bool)
	joined := 1
	for _, c := range cands {
		if !uf.Union(c.key[0], c.key[1]) {
			continue
		}
		joined++
		// Expand: walk both endpoints back to their terminals.
		e := g.Edge(c.edge)
		edgeSet[c.edge] = true
		for _, start := range []int{e.U, e.V} {
			for x := start; parent[x] != -1; x = parent[x] {
				id, ok := cheapestEdgeBetween(g, x, parent[x])
				if !ok {
					return Tree{}, fmt.Errorf("steiner: voronoi path uses non-edge %d-%d", x, parent[x])
				}
				edgeSet[id] = true
			}
		}
	}
	if joined < len(terminals) {
		return Tree{}, fmt.Errorf("%w: voronoi forest disconnected", ErrUnreachable)
	}
	edges := make([]int, 0, len(edgeSet))
	for id := range edgeSet {
		edges = append(edges, id)
	}
	return treeFromEdges(g, Prune(g, mstOfEdgeSubset(g, edges), terminals)), nil
}
