package steiner

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"sftree/internal/graph"
)

func TestMehlhornOnKnownGraph(t *testing.T) {
	// Hub graph from the KMB test: optimum 3 via the hub.
	g := graph.New(4)
	g.MustAddEdge(0, 3, 1)
	g.MustAddEdge(1, 3, 1)
	g.MustAddEdge(2, 3, 1)
	g.MustAddEdge(0, 1, 10)
	g.MustAddEdge(1, 2, 10)
	tree, err := Mehlhorn(g, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Cost != 3 {
		t.Errorf("cost = %v, want 3", tree.Cost)
	}
	if !g.IsTreeSpanning(tree.Edges, []int{0, 1, 2}) {
		t.Error("not a spanning tree")
	}
}

func TestMehlhornEdgeCases(t *testing.T) {
	g := graph.New(3)
	g.MustAddEdge(0, 1, 1)
	if _, err := Mehlhorn(g, nil); !errors.Is(err, ErrNoTerminals) {
		t.Errorf("empty: %v", err)
	}
	if tree, err := Mehlhorn(g, []int{2}); err != nil || tree.Cost != 0 {
		t.Errorf("single terminal: %v %v", tree, err)
	}
	// Node 2 disconnected.
	if _, err := Mehlhorn(g, []int{0, 2}); !errors.Is(err, ErrUnreachable) {
		t.Errorf("disconnected: %v", err)
	}
}

// Property: Mehlhorn spans the terminals, never beats the exact
// optimum, and stays within the 2(1-1/t) factor.
func TestQuickMehlhornSandwiched(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomConnectedGraph(rng, 6+rng.Intn(8), 14)
		k := 2 + rng.Intn(3)
		terms := rng.Perm(g.NumNodes())[:k]
		m := g.FloydWarshall()
		exact, err := DreyfusWagner(g, m, terms)
		if err != nil {
			return false
		}
		mh, err := Mehlhorn(g, terms)
		if err != nil || !g.IsTreeSpanning(mh.Edges, terms) {
			return false
		}
		bound := 2 * (1 - 1/float64(k)) * exact.Cost
		return mh.Cost >= exact.Cost-1e-9 && mh.Cost <= bound+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Mehlhorn and KMB approximate the same quantity; on random graphs
// their costs should stay close (identical on most instances).
func TestMehlhornTracksKMB(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	var worse int
	const trials = 30
	for trial := 0; trial < trials; trial++ {
		g := randomConnectedGraph(rng, 20, 40)
		terms := rng.Perm(20)[:5]
		m := g.FloydWarshall()
		kmb, err := KMB(g, m, terms)
		if err != nil {
			t.Fatal(err)
		}
		mh, err := Mehlhorn(g, terms)
		if err != nil {
			t.Fatal(err)
		}
		if mh.Cost > kmb.Cost*1.5+1e-9 {
			worse++
		}
	}
	if worse > trials/3 {
		t.Errorf("Mehlhorn much worse than KMB on %d/%d instances", worse, trials)
	}
}

func BenchmarkMehlhorn250Nodes25Terminals(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := randomConnectedGraph(rng, 250, 500)
	terms := rng.Perm(250)[:25]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Mehlhorn(g, terms); err != nil {
			b.Fatal(err)
		}
	}
}
