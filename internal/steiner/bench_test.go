package steiner

import (
	"math/rand"
	"testing"

	"sftree/internal/graph"
)

func benchSetup(b *testing.B, n, extra, terms int) (*graph.Graph, *graph.Metric, []int) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	g := randomConnectedGraph(rng, n, extra)
	m := g.FloydWarshall()
	return g, m, rng.Perm(n)[:terms]
}

func BenchmarkKMB100Nodes10Terminals(b *testing.B) {
	g, m, terms := benchSetup(b, 100, 200, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := KMB(g, m, terms); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKMB250Nodes25Terminals(b *testing.B) {
	g, m, terms := benchSetup(b, 250, 500, 25)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := KMB(g, m, terms); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTakahashiMatsuyama100Nodes10Terminals(b *testing.B) {
	g, m, terms := benchSetup(b, 100, 200, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TakahashiMatsuyama(g, m, terms[0], terms[1:]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDreyfusWagner45Nodes10Terminals(b *testing.B) {
	g, m, terms := benchSetup(b, 45, 60, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DreyfusWagner(g, m, terms); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCostsWithExtraRoot45Nodes12Terminals(b *testing.B) {
	g, m, terms := benchSetup(b, 45, 60, 12)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CostsWithExtraRoot(g, m, terms); err != nil {
			b.Fatal(err)
		}
	}
}
