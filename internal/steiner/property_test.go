package steiner

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: a Steiner tree over a superset of terminals costs at least
// as much as over the subset (monotonicity of the exact optimum).
func TestQuickExactSteinerMonotone(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomConnectedGraph(rng, 6+rng.Intn(8), 10)
		m := g.FloydWarshall()
		perm := rng.Perm(g.NumNodes())
		small := perm[:2+rng.Intn(2)]
		large := perm[:len(small)+1]
		ts, err := DreyfusWagner(g, m, small)
		if err != nil {
			return false
		}
		tl, err := DreyfusWagner(g, m, large)
		if err != nil {
			return false
		}
		return tl.Cost >= ts.Cost-1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: KMB and Takahashi-Matsuyama always return trees that span
// the terminals, never beat the exact optimum, and respect their
// approximation guarantee.
func TestQuickHeuristicsSandwiched(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomConnectedGraph(rng, 6+rng.Intn(8), 14)
		m := g.FloydWarshall()
		k := 2 + rng.Intn(3)
		terms := rng.Perm(g.NumNodes())[:k]
		exact, err := DreyfusWagner(g, m, terms)
		if err != nil {
			return false
		}
		bound := 2 * (1 - 1/float64(k)) * exact.Cost
		kmb, err := KMB(g, m, terms)
		if err != nil || !g.IsTreeSpanning(kmb.Edges, terms) {
			return false
		}
		if kmb.Cost < exact.Cost-1e-9 || kmb.Cost > bound+1e-9 {
			return false
		}
		tm, err := TakahashiMatsuyama(g, m, terms[0], terms[1:])
		if err != nil || !g.IsTreeSpanning(tm.Edges, terms) {
			return false
		}
		return tm.Cost >= exact.Cost-1e-9 && tm.Cost <= bound+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: CostsWithExtraRoot at a terminal equals the plain exact
// Steiner cost over the terminals, and at any node v it is at most the
// terminal cost plus v's distance to the nearest terminal... more
// precisely: dp[v] <= dp[t*] + dist(t*, v) for every terminal t*.
func TestQuickAllRootsConsistent(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomConnectedGraph(rng, 6+rng.Intn(6), 10)
		m := g.FloydWarshall()
		k := 2 + rng.Intn(3)
		terms := rng.Perm(g.NumNodes())[:k]
		costs, err := CostsWithExtraRoot(g, m, terms)
		if err != nil {
			return false
		}
		exact, err := DreyfusWagner(g, m, terms)
		if err != nil {
			return false
		}
		// At a terminal the extra root is free.
		for _, v := range terms {
			if math.Abs(costs[v]-exact.Cost) > 1e-9 {
				return false
			}
		}
		// Hanging any node off the tree is bounded by attach-via-terminal,
		// and cross-checked against an independent exact solve.
		for v := 0; v < g.NumNodes(); v++ {
			if costs[v] > exact.Cost+m.Dist[terms[0]][v]+1e-9 {
				return false
			}
			withV, err := DreyfusWagner(g, m, append(append([]int{}, terms...), v))
			if err != nil {
				return false
			}
			if math.Abs(costs[v]-withV.Cost) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: pruning never removes a terminal-to-terminal connection:
// the pruned edge set still spans all terminals.
func TestQuickPrunePreservesSpan(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomConnectedGraph(rng, 5+rng.Intn(10), 12)
		k := 2 + rng.Intn(3)
		terms := rng.Perm(g.NumNodes())[:k]
		// Start from a spanning tree of the whole graph (superset of any
		// Steiner tree).
		edges, _ := g.MSTKruskal()
		pruned := Prune(g, edges, terms)
		return g.IsTreeSpanning(pruned, terms)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
