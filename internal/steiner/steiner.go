// Package steiner implements Steiner-tree algorithms on undirected
// weighted graphs: the Kou-Markowsky-Berman (KMB) 2-approximation used
// by the paper's stage-one algorithm, the Takahashi-Matsuyama
// path-growing heuristic (ablation alternative), and the exact
// Dreyfus-Wagner dynamic program used as an optimality oracle on small
// terminal sets.
package steiner

import (
	"errors"
	"fmt"
	"sort"

	"sftree/internal/graph"
)

var (
	// ErrUnreachable reports that some terminal cannot be connected.
	ErrUnreachable = errors.New("steiner: terminal unreachable")
	// ErrNoTerminals reports an empty terminal set.
	ErrNoTerminals = errors.New("steiner: no terminals")
	// ErrTooManyTerminals reports a terminal set too large for the
	// exact Dreyfus-Wagner dynamic program.
	ErrTooManyTerminals = errors.New("steiner: too many terminals for exact solve")
)

// Tree is a Steiner tree: a set of edge indices of the host graph and
// their total cost. A tree over a single terminal is empty.
type Tree struct {
	Edges []int
	Cost  float64
}

// Nodes returns the set of nodes touched by the tree's edges plus the
// given terminals (so single-terminal trees still report the terminal).
func (t Tree) Nodes(g *graph.Graph, terminals []int) map[int]bool {
	nodes := make(map[int]bool, 2*len(t.Edges)+len(terminals))
	for _, id := range t.Edges {
		e := g.Edge(id)
		nodes[e.U] = true
		nodes[e.V] = true
	}
	for _, v := range terminals {
		nodes[v] = true
	}
	return nodes
}

// dedupTerminals returns the unique terminals, preserving order.
func dedupTerminals(terminals []int) []int {
	seen := make(map[int]bool, len(terminals))
	out := make([]int, 0, len(terminals))
	for _, v := range terminals {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// KMB computes a Steiner tree spanning terminals using the
// Kou-Markowsky-Berman algorithm: MST of the metric closure over the
// terminals, expansion of closure edges into shortest paths, MST of the
// expansion, and pruning of non-terminal leaves. The result is within
// 2(1-1/|terminals|) of optimal. m must be the metric of g.
//
// All transient state lives in a pooled workspace; the only
// allocations on the happy path are the returned Tree's edges.
func KMB(g *graph.Graph, m *graph.Metric, terminals []int) (Tree, error) {
	ws := getWS()
	defer putWS(ws)
	terminals = ws.dedup(terminals, g.NumNodes())
	switch len(terminals) {
	case 0:
		return Tree{}, ErrNoTerminals
	case 1:
		return Tree{}, nil
	}
	for _, a := range terminals[1:] {
		if m.Dist[terminals[0]][a] == graph.Inf {
			return Tree{}, fmt.Errorf("%w: %d and %d", ErrUnreachable, terminals[0], a)
		}
	}

	// 1. MST of the metric closure over terminals (Prim, O(t^2)).
	t := len(terminals)
	ws.growTerms(t)
	inTree, bestD, bestFrom := ws.tIn, ws.tDist, ws.tFrom
	for i := 0; i < t; i++ {
		inTree[i] = false
		bestD[i] = graph.Inf
		bestFrom[i] = -1
	}
	bestD[0] = 0
	closure := ws.pairs[:0] // (a, b) indices into terminals
	for range terminals {
		pick := -1
		for i := 0; i < t; i++ {
			if !inTree[i] && (pick == -1 || bestD[i] < bestD[pick]) {
				pick = i
			}
		}
		inTree[pick] = true
		if bestFrom[pick] >= 0 {
			closure = append(closure, [2]int32{bestFrom[pick], int32(pick)})
		}
		for i := 0; i < t; i++ {
			if !inTree[i] {
				if d := m.Dist[terminals[pick]][terminals[i]]; d < bestD[i] {
					bestD[i] = d
					bestFrom[i] = int32(pick)
				}
			}
		}
	}
	ws.pairs = closure

	// 2. Expand closure edges into shortest paths; collect distinct edges.
	ws.bumpEdges(g.NumEdges())
	badU, badV := -1, -1
	for _, ce := range closure {
		m.EachHop(terminals[ce[0]], terminals[ce[1]], func(x, y int) {
			id, ok := cheapestEdgeBetween(g, x, y)
			if !ok {
				badU, badV = x, y
				return
			}
			ws.markEdge(id)
		})
	}
	if badU != -1 {
		return Tree{}, fmt.Errorf("steiner: metric path uses non-edge %d-%d", badU, badV)
	}

	// 3. MST of the expansion subgraph; 4. prune non-terminal leaves.
	pruned := ws.prune(g, ws.mstOfCollected(g), terminals)
	return treeFromEdges(g, pruned), nil
}

// TakahashiMatsuyama grows a Steiner tree from root by repeatedly
// attaching the terminal closest (in metric distance) to the current
// tree via a shortest path. Approximation factor 2(1-1/|terminals|),
// often better than KMB in practice on geographic graphs.
func TakahashiMatsuyama(g *graph.Graph, m *graph.Metric, root int, terminals []int) (Tree, error) {
	terminals = dedupTerminals(append([]int{root}, terminals...))
	if len(terminals) == 1 {
		return Tree{}, nil
	}
	for _, a := range terminals[1:] {
		if m.Dist[root][a] == graph.Inf {
			return Tree{}, fmt.Errorf("%w: %d from root %d", ErrUnreachable, a, root)
		}
	}
	treeNodes := map[int]bool{root: true}
	remaining := make([]int, 0, len(terminals)-1)
	for _, v := range terminals[1:] {
		if v != root {
			remaining = append(remaining, v)
		}
	}
	edgeSet := make(map[int]bool)
	for len(remaining) > 0 {
		// Closest (terminal, attach-node) pair.
		bestT, bestIdx := -1, -1
		var bestAttach int
		bestD := graph.Inf
		for i, term := range remaining {
			for v := range treeNodes {
				if d := m.Dist[term][v]; d < bestD {
					bestD = d
					bestT = term
					bestIdx = i
					bestAttach = v
				}
			}
		}
		if bestT == -1 {
			return Tree{}, ErrUnreachable
		}
		path := m.Path(bestAttach, bestT)
		for i := 1; i < len(path); i++ {
			id, ok := cheapestEdgeBetween(g, path[i-1], path[i])
			if !ok {
				return Tree{}, fmt.Errorf("steiner: metric path uses non-edge %d-%d", path[i-1], path[i])
			}
			edgeSet[id] = true
			treeNodes[path[i]] = true
		}
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
	}
	edges := make([]int, 0, len(edgeSet))
	for id := range edgeSet {
		edges = append(edges, id)
	}
	// The union of attach paths can in rare cases contain a cycle; take
	// an MST of the union and prune to be safe.
	pruned := Prune(g, mstOfEdgeSubset(g, edges), terminals)
	return treeFromEdges(g, pruned), nil
}

// Prune repeatedly removes edges incident to non-terminal leaves,
// returning the surviving edge indices sorted ascending. The fixed
// point of leaf pruning is unique, so removal order does not matter.
func Prune(g *graph.Graph, edgeIDs []int, terminals []int) []int {
	ws := getWS()
	defer putWS(ws)
	ids := append([]int(nil), edgeIDs...)
	return ws.prune(g, ids, terminals)
}

// cheapestEdgeBetween returns the index of the cheapest edge joining u
// and v.
func cheapestEdgeBetween(g *graph.Graph, u, v int) (int, bool) {
	best, found := -1, false
	bestCost := graph.Inf
	for _, a := range g.Neighbors(u) {
		if a.To == v && a.Cost < bestCost {
			best, bestCost, found = a.Edge, a.Cost, true
		}
	}
	return best, found
}

// mstOfEdgeSubset runs Kruskal restricted to the given edge indices.
func mstOfEdgeSubset(g *graph.Graph, edgeIDs []int) []int {
	ids := make([]int, len(edgeIDs))
	copy(ids, edgeIDs)
	sort.Slice(ids, func(a, b int) bool {
		return g.Edge(ids[a]).Cost < g.Edge(ids[b]).Cost
	})
	uf := graph.NewUnionFind(g.NumNodes())
	var picked []int
	for _, id := range ids {
		e := g.Edge(id)
		if uf.Union(e.U, e.V) {
			picked = append(picked, id)
		}
	}
	return picked
}

// treeFromEdges copies the edge ids into a fresh Tree: callers hand
// it workspace-owned slices that are recycled after return.
func treeFromEdges(g *graph.Graph, edgeIDs []int) Tree {
	var cost float64
	for _, id := range edgeIDs {
		cost += g.Edge(id).Cost
	}
	return Tree{Edges: append([]int(nil), edgeIDs...), Cost: cost}
}
