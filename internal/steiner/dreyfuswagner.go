package steiner

import (
	"fmt"

	"sftree/internal/graph"
)

// MaxExactTerminals caps the Dreyfus-Wagner terminal count; the DP is
// exponential (3^t) in the number of terminals.
const MaxExactTerminals = 16

// DreyfusWagner computes an exact minimum Steiner tree over the given
// terminals using the Dreyfus-Wagner dynamic program, O(3^t * n +
// 2^t * n^2). It returns ErrTooManyTerminals beyond MaxExactTerminals.
func DreyfusWagner(g *graph.Graph, m *graph.Metric, terminals []int) (Tree, error) {
	terminals = dedupTerminals(terminals)
	switch {
	case len(terminals) == 0:
		return Tree{}, ErrNoTerminals
	case len(terminals) == 1:
		return Tree{}, nil
	case len(terminals) > MaxExactTerminals:
		return Tree{}, fmt.Errorf("%w: %d > %d", ErrTooManyTerminals, len(terminals), MaxExactTerminals)
	}
	root := terminals[0]
	for _, a := range terminals[1:] {
		if m.Dist[root][a] == graph.Inf {
			return Tree{}, fmt.Errorf("%w: %d and %d", ErrUnreachable, root, a)
		}
	}

	rest := terminals[1:] // DP is over subsets of these, rooted at terminals[0]
	t := len(rest)
	n := g.NumNodes()
	full := 1 << t

	// dp[mask][v]: cost of cheapest tree spanning rest-subset mask plus v.
	dp := make([][]float64, full)
	// choice[mask][v] encodes reconstruction:
	//   kind 0: leaf base case (mask has one bit, v == that terminal; no action)
	//   kind 1: extend — tree at u, plus shortest path u..v (store u)
	//   kind 2: merge — dp[sub][v] + dp[mask^sub][v] (store sub)
	type choiceT struct {
		kind int8
		arg  int32
	}
	choice := make([][]choiceT, full)
	for mask := 1; mask < full; mask++ {
		dp[mask] = make([]float64, n)
		choice[mask] = make([]choiceT, n)
		for v := 0; v < n; v++ {
			dp[mask][v] = graph.Inf
		}
	}
	for i, term := range rest {
		mask := 1 << i
		for v := 0; v < n; v++ {
			dp[mask][v] = m.Dist[term][v]
			choice[mask][v] = choiceT{kind: 1, arg: int32(term)}
		}
		dp[mask][term] = 0
		choice[mask][term] = choiceT{kind: 0}
	}

	for mask := 1; mask < full; mask++ {
		if mask&(mask-1) == 0 {
			continue // singleton handled above
		}
		// Merge step.
		for sub := (mask - 1) & mask; sub > 0; sub = (sub - 1) & mask {
			other := mask ^ sub
			if sub > other {
				continue // each partition once
			}
			ds, do := dp[sub], dp[other]
			for v := 0; v < n; v++ {
				if c := ds[v] + do[v]; c < dp[mask][v] {
					dp[mask][v] = c
					choice[mask][v] = choiceT{kind: 2, arg: int32(sub)}
				}
			}
		}
		// Extend step: dp[mask][v] = min_u dp[mask][u] + d(u,v).
		// A full O(n^2) relaxation (correct because d is a metric).
		row := dp[mask]
		for v := 0; v < n; v++ {
			for u := 0; u < n; u++ {
				if u == v || row[u] == graph.Inf {
					continue
				}
				if c := row[u] + m.Dist[u][v]; c < row[v] {
					row[v] = c
					choice[mask][v] = choiceT{kind: 1, arg: int32(u)}
				}
			}
		}
	}

	// Reconstruct edges.
	edgeSet := make(map[int]bool)
	type frame struct {
		mask int
		v    int
	}
	stack := []frame{{mask: full - 1, v: root}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		ch := choice[f.mask][f.v]
		switch ch.kind {
		case 0:
			// base: nothing to add
		case 1:
			u := int(ch.arg)
			if u != f.v {
				path := m.Path(u, f.v)
				for i := 1; i < len(path); i++ {
					id, ok := cheapestEdgeBetween(g, path[i-1], path[i])
					if !ok {
						return Tree{}, fmt.Errorf("steiner: metric path uses non-edge %d-%d", path[i-1], path[i])
					}
					edgeSet[id] = true
				}
			}
			stack = append(stack, frame{mask: f.mask, v: u})
		case 2:
			sub := int(ch.arg)
			stack = append(stack, frame{mask: sub, v: f.v}, frame{mask: f.mask ^ sub, v: f.v})
		}
	}
	edges := make([]int, 0, len(edgeSet))
	for id := range edgeSet {
		edges = append(edges, id)
	}
	// The reconstructed edge union costs at most the DP optimum (path
	// overlap only removes cost) and is feasible, hence it is optimal.
	return treeFromEdges(g, Prune(g, mstOfEdgeSubset(g, edges), terminals)), nil
}
