package steiner

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"sftree/internal/graph"
)

// bruteForceSteiner enumerates all subsets of non-terminal nodes, builds
// the MST of the induced subgraph, and keeps the cheapest tree spanning
// the terminals. Exponential in |V| - |terminals|; usable up to ~12
// optional nodes. It serves as an independent optimality oracle.
func bruteForceSteiner(t *testing.T, g *graph.Graph, terminals []int) float64 {
	t.Helper()
	n := g.NumNodes()
	isTerm := make([]bool, n)
	for _, v := range terminals {
		isTerm[v] = true
	}
	var optional []int
	for v := 0; v < n; v++ {
		if !isTerm[v] {
			optional = append(optional, v)
		}
	}
	if len(optional) > 14 {
		t.Fatalf("brute force too large: %d optional nodes", len(optional))
	}
	best := graph.Inf
	for mask := 0; mask < 1<<len(optional); mask++ {
		include := make([]bool, n)
		for _, v := range terminals {
			include[v] = true
		}
		for i, v := range optional {
			if mask&(1<<i) != 0 {
				include[v] = true
			}
		}
		// MST over the induced subgraph.
		sub := graph.New(n)
		for _, e := range g.Edges() {
			if include[e.U] && include[e.V] {
				sub.MustAddEdge(e.U, e.V, e.Cost)
			}
		}
		edges, cost := sub.MSTKruskal()
		if !sub.IsTreeSpanning(edges, terminals) {
			continue
		}
		// MST may span several components; require terminals connected.
		uf := graph.NewUnionFind(n)
		for _, id := range edges {
			e := sub.Edge(id)
			uf.Union(e.U, e.V)
		}
		connected := true
		for _, v := range terminals[1:] {
			if !uf.Same(terminals[0], v) {
				connected = false
				break
			}
		}
		if !connected {
			continue
		}
		// Prune non-terminal leaves for a fair cost.
		pruned := Prune(sub, edges, terminals)
		var c float64
		for _, id := range pruned {
			c += sub.Edge(id).Cost
		}
		_ = cost
		if c < best {
			best = c
		}
	}
	return best
}

func randomConnectedGraph(rng *rand.Rand, n, extraEdges int) *graph.Graph {
	g := graph.New(n)
	for v := 1; v < n; v++ {
		g.MustAddEdge(rng.Intn(v), v, 1+rng.Float64()*9)
	}
	for i := 0; i < extraEdges; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.MustAddEdge(u, v, 1+rng.Float64()*9)
		}
	}
	return g
}

func sampleTerminals(rng *rand.Rand, n, k int) []int {
	perm := rng.Perm(n)
	return perm[:k]
}

func TestKMBOnKnownGraph(t *testing.T) {
	// Star-with-shortcut: terminals {0,1,2}; optimal tree uses hub 3.
	//
	//	0 -1- 3, 1 -1- 3, 2 -1- 3, and expensive direct edges cost 10.
	g := graph.New(4)
	g.MustAddEdge(0, 3, 1)
	g.MustAddEdge(1, 3, 1)
	g.MustAddEdge(2, 3, 1)
	g.MustAddEdge(0, 1, 10)
	g.MustAddEdge(1, 2, 10)
	m := g.FloydWarshall()
	tree, err := KMB(g, m, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Cost != 3 {
		t.Errorf("KMB cost = %v, want 3 (via hub)", tree.Cost)
	}
	if !g.IsTreeSpanning(tree.Edges, []int{0, 1, 2}) {
		t.Error("KMB result does not span terminals")
	}
}

func TestKMBSingleAndEmptyTerminals(t *testing.T) {
	g := graph.New(3)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	m := g.FloydWarshall()
	if _, err := KMB(g, m, nil); !errors.Is(err, ErrNoTerminals) {
		t.Errorf("empty terminals: got %v", err)
	}
	tree, err := KMB(g, m, []int{2})
	if err != nil || len(tree.Edges) != 0 || tree.Cost != 0 {
		t.Errorf("single terminal: tree=%+v err=%v", tree, err)
	}
	// Duplicate terminals collapse to one.
	tree, err = KMB(g, m, []int{2, 2, 2})
	if err != nil || tree.Cost != 0 {
		t.Errorf("duplicate single terminal: tree=%+v err=%v", tree, err)
	}
}

func TestKMBUnreachableTerminal(t *testing.T) {
	g := graph.New(4)
	g.MustAddEdge(0, 1, 1)
	// node 2,3 disconnected
	g.MustAddEdge(2, 3, 1)
	m := g.FloydWarshall()
	if _, err := KMB(g, m, []int{0, 2}); !errors.Is(err, ErrUnreachable) {
		t.Errorf("got %v, want ErrUnreachable", err)
	}
}

func TestDreyfusWagnerMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 30; trial++ {
		n := 5 + rng.Intn(8) // 5..12 nodes
		g := randomConnectedGraph(rng, n, n)
		k := 2 + rng.Intn(3) // 2..4 terminals
		terms := sampleTerminals(rng, n, k)
		m := g.FloydWarshall()
		exact, err := DreyfusWagner(g, m, terms)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := bruteForceSteiner(t, g, terms)
		if math.Abs(exact.Cost-want) > 1e-9 {
			t.Fatalf("trial %d (n=%d terms=%v): DW %v, brute force %v",
				trial, n, terms, exact.Cost, want)
		}
		if !g.IsTreeSpanning(exact.Edges, terms) {
			t.Fatalf("trial %d: DW result not a spanning tree of terminals", trial)
		}
	}
}

func TestKMBWithinTwiceOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 40; trial++ {
		n := 6 + rng.Intn(9)
		g := randomConnectedGraph(rng, n, 2*n)
		k := 2 + rng.Intn(4)
		terms := sampleTerminals(rng, n, k)
		m := g.FloydWarshall()
		approx, err := KMB(g, m, terms)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		exact, err := DreyfusWagner(g, m, terms)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if approx.Cost < exact.Cost-1e-9 {
			t.Fatalf("trial %d: KMB %v beat exact %v", trial, approx.Cost, exact.Cost)
		}
		ratio := 2 * (1 - 1/float64(len(terms)))
		if approx.Cost > ratio*exact.Cost+1e-9 {
			t.Fatalf("trial %d: KMB %v > %v * exact %v", trial, approx.Cost, ratio, exact.Cost)
		}
	}
}

func TestTakahashiMatsuyamaFeasibleAndBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 30; trial++ {
		n := 6 + rng.Intn(9)
		g := randomConnectedGraph(rng, n, 2*n)
		k := 2 + rng.Intn(4)
		terms := sampleTerminals(rng, n, k)
		m := g.FloydWarshall()
		tm, err := TakahashiMatsuyama(g, m, terms[0], terms[1:])
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !g.IsTreeSpanning(tm.Edges, terms) {
			t.Fatalf("trial %d: TM result not a tree spanning terminals", trial)
		}
		exact, err := DreyfusWagner(g, m, terms)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if tm.Cost > 2*exact.Cost+1e-9 {
			t.Fatalf("trial %d: TM %v > 2 * exact %v", trial, tm.Cost, exact.Cost)
		}
	}
}

func TestDreyfusWagnerTerminalLimit(t *testing.T) {
	g := graph.New(20)
	for v := 1; v < 20; v++ {
		g.MustAddEdge(v-1, v, 1)
	}
	m := g.FloydWarshall()
	terms := make([]int, MaxExactTerminals+1)
	for i := range terms {
		terms[i] = i
	}
	if _, err := DreyfusWagner(g, m, terms); !errors.Is(err, ErrTooManyTerminals) {
		t.Errorf("got %v, want ErrTooManyTerminals", err)
	}
}

func TestDreyfusWagnerPathGraph(t *testing.T) {
	// On a path graph, the Steiner tree over endpoints is the whole path.
	g := graph.New(6)
	total := 0.0
	for v := 1; v < 6; v++ {
		g.MustAddEdge(v-1, v, float64(v))
		total += float64(v)
	}
	m := g.FloydWarshall()
	tree, err := DreyfusWagner(g, m, []int{0, 5})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Cost != total {
		t.Errorf("cost = %v, want %v", tree.Cost, total)
	}
	// With a middle terminal added, cost must not change.
	tree2, err := DreyfusWagner(g, m, []int{0, 3, 5})
	if err != nil {
		t.Fatal(err)
	}
	if tree2.Cost != total {
		t.Errorf("cost with middle terminal = %v, want %v", tree2.Cost, total)
	}
}

func TestPruneRemovesDanglingBranches(t *testing.T) {
	// Path 0-1-2 with dangling 1-3; terminals {0,2}.
	g := graph.New(4)
	a := g.MustAddEdge(0, 1, 1)
	b := g.MustAddEdge(1, 2, 1)
	c := g.MustAddEdge(1, 3, 1)
	kept := Prune(g, []int{a, b, c}, []int{0, 2})
	if len(kept) != 2 {
		t.Fatalf("kept %d edges, want 2", len(kept))
	}
	for _, id := range kept {
		if id == c {
			t.Error("dangling edge 1-3 survived pruning")
		}
	}
}

func TestPruneCascades(t *testing.T) {
	// Chain 0-1-2-3-4, terminals {0,1}: edges 1-2,2-3,3-4 all pruned.
	g := graph.New(5)
	ids := make([]int, 0, 4)
	for v := 1; v < 5; v++ {
		ids = append(ids, g.MustAddEdge(v-1, v, 1))
	}
	kept := Prune(g, ids, []int{0, 1})
	if len(kept) != 1 {
		t.Fatalf("kept %d edges, want 1 (cascading prune)", len(kept))
	}
}

func TestTreeNodes(t *testing.T) {
	g := graph.New(4)
	a := g.MustAddEdge(0, 1, 1)
	tree := Tree{Edges: []int{a}, Cost: 1}
	nodes := tree.Nodes(g, []int{3})
	if !nodes[0] || !nodes[1] || !nodes[3] || nodes[2] {
		t.Errorf("nodes = %v", nodes)
	}
}
