package steiner

import (
	"fmt"

	"sftree/internal/graph"
)

// CostsWithExtraRoot runs the Dreyfus-Wagner dynamic program once and
// returns, for every node v, the cost of a minimum Steiner tree
// spanning terminals plus v. This answers "what does it cost to hang
// the whole destination set off candidate host v" for every candidate
// simultaneously, which the best-known-solution reference solver needs
// when sweeping last-VNF hosts. The terminal count is capped at
// MaxExactTerminals-1 because the DP subsets range over all terminals.
func CostsWithExtraRoot(g *graph.Graph, m *graph.Metric, terminals []int) ([]float64, error) {
	terminals = dedupTerminals(terminals)
	if len(terminals) == 0 {
		return nil, ErrNoTerminals
	}
	if len(terminals) > MaxExactTerminals-1 {
		return nil, fmt.Errorf("%w: %d > %d", ErrTooManyTerminals, len(terminals), MaxExactTerminals-1)
	}
	for _, a := range terminals[1:] {
		if m.Dist[terminals[0]][a] == graph.Inf {
			return nil, fmt.Errorf("%w: %d and %d", ErrUnreachable, terminals[0], a)
		}
	}
	n := g.NumNodes()
	t := len(terminals)
	full := 1 << t

	dp := make([][]float64, full)
	for mask := 1; mask < full; mask++ {
		dp[mask] = make([]float64, n)
		for v := 0; v < n; v++ {
			dp[mask][v] = graph.Inf
		}
	}
	for i, term := range terminals {
		mask := 1 << i
		for v := 0; v < n; v++ {
			dp[mask][v] = m.Dist[term][v]
		}
	}
	for mask := 1; mask < full; mask++ {
		if mask&(mask-1) == 0 {
			continue
		}
		row := dp[mask]
		for sub := (mask - 1) & mask; sub > 0; sub = (sub - 1) & mask {
			other := mask ^ sub
			if sub > other {
				continue
			}
			ds, do := dp[sub], dp[other]
			for v := 0; v < n; v++ {
				if c := ds[v] + do[v]; c < row[v] {
					row[v] = c
				}
			}
		}
		// One metric relaxation pass (valid because Dist satisfies the
		// triangle inequality; see dreyfuswagner.go).
		for v := 0; v < n; v++ {
			for u := 0; u < n; u++ {
				if u == v || row[u] == graph.Inf {
					continue
				}
				if c := row[u] + m.Dist[u][v]; c < row[v] {
					row[v] = c
				}
			}
		}
	}
	out := make([]float64, n)
	copy(out, dp[full-1])
	return out, nil
}
