package steiner

import (
	"math"
	"sort"
	"sync"

	"sftree/internal/graph"
)

// workspace is the reusable scratch arena behind the Steiner
// routines. Stage one runs one Steiner construction per candidate
// last-host, so the transient maps and slices the textbook
// formulations allocate dominated the solver's allocation profile;
// the workspace replaces them with epoch-marked flat arrays recycled
// through a sync.Pool. Acquire with getWS, release with putWS on the
// same call path; nothing reachable from the workspace may escape
// into a returned Tree.
type workspace struct {
	// nodeMark/nodeGen: epoch membership marks over graph nodes
	// (terminal sets, dedup). A node is marked iff nodeMark[v] == nodeGen.
	nodeMark []int32
	nodeGen  int32
	// edgeMark/edgeGen: epoch membership marks over graph edges, with
	// the distinct marked ids collected in order into edges.
	edgeMark []int32
	edgeGen  int32
	edges    []int
	// alive[i] tracks survival of edges[i] during pruning.
	alive []bool
	// deg holds node degrees during pruning; always restored to zero.
	deg []int32
	// Multi-source Dijkstra state (Mehlhorn).
	dist   []float64
	parent []int
	region []int32
	heap   graph.NodeHeap
	// uf serves both Kruskal over nodes and the terminal-region MST.
	uf graph.UnionFind
	// Terminal-sized buffers.
	terms []int
	tDist []float64
	tFrom []int32
	tIn   []bool
	pairs [][2]int32
	// Bridge matrices (Mehlhorn), t*t flattened.
	bridgeW []float64
	bridgeE []int32
}

var wsPool = sync.Pool{New: func() any { return new(workspace) }}

func getWS() *workspace   { return wsPool.Get().(*workspace) }
func putWS(ws *workspace) { wsPool.Put(ws) }

// bumpNodes starts a fresh node-mark epoch covering nodes in [0, n).
func (ws *workspace) bumpNodes(n int) {
	if cap(ws.nodeMark) < n {
		ws.nodeMark = make([]int32, n)
		ws.nodeGen = 0
	}
	ws.nodeMark = ws.nodeMark[:n]
	if ws.nodeGen == math.MaxInt32 {
		for i := range ws.nodeMark {
			ws.nodeMark[i] = 0
		}
		ws.nodeGen = 0
	}
	ws.nodeGen++
}

// markNode marks v in the current epoch, reporting whether it was new.
func (ws *workspace) markNode(v int) bool {
	if ws.nodeMark[v] == ws.nodeGen {
		return false
	}
	ws.nodeMark[v] = ws.nodeGen
	return true
}

func (ws *workspace) nodeMarked(v int) bool { return ws.nodeMark[v] == ws.nodeGen }

// bumpEdges starts a fresh edge-mark epoch covering edges in [0, m)
// and resets the collected-edge list.
func (ws *workspace) bumpEdges(m int) {
	if cap(ws.edgeMark) < m {
		ws.edgeMark = make([]int32, m)
		ws.edgeGen = 0
	}
	ws.edgeMark = ws.edgeMark[:m]
	if ws.edgeGen == math.MaxInt32 {
		for i := range ws.edgeMark {
			ws.edgeMark[i] = 0
		}
		ws.edgeGen = 0
	}
	ws.edgeGen++
	ws.edges = ws.edges[:0]
}

// markEdge adds id to the collected set once per epoch.
func (ws *workspace) markEdge(id int) {
	if ws.edgeMark[id] != ws.edgeGen {
		ws.edgeMark[id] = ws.edgeGen
		ws.edges = append(ws.edges, id)
	}
}

// dedup fills ws.terms with the unique terminals in first-seen order.
func (ws *workspace) dedup(terminals []int, n int) []int {
	ws.bumpNodes(n)
	out := ws.terms[:0]
	for _, v := range terminals {
		if ws.markNode(v) {
			out = append(out, v)
		}
	}
	ws.terms = out
	return out
}

// growTerms sizes the terminal-indexed Prim buffers.
func (ws *workspace) growTerms(t int) {
	if cap(ws.tDist) < t {
		ws.tDist = make([]float64, t)
		ws.tFrom = make([]int32, t)
		ws.tIn = make([]bool, t)
	}
	ws.tDist = ws.tDist[:t]
	ws.tFrom = ws.tFrom[:t]
	ws.tIn = ws.tIn[:t]
}

// mstOfCollected runs Kruskal over ws.edges (in place), keeping the
// edges of a minimum spanning forest. Ties are broken by edge id, so
// the result is deterministic regardless of collection order.
func (ws *workspace) mstOfCollected(g *graph.Graph) []int {
	ids := ws.edges
	sort.Slice(ids, func(a, b int) bool {
		ca, cb := g.Edge(ids[a]).Cost, g.Edge(ids[b]).Cost
		if ca != cb {
			return ca < cb
		}
		return ids[a] < ids[b]
	})
	ws.uf.Reset(g.NumNodes())
	w := 0
	for _, id := range ids {
		e := g.Edge(id)
		if ws.uf.Union(e.U, e.V) {
			ids[w] = id
			w++
		}
	}
	ws.edges = ids[:w]
	return ws.edges
}

// prune removes edges incident to non-terminal leaves from ids (in
// place) until a fixed point, returning the survivors sorted by id.
func (ws *workspace) prune(g *graph.Graph, ids []int, terminals []int) []int {
	ws.bumpNodes(g.NumNodes())
	for _, v := range terminals {
		ws.markNode(v)
	}
	if cap(ws.deg) < g.NumNodes() {
		ws.deg = make([]int32, g.NumNodes())
	}
	deg := ws.deg[:g.NumNodes()]
	if cap(ws.alive) < len(ids) {
		ws.alive = make([]bool, len(ids))
	}
	alive := ws.alive[:len(ids)]
	for i, id := range ids {
		alive[i] = true
		e := g.Edge(id)
		deg[e.U]++
		deg[e.V]++
	}
	for changed := true; changed; {
		changed = false
		for i, id := range ids {
			if !alive[i] {
				continue
			}
			e := g.Edge(id)
			if (deg[e.U] == 1 && !ws.nodeMarked(e.U)) || (deg[e.V] == 1 && !ws.nodeMarked(e.V)) {
				alive[i] = false
				deg[e.U]--
				deg[e.V]--
				changed = true
			}
		}
	}
	w := 0
	for i, id := range ids {
		e := g.Edge(id)
		deg[e.U], deg[e.V] = 0, 0 // restore the shared degree array
		if alive[i] {
			ids[w] = id
			w++
		}
	}
	out := ids[:w]
	sort.Ints(out)
	return out
}
