package netgen

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"sftree/internal/core"
	"sftree/internal/nfv"
)

func TestWaxmanConnectedAndEuclidean(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	net, err := GenerateWaxman(WaxmanConfig{Nodes: 60}, PaperConfig(60, 2), rng)
	if err != nil {
		t.Fatal(err)
	}
	if net.NumNodes() != 60 {
		t.Fatalf("nodes = %d", net.NumNodes())
	}
	if !net.Graph().Connected() {
		t.Fatal("Waxman graph not connected")
	}
	coords := net.Coords()
	for _, e := range net.Graph().Edges() {
		dx, dy := coords[e.U].X-coords[e.V].X, coords[e.U].Y-coords[e.V].Y
		if math.Abs(e.Cost-math.Sqrt(dx*dx+dy*dy)) > 1e-9 {
			t.Fatalf("edge %d-%d cost not Euclidean", e.U, e.V)
		}
	}
}

func TestWaxmanDensityScalesWithBeta(t *testing.T) {
	edges := func(beta float64) int {
		rng := rand.New(rand.NewSource(7))
		net, err := GenerateWaxman(WaxmanConfig{Nodes: 80, Beta: beta}, PaperConfig(80, 2), rng)
		if err != nil {
			t.Fatal(err)
		}
		return net.Graph().NumEdges()
	}
	sparse, dense := edges(0.1), edges(0.9)
	if dense <= sparse {
		t.Errorf("beta 0.9 gave %d edges <= beta 0.1's %d", dense, sparse)
	}
}

func TestWaxmanValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	if _, err := GenerateWaxman(WaxmanConfig{Nodes: 1}, PaperConfig(10, 2), rng); !errors.Is(err, ErrBadConfig) {
		t.Errorf("1 node: %v", err)
	}
	if _, err := GenerateWaxman(WaxmanConfig{Nodes: 10, Beta: 1.5}, PaperConfig(10, 2), rng); !errors.Is(err, ErrBadConfig) {
		t.Errorf("beta > 1: %v", err)
	}
}

func TestFatTreeStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	k := 4
	net, err := FatTree(k, PaperConfig(0, 2), rng)
	if err != nil {
		t.Fatal(err)
	}
	// k=4: 4 cores + 4 pods * (2 agg + 2 edge) = 20 nodes.
	if net.NumNodes() != 20 {
		t.Fatalf("nodes = %d, want 20", net.NumNodes())
	}
	// Links: core-agg: 4 pods * 2 agg * 2 cores = 16; agg-edge: 4 pods *
	// 2*2 = 16. Total 32.
	if got := net.Graph().NumEdges(); got != 32 {
		t.Fatalf("edges = %d, want 32", got)
	}
	if !net.Graph().Connected() {
		t.Fatal("fat-tree not connected")
	}
	// Uniform fabric: every link unit cost.
	for _, e := range net.Graph().Edges() {
		if e.Cost != 1 {
			t.Fatalf("edge %d-%d cost %v, want 1", e.U, e.V, e.Cost)
		}
	}
	edges := FatTreeEdgeSwitches(k)
	if len(edges) != 8 {
		t.Fatalf("edge switches = %d, want 8", len(edges))
	}
	// Edge switches have degree k/2 (uplinks only, hosts not modelled).
	for _, v := range edges {
		if d := net.Graph().Degree(v); d != k/2 {
			t.Fatalf("edge switch %d degree %d, want %d", v, d, k/2)
		}
	}
}

func TestFatTreeRejectsOddArity(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	if _, err := FatTree(3, PaperConfig(0, 2), rng); !errors.Is(err, ErrBadConfig) {
		t.Errorf("odd k: %v", err)
	}
	if _, err := FatTree(0, PaperConfig(0, 2), rng); !errors.Is(err, ErrBadConfig) {
		t.Errorf("zero k: %v", err)
	}
}

func TestGenerateClusteredTask(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	net, err := Generate(PaperConfig(80, 2), rng)
	if err != nil {
		t.Fatal(err)
	}
	task, err := GenerateClusteredTask(net, rng, 3, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := task.Validate(net); err != nil {
		t.Fatalf("task invalid: %v", err)
	}
	if len(task.Destinations) != 12 || task.K() != 5 {
		t.Fatalf("shape: %d dests, k=%d", len(task.Destinations), task.K())
	}
	// Clustering: the mean pairwise destination distance should be well
	// below the mean over random node pairs.
	m := net.Metric()
	var clustered float64
	var pairs int
	// Compare within-cluster spread (consecutive 4-blocks) to global.
	for c := 0; c < 3; c++ {
		for i := 0; i < 4; i++ {
			for j := i + 1; j < 4; j++ {
				clustered += m.Dist[task.Destinations[c*4+i]][task.Destinations[c*4+j]]
				pairs++
			}
		}
	}
	clustered /= float64(pairs)
	var global float64
	cnt := 0
	for u := 0; u < net.NumNodes(); u += 7 {
		for v := u + 1; v < net.NumNodes(); v += 5 {
			global += m.Dist[u][v]
			cnt++
		}
	}
	global /= float64(cnt)
	if clustered > global*0.8 {
		t.Errorf("within-cluster spread %.1f not clearly below global %.1f", clustered, global)
	}
}

func TestGenerateClusteredTaskValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	net, err := Generate(PaperConfig(10, 2), rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := GenerateClusteredTask(net, rng, 0, 3, 2); !errors.Is(err, ErrBadConfig) {
		t.Errorf("zero clusters: %v", err)
	}
	if _, err := GenerateClusteredTask(net, rng, 5, 5, 2); !errors.Is(err, ErrBadConfig) {
		t.Errorf("too many destinations: %v", err)
	}
	if _, err := GenerateClusteredTask(net, rng, 2, 2, 0); !errors.Is(err, ErrBadConfig) {
		t.Errorf("zero chain: %v", err)
	}
}

func TestFatTreeMulticastSolves(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	net, err := FatTree(4, PaperConfig(0, 2), rng)
	if err != nil {
		t.Fatal(err)
	}
	edges := FatTreeEdgeSwitches(4)
	task := nfv.Task{Source: edges[0], Destinations: edges[1:4], Chain: nfv.SFC{0, 1}}
	res, err := core.Solve(net, task, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Validate(res.Embedding); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	// In a unit-cost fabric the shared tree must beat per-destination
	// unicast: cost strictly below 3 * (source->dest path + chain).
	if res.FinalCost <= 0 {
		t.Fatalf("cost = %v", res.FinalCost)
	}
}
