package netgen

import (
	"fmt"
	"math"
	"math/rand"

	"sftree/internal/graph"
	"sftree/internal/nfv"
)

// WaxmanConfig parameterizes the Waxman random-graph model commonly
// used for ISP-like topologies: nodes scatter uniformly in the plane
// and an edge {u,v} exists with probability
//
//	P(u,v) = Beta * exp(-d(u,v) / (Alpha * L))
//
// where L is the maximum pairwise distance. Larger Alpha favours long
// links; larger Beta raises overall density.
type WaxmanConfig struct {
	Nodes int
	Alpha float64 // distance decay (default 0.15)
	Beta  float64 // density (default 0.4)
	Area  float64 // coordinate square side (default 100)
}

func (c WaxmanConfig) normalized() (WaxmanConfig, error) {
	if c.Nodes < 2 {
		return c, fmt.Errorf("%w: %d nodes", ErrBadConfig, c.Nodes)
	}
	if c.Alpha <= 0 {
		c.Alpha = 0.15
	}
	if c.Beta <= 0 {
		c.Beta = 0.4
	}
	if c.Beta > 1 {
		return c, fmt.Errorf("%w: beta %v > 1", ErrBadConfig, c.Beta)
	}
	if c.Area <= 0 {
		c.Area = 100
	}
	return c, nil
}

// GenerateWaxman builds a connected Waxman topology and wraps it with
// the NFV metadata of cfg (capacities, catalog, setup costs,
// deployments), exactly like Generate does for ER graphs.
func GenerateWaxman(wax WaxmanConfig, cfg Config, rng *rand.Rand) (*nfv.Network, error) {
	wax, err := wax.normalized()
	if err != nil {
		return nil, err
	}
	n := wax.Nodes
	coords := make([]nfv.Point, n)
	for v := range coords {
		coords[v] = nfv.Point{X: rng.Float64() * wax.Area, Y: rng.Float64() * wax.Area}
	}
	maxDist := 0.0
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if d := euclid(coords[u], coords[v]); d > maxDist {
				maxDist = d
			}
		}
	}
	if maxDist == 0 {
		maxDist = 1
	}
	g := graph.New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			d := euclid(coords[u], coords[v])
			if rng.Float64() < wax.Beta*math.Exp(-d/(wax.Alpha*maxDist)) {
				g.MustAddEdge(u, v, d)
			}
		}
	}
	connectComponents(g, coords)
	cfg.Nodes = n
	return Materialize(g, coords, cfg, rng)
}
