// Package netgen generates evaluation instances following the paper's
// Table I: Erdos-Renyi random graphs with Euclidean link costs, server
// capacities drawn uniformly from [1,5], a 30-VNF catalog with random
// pre-deployments, VNF setup costs drawn from N(mu*lbar, (lbar/4)^2)
// where lbar is the network's average shortest-path cost, and random
// multicast tasks. All randomness flows through an injected
// *rand.Rand, so every experiment is reproducible from its seed.
package netgen

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"sftree/internal/graph"
	"sftree/internal/nfv"
)

var (
	// ErrBadConfig reports invalid generator parameters.
	ErrBadConfig = errors.New("netgen: invalid config")
)

// Config controls instance generation. Zero fields fall back to the
// paper's defaults (see PaperConfig).
type Config struct {
	// Nodes is the network size |V|.
	Nodes int
	// EdgeProb is the ER edge probability; 0 picks 2*ln(n)/n, just
	// above the connectivity threshold.
	EdgeProb float64
	// Area is the side of the coordinate square (Euclidean costs).
	Area float64
	// ServerFraction is the fraction of nodes that are servers.
	ServerFraction float64
	// CapacityMin/CapacityMax bound the per-server uniform capacity.
	CapacityMin, CapacityMax int
	// CatalogSize is the number of VNF types.
	CatalogSize int
	// DeployedInstances is how many random pre-deployments to attempt.
	DeployedInstances int
	// SetupCostMu is the paper's mu: setup costs are drawn from
	// N(mu*lbar, (lbar/4)^2) clamped at >= 0.
	SetupCostMu float64
}

// PaperConfig returns Table I's defaults for a given network size and
// average-setup-cost multiplier.
func PaperConfig(nodes int, mu float64) Config {
	return Config{
		Nodes:             nodes,
		ServerFraction:    1.0,
		CapacityMin:       1,
		CapacityMax:       5,
		CatalogSize:       30,
		DeployedInstances: nodes,
		SetupCostMu:       mu,
		Area:              100,
	}
}

func (c Config) normalized() (Config, error) {
	if c.Nodes < 2 {
		return c, fmt.Errorf("%w: %d nodes", ErrBadConfig, c.Nodes)
	}
	if c.EdgeProb == 0 {
		c.EdgeProb = 2 * math.Log(float64(c.Nodes)) / float64(c.Nodes)
	}
	if c.EdgeProb < 0 || c.EdgeProb > 1 {
		return c, fmt.Errorf("%w: edge probability %v", ErrBadConfig, c.EdgeProb)
	}
	if c.Area <= 0 {
		c.Area = 100
	}
	if c.ServerFraction <= 0 || c.ServerFraction > 1 {
		c.ServerFraction = 1
	}
	if c.CapacityMin <= 0 {
		c.CapacityMin = 1
	}
	if c.CapacityMax < c.CapacityMin {
		c.CapacityMax = c.CapacityMin + 4
	}
	if c.CatalogSize <= 0 {
		c.CatalogSize = 30
	}
	if c.SetupCostMu <= 0 {
		c.SetupCostMu = 2
	}
	return c, nil
}

// Generate builds a connected ER network with Euclidean costs and full
// NFV metadata.
func Generate(cfg Config, rng *rand.Rand) (*nfv.Network, error) {
	cfg, err := cfg.normalized()
	if err != nil {
		return nil, err
	}
	n := cfg.Nodes
	coords := make([]nfv.Point, n)
	for v := range coords {
		coords[v] = nfv.Point{X: rng.Float64() * cfg.Area, Y: rng.Float64() * cfg.Area}
	}
	g := graph.New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < cfg.EdgeProb {
				g.MustAddEdge(u, v, euclid(coords[u], coords[v]))
			}
		}
	}
	connectComponents(g, coords)
	return Materialize(g, coords, cfg, rng)
}

// Materialize wraps a finished topology (e.g. PalmettoNet) with the
// config's NFV metadata: servers, capacities, catalog, setup costs,
// and random pre-deployments.
func Materialize(g *graph.Graph, coords []nfv.Point, cfg Config, rng *rand.Rand) (*nfv.Network, error) {
	cfg, err := cfg.normalized()
	if err != nil {
		return nil, err
	}
	catalog := nfv.DefaultCatalog()
	if cfg.CatalogSize < len(catalog) {
		catalog = catalog[:cfg.CatalogSize]
	}
	net := nfv.NewNetwork(g, catalog)
	net.SetCoords(coords)

	n := g.NumNodes()
	numServers := int(math.Round(cfg.ServerFraction * float64(n)))
	if numServers < 1 {
		numServers = 1
	}
	perm := rng.Perm(n)
	sort.Ints(perm[:numServers]) // deterministic server set given the permutation
	for _, v := range perm[:numServers] {
		capacity := cfg.CapacityMin + rng.Intn(cfg.CapacityMax-cfg.CapacityMin+1)
		if err := net.SetServer(v, float64(capacity)); err != nil {
			return nil, err
		}
	}

	// Average shortest-path cost lbar balances link and setup costs.
	lbar := meanShortestPath(net)
	sigma := lbar / 4
	for f := range catalog {
		for _, v := range net.Servers() {
			cost := rng.NormFloat64()*sigma + cfg.SetupCostMu*lbar
			if cost < 0 {
				cost = 0
			}
			if err := net.SetSetupCost(f, v, cost); err != nil {
				return nil, err
			}
		}
	}

	servers := net.Servers()
	for i := 0; i < cfg.DeployedInstances && len(servers) > 0; i++ {
		f := rng.Intn(len(catalog))
		v := servers[rng.Intn(len(servers))]
		if !net.IsDeployed(f, v) && net.FreeCapacity(v) >= catalog[f].Demand {
			if err := net.Deploy(f, v); err != nil {
				return nil, err
			}
		}
	}
	return net, nil
}

// GenerateTask samples a multicast task: a random source, numDest
// distinct random destinations, and a chain of chainLen distinct VNFs.
func GenerateTask(net *nfv.Network, rng *rand.Rand, numDest, chainLen int) (nfv.Task, error) {
	n := net.NumNodes()
	if numDest < 1 || numDest >= n {
		return nfv.Task{}, fmt.Errorf("%w: %d destinations in %d-node network", ErrBadConfig, numDest, n)
	}
	if chainLen < 1 || chainLen > net.CatalogSize() {
		return nfv.Task{}, fmt.Errorf("%w: chain length %d with catalog %d", ErrBadConfig, chainLen, net.CatalogSize())
	}
	perm := rng.Perm(n)
	task := nfv.Task{
		Source:       perm[0],
		Destinations: append([]int(nil), perm[1:1+numDest]...),
		Chain:        make(nfv.SFC, chainLen),
	}
	fperm := rng.Perm(net.CatalogSize())
	copy(task.Chain, fperm[:chainLen])
	return task, nil
}

// GenerateClusteredTask samples a multicast task whose destinations
// form geographic clusters: `clusters` random centers, each claiming
// its `perCluster` nearest nodes. Clustered receivers are the regime
// where a service function *tree* (per-cluster branches) beats a
// single chain, so this generator feeds the branching experiments.
func GenerateClusteredTask(net *nfv.Network, rng *rand.Rand, clusters, perCluster, chainLen int) (nfv.Task, error) {
	n := net.NumNodes()
	want := clusters * perCluster
	if clusters < 1 || perCluster < 1 || want >= n {
		return nfv.Task{}, fmt.Errorf("%w: %d clusters x %d in %d-node network", ErrBadConfig, clusters, perCluster, n)
	}
	if chainLen < 1 || chainLen > net.CatalogSize() {
		return nfv.Task{}, fmt.Errorf("%w: chain length %d with catalog %d", ErrBadConfig, chainLen, net.CatalogSize())
	}
	metric := net.Metric()
	source := rng.Intn(n)
	taken := map[int]bool{source: true}
	var dests []int
	for c := 0; c < clusters; c++ {
		center := rng.Intn(n)
		// Nodes by distance from the center.
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool {
			return metric.Dist[center][order[a]] < metric.Dist[center][order[b]]
		})
		added := 0
		for _, v := range order {
			if added == perCluster {
				break
			}
			if taken[v] || metric.Dist[center][v] == math.Inf(1) {
				continue
			}
			taken[v] = true
			dests = append(dests, v)
			added++
		}
		if added < perCluster {
			return nfv.Task{}, fmt.Errorf("%w: cluster %d could not claim %d nodes", ErrBadConfig, c, perCluster)
		}
	}
	task := nfv.Task{Source: source, Destinations: dests, Chain: make(nfv.SFC, chainLen)}
	copy(task.Chain, rng.Perm(net.CatalogSize())[:chainLen])
	return task, nil
}

// connectComponents stitches a possibly disconnected ER sample into
// one component by linking each component to its geometrically nearest
// outside node.
func connectComponents(g *graph.Graph, coords []nfv.Point) {
	for {
		comps := g.Components()
		if len(comps) <= 1 {
			return
		}
		// Link the smallest component to its nearest outside node.
		sort.Slice(comps, func(a, b int) bool { return len(comps[a]) < len(comps[b]) })
		small := comps[0]
		inSmall := make(map[int]bool, len(small))
		for _, v := range small {
			inSmall[v] = true
		}
		bestU, bestV, bestD := -1, -1, math.Inf(1)
		for _, u := range small {
			for v := 0; v < g.NumNodes(); v++ {
				if inSmall[v] {
					continue
				}
				if d := euclid(coords[u], coords[v]); d < bestD {
					bestU, bestV, bestD = u, v, d
				}
			}
		}
		g.MustAddEdge(bestU, bestV, bestD)
	}
}

// meanShortestPath averages finite pairwise distances.
func meanShortestPath(net *nfv.Network) float64 {
	m := net.Metric()
	n := net.NumNodes()
	var sum float64
	var count int
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if d := m.Dist[u][v]; d != graph.Inf {
				sum += d
				count++
			}
		}
	}
	if count == 0 {
		return 1
	}
	return sum / float64(count)
}

func euclid(a, b nfv.Point) float64 {
	dx, dy := a.X-b.X, a.Y-b.Y
	return math.Sqrt(dx*dx + dy*dy)
}
