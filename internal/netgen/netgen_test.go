package netgen

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"sftree/internal/core"
	"sftree/internal/nfv"
)

func TestGenerateBasicProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{10, 50, 120} {
		net, err := Generate(PaperConfig(n, 2), rng)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if net.NumNodes() != n {
			t.Errorf("n=%d: nodes = %d", n, net.NumNodes())
		}
		if !net.Graph().Connected() {
			t.Errorf("n=%d: generated graph not connected", n)
		}
		if len(net.Servers()) != n {
			t.Errorf("n=%d: servers = %d, want all nodes", n, len(net.Servers()))
		}
		if net.CatalogSize() != 30 {
			t.Errorf("n=%d: catalog = %d", n, net.CatalogSize())
		}
		for _, v := range net.Servers() {
			c := net.Capacity(v)
			if c < 1 || c > 5 {
				t.Errorf("n=%d: capacity %v outside [1,5]", n, c)
			}
		}
		if coords := net.Coords(); len(coords) != n {
			t.Errorf("n=%d: coords = %d", n, len(coords))
		}
	}
}

func TestGenerateEdgeCostsAreEuclidean(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	net, err := Generate(PaperConfig(30, 2), rng)
	if err != nil {
		t.Fatal(err)
	}
	coords := net.Coords()
	for _, e := range net.Graph().Edges() {
		dx := coords[e.U].X - coords[e.V].X
		dy := coords[e.U].Y - coords[e.V].Y
		if math.Abs(e.Cost-math.Sqrt(dx*dx+dy*dy)) > 1e-9 {
			t.Fatalf("edge %d-%d cost %v is not the Euclidean distance", e.U, e.V, e.Cost)
		}
	}
}

func TestSetupCostScalesWithMu(t *testing.T) {
	mean := func(mu float64) float64 {
		rng := rand.New(rand.NewSource(3))
		net, err := Generate(PaperConfig(60, mu), rng)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		var cnt int
		for f := 0; f < net.CatalogSize(); f++ {
			for _, v := range net.Servers() {
				sum += net.RawSetupCost(f, v)
				cnt++
			}
		}
		return sum / float64(cnt)
	}
	m1, m3 := mean(1), mean(3)
	if m3 < 2*m1 {
		t.Errorf("mu=3 mean %v not ~3x mu=1 mean %v", m3, m1)
	}
}

func TestDeployedInstancesRespectCapacity(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	net, err := Generate(PaperConfig(40, 2), rng)
	if err != nil {
		t.Fatal(err)
	}
	deployed := 0
	for _, v := range net.Servers() {
		if used := net.UsedCapacity(v); used > net.Capacity(v)+1e-9 {
			t.Errorf("node %d over capacity: %v > %v", v, used, net.Capacity(v))
		}
		for f := 0; f < net.CatalogSize(); f++ {
			if net.IsDeployed(f, v) {
				deployed++
			}
		}
	}
	if deployed == 0 {
		t.Error("no instances pre-deployed")
	}
}

func TestGenerateDeterministicPerSeed(t *testing.T) {
	gen := func() *nfv.Network {
		rng := rand.New(rand.NewSource(42))
		net, err := Generate(PaperConfig(25, 2), rng)
		if err != nil {
			t.Fatal(err)
		}
		return net
	}
	a, b := gen(), gen()
	if a.Graph().NumEdges() != b.Graph().NumEdges() {
		t.Fatalf("edge counts differ: %d vs %d", a.Graph().NumEdges(), b.Graph().NumEdges())
	}
	for i := 0; i < a.Graph().NumEdges(); i++ {
		ea, eb := a.Graph().Edge(i), b.Graph().Edge(i)
		if ea != eb {
			t.Fatalf("edge %d differs: %+v vs %+v", i, ea, eb)
		}
	}
	for _, v := range a.Servers() {
		if a.Capacity(v) != b.Capacity(v) {
			t.Fatalf("capacity differs at %d", v)
		}
	}
}

func TestGenerateTaskProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	net, err := Generate(PaperConfig(50, 2), rng)
	if err != nil {
		t.Fatal(err)
	}
	task, err := GenerateTask(net, rng, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := task.Validate(net); err != nil {
		t.Fatalf("generated task invalid: %v", err)
	}
	if len(task.Destinations) != 10 || task.K() != 5 {
		t.Errorf("task shape: %d dests, k=%d", len(task.Destinations), task.K())
	}
	for _, d := range task.Destinations {
		if d == task.Source {
			t.Error("destination equals source")
		}
	}
}

func TestGenerateTaskValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	net, err := Generate(PaperConfig(10, 2), rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := GenerateTask(net, rng, 0, 3); !errors.Is(err, ErrBadConfig) {
		t.Errorf("zero dests: %v", err)
	}
	if _, err := GenerateTask(net, rng, 10, 3); !errors.Is(err, ErrBadConfig) {
		t.Errorf("too many dests: %v", err)
	}
	if _, err := GenerateTask(net, rng, 3, 0); !errors.Is(err, ErrBadConfig) {
		t.Errorf("zero chain: %v", err)
	}
	if _, err := GenerateTask(net, rng, 3, 99); !errors.Is(err, ErrBadConfig) {
		t.Errorf("chain beyond catalog: %v", err)
	}
}

func TestBadConfig(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	if _, err := Generate(Config{Nodes: 1}, rng); !errors.Is(err, ErrBadConfig) {
		t.Errorf("1 node: %v", err)
	}
	if _, err := Generate(Config{Nodes: 10, EdgeProb: 1.5}, rng); !errors.Is(err, ErrBadConfig) {
		t.Errorf("bad prob: %v", err)
	}
}

func TestGeneratedInstancesAreSolvable(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	net, err := Generate(PaperConfig(50, 2), rng)
	if err != nil {
		t.Fatal(err)
	}
	task, err := GenerateTask(net, rng, 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Solve(net, task, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Validate(res.Embedding); err != nil {
		t.Errorf("invalid: %v", err)
	}
}

func TestServerFraction(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	cfg := PaperConfig(40, 2)
	cfg.ServerFraction = 0.5
	net, err := Generate(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(net.Servers()); got != 20 {
		t.Errorf("servers = %d, want 20", got)
	}
}
