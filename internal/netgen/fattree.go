package netgen

import (
	"fmt"
	"math/rand"

	"sftree/internal/graph"
	"sftree/internal/nfv"
)

// FatTree builds a k-ary fat-tree switching fabric — the data-center
// topology behind the multicast systems the paper cites (§II,
// Avalanche) — and wraps it with cfg's NFV metadata. k must be even:
// the fabric has (k/2)^2 core switches and k pods of k/2 aggregation
// plus k/2 edge switches each; every link has unit cost (uniform
// fabric). Edge switches (where servers attach in a real DC) are the
// natural multicast sources/destinations.
//
// Node layout: cores [0, (k/2)^2), then per pod p: aggregations
// [coreEnd + p*k, ... + k/2) followed by edges (+ k/2).
func FatTree(k int, cfg Config, rng *rand.Rand) (*nfv.Network, error) {
	if k < 2 || k%2 != 0 {
		return nil, fmt.Errorf("%w: fat-tree arity %d must be even and >= 2", ErrBadConfig, k)
	}
	half := k / 2
	numCore := half * half
	numPerPod := k // half agg + half edge
	n := numCore + k*numPerPod

	agg := func(pod, i int) int { return numCore + pod*numPerPod + i }
	edge := func(pod, i int) int { return numCore + pod*numPerPod + half + i }

	g := graph.New(n)
	coords := make([]nfv.Point, n)
	// Synthetic layered coordinates (for display only; costs are unit).
	for c := 0; c < numCore; c++ {
		coords[c] = nfv.Point{X: float64(c) * 10, Y: 30}
	}
	for pod := 0; pod < k; pod++ {
		for i := 0; i < half; i++ {
			coords[agg(pod, i)] = nfv.Point{X: float64(pod*half+i) * 10, Y: 20}
			coords[edge(pod, i)] = nfv.Point{X: float64(pod*half+i) * 10, Y: 10}
		}
	}
	// Core <-> aggregation: core (i, j) in the (k/2)x(k/2) grid connects
	// to aggregation switch i of every pod... following the canonical
	// wiring: aggregation switch a (0-based) of each pod connects to
	// cores [a*half, (a+1)*half).
	for pod := 0; pod < k; pod++ {
		for a := 0; a < half; a++ {
			for c := a * half; c < (a+1)*half; c++ {
				g.MustAddEdge(agg(pod, a), c, 1)
			}
			// Aggregation <-> edge inside the pod: complete bipartite.
			for e := 0; e < half; e++ {
				g.MustAddEdge(agg(pod, a), edge(pod, e), 1)
			}
		}
	}
	cfg.Nodes = n
	return Materialize(g, coords, cfg, rng)
}

// FatTreeEdgeSwitches returns the node IDs of the edge layer of a
// k-ary fat-tree built by FatTree, the natural end-point set for
// multicast tasks.
func FatTreeEdgeSwitches(k int) []int {
	half := k / 2
	numCore := half * half
	var out []int
	for pod := 0; pod < k; pod++ {
		for i := 0; i < half; i++ {
			out = append(out, numCore+pod*k+half+i)
		}
	}
	return out
}
