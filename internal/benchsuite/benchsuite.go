// Package benchsuite packages the repository's performance-critical
// micro-benchmarks as a programmatically runnable suite, so that
// cmd/sftbench -json can emit a machine-readable perf snapshot
// (BENCH_core.json) and future changes have a trajectory to compare
// against with benchstat or plain diffing.
//
// The suite mirrors the hot-path benchmarks of bench_test.go and
// internal/core/bench_test.go: the end-to-end solvers on the standard
// mid-size instance, the stage-two OPA pass, and the single-move
// delta-cost evaluation — each in its incremental and naive variant
// where both exist, so the file records the speedup itself.
package benchsuite

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"testing"
	"time"

	"sftree/internal/core"
	"sftree/internal/netgen"
	"sftree/internal/nfv"
	"sftree/internal/obs"
	"sftree/internal/sim"
)

// Bench is one named, self-contained benchmark.
type Bench struct {
	Name string
	F    func(b *testing.B)
}

// Result is the measured outcome of one benchmark.
type Result struct {
	Name        string  `json:"name"`
	Runs        int     `json:"runs"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// Report is the JSON document written to BENCH_core.json.
type Report struct {
	GoVersion  string   `json:"go_version"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	NumCPU     int      `json:"num_cpu"`
	Generated  string   `json:"generated"`
	Benchmarks []Result `json:"benchmarks"`
	// SolverPhases is the phase-timing breakdown of one observed
	// end-to-end solve on the standard instance (cold APSP), so perf
	// regressions in the benchmarks above can be attributed to a
	// phase without re-profiling.
	SolverPhases *obs.Breakdown `json:"solver_phases,omitempty"`
}

// benchInstance regenerates the standard mid-size benchmark instance
// (100 nodes, 10 destinations, 5-VNF chain — the same shape the
// in-package micro-benchmarks use) with the APSP warmed up.
func benchInstance(nodes, dests, chain int) (*nfv.Network, nfv.Task, error) {
	net, err := netgen.Generate(netgen.PaperConfig(nodes, 2), rand.New(rand.NewSource(11)))
	if err != nil {
		return nil, nfv.Task{}, err
	}
	task, err := netgen.GenerateTask(net, rand.New(rand.NewSource(12)), dests, chain)
	if err != nil {
		return nil, nfv.Task{}, err
	}
	net.Metric()
	return net, task, nil
}

// solveBench wraps an end-to-end solve of the standard instance.
func solveBench(opts core.Options) (Bench, error) {
	net, task, err := benchInstance(100, 10, 5)
	if err != nil {
		return Bench{}, err
	}
	name := "SolveTwoStage100"
	if opts.NaiveRecost {
		name = "SolveTwoStage100Naive"
	}
	return Bench{Name: name, F: func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.Solve(net, task, opts); err != nil {
				b.Fatal(err)
			}
		}
	}}, nil
}

// runnerBench wraps a prepared core runner closure.
func runnerBench(name string, mk func(*nfv.Network, nfv.Task, core.Options) (func() error, error), opts core.Options) (Bench, error) {
	net, task, err := benchInstance(100, 10, 5)
	if err != nil {
		return Bench{}, err
	}
	run, err := mk(net, task, opts)
	if err != nil {
		return Bench{}, fmt.Errorf("benchsuite: %s: %w", name, err)
	}
	return Bench{Name: name, F: func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := run(); err != nil {
				b.Fatal(err)
			}
		}
	}}, nil
}

// replayBench wraps the flow-level simulator replay of a solved
// embedding, the read-path hot loop of the serving stack.
func replayBench() (Bench, error) {
	net, task, err := benchInstance(100, 10, 5)
	if err != nil {
		return Bench{}, err
	}
	res, err := core.Solve(net, task, core.Options{})
	if err != nil {
		return Bench{}, err
	}
	return Bench{Name: "Replay100", F: func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sim.Replay(net, res.Embedding); err != nil {
				b.Fatal(err)
			}
		}
	}}, nil
}

// SolverPhases runs one instrumented end-to-end solve of the standard
// instance with a cold APSP cache and returns the observed phase
// breakdown: metric-closure build time, stage-1 and stage-2 wall time,
// and the stage-two move funnel.
func SolverPhases() (*obs.Breakdown, error) {
	net, task, err := benchInstance(100, 10, 5)
	if err != nil {
		return nil, err
	}
	// Round-trip the instance through its JSON document: the decoded
	// network carries no cached metric closure (the generator builds
	// one internally), so the solve below pays — and the breakdown
	// attributes — the real APSP construction.
	blob, err := json.Marshal(nfv.InstanceDoc{Network: net, Task: task})
	if err != nil {
		return nil, err
	}
	var doc nfv.InstanceDoc
	if err := json.Unmarshal(blob, &doc); err != nil {
		return nil, err
	}
	rec := &obs.SpanRecorder{}
	if _, err := core.Solve(doc.Network, doc.Task, core.Options{Observer: rec}); err != nil {
		return nil, fmt.Errorf("benchsuite: phase solve: %w", err)
	}
	b := rec.Breakdown()
	return &b, nil
}

// Suite assembles the full benchmark list.
func Suite() ([]Bench, error) {
	var out []Bench
	for _, opts := range []core.Options{{}, {NaiveRecost: true}} {
		b, err := solveBench(opts)
		if err != nil {
			return nil, err
		}
		out = append(out, b)
	}
	specs := []struct {
		name string
		mk   func(*nfv.Network, nfv.Task, core.Options) (func() error, error)
		opts core.Options
	}{
		{"OPAPass", core.OPAPassRunner, core.Options{}},
		{"OPAPassNaive", core.OPAPassRunner, core.Options{NaiveRecost: true}},
		{"StateDeltaCost", core.DeltaCostRunner, core.Options{}},
		{"StateDeltaCostNaive", core.DeltaCostRunner, core.Options{NaiveRecost: true}},
	}
	for _, s := range specs {
		b, err := runnerBench(s.name, s.mk, s.opts)
		if err != nil {
			return nil, err
		}
		out = append(out, b)
	}
	rb, err := replayBench()
	if err != nil {
		return nil, err
	}
	out = append(out, rb)
	return out, nil
}

// Run executes every benchmark in the suite (via testing.Benchmark,
// which measures for its standard one second per benchmark) and
// returns the results in name order.
func Run() ([]Result, error) {
	benches, err := Suite()
	if err != nil {
		return nil, err
	}
	var out []Result
	for _, bench := range benches {
		r := testing.Benchmark(bench.F)
		out = append(out, Result{
			Name:        bench.Name,
			Runs:        r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// NewReport runs the suite plus one instrumented solve and wraps the
// results with environment metadata.
func NewReport() (*Report, error) {
	results, err := Run()
	if err != nil {
		return nil, err
	}
	phases, err := SolverPhases()
	if err != nil {
		return nil, err
	}
	return &Report{
		GoVersion:    runtime.Version(),
		GOOS:         runtime.GOOS,
		GOARCH:       runtime.GOARCH,
		NumCPU:       runtime.NumCPU(),
		Generated:    time.Now().UTC().Format(time.RFC3339),
		Benchmarks:   results,
		SolverPhases: phases,
	}, nil
}

// MarshalReport renders the report as indented JSON with a trailing
// newline, the exact bytes BENCH_core.json carries.
func MarshalReport(r *Report) ([]byte, error) {
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(buf, '\n'), nil
}
