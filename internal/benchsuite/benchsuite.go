// Package benchsuite packages the repository's performance-critical
// micro-benchmarks as a programmatically runnable suite, so that
// cmd/sftbench -json can emit a machine-readable perf snapshot
// (BENCH_core.json) and future changes have a trajectory to compare
// against with benchstat or plain diffing.
//
// The suite mirrors the hot-path benchmarks of bench_test.go and
// internal/core/bench_test.go: the end-to-end solvers on the standard
// mid-size instance, the stage-two OPA pass, and the single-move
// delta-cost evaluation — each in its incremental and naive variant
// where both exist, so the file records the speedup itself.
package benchsuite

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"sftree/internal/core"
	"sftree/internal/dynamic"
	"sftree/internal/faults"
	"sftree/internal/netgen"
	"sftree/internal/nfv"
	"sftree/internal/obs"
	"sftree/internal/sim"
)

// Bench is one named, self-contained benchmark.
type Bench struct {
	Name string
	// Parallelism is the core.Options.Parallelism the benchmark runs
	// with (0 = sequential), recorded in its Result.
	Parallelism int
	F           func(b *testing.B)
}

// Result is the measured outcome of one benchmark.
type Result struct {
	Name        string  `json:"name"`
	Runs        int     `json:"runs"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// Parallelism is the solver worker-pool setting the benchmark used
	// (0 = sequential sweep); variants of the same benchmark differ
	// only in this knob.
	Parallelism int `json:"parallelism,omitempty"`
}

// Report is the JSON document written to BENCH_core.json.
type Report struct {
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
	// GoMaxProcs is the scheduler width the suite ran under; parallel
	// benchmark variants cannot beat the sequential ones when it is 1.
	GoMaxProcs int      `json:"gomaxprocs"`
	Generated  string   `json:"generated"`
	Benchmarks []Result `json:"benchmarks"`
	// SolverPhases is the phase-timing breakdown of one observed
	// end-to-end solve on the standard instance (cold APSP), so perf
	// regressions in the benchmarks above can be attributed to a
	// phase without re-profiling.
	SolverPhases *obs.Breakdown `json:"solver_phases,omitempty"`
	// SolverPhasesWarm is the same breakdown for a second solve on the
	// already-warm network: its apsp_build_ns is zero by construction
	// (the metric closure is cached and generation-valid), which is
	// the acceptance signal for metric reuse.
	SolverPhasesWarm *obs.Breakdown `json:"solver_phases_warm,omitempty"`
}

// benchInstance regenerates the standard mid-size benchmark instance
// (100 nodes, 10 destinations, 5-VNF chain — the same shape the
// in-package micro-benchmarks use) with the APSP warmed up.
func benchInstance(nodes, dests, chain int) (*nfv.Network, nfv.Task, error) {
	net, err := netgen.Generate(netgen.PaperConfig(nodes, 2), rand.New(rand.NewSource(11)))
	if err != nil {
		return nil, nfv.Task{}, err
	}
	task, err := netgen.GenerateTask(net, rand.New(rand.NewSource(12)), dests, chain)
	if err != nil {
		return nil, nfv.Task{}, err
	}
	net.Metric()
	return net, task, nil
}

// solveBench wraps an end-to-end solve of the standard instance.
func solveBench(name string, opts core.Options) (Bench, error) {
	net, task, err := benchInstance(100, 10, 5)
	if err != nil {
		return Bench{}, err
	}
	return Bench{Name: name, Parallelism: opts.Parallelism, F: func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.Solve(net, task, opts); err != nil {
				b.Fatal(err)
			}
		}
	}}, nil
}

// warmMetricBench measures a full degraded-substrate solve cycle on a
// warm metric: every iteration re-materializes the same degraded
// topology through faults.State and solves on the fresh network. The
// per-signature metric cache hands each materialization the same APSP
// closure, so no iteration after the first pays a metric build — the
// benchmark isolates exactly what Rebase-style re-solving costs once
// APSP is off the critical path.
func warmMetricBench() (Bench, error) {
	net, task, err := benchInstance(100, 10, 5)
	if err != nil {
		return Bench{}, err
	}
	st := faults.NewState(net)
	// Fail the first link whose loss keeps the instance solvable, so
	// the degraded (cache-backed) supplier path is the one measured.
	ok := false
	for id := 0; id < net.Graph().NumEdges() && !ok; id++ {
		e := net.Graph().Edge(id)
		if err := st.Apply(faults.Event{Kind: faults.LinkDown, U: e.U, V: e.V}); err != nil {
			continue
		}
		if deg, err := st.Materialize(net); err == nil {
			if _, err := core.Solve(deg, task, core.Options{}); err == nil {
				ok = true
				break
			}
		}
		if err := st.Apply(faults.Event{Kind: faults.LinkUp, U: e.U, V: e.V}); err != nil {
			return Bench{}, err
		}
	}
	if !ok {
		return Bench{}, fmt.Errorf("benchsuite: no single link failure keeps the instance solvable")
	}
	return Bench{Name: "SolveWarmMetric100", F: func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			deg, err := st.Materialize(net)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := core.Solve(deg, task, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	}}, nil
}

// runnerBench wraps a prepared core runner closure.
func runnerBench(name string, mk func(*nfv.Network, nfv.Task, core.Options) (func() error, error), opts core.Options) (Bench, error) {
	net, task, err := benchInstance(100, 10, 5)
	if err != nil {
		return Bench{}, err
	}
	run, err := mk(net, task, opts)
	if err != nil {
		return Bench{}, fmt.Errorf("benchsuite: %s: %w", name, err)
	}
	return Bench{Name: name, F: func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := run(); err != nil {
				b.Fatal(err)
			}
		}
	}}, nil
}

// admitParallelBench measures the dynamic manager's concurrent
// admission throughput: RunParallel goroutines each admit one session
// from a fixed task mix and release it, so one op is a full
// solve-outside-the-lock, validate-and-commit, release cycle under
// real contention. Solves run sequentially (Parallelism 0) — the
// concurrency under test is between admissions, not inside one.
func admitParallelBench() (Bench, error) {
	net, err := netgen.Generate(netgen.PaperConfig(50, 2), rand.New(rand.NewSource(21)))
	if err != nil {
		return Bench{}, err
	}
	rng := rand.New(rand.NewSource(22))
	tasks := make([]nfv.Task, 16)
	for i := range tasks {
		task, err := netgen.GenerateTask(net, rng, 2+i%3, 2+i%2)
		if err != nil {
			return Bench{}, err
		}
		tasks[i] = task
	}
	net.Metric()
	return Bench{Name: "AdmitParallel", F: func(b *testing.B) {
		// Every admitted session is released inside its op, so the
		// network ends each measurement pass in its pristine state and
		// back-to-back passes see identical conditions.
		m := dynamic.NewManager(net, core.Options{})
		b.ReportAllocs()
		var ctr atomic.Int64
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				i := int(ctr.Add(1))
				sess, err := m.Admit(tasks[i%len(tasks)])
				if err != nil {
					continue // capacity rejections under contention are data, not failures
				}
				if err := m.Release(sess.ID); err != nil {
					b.Error(err)
				}
			}
		})
	}}, nil
}

// replayBench wraps the flow-level simulator replay of a solved
// embedding, the read-path hot loop of the serving stack.
func replayBench() (Bench, error) {
	net, task, err := benchInstance(100, 10, 5)
	if err != nil {
		return Bench{}, err
	}
	res, err := core.Solve(net, task, core.Options{})
	if err != nil {
		return Bench{}, err
	}
	return Bench{Name: "Replay100", F: func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sim.Replay(net, res.Embedding); err != nil {
				b.Fatal(err)
			}
		}
	}}, nil
}

// SolverPhases runs one instrumented end-to-end solve of the standard
// instance with a cold APSP cache and returns the observed phase
// breakdown: metric-closure build time, stage-1 and stage-2 wall time,
// and the stage-two move funnel.
func SolverPhases() (*obs.Breakdown, error) {
	net, task, err := benchInstance(100, 10, 5)
	if err != nil {
		return nil, err
	}
	// Round-trip the instance through its JSON document: the decoded
	// network carries no cached metric closure (the generator builds
	// one internally), so the solve below pays — and the breakdown
	// attributes — the real APSP construction.
	blob, err := json.Marshal(nfv.InstanceDoc{Network: net, Task: task})
	if err != nil {
		return nil, err
	}
	var doc nfv.InstanceDoc
	if err := json.Unmarshal(blob, &doc); err != nil {
		return nil, err
	}
	rec := &obs.SpanRecorder{}
	if _, err := core.Solve(doc.Network, doc.Task, core.Options{Observer: rec}); err != nil {
		return nil, fmt.Errorf("benchsuite: phase solve: %w", err)
	}
	b := rec.Breakdown()
	return &b, nil
}

// SolverPhasesWarm runs the instrumented solve against a network whose
// metric closure is already cached, returning a breakdown whose
// apsp_build_ns is zero: the generation-stamped cache satisfies the
// metric lookup without an APSP build.
func SolverPhasesWarm() (*obs.Breakdown, error) {
	net, task, err := benchInstance(100, 10, 5) // warms the metric
	if err != nil {
		return nil, err
	}
	rec := &obs.SpanRecorder{}
	if _, err := core.Solve(net, task, core.Options{Observer: rec}); err != nil {
		return nil, fmt.Errorf("benchsuite: warm phase solve: %w", err)
	}
	b := rec.Breakdown()
	return &b, nil
}

// Suite assembles the full benchmark list.
func Suite() ([]Bench, error) {
	var out []Bench
	solves := []struct {
		name string
		opts core.Options
	}{
		{"SolveTwoStage100", core.Options{}},
		{"SolveTwoStage100Par2", core.Options{Parallelism: 2}},
		{"SolveTwoStage100Par8", core.Options{Parallelism: 8}},
		{"SolveTwoStage100Naive", core.Options{NaiveRecost: true}},
	}
	for _, s := range solves {
		b, err := solveBench(s.name, s.opts)
		if err != nil {
			return nil, err
		}
		out = append(out, b)
	}
	wb, err := warmMetricBench()
	if err != nil {
		return nil, err
	}
	out = append(out, wb)
	specs := []struct {
		name string
		mk   func(*nfv.Network, nfv.Task, core.Options) (func() error, error)
		opts core.Options
	}{
		{"OPAPass", core.OPAPassRunner, core.Options{}},
		{"OPAPassNaive", core.OPAPassRunner, core.Options{NaiveRecost: true}},
		{"StateDeltaCost", core.DeltaCostRunner, core.Options{}},
		{"StateDeltaCostNaive", core.DeltaCostRunner, core.Options{NaiveRecost: true}},
	}
	for _, s := range specs {
		b, err := runnerBench(s.name, s.mk, s.opts)
		if err != nil {
			return nil, err
		}
		out = append(out, b)
	}
	rb, err := replayBench()
	if err != nil {
		return nil, err
	}
	out = append(out, rb)
	ab, err := admitParallelBench()
	if err != nil {
		return nil, err
	}
	out = append(out, ab)
	return out, nil
}

// Run executes every benchmark in the suite (via testing.Benchmark,
// which measures for its standard one second per benchmark) and
// returns the results in name order.
func Run() ([]Result, error) {
	benches, err := Suite()
	if err != nil {
		return nil, err
	}
	var out []Result
	for _, bench := range benches {
		r := testing.Benchmark(bench.F)
		out = append(out, Result{
			Name:        bench.Name,
			Runs:        r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Parallelism: bench.Parallelism,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// NewReport runs the suite plus the instrumented cold and warm solves
// and wraps the results with environment metadata.
func NewReport() (*Report, error) {
	results, err := Run()
	if err != nil {
		return nil, err
	}
	phases, err := SolverPhases()
	if err != nil {
		return nil, err
	}
	warm, err := SolverPhasesWarm()
	if err != nil {
		return nil, err
	}
	return &Report{
		GoVersion:        runtime.Version(),
		GOOS:             runtime.GOOS,
		GOARCH:           runtime.GOARCH,
		NumCPU:           runtime.NumCPU(),
		GoMaxProcs:       runtime.GOMAXPROCS(0),
		Generated:        time.Now().UTC().Format(time.RFC3339),
		Benchmarks:       results,
		SolverPhases:     phases,
		SolverPhasesWarm: warm,
	}, nil
}

// GateBenches names the benchmarks the regression gate re-measures:
// the end-to-end solver, the stage-two pass, the warm-metric re-solve
// cycle, and the concurrent admission pipeline.
var GateBenches = []string{"SolveTwoStage100", "OPAPass", "SolveWarmMetric100", "AdmitParallel"}

// Gate thresholds: a gate benchmark may regress at most this much
// against the checked-in baseline before the gate fails.
const (
	GateMaxNsRegression     = 1.05 // >5% ns/op fails
	GateMaxAllocsRegression = 1.10 // >10% allocs/op fails
)

// Gate threshold overrides for benchmarks whose run-to-run variance
// exceeds the defaults: the contended admission cycle's cost and
// allocations depend on how the scheduler interleaves commits (every
// conflict re-solves), so it gets proportionally more slack.
var (
	GateNsOverrides     = map[string]float64{"AdmitParallel": 1.25}
	GateAllocsOverrides = map[string]float64{"AdmitParallel": 1.25}
)

// Gate re-measures the gate benchmarks (best of three runs each, to
// shed scheduler noise) and compares them against the baseline
// report. It returns an error naming every benchmark that regressed
// beyond the thresholds, or whose baseline entry is missing —
// regenerate BENCH_core.json after intentional perf changes.
func Gate(baseline *Report) error {
	benches, err := Suite()
	if err != nil {
		return err
	}
	byName := make(map[string]Bench, len(benches))
	for _, b := range benches {
		byName[b.Name] = b
	}
	base := make(map[string]Result, len(baseline.Benchmarks))
	for _, r := range baseline.Benchmarks {
		base[r.Name] = r
	}
	var problems []string
	for _, name := range GateBenches {
		b, ok := byName[name]
		if !ok {
			return fmt.Errorf("benchsuite: gate benchmark %q not in suite", name)
		}
		bl, ok := base[name]
		if !ok {
			problems = append(problems,
				fmt.Sprintf("%s: no baseline entry (regenerate BENCH_core.json)", name))
			continue
		}
		bestNs, bestAllocs := float64(-1), int64(-1)
		for i := 0; i < 3; i++ {
			r := testing.Benchmark(b.F)
			ns := float64(r.T.Nanoseconds()) / float64(r.N)
			if bestNs < 0 || ns < bestNs {
				bestNs = ns
			}
			if a := r.AllocsPerOp(); bestAllocs < 0 || a < bestAllocs {
				bestAllocs = a
			}
		}
		nsLimit := GateMaxNsRegression
		if o, ok := GateNsOverrides[name]; ok {
			nsLimit = o
		}
		allocsLimit := GateMaxAllocsRegression
		if o, ok := GateAllocsOverrides[name]; ok {
			allocsLimit = o
		}
		if bestNs > bl.NsPerOp*nsLimit {
			problems = append(problems, fmt.Sprintf("%s: %.0f ns/op vs baseline %.0f (+%.1f%%, limit %.0f%%)",
				name, bestNs, bl.NsPerOp, 100*(bestNs/bl.NsPerOp-1), 100*(nsLimit-1)))
		}
		if bl.AllocsPerOp > 0 && float64(bestAllocs) > float64(bl.AllocsPerOp)*allocsLimit {
			problems = append(problems, fmt.Sprintf("%s: %d allocs/op vs baseline %d (+%.1f%%, limit %.0f%%)",
				name, bestAllocs, bl.AllocsPerOp, 100*(float64(bestAllocs)/float64(bl.AllocsPerOp)-1), 100*(allocsLimit-1)))
		}
	}
	if len(problems) > 0 {
		return fmt.Errorf("benchsuite: perf regression gate failed:\n  %s", strings.Join(problems, "\n  "))
	}
	return nil
}

// MarshalReport renders the report as indented JSON with a trailing
// newline, the exact bytes BENCH_core.json carries.
func MarshalReport(r *Report) ([]byte, error) {
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(buf, '\n'), nil
}
