package exact

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"sftree/internal/baseline"
	"sftree/internal/core"
	"sftree/internal/graph"
	"sftree/internal/nfv"
)

func randomInstance(rng *rand.Rand, n, k, nd int) (*nfv.Network, nfv.Task) {
	g := graph.New(n)
	for v := 1; v < n; v++ {
		g.MustAddEdge(rng.Intn(v), v, 1+rng.Float64()*9)
	}
	for i := 0; i < n; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.MustAddEdge(u, v, 1+rng.Float64()*9)
		}
	}
	catalog := make([]nfv.VNF, k+2)
	for f := range catalog {
		catalog[f] = nfv.VNF{ID: f, Name: "f", Demand: 1}
	}
	net := nfv.NewNetwork(g, catalog)
	for v := 0; v < n; v++ {
		if err := net.SetServer(v, float64(2+rng.Intn(4))); err != nil {
			panic(err)
		}
		for f := range catalog {
			if err := net.SetSetupCost(f, v, rng.Float64()*6); err != nil {
				panic(err)
			}
		}
	}
	for i := 0; i < n/3; i++ {
		f, v := rng.Intn(len(catalog)), rng.Intn(n)
		if !net.IsDeployed(f, v) && net.FreeCapacity(v) >= 1 {
			if err := net.Deploy(f, v); err != nil {
				panic(err)
			}
		}
	}
	perm := rng.Perm(n)
	task := nfv.Task{Source: perm[0], Destinations: perm[1 : 1+nd], Chain: make(nfv.SFC, k)}
	for j := range task.Chain {
		task.Chain[j] = j
	}
	return net, task
}

func TestBruteForceValidatesAndBeatsNothing(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 10; trial++ {
		net, task := randomInstance(rng, 4+rng.Intn(2), 1+rng.Intn(2), 1+rng.Intn(2))
		emb, cost, err := BruteForce(net, task, 100000)
		if errors.Is(err, core.ErrNoFeasible) {
			continue
		}
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := net.Validate(emb); err != nil {
			t.Fatalf("trial %d: invalid: %v", trial, err)
		}
		if got := net.Cost(emb).Total; math.Abs(got-cost) > 1e-9 {
			t.Fatalf("trial %d: cost mismatch %v vs %v", trial, got, cost)
		}
		// The two-stage heuristic restricted to shortest-path routing
		// cannot beat the brute force on its own terms, but the SFT may
		// share tree edges, so we only check brute force is not *worse*
		// than the plain SFC heuristic (which it dominates by search).
		if h, err := core.SolveStageOne(net, task, core.Options{MaxCandidateHosts: 1}); err == nil {
			if cost > h.Stage1Cost+1e-6 {
				t.Fatalf("trial %d: brute force %v worse than restricted stage-one %v", trial, cost, h.Stage1Cost)
			}
		}
	}
}

func TestBruteForceTooLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	net, task := randomInstance(rng, 10, 3, 4)
	if _, _, err := BruteForce(net, task, 1000); !errors.Is(err, ErrTooLarge) {
		t.Errorf("got %v, want ErrTooLarge", err)
	}
}

func TestBestKnownNeverWorseThanHeuristics(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	for trial := 0; trial < 10; trial++ {
		net, task := randomInstance(rng, 12+rng.Intn(8), 1+rng.Intn(3), 2+rng.Intn(4))
		bks, err := BestKnown(net, task)
		if errors.Is(err, core.ErrNoFeasible) {
			continue
		}
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := net.Validate(bks.Embedding); err != nil {
			t.Fatalf("trial %d: invalid: %v", trial, err)
		}
		msa, err := core.Solve(net, task, core.Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if bks.FinalCost > msa.FinalCost+1e-9 {
			t.Fatalf("trial %d: BestKnown %v worse than MSA %v", trial, bks.FinalCost, msa.FinalCost)
		}
		if rsa, err := baseline.RSA(net, task, rng, core.Options{}); err == nil {
			if bks.FinalCost > rsa.FinalCost+1e-9 {
				t.Fatalf("trial %d: BestKnown %v worse than RSA %v", trial, bks.FinalCost, rsa.FinalCost)
			}
		}
		if !bks.ExactSteiner {
			t.Errorf("trial %d: expected exact Steiner (|D|=%d small)", trial, len(task.Destinations))
		}
	}
}

func TestBestKnownFallsBackOnManyDestinations(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	net, task := randomInstance(rng, 30, 2, 20) // |D| > DW limit
	bks, err := BestKnown(net, task)
	if errors.Is(err, core.ErrNoFeasible) {
		t.Skip("instance infeasible")
	}
	if err != nil {
		t.Fatal(err)
	}
	if bks.ExactSteiner {
		t.Error("expected KMB fallback for 20 destinations")
	}
	if err := net.Validate(bks.Embedding); err != nil {
		t.Errorf("invalid: %v", err)
	}
}

func TestBruteForceMatchesHandComputedOptimum(t *testing.T) {
	// Line 0-1-2-3 with unit edges; chain (f0); setup: node1=5, node2=0.1.
	// Hosting on 2 wins: cost = 2 (to node 2) + 0.1 + 1 = 3.1.
	g := graph.New(4)
	for v := 1; v < 4; v++ {
		g.MustAddEdge(v-1, v, 1)
	}
	net := nfv.NewNetwork(g, []nfv.VNF{{ID: 0, Name: "f0", Demand: 1}})
	if err := net.SetServer(1, 1); err != nil {
		t.Fatal(err)
	}
	if err := net.SetServer(2, 1); err != nil {
		t.Fatal(err)
	}
	if err := net.SetSetupCost(0, 1, 5); err != nil {
		t.Fatal(err)
	}
	if err := net.SetSetupCost(0, 2, 0.1); err != nil {
		t.Fatal(err)
	}
	task := nfv.Task{Source: 0, Destinations: []int{3}, Chain: nfv.SFC{0}}
	_, cost, err := BruteForce(net, task, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cost-3.1) > 1e-9 {
		t.Errorf("cost = %v, want 3.1", cost)
	}
}
