// Package exact provides two optimality references that stand in for
// the paper's CPLEX runs (see DESIGN.md, substitutions):
//
//   - BruteForce enumerates every per-destination host assignment with
//     canonical shortest-path routing on tiny instances, an independent
//     oracle used to cross-check the ILP path.
//   - BestKnown sweeps every candidate last-VNF host with the *exact*
//     SFC cost (MOD shortest path) and the *exact* Steiner tree cost
//     (all-roots Dreyfus-Wagner), refines the winner with the shared
//     stage-two optimizer, and returns the cheapest of that and the
//     two-stage heuristics. It upper-bounds the optimum, so approximation
//     ratios reported against it are conservative.
package exact

import (
	"errors"
	"fmt"
	"math"

	"sftree/internal/core"
	"sftree/internal/graph"
	"sftree/internal/mod"
	"sftree/internal/nfv"
	"sftree/internal/steiner"
)

var (
	// ErrTooLarge reports an instance beyond the brute-force budget.
	ErrTooLarge = errors.New("exact: instance too large for brute force")
)

// BruteForce enumerates every assignment of chain levels to servers,
// independently per destination, prices each with shortest-path
// routing and per-(stage,edge) deduplication, and returns the cheapest
// feasible embedding. The search space is |servers|^(k*|D|) and must
// not exceed maxAssignments.
func BruteForce(net *nfv.Network, task nfv.Task, maxAssignments int) (*nfv.Embedding, float64, error) {
	if err := task.Validate(net); err != nil {
		return nil, 0, err
	}
	if maxAssignments <= 0 {
		maxAssignments = 500000
	}
	servers := net.Servers()
	k := task.K()
	nd := len(task.Destinations)
	slots := k * nd
	space := 1.0
	for i := 0; i < slots; i++ {
		space *= float64(len(servers))
		if space > float64(maxAssignments) {
			return nil, 0, fmt.Errorf("%w: %d^%d assignments", ErrTooLarge, len(servers), slots)
		}
	}

	metric := net.Metric()
	assign := make([]int, slots) // index into servers, slot = d*k + (j-1)
	bestCost := graph.Inf
	var best *nfv.Embedding

	var recur func(slot int)
	recur = func(slot int) {
		if slot == slots {
			emb, ok := buildEmbedding(net, task, metric, assign, servers)
			if !ok {
				return
			}
			if err := net.Validate(emb); err != nil {
				return
			}
			if c := net.Cost(emb).Total; c < bestCost {
				bestCost = c
				best = emb
			}
			return
		}
		for si := range servers {
			assign[slot] = si
			recur(slot + 1)
		}
	}
	recur(0)
	if best == nil {
		return nil, 0, core.ErrNoFeasible
	}
	return best, bestCost, nil
}

// buildEmbedding materializes one brute-force assignment; it reports
// false when some required path does not exist or capacity is blown.
func buildEmbedding(net *nfv.Network, task nfv.Task, metric *graph.Metric, assign []int, servers []int) (*nfv.Embedding, bool) {
	k := task.K()
	e := &nfv.Embedding{Task: task.CloneTask()}
	seen := make(map[[2]int]bool)
	usage := make(map[int]float64)
	for d := range task.Destinations {
		prev := task.Source
		w := make(nfv.Walk, 0, k+1)
		for j := 1; j <= k; j++ {
			host := servers[assign[d*k+j-1]]
			f := task.Chain[j-1]
			key := [2]int{f, host}
			if !seen[key] && !net.IsDeployed(f, host) {
				seen[key] = true
				vnf, err := net.VNF(f)
				if err != nil {
					return nil, false
				}
				usage[host] += vnf.Demand
				if usage[host] > net.FreeCapacity(host)+1e-9 {
					return nil, false
				}
				e.NewInstances = append(e.NewInstances, nfv.Instance{VNF: f, Node: host, Level: j})
			}
			p := metric.Path(prev, host)
			if p == nil {
				return nil, false
			}
			w = append(w, nfv.Segment{Level: j - 1, Path: p})
			prev = host
		}
		p := metric.Path(prev, task.Destinations[d])
		if p == nil {
			return nil, false
		}
		w = append(w, nfv.Segment{Level: k, Path: p})
		e.Walks = append(e.Walks, w)
	}
	return e, true
}

// BestKnownResult is BestKnown's outcome.
type BestKnownResult struct {
	// Result is the winning solution.
	*core.Result
	// ExactSteiner reports whether the host sweep used exact
	// Dreyfus-Wagner Steiner costs (|D| within the DP limit) or fell
	// back to the KMB approximation.
	ExactSteiner bool
}

// BestKnown computes the repository's strongest reference solution,
// used where the paper plots CPLEX optima at PalmettoNet scale.
func BestKnown(net *nfv.Network, task nfv.Task) (*BestKnownResult, error) {
	if err := task.Validate(net); err != nil {
		return nil, err
	}
	best, err := core.Solve(net, task, core.Options{})
	if err != nil {
		return nil, err
	}
	if tm, err := core.Solve(net, task, core.Options{Steiner: core.SteinerTM}); err == nil && tm.FinalCost < best.FinalCost {
		best = tm
	}
	out := &BestKnownResult{Result: best}

	if len(task.Destinations) > steiner.MaxExactTerminals-1 {
		return out, nil
	}
	metric := net.Metric()
	steinerCosts, err := steiner.CostsWithExtraRoot(net.Graph(), metric, task.Destinations)
	if err != nil {
		return out, nil // fall back to the heuristic reference
	}
	out.ExactSteiner = true

	overlay, err := mod.Build(net, task.Source, task.Chain)
	if err != nil {
		return nil, err
	}
	sol := overlay.SolveSFC()
	bestHost, bestTotal := -1, graph.Inf
	var bestHosts []int
	for _, w := range net.Servers() {
		if sol.CostTo(w) == graph.Inf {
			continue
		}
		hosts := sol.HostsTo(w)
		if hosts == nil {
			continue
		}
		hosts, ok := core.RepairChainHosts(net, task, hosts)
		if !ok {
			continue
		}
		last := hosts[len(hosts)-1]
		total := overlay.ChainCost(hosts) + steinerCosts[last]
		if total < bestTotal {
			bestHost, bestTotal = last, total
			bestHosts = hosts
		}
	}
	if bestHost == -1 {
		return out, nil
	}
	tree, err := steiner.DreyfusWagner(net.Graph(), metric, append([]int{bestHost}, task.Destinations...))
	if err != nil {
		return out, nil
	}
	tails, err := core.TailsFromEdges(net, bestHost, task.Destinations, tree.Edges)
	if err != nil {
		return out, nil
	}
	refined, err := core.OptimizeEmbedding(net, task, bestHosts, tails, core.Options{})
	if err != nil {
		return out, nil
	}
	if refined.FinalCost < best.FinalCost-1e-12 {
		out.Result = refined
	}
	if math.IsInf(out.FinalCost, 1) {
		return nil, core.ErrNoFeasible
	}
	return out, nil
}
