// Package ilp is a branch-and-bound integer linear programming solver
// built on the internal/lp simplex. It supports mixed problems (any
// subset of variables marked integral), warm-started incumbents,
// node/time budgets, and reports both the best feasible solution and
// the proven lower bound, so callers can distinguish "optimal" from
// "best found within budget". It stands in for the CPLEX runs of the
// paper's evaluation (§V-C).
package ilp

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"sftree/internal/lp"
)

// Status reports the outcome of a branch-and-bound run.
type Status int

// Solve outcomes.
const (
	// Optimal: the incumbent is proven optimal (search exhausted).
	Optimal Status = iota + 1
	// Feasible: a feasible integral solution exists but the search hit
	// a node or time budget before proving optimality.
	Feasible
	// Infeasible: no integral solution exists.
	Infeasible
	// Unknown: budgets were exhausted before any integral solution was
	// found (the problem may or may not be feasible).
	Unknown
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Feasible:
		return "feasible"
	case Infeasible:
		return "infeasible"
	case Unknown:
		return "unknown"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Problem is a minimization ILP: the embedded LP plus integrality
// marks. Integer variables must be bounded above by explicit LP
// constraints (the sftilp builder emits x <= 1 rows for binaries).
type Problem struct {
	LP      lp.Problem
	Integer []bool
}

// Options bounds the search.
type Options struct {
	// MaxNodes caps explored nodes; 0 means 200000.
	MaxNodes int
	// TimeLimit caps wall time; 0 means no limit.
	TimeLimit time.Duration
	// Incumbent warm-starts the upper bound (objective of a known
	// feasible solution, e.g. from the two-stage heuristic). Use 0 with
	// HasIncumbent=false when unknown.
	Incumbent    float64
	HasIncumbent bool
	// IntTol is the integrality tolerance (default 1e-6).
	IntTol float64
}

func (o Options) maxNodes() int {
	if o.MaxNodes <= 0 {
		return 200000
	}
	return o.MaxNodes
}

func (o Options) intTol() float64 {
	if o.IntTol <= 0 {
		return 1e-6
	}
	return o.IntTol
}

// Result is the outcome of Solve.
type Result struct {
	Status    Status
	X         []float64 // best integral solution (nil unless Optimal/Feasible)
	Objective float64   // objective of X
	Bound     float64   // proven lower bound on the optimum
	Nodes     int       // nodes explored
}

// ErrBadProblem reports inconsistent problem dimensions.
var ErrBadProblem = errors.New("ilp: invalid problem")

// branch is one extra bound introduced along a branch-and-bound path.
type branch struct {
	v     int
	upper bool // true: x_v <= val; false: x_v >= val
	val   float64
}

type node struct {
	branches []branch
	bound    float64 // parent LP relaxation value (lower bound)
}

// Solve runs best-bound-first branch and bound.
func Solve(p *Problem, opts Options) (*Result, error) {
	n := p.LP.NumVars
	if len(p.Integer) != n {
		return nil, fmt.Errorf("%w: %d integrality marks for %d variables", ErrBadProblem, len(p.Integer), n)
	}
	deadline := time.Time{}
	if opts.TimeLimit > 0 {
		deadline = time.Now().Add(opts.TimeLimit)
	}
	tol := opts.intTol()

	incumbentObj := math.Inf(1)
	if opts.HasIncumbent {
		incumbentObj = opts.Incumbent
	}
	var incumbentX []float64

	// Best-bound-first via a sorted open list (small scale: a slice we
	// keep ordered is fine and keeps the code dependency-free).
	open := []node{{bound: math.Inf(-1)}}
	nodes := 0
	exhausted := true

	for len(open) > 0 {
		if nodes >= opts.maxNodes() || (!deadline.IsZero() && time.Now().After(deadline)) {
			exhausted = false
			break
		}
		// Pop the node with the smallest bound.
		sort.SliceStable(open, func(a, b int) bool { return open[a].bound < open[b].bound })
		cur := open[0]
		open = open[1:]
		if cur.bound >= incumbentObj-1e-9 {
			continue // cannot improve
		}
		nodes++

		sol, err := solveRelaxation(&p.LP, cur.branches)
		if err != nil {
			return nil, err
		}
		switch sol.Status {
		case lp.Infeasible:
			continue
		case lp.Unbounded:
			return nil, fmt.Errorf("%w: LP relaxation unbounded; bound integer variables explicitly", ErrBadProblem)
		case lp.IterLimit:
			// Treat as unexplorable; drop the node but remember we did
			// not exhaust the space.
			exhausted = false
			continue
		}
		if sol.Objective >= incumbentObj-1e-9 {
			continue
		}
		fracVar := mostFractional(sol.X, p.Integer, tol)
		if fracVar == -1 {
			// Integral: new incumbent.
			if sol.Objective < incumbentObj {
				incumbentObj = sol.Objective
				incumbentX = roundIntegral(sol.X, p.Integer)
			}
			continue
		}
		val := sol.X[fracVar]
		down := node{branches: appendBranch(cur.branches, branch{v: fracVar, upper: true, val: math.Floor(val)}), bound: sol.Objective}
		up := node{branches: appendBranch(cur.branches, branch{v: fracVar, upper: false, val: math.Ceil(val)}), bound: sol.Objective}
		open = append(open, down, up)
	}

	res := &Result{Nodes: nodes}
	// Lower bound: if exhausted, the incumbent is optimal; otherwise
	// the smallest bound among remaining nodes (or the incumbent).
	bound := incumbentObj
	for _, nd := range open {
		if nd.bound < bound {
			bound = nd.bound
		}
	}
	res.Bound = bound
	switch {
	case incumbentX != nil && exhausted && len(open) == 0:
		res.Status = Optimal
		res.X = incumbentX
		res.Objective = incumbentObj
		res.Bound = incumbentObj
	case incumbentX != nil:
		res.Status = Feasible
		res.X = incumbentX
		res.Objective = incumbentObj
	case exhausted && len(open) == 0:
		res.Status = Infeasible
	default:
		res.Status = Unknown
	}
	return res, nil
}

// solveRelaxation solves the LP with the branch bounds applied. As a
// presolve, variables pinned to a single value by the accumulated
// branch bounds (plus singleton upper-bound rows of the base problem,
// e.g. the x <= 1 rows of binaries) are substituted out instead of
// being expressed as rows: their objective contribution becomes a
// constant, their coefficients fold into right-hand sides, and their
// bound rows disappear. This keeps the dense tableau small on deep
// branch-and-bound paths.
func solveRelaxation(base *lp.Problem, branches []branch) (*lp.Solution, error) {
	// Accumulate bounds: implicit x >= 0 plus singleton <= rows plus
	// branch bounds.
	lo := make(map[int]float64)
	hi := make(map[int]float64)
	for _, c := range base.Constraints {
		if len(c.Coeffs) != 1 || c.Rel != lp.LE {
			continue
		}
		for v, coef := range c.Coeffs {
			if coef > 0 {
				if b := c.RHS / coef; b < upperOr(hi, v) {
					hi[v] = b
				}
			}
		}
	}
	for _, br := range branches {
		if br.upper {
			if br.val < upperOr(hi, br.v) {
				hi[br.v] = br.val
			}
		} else if br.val > lo[br.v] {
			lo[br.v] = br.val
		}
	}
	fixed := make(map[int]float64)
	for v, l := range lo {
		if h, ok := hi[v]; ok {
			if l > h+1e-9 {
				return &lp.Solution{Status: lp.Infeasible}, nil
			}
			if h-l < 1e-9 {
				fixed[v] = l
			}
		}
	}
	for v, h := range hi {
		if h < 1e-9 && lo[v] <= 1e-9 { // pinned to zero by the upper bound
			fixed[v] = 0
		}
	}

	prob := lp.Problem{
		NumVars:   base.NumVars,
		Objective: make([]float64, base.NumVars),
	}
	var constant float64
	for j, c := range base.Objective {
		if val, ok := fixed[j]; ok {
			constant += c * val
			continue // zero objective keeps the dead column out of pricing
		}
		prob.Objective[j] = c
	}
	appendRow := func(coeffs map[int]float64, rel lp.Rel, rhs float64) error {
		out := make(map[int]float64, len(coeffs))
		for v, coef := range coeffs {
			if val, ok := fixed[v]; ok {
				rhs -= coef * val
				continue
			}
			out[v] = coef
		}
		if len(out) == 0 {
			// Constant row: check consistency instead of emitting it.
			ok := true
			switch rel {
			case lp.LE:
				ok = rhs >= -1e-9
			case lp.GE:
				ok = rhs <= 1e-9
			case lp.EQ:
				ok = math.Abs(rhs) <= 1e-9
			}
			if !ok {
				return errInfeasibleRow
			}
			return nil
		}
		prob.Constraints = append(prob.Constraints, lp.Constraint{Coeffs: out, Rel: rel, RHS: rhs})
		return nil
	}
	for _, c := range base.Constraints {
		if err := appendRow(c.Coeffs, c.Rel, c.RHS); err != nil {
			return &lp.Solution{Status: lp.Infeasible}, nil
		}
	}
	for _, br := range branches {
		if _, ok := fixed[br.v]; ok {
			continue
		}
		rel := lp.GE
		if br.upper {
			rel = lp.LE
		}
		if err := appendRow(map[int]float64{br.v: 1}, rel, br.val); err != nil {
			return &lp.Solution{Status: lp.Infeasible}, nil
		}
	}

	sol, err := lp.Solve(&prob)
	if err != nil || sol.Status != lp.Optimal {
		return sol, err
	}
	for v, val := range fixed {
		sol.X[v] = val
	}
	sol.Objective += constant
	return sol, nil
}

var errInfeasibleRow = errors.New("ilp: constant row infeasible")

func upperOr(hi map[int]float64, v int) float64 {
	if h, ok := hi[v]; ok {
		return h
	}
	return math.Inf(1)
}

// mostFractional returns the integer variable furthest from
// integrality, or -1 when all are integral within tol.
func mostFractional(x []float64, integer []bool, tol float64) int {
	best, bestDist := -1, tol
	for j, isInt := range integer {
		if !isInt {
			continue
		}
		frac := x[j] - math.Floor(x[j])
		dist := math.Min(frac, 1-frac)
		if dist > bestDist {
			best, bestDist = j, dist
		}
	}
	return best
}

// roundIntegral snaps near-integral values exactly.
func roundIntegral(x []float64, integer []bool) []float64 {
	out := make([]float64, len(x))
	copy(out, x)
	for j, isInt := range integer {
		if isInt {
			out[j] = math.Round(out[j])
		}
	}
	return out
}

func appendBranch(bs []branch, b branch) []branch {
	out := make([]branch, len(bs)+1)
	copy(out, bs)
	out[len(bs)] = b
	return out
}
