package ilp

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"sftree/internal/lp"
)

// binaryProblem builds min c.x over binary x with the given <=
// knapsack-style rows; every variable gets an x<=1 bound row.
func binaryProblem(obj []float64) *Problem {
	n := len(obj)
	p := &Problem{
		LP:      lp.Problem{NumVars: n, Objective: obj},
		Integer: make([]bool, n),
	}
	for j := 0; j < n; j++ {
		p.Integer[j] = true
		p.LP.AddConstraint(map[int]float64{j: 1}, lp.LE, 1)
	}
	return p
}

func TestKnapsack(t *testing.T) {
	// max 10a + 13b + 7c s.t. 3a + 4b + 2c <= 6, binary.
	// Optimum: a=0 b=c=1: 4+2=6, value 20; vs a+c: 5<=6 value 17; a+b: 7>6.
	p := binaryProblem([]float64{-10, -13, -7})
	p.LP.AddConstraint(map[int]float64{0: 3, 1: 4, 2: 2}, lp.LE, 6)
	res, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	if math.Abs(res.Objective+20) > 1e-6 {
		t.Errorf("objective = %v, want -20", res.Objective)
	}
	want := []float64{0, 1, 1}
	for j, w := range want {
		if math.Abs(res.X[j]-w) > 1e-6 {
			t.Errorf("x = %v, want %v", res.X, want)
			break
		}
	}
}

func TestIntegralityGapForced(t *testing.T) {
	// min -x - y s.t. 2x + 2y <= 3, binary: LP optimum 1.5 fractional,
	// ILP optimum -1 (one variable at 1).
	p := binaryProblem([]float64{-1, -1})
	p.LP.AddConstraint(map[int]float64{0: 2, 1: 2}, lp.LE, 3)
	res, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	if math.Abs(res.Objective+1) > 1e-6 {
		t.Errorf("objective = %v, want -1", res.Objective)
	}
	if math.Abs(res.Bound-res.Objective) > 1e-6 {
		t.Errorf("bound %v != objective %v at optimality", res.Bound, res.Objective)
	}
}

func TestInfeasibleILP(t *testing.T) {
	// Binary x with x >= 0.4 and x <= 0.6: LP feasible, ILP not.
	p := binaryProblem([]float64{1})
	p.LP.AddConstraint(map[int]float64{0: 1}, lp.GE, 0.4)
	p.LP.AddConstraint(map[int]float64{0: 1}, lp.LE, 0.6)
	res, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", res.Status)
	}
}

func TestMixedIntegerProblem(t *testing.T) {
	// min y - x, x integer in [0, 2.5] (so x <= 2), y continuous >= 1.3.
	p := &Problem{
		LP:      lp.Problem{NumVars: 2, Objective: []float64{-1, 1}},
		Integer: []bool{true, false},
	}
	p.LP.AddConstraint(map[int]float64{0: 1}, lp.LE, 2.5)
	p.LP.AddConstraint(map[int]float64{1: 1}, lp.GE, 1.3)
	p.LP.AddConstraint(map[int]float64{1: 1}, lp.LE, 10)
	res, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	if math.Abs(res.X[0]-2) > 1e-6 || math.Abs(res.X[1]-1.3) > 1e-6 {
		t.Errorf("x = %v, want (2, 1.3)", res.X)
	}
}

func TestWarmStartIncumbentPrunes(t *testing.T) {
	// A known optimal incumbent lets the solver prove optimality while
	// exploring few nodes; a wrong (too small) incumbent would suppress
	// the true optimum, so we also check correctness with the true one.
	p := binaryProblem([]float64{-10, -13, -7})
	p.LP.AddConstraint(map[int]float64{0: 3, 1: 4, 2: 2}, lp.LE, 6)
	res, err := Solve(p, Options{Incumbent: -20, HasIncumbent: true})
	if err != nil {
		t.Fatal(err)
	}
	// With incumbent exactly at the optimum, B&B proves the bound; it
	// may or may not rediscover the solution vector.
	if res.Bound < -20-1e-6 {
		t.Errorf("bound = %v, want >= -20", res.Bound)
	}
	if res.Status == Feasible || res.Status == Optimal {
		if res.Objective < -20-1e-6 {
			t.Errorf("objective = %v beat the optimum", res.Objective)
		}
	}
}

func TestNodeBudgetReturnsFeasible(t *testing.T) {
	// A larger knapsack; with a tiny node budget the solver should
	// still report something sensible (Feasible or Unknown, never a
	// wrong Optimal claim with a bad bound).
	rng := rand.New(rand.NewSource(5))
	n := 14
	obj := make([]float64, n)
	weights := map[int]float64{}
	for j := 0; j < n; j++ {
		obj[j] = -(1 + rng.Float64()*9)
		weights[j] = 1 + rng.Float64()*9
	}
	p := binaryProblem(obj)
	p.LP.AddConstraint(weights, lp.LE, 20)
	res, err := Solve(p, Options{MaxNodes: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status == Optimal {
		// Allowed only if it truly exhausted within 5 nodes; verify the
		// bound matches.
		if math.Abs(res.Bound-res.Objective) > 1e-6 {
			t.Errorf("claimed optimal with gap: bound %v obj %v", res.Bound, res.Objective)
		}
	}
	if res.Nodes > 5 {
		t.Errorf("nodes = %d exceeds budget", res.Nodes)
	}
}

func TestTimeLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 16
	obj := make([]float64, n)
	weights := map[int]float64{}
	for j := 0; j < n; j++ {
		obj[j] = -(1 + rng.Float64()*9)
		weights[j] = 1 + rng.Float64()*9
	}
	p := binaryProblem(obj)
	p.LP.AddConstraint(weights, lp.LE, 25)
	start := time.Now()
	if _, err := Solve(p, Options{TimeLimit: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 5*time.Second {
		t.Error("time limit had no effect")
	}
}

func TestBadProblem(t *testing.T) {
	p := &Problem{LP: lp.Problem{NumVars: 2, Objective: []float64{1, 1}}, Integer: []bool{true}}
	if _, err := Solve(p, Options{}); !errors.Is(err, ErrBadProblem) {
		t.Errorf("got %v, want ErrBadProblem", err)
	}
}

// TestAgainstBruteForce cross-checks branch and bound on random binary
// problems against full enumeration.
func TestAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for trial := 0; trial < 25; trial++ {
		n := 3 + rng.Intn(8) // up to 10 binaries
		obj := make([]float64, n)
		for j := range obj {
			obj[j] = rng.Float64()*10 - 5
		}
		p := binaryProblem(obj)
		// A couple of random <= and >= rows.
		for c := 0; c < 2; c++ {
			coeffs := map[int]float64{}
			var sum float64
			for j := 0; j < n; j++ {
				coeffs[j] = rng.Float64() * 3
				sum += coeffs[j]
			}
			p.LP.AddConstraint(coeffs, lp.LE, sum*(0.3+rng.Float64()*0.5))
		}
		res, err := Solve(p, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}

		// Brute force.
		best := math.Inf(1)
		feasibleExists := false
		for mask := 0; mask < 1<<n; mask++ {
			ok := true
			for _, c := range p.LP.Constraints {
				var lhs float64
				for j, v := range c.Coeffs {
					if mask&(1<<j) != 0 {
						lhs += v
					}
				}
				switch c.Rel {
				case lp.LE:
					ok = ok && lhs <= c.RHS+1e-9
				case lp.GE:
					ok = ok && lhs >= c.RHS-1e-9
				case lp.EQ:
					ok = ok && math.Abs(lhs-c.RHS) < 1e-9
				}
			}
			if !ok {
				continue
			}
			feasibleExists = true
			var v float64
			for j := 0; j < n; j++ {
				if mask&(1<<j) != 0 {
					v += obj[j]
				}
			}
			if v < best {
				best = v
			}
		}
		if !feasibleExists {
			if res.Status != Infeasible {
				t.Fatalf("trial %d: brute force infeasible, solver said %v", trial, res.Status)
			}
			continue
		}
		if res.Status != Optimal {
			t.Fatalf("trial %d: status %v, want optimal", trial, res.Status)
		}
		if math.Abs(res.Objective-best) > 1e-5 {
			t.Fatalf("trial %d: B&B %v vs brute force %v", trial, res.Objective, best)
		}
	}
}
