package queue

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"sftree/internal/core"
	"sftree/internal/dynamic"
	"sftree/internal/mod"
	"sftree/internal/netgen"
	"sftree/internal/nfv"
	"sftree/internal/obs"
)

// testWorld builds a small network, a manager on it, and a task
// generator whose chains repeat so batches form signature groups.
func testWorld(t *testing.T, seed int64) (*dynamic.Manager, func() nfv.Task) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	net, err := netgen.Generate(netgen.PaperConfig(30, 2), rng)
	if err != nil {
		t.Fatal(err)
	}
	m := dynamic.NewManager(net, core.Options{})
	var pool []nfv.Task
	for i := 0; i < 4; i++ {
		task, err := netgen.GenerateTask(net, rng, 2+i%3, 2+i%2)
		if err != nil {
			t.Fatal(err)
		}
		pool = append(pool, task)
	}
	i := 0
	return m, func() nfv.Task {
		task := pool[i%len(pool)]
		i++
		return task
	}
}

func closeQueue(t *testing.T, q *Queue) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := q.Close(ctx); err != nil {
		t.Errorf("Close: %v", err)
	}
}

func TestQueueAdmits(t *testing.T) {
	m, next := testWorld(t, 3)
	reg := obs.NewRegistry()
	q := New(Config{
		Depth:       16,
		BatchWindow: 5 * time.Millisecond,
		Manager:     func() *dynamic.Manager { return m },
	}).Instrument(reg)
	defer closeQueue(t, q)

	const n = 8
	tickets := make([]*Ticket, n)
	for i := range tickets {
		tk, err := q.Enqueue(context.Background(), next(), time.Time{})
		if err != nil {
			t.Fatalf("enqueue %d: %v", i, err)
		}
		tickets[i] = tk
	}
	orders := make(map[int]bool)
	for i, tk := range tickets {
		sess, err := tk.Wait(context.Background())
		if err != nil {
			t.Fatalf("ticket %d: %v", i, err)
		}
		if sess == nil {
			t.Fatalf("ticket %d: nil session without error", i)
		}
		if tk.WaitDuration() < 0 || tk.SolveDuration() <= 0 {
			t.Errorf("ticket %d: wait %v solve %v", i, tk.WaitDuration(), tk.SolveDuration())
		}
		if o := tk.Order(); o < 0 || orders[o] {
			t.Errorf("ticket %d: dispatch order %d invalid or duplicated", i, o)
		} else {
			orders[tk.Order()] = true
		}
	}
	st := q.Stats()
	if st.Enqueued != n || st.Admitted != n || st.Rejected != 0 || st.Expired != 0 {
		t.Errorf("stats = %+v", st)
	}
	if st.Batches == 0 {
		t.Error("no batch recorded")
	}
	if m.Active() != n {
		t.Errorf("manager holds %d sessions, want %d", m.Active(), n)
	}
	if got := reg.Counter("queue_admitted_total").Value(); got != n {
		t.Errorf("queue_admitted_total = %d, want %d", got, n)
	}
	if reg.Counter("queue_batches_total").Value() == 0 {
		t.Error("queue_batches_total stayed zero")
	}
}

func TestQueueOverflow(t *testing.T) {
	m, next := testWorld(t, 5)
	q := New(Config{
		Depth:       2,
		BatchWindow: 300 * time.Millisecond,
		Manager:     func() *dynamic.Manager { return m },
	})
	defer closeQueue(t, q)

	var kept []*Ticket
	overflowed := false
	for i := 0; i < 6; i++ {
		tk, err := q.Enqueue(context.Background(), next(), time.Time{})
		if errors.Is(err, ErrQueueFull) {
			overflowed = true
			continue
		}
		if err != nil {
			t.Fatalf("enqueue %d: %v", i, err)
		}
		kept = append(kept, tk)
	}
	if !overflowed {
		t.Fatal("depth-2 queue accepted 6 enqueues without overflow")
	}
	if q.Stats().Overflow == 0 {
		t.Error("overflow not counted")
	}
	for _, tk := range kept {
		if _, err := tk.Wait(context.Background()); err != nil {
			t.Errorf("kept ticket: %v", err)
		}
	}
}

func TestQueueExpired(t *testing.T) {
	m, next := testWorld(t, 7)
	q := New(Config{
		Depth:       8,
		BatchWindow: 100 * time.Millisecond,
		Manager:     func() *dynamic.Manager { return m },
	})
	defer closeQueue(t, q)

	// Already past at enqueue: rejected synchronously.
	if _, err := q.Enqueue(context.Background(), next(), time.Now().Add(-time.Second)); !errors.Is(err, ErrExpired) {
		t.Fatalf("past deadline: err = %v, want ErrExpired", err)
	}
	// Expires while queued: the batch window outlives the deadline, so
	// the dispatcher must drop it before solving.
	tk, err := q.Enqueue(context.Background(), next(), time.Now().Add(5*time.Millisecond))
	if err != nil {
		t.Fatalf("enqueue: %v", err)
	}
	if _, err := tk.Wait(context.Background()); !errors.Is(err, ErrExpired) {
		t.Fatalf("queued past deadline: err = %v, want ErrExpired", err)
	}
	if tk.Order() != -1 {
		t.Errorf("expired ticket got dispatch order %d, want -1 (never solved)", tk.Order())
	}
	if got := q.Stats().Expired; got != 2 {
		t.Errorf("stats.Expired = %d, want 2", got)
	}
}

func TestQueueClosed(t *testing.T) {
	m, next := testWorld(t, 11)
	q := New(Config{
		Depth:       8,
		BatchWindow: 20 * time.Millisecond,
		Manager:     func() *dynamic.Manager { return m },
	})

	// Accepted work survives Close: the drain solves it.
	tk, err := q.Enqueue(context.Background(), next(), time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := q.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := tk.Wait(context.Background()); err != nil {
		t.Fatalf("ticket enqueued before Close: %v", err)
	}
	if _, err := q.Enqueue(context.Background(), next(), time.Time{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("enqueue after Close: err = %v, want ErrClosed", err)
	}
}

func TestQueueCloseBudget(t *testing.T) {
	m, next := testWorld(t, 13)
	q := New(Config{
		Depth:       8,
		BatchWindow: 2 * time.Second, // dispatcher lingers past the drain budget
		Manager:     func() *dynamic.Manager { return m },
	})
	tk, err := q.Enqueue(context.Background(), next(), time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := q.Close(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Close with exhausted budget: err = %v", err)
	}
	if _, err := tk.Wait(context.Background()); !errors.Is(err, ErrClosed) {
		t.Fatalf("abandoned ticket: err = %v, want ErrClosed", err)
	}
}

func TestQueueUnavailable(t *testing.T) {
	q := New(Config{
		Depth:   4,
		Manager: func() *dynamic.Manager { return nil },
	})
	defer closeQueue(t, q)
	task := nfv.Task{Source: 0, Destinations: []int{1}, Chain: nfv.SFC{0}}
	tk, err := q.Enqueue(context.Background(), task, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tk.Wait(context.Background()); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("nil manager: err = %v, want ErrUnavailable", err)
	}
}

// TestPlan pins the scheduler's pure ordering function: expired out
// first, earliest deadline first with arrival-order tie-break, no
// deadline last, and signature buckets in first-occurrence order.
func TestPlan(t *testing.T) {
	now := time.Unix(1000, 0)
	mk := func(seq uint64, chain nfv.SFC, deadline time.Time) *Ticket {
		return &Ticket{task: nfv.Task{Chain: chain}, seq: seq, deadline: deadline, done: make(chan struct{}), order: -1}
	}
	a, b := nfv.SFC{1, 2}, nfv.SFC{3}
	tA1 := mk(1, a, time.Time{})             // no deadline
	tB1 := mk(2, b, now.Add(time.Second))    // earliest live deadline
	tA2 := mk(3, a, now.Add(2*time.Second))  // later deadline
	tDead := mk(4, a, now.Add(-time.Second)) // already expired
	tB2 := mk(5, b, now.Add(time.Second))    // same deadline as tB1, later arrival
	groups, expired := plan([]*Ticket{tA1, tB1, tA2, tDead, tB2}, now)

	if len(expired) != 1 || expired[0] != tDead {
		t.Fatalf("expired = %v", expired)
	}
	// EDF order: tB1, tB2 (tie → seq), tA2, tA1 (no deadline last).
	// First-occurrence signature grouping: sig(b) first, then sig(a).
	if len(groups) != 2 {
		t.Fatalf("got %d groups, want 2", len(groups))
	}
	if groups[0].sig != mod.ChainSig(b) || groups[1].sig != mod.ChainSig(a) {
		t.Fatalf("group order: %q, %q", groups[0].sig, groups[1].sig)
	}
	if groups[0].tickets[0] != tB1 || groups[0].tickets[1] != tB2 {
		t.Fatal("deadline tie must break by arrival order")
	}
	if groups[1].tickets[0] != tA2 || groups[1].tickets[1] != tA1 {
		t.Fatal("no-deadline tickets must sort after deadlined ones")
	}
}
