// Package queue is the bounded async admission pipeline in front of
// dynamic.Manager: requests enqueue with a deadline and a dispatcher
// drains them in batches, grouping tasks that share a chain signature
// (the same varint key internal/mod memoizes scaffolds under) so a
// signature group rides one shared solve context — one snapshot clone,
// one metric warm-up, one scaffold build — while every task still
// commits individually through the optimistic two-phase path.
//
// Scheduling is earliest-deadline-first: each drained batch drops
// already-expired tickets before any solve runs (they answer
// Retry-After upstream), sorts the rest by deadline (no deadline sorts
// last) with the arrival sequence as tie-break, and dispatches
// signature groups in that order. On one worker the result is
// bit-identical to serialized AdmitCtx calls in the queue's dispatch
// order — the property the equivalence battery in this package pins.
//
// The never-lose-a-task contract: every ticket accepted by Enqueue is
// finished exactly once, in exactly one of {admitted, rejected,
// expired, closed, unavailable}. Tickets are owned by exactly one
// place at any time — the pending slice, a draining batch, or Close's
// abandonment path — and only finish closes the ticket's done channel.
package queue

import (
	"context"
	"errors"
	"sort"
	"sync"
	"time"

	"sftree/internal/dynamic"
	"sftree/internal/mod"
	"sftree/internal/nfv"
	"sftree/internal/obs"
)

var (
	// ErrQueueFull rejects an enqueue when the bounded depth is
	// exhausted; the caller should back off and retry.
	ErrQueueFull = errors.New("queue: full")
	// ErrExpired rejects a task whose deadline passed before any solve
	// ran for it.
	ErrExpired = errors.New("queue: deadline expired before dispatch")
	// ErrClosed rejects enqueues after Close, and fails tickets still
	// queued when the drain budget runs out.
	ErrClosed = errors.New("queue: closed")
	// ErrUnavailable fails tickets dispatched while no manager is
	// installed (stateless server, mid-swap restart window).
	ErrUnavailable = errors.New("queue: no session manager")
)

// Config parameterizes a Queue. The zero value of every field has a
// usable default.
type Config struct {
	// Depth bounds the number of queued tickets; enqueues beyond it
	// fail fast with ErrQueueFull. Default 256.
	Depth int
	// BatchWindow is how long the dispatcher lingers after waking so a
	// burst can pool into one batch. Zero dispatches immediately.
	BatchWindow time.Duration
	// Workers bounds how many signature groups solve concurrently
	// within a batch. Default 1 — the only setting with the
	// bit-identity guarantee.
	Workers int
	// Manager supplies the admission manager per batch; indirection
	// keeps the queue correct across the restart harness's hot swap.
	// A nil return fails the batch's tickets with ErrUnavailable.
	Manager func() *dynamic.Manager
	// Now is the clock; tests and the fuzz harness pin it. Default
	// time.Now.
	Now func() time.Time
}

// Ticket is one queued admission. The caller blocks on Wait; the
// outcome fields are immutable once the done channel closes.
type Ticket struct {
	task     nfv.Task
	ctx      context.Context
	deadline time.Time
	enqueued time.Time
	seq      uint64

	done      chan struct{}
	sess      *dynamic.Session
	err       error
	wait      time.Duration // enqueue → this task's solve slot
	solve     time.Duration // this task's own solve+commit time
	order     int           // global dispatch index (-1 until solved)
	coalesced bool
}

// Wait blocks until the ticket resolves or the context ends. A context
// error abandons only the wait: the admission itself still runs to
// completion inside the dispatcher.
func (t *Ticket) Wait(ctx context.Context) (*dynamic.Session, error) {
	select {
	case <-t.done:
		return t.sess, t.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// WaitDuration is the time the task spent queued before its solve slot
// started; valid after Wait returns without a context error.
func (t *Ticket) WaitDuration() time.Duration { return t.wait }

// SolveDuration is the task's own solve-and-commit time; zero for
// tickets that never reached a solver (expired, closed, unavailable).
func (t *Ticket) SolveDuration() time.Duration { return t.solve }

// Order is the global dispatch index the scheduler assigned, the
// serialization order the equivalence battery replays; -1 for tickets
// that never reached a solver.
func (t *Ticket) Order() int { return t.order }

// Coalesced reports whether the admission committed off a snapshot
// inherited from an earlier task in its batch.
func (t *Ticket) Coalesced() bool { return t.coalesced }

// Stats is a point-in-time queue snapshot.
type Stats struct {
	Depth     int  `json:"depth"`
	Capacity  int  `json:"capacity"`
	Saturated bool `json:"saturated"`

	Enqueued  uint64 `json:"enqueued"`
	Admitted  uint64 `json:"admitted"`
	Rejected  uint64 `json:"rejected"`
	Expired   uint64 `json:"expired"`
	Overflow  uint64 `json:"overflow"`
	Batches   uint64 `json:"batches"`
	Coalesced uint64 `json:"coalesced"`
}

// queueMetrics are the optional registry handles (see Instrument).
type queueMetrics struct {
	enqueued, admitted, rejected *obs.Counter
	expired, overflow            *obs.Counter
	batches, coalesced           *obs.Counter
	waitMS                       *obs.Histogram
	batchSize                    *obs.Histogram
}

// Queue is the bounded admission pipeline. All methods are safe for
// concurrent use.
type Queue struct {
	cfg  Config
	mu   sync.Mutex
	cond *sync.Cond
	// pending holds tickets accepted but not yet taken by the
	// dispatcher; its length is the queue depth.
	pending []*Ticket
	closed  bool
	seq     uint64
	next    int // next global dispatch index

	enqueued, admitted, rejected uint64
	expired, overflow, batches   uint64
	coalesced                    uint64

	met  *queueMetrics
	done chan struct{} // dispatcher exited
}

// New starts a queue and its dispatcher goroutine. Stop it with Close.
func New(cfg Config) *Queue {
	if cfg.Depth <= 0 {
		cfg.Depth = 256
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	q := &Queue{cfg: cfg, done: make(chan struct{})}
	q.cond = sync.NewCond(&q.mu)
	go q.dispatch()
	return q
}

// Instrument wires the queue into the registry: queue_depth and
// queue_saturated gauges, the queue_wait_ms histogram (enqueue to
// solve slot), the queue_batch_size distribution, and the
// queue_{enqueued,admitted,rejected,expired,overflow,batches,
// coalesced_solves}_total counters. Returns the queue for chaining.
func (q *Queue) Instrument(reg *obs.Registry) *Queue {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.met = &queueMetrics{
		enqueued:  reg.Counter("queue_enqueued_total"),
		admitted:  reg.Counter("queue_admitted_total"),
		rejected:  reg.Counter("queue_rejected_total"),
		expired:   reg.Counter("queue_expired_total"),
		overflow:  reg.Counter("queue_overflow_total"),
		batches:   reg.Counter("queue_batches_total"),
		coalesced: reg.Counter("queue_coalesced_solves_total"),
		waitMS:    reg.Histogram("queue_wait_ms", obs.LatencyBuckets),
		batchSize: reg.Histogram("queue_batch_size", nil),
	}
	reg.GaugeFunc("queue_depth", func() float64 {
		q.mu.Lock()
		defer q.mu.Unlock()
		return float64(len(q.pending))
	})
	reg.GaugeFunc("queue_saturated", func() float64 {
		if q.Stats().Saturated {
			return 1
		}
		return 0
	})
	return q
}

// Enqueue accepts a task for batched admission. ctx is the per-task
// base context (request ID, caller cancellation) threaded into the
// solve; deadline, when non-zero, bounds the solve and expires the
// ticket if no solve slot opens in time. Fails fast with ErrQueueFull,
// ErrClosed, or ErrExpired (deadline already past).
func (q *Queue) Enqueue(ctx context.Context, task nfv.Task, deadline time.Time) (*Ticket, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	now := q.cfg.Now()
	if !deadline.IsZero() && !now.Before(deadline) {
		q.mu.Lock()
		q.expired++
		met := q.met
		q.mu.Unlock()
		if met != nil {
			met.expired.Inc()
		}
		return nil, ErrExpired
	}
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return nil, ErrClosed
	}
	if len(q.pending) >= q.cfg.Depth {
		q.overflow++
		met := q.met
		q.mu.Unlock()
		if met != nil {
			met.overflow.Inc()
		}
		return nil, ErrQueueFull
	}
	q.seq++
	t := &Ticket{
		task:     task,
		ctx:      ctx,
		deadline: deadline,
		enqueued: now,
		seq:      q.seq,
		done:     make(chan struct{}),
		order:    -1,
	}
	q.pending = append(q.pending, t)
	q.enqueued++
	met := q.met
	q.cond.Signal()
	q.mu.Unlock()
	if met != nil {
		met.enqueued.Inc()
	}
	return t, nil
}

// Close stops intake and drains: the dispatcher keeps solving already
// accepted work until the pending list empties or ctx expires, at
// which point still-queued tickets fail with ErrClosed. Returns ctx's
// error when the budget ran out, nil on a clean drain. Idempotent.
func (q *Queue) Close(ctx context.Context) error {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
	select {
	case <-q.done:
		return nil
	case <-ctx.Done():
		// Budget exhausted: abandon whatever the dispatcher has not
		// taken. Tickets already inside a batch still resolve.
		q.mu.Lock()
		rest := q.pending
		q.pending = nil
		q.cond.Broadcast()
		q.mu.Unlock()
		for _, t := range rest {
			t.err = ErrClosed
			close(t.done)
		}
		return ctx.Err()
	}
}

// Stats snapshots the queue counters.
func (q *Queue) Stats() Stats {
	q.mu.Lock()
	defer q.mu.Unlock()
	return Stats{
		Depth:     len(q.pending),
		Capacity:  q.cfg.Depth,
		Saturated: len(q.pending) >= q.cfg.Depth,
		Enqueued:  q.enqueued,
		Admitted:  q.admitted,
		Rejected:  q.rejected,
		Expired:   q.expired,
		Overflow:  q.overflow,
		Batches:   q.batches,
		Coalesced: q.coalesced,
	}
}

// dispatch is the scheduler loop: wait for work, linger one batch
// window so a burst pools, take everything pending, run the batch.
func (q *Queue) dispatch() {
	defer close(q.done)
	for {
		q.mu.Lock()
		for len(q.pending) == 0 && !q.closed {
			q.cond.Wait()
		}
		if len(q.pending) == 0 {
			// Closed and drained.
			q.mu.Unlock()
			return
		}
		q.mu.Unlock()

		if w := q.cfg.BatchWindow; w > 0 {
			time.Sleep(w)
		}

		q.mu.Lock()
		batch := q.pending
		q.pending = nil
		q.mu.Unlock()
		if len(batch) > 0 {
			q.runBatch(batch)
		}
	}
}

// group is one chain-signature bucket in EDF order.
type group struct {
	sig     string
	tickets []*Ticket
}

// plan orders a drained batch: expired tickets out first (no solve is
// wasted on them), the rest earliest-deadline-first with arrival order
// as tie-break, then bucketed by chain signature in first-occurrence
// order. Pure function of (batch, now) — the fuzz harness replays it.
func plan(batch []*Ticket, now time.Time) (groups []group, expired []*Ticket) {
	live := batch[:0:0]
	for _, t := range batch {
		if !t.deadline.IsZero() && !now.Before(t.deadline) {
			expired = append(expired, t)
			continue
		}
		live = append(live, t)
	}
	sort.SliceStable(live, func(i, j int) bool {
		di, dj := live[i].deadline, live[j].deadline
		switch {
		case di.IsZero() && dj.IsZero():
			return live[i].seq < live[j].seq
		case di.IsZero():
			return false
		case dj.IsZero():
			return true
		case di.Equal(dj):
			return live[i].seq < live[j].seq
		default:
			return di.Before(dj)
		}
	})
	index := make(map[string]int)
	for _, t := range live {
		sig := mod.ChainSig(t.task.Chain)
		gi, ok := index[sig]
		if !ok {
			gi = len(groups)
			index[sig] = gi
			groups = append(groups, group{sig: sig})
		}
		groups[gi].tickets = append(groups[gi].tickets, t)
	}
	return groups, expired
}

// runBatch resolves one drained batch end to end.
func (q *Queue) runBatch(batch []*Ticket) {
	now := q.cfg.Now()
	groups, expired := plan(batch, now)

	q.mu.Lock()
	q.batches++
	q.expired += uint64(len(expired))
	met := q.met
	q.mu.Unlock()
	if met != nil {
		met.batches.Inc()
		met.batchSize.Observe(float64(len(batch)))
		for range expired {
			met.expired.Inc()
		}
	}
	for _, t := range expired {
		t.err = ErrExpired
		close(t.done)
	}
	if len(groups) == 0 {
		return
	}

	mgr := q.cfg.Manager()
	if mgr == nil {
		for _, g := range groups {
			for _, t := range g.tickets {
				t.err = ErrUnavailable
				close(t.done)
			}
		}
		return
	}

	// Assign the global serialization order up front: groups in EDF
	// first-occurrence order, tickets in EDF order within each. With
	// one worker the solves run in exactly this order.
	q.mu.Lock()
	for _, g := range groups {
		for _, t := range g.tickets {
			t.order = q.next
			q.next++
		}
	}
	q.mu.Unlock()

	if q.cfg.Workers <= 1 || len(groups) == 1 {
		for _, g := range groups {
			q.runGroup(mgr, g)
		}
		return
	}
	// Multi-worker: signature groups solve concurrently, bit-identity
	// is traded for parallelism. Order within a group still holds.
	sem := make(chan struct{}, q.cfg.Workers)
	var wg sync.WaitGroup
	for _, g := range groups {
		wg.Add(1)
		sem <- struct{}{}
		go func(g group) {
			defer wg.Done()
			q.runGroup(mgr, g)
			<-sem
		}(g)
	}
	wg.Wait()
}

// runGroup drives one signature group through a shared AdmitBatch
// call: consecutive commits that leave the deployment epoch unmoved
// share a single snapshot clone and scaffold warm-up.
func (q *Queue) runGroup(mgr *dynamic.Manager, g group) {
	start := q.cfg.Now()
	bts := make([]dynamic.BatchTask, len(g.tickets))
	for i, t := range g.tickets {
		bts[i] = dynamic.BatchTask{Task: t.task, Deadline: t.deadline, Ctx: t.ctx}
	}
	outs := mgr.AdmitBatch(context.Background(), bts)

	var admitted, rejected, coalesced uint64
	cum := time.Duration(0)
	for i, t := range g.tickets {
		out := outs[i]
		t.sess, t.err = out.Sess, out.Err
		t.coalesced = out.Coalesced
		t.solve = out.Duration
		t.wait = start.Add(cum).Sub(t.enqueued)
		cum += out.Duration
		if out.Err != nil {
			rejected++
		} else {
			admitted++
			if out.Coalesced {
				coalesced++
			}
		}
	}

	q.mu.Lock()
	q.admitted += admitted
	q.rejected += rejected
	q.coalesced += coalesced
	met := q.met
	q.mu.Unlock()
	if met != nil {
		for _, t := range g.tickets {
			met.waitMS.ObserveDuration(t.wait)
		}
		met.admitted.Add(int64(admitted))
		met.rejected.Add(int64(rejected))
		met.coalesced.Add(int64(coalesced))
	}
	for _, t := range g.tickets {
		close(t.done)
	}
}
