package queue

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"sftree/internal/core"
	"sftree/internal/dynamic"
	"sftree/internal/netgen"
	"sftree/internal/nfv"
)

// fuzzWorld is built once: a pristine network plus a task pool with
// repeating signatures. Each fuzz execution runs against a fresh
// clone, so executions are independent and deterministic.
type fuzzWorld struct {
	net  *nfv.Network
	pool []nfv.Task
}

var fuzzBase = func() fuzzWorld {
	rng := rand.New(rand.NewSource(17))
	net, err := netgen.Generate(netgen.PaperConfig(20, 2), rng)
	if err != nil {
		panic(err)
	}
	pool := make([]nfv.Task, 3)
	for i := range pool {
		task, err := netgen.GenerateTask(net, rng, 2+i%2, 1+i%2)
		if err != nil {
			panic(err)
		}
		pool[i] = task
	}
	return fuzzWorld{net: net, pool: pool}
}()

// FuzzQueueSchedule holds the never-lose-a-task contract over
// arbitrary arrival/deadline/signature/batch-window interleavings:
// every enqueued task terminates in exactly one of {admitted,
// rejected, expired}, session IDs are never double-committed, and the
// manager's ledger survives a refcount audit afterwards.
//
// Input encoding: byte 0 picks the batch window, byte 1 the queue
// depth; each following byte pair is one enqueue — the first byte
// picks the task (signature), the second its deadline class (none,
// already-past, tight, generous).
func FuzzQueueSchedule(f *testing.F) {
	f.Add([]byte{0, 4, 1, 0, 2, 3, 0, 5})
	f.Add([]byte{2, 2, 0, 0, 0, 0, 1, 4, 2, 4, 0, 3})
	f.Add([]byte{5, 8, 0, 7, 1, 3, 2, 0, 1, 5, 0, 4, 2, 6})
	f.Add([]byte{1, 1, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 {
			t.Skip()
		}
		baseNet, pool := fuzzBase.net, fuzzBase.pool
		windows := []time.Duration{0, time.Millisecond, 5 * time.Millisecond, 20 * time.Millisecond}
		window := windows[int(data[0])%len(windows)]
		depth := 1 + int(data[1])%16
		ops := data[2:]
		if len(ops) > 48 {
			ops = ops[:48]
		}

		m := dynamic.NewManager(baseNet.Clone(), core.Options{})
		q := New(Config{
			Depth:       depth,
			BatchWindow: window,
			Manager:     func() *dynamic.Manager { return m },
		})

		now := time.Now()
		var tickets []*Ticket
		var overflow, preExpired int
		for i := 0; i+1 < len(ops); i += 2 {
			task := pool[int(ops[i])%len(pool)]
			var deadline time.Time
			switch int(ops[i+1]) % 8 {
			case 3:
				deadline = now.Add(-time.Second) // already past
			case 4:
				deadline = time.Now().Add(time.Duration(1+int(ops[i+1])%3) * time.Millisecond)
			case 5, 6, 7:
				deadline = now.Add(time.Minute)
			}
			tk, err := q.Enqueue(context.Background(), task, deadline)
			switch {
			case errors.Is(err, ErrQueueFull):
				overflow++
			case errors.Is(err, ErrExpired):
				preExpired++
			case err != nil:
				t.Fatalf("enqueue: %v", err)
			default:
				tickets = append(tickets, tk)
			}
		}

		var admitted, rejected, expired int
		seen := make(map[dynamic.SessionID]bool)
		for i, tk := range tickets {
			sess, err := tk.Wait(context.Background())
			switch {
			case err == nil && sess != nil:
				admitted++
				if seen[sess.ID] {
					t.Fatalf("ticket %d: session %d double-committed", i, sess.ID)
				}
				seen[sess.ID] = true
			case errors.Is(err, ErrExpired):
				expired++
				if tk.Order() != -1 {
					t.Fatalf("ticket %d expired but was dispatched (order %d)", i, tk.Order())
				}
			case errors.Is(err, dynamic.ErrRejected):
				rejected++
			default:
				t.Fatalf("ticket %d: outcome outside {admitted, rejected, expired}: sess=%v err=%v", i, sess, err)
			}
		}
		closeQueue(t, q)

		if admitted+rejected+expired != len(tickets) {
			t.Fatalf("%d tickets, outcomes %d+%d+%d", len(tickets), admitted, rejected, expired)
		}
		st := q.Stats()
		if int(st.Admitted) != admitted || int(st.Rejected) != rejected {
			t.Fatalf("queue counters %+v vs observed %d/%d", st, admitted, rejected)
		}
		if int(st.Expired) != expired+preExpired || int(st.Overflow) != overflow {
			t.Fatalf("expiry/overflow counters %+v vs observed %d/%d", st, expired+preExpired, overflow)
		}
		ms := m.Stats()
		if ms.Admitted != admitted || ms.Active != admitted {
			t.Fatalf("manager admitted %d active %d, want %d", ms.Admitted, ms.Active, admitted)
		}
		if err := m.VerifyRefs(); err != nil {
			t.Fatal(err)
		}
	})
}
