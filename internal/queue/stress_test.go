package queue

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"sftree/internal/conformance"
	"sftree/internal/core"
	"sftree/internal/dynamic"
	"sftree/internal/faults"
	"sftree/internal/netgen"
	"sftree/internal/nfv"
	"sftree/internal/wal"
)

// TestQueueStress hammers the full durable pipeline under -race:
// producers enqueue (some with tight deadlines, so expiries interleave
// with solves), released sessions free capacity mid-batch, a flapper
// fails and restores a link through Rebase, and a checkpointer folds
// WAL snapshots — all concurrently. Afterwards the never-lose-a-task
// contract must hold, refcounts must be conserved, and every
// surviving non-degraded session must re-validate.
func TestQueueStress(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	net, err := netgen.Generate(netgen.PaperConfig(40, 2), rng)
	if err != nil {
		t.Fatal(err)
	}
	l, _, err := wal.Open(t.TempDir(), wal.Config{Policy: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	m := dynamic.NewManager(net, core.Options{}).AttachWAL(l)

	pool := make([]nfv.Task, 6)
	for i := range pool {
		task, err := netgen.GenerateTask(net, rng, 2+i%3, 2+i%2)
		if err != nil {
			t.Fatal(err)
		}
		pool[i] = task
	}
	q := New(Config{
		Depth:       64,
		BatchWindow: time.Millisecond,
		Manager:     func() *dynamic.Manager { return m },
	})

	stop := make(chan struct{})
	var bg sync.WaitGroup

	// Link flapper: fail and restore one edge via the Rebase path, so
	// snapshot generations move under the dispatcher.
	st := faults.NewState(net)
	edge := net.Graph().Edge(0)
	bg.Add(1)
	go func() {
		defer bg.Done()
		down := false
		for {
			select {
			case <-stop:
				if down {
					_ = st.Apply(faults.Event{Kind: faults.LinkUp, U: edge.U, V: edge.V})
					if deg, err := st.Materialize(m.CloneNetwork()); err == nil {
						m.Rebase(deg)
					}
				}
				return
			default:
			}
			kind := faults.LinkDown
			if down {
				kind = faults.LinkUp
			}
			if err := st.Apply(faults.Event{Kind: kind, U: edge.U, V: edge.V}); err != nil {
				continue
			}
			down = !down
			if deg, err := st.Materialize(m.CloneNetwork()); err == nil {
				m.Rebase(deg)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	// Checkpointer: fold the WAL while admissions commit.
	bg.Add(1)
	go func() {
		defer bg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if _, err := m.Checkpoint(); err != nil {
					t.Errorf("checkpoint: %v", err)
					return
				}
				time.Sleep(3 * time.Millisecond)
			}
		}
	}()

	const producers = 6
	const perProducer = 10
	var (
		mu                                    sync.Mutex
		admitted, rejected, expired, overflow int
		kept                                  []dynamic.SessionID
	)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			prng := rand.New(rand.NewSource(int64(1000 + p)))
			for i := 0; i < perProducer; i++ {
				task := pool[prng.Intn(len(pool))]
				var deadline time.Time
				if prng.Intn(4) == 0 {
					// Tight enough that some expire in the queue.
					deadline = time.Now().Add(time.Duration(prng.Intn(3)) * time.Millisecond)
				}
				tk, err := q.Enqueue(context.Background(), task, deadline)
				switch {
				case errors.Is(err, ErrQueueFull):
					mu.Lock()
					overflow++
					mu.Unlock()
					continue
				case errors.Is(err, ErrExpired):
					mu.Lock()
					expired++
					mu.Unlock()
					continue
				case err != nil:
					t.Errorf("enqueue: %v", err)
					continue
				}
				sess, err := tk.Wait(context.Background())
				switch {
				case errors.Is(err, ErrExpired):
					mu.Lock()
					expired++
					mu.Unlock()
				case err != nil:
					mu.Lock()
					rejected++
					mu.Unlock()
				case prng.Intn(2) == 0:
					mu.Lock()
					admitted++
					mu.Unlock()
					if rerr := m.Release(sess.ID); rerr != nil {
						t.Errorf("release %d: %v", sess.ID, rerr)
					}
				default:
					mu.Lock()
					admitted++
					kept = append(kept, sess.ID)
					mu.Unlock()
				}
			}
		}(p)
	}
	wg.Wait()
	close(stop)
	bg.Wait()
	closeQueue(t, q)

	// Never lose a task: every enqueue attempt has exactly one outcome.
	total := admitted + rejected + expired + overflow
	if total != producers*perProducer {
		t.Errorf("outcomes %d (admitted %d rejected %d expired %d overflow %d), want %d",
			total, admitted, rejected, expired, overflow, producers*perProducer)
	}
	st2 := q.Stats()
	if st2.Depth != 0 {
		t.Errorf("queue not drained: depth %d", st2.Depth)
	}
	if int(st2.Admitted) != admitted || int(st2.Rejected) != rejected {
		t.Errorf("queue counters %+v vs observed admitted %d rejected %d", st2, admitted, rejected)
	}

	if err := m.VerifyRefs(); err != nil {
		t.Error(err)
	}
	final := m.Network()
	for _, sess := range m.Sessions() {
		if sess.Degraded {
			continue
		}
		if err := conformance.CheckLive(final, sess.Result.Embedding); err != nil {
			t.Errorf("session %d: validate: %v", sess.ID, err)
		}
	}
	// Drain and confirm the network ends clean.
	for _, sess := range m.Sessions() {
		if err := m.Release(sess.ID); err != nil {
			t.Errorf("final release %d: %v", sess.ID, err)
		}
	}
	if m.Active() != 0 || m.LiveInstances() != 0 {
		t.Errorf("leak: %d sessions, %d instances", m.Active(), m.LiveInstances())
	}
}
